// Fig. 9 reproduction: S2CF (Listing 9) copies in -> out with permuted
// outer dimensions but a MATCHING innermost dimension, which amortizes the
// stride.  Expected shape: (a) exactly one read and one write per element
// (no strided stream -> the stores bypass the cache); (b) with
// -fprefetch-loop-arrays the out array is read as well.
#include "fft_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

std::vector<ResortPoint> sweep(bool prefetch, bool sampled) {
  SummitStack stack;
  const mpi::Grid grid{2, 4};
  std::vector<ResortPoint> points;
  for (const std::uint64_t n : resort_sweep_sizes()) {
    const fft::RankDims dims = fft::RankDims::of(n, grid);
    const fft::S2Dims s2 = fft::S2Dims::of(dims, grid);
    const fft::ResortBuffers buf =
        fft::ResortBuffers::allocate(stack.machine.address_space(), dims.bytes());
    ResortPoint pt = measure_resort(stack, n, /*runs=*/5, [&](sim::Machine& m) {
      return fft::s2cf_replay(m, 0, 0, s2, buf, prefetch);
    }, sampled);
    pt.elem_bytes = static_cast<double>(dims.bytes());
    points.push_back(pt);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool sampled = has_flag(argc, argv, "--sampled");
  print_header("Fig. 9: S2CF (innermost dimensions match)",
               "paper Fig. 9a (no extra optimization) and Fig. 9b "
               "(-fprefetch-loop-arrays)");

  const std::vector<ResortPoint> plain = sweep(false, sampled);
  const std::vector<ResortPoint> prefetched = sweep(true, sampled);

  print_resort_panel("(a) no additional compiler optimizations (stores "
                     "bypass the cache)",
                     plain, 1.0, 1.0, csv);
  print_resort_panel("(b) with -fprefetch-loop-arrays", prefetched, 2.0, 1.0,
                     csv);

  std::cout
      << "Takeaway (paper Sec. IV-B): S2CF is not completely stride-free, "
         "but because the innermost traversal dimension matches the\n"
         "innermost layout dimension the stride is amortized: the stores "
         "bypass the cache and exactly one read per write is observed.\n";
  return 0;
}
