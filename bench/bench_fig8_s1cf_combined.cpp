// Fig. 8 reproduction: S1CF written as a single combined loop nest
// (Listing 8): in is read sequentially, out is written in strides.
// Expected shape: one write and two reads per element (one for in and --
// because the store stream is strided and write-allocates -- one for out),
// significantly less reading than the two-nest version of Fig. 7.
#include "fft_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool sampled = has_flag(argc, argv, "--sampled");
  print_header("Fig. 8: S1CF combined loop nest",
               "paper Fig. 8 (no additional compiler optimizations)");

  SummitStack stack;
  const mpi::Grid grid{2, 4};
  std::vector<ResortPoint> points;
  for (const std::uint64_t n : resort_sweep_sizes()) {
    const fft::RankDims dims = fft::RankDims::of(n, grid);
    const fft::ResortBuffers buf =
        fft::ResortBuffers::allocate(stack.machine.address_space(), dims.bytes());
    ResortPoint pt = measure_resort(stack, n, /*runs=*/5, [&](sim::Machine& m) {
      return fft::s1cf_combined_replay(m, 0, 0, dims, buf, /*prefetch=*/false);
    }, sampled);
    pt.elem_bytes = static_cast<double>(dims.bytes());
    points.push_back(pt);
  }

  print_resort_panel("combined nest: sequential in, strided out", points, 2.0,
                     1.0, csv);

  std::cout << "Takeaway (paper Sec. IV-A): fusing the two nests leaves one "
               "stride (on the store side); each element is read once from\n"
               "in plus once for the write-allocate of out -- two reads and "
               "one write, much less reading than the original S1CF.\n";
  return 0;
}
