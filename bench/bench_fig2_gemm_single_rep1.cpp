// Fig. 2 reproduction: memory traffic of the single-threaded GEMM measured
// with ONE repetition -- (a) PCP events on Summit, (b) perf_uncore events on
// Tellico.  Expected shape: noise-dominated at small N (measured >>
// expected), converging toward the expectation for mid sizes, and a gradual
// divergence above it at larger sizes; no sharp jump at the cache bound
// because the lone core borrows idle L3 slices.  Both routes show the same
// behaviour (PCP is as accurate as direct access).
#include "gemm_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const kernels::ReplayMode strategy = has_flag(argc, argv, "--sampled")
                                           ? kernels::ReplayMode::Sampled
                                           : kernels::ReplayMode::Full;
  print_header("Fig. 2: single-threaded GEMM, 1 repetition",
               "paper Fig. 2a (Summit, PCP) and Fig. 2b (Tellico, perf_uncore)");

  std::vector<GemmPoint> summit_points, tellico_points;
  // The two systems are independent simulations: run them concurrently.
  std::thread summit_thread([&] {
    SummitStack summit;
    summit_points = run_gemm_sweep(summit, "pcp", summit.measure_cpu(),
                                   RepPolicy::One, /*batched=*/false, {},
                                   strategy);
  });
  std::thread tellico_thread([&] {
    TellicoStack tellico;
    tellico_points = run_gemm_sweep(tellico, "perf_nest", 0, RepPolicy::One,
                                    /*batched=*/false, {}, strategy);
  });
  summit_thread.join();
  tellico_thread.join();

  print_gemm_panel("(a) Summit: pcp:::...PM_MBA[0-7]_{READ,WRITE}_BYTES, 1 rep",
                   summit_points, 5ull << 20, csv);
  print_gemm_panel("(b) Tellico: power9_nest_mba[0-7] (perf_uncore), 1 rep",
                   tellico_points, 5ull << 20, csv);

  std::cout << "Takeaway (paper Sec. III): with a single repetition the "
               "small-problem measurements are dominated by noise on BOTH\n"
               "routes; the deviation is not a PCP artifact.\n";
  return 0;
}
