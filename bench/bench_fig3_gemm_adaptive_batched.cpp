// Fig. 3 reproduction: (a) single-threaded GEMM with the adaptive
// repetition count of Eq. 5, versus (b) the batched GEMM (one independent
// GEMM per physical core), both measured with PCP events on Summit.
// Expected shape: (a) low noise and close to the expectation, with a
// gradual divergence at larger in-cache sizes (lateral cast-out);
// (b) matches the expectation tightly until each core's matrices exceed its
// 5 MB L3 share (N ~ 467), where the traffic jumps drastically.
// --quick limits the sweep to three sizes (the CI span-validation leg);
// --spans PATH writes a causal span dump (trace/export.hpp) after the sweep
// for papisim-analyze --spans.
#include <fstream>

#include "gemm_common.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool quick = has_flag(argc, argv, "--quick");
  const std::string spans_path = flag_value(argc, argv, "--spans");
  const std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{64, 96, 128}
            : std::vector<std::uint64_t>{};
  const kernels::ReplayMode strategy = has_flag(argc, argv, "--sampled")
                                           ? kernels::ReplayMode::Sampled
                                           : kernels::ReplayMode::Full;
  print_header("Fig. 3: adaptive repetitions vs batched GEMM (PCP)",
               "paper Fig. 3a (single-threaded, Eq. 5 repetitions) and "
               "Fig. 3b (batched, 21 cores)");

  std::vector<GemmPoint> single_points, batched_points;
  std::thread single_thread([&] {
    SummitStack stack;
    single_points = run_gemm_sweep(stack, "pcp", stack.measure_cpu(),
                                   RepPolicy::Adaptive, /*batched=*/false,
                                   sizes, strategy);
  });
  std::thread batched_thread([&] {
    SummitStack stack;
    batched_points = run_gemm_sweep(stack, "pcp", stack.measure_cpu(),
                                    RepPolicy::Adaptive, /*batched=*/true,
                                    sizes, strategy);
  });
  single_thread.join();
  batched_thread.join();

  if (!spans_path.empty()) {
    std::ofstream out(spans_path);
    trace::dump_all(out, "bench_fig3");
    std::cout << "span dump -> " << spans_path << "\n";
  }

  print_gemm_panel("(a) single-threaded GEMM, repetitions per Eq. 5",
                   single_points, 5ull << 20, csv);
  print_gemm_panel("(b) batched GEMM (one per core), repetitions per Eq. 5",
                   batched_points, 5ull << 20, csv);

  std::cout
      << "Takeaways (paper Sec. III): averaging over Eq. 5's repetitions "
         "removes the small-N noise of Fig. 2.  The single-threaded\n"
         "traffic exceeds the expectation gradually and does NOT jump at the "
         "cache bound (the lone core borrows idle cores' L3 slices\n"
         "via lateral cast-out); the batched traffic matches the expectation "
         "until ~5 MB per core and then jumps sharply.\n";
  return 0;
}
