// Forward-looking ablation (the paper's future work: "extend these
// techniques to ... upcoming IBM systems (e.g. POWER10)").  Re-runs the
// batched-GEMM cache-bound experiment on a speculative POWER10-class
// configuration: a larger per-core L3 share shifts the Eq. 3/4 band
// outward, and the 16 OMI channels spread the same traffic thinner per
// channel -- while the measurement methodology (PCP route, Eq. 5
// repetitions) carries over unchanged.
#include "gemm_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

/// PCP stack on the speculative POWER10 node (unprivileged user).
struct Power10Stack {
  Power10Stack()
      : machine(sim::MachineConfig::power10_preview()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    lib.register_component(std::make_unique<components::PcpComponent>(client));
  }
  sim::Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  Library lib;

  std::uint32_t measure_cpu() const { return machine.config().cpus_per_socket() - 1; }
};

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("POWER10 preview: batched GEMM cache bounds",
               "paper Sec. V future work (POWER9 -> POWER10 methodology carry-over)");

  const std::vector<std::uint64_t> sizes = {128, 256, 384, 512, 640, 768, 896};

  std::vector<GemmPoint> p9_points, p10_points;
  std::thread p9_thread([&] {
    SummitStack stack;
    p9_points = run_gemm_sweep(stack, "pcp", stack.measure_cpu(),
                               RepPolicy::Adaptive, /*batched=*/true, sizes);
  });
  std::thread p10_thread([&] {
    Power10Stack stack;
    p10_points = run_gemm_sweep(stack, "pcp", stack.measure_cpu(),
                                RepPolicy::Adaptive, /*batched=*/true, sizes);
  });
  p9_thread.join();
  p10_thread.join();

  print_gemm_panel("(a) POWER9 node (5 MB L3 share per core, 8 MBA channels)",
                   p9_points, 5ull << 20, csv);
  print_gemm_panel("(b) POWER10 preview (8 MB L3 share per core, 16 OMI channels)",
                   p10_points, 8ull << 20, csv);

  // Per-channel distribution: the same methodology reads 16 channels there.
  Power10Stack p10;
  kernels::KernelRunner runner(p10.machine, p10.lib, "pcp", p10.measure_cpu());
  std::cout << "POWER10 measurement uses " << runner.event_names().size()
            << " channel events, e.g. " << runner.event_names().front() << "\n";

  std::cout << "\nTakeaway: the traffic jump follows the per-core L3 share "
               "(Eqs. 3/4 re-evaluated at 8 MB move the band to N in ["
            << kernels::gemm_cache_band(8ull << 20).lower_n << ", "
            << kernels::gemm_cache_band(8ull << 20).upper_n
            << "]); nothing about the PCP measurement route changes.\n";
  return 0;
}
