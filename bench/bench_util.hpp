// Shared utilities for the figure/table reproduction benches.
#pragma once

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/library.hpp"
#include "core/sampler.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::benchutil {

/// Aligned plain-text table (the benches print the series the paper plots).
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << "  " << s << std::string(width[c] - s.size(), ' ');
      }
      os << '\n';
    };
    line(headers_);
    std::size_t total = 0;
    for (const std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) line(row);
  }

  /// CSV dump (for replotting).
  void print_csv(std::ostream& os) const {
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ',';
        os << cells[c];
      }
      os << '\n';
    };
    line(headers_);
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string fmt_sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

inline std::string human_bytes(double b) {
  const char* unit[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (b >= 1024.0 && u < 4) {
    b /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", b, unit[u]);
  return buf;
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

/// Value of `--flag <value>`; `fallback` when absent or value-less.
inline std::string flag_value(int argc, char** argv, const std::string& flag,
                              const std::string& fallback = {}) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

/// Summit software stack: unprivileged user, PMCD daemon, PCP + (disabled)
/// perf_nest components.
struct SummitStack {
  SummitStack()
      : machine(sim::MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    lib.register_component(std::make_unique<components::PcpComponent>(client));
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
  }
  sim::Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  Library lib;

  /// The paper's event qualifier for socket 0 (last hardware thread).
  std::uint32_t measure_cpu() const { return machine.config().cpus_per_socket() - 1; }
};

/// Tellico software stack: privileged user, direct perf_nest access.
struct TellicoStack {
  TellicoStack() : machine(sim::MachineConfig::tellico()) {
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
  }
  sim::Machine machine;
  Library lib;
};

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n"
            << "Reproduces: " << paper_ref << "\n\n";
}

}  // namespace papisim::benchutil
