// bench_pmcd_scale: throughput and fetch-latency percentiles of the
// multi-tenant PMCD vs concurrent client count, plus the two acceptance
// scenarios of the scale work (DESIGN.md §3h):
//
//   scale sweep             1/4/16/64 clients hammer the daemon; report
//                           fetches/s and p50/p95/p99 client-visible fetch
//                           latency per client count (exact percentiles from
//                           per-thread latency logs, not histogram buckets)
//   coalesce burst          identical fetches piled behind a stalled leader;
//                           proves the coalesce ratio and cache hit rate are
//                           nonzero and observable through the selfmon gauges
//   crash while saturated   64 clients mid-fetch, a seeded FaultPlan crashing
//                           the pool repeatedly, shutdown racing the burst --
//                           every request must resolve to a value or a typed
//                           error (zero broken promises)
//
//   bench_pmcd_scale                     text tables
//   bench_pmcd_scale --bench-json PATH   also write the machine-readable
//                                        BENCH_pmcd.json (parsed by the
//                                        nightly CI leg)
//   bench_pmcd_scale --spans PATH        dump the scale sweep's causal spans
//                                        (papisim-analyze --spans ingests it)
//   bench_pmcd_scale --flight PATH       arm the flight recorder for the
//                                        crash leg; "%r" in PATH expands to
//                                        the trigger reason
//
// Exit status: 0 when the crash scenario resolved every request typed AND
// coalescing/caching were observed; 1 otherwise -- the binary is the
// acceptance gate for refactors of the daemon's service layer.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/json_util.hpp"
#include "pcp/fault.hpp"
#include "pcp/pmcd.hpp"
#include "selfmon/metrics.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

using namespace papisim;
using benchutil::Table;
using benchutil::fmt;

namespace {

using Clock = std::chrono::steady_clock;

struct ScalePoint {
  int clients = 0;
  double throughput_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t shed = 0;
};

double percentile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

std::vector<pcp::PmId> read_pmids(pcp::Pmcd& daemon) {
  std::vector<pcp::PmId> pmids;
  for (int ch = 0; ch < 8; ++ch) {
    const auto reply = daemon.lookup(
        "perfevent.hwcounters.nest_mba" + std::to_string(ch) +
        "_imc.PM_MBA" + std::to_string(ch) + "_READ_BYTES");
    pmids.push_back(*reply.pmid);
  }
  return pmids;
}

/// One sweep point: `clients` threads, `iters` fetches each, 8 distinct
/// fetch keys shared round-robin so concurrent clients overlap on keys
/// (the coalescing/caching case) without collapsing onto one shard.
ScalePoint run_scale_point(int clients, int iters) {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::PmcdOptions opt;
  opt.fetch_cache_ttl = std::chrono::microseconds(200);
  pcp::Pmcd daemon(machine, opt);
  const std::vector<pcp::PmId> pmids = read_pmids(daemon);
  machine.memctrl(0).add_line(0, sim::MemDir::Read);

  std::vector<std::vector<double>> lat_us(static_cast<std::size_t>(clients));
  std::atomic<std::uint64_t> fetches{0};
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        const pcp::ClientId id = daemon.register_client();
        const std::vector<pcp::PmId> mine{pmids[static_cast<std::size_t>(t % 8)]};
        auto& lats = lat_us[static_cast<std::size_t>(t)];
        lats.reserve(static_cast<std::size_t>(iters));
        for (int i = 0; i < iters; ++i) {
          const auto f0 = Clock::now();
          if (daemon.fetch(mine, 0, id).ok) {
            fetches.fetch_add(1, std::memory_order_relaxed);
          }
          lats.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() - f0)
                  .count());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const double wall_sec =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> all;
  for (const auto& lats : lat_us) all.insert(all.end(), lats.begin(), lats.end());
  std::sort(all.begin(), all.end());

  ScalePoint p;
  p.clients = clients;
  p.throughput_per_sec =
      wall_sec > 0 ? static_cast<double>(fetches.load()) / wall_sec : 0;
  p.p50_us = percentile_us(all, 0.50);
  p.p95_us = percentile_us(all, 0.95);
  p.p99_us = percentile_us(all, 0.99);
  p.coalesced = daemon.coalesced();
  p.cache_hits = daemon.cache_hits();
  p.cache_misses = daemon.cache_misses();
  p.shed = daemon.shed();
  return p;
}

struct CoalesceBurst {
  std::uint64_t coalesced = 0;
  double coalesce_ratio = 0;     ///< coalesced / fetches resolved
  double cache_hit_rate = 0;     ///< hits / (hits + misses)
  std::int64_t coalesce_ratio_ppm_gauge = 0;  ///< selfmon observability
  std::int64_t cache_hit_ppm_gauge = 0;
};

/// Guaranteed-coalescing phase: one shard, every leader stalled 20 ms, 16
/// clients fetching the same key -- the burst piles up behind each leader
/// and resolves from its one read (plus cache hits across bursts).
CoalesceBurst run_coalesce_burst() {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::PmcdOptions opt;
  opt.shards = 1;
  // Longer than the 20 ms leader stall, so later rounds hit the cache.
  opt.fetch_cache_ttl = std::chrono::milliseconds(100);
  pcp::Pmcd daemon(machine, opt);
  pcp::RpcOptions rpc;
  rpc.timeout = std::chrono::milliseconds(10'000);
  daemon.set_rpc_options(rpc);
  const std::vector<pcp::PmId> pmids = read_pmids(daemon);
  machine.memctrl(0).add_line(0, sim::MemDir::Read);

  pcp::FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_us = 20'000;
  daemon.set_fault_plan(plan);

  constexpr int kClients = 16;
  constexpr int kRounds = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) (void)daemon.fetch({pmids[0]}, 0);
    });
  }
  for (auto& th : threads) th.join();

  CoalesceBurst b;
  b.coalesced = daemon.coalesced();
  const std::uint64_t resolved = kClients * kRounds;
  b.coalesce_ratio = static_cast<double>(b.coalesced) / resolved;
  const std::uint64_t hits = daemon.cache_hits();
  const std::uint64_t misses = daemon.cache_misses();
  b.cache_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0;
  const selfmon::Snapshot snap = selfmon::snapshot();
  b.coalesce_ratio_ppm_gauge = snap.gauge(selfmon::GaugeId::PcpCoalesceRatioPpm);
  b.cache_hit_ppm_gauge = snap.gauge(selfmon::GaugeId::PcpCacheHitRatePpm);
  return b;
}

struct CrashRun {
  std::uint64_t served = 0;
  std::uint64_t typed_errors = 0;
  std::uint64_t untyped = 0;
  std::uint64_t restarts = 0;
  std::uint64_t shed = 0;
};

/// The resilience acceptance scenario: 64 clients saturate the daemon, a
/// seeded plan crashes the pool ~2% of requests, and shutdown lands while
/// everyone is mid-fetch.  Retry storms are damped by the seeded per-client
/// jitter; every request must resolve to a value or a typed error.
CrashRun run_crash_while_saturated(int clients) {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::RpcOptions rpc;
  rpc.timeout = std::chrono::milliseconds(200);
  rpc.max_retries = 1;
  rpc.backoff_base = std::chrono::microseconds(200);
  daemon.set_rpc_options(rpc);
  const std::vector<pcp::PmId> pmids = read_pmids(daemon);

  CrashRun run;
  std::atomic<std::uint64_t> served{0}, typed{0}, untyped{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      const pcp::ClientId id = daemon.register_client();
      const std::vector<pcp::PmId> mine{pmids[static_cast<std::size_t>(t % 8)]};
      for (;;) {
        try {
          if (daemon.fetch(mine, 0, id).ok) ++served;
        } catch (const Error& e) {
          ++typed;
          if (e.status() == Status::Shutdown) return;
          if (e.status() != Status::Timeout &&
              e.status() != Status::Overloaded &&
              e.status() != Status::Internal) {
            ++untyped;
            return;
          }
        } catch (...) {
          ++untyped;
          return;
        }
      }
    });
  }
  while (served.load() < static_cast<std::uint64_t>(clients)) {
    std::this_thread::yield();
  }
  pcp::FaultPlan plan;
  plan.seed = 11;
  plan.crash_rate = 0.02;
  daemon.set_fault_plan(plan);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  daemon.shutdown();
  for (auto& th : threads) th.join();

  run.served = served.load();
  run.typed_errors = typed.load();
  run.untyped = untyped.load();
  run.restarts = daemon.restarts();
  run.shed = daemon.shed();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      benchutil::flag_value(argc, argv, "--bench-json");
  const std::string spans_path = benchutil::flag_value(argc, argv, "--spans");
  const std::string flight_path = benchutil::flag_value(argc, argv, "--flight");
  const bool quick = benchutil::has_flag(argc, argv, "--quick");
  const int iters = quick ? 50 : 200;

  if (!spans_path.empty()) {
    // The 64-client point pushes thousands of requests through each shard
    // worker; larger rings keep the sweep's traces complete for the
    // critical-path reconciliation check.
    papisim::trace::set_ring_capacity_for_testing(1u << 15);
  }

  std::cout << "PMCD scale: throughput and fetch latency vs client count\n\n";
  const std::vector<int> counts{1, 4, 16, 64};
  std::vector<ScalePoint> points;
  Table table({"clients", "fetches/s", "p50 us", "p95 us", "p99 us",
               "coalesced", "cache hit%", "shed"});
  for (const int c : counts) {
    const ScalePoint p = run_scale_point(c, iters);
    const std::uint64_t probes = p.cache_hits + p.cache_misses;
    table.add_row({std::to_string(p.clients),
                   std::to_string(static_cast<std::uint64_t>(p.throughput_per_sec)),
                   fmt(p.p50_us, 1), fmt(p.p95_us, 1), fmt(p.p99_us, 1),
                   std::to_string(p.coalesced),
                   fmt(probes ? 100.0 * static_cast<double>(p.cache_hits) /
                                    static_cast<double>(probes)
                              : 0.0, 1),
                   std::to_string(p.shed)});
    points.push_back(p);
  }
  table.print();

  if (!spans_path.empty()) {
    std::ofstream out(spans_path);
    if (!out) {
      std::cerr << "cannot open '" << spans_path << "' for writing\n";
      return 1;
    }
    trace::dump_all(out, "bench_pmcd_scale");
    std::cout << "\nwrote causal span dump to " << spans_path << "\n";
  }

  std::cout << "\nCoalesce burst (1 shard, stalled leaders, 16 clients, "
               "one key)\n\n";
  const CoalesceBurst burst = run_coalesce_burst();
  Table burst_table({"coalesced", "coalesce ratio", "cache hit rate",
                     "gauge ppm (coalesce)", "gauge ppm (cache)"});
  burst_table.add_row({std::to_string(burst.coalesced),
                       fmt(burst.coalesce_ratio), fmt(burst.cache_hit_rate),
                       std::to_string(burst.coalesce_ratio_ppm_gauge),
                       std::to_string(burst.cache_hit_ppm_gauge)});
  burst_table.print();

  const int crash_clients = 64;
  std::cout << "\nCrash while saturated (" << crash_clients
            << " clients, seeded crash plan, shutdown mid-burst)\n\n";
  if (!flight_path.empty()) {
    trace::arm_flight_recorder(flight_path);
  }
  const CrashRun crash = run_crash_while_saturated(crash_clients);
  if (!flight_path.empty()) {
    trace::disarm_flight_recorder();
    std::cout << "flight recorder: " << trace::flight_dumps()
              << " dump(s) written\n\n";
  }
  Table crash_table(
      {"served", "typed errors", "untyped", "restarts", "shed"});
  crash_table.add_row({std::to_string(crash.served),
                       std::to_string(crash.typed_errors),
                       std::to_string(crash.untyped),
                       std::to_string(crash.restarts),
                       std::to_string(crash.shed)});
  crash_table.print();

  const bool pass = crash.untyped == 0 && crash.served > 0 &&
                    burst.coalesced > 0 && burst.cache_hit_rate > 0 &&
                    burst.coalesce_ratio_ppm_gauge > 0 &&
                    burst.cache_hit_ppm_gauge > 0;
  std::cout << "\nzero broken promises: "
            << (crash.untyped == 0 ? "yes" : "NO") << "\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot open '" << json_path << "' for writing\n";
      return 1;
    }
    out << "{\n  \"bench_pmcd\": 1,\n";
    out << "  \"machine\": \"" << json_escape("summit") << "\",\n";
    out << "  \"iters_per_client\": " << iters << ",\n";
    out << "  \"scale\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const ScalePoint& p = points[i];
      const std::uint64_t probes = p.cache_hits + p.cache_misses;
      out << "    {\"clients\": " << p.clients
          << ", \"throughput_per_sec\": "
          << static_cast<std::uint64_t>(p.throughput_per_sec)
          << ", \"p50_us\": " << p.p50_us << ", \"p95_us\": " << p.p95_us
          << ", \"p99_us\": " << p.p99_us
          << ", \"coalesced\": " << p.coalesced << ", \"cache_hit_rate\": "
          << (probes ? static_cast<double>(p.cache_hits) /
                           static_cast<double>(probes)
                     : 0.0)
          << ", \"shed\": " << p.shed << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"coalesce_burst\": {\"coalesced\": " << burst.coalesced
        << ", \"coalesce_ratio\": " << burst.coalesce_ratio
        << ", \"cache_hit_rate\": " << burst.cache_hit_rate
        << ", \"coalesce_ratio_ppm_gauge\": " << burst.coalesce_ratio_ppm_gauge
        << ", \"cache_hit_ppm_gauge\": " << burst.cache_hit_ppm_gauge
        << "},\n";
    out << "  \"crash_while_saturated\": {\"clients\": " << crash_clients
        << ", \"served\": " << crash.served
        << ", \"typed_errors\": " << crash.typed_errors
        << ", \"untyped\": " << crash.untyped
        << ", \"restarts\": " << crash.restarts
        << ", \"shed\": " << crash.shed << ", \"zero_broken_promises\": "
        << (crash.untyped == 0 ? "true" : "false") << "}\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return pass ? 0 : 1;
}
