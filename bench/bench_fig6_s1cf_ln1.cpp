// Fig. 6 reproduction: memory traffic of S1CF loop nest 1 (Listing 5), a
// pure sequential copy in -> tmp, per MPI rank of a 2x4 grid.
// Expected shape: (a) without compiler prefetching the stores BYPASS the
// cache -- one read and one write per element (not the naive two reads);
// (b) with -fprefetch-loop-arrays (dcbtst) tmp is prefetched into L3 and is
// read as well -- two reads and one write per element.
#include "fft_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

std::vector<ResortPoint> sweep(bool prefetch, bool sampled) {
  SummitStack stack;
  const mpi::Grid grid{2, 4};
  std::vector<ResortPoint> points;
  for (const std::uint64_t n : resort_sweep_sizes()) {
    const fft::RankDims dims = fft::RankDims::of(n, grid);
    const fft::ResortBuffers buf =
        fft::ResortBuffers::allocate(stack.machine.address_space(), dims.bytes());
    ResortPoint pt = measure_resort(stack, n, /*runs=*/5, [&](sim::Machine& m) {
      return fft::s1cf_nest1_replay(m, 0, 0, dims, buf, prefetch);
    }, sampled);
    pt.elem_bytes = static_cast<double>(dims.bytes());
    points.push_back(pt);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool sampled = has_flag(argc, argv, "--sampled");
  print_header("Fig. 6: S1CF loop nest 1 (sequential copy)",
               "paper Fig. 6a (no extra optimization) and Fig. 6b "
               "(-fprefetch-loop-arrays)");

  const std::vector<ResortPoint> plain = sweep(false, sampled);
  const std::vector<ResortPoint> prefetched = sweep(true, sampled);

  print_resort_panel("(a) no additional compiler optimizations "
                     "(streaming stores bypass the cache)",
                     plain, 1.0, 1.0, csv);
  print_resort_panel("(b) with -fprefetch-loop-arrays (dcbtst forces tmp "
                     "into L3: it is read too)",
                     prefetched, 2.0, 1.0, csv);

  std::cout
      << "Takeaway (paper Sec. IV-A): with no strided stream present the "
         "hardware writes tmp while BYPASSING the cache, so only one read\n"
         "(for in) is observed; the dcbtst prefetch emitted by "
         "-fprefetch-loop-arrays turns that into the expected "
         "read-per-write.\n";
  return 0;
}
