// Ablation: the streaming-store cache-bypass policy.  Replays the S1CF /
// S2CF loop nests on machines with the bypass enabled (POWER9 behaviour)
// and disabled (plain write-allocate).  This isolates the mechanism behind
// Figs. 6a/9a: without bypass every nest reads the store target
// (read-per-write); with bypass the stride-free nests save one read per
// element.
#include "bench_util.hpp"
#include "fft/resort.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

struct Row {
  double reads = 0, writes = 0;
};

Row replay(bool bypass, const char* nest) {
  sim::MachineConfig cfg = sim::MachineConfig::summit();
  cfg.store_bypass = bypass;
  sim::Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, m.cores_per_socket());
  const mpi::Grid grid{2, 4};
  const std::uint64_t n = 512;
  const fft::RankDims dims = fft::RankDims::of(n, grid);
  const fft::S2Dims s2 = fft::S2Dims::of(dims, grid);
  const fft::ResortBuffers buf =
      fft::ResortBuffers::allocate(m.address_space(), dims.bytes());
  if (std::string(nest) == "S1CF_nest1") {
    fft::s1cf_nest1_replay(m, 0, 0, dims, buf, false);
  } else if (std::string(nest) == "S1CF_combined") {
    fft::s1cf_combined_replay(m, 0, 0, dims, buf, false);
  } else {
    fft::s2cf_replay(m, 0, 0, s2, buf, false);
  }
  m.flush_socket(0);
  const double bytes = static_cast<double>(dims.bytes());
  Row r;
  r.reads = m.memctrl(0).total_bytes(sim::MemDir::Read) / bytes;
  r.writes = m.memctrl(0).total_bytes(sim::MemDir::Write) / bytes;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("Ablation: streaming-store cache bypass on/off",
               "isolates the mechanism behind paper Figs. 6a / 8 / 9a");

  Table t({"loop nest", "bypass", "reads/elem", "writes/elem"});
  for (const char* nest : {"S1CF_nest1", "S1CF_combined", "S2CF"}) {
    for (const bool bypass : {true, false}) {
      const Row r = replay(bypass, nest);
      t.add_row({nest, bypass ? "on" : "off", fmt(r.reads, 2), fmt(r.writes, 2)});
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout << "\nTakeaway: the bypass eliminates exactly one read per "
               "element for the stride-free nests (S1CF nest 1, S2CF) and\n"
               "changes nothing for the strided combined nest, whose stores "
               "can never stream.\n";
  return 0;
}
