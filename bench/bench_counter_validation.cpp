// Counter Analysis Toolkit style validation (paper ref [9] methodology):
// verify that every nest event reports what its name claims, on BOTH
// measurement routes.  This is the "thorough validation of the hardware
// events exposed to the user" the paper credits PAPI with.
#include "bench_util.hpp"
#include "kernels/cat.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

void print_report(const std::string& title, const kernels::CatReport& report,
                  bool csv) {
  std::cout << title << "\n";
  Table t({"check", "event(s)", "expected", "measured", "result"});
  for (const kernels::CatCheck& c : report.checks) {
    t.add_row({c.name, c.event, fmt_sci(c.expected), fmt_sci(c.measured),
               c.passed ? "PASS" : "FAIL"});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }
  std::cout << (report.all_passed() ? "all checks passed"
                                    : "SOME CHECKS FAILED")
            << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("Counter validation (Counter Analysis Toolkit methodology)",
               "paper ref [9]: event-identity validation underpinning all "
               "measurements");

  SummitStack summit;
  const kernels::CatReport via_pcp = kernels::run_counter_analysis(
      summit.machine, summit.lib, "pcp", summit.measure_cpu());
  print_report("(a) Summit route: pcp (via PMCD)", via_pcp, csv);

  TellicoStack tellico;
  const kernels::CatReport direct = kernels::run_counter_analysis(
      tellico.machine, tellico.lib, "perf_nest", 0);
  print_report("(b) Tellico route: perf_nest (direct)", direct, csv);

  return via_pcp.all_passed() && direct.all_passed() ? 0 : 1;
}
