// Fig. 11 reproduction: the complete multi-component performance profile of
// a single rank of the GPU-accelerated 3D-FFT (8x8 grid), sampling host
// memory traffic (PCP), GPU power (NVML), and Infiniband port traffic
// simultaneously through one API.  Expected shape per 1D-FFT phase: a host
// READ spike (H2D copy), then a GPU POWER spike (batched 1D FFTs), then a
// host WRITE spike (D2H copy); ~2 reads per write during the 1st/3rd
// re-sorts, ~equal reads/writes during the 2nd/4th; network spikes only in
// the two All2All phases.
#include <algorithm>
#include <fstream>

#include "analysis/report.hpp"
#include "analysis/score.hpp"
#include "bench_util.hpp"
#include "core/trace_export.hpp"
#include "fft/fft3d.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const std::string trace_path = flag_value(argc, argv, "--trace");
  print_header("Fig. 11: performance profile of a single 3D-FFT rank",
               "paper Fig. 11 (32 nodes, 8x8 grid, GPU 1D-FFTs)");

  SummitStack stack;
  gpu::GpuDevice gpu(gpu::GpuConfig{}, stack.machine, 0, 0);
  net::NicConfig nic_cfg;
  nic_cfg.name = "mlx5_0";
  net::Nic nic(nic_cfg);
  mpi::JobComm comm(stack.machine, nic);
  stack.lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu}));
  stack.lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic}));

  // One event set per component (PAPI semantics), all on one Sampler.
  auto es_mem = stack.lib.create_eventset();
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    const std::string cpu = std::to_string(stack.measure_cpu());
    es_mem->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                      c + "_READ_BYTES.value:cpu" + cpu);
    es_mem->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                      c + "_WRITE_BYTES.value:cpu" + cpu);
  }
  auto es_gpu = stack.lib.create_eventset();
  es_gpu->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  auto es_net = stack.lib.create_eventset();
  es_net->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");

  Sampler sampler(stack.machine.clock());
  sampler.add_eventset(*es_mem);
  sampler.add_eventset(*es_gpu);
  sampler.add_eventset(*es_net);

  fft::Fft3dConfig cfg;
  cfg.n = 2048;
  cfg.grid = {8, 8};
  cfg.use_gpu = true;
  cfg.ticks_per_phase = 5;
  fft::DistributedFft3d app(stack.machine, cfg, &gpu, &comm);

  sampler.start_all();
  sampler.sample();
  app.run_forward([&] { sampler.sample(); });
  sampler.stop_all();

  // Collapse the 16 memory columns into total read/write rates per interval.
  const std::vector<RateRow> rates = sampler.rates();
  Table t({"t_ms", "read_GB/s", "write_GB/s", "gpu_W", "ib_recv_MB/s", "phase"});
  auto phase_at = [&](double t_sec) -> std::string {
    for (const fft::PhaseStats& ph : app.phases()) {
      if (t_sec >= ph.t0_sec && t_sec <= ph.t1_sec) return ph.name;
    }
    return "-";
  };
  for (const RateRow& r : rates) {
    double rd = 0, wr = 0;
    for (std::uint32_t ch = 0; ch < 8; ++ch) {
      rd += r.values[2 * ch];
      wr += r.values[2 * ch + 1];
    }
    const double power_w = r.values[16] / 1000.0;
    const double recv = r.values[17];
    t.add_row({fmt((r.t0_sec + r.t1_sec) * 500.0, 2), fmt(rd / 1e9, 2),
               fmt(wr / 1e9, 2), fmt(power_w, 0), fmt(recv / 1e6, 1),
               phase_at((r.t0_sec + r.t1_sec) / 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  // Phase summary: the read:write ratios the paper calls out.
  std::cout << "\nPer-phase traffic summary:\n";
  Table s({"phase", "read_B", "write_B", "read/write", "net_B"});
  for (const fft::PhaseStats& ph : app.phases()) {
    const double rd = static_cast<double>(ph.loop.mem_read_bytes);
    const double wr = static_cast<double>(ph.loop.mem_write_bytes);
    s.add_row({ph.name, fmt_sci(rd), fmt_sci(wr),
               wr > 0 ? fmt(rd / wr, 2) : "-", fmt_sci(static_cast<double>(ph.net_bytes))});
  }
  s.print();

  // Inference pass: segment + label the same timeline with no ground truth,
  // then score it against the application's phase record.
  const analysis::Timeline tl = analysis::timeline_from_sampler(sampler);
  const analysis::Segmentation seg = analysis::analyze(tl);
  std::cout << "\nInferred profile (" << seg.num_segments()
            << " segments, no instrumentation consulted):\n";
  analysis::write_report_text(std::cout, analysis::attribute(tl, seg));

  std::vector<analysis::TruthSpan> truth;
  for (const fft::PhaseStats& ph : app.phases()) {
    truth.push_back({analysis::fft_phase_class(ph.name), ph.t0_sec, ph.t1_sec});
  }
  const analysis::SegmentationScore sc =
      analysis::score_segmentation(tl, seg, truth, tl.median_interval_sec());
  std::cout << "\nSegmentation vs ground truth: " << sc.matched_boundaries << "/"
            << sc.truth_boundaries << " boundaries within one sample interval ("
            << fmt(sc.tolerance_sec * 1e3, 2) << " ms), max err "
            << fmt(sc.max_boundary_err_sec * 1e3, 2) << " ms, label accuracy "
            << fmt(sc.label_accuracy * 100.0, 1) << "%\n";

  if (!trace_path.empty()) {
    std::vector<TraceSpan> spans;
    for (const fft::PhaseStats& ph : app.phases()) {
      spans.push_back({ph.name, ph.t0_sec, ph.t1_sec, "phases"});
    }
    for (TraceSpan& s : analysis::to_trace_spans(seg)) spans.push_back(std::move(s));
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open '" << trace_path << "' for writing\n";
      return 1;
    }
    write_chrome_trace(out, sampler, spans, "fig11_fft");
    std::cout << "wrote chrome trace (truth + inferred tracks) to " << trace_path
              << "\n";
  }

  std::cout << "\nTakeaway (paper Sec. IV-C): each pipeline region is uniquely "
               "identifiable from native events of three different PAPI\n"
               "components sampled simultaneously: host-read spike -> GPU "
               "power spike -> host-write spike per FFT phase, 2:1 vs 1:1\n"
               "read:write re-sorts, and network activity only in the "
               "All2All phases.\n";
  return 0;
}
