// Shared GEMM sweep driver for the Fig. 2/3/4 benches.
#pragma once

#include <thread>

#include "bench_util.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"

namespace papisim::benchutil {

/// Problem sizes swept in the GEMM figures.  The cache band of paper
/// Eqs. 3/4 (N in [467, 809] for the 5 MB slice) falls in the middle.
inline std::vector<std::uint64_t> gemm_sweep_sizes() {
  return {64, 96, 128, 192, 256, 320, 384, 448, 512, 576, 640, 768, 896, 1024};
}

struct GemmPoint {
  std::uint64_t n = 0;
  std::uint32_t reps = 1;
  kernels::Measurement meas;
  kernels::ExpectedTraffic expected;
};

enum class RepPolicy : std::uint8_t { One, Adaptive, Fixed10, Fixed512 };

inline std::uint32_t reps_for(RepPolicy policy, std::uint64_t n) {
  switch (policy) {
    case RepPolicy::One: return 1;
    case RepPolicy::Adaptive: return kernels::repetitions_for(n);
    case RepPolicy::Fixed10: return 10;
    case RepPolicy::Fixed512: return 512;
  }
  return 1;
}

/// Run the GEMM sweep on one machine stack through the given measurement
/// route ("pcp" or "perf_nest").  `strategy` selects the runner's execution
/// strategy (--sampled on the fig benches maps to ReplayMode::Sampled).
template <typename Stack>
std::vector<GemmPoint> run_gemm_sweep(
    Stack& stack, const std::string& route, std::uint32_t measure_cpu,
    RepPolicy policy, bool batched, std::vector<std::uint64_t> sizes = {},
    kernels::ReplayMode strategy = kernels::ReplayMode::Full) {
  if (sizes.empty()) sizes = gemm_sweep_sizes();
  kernels::KernelRunner runner(stack.machine, stack.lib, route, measure_cpu);
  std::vector<GemmPoint> points;
  points.reserve(sizes.size());
  for (const std::uint64_t n : sizes) {
    const kernels::GemmBuffers buf =
        kernels::GemmBuffers::allocate(stack.machine.address_space(), n);
    kernels::RunnerOptions opt;
    opt.reps = reps_for(policy, n);
    opt.batched = batched;
    opt.strategy = strategy;
    GemmPoint p;
    p.n = n;
    p.reps = opt.reps;
    p.meas = runner.measure(
        [&](std::uint32_t core) { kernels::run_gemm(stack.machine, 0, core, n, buf); },
        opt);
    p.expected = kernels::scaled(kernels::gemm_expected(n), p.meas.threads);
    points.push_back(p);
  }
  return points;
}

/// Print one panel in the paper's format: expected vs measured read/write
/// traffic with the cache band annotated.
inline void print_gemm_panel(const std::string& title,
                             const std::vector<GemmPoint>& points,
                             std::uint64_t l3_slice_bytes, bool csv) {
  const kernels::CacheBand band = kernels::gemm_cache_band(l3_slice_bytes);
  std::cout << title << "\n"
            << "cache band (Eqs. 3/4): N in [" << band.lower_n << ", "
            << band.upper_n << "]\n";
  Table t({"N", "reps", "thr", "exp_read_B", "meas_read_B", "read_ratio",
           "exp_write_B", "meas_write_B", "write_ratio", "band"});
  for (const GemmPoint& p : points) {
    const char* band_mark = p.n < band.lower_n   ? "below"
                            : p.n <= band.upper_n ? "inside"
                                                  : "above";
    t.add_row({std::to_string(p.n), std::to_string(p.reps),
               std::to_string(p.meas.threads), fmt_sci(p.expected.read_bytes),
               fmt_sci(p.meas.read_bytes),
               fmt(p.meas.read_bytes / p.expected.read_bytes, 2),
               fmt_sci(p.expected.write_bytes), fmt_sci(p.meas.write_bytes),
               fmt(p.meas.write_bytes / p.expected.write_bytes, 2), band_mark});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }
  std::cout << "\n";
}

}  // namespace papisim::benchutil
