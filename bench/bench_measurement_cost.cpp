// Measurement-cost quantification (papi_cost analogue): what does reading
// the counters itself cost on each route?  The PCP route pays a PMCD
// round-trip per pmFetch (one per distinct cpu instance, regardless of the
// metric count); the direct perf_nest route reads the counters in place.
// The paper's accuracy equivalence holds *despite* this asymmetric cost.
#include "bench_util.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

struct Cost {
  double per_read_us = 0;
  double per_start_us = 0;
  std::uint64_t perturbation_bytes = 0;  ///< extra traffic per measurement
};

template <typename Stack>
Cost measure_cost(Stack& stack, const std::vector<std::string>& events) {
  auto es = stack.lib.create_eventset();
  for (const std::string& e : events) es->add_event(e);

  Cost cost;
  constexpr int kIters = 200;

  // start() cost (includes the snapshot fetch).
  double t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) {
    es->start();
    es->stop();
  }
  cost.per_start_us =
      (stack.machine.clock().now_sec() - t0) / kIters * 1e6;

  // read() cost while running.
  es->start();
  const std::uint64_t bytes0 =
      stack.machine.memctrl(0).total_bytes(sim::MemDir::Read);
  t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) (void)es->read();
  cost.per_read_us = (stack.machine.clock().now_sec() - t0) / kIters * 1e6;
  cost.perturbation_bytes =
      (stack.machine.memctrl(0).total_bytes(sim::MemDir::Read) - bytes0) / kIters;
  es->stop();
  return cost;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("Measurement cost (papi_cost analogue)",
               "the PCP indirection layer the paper quantifies (Sec. I): "
               "per-fetch round trips vs direct counter reads");

  Table t({"route", "events", "start+stop_us", "read_us", "perturbation_B"});

  {
    SummitStack summit;
    summit.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                                 summit.measure_cpu());
    const auto all16 = runner.event_names();
    const Cost c16 = measure_cost(summit, all16);
    t.add_row({"pcp (PMCD round trip)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
    const Cost c1 = measure_cost(
        summit, {all16.front()});
    t.add_row({"pcp (PMCD round trip)", "1", fmt(c1.per_start_us, 2),
               fmt(c1.per_read_us, 2), std::to_string(c1.perturbation_bytes)});
  }
  {
    TellicoStack tellico;
    tellico.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(tellico.machine, tellico.lib, "perf_nest", 0);
    const Cost c16 = measure_cost(tellico, runner.event_names());
    t.add_row({"perf_nest (direct)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
  }

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout
      << "\nTakeaways: one pmFetch round trip costs the PCP route a fixed "
         "latency regardless of how many metrics it carries (batch your\n"
         "events into one event set); the direct route reads in-place at "
         "zero virtual cost.  Accuracy is nevertheless identical\n"
         "(bench_counter_validation), which is the paper's conclusion.\n";
  return 0;
}
