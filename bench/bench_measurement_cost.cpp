// Measurement-cost quantification (papi_cost analogue): what does reading
// the counters itself cost on each route?  The PCP route pays a PMCD
// round-trip per pmFetch (one per distinct cpu instance, regardless of the
// metric count); the direct perf_nest route reads the counters in place.
// The paper's accuracy equivalence holds *despite* this asymmetric cost.
#include <chrono>

#include "bench_util.hpp"
#include "kernels/blas_sim.hpp"
#include "selfmon/metrics.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

struct Cost {
  double per_read_us = 0;
  double per_start_us = 0;
  std::uint64_t perturbation_bytes = 0;  ///< extra traffic per measurement
};

template <typename Stack>
Cost measure_cost(Stack& stack, const std::vector<std::string>& events) {
  auto es = stack.lib.create_eventset();
  for (const std::string& e : events) es->add_event(e);

  Cost cost;
  constexpr int kIters = 200;

  // start() cost (includes the snapshot fetch).
  double t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) {
    es->start();
    es->stop();
  }
  cost.per_start_us =
      (stack.machine.clock().now_sec() - t0) / kIters * 1e6;

  // read() cost while running.
  es->start();
  const std::uint64_t bytes0 =
      stack.machine.memctrl(0).total_bytes(sim::MemDir::Read);
  t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) (void)es->read();
  cost.per_read_us = (stack.machine.clock().now_sec() - t0) / kIters * 1e6;
  cost.perturbation_bytes =
      (stack.machine.memctrl(0).total_bytes(sim::MemDir::Read) - bytes0) / kIters;
  es->stop();
  return cost;
}

// --selfmon mode: the same papi_cost question pointed at the harness's own
// instrumentation.  Micro-times one recorder invocation (host wall clock,
// the clock selfmon itself uses), counts how many invocations one real GEMM
// replay generates, and reports the estimated overhead fraction against the
// <2% budget that gates PAPISIM_SELFMON=ON.
int run_selfmon_mode(bool csv) {
  print_header("Selfmon instrumentation cost",
               "what profiling the profiler costs: per-op recorder latency "
               "and the per-replay overhead fraction");
  if (!selfmon::kEnabled) {
    std::cout << "selfmon was compiled out (-DPAPISIM_SELFMON=OFF): every "
                 "recorder call is an empty inline\nfunction, overhead is "
                 "exactly zero.  Rebuild with PAPISIM_SELFMON=ON to "
                 "quantify it.\n";
    return 0;
  }

  using HostClock = std::chrono::steady_clock;
  constexpr int kOps = 1'000'000;

  const auto time_per_op_ns = [](auto&& body) {
    const auto t0 = HostClock::now();
    for (int i = 0; i < kOps; ++i) body(i);
    const auto dt = HostClock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           kOps;
  };

  const double counter_ns = time_per_op_ns(
      [](int) { selfmon::counter_add(selfmon::CounterId::PoolTasks); });
  const double hist_ns = time_per_op_ns([](int i) {
    selfmon::hist_record_ns(selfmon::HistId::PoolQueueWaitNs,
                            static_cast<std::uint64_t>(i) & 0xFFFF);
  });
  const double stopwatch_ns = time_per_op_ns([](int) {
    const selfmon::Stopwatch sw(selfmon::HistId::PoolDispatchNs);
  });

  Table ops({"recorder", "ns_per_op"});
  ops.add_row({"counter_add", fmt(counter_ns, 1)});
  ops.add_row({"hist_record_ns", fmt(hist_ns, 1)});
  ops.add_row({"stopwatch (2x clock + record)", fmt(stopwatch_ns, 1)});

  // One real replay: how many recorder invocations does it generate, and
  // what fraction of its host wall time do they cost?
  SummitStack summit;
  summit.machine.set_noise_enabled(false);
  kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                               summit.measure_cpu());
  const std::uint64_t n = 384;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(summit.machine.address_space(), n);

  const selfmon::Snapshot before = selfmon::snapshot();
  const auto w0 = HostClock::now();
  kernels::RunnerOptions opt;
  opt.reps = 3;
  (void)runner.measure(
      [&](std::uint32_t core) {
        kernels::run_gemm(summit.machine, 0, core, n, buf);
      },
      opt);
  const double replay_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(HostClock::now() -
                                                           w0)
          .count());
  const selfmon::Snapshot after = selfmon::snapshot();

  std::uint64_t counter_ops = 0, hist_ops = 0;
  for (std::size_t c = 0; c < selfmon::kNumCounters; ++c) {
    counter_ops += after.counters[c] - before.counters[c];
  }
  for (std::size_t h = 0; h < selfmon::kNumHists; ++h) {
    hist_ops += after.hists[h].count - before.hists[h].count;
  }
  // Histogram records reached through Stopwatch/hist_record_since pay the
  // clock reads too; counting them all at stopwatch cost is the upper bound.
  const double est_ns = static_cast<double>(counter_ops) * counter_ns +
                        static_cast<double>(hist_ops) * stopwatch_ns;
  const double fraction = replay_ns > 0 ? est_ns / replay_ns : 0.0;

  Table replay({"metric", "value"});
  replay.add_row({"replay host time (ms)", fmt(replay_ns / 1e6, 3)});
  replay.add_row({"counter ops recorded", std::to_string(counter_ops)});
  replay.add_row({"histogram ops recorded", std::to_string(hist_ops)});
  replay.add_row({"estimated selfmon time (us)", fmt(est_ns / 1e3, 2)});
  replay.add_row({"estimated overhead", fmt(fraction * 100.0, 3) + " %"});

  if (csv) {
    ops.print_csv(std::cout);
    replay.print_csv(std::cout);
  } else {
    ops.print();
    std::cout << '\n';
    replay.print();
  }
  std::cout << "\nBudget: selfmon must stay under 2% of replay throughput "
               "(bench_sim_throughput ON-vs-OFF is the end-to-end check;\n"
               "this estimate is ops x per-op cost, an upper bound since "
               "per-op timing includes loop overhead).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  if (has_flag(argc, argv, "--selfmon")) return run_selfmon_mode(csv);
  print_header("Measurement cost (papi_cost analogue)",
               "the PCP indirection layer the paper quantifies (Sec. I): "
               "per-fetch round trips vs direct counter reads");

  Table t({"route", "events", "start+stop_us", "read_us", "perturbation_B"});

  {
    SummitStack summit;
    summit.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                                 summit.measure_cpu());
    const auto all16 = runner.event_names();
    const Cost c16 = measure_cost(summit, all16);
    t.add_row({"pcp (PMCD round trip)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
    const Cost c1 = measure_cost(
        summit, {all16.front()});
    t.add_row({"pcp (PMCD round trip)", "1", fmt(c1.per_start_us, 2),
               fmt(c1.per_read_us, 2), std::to_string(c1.perturbation_bytes)});
  }
  {
    TellicoStack tellico;
    tellico.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(tellico.machine, tellico.lib, "perf_nest", 0);
    const Cost c16 = measure_cost(tellico, runner.event_names());
    t.add_row({"perf_nest (direct)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
  }

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout
      << "\nTakeaways: one pmFetch round trip costs the PCP route a fixed "
         "latency regardless of how many metrics it carries (batch your\n"
         "events into one event set); the direct route reads in-place at "
         "zero virtual cost.  Accuracy is nevertheless identical\n"
         "(bench_counter_validation), which is the paper's conclusion.\n";
  return 0;
}
