// Measurement-cost quantification (papi_cost analogue): what does reading
// the counters itself cost on each route?  The PCP route pays a PMCD
// round-trip per pmFetch (one per distinct cpu instance, regardless of the
// metric count); the direct perf_nest route reads the counters in place.
// The paper's accuracy equivalence holds *despite* this asymmetric cost.
#include <chrono>
#include <memory>

#include "bench_util.hpp"
#include "kernels/blas_sim.hpp"
#include "selfmon/metrics.hpp"
#include "spe/collector.hpp"
#include "trace/recorder.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

struct Cost {
  double per_read_us = 0;
  double per_start_us = 0;
  std::uint64_t perturbation_bytes = 0;  ///< extra traffic per measurement
};

template <typename Stack>
Cost measure_cost(Stack& stack, const std::vector<std::string>& events) {
  auto es = stack.lib.create_eventset();
  for (const std::string& e : events) es->add_event(e);

  Cost cost;
  constexpr int kIters = 200;

  // start() cost (includes the snapshot fetch).
  double t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) {
    es->start();
    es->stop();
  }
  cost.per_start_us =
      (stack.machine.clock().now_sec() - t0) / kIters * 1e6;

  // read() cost while running.
  es->start();
  const std::uint64_t bytes0 =
      stack.machine.memctrl(0).total_bytes(sim::MemDir::Read);
  t0 = stack.machine.clock().now_sec();
  for (int i = 0; i < kIters; ++i) (void)es->read();
  cost.per_read_us = (stack.machine.clock().now_sec() - t0) / kIters * 1e6;
  cost.perturbation_bytes =
      (stack.machine.memctrl(0).total_bytes(sim::MemDir::Read) - bytes0) / kIters;
  es->stop();
  return cost;
}

// --selfmon mode: the same papi_cost question pointed at the harness's own
// instrumentation.  Micro-times one recorder invocation (host wall clock,
// the clock selfmon itself uses), counts how many invocations one real GEMM
// replay generates, and reports the estimated overhead fraction against the
// <2% budget that gates PAPISIM_SELFMON=ON.
int run_selfmon_mode(bool csv) {
  print_header("Selfmon instrumentation cost",
               "what profiling the profiler costs: per-op recorder latency "
               "and the per-replay overhead fraction");
  if (!selfmon::kEnabled) {
    std::cout << "selfmon was compiled out (-DPAPISIM_SELFMON=OFF): every "
                 "recorder call is an empty inline\nfunction, overhead is "
                 "exactly zero.  Rebuild with PAPISIM_SELFMON=ON to "
                 "quantify it.\n";
    return 0;
  }

  using HostClock = std::chrono::steady_clock;
  constexpr int kOps = 1'000'000;

  const auto time_per_op_ns = [](auto&& body) {
    const auto t0 = HostClock::now();
    for (int i = 0; i < kOps; ++i) body(i);
    const auto dt = HostClock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           kOps;
  };

  const double counter_ns = time_per_op_ns(
      [](int) { selfmon::counter_add(selfmon::CounterId::PoolTasks); });
  const double hist_ns = time_per_op_ns([](int i) {
    selfmon::hist_record_ns(selfmon::HistId::PoolQueueWaitNs,
                            static_cast<std::uint64_t>(i) & 0xFFFF);
  });
  const double stopwatch_ns = time_per_op_ns([](int) {
    const selfmon::Stopwatch sw(selfmon::HistId::PoolDispatchNs);
  });

  Table ops({"recorder", "ns_per_op"});
  ops.add_row({"counter_add", fmt(counter_ns, 1)});
  ops.add_row({"hist_record_ns", fmt(hist_ns, 1)});
  ops.add_row({"stopwatch (2x clock + record)", fmt(stopwatch_ns, 1)});

  // One real replay: how many recorder invocations does it generate, and
  // what fraction of its host wall time do they cost?
  SummitStack summit;
  summit.machine.set_noise_enabled(false);
  kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                               summit.measure_cpu());
  const std::uint64_t n = 384;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(summit.machine.address_space(), n);

  const selfmon::Snapshot before = selfmon::snapshot();
  const auto w0 = HostClock::now();
  kernels::RunnerOptions opt;
  opt.reps = 3;
  (void)runner.measure(
      [&](std::uint32_t core) {
        kernels::run_gemm(summit.machine, 0, core, n, buf);
      },
      opt);
  const double replay_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(HostClock::now() -
                                                           w0)
          .count());
  const selfmon::Snapshot after = selfmon::snapshot();

  std::uint64_t counter_ops = 0, hist_ops = 0;
  for (std::size_t c = 0; c < selfmon::kNumCounters; ++c) {
    counter_ops += after.counters[c] - before.counters[c];
  }
  for (std::size_t h = 0; h < selfmon::kNumHists; ++h) {
    hist_ops += after.hists[h].count - before.hists[h].count;
  }
  // Histogram records reached through Stopwatch/hist_record_since pay the
  // clock reads too; counting them all at stopwatch cost is the upper bound.
  const double est_ns = static_cast<double>(counter_ops) * counter_ns +
                        static_cast<double>(hist_ops) * stopwatch_ns;
  const double fraction = replay_ns > 0 ? est_ns / replay_ns : 0.0;

  Table replay({"metric", "value"});
  replay.add_row({"replay host time (ms)", fmt(replay_ns / 1e6, 3)});
  replay.add_row({"counter ops recorded", std::to_string(counter_ops)});
  replay.add_row({"histogram ops recorded", std::to_string(hist_ops)});
  replay.add_row({"estimated selfmon time (us)", fmt(est_ns / 1e3, 2)});
  replay.add_row({"estimated overhead", fmt(fraction * 100.0, 3) + " %"});

  if (csv) {
    ops.print_csv(std::cout);
    replay.print_csv(std::cout);
  } else {
    ops.print();
    std::cout << '\n';
    replay.print();
  }
  std::cout << "\nBudget: selfmon must stay under 2% of replay throughput "
               "(bench_sim_throughput ON-vs-OFF is the end-to-end check;\n"
               "this estimate is ops x per-op cost, an upper bound since "
               "per-op timing includes loop overhead).\n";
  return 0;
}

// --spe mode: the papi_cost question pointed at per-access sampling.  The
// hook fires on every demand access, so the cost that matters is the
// non-sampling path (countdown decrement); the record path runs only once
// per period.  Both are micro-timed, then a real GEMM replay is re-run with
// a collector attached at periods 1024 and 64 to measure the end-to-end
// overhead against a no-collector baseline.
int run_spe_mode(bool csv) {
  print_header("SPE sampling cost",
               "what per-access precise-event sampling costs: per-hook "
               "latency on the skip and record paths, and the replay "
               "overhead at periods 1024 and 64");
  if (!spe::kEnabled) {
    std::cout << "spe was compiled out (-DPAPISIM_SPE=OFF): the AccessEngine "
                 "hook is an empty inline\nfunction, overhead is exactly "
                 "zero.  Rebuild with PAPISIM_SPE=ON to quantify it.\n";
    return 0;
  }

  using HostClock = std::chrono::steady_clock;
  constexpr int kOps = 1'000'000;

  const auto time_per_op_ns = [](auto&& body) {
    const auto t0 = HostClock::now();
    for (int i = 0; i < kOps; ++i) body(i);
    const auto dt = HostClock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           kOps;
  };

  spe::SpeConfig skip_cfg;
  skip_cfg.period = 1u << 30;  // countdown never reaches zero in kOps
  skip_cfg.jitter = false;
  spe::CoreSampler skip(0, skip_cfg);
  const double skip_ns = time_per_op_ns([&](int i) {
    skip.on_access(static_cast<std::uint64_t>(i) * 64, spe::AccessKind::Load,
                   spe::HitLevel::L3Hit, 64, static_cast<std::uint64_t>(i));
  });

  spe::SpeConfig rec_cfg;
  rec_cfg.period = 1;  // every access records
  rec_cfg.ring_capacity = 1u << 21;  // >= kOps: never drops
  spe::CoreSampler rec(0, rec_cfg);
  const double record_ns = time_per_op_ns([&](int i) {
    rec.on_access(static_cast<std::uint64_t>(i) * 64, spe::AccessKind::Load,
                  spe::HitLevel::L3Hit, 64, static_cast<std::uint64_t>(i));
  });

  Table ops({"path", "ns_per_op"});
  ops.add_row({"on_access skip (period 2^30)", fmt(skip_ns, 1)});
  ops.add_row({"on_access record (period 1)", fmt(record_ns, 1)});

  // End-to-end: the same GEMM replay with and without a collector attached.
  const auto replay_ms = [](const spe::SpeConfig* cfg,
                            spe::SpeCollector::Totals* totals) {
    SummitStack summit;
    summit.machine.set_noise_enabled(false);
    std::unique_ptr<spe::SpeCollector> owned;
    if (cfg != nullptr) {
      owned = std::make_unique<spe::SpeCollector>(summit.machine, *cfg);
    }
    kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                                 summit.measure_cpu());
    const std::uint64_t n = 384;
    const kernels::GemmBuffers buf =
        kernels::GemmBuffers::allocate(summit.machine.address_space(), n);
    kernels::RunnerOptions opt;
    opt.reps = 3;
    const auto w0 = HostClock::now();
    (void)runner.measure(
        [&](std::uint32_t core) {
          kernels::run_gemm(summit.machine, 0, core, n, buf);
        },
        opt);
    const double ms =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                HostClock::now() - w0)
                .count()) /
        1e6;
    if (owned && totals != nullptr) *totals = owned->totals();
    return ms;
  };

  const double base_ms = replay_ms(nullptr, nullptr);

  Table replay(
      {"config", "replay_ms", "overhead_pct", "samples", "drops"});
  replay.add_row({"baseline (no collector)", fmt(base_ms, 3), "-", "-", "-"});
  for (const std::uint64_t period : {std::uint64_t{1024}, std::uint64_t{64}}) {
    spe::SpeConfig cfg;
    cfg.period = period;
    spe::SpeCollector::Totals totals;
    const double ms = replay_ms(&cfg, &totals);
    const double pct = base_ms > 0 ? (ms - base_ms) / base_ms * 100.0 : 0.0;
    replay.add_row({"period 1/" + std::to_string(period), fmt(ms, 3),
                    fmt(pct, 2), std::to_string(totals.samples),
                    std::to_string(totals.drops)});
  }

  if (csv) {
    ops.print_csv(std::cout);
    replay.print_csv(std::cout);
  } else {
    ops.print();
    std::cout << '\n';
    replay.print();
  }
  std::cout << "\nBudget: the skip path rides every demand access, so it sets "
               "the floor; sampling overhead\nscales with 1/period "
               "(bench_sim_throughput's spe section is the end-to-end "
               "accesses/sec check).\n";
  return 0;
}

// --trace mode: the papi_cost question pointed at causal span tracing
// (DESIGN.md §3j).  Micro-times one span record, one id mint, and one
// ScopedTrace push/pop, counts how many spans one real GEMM replay emits
// (via the trace.spans selfmon counter), and reports the estimated overhead
// fraction against the <=1% budget that gates PAPISIM_TRACE=ON.  Exits
// non-zero when the estimate busts the budget so CI can gate on it.
int run_trace_mode(bool csv) {
  print_header("Causal tracing cost",
               "what span tracing costs: per-span recorder latency and the "
               "per-replay overhead fraction (budget: <= 1%)");
  if (!trace::kEnabled) {
    std::cout << "tracing was compiled out (-DPAPISIM_TRACE=OFF): every "
                 "recorder call is an empty inline\nfunction, overhead is "
                 "exactly zero.  Rebuild with PAPISIM_TRACE=ON to "
                 "quantify it.\n";
    return 0;
  }

  using HostClock = std::chrono::steady_clock;
  constexpr int kOps = 1'000'000;

  const auto time_per_op_ns = [](auto&& body) {
    const auto t0 = HostClock::now();
    for (int i = 0; i < kOps; ++i) body(i);
    const auto dt = HostClock::now() - t0;
    return static_cast<double>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                   .count()) /
           kOps;
  };

  // Keep the micro-loop from flooding the rings: spans past capacity are
  // reject-and-count, which is exactly the overflow path we also want timed.
  trace::reset_for_testing();
  const trace::TraceContext bench_ctx = trace::mint();
  const double record_ns = time_per_op_ns([&](int i) {
    const std::uint64_t t = static_cast<std::uint64_t>(i);
    trace::record({bench_ctx.trace_id, t + 1, bench_ctx.span_id, t, t + 100, 0,
                   0, trace::Stage::QueueWait, trace::SpanStatus::Ok});
  });
  const double mint_ns = time_per_op_ns([](int) { (void)trace::mint(); });
  const double scope_ns = time_per_op_ns(
      [](int) { const trace::ScopedTrace s(trace::ScopedTrace::Mode::Fresh); });
  trace::reset_for_testing();

  Table ops({"operation", "ns_per_op"});
  ops.add_row({"record (64B span, ring push)", fmt(record_ns, 1)});
  ops.add_row({"mint (trace_id + span_id)", fmt(mint_ns, 1)});
  ops.add_row({"ScopedTrace push/pop", fmt(scope_ns, 1)});

  // One real replay: how many spans does it emit, and what fraction of its
  // host wall time do they cost?  Every span pays roughly two clock reads
  // plus one record; pricing all of them at (record + mint) is the bound.
  SummitStack summit;
  summit.machine.set_noise_enabled(false);
  kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                               summit.measure_cpu());
  const std::uint64_t n = 384;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(summit.machine.address_space(), n);

  const selfmon::Snapshot before = selfmon::snapshot();
  const auto w0 = HostClock::now();
  kernels::RunnerOptions opt;
  opt.reps = 3;
  (void)runner.measure(
      [&](std::uint32_t core) {
        kernels::run_gemm(summit.machine, 0, core, n, buf);
      },
      opt);
  const double replay_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(HostClock::now() -
                                                           w0)
          .count());
  const selfmon::Snapshot after = selfmon::snapshot();

  const std::uint64_t span_ops =
      after.counter(selfmon::CounterId::TraceSpans) -
      before.counter(selfmon::CounterId::TraceSpans);
  const double est_ns =
      static_cast<double>(span_ops) * (record_ns + mint_ns);
  const double fraction = replay_ns > 0 ? est_ns / replay_ns : 0.0;
  const bool within_budget = fraction <= 0.01;

  Table replay({"metric", "value"});
  replay.add_row({"replay host time (ms)", fmt(replay_ns / 1e6, 3)});
  replay.add_row({"spans recorded", std::to_string(span_ops)});
  replay.add_row({"estimated tracing time (us)", fmt(est_ns / 1e3, 2)});
  replay.add_row({"estimated overhead", fmt(fraction * 100.0, 3) + " %"});
  replay.add_row({"within 1% budget", within_budget ? "yes" : "NO"});

  if (csv) {
    ops.print_csv(std::cout);
    replay.print_csv(std::cout);
  } else {
    ops.print();
    std::cout << '\n';
    replay.print();
  }
  std::cout << "\nBudget: tracing must stay under 1% of replay wall time "
               "(the trace-off parity leg of bench_sim_throughput is the "
               "end-to-end check; this\nestimate is spans x per-span cost, "
               "an upper bound since per-op timing includes loop "
               "overhead).\n";
  return within_budget ? 0 : 1;
}

// --faults mode: fetch cost and resilience under an injected fault schedule.
// The paper's trust argument assumes the PMCD round trip either completes or
// fails visibly; this mode quantifies what the retry/deadline layer costs
// when the daemon drops, delays, errors, or crashes on a seeded schedule.
int run_faults_mode(bool csv) {
  print_header("Fetch cost under injected PMCD faults",
               "client-resilience layer: deadline + retry + supervisor "
               "restart, exercised by a seeded FaultPlan");

  struct PlanCase {
    const char* name;
    pcp::FaultPlan plan;
  };
  std::vector<PlanCase> cases;
  cases.push_back({"healthy", pcp::FaultPlan{}});
  {
    pcp::FaultPlan p;
    p.seed = 7;
    p.drop_rate = 0.10;
    cases.push_back({"drop10", p});
  }
  {
    pcp::FaultPlan p;
    p.seed = 7;
    p.drop_rate = 0.05;
    p.delay_rate = 0.03;
    p.delay_us = 300;
    p.error_rate = 0.05;
    p.crash_rate = 0.02;
    cases.push_back({"mixed15", p});
  }

  Table t({"plan", "reads_ok", "typed_failures", "faults", "retries",
           "timeouts", "restarts", "host_us_per_read"});

  for (const PlanCase& pc : cases) {
    SummitStack summit;
    summit.machine.set_noise_enabled(false);
    pcp::RpcOptions opt;
    opt.timeout = std::chrono::milliseconds(50);
    opt.max_retries = 3;
    opt.backoff_base = std::chrono::microseconds(200);
    summit.daemon.set_rpc_options(opt);

    std::vector<pcp::PmId> pmids;
    for (const std::string& name : summit.client.names_under("")) {
      if (const auto pmid = summit.client.lookup(name)) pmids.push_back(*pmid);
    }
    const std::uint64_t restarts0 = summit.daemon.restarts();
    const selfmon::Snapshot before = selfmon::snapshot();
    summit.daemon.set_fault_plan(pc.plan);

    constexpr int kReads = 200;
    int ok = 0, typed = 0;
    const auto w0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReads; ++i) {
      try {
        const pcp::FetchReply r =
            summit.client.fetch(pmids, summit.measure_cpu());
        if (r.ok) ++ok;
      } catch (const Error&) {
        ++typed;  // Timeout / Internal / Shutdown after retries exhausted
      }
    }
    const double host_us =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - w0)
                                .count()) /
        1e3 / kReads;
    summit.daemon.set_fault_plan(pcp::FaultPlan{});
    const selfmon::Snapshot after = selfmon::snapshot();

    const auto delta = [&](selfmon::CounterId id) {
      return std::to_string(after.counter(id) - before.counter(id));
    };
    t.add_row({pc.name, std::to_string(ok), std::to_string(typed),
               delta(selfmon::CounterId::PcpFaultsInjected),
               delta(selfmon::CounterId::PcpRetries),
               delta(selfmon::CounterId::PcpTimeouts),
               std::to_string(summit.daemon.restarts() - restarts0),
               fmt(host_us, 1)});
  }

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }
  std::cout
      << "\nTakeaways: a seeded FaultPlan makes the indirection layer "
         "misbehave deterministically; the client rides out\nmost faults via "
         "deadline+retry (reads_ok stays near the request count), surviving "
         "failures surface as typed\nstatuses (never hangs, never broken "
         "promises), and crashed daemons are restarted by the supervisor.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  if (has_flag(argc, argv, "--selfmon")) return run_selfmon_mode(csv);
  if (has_flag(argc, argv, "--spe")) return run_spe_mode(csv);
  if (has_flag(argc, argv, "--trace")) return run_trace_mode(csv);
  if (has_flag(argc, argv, "--faults")) return run_faults_mode(csv);
  print_header("Measurement cost (papi_cost analogue)",
               "the PCP indirection layer the paper quantifies (Sec. I): "
               "per-fetch round trips vs direct counter reads");

  Table t({"route", "events", "start+stop_us", "read_us", "perturbation_B"});

  {
    SummitStack summit;
    summit.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(summit.machine, summit.lib, "pcp",
                                 summit.measure_cpu());
    const auto all16 = runner.event_names();
    const Cost c16 = measure_cost(summit, all16);
    t.add_row({"pcp (PMCD round trip)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
    const Cost c1 = measure_cost(
        summit, {all16.front()});
    t.add_row({"pcp (PMCD round trip)", "1", fmt(c1.per_start_us, 2),
               fmt(c1.per_read_us, 2), std::to_string(c1.perturbation_bytes)});
  }
  {
    TellicoStack tellico;
    tellico.machine.set_noise_enabled(false);
    kernels::KernelRunner runner(tellico.machine, tellico.lib, "perf_nest", 0);
    const Cost c16 = measure_cost(tellico, runner.event_names());
    t.add_row({"perf_nest (direct)", "16", fmt(c16.per_start_us, 2),
               fmt(c16.per_read_us, 2), std::to_string(c16.perturbation_bytes)});
  }

  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout
      << "\nTakeaways: one pmFetch round trip costs the PCP route a fixed "
         "latency regardless of how many metrics it carries (batch your\n"
         "events into one event set); the direct route reads in-place at "
         "zero virtual cost.  Accuracy is nevertheless identical\n"
         "(bench_counter_validation), which is the paper's conclusion.\n";
  return 0;
}
