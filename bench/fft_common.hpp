// Shared driver for the S1CF/S2CF re-sort benches (Figs. 6-10).
#pragma once

#include <functional>

#include "bench_util.hpp"
#include "fft/resort.hpp"
#include "kernels/expected.hpp"

namespace papisim::benchutil {

/// Per-rank problem sizes for the 2x4-grid re-sort figures.  The Eq. 7
/// bound (N ~ 724 for 5 MB and 8 ranks) falls inside the sweep.
inline std::vector<std::uint64_t> resort_sweep_sizes() {
  return {128, 256, 384, 512, 640, 768, 896, 1024};
}

struct ResortPoint {
  std::uint64_t n = 0;
  double elem_bytes = 0;          ///< bytes of one full pass over the block
  double read_min = 0, read_max = 0;
  double write_min = 0, write_max = 0;
  double time_sec = 0;
};

/// Measure one re-sort replay through the PCP route, `runs` times (the
/// paper plots the min-max range of 50 runs; large problems need no
/// repetitions).  The replay callback runs the loop nest once on core 0.
///
/// With `sampled` set, the `runs` executions become the repetitions of ONE
/// sampled-replay measurement window (DESIGN.md §3i): representatives are
/// simulated, the rest extrapolated, and the min-max range collapses onto
/// the averaged traffic.
inline ResortPoint measure_resort(
    SummitStack& stack, std::uint64_t n, std::uint32_t runs,
    const std::function<sim::LoopStats(sim::Machine&)>& replay,
    bool sampled = false) {
  kernels::KernelRunner runner(stack.machine, stack.lib, "pcp",
                               stack.measure_cpu());
  ResortPoint pt;
  pt.n = n;
  pt.read_min = pt.write_min = 1e300;
  const std::uint32_t windows = sampled ? 1 : runs;
  for (std::uint32_t r = 0; r < windows; ++r) {
    kernels::RunnerOptions opt;
    opt.reps = sampled ? runs : 1;
    if (sampled) opt.strategy = kernels::ReplayMode::Sampled;
    // The re-sort routines are OpenMP-parallel across the socket: every
    // core is busy and holds its contended 5 MB L3 share (paper Eq. 7).
    opt.occupy_socket = true;
    double t = 0;
    const kernels::Measurement m = runner.measure(
        [&](std::uint32_t) { t = replay(stack.machine).time_ns * 1e-9; }, opt);
    pt.read_min = std::min(pt.read_min, m.read_bytes);
    pt.read_max = std::max(pt.read_max, m.read_bytes);
    pt.write_min = std::min(pt.write_min, m.write_bytes);
    pt.write_max = std::max(pt.write_max, m.write_bytes);
    pt.time_sec = t;
  }
  return pt;
}

/// Print a Figs. 6-9 panel: measured reads/writes per element (in units of
/// one 16-byte double-complex element) against the paper's expectations.
inline void print_resort_panel(const std::string& title,
                               const std::vector<ResortPoint>& points,
                               double expected_reads_per_elem,
                               double expected_writes_per_elem, bool csv) {
  std::cout << title << "\n"
            << "expected: " << expected_reads_per_elem << " read(s) and "
            << expected_writes_per_elem << " write(s) per element\n";
  Table t({"N", "block_B", "reads/elem(min)", "reads/elem(max)",
           "writes/elem(min)", "writes/elem(max)", "GB/s"});
  for (const ResortPoint& p : points) {
    const double e = p.elem_bytes;
    t.add_row({std::to_string(p.n), fmt_sci(e), fmt(p.read_min / e, 2),
               fmt(p.read_max / e, 2), fmt(p.write_min / e, 2),
               fmt(p.write_max / e, 2),
               fmt(p.time_sec > 0 ? 2.0 * e / p.time_sec / 1e9 : 0.0, 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }
  std::cout << "\n";
}

}  // namespace papisim::benchutil
