// Fig. 4 reproduction: the Fig. 3 experiment repeated on the Tellico testbed
// with DIRECT perf_uncore access (elevated privileges, no PCP).  The same
// behaviour appears -- more traffic than expected for the single-threaded
// kernel, gradual divergence that disappears when all cores are busy --
// proving the effect is not a PCP artifact.
#include "gemm_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const kernels::ReplayMode strategy = has_flag(argc, argv, "--sampled")
                                           ? kernels::ReplayMode::Sampled
                                           : kernels::ReplayMode::Full;
  print_header("Fig. 4: adaptive vs batched GEMM via perf_uncore (Tellico)",
               "paper Fig. 4a (single-threaded) and Fig. 4b (batched, 16 cores)");

  std::vector<GemmPoint> single_points, batched_points;
  std::thread single_thread([&] {
    TellicoStack stack;
    single_points = run_gemm_sweep(stack, "perf_nest", 0, RepPolicy::Adaptive,
                                   /*batched=*/false, {}, strategy);
  });
  std::thread batched_thread([&] {
    TellicoStack stack;
    batched_points = run_gemm_sweep(stack, "perf_nest", 0, RepPolicy::Adaptive,
                                    /*batched=*/true, {}, strategy);
  });
  single_thread.join();
  batched_thread.join();

  print_gemm_panel("(a) single-threaded GEMM, perf_uncore, Eq. 5 repetitions",
                   single_points, 5ull << 20, csv);
  print_gemm_panel("(b) batched GEMM (one per core), perf_uncore",
                   batched_points, 5ull << 20, csv);

  std::cout << "Takeaway (paper Sec. III): the single-thread divergence and "
               "the batched jump reproduce WITHOUT PCP -- measurements via\n"
               "PCP are as accurate as those taken directly from the "
               "hardware counters.\n";
  return 0;
}
