// Fig. 5 reproduction: the batched, capped GEMV.  For M <= 1280 the matrix
// is square (M = N = P, plain GEMV); beyond that the matrix is capped at
// N = P = 1280 (the paper's transition point) and only the output vector y
// grows.  Expected shape: reading traffic matches the expectation across
// the whole sweep (square formula below the transition, capped formula
// above); writing traffic exceeds the expectation until M reaches ~1e4,
// on BOTH the PCP (Summit) and perf_uncore (Tellico) routes.
#include <thread>

#include "bench_util.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

constexpr std::uint64_t kCap = 1280;  // paper: transition at M = N = P = 1280

struct GemvPoint {
  std::uint64_t m = 0, n = 0, p = 0;
  std::uint32_t reps = 1;
  kernels::Measurement meas;
  kernels::ExpectedTraffic expected;
};

template <typename Stack>
std::vector<GemvPoint> run_sweep(Stack& stack, const std::string& route,
                                 std::uint32_t cpu,
                                 kernels::ReplayMode strategy) {
  kernels::KernelRunner runner(stack.machine, stack.lib, route, cpu);
  std::vector<GemvPoint> points;
  for (const std::uint64_t m :
       {std::uint64_t{128}, std::uint64_t{256}, std::uint64_t{512},
        std::uint64_t{896}, std::uint64_t{1280}, std::uint64_t{2048},
        std::uint64_t{4096}, std::uint64_t{8192}, std::uint64_t{16384},
        std::uint64_t{32768}, std::uint64_t{65536}, std::uint64_t{131072}}) {
    GemvPoint pt;
    pt.m = m;
    pt.n = std::min(m, kCap);
    pt.p = pt.n;
    pt.reps = kernels::repetitions_for(m);
    const kernels::GemvBuffers buf = kernels::GemvBuffers::allocate(
        stack.machine.address_space(), m, pt.n, pt.p);
    kernels::RunnerOptions opt;
    opt.reps = pt.reps;
    opt.batched = true;  // the paper's Fig. 5 kernel occupies every core
    opt.strategy = strategy;
    pt.meas = runner.measure(
        [&](std::uint32_t core) {
          kernels::run_capped_gemv(stack.machine, 0, core, m, pt.n, pt.p, buf);
        },
        opt);
    pt.expected =
        kernels::scaled(kernels::gemv_capped_expected(m, pt.n), pt.meas.threads);
    points.push_back(pt);
  }
  return points;
}

void print_panel(const std::string& title, const std::vector<GemvPoint>& points,
                 bool csv) {
  std::cout << title << "\n"
            << "square GEMV while M <= " << kCap << ", capped (N = P = " << kCap
            << ") beyond\n";
  Table t({"M", "N=P", "reps", "thr", "exp_read_B", "meas_read_B", "read_ratio",
           "exp_write_B", "meas_write_B", "write_ratio"});
  for (const GemvPoint& p : points) {
    t.add_row({std::to_string(p.m), std::to_string(p.n), std::to_string(p.reps),
               std::to_string(p.meas.threads), fmt_sci(p.expected.read_bytes),
               fmt_sci(p.meas.read_bytes),
               fmt(p.meas.read_bytes / p.expected.read_bytes, 2),
               fmt_sci(p.expected.write_bytes), fmt_sci(p.meas.write_bytes),
               fmt(p.meas.write_bytes / p.expected.write_bytes, 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const kernels::ReplayMode strategy = has_flag(argc, argv, "--sampled")
                                           ? kernels::ReplayMode::Sampled
                                           : kernels::ReplayMode::Full;
  print_header("Fig. 5: batched, capped GEMV",
               "paper Fig. 5a (Summit, PCP) and Fig. 5b (Tellico, perf_uncore)");

  std::vector<GemvPoint> summit_points, tellico_points;
  std::thread summit_thread([&] {
    SummitStack summit;
    summit_points = run_sweep(summit, "pcp", summit.measure_cpu(), strategy);
  });
  std::thread tellico_thread([&] {
    TellicoStack tellico;
    tellico_points = run_sweep(tellico, "perf_nest", 0, strategy);
  });
  summit_thread.join();
  tellico_thread.join();

  print_panel("(a) Summit via PCP", summit_points, csv);
  print_panel("(b) Tellico via perf_uncore", tellico_points, csv);

  std::cout
      << "Takeaways (paper Sec. III): reading traffic matches the "
         "expectation across the sweep; writing traffic is above the\n"
         "expectation until M exceeds ~1e4 because the written volume (8*M "
         "bytes) is small relative to the measurement noise floor --\n"
         "on both routes, so the effect is neither PCP- nor "
         "POWER9-specific.\n";
  return 0;
}
