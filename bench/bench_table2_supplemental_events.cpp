// Table II reproduction: the supplemental performance events used by the
// multi-component profiles -- NVIDIA GPU power via the nvml component and
// Mellanox port traffic via the infiniband component.
#include "bench_util.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  print_header("Table II: Supplemental Performance Events", "paper Table II");

  SummitStack stack;
  gpu::GpuDevice gpu0(gpu::GpuConfig{}, stack.machine, 0, 0);
  net::NicConfig c0, c1;
  c0.name = "mlx5_0";
  c1.name = "mlx5_1";
  net::Nic nic0(c0), nic1(c1);
  stack.lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu0}));
  stack.lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic0, &nic1}));

  Table t({"Hardware", "PAPI Component", "Performance Event", "Units",
           "Semantics"});
  for (const EventInfo& ev : stack.lib.component("nvml").events()) {
    t.add_row({"NVIDIA Tesla V100 GPU", "nvml", ev.name, ev.units,
               ev.instantaneous ? "gauge" : "counter"});
  }
  for (const EventInfo& ev : stack.lib.component("infiniband").events()) {
    t.add_row({"Mellanox ConnectX-5 Ex", "infiniband", ev.name, ev.units,
               ev.instantaneous ? "gauge" : "counter"});
  }
  if (has_flag(argc, argv, "--csv")) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  // Smoke-read every listed event through the uniform API.
  std::cout << "\nLive readings through the uniform API:\n";
  for (const char* comp : {"nvml", "infiniband"}) {
    for (const EventInfo& ev : stack.lib.component(comp).events()) {
      auto es = stack.lib.create_eventset();
      es->add_event(ev.name);
      es->start();
      std::cout << "  " << ev.name << " = " << es->read()[0] << " " << ev.units
                << "\n";
      es->stop();
    }
  }
  return 0;
}
