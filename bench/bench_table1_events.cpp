// Table I reproduction: the memory-traffic performance events available on
// each system, enumerated through the component API.
#include "bench_util.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  print_header("Table I: Architectures and Performance Events",
               "paper Table I (Summit PCP events, Tellico perf_uncore events)");

  SummitStack summit;
  TellicoStack tellico;

  Table table({"System", "Arch.", "Component", "Performance Event"});

  // Summit: the PCP route (unprivileged users).  The paper lists the events
  // with the per-socket cpu qualifiers cpu87 / cpu175.
  // The paper's Table I lists the *_BYTES events (the component also exposes
  // the *_REQS request counters; see bench_table2 and `component_avail`).
  const auto pcp_events = summit.lib.component("pcp").events();
  bool first = true;
  for (const EventInfo& ev : pcp_events) {
    if (ev.name.find("_BYTES") == std::string::npos) continue;
    const std::uint32_t s0 = summit.machine.config().cpus_per_socket() - 1;
    const std::uint32_t s1 = 2 * summit.machine.config().cpus_per_socket() - 1;
    table.add_row({first ? "Summit" : "", first ? "IBM POWER9" : "",
                   first ? "pcp" : "",
                   ev.name + ":cpu{" + std::to_string(s0) + "|" +
                       std::to_string(s1) + "}"});
    first = false;
  }

  // Tellico: direct perf_uncore access (elevated privileges).
  const auto nest_events = tellico.lib.component("perf_nest").events();
  first = true;
  for (const EventInfo& ev : nest_events) {
    if (ev.name.find("_BYTES") == std::string::npos) continue;
    table.add_row({first ? "Tellico" : "", first ? "IBM POWER9" : "",
                   first ? "perf_nest" : "", ev.name + ":cpu=0"});
    first = false;
  }

  if (has_flag(argc, argv, "--csv")) {
    table.print_csv(std::cout);
  } else {
    table.print();
  }

  // The privilege asymmetry the paper is built on:
  std::cout << "\nComponent availability:\n";
  for (auto* stack_lib : {&summit.lib, &tellico.lib}) {
    for (Component* c : stack_lib->components()) {
      std::cout << "  [" << (stack_lib == &summit.lib ? "summit" : "tellico")
                << "] " << c->name() << ": "
                << (c->available() ? "available"
                                   : "DISABLED (" + c->disabled_reason() + ")")
                << "\n";
    }
  }
  std::cout << "\nOn Summit the ordinary user cannot open the nest PMU "
               "directly (perf_nest is disabled) and must use PCP --\n"
               "the situation that motivates the paper.\n";
  return 0;
}
