// google-benchmark micro-benchmarks of the simulator itself: cache access
// rates, loop-replay event rates, and the PCP round-trip cost.  These bound
// the wall-clock cost of the figure benches.
#include <benchmark/benchmark.h>

#include "fft/resort.hpp"
#include "kernels/blas_sim.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "sim/machine.hpp"

using namespace papisim;

static void BM_CacheHit(benchmark::State& state) {
  sim::CacheLevel cache(5ull << 20, 20, 64, /*hashed_sets=*/true);
  for (std::uint64_t l = 0; l < 1024; ++l) cache.access(l, false);
  std::uint64_t l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l & 1023, false).hit);
    ++l;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

static void BM_CacheMissEvict(benchmark::State& state) {
  sim::CacheLevel cache(1 << 20, 20, 64, /*hashed_sets=*/true);
  std::uint64_t l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l, false).evicted);
    l += 97;  // never revisit: always a miss
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissEvict);

static void BM_SequentialLoopReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  const std::uint64_t elems = 1 << 16;
  sim::LoopDesc loop;
  loop.iterations = elems;
  loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                  {1 << 26, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  for (auto _ : state) {
    const sim::LoopStats st = m.engine(0, 0).execute(loop);
    touches += st.line_touches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialLoopReplay);

static void BM_StridedLoopReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, m.cores_per_socket());
  const std::uint64_t elems = 1 << 14;
  sim::LoopDesc loop;
  loop.iterations = elems;
  loop.streams = {{1 << 20, 64 * 8, 8, sim::AccessKind::Load},
                  {1 << 30, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  for (auto _ : state) {
    const sim::LoopStats st = m.engine(0, 0).execute(loop);
    touches += st.line_touches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StridedLoopReplay);

static void BM_GemmReplaySmall(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  const kernels::GemmBuffers buf = kernels::GemmBuffers::allocate(m.address_space(), n);
  std::uint64_t touches = 0;
  for (auto _ : state) {
    touches += kernels::run_gemm(m, 0, 0, n, buf).line_touches;
    m.flush_socket(0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
}
BENCHMARK(BM_GemmReplaySmall)->Arg(64)->Arg(128)->Arg(256);

static void BM_PcpFetchRoundTrip(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  pcp::Pmcd daemon(m);
  pcp::PcpClient client(daemon, m, m.user_credentials());
  const std::vector<pcp::PmId> ids{0, 1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.fetch(ids, 0).values.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcpFetchRoundTrip);

static void BM_ResortReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, m.cores_per_socket());
  const fft::RankDims dims = fft::RankDims::of(128, mpi::Grid{2, 4});
  const fft::ResortBuffers buf =
      fft::ResortBuffers::allocate(m.address_space(), dims.bytes());
  std::uint64_t touches = 0;
  for (auto _ : state) {
    touches += fft::s1cf_combined_replay(m, 0, 0, dims, buf, false).line_touches;
    m.flush_socket(0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
}
BENCHMARK(BM_ResortReplay);

BENCHMARK_MAIN();
