// google-benchmark micro-benchmarks of the simulator itself: cache access
// rates, loop-replay event rates, the PCP round-trip cost, and the parallel
// replay engine's scaling.  These bound the wall-clock cost of the figure
// benches.
//
// Extra flags (stripped before google-benchmark sees argv):
//   --threads N        pin the BM_ParallelGemmReplay sweep to N host threads
//                      instead of the default 1/2/4/8 progression.
//   --sampled          run KernelRunner measurements with the SampledReplay
//                      strategy (DESIGN.md §3i).  In JSON mode this adds the
//                      "sampled_replay" section: the fig3 batched-GEMM sweep
//                      measured full (literal_reps) vs sampled, with the
//                      speedup and traffic-error columns.
//   --bench-json PATH  skip the google-benchmark suite; instead measure the
//                      headline throughput numbers plus the refutation-probe
//                      grid wall time and write them as JSON (the checked-in
//                      BENCH_sim.json at the repo root).
//   --traffic-fingerprint
//                      skip the suite; replay a fixed deterministic workload
//                      (noise off) through the full PCP stack and print the
//                      exact simulated byte totals.  The trace-off CI parity
//                      leg diffs this output between PAPISIM_TRACE=ON and
//                      OFF builds: tracing must never perturb the simulated
//                      traffic, so the lines are bit-identical.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "components/pcp_component.hpp"
#include "core/json_util.hpp"
#include "core/library.hpp"
#include "fft/resort.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "probe/report.hpp"
#include "sim/machine.hpp"
#include "sim/thread_pool.hpp"
#include "spe/collector.hpp"

using namespace papisim;

namespace {
std::uint32_t g_threads_override = 0;  // 0 = sweep the registered Arg() list
bool g_sampled = false;                // --sampled: use SampledReplay
}

static void BM_CacheHit(benchmark::State& state) {
  sim::CacheLevel cache(5ull << 20, 20, 64, /*hashed_sets=*/true);
  for (std::uint64_t l = 0; l < 1024; ++l) cache.access(l, false);
  std::uint64_t l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l & 1023, false).hit);
    ++l;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

static void BM_CacheMissEvict(benchmark::State& state) {
  sim::CacheLevel cache(1 << 20, 20, 64, /*hashed_sets=*/true);
  std::uint64_t l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l, false).evicted);
    l += 97;  // never revisit: always a miss
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissEvict);

static void BM_SequentialLoopReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  const std::uint64_t elems = 1 << 16;
  sim::LoopDesc loop;
  loop.iterations = elems;
  loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                  {1 << 26, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  for (auto _ : state) {
    const sim::LoopStats st = m.engine(0, 0).execute(loop);
    touches += st.line_touches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SequentialLoopReplay);

static void BM_StridedLoopReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, m.cores_per_socket());
  const std::uint64_t elems = 1 << 14;
  sim::LoopDesc loop;
  loop.iterations = elems;
  loop.streams = {{1 << 20, 64 * 8, 8, sim::AccessKind::Load},
                  {1 << 30, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  for (auto _ : state) {
    const sim::LoopStats st = m.engine(0, 0).execute(loop);
    touches += st.line_touches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StridedLoopReplay);

static void BM_GemmReplaySmall(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  const kernels::GemmBuffers buf = kernels::GemmBuffers::allocate(m.address_space(), n);
  std::uint64_t touches = 0;
  for (auto _ : state) {
    touches += kernels::run_gemm(m, 0, 0, n, buf).line_touches;
    m.flush_socket(0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
}
BENCHMARK(BM_GemmReplaySmall)->Arg(64)->Arg(128)->Arg(256);

static void BM_PcpFetchRoundTrip(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  pcp::Pmcd daemon(m);
  pcp::PcpClient client(daemon, m, m.user_credentials());
  const std::vector<pcp::PmId> ids{0, 1, 2, 3, 4, 5, 6, 7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.fetch(ids, 0).values.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PcpFetchRoundTrip);

// The tentpole scaling bench: a batched GEMM replayed literally, one
// simulated core per pool thread.  Per-core L3 stripes and atomic channel
// counters mean the threads share no mutable cache state, so touches/s
// should scale ~linearly with host cores (the 1-thread row is the serial
// baseline for the speedup ratio).
static void BM_ParallelGemmReplay(benchmark::State& state) {
  const std::uint32_t want = g_threads_override != 0
                                 ? g_threads_override
                                 : static_cast<std::uint32_t>(state.range(0));
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  // Clamp into [1, cores]: want == 0 (a bare `--threads 0`) used to reach
  // `ThreadPool pool(threads - 1)` as a wrapped-around worker count, and an
  // over-socket override was clamped silently.  The `threads_requested`
  // counter surfaces the clamp in the report.
  const std::uint32_t threads =
      std::min(std::max(want, 1u), m.cores_per_socket());
  m.set_active_cores(0, threads);
  const std::uint64_t n = 160;
  std::vector<kernels::GemmBuffers> bufs;
  bufs.reserve(threads);
  for (std::uint32_t c = 0; c < threads; ++c) {
    bufs.push_back(kernels::GemmBuffers::allocate(m.address_space(), n));
  }
  sim::ThreadPool pool(threads - 1);
  std::uint64_t touches = 0;
  for (auto _ : state) {
    for (std::uint32_t c = 0; c < threads; ++c) {
      m.engine(0, c).set_deferred_time(true);
    }
    std::atomic<std::uint64_t> batch_touches{0};
    pool.parallel_for(threads, [&](std::uint32_t c) {
      batch_touches.fetch_add(kernels::run_gemm(m, 0, c, n, bufs[c]).line_touches,
                              std::memory_order_relaxed);
    });
    double max_ns = 0.0;
    for (std::uint32_t c = 0; c < threads; ++c) {
      max_ns = std::max(max_ns, m.engine(0, c).take_deferred_time_ns());
      m.engine(0, c).set_deferred_time(false);
    }
    m.advance(max_ns);
    m.flush_socket(0);
    touches += batch_touches.load(std::memory_order_relaxed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["threads_requested"] = static_cast<double>(want);
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelGemmReplay)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// The sequential copy loop with per-access sampling attached; Arg is the
// sampling period.  Compare against BM_SequentialLoopReplay for the hook's
// end-to-end overhead (skip path at 1024, record-heavy at 64).
static void BM_SpeSampledReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  spe::SpeConfig cfg;
  cfg.period = static_cast<std::uint64_t>(state.range(0));
  spe::SpeCollector collector(m, cfg);
  sim::LoopDesc loop;
  loop.iterations = 1 << 16;
  loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                  {1 << 26, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  std::vector<spe::Sample> drained;
  for (auto _ : state) {
    touches += m.engine(0, 0).execute(loop).line_touches;
    drained.clear();
    collector.drain_into(drained);  // keep the ring from saturating
    benchmark::DoNotOptimize(drained.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
  state.counters["period"] = static_cast<double>(cfg.period);
  state.counters["samples"] =
      static_cast<double>(collector.totals().samples);
  state.counters["Mtouches/s"] = benchmark::Counter(
      static_cast<double>(touches) * 1e-6, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpeSampledReplay)->Arg(1024)->Arg(64);

static void BM_ResortReplay(benchmark::State& state) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, m.cores_per_socket());
  const fft::RankDims dims = fft::RankDims::of(128, mpi::Grid{2, 4});
  const fft::ResortBuffers buf =
      fft::ResortBuffers::allocate(m.address_space(), dims.bytes());
  std::uint64_t touches = 0;
  for (auto _ : state) {
    touches += fft::s1cf_combined_replay(m, 0, 0, dims, buf, false).line_touches;
    m.flush_socket(0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(touches));
}
BENCHMARK(BM_ResortReplay);

// ------------------------------------------------------- JSON summary mode

namespace {

using BenchClock = std::chrono::steady_clock;

double seconds_since(BenchClock::time_point t0) {
  return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

/// Replay the canonical 1-load/1-store copy loop serially for ~budget_sec
/// and report simulated line touches (cache-line accesses) per wall second.
double sequential_accesses_per_sec(double budget_sec) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  sim::LoopDesc loop;
  loop.iterations = 1 << 16;
  loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                  {1 << 26, 8, 8, sim::AccessKind::Store}};
  std::uint64_t touches = 0;
  const auto t0 = BenchClock::now();
  double elapsed = 0.0;
  do {
    touches += m.engine(0, 0).execute(loop).line_touches;
    elapsed = seconds_since(t0);
  } while (elapsed < budget_sec);
  return static_cast<double>(touches) / elapsed;
}

/// One leg of the SPE-overhead comparison: the canonical copy loop with an
/// optional SpeCollector attached (period == 0 -> uninstrumented baseline).
/// Each leg keeps its own machine state across timing slices so the legs
/// can be measured interleaved.
struct SpeOverheadLeg {
  sim::Machine m{sim::MachineConfig::summit()};
  std::unique_ptr<spe::SpeCollector> collector;
  sim::LoopDesc loop;
  std::vector<spe::Sample> drained;
  std::uint64_t touches = 0;
  double elapsed = 0.0;

  explicit SpeOverheadLeg(std::uint64_t period) {
    m.set_noise_enabled(false);
    if (period != 0) {
      spe::SpeConfig cfg;
      cfg.period = period;
      collector = std::make_unique<spe::SpeCollector>(m, cfg);
    }
    loop.iterations = 1 << 16;
    loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                    {1 << 26, 8, 8, sim::AccessKind::Store}};
  }

  void run_slice(double slice_sec, bool record) {
    const auto t0 = BenchClock::now();
    std::uint64_t t = 0;
    double e = 0.0;
    do {
      t += m.engine(0, 0).execute(loop).line_touches;
      if (collector != nullptr) {
        drained.clear();
        collector->drain_into(drained);  // keep the ring from saturating
      }
      e = seconds_since(t0);
    } while (e < slice_sec);
    if (record) {
      touches += t;
      elapsed += e;
    }
  }

  double rate() const {
    return elapsed > 0.0 ? static_cast<double>(touches) / elapsed : 0.0;
  }
};

struct SpeOverheadResult {
  double baseline = 0.0;  ///< one shared baseline, reused for both periods
  double spe_1024 = 0.0;
  double spe_64 = 0.0;
  spe::SpeCollector::Totals totals_1024, totals_64;
};

/// Measures the uninstrumented baseline and both SPE-instrumented variants
/// with a shared warmup pass and interleaved round-robin timing slices, and
/// reuses the single baseline rate for both periods' overhead columns.
/// Measuring the legs back to back used to report *negative* SPE overhead
/// (-13.5% at period 1024): the baseline ran first and cold while the
/// instrumented legs inherited a warmed-up process (hot caches, ramped
/// clocks), an artifact of measurement order rather than of the SPE hook.
SpeOverheadResult measure_spe_overhead(double budget_sec) {
  SpeOverheadLeg baseline(0), spe_1024(1024), spe_64(64);
  SpeOverheadLeg* legs[] = {&baseline, &spe_1024, &spe_64};
  for (SpeOverheadLeg* leg : legs) leg->run_slice(0.05, /*record=*/false);
  const double slice_sec = 0.02;
  const int rounds = std::max(
      1, static_cast<int>(budget_sec / (3.0 * slice_sec)));
  for (int r = 0; r < rounds; ++r) {
    for (SpeOverheadLeg* leg : legs) leg->run_slice(slice_sec, /*record=*/true);
  }
  SpeOverheadResult res;
  res.baseline = baseline.rate();
  res.spe_1024 = spe_1024.rate();
  res.spe_64 = spe_64.rate();
  res.totals_1024 = spe_1024.collector->totals();
  res.totals_64 = spe_64.collector->totals();
  return res;
}

/// Batched literal GEMM replay on `threads` host threads, accesses/sec.
double parallel_accesses_per_sec(std::uint32_t threads, double budget_sec) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  // Same [1, cores] clamp as BM_ParallelGemmReplay: threads == 0 would wrap
  // the ThreadPool worker count below.
  threads = std::min(std::max(threads, 1u), m.cores_per_socket());
  m.set_active_cores(0, threads);
  const std::uint64_t n = 160;
  std::vector<kernels::GemmBuffers> bufs;
  bufs.reserve(threads);
  for (std::uint32_t c = 0; c < threads; ++c) {
    bufs.push_back(kernels::GemmBuffers::allocate(m.address_space(), n));
  }
  sim::ThreadPool pool(threads - 1);
  std::uint64_t touches = 0;
  const auto t0 = BenchClock::now();
  double elapsed = 0.0;
  do {
    for (std::uint32_t c = 0; c < threads; ++c) {
      m.engine(0, c).set_deferred_time(true);
    }
    std::atomic<std::uint64_t> batch{0};
    pool.parallel_for(threads, [&](std::uint32_t c) {
      batch.fetch_add(kernels::run_gemm(m, 0, c, n, bufs[c]).line_touches,
                      std::memory_order_relaxed);
    });
    double max_ns = 0.0;
    for (std::uint32_t c = 0; c < threads; ++c) {
      max_ns = std::max(max_ns, m.engine(0, c).take_deferred_time_ns());
      m.engine(0, c).set_deferred_time(false);
    }
    m.advance(max_ns);
    m.flush_socket(0);
    touches += batch.load(std::memory_order_relaxed);
    elapsed = seconds_since(t0);
  } while (elapsed < budget_sec);
  return static_cast<double>(touches) / elapsed;
}

/// One size of the fig3 batched-GEMM sweep measured twice on fresh stacks:
/// full replay (every Eq. 5 repetition simulated, `literal_reps`) vs
/// SampledReplay.  Noise is off, so the traffic comparison is exact
/// methodology error, not jitter.
struct SampledSweepPoint {
  std::uint64_t n = 0;
  std::uint32_t reps = 0;
  double full_wall_sec = 0.0, sampled_wall_sec = 0.0;
  double full_bytes = 0.0, sampled_bytes = 0.0;
  double err_pct = 0.0, speedup_x = 0.0;
  std::uint32_t reps_replayed = 0, reps_extrapolated = 0;
  std::uint32_t clusters = 0, fallbacks = 0;
};

kernels::Measurement measure_gemm_leg(std::uint64_t n, bool sampled,
                                      double* wall_sec) {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  kernels::KernelRunner runner(machine, lib, "pcp",
                               machine.config().cpus_per_socket() - 1);
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(machine.address_space(), n);
  kernels::RunnerOptions opt;
  opt.reps = kernels::repetitions_for(n);
  opt.batched = true;
  opt.strategy = sampled ? kernels::ReplayMode::Sampled : kernels::ReplayMode::Full;
  opt.literal_reps = !sampled;
  const auto t0 = BenchClock::now();
  const kernels::Measurement m = runner.measure(
      [&](std::uint32_t core) { kernels::run_gemm(machine, 0, core, n, buf); },
      opt);
  *wall_sec = seconds_since(t0);
  return m;
}

std::vector<SampledSweepPoint> sampled_replay_sweep() {
  std::vector<SampledSweepPoint> points;
  for (const std::uint64_t n : {std::uint64_t{64}, std::uint64_t{96},
                                std::uint64_t{128}}) {
    SampledSweepPoint p;
    p.n = n;
    p.reps = kernels::repetitions_for(n);
    const kernels::Measurement full =
        measure_gemm_leg(n, /*sampled=*/false, &p.full_wall_sec);
    const kernels::Measurement sampled =
        measure_gemm_leg(n, /*sampled=*/true, &p.sampled_wall_sec);
    p.full_bytes = full.read_bytes + full.write_bytes;
    p.sampled_bytes = sampled.read_bytes + sampled.write_bytes;
    p.err_pct = p.full_bytes > 0.0
                    ? std::abs(p.sampled_bytes - p.full_bytes) / p.full_bytes * 100.0
                    : 0.0;
    p.speedup_x = p.sampled_wall_sec > 0.0 ? p.full_wall_sec / p.sampled_wall_sec
                                           : 0.0;
    p.reps_replayed = sampled.reps_replayed;
    p.reps_extrapolated = sampled.reps_extrapolated;
    p.clusters = sampled.clusters;
    p.fallbacks = sampled.resample_fallbacks;
    points.push_back(p);
  }
  return points;
}

int emit_bench_json(const std::string& path) {
  const double seq = sequential_accesses_per_sec(0.25);
  const double par8 = parallel_accesses_per_sec(8, 0.5);

  // Warmed, interleaved measurement with one shared baseline: the overhead
  // columns can no longer go negative from measurement order alone.  Any
  // residual scheduling noise is floored at zero.
  SpeOverheadResult spe_res;
  if (spe::kEnabled) spe_res = measure_spe_overhead(0.75);
  const auto overhead_pct = [&](double with_spe) {
    return spe_res.baseline > 0 && with_spe > 0
               ? std::max(0.0, (spe_res.baseline / with_spe - 1.0) * 100.0)
               : 0.0;
  };

  std::vector<SampledSweepPoint> sampled_points;
  if (g_sampled) sampled_points = sampled_replay_sweep();

  probe::ProbeOptions curated;
  const auto t_curated = BenchClock::now();
  const auto curated_reports = probe::run_all_probes(curated);
  const double curated_ms = seconds_since(t_curated) * 1e3;

  probe::ProbeOptions full;
  full.full_grid = true;
  const auto t_full = BenchClock::now();
  const auto full_reports = probe::run_all_probes(full);
  const double full_ms = seconds_since(t_full) * 1e3;

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open '" << path << "' for writing\n";
    return 1;
  }
  out << "{\n  \"bench_sim\": 1,\n";
  out << "  \"machine\": \"" << json_escape(curated.machine.name) << "\",\n";
  out << "  \"accesses_per_sec\": {\n";
  out << "    \"sequential_replay\": " << static_cast<std::uint64_t>(seq)
      << ",\n";
  out << "    \"parallel_gemm_replay_8t\": " << static_cast<std::uint64_t>(par8)
      << "\n  },\n";
  out << "  \"spe\": {\n";
  out << "    \"enabled\": " << (spe::kEnabled ? "true" : "false") << ",\n";
  out << "    \"interleaved_warmed_baseline\": "
      << static_cast<std::uint64_t>(spe_res.baseline) << ",\n";
  out << "    \"sequential_replay_period_1024\": "
      << static_cast<std::uint64_t>(spe_res.spe_1024) << ",\n";
  out << "    \"sequential_replay_period_64\": "
      << static_cast<std::uint64_t>(spe_res.spe_64) << ",\n";
  out << "    \"overhead_pct_period_1024\": " << overhead_pct(spe_res.spe_1024)
      << ",\n";
  out << "    \"overhead_pct_period_64\": " << overhead_pct(spe_res.spe_64)
      << ",\n";
  out << "    \"samples_period_64\": " << spe_res.totals_64.samples << ",\n";
  out << "    \"drops_period_64\": " << spe_res.totals_64.drops << "\n  },\n";
  if (g_sampled) {
    double full_wall = 0.0, sampled_wall = 0.0, max_err = 0.0;
    for (const SampledSweepPoint& p : sampled_points) {
      full_wall += p.full_wall_sec;
      sampled_wall += p.sampled_wall_sec;
      max_err = std::max(max_err, p.err_pct);
    }
    const double speedup = sampled_wall > 0.0 ? full_wall / sampled_wall : 0.0;
    out << "  \"sampled_replay\": {\n";
    out << "    \"strategy\": \"signature-clustered sampling (DESIGN.md 3i)\",\n";
    out << "    \"noise\": false,\n";
    out << "    \"error_bound_pct\": 2.0,\n";
    out << "    \"sampled_speedup_x\": " << speedup << ",\n";
    out << "    \"max_err_pct\": " << max_err << ",\n";
    out << "    \"sweep\": [\n";
    for (std::size_t i = 0; i < sampled_points.size(); ++i) {
      const SampledSweepPoint& p = sampled_points[i];
      out << "      {\"n\": " << p.n << ", \"reps\": " << p.reps
          << ", \"full_wall_ms\": " << p.full_wall_sec * 1e3
          << ", \"sampled_wall_ms\": " << p.sampled_wall_sec * 1e3
          << ", \"speedup_x\": " << p.speedup_x
          << ", \"err_pct\": " << p.err_pct
          << ", \"reps_replayed\": " << p.reps_replayed
          << ", \"reps_extrapolated\": " << p.reps_extrapolated
          << ", \"clusters\": " << p.clusters
          << ", \"resample_fallbacks\": " << p.fallbacks << "}"
          << (i + 1 < sampled_points.size() ? "," : "") << "\n";
    }
    out << "    ]\n  },\n";
  }
  out << "  \"probe_grid\": {\n";
  out << "    \"curated_wall_ms\": " << curated_ms << ",\n";
  out << "    \"curated_confirmed\": "
      << (probe::all_confirmed(curated_reports) ? "true" : "false") << ",\n";
  out << "    \"full_wall_ms\": " << full_ms << ",\n";
  out << "    \"full_confirmed\": "
      << (probe::all_confirmed(full_reports) ? "true" : "false") << ",\n";
  out << "    \"mechanisms\": [\n";
  for (std::size_t i = 0; i < full_reports.size(); ++i) {
    out << "      {\"mechanism\": \"" << json_escape(full_reports[i].mechanism)
        << "\", \"wall_ms\": " << full_reports[i].wall_ms << "}"
        << (i + 1 < full_reports.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }\n}\n";
  std::cout << "wrote " << path << " (seq " << static_cast<std::uint64_t>(seq)
            << " acc/s, 8t " << static_cast<std::uint64_t>(par8)
            << " acc/s, probe full grid " << full_ms << " ms)\n";
  return probe::all_confirmed(curated_reports) &&
                 probe::all_confirmed(full_reports)
             ? 0
             : 1;
}

/// --traffic-fingerprint: exact simulated traffic of a fixed workload.
/// Everything printed is a deterministic function of the simulation (noise
/// off, fixed sizes/reps/seeds) -- no wall-clock times, no rates -- so two
/// builds that simulate identically print identical bytes.  Used by CI to
/// prove the tracing layer (PAPISIM_TRACE) never perturbs traffic.
int emit_traffic_fingerprint() {
  std::cout << "traffic-fingerprint v1\n";
  for (const std::uint64_t n :
       {std::uint64_t{64}, std::uint64_t{128}, std::uint64_t{256}}) {
    for (const bool sampled : {false, true}) {
      double wall = 0.0;  // measured but deliberately not printed
      const kernels::Measurement m = measure_gemm_leg(n, sampled, &wall);
      std::cout << "gemm n=" << n << " mode=" << (sampled ? "sampled" : "full")
                << " reps=" << kernels::repetitions_for(n)
                << " threads=" << m.threads << " read="
                << static_cast<std::uint64_t>(std::llround(m.read_bytes))
                << " write="
                << static_cast<std::uint64_t>(std::llround(m.write_bytes))
                << " replayed=" << m.reps_replayed
                << " extrapolated=" << m.reps_extrapolated
                << " clusters=" << m.clusters
                << " fallbacks=" << m.resample_fallbacks << "\n";
    }
  }
  {
    sim::Machine m(sim::MachineConfig::summit());
    m.set_noise_enabled(false);
    sim::LoopDesc loop;
    loop.iterations = 1 << 16;
    loop.streams = {{1 << 20, 8, 8, sim::AccessKind::Load},
                    {1 << 26, 8, 8, sim::AccessKind::Store}};
    std::uint64_t touches = 0;
    for (int i = 0; i < 8; ++i) touches += m.engine(0, 0).execute(loop).line_touches;
    m.flush_socket(0);
    std::cout << "loop touches=" << touches
              << " read=" << m.memctrl(0).total_bytes(sim::MemDir::Read)
              << " write=" << m.memctrl(0).total_bytes(sim::MemDir::Write)
              << "\n";
  }
  return 0;
}

}  // namespace

// Wall cost of one complete KernelRunner measurement of a fig3 batched-GEMM
// point (Eq. 5 repetitions): full literal replay by default, SampledReplay
// under --sampled.  The suite-mode view of the JSON sweep's speedup column.
static void BM_GemmMeasure(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t replayed = 0, extrapolated = 0;
  for (auto _ : state) {
    double wall = 0.0;
    const kernels::Measurement m = measure_gemm_leg(n, g_sampled, &wall);
    benchmark::DoNotOptimize(m.read_bytes);
    replayed += m.reps_replayed;
    extrapolated += m.reps_extrapolated;
  }
  state.counters["reps_replayed"] =
      static_cast<double>(replayed) / static_cast<double>(state.iterations());
  state.counters["reps_extrapolated"] =
      static_cast<double>(extrapolated) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_GemmMeasure)->Arg(64)->Unit(benchmark::kMillisecond);

// Custom main: strip `--threads N` / `--threads=N`, `--sampled`, and
// `--bench-json PATH` before google-benchmark parses the remaining flags.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  std::string bench_json;
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--threads" && i + 1 < argc) {
      g_threads_override = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      continue;
    }
    if (a.starts_with("--threads=")) {
      g_threads_override =
          static_cast<std::uint32_t>(std::atoi(argv[i] + sizeof("--threads=") - 1));
      continue;
    }
    if (a == "--sampled") {
      g_sampled = true;
      continue;
    }
    if (a == "--traffic-fingerprint") {
      return emit_traffic_fingerprint();
    }
    if (a == "--bench-json" && i + 1 < argc) {
      bench_json = argv[++i];
      continue;
    }
    if (a.starts_with("--bench-json=")) {
      bench_json = argv[i] + sizeof("--bench-json=") - 1;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (!bench_json.empty()) return emit_bench_json(bench_json);
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
