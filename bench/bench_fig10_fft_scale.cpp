// Fig. 10 reproduction: the larger-scale job -- 16 compute nodes, a 4x8
// virtual processor grid, problem sizes N in {1344, 2016}, no
// -fprefetch-loop-arrays.  Expected shape: S1CF incurs two reads per write,
// S2CF one read per write; little variation between runs for these large
// problems (min == max to within noise).
#include "fft_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool sampled = has_flag(argc, argv, "--sampled");
  print_header("Fig. 10: S1CF vs S2CF at scale (4x8 grid, N = 1344 / 2016)",
               "paper Fig. 10");

  SummitStack stack;
  const mpi::Grid grid{4, 8};

  Table t({"routine", "N", "block_B", "reads/elem(min)", "reads/elem(max)",
           "writes/elem(min)", "writes/elem(max)"});
  for (const std::uint64_t n : {std::uint64_t{1344}, std::uint64_t{2016}}) {
    const fft::RankDims dims = fft::RankDims::of(n, grid);
    const fft::S2Dims s2 = fft::S2Dims::of(dims, grid);
    const fft::ResortBuffers buf =
        fft::ResortBuffers::allocate(stack.machine.address_space(), dims.bytes());
    const double bytes = static_cast<double>(dims.bytes());

    ResortPoint s1 = measure_resort(stack, n, /*runs=*/3, [&](sim::Machine& m) {
      return fft::s1cf_combined_replay(m, 0, 0, dims, buf, false);
    }, sampled);
    t.add_row({"S1CF", std::to_string(n), fmt_sci(bytes),
               fmt(s1.read_min / bytes, 2), fmt(s1.read_max / bytes, 2),
               fmt(s1.write_min / bytes, 2), fmt(s1.write_max / bytes, 2)});

    ResortPoint s2p = measure_resort(stack, n, /*runs=*/3, [&](sim::Machine& m) {
      return fft::s2cf_replay(m, 0, 0, s2, buf, false);
    }, sampled);
    t.add_row({"S2CF", std::to_string(n), fmt_sci(bytes),
               fmt(s2p.read_min / bytes, 2), fmt(s2p.read_max / bytes, 2),
               fmt(s2p.write_min / bytes, 2), fmt(s2p.write_max / bytes, 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout << "\nExpected (paper Sec. IV-B): two reads per write in S1CF, "
               "one read per write in S2CF; for problems this large a single\n"
               "run suffices (the min-max range collapses).\n";
  return 0;
}
