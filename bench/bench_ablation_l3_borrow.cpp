// Ablation: lateral cast-out (L3 slice borrowing).  Runs the single-
// threaded GEMM with the mechanism enabled (POWER9 behaviour: a lone core
// re-appropriates idle cores' slices) and disabled (hard 5 MB limit).
// This isolates why the single-threaded GEMM of Figs. 2-4 degrades
// GRADUALLY past the 5 MB footprint instead of jumping like the batched
// runs.
#include "gemm_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

double measure_reads(std::uint64_t n, bool castout, double retention) {
  sim::MachineConfig cfg = sim::MachineConfig::summit();
  cfg.lateral_castout = castout;
  cfg.castout_retention = retention;
  sim::Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, 1);
  const kernels::GemmBuffers buf = kernels::GemmBuffers::allocate(m.address_space(), n);
  kernels::run_gemm(m, 0, 0, n, buf);
  m.flush_socket(0);
  return static_cast<double>(m.memctrl(0).total_bytes(sim::MemDir::Read));
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("Ablation: L3 lateral cast-out (slice borrowing) on/off",
               "isolates the no-jump behaviour of paper Figs. 2-4 (a) panels");

  Table t({"N", "exp_read_B", "borrow_on(ratio)", "borrow_off(ratio)",
           "retention=1.0(ratio)"});
  for (const std::uint64_t n : {std::uint64_t{256}, std::uint64_t{448},
                                std::uint64_t{512}, std::uint64_t{640},
                                std::uint64_t{768}, std::uint64_t{896},
                                std::uint64_t{1024}}) {
    const double exp = kernels::gemm_expected(n).read_bytes;
    const double on = measure_reads(n, true, 0.99);
    const double off = measure_reads(n, false, 0.99);
    const double perfect = measure_reads(n, true, 1.0);
    t.add_row({std::to_string(n), fmt_sci(exp), fmt(on / exp, 2),
               fmt(off / exp, 2), fmt(perfect / exp, 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout
      << "\nTakeaway: with borrowing disabled the lone core behaves like the "
         "batched run (sharp jump once 3N^2*8 exceeds 5 MB); with\n"
         "perfect retention it would match the expectation exactly; the "
         "calibrated retention < 1 yields the paper's gradual divergence.\n";
  return 0;
}
