// Fig. 7 reproduction: memory traffic of S1CF loop nest 2 (Listing 7),
// which traverses tmp in strides of PLANES*ROWS elements while writing out
// sequentially.  Expected shape: one write per element throughout; reads
// per element grow from ~2 (tmp line still cached across column passes +
// the read-per-write for out, forced by the strided stream) toward up to 5
// once N exceeds the Eq. 7 cache bound (~724 for 5 MB / 8 ranks): a full
// 64 B line (4 elements) re-read per element plus the read-per-write.
// With -fprefetch-loop-arrays the loop achieves significantly higher
// bandwidth (Fig. 7b).
#include "fft_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

namespace {

std::vector<ResortPoint> sweep(bool prefetch, bool sampled) {
  SummitStack stack;
  const mpi::Grid grid{2, 4};
  std::vector<ResortPoint> points;
  for (const std::uint64_t n : resort_sweep_sizes()) {
    const fft::RankDims dims = fft::RankDims::of(n, grid);
    const fft::ResortBuffers buf =
        fft::ResortBuffers::allocate(stack.machine.address_space(), dims.bytes());
    ResortPoint pt = measure_resort(stack, n, /*runs=*/3, [&](sim::Machine& m) {
      return fft::s1cf_nest2_replay(m, 0, 0, dims, buf, prefetch);
    }, sampled);
    pt.elem_bytes = static_cast<double>(dims.bytes());
    points.push_back(pt);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const bool sampled = has_flag(argc, argv, "--sampled");
  print_header("Fig. 7: S1CF loop nest 2 (strided tmp traversal)",
               "paper Fig. 7a/7b; Eq. 7 bound N ~ " +
                   std::to_string(kernels::s1cf_ln2_cache_bound(5ull << 20, 8)));

  const std::vector<ResortPoint> plain = sweep(false, sampled);
  const std::vector<ResortPoint> prefetched = sweep(true, sampled);

  print_resort_panel(
      "(a) no additional compiler optimizations (up to 5 reads/write past "
      "the Eq. 7 bound)",
      plain, 2.0, 1.0, csv);
  print_resort_panel("(b) with -fprefetch-loop-arrays (better prefetching -> "
                     "higher bandwidth)",
                     prefetched, 2.0, 1.0, csv);

  // The paper highlights the performance (not traffic) improvement of 7b.
  std::cout << "Bandwidth comparison (largest size): ";
  if (!plain.empty()) {
    std::cout << "plain " << fmt(2.0 * plain.back().elem_bytes /
                                 plain.back().time_sec / 1e9, 2)
              << " GB/s vs prefetched "
              << fmt(2.0 * prefetched.back().elem_bytes /
                     prefetched.back().time_sec / 1e9, 2)
              << " GB/s\n";
  }
  std::cout
      << "\nTakeaway (paper Sec. IV-A): the strided stream defeats the store "
         "bypass (a read per write to out), and beyond the Eq. 7 bound\n"
         "each 64 B line of tmp is re-read for every 16 B element it "
         "supplies -- up to 5 reads per write.\n";
  return 0;
}
