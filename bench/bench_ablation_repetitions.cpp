// Ablation: the adaptive repetition policy (paper Eq. 5) against fixed
// policies.  Measures the relative error of the averaged GEMM read traffic
// and the virtual time spent, per problem size.  Expected: 1 repetition is
// noise-dominated at small sizes; 512 repetitions are accurate but waste
// time at large sizes; Eq. 5 tracks the accurate frontier at a fraction of
// the cost ("adaptively fewer repetitions for larger problem sizes saves
// both memory and execution time").
#include "gemm_common.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  print_header("Ablation: repetition policy (Eq. 5 vs fixed)",
               "paper Eq. 5 and the Fig. 2 -> Fig. 3a transition");

  const std::vector<std::uint64_t> sizes = {64, 128, 256, 384, 512};
  struct Policy {
    RepPolicy policy;
    const char* name;
  };
  const Policy policies[] = {{RepPolicy::One, "reps=1"},
                             {RepPolicy::Fixed10, "reps=10"},
                             {RepPolicy::Fixed512, "reps=512"},
                             {RepPolicy::Adaptive, "Eq.5"}};

  Table t({"N", "policy", "reps", "read_err_%", "write_err_%", "window_ms"});
  for (const std::uint64_t n : sizes) {
    for (const Policy& p : policies) {
      SummitStack stack;  // fresh noise sequence per cell
      const auto pts = run_gemm_sweep(stack, "pcp", stack.measure_cpu(),
                                      p.policy, /*batched=*/false, {n});
      const GemmPoint& pt = pts.front();
      const double rerr =
          100.0 * std::abs(pt.meas.read_bytes - pt.expected.read_bytes) /
          pt.expected.read_bytes;
      const double werr =
          100.0 * std::abs(pt.meas.write_bytes - pt.expected.write_bytes) /
          pt.expected.write_bytes;
      t.add_row({std::to_string(n), p.name, std::to_string(pt.reps),
                 fmt(rerr, 1), fmt(werr, 1), fmt(pt.meas.elapsed_sec * 1e3, 2)});
    }
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  std::cout << "\nTakeaway: a single repetition is fraught with noise at "
               "small sizes; Eq. 5 reaches the accuracy of the 512-rep\n"
               "policy while spending far less (virtual) time at large "
               "sizes.\n";
  return 0;
}
