// Fig. 12 reproduction: the performance profile of a single QMCPACK rank --
// VMC without drift, VMC with drift, then DMC -- with memory traffic, GPU
// power, and network traffic monitored simultaneously.  Expected shape: the
// three stages are clearly distinguishable (the paper's point): flat
// moderate memory traffic in VMC-no-drift; heavier traffic and GPU power in
// VMC-drift; and GPU-heavy DMC with periodic network spikes from walker
// redistribution.
//
// Uses the high-level Profiler API: one flat event list spanning three
// components, grouped into per-component event sets automatically.
#include <fstream>

#include "analysis/report.hpp"
#include "analysis/score.hpp"
#include "bench_util.hpp"
#include "core/profiler.hpp"
#include "core/trace_export.hpp"
#include "qmc/qmc_app.hpp"

using namespace papisim;
using namespace papisim::benchutil;

int main(int argc, char** argv) {
  const bool csv = has_flag(argc, argv, "--csv");
  const std::string trace_path = flag_value(argc, argv, "--trace");
  print_header("Fig. 12: performance profile of a single QMCPACK rank",
               "paper Fig. 12 (VMC no drift -> VMC drift -> DMC)");

  SummitStack stack;
  gpu::GpuDevice gpu(gpu::GpuConfig{}, stack.machine, 0, 0);
  net::Nic nic(net::NicConfig{});
  mpi::JobComm comm(stack.machine, nic);
  stack.lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu}));
  stack.lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic}));

  Profiler prof(stack.lib, stack.machine.clock());
  std::vector<std::string> events;
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    const std::string cpu = std::to_string(stack.measure_cpu());
    events.push_back("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                     c + "_READ_BYTES.value:cpu" + cpu);
    events.push_back("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                     c + "_WRITE_BYTES.value:cpu" + cpu);
  }
  events.push_back("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  events.push_back("infiniband:::mlx5_0_1_ext:port_recv_data");
  prof.add_events(events);

  qmc::QmcConfig cfg;  // defaults model the NiO-scale example problem
  qmc::QmcApp app(stack.machine, cfg, &gpu, &comm);

  prof.start();
  prof.sample();
  app.run([&] { prof.sample(); });
  prof.stop();

  const std::vector<RateRow> rates = prof.sampler().rates();
  auto phase_at = [&](double t_sec) -> std::string {
    for (const qmc::QmcPhase& ph : app.phases()) {
      if (t_sec >= ph.t0_sec && t_sec <= ph.t1_sec) return ph.name;
    }
    return "-";
  };
  Table t({"t_ms", "read_GB/s", "write_GB/s", "gpu_W", "ib_recv_MB/s", "stage"});
  for (const RateRow& r : rates) {
    double rd = 0, wr = 0;
    for (std::uint32_t ch = 0; ch < 8; ++ch) {
      rd += r.values[2 * ch];
      wr += r.values[2 * ch + 1];
    }
    t.add_row({fmt((r.t0_sec + r.t1_sec) * 500.0, 3), fmt(rd / 1e9, 2),
               fmt(wr / 1e9, 2), fmt(r.values[16] / 1000.0, 0),
               fmt(r.values[17] / 1e6, 1),
               phase_at((r.t0_sec + r.t1_sec) / 2)});
  }
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print();
  }

  // Inference pass with the QMCPACK rule table, scored against the stage
  // record the application kept.
  const analysis::Timeline tl = analysis::timeline_from_sampler(prof.sampler());
  analysis::AnalysisConfig acfg;
  acfg.rules = analysis::qmc_rules();
  const analysis::Segmentation seg = analysis::analyze(tl, acfg);
  std::cout << "\nInferred profile (" << seg.num_segments()
            << " segments, no instrumentation consulted):\n";
  analysis::write_report_text(std::cout, analysis::attribute(tl, seg));

  std::vector<analysis::TruthSpan> truth;
  for (const qmc::QmcPhase& ph : app.phases()) {
    truth.push_back({ph.name, ph.t0_sec, ph.t1_sec});
  }
  const analysis::SegmentationScore sc =
      analysis::score_segmentation(tl, seg, truth, tl.median_interval_sec());
  std::cout << "\nSegmentation vs ground truth: " << sc.matched_boundaries << "/"
            << sc.truth_boundaries << " boundaries within one sample interval ("
            << fmt(sc.tolerance_sec * 1e3, 2) << " ms), max err "
            << fmt(sc.max_boundary_err_sec * 1e3, 2) << " ms, label accuracy "
            << fmt(sc.label_accuracy * 100.0, 1) << "%\n";

  if (!trace_path.empty()) {
    std::vector<TraceSpan> spans;
    for (const qmc::QmcPhase& ph : app.phases()) {
      spans.push_back({ph.name, ph.t0_sec, ph.t1_sec, "phases"});
    }
    for (TraceSpan& s : analysis::to_trace_spans(seg)) spans.push_back(std::move(s));
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open '" << trace_path << "' for writing\n";
      return 1;
    }
    write_chrome_trace(out, prof.sampler(), spans, "fig12_qmcpack");
    std::cout << "wrote chrome trace (truth + inferred tracks) to " << trace_path
              << "\n";
  }

  std::cout << "\nTakeaway (paper Sec. IV-C): as with the 3D-FFT (Fig. 11), "
               "the execution stages of a hybrid application are uniquely\n"
               "distinguishable by monitoring multiple hardware components "
               "simultaneously through one API.\n";
  return 0;
}
