// Deterministic machine-config and loop builders shared across test suites.
//
// Tests that replay traffic want small, fully-pinned geometries so the
// analytic expectations stay exact; historically every suite grew its own
// `small_config()` copy.  This header is the one place those shapes live.
#pragma once

#include <memory>

#include "sim/access_engine.hpp"
#include "sim/machine.hpp"

namespace papisim::test_support {

/// Fluent wrapper over sim::MachineConfig for one-off tweaks.  Every chain
/// starts from a named deterministic base, so two tests asking for the same
/// shape replay bit-identically.
class MachineBuilder {
 public:
  explicit MachineBuilder(sim::MachineConfig base) : cfg_(std::move(base)) {}

  /// The engine-property shape: one socket, two cores, 1 MiB slices.
  static MachineBuilder small() {
    sim::MachineConfig cfg;
    cfg.sockets = 1;
    cfg.cores_per_socket = 2;
    cfg.l3_slice_bytes = 1 << 20;
    return MachineBuilder(std::move(cfg));
  }

  /// The capacity-knee shape from the paper-invariant suite: four cores with
  /// tiny 64 KiB slices so footprints around the knee stay cheap to sweep.
  static MachineBuilder knee() {
    sim::MachineConfig cfg = sim::MachineConfig::tellico();
    cfg.cores_per_socket = 4;
    cfg.physical_cores_per_socket = 4;
    cfg.l3_slice_bytes = 64 * 1024;
    cfg.l3_associativity = 8;
    return MachineBuilder(std::move(cfg));
  }

  MachineBuilder& sockets(std::uint32_t n) { cfg_.sockets = n; return *this; }
  MachineBuilder& cores(std::uint32_t n) {
    cfg_.cores_per_socket = n;
    cfg_.physical_cores_per_socket = n;
    return *this;
  }
  MachineBuilder& slice_bytes(std::uint64_t n) { cfg_.l3_slice_bytes = n; return *this; }
  MachineBuilder& associativity(std::uint32_t n) { cfg_.l3_associativity = n; return *this; }
  MachineBuilder& store_bypass(bool on) { cfg_.store_bypass = on; return *this; }
  MachineBuilder& lateral_castout(bool on) { cfg_.lateral_castout = on; return *this; }
  MachineBuilder& castout_retention(double p) { cfg_.castout_retention = p; return *this; }

  const sim::MachineConfig& config() const { return cfg_; }
  operator sim::MachineConfig() const { return cfg_; }

  /// A machine with background noise disabled -- the default for traffic
  /// tests, where every byte must be attributable to the replayed loop.
  std::unique_ptr<sim::Machine> quiet() const {
    auto m = std::make_unique<sim::Machine>(cfg_);
    m->set_noise_enabled(false);
    return m;
  }

 private:
  sim::MachineConfig cfg_;
};

/// 1-load/1-store dense copy over `iters` 8-byte elements -- the canonical
/// write-allocate/bypass probe loop (paper §IV).
inline sim::LoopDesc copy_loop(std::uint64_t iters,
                               std::uint64_t load_base = 1ull << 20,
                               std::uint64_t store_base = 1ull << 26) {
  sim::LoopDesc loop;
  loop.iterations = iters;
  loop.streams = {{load_base, 8, 8, sim::AccessKind::Load},
                  {store_base, 8, 8, sim::AccessKind::Store}};
  return loop;
}

/// Single affine load stream.
inline sim::LoopDesc load_loop(std::uint64_t base, std::int64_t stride,
                               std::uint64_t iters) {
  sim::LoopDesc loop;
  loop.iterations = iters;
  loop.streams = {{base, stride, 8, sim::AccessKind::Load}};
  return loop;
}

}  // namespace papisim::test_support
