// Traffic-delta helpers and gtest assertion predicates for memory-controller
// assertions.
//
// TrafficProbe snapshots a socket's controller at construction and reports
// deltas, so a test can assert on the traffic of one loop without caring
// what warm-up replay ran before it.  The predicates return
// ::testing::AssertionResult (plain gtest; this tree has no gmock), so
// failures print the measured value, the band, and the miss distance:
//
//   EXPECT_TRUE(bytes_near(probe.read_delta(), 2 * kBytes, 64));
//   EXPECT_TRUE(bytes_within(probe.write_delta(), kBytes, 0.01));
#pragma once

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace papisim::test_support {

class TrafficProbe {
 public:
  explicit TrafficProbe(sim::Machine& m, std::uint32_t socket = 0)
      : m_(m), socket_(socket) { rebase(); }

  /// Re-snapshot: subsequent deltas are relative to this point.
  void rebase() {
    base_read_ = m_.memctrl(socket_).total_bytes(sim::MemDir::Read);
    base_write_ = m_.memctrl(socket_).total_bytes(sim::MemDir::Write);
    base_channels_ = m_.memctrl(socket_).snapshot();
  }

  std::uint64_t read_delta() const {
    return m_.memctrl(socket_).total_bytes(sim::MemDir::Read) - base_read_;
  }
  std::uint64_t write_delta() const {
    return m_.memctrl(socket_).total_bytes(sim::MemDir::Write) - base_write_;
  }

  /// Per-channel [read, write] byte deltas.
  std::vector<std::array<std::uint64_t, 2>> channel_delta() const {
    auto now = m_.memctrl(socket_).snapshot();
    std::vector<std::array<std::uint64_t, 2>> out(now.size());
    for (std::size_t c = 0; c < now.size(); ++c) {
      out[c] = {now[c][0] - base_channels_[c][0],
                now[c][1] - base_channels_[c][1]};
    }
    return out;
  }

 private:
  sim::Machine& m_;
  std::uint32_t socket_;
  std::uint64_t base_read_ = 0;
  std::uint64_t base_write_ = 0;
  std::vector<std::array<std::uint64_t, 2>> base_channels_;
};

/// Byte count within `tol` bytes of `expected` (absolute tolerance: traffic
/// expectations are analytic line counts, not percentages).
inline ::testing::AssertionResult bytes_near(std::uint64_t measured,
                                             std::uint64_t expected,
                                             std::uint64_t tol) {
  const std::uint64_t d =
      measured > expected ? measured - expected : expected - measured;
  if (d <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << measured << " bytes is off the expected " << expected << " +/- "
         << tol << " by " << d << " bytes";
}

/// Byte count within fraction `frac` (e.g. 0.01 = 1%) of `expected`.
inline ::testing::AssertionResult bytes_within(std::uint64_t measured,
                                               std::uint64_t expected,
                                               double frac) {
  const double e = static_cast<double>(expected);
  const double g = static_cast<double>(measured);
  const double d = g > e ? g - e : e - g;
  if (d <= frac * e) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << measured << " bytes is off the expected " << expected << " by "
         << d << " bytes (" << (e > 0 ? 100.0 * d / e : 0.0) << "%, tol "
         << frac * 100 << "%)";
}

/// Byte count inside the closed band [lo, hi].
inline ::testing::AssertionResult bytes_in_band(std::uint64_t measured,
                                                std::uint64_t lo,
                                                std::uint64_t hi) {
  if (measured >= lo && measured <= hi) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << measured << " bytes is outside [" << lo << ", " << hi << "]";
}

}  // namespace papisim::test_support
