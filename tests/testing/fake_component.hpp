// A minimal in-memory component for exercising the measurement core in
// isolation (shared by the core and profiler test suites).
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"

namespace papisim::test_support {

class FakeComponent : public Component {
 public:
  explicit FakeComponent(std::string name, std::vector<std::string> event_names,
                         std::string disabled = "")
      : name_(std::move(name)),
        event_names_(std::move(event_names)),
        disabled_(std::move(disabled)),
        counters_(event_names_.size(), 0) {}

  std::string name() const override { return name_; }
  std::string description() const override { return "fake component for tests"; }
  std::string disabled_reason() const override { return disabled_; }

  std::vector<EventInfo> events() const override {
    std::vector<EventInfo> out;
    for (const auto& n : event_names_) {
      out.push_back({name_ + ":::" + n, "", "", false});
    }
    return out;
  }

  bool knows_event(std::string_view native) const override {
    return index_of(native).has_value();
  }

  bool is_instantaneous(std::string_view native) const override {
    return gauge_ && knows_event(native);
  }

  EventKind event_kind(std::string_view native) const override {
    if (!knows_event(native)) return EventKind::Counter;
    if (histogram_) return EventKind::Histogram;
    return gauge_ ? EventKind::Gauge : EventKind::Counter;
  }

  std::unique_ptr<ControlState> create_state() override {
    return std::make_unique<State>();
  }

  void add_event(ControlState& state, std::string_view native) override {
    const auto idx = index_of(native);
    if (!idx) throw Error(Status::NoEvent, "fake: no event");
    auto& st = static_cast<State&>(state);
    st.indices.push_back(*idx);
    st.snapshots.push_back(0);
  }

  std::size_t num_events(const ControlState& state) const override {
    return static_cast<const State&>(state).indices.size();
  }

  void start(ControlState& state) override {
    ++starts;
    auto& st = static_cast<State&>(state);
    for (std::size_t i = 0; i < st.indices.size(); ++i) {
      st.snapshots[i] = gauge_ ? 0 : counters_[st.indices[i]];
    }
  }
  void stop(ControlState& /*state*/) override { ++stops; }
  void read(ControlState& state, std::span<long long> out) override {
    auto& st = static_cast<State&>(state);
    for (std::size_t i = 0; i < st.indices.size(); ++i) {
      out[i] = counters_[st.indices[i]] - st.snapshots[i];
    }
  }
  void reset(ControlState& state) override { start(state); }

  double read_percentile(ControlState& state, std::string_view native,
                         double q) override {
    const auto idx = index_of(native);
    if (!idx || !histogram_) return Component::read_percentile(state, native, q);
    auto& st = static_cast<State&>(state);
    // Window = samples recorded since start() (snapshot holds the start count).
    std::size_t from = 0;
    for (std::size_t i = 0; i < st.indices.size(); ++i) {
      if (st.indices[i] == *idx) {
        from = static_cast<std::size_t>(st.snapshots[i]);
        break;
      }
    }
    std::vector<long long> window(samples_[*idx].begin() +
                                      static_cast<std::ptrdiff_t>(from),
                                  samples_[*idx].end());
    if (window.empty()) return 0.0;
    std::sort(window.begin(), window.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(window.size() - 1) + 0.5);
    return static_cast<double>(window[std::min(rank, window.size() - 1)]);
  }

  /// Advance a counter (by event index).
  void bump(std::size_t idx, long long delta) { counters_[idx] += delta; }

  /// Record one histogram sample; the event's counter value becomes the
  /// number of recorded samples (histogram read semantics).
  void record(std::size_t idx, long long value) {
    if (samples_.size() <= idx) samples_.resize(event_names_.size());
    samples_[idx].push_back(value);
    counters_[idx] = static_cast<long long>(samples_[idx].size());
  }

  /// Make every event a gauge (instantaneous) instead of a counter.
  void set_gauge(bool on) { gauge_ = on; }

  /// Make every event a histogram (read = sample count, record() feeds it).
  void set_histogram(bool on) {
    histogram_ = on;
    if (on) samples_.resize(event_names_.size());
  }

  int starts = 0;
  int stops = 0;

 private:
  struct State : ControlState {
    std::vector<std::size_t> indices;
    std::vector<long long> snapshots;
  };

  std::optional<std::size_t> index_of(std::string_view native) const {
    for (std::size_t i = 0; i < event_names_.size(); ++i) {
      if (event_names_[i] == native) return i;
    }
    return std::nullopt;
  }

  std::string name_;
  std::vector<std::string> event_names_;
  std::string disabled_;
  std::vector<long long> counters_;
  std::vector<std::vector<long long>> samples_;
  bool gauge_ = false;
  bool histogram_ = false;
};

}  // namespace papisim::test_support
