// Acceptance tests for hot-footprint attribution (the tentpole claim of
// DESIGN.md §3g):
//  - a planted hot array dominates its phase's footprint map at sampling
//    periods 64 and 1024;
//  - the drained sample stream is bit-identical across host thread counts
//    under deferred-time parallel replay (1 vs 4 driving threads).
#include <gtest/gtest.h>

#include <vector>

#include "analysis/footprint.hpp"
#include "sim/thread_pool.hpp"
#include "spe/collector.hpp"
#include "testing/machine_builder.hpp"

namespace papisim::spe {
namespace {

using test_support::MachineBuilder;

constexpr std::uint64_t kHotBase = 0x40000000ull;  // 64 KiB planted hot array
constexpr std::uint64_t kHotBytes = 64 << 10;
constexpr std::uint64_t kColdBase = 0x80000000ull;  // 32 MiB strided sweep
constexpr std::uint64_t kCopySrc = 0x10000000ull;
constexpr std::uint64_t kCopyDst = 0x20000000ull;

/// Phase 1: sequential copy.  Phase 2: one strided sweep over the cold
/// array, then eight sequential passes over the hot array.  Returns the
/// ground-truth windows (virtual seconds) bracketing the two phases.
std::vector<analysis::PhaseWindow> run_two_phases(sim::Machine& machine) {
  sim::AccessEngine& eng = machine.engine(0, 0);
  const double t0 = machine.clock().now_sec();
  sim::LoopDesc copy;
  copy.streams = {{kCopySrc, 8, 8, sim::AccessKind::Load},
                  {kCopyDst, 8, 8, sim::AccessKind::Store}};
  copy.iterations = 1u << 18;
  for (int rep = 0; rep < 8; ++rep) eng.execute(copy);

  const double t1 = machine.clock().now_sec();
  for (int rep = 0; rep < 8; ++rep) {
    eng.execute(test_support::load_loop(kColdBase, 1024, (32u << 20) / 1024));
    for (int pass = 0; pass < 8; ++pass) {
      eng.execute(test_support::load_loop(kHotBase, 8, kHotBytes / 8));
    }
  }
  const double t2 = machine.clock().now_sec();
  return {{"copy", t0, t1}, {"hot", t1, t2}};
}

class FootprintDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FootprintDominance, PlantedHotArrayDominatesItsPhase) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  const std::uint64_t period = GetParam();
  auto machine = MachineBuilder::small().quiet();
  SpeConfig cfg;
  cfg.period = period;
  cfg.ring_capacity = 1 << 20;  // no drops: the acceptance is about shares
  SpeCollector collector(*machine, cfg);

  const std::vector<analysis::PhaseWindow> windows = run_two_phases(*machine);
  const std::vector<Sample> samples = collector.drain();
  ASSERT_GT(samples.size(), 100u);
  EXPECT_EQ(collector.totals().drops, 0u);

  analysis::FootprintConfig fp_cfg;
  fp_cfg.period = period;
  fp_cfg.line_bytes = machine->config().line_bytes;
  const analysis::FootprintReport fp =
      analysis::footprint(samples, windows, fp_cfg);

  ASSERT_EQ(fp.phases.size(), 2u);
  EXPECT_EQ(fp.unattributed_samples, 0u);
  EXPECT_EQ(fp.total_samples, samples.size());

  // The hot phase's top bucket is the planted array, and it dominates: more
  // samples than any other bucket by at least 3x (it receives ~8x the
  // per-bucket touches of the cold sweep).
  const analysis::PhaseFootprint& hot = fp.phases[1];
  ASSERT_FALSE(hot.buckets.empty());
  const analysis::FootprintBucket& top = hot.buckets[0];
  EXPECT_EQ(top.base, kHotBase);
  EXPECT_EQ(top.stores, 0u);
  if (hot.buckets.size() > 1) {
    EXPECT_GE(top.samples, 3 * hot.buckets[1].samples);
  }
  // Re-touching a 64 KiB array keeps it cache-resident: L3 hits dominate.
  EXPECT_EQ(top.dominant_level(), HitLevel::L3Hit);

  // The copy phase has no business containing the hot array.
  for (const analysis::FootprintBucket& b : fp.phases[0].buckets) {
    EXPECT_NE(b.base, kHotBase);
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, FootprintDominance,
                         ::testing::Values(64, 1024));

/// Replay the same per-core loops under deferred time with different host
/// thread counts; the concatenated per-core sample stream must match
/// bit-for-bit (the determinism contract the footprint report relies on).
std::vector<Sample> replay_parallel(std::uint32_t host_threads,
                                    std::uint64_t period) {
  auto machine = MachineBuilder::small().cores(4).lateral_castout(false).quiet();
  SpeConfig cfg;
  cfg.period = period;
  cfg.ring_capacity = 1 << 18;
  SpeCollector collector(*machine, cfg);

  constexpr std::uint32_t kCores = 4;
  std::vector<Sample> stream;
  for (int batch = 0; batch < 3; ++batch) {
    for (std::uint32_t c = 0; c < kCores; ++c) {
      machine->engine(0, c).set_deferred_time(true);
    }
    sim::ThreadPool pool(host_threads - 1);
    pool.parallel_for(kCores, [&](std::uint32_t c) {
      sim::AccessEngine& eng = machine->engine(0, c);
      // Disjoint per-core ranges, shifted per batch so levels vary.
      const std::uint64_t base =
          (1ull << 24) * (c + 1) + static_cast<std::uint64_t>(batch) * 4096;
      eng.execute(test_support::load_loop(base, 64, 20000));
      sim::LoopDesc mixed;
      mixed.streams = {{base, 8, 8, sim::AccessKind::Load},
                       {base + (1u << 22), 8, 8, sim::AccessKind::Store}};
      mixed.iterations = 30000;
      eng.execute(mixed);
    });
    double max_ns = 0.0;
    for (std::uint32_t c = 0; c < kCores; ++c) {
      max_ns = std::max(max_ns, machine->engine(0, c).take_deferred_time_ns());
      machine->engine(0, c).set_deferred_time(false);
    }
    machine->advance(max_ns);
    // Drain at the batch join -- a deterministic point -- keeping the
    // canonical ascending-core concatenation.
    collector.drain_into(stream);
  }
  return stream;
}

TEST(FootprintDeterminism, SampleStreamBitIdenticalAcrossHostThreadCounts) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  for (const std::uint64_t period : {std::uint64_t{64}, std::uint64_t{1024}}) {
    const std::vector<Sample> serial = replay_parallel(1, period);
    const std::vector<Sample> parallel = replay_parallel(4, period);
    ASSERT_GT(serial.size(), 0u);
    ASSERT_EQ(serial.size(), parallel.size()) << "period " << period;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i])
          << "period " << period << ", sample " << i << ": addr "
          << serial[i].addr << " vs " << parallel[i].addr;
    }
  }
}

TEST(FootprintJoin, SamplesOutsideEveryWindowAreUnattributed) {
  std::vector<Sample> samples(3);
  samples[0].addr = 0x1000;
  samples[0].time_ns = 500;       // before every window
  samples[1].addr = 0x1000;
  samples[1].time_ns = 1500;      // inside
  samples[2].addr = 0x2000;
  samples[2].time_ns = 999999999; // long after
  const std::vector<analysis::PhaseWindow> windows = {{"w", 1e-6, 2e-6}};
  const analysis::FootprintReport fp = analysis::footprint(samples, windows);
  EXPECT_EQ(fp.total_samples, 3u);
  EXPECT_EQ(fp.unattributed_samples, 2u);
  ASSERT_EQ(fp.phases.size(), 1u);
  EXPECT_EQ(fp.phases[0].samples, 1u);
  ASSERT_EQ(fp.phases[0].buckets.size(), 1u);
  EXPECT_EQ(fp.phases[0].buckets[0].base, 0u);  // 0x1000 falls in bucket 0
}

TEST(FootprintJoin, TopKCutFoldsTailIntoOtherSamples) {
  std::vector<Sample> samples;
  for (std::uint64_t b = 0; b < 10; ++b) {       // 10 buckets...
    for (std::uint64_t i = 0; i <= b; ++i) {     // ...with 1..10 samples
      Sample s;
      s.addr = b * (64 << 10);
      s.time_ns = 1000;
      samples.push_back(s);
    }
  }
  const std::vector<analysis::PhaseWindow> windows = {{"w", 0.0, 1.0}};
  analysis::FootprintConfig cfg;
  cfg.top_k = 3;
  const analysis::FootprintReport fp = analysis::footprint(samples, windows, cfg);
  ASSERT_EQ(fp.phases[0].buckets.size(), 3u);
  EXPECT_EQ(fp.phases[0].buckets[0].samples, 10u);
  EXPECT_EQ(fp.phases[0].buckets[1].samples, 9u);
  EXPECT_EQ(fp.phases[0].buckets[2].samples, 8u);
  EXPECT_EQ(fp.phases[0].other_samples, 1u + 2 + 3 + 4 + 5 + 6 + 7);
  EXPECT_EQ(fp.phases[0].samples, 55u);
}

}  // namespace
}  // namespace papisim::spe
