// Unit tests for the precise-event sampling core (src/spe): ring edge cases
// (overflow drop accounting, wraparound ordering, concurrent merge-on-read),
// deterministic gap sequences, the AccessEngine hook, and SpeComponent's
// view through the EventSet API.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "components/spe_component.hpp"
#include "core/library.hpp"
#include "spe/collector.hpp"
#include "spe/ring.hpp"
#include "testing/machine_builder.hpp"

namespace papisim::spe {
namespace {

using test_support::MachineBuilder;

Sample make_sample(std::uint64_t i) {
  Sample s;
  s.addr = i * 64;
  s.time_ns = i;
  s.core = 0;
  return s;
}

TEST(SampleRing, RejectsWhenFullWithExactDropAccounting) {
  SampleRing ring(8);
  ASSERT_EQ(ring.capacity(), 8u);
  std::size_t pushed = 0, rejected = 0;
  for (std::uint64_t i = 0; i < 20; ++i) {
    (ring.try_push(make_sample(i)) ? pushed : rejected) += 1;
  }
  EXPECT_EQ(pushed, 8u);
  EXPECT_EQ(rejected, 12u);
  EXPECT_EQ(ring.size(), 8u);

  // A full drain frees every slot; the first rejected sample was never
  // written (drop, not overwrite), so the survivors are exactly 0..7.
  std::vector<Sample> out;
  EXPECT_EQ(ring.pop_all(out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], make_sample(i));
  EXPECT_TRUE(ring.try_push(make_sample(99)));
}

TEST(SampleRing, WraparoundPreservesFifoOrder) {
  SampleRing ring(4);
  std::vector<Sample> out;
  std::uint64_t next = 0;
  // Partial drains force head/tail past the capacity repeatedly; order must
  // stay FIFO across every wrap.
  for (int round = 0; round < 10; ++round) {
    while (ring.try_push(make_sample(next))) ++next;
    ring.pop_all(out);
  }
  ASSERT_EQ(out.size(), next);
  for (std::uint64_t i = 0; i < next; ++i) EXPECT_EQ(out[i], make_sample(i));
}

TEST(SampleRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SampleRing(5).capacity(), 8u);
  EXPECT_EQ(SampleRing(1).capacity(), 2u);
  EXPECT_EQ(SampleRing(64).capacity(), 64u);
}

TEST(SampleRing, ConcurrentProducerConsumerLosesNothing) {
  SampleRing ring(1 << 10);
  constexpr std::uint64_t kTotal = 200000;
  std::vector<Sample> consumed;
  std::uint64_t dropped = 0;

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTotal; ++i) {
      if (!ring.try_push(make_sample(i))) ++dropped;
    }
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) {
    ring.pop_all(consumed);
    std::this_thread::yield();
  }
  producer.join();
  ring.pop_all(consumed);  // anything published after the last drain

  // Everything the producer pushed arrives exactly once, in push order
  // (addresses are strictly increasing, with gaps where drops occurred).
  EXPECT_EQ(consumed.size() + dropped, kTotal);
  for (std::size_t i = 1; i < consumed.size(); ++i) {
    EXPECT_LT(consumed[i - 1].addr, consumed[i].addr);
  }
}

TEST(CoreSampler, GapSequenceIsDeterministicPerCoreAndSeed) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  SpeConfig cfg;
  cfg.period = 64;
  auto drive = [&](std::uint16_t core) {
    CoreSampler s(core, cfg);
    for (std::uint64_t i = 0; i < 20000; ++i) {
      s.on_access(i * 64, AccessKind::Load, HitLevel::L3Hit, 64, i);
    }
    std::vector<Sample> out;
    s.drain(out);
    return out;
  };
  const std::vector<Sample> a = drive(3);
  const std::vector<Sample> b = drive(3);
  const std::vector<Sample> c = drive(4);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c) << "different cores must sample different accesses";
  EXPECT_GT(a.size(), 0u);

  // Jittered gaps stay within [period/2, period + ceil(period/2)].
  std::uint64_t prev = 0;
  for (const Sample& s : a) {
    const std::uint64_t gap = s.time_ns - prev;
    EXPECT_GE(gap, cfg.period / 2);
    EXPECT_LE(gap, cfg.period + (cfg.period + 1) / 2);
    prev = s.time_ns;
  }
}

TEST(CoreSampler, PeriodOneSamplesEveryAccessAndCountsRingDrops) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  SpeConfig cfg;
  cfg.period = 1;
  cfg.ring_capacity = 16;
  CoreSampler s(0, cfg);
  for (std::uint64_t i = 0; i < 100; ++i) {
    s.on_access(i, AccessKind::Store, HitLevel::Memory, 8, i);
  }
  EXPECT_EQ(s.accesses(), 100u);
  EXPECT_EQ(s.samples(), 16u);  // ring capacity
  EXPECT_EQ(s.drops(), 84u);
  EXPECT_EQ(s.samples() + s.drops(), s.accesses());

  std::vector<Sample> out;
  s.drain(out);
  ASSERT_EQ(out.size(), 16u);
  for (std::uint64_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].addr, i);
}

TEST(CoreSampler, SetPeriodRestartsTheGapSequence) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  SpeConfig cfg;
  cfg.period = 32;
  CoreSampler fresh(7, cfg);
  CoreSampler reused(7, cfg);
  // Pollute `reused` with a different period, then restore: the stream must
  // match a fresh sampler exactly (ordinal and countdown reset).
  reused.set_period(5);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    reused.on_access(i, AccessKind::Load, HitLevel::L3Hit, 0, i);
  }
  std::vector<Sample> scratch;
  reused.drain(scratch);
  reused.set_period(32);

  std::vector<Sample> a, b;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    fresh.on_access(i, AccessKind::Load, HitLevel::L3Hit, 0, i);
    reused.on_access(i, AccessKind::Load, HitLevel::L3Hit, 0, i);
  }
  fresh.drain(a);
  reused.drain(b);
  EXPECT_EQ(a, b);
}

TEST(CoreSampler, MergeOnReadAcrossConcurrentProducers) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  SpeConfig cfg;
  cfg.period = 8;
  cfg.ring_capacity = 1 << 8;  // small enough to wrap many times
  constexpr std::size_t kCores = 4;
  constexpr std::uint64_t kPerCore = 300000;
  std::vector<std::unique_ptr<CoreSampler>> samplers;
  for (std::size_t c = 0; c < kCores; ++c) {
    samplers.push_back(
        std::make_unique<CoreSampler>(static_cast<std::uint16_t>(c), cfg));
  }

  // One producer thread per sampler (the SPSC contract); the main thread is
  // the single consumer, draining every ring while producers run.
  std::vector<std::thread> producers;
  std::atomic<std::size_t> done{0};
  for (std::size_t c = 0; c < kCores; ++c) {
    producers.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < kPerCore; ++i) {
        samplers[c]->on_access(i * 64, AccessKind::Load, HitLevel::Memory, 64,
                               i);
      }
      done.fetch_add(1);
    });
  }
  std::vector<std::vector<Sample>> drained(kCores);
  while (done.load() < kCores) {
    for (std::size_t c = 0; c < kCores; ++c) samplers[c]->drain(drained[c]);
    std::this_thread::yield();
  }
  for (auto& t : producers) t.join();
  for (std::size_t c = 0; c < kCores; ++c) samplers[c]->drain(drained[c]);

  for (std::size_t c = 0; c < kCores; ++c) {
    EXPECT_EQ(samplers[c]->accesses(), kPerCore);
    EXPECT_GT(samplers[c]->samples(), 0u);
    EXPECT_EQ(drained[c].size(), samplers[c]->samples());
    // Per-core FIFO survives concurrent draining: timestamps ascend.
    for (std::size_t i = 1; i < drained[c].size(); ++i) {
      EXPECT_LT(drained[c][i - 1].time_ns, drained[c][i].time_ns);
    }
    for (const Sample& s : drained[c]) {
      EXPECT_EQ(s.core, static_cast<std::uint16_t>(c));
    }
  }
}

TEST(SpeCollector, AttachesSamplersAndAccountsReplayTraffic) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  auto machine = MachineBuilder::small().quiet();
  SpeConfig cfg;
  cfg.period = 16;
  {
    SpeCollector collector(*machine, cfg);
    ASSERT_EQ(collector.num_cores(), 2u);
    EXPECT_EQ(machine->engine(0, 0).spe(), &collector.core_sampler(0));

    const sim::LoopStats st =
        machine->engine(0, 0).execute(test_support::load_loop(1 << 20, 64, 4096));
    const SpeCollector::Totals t = collector.totals();
    EXPECT_EQ(t.accesses, st.line_touches);
    EXPECT_GT(t.samples, 0u);
    EXPECT_EQ(t.drops, 0u);

    const std::vector<Sample> samples = collector.drain();
    EXPECT_EQ(samples.size(), t.samples);
    for (const Sample& s : samples) {
      EXPECT_EQ(s.core, 0);
      EXPECT_EQ(s.kind, AccessKind::Load);
      EXPECT_EQ(s.stride, 64);
      EXPECT_GE(s.addr, std::uint64_t{1} << 20);
      EXPECT_LT(s.addr, (std::uint64_t{1} << 20) + 4096 * 64);
    }
  }
  // RAII detach: replay after destruction must not touch freed samplers.
  EXPECT_EQ(machine->engine(0, 0).spe(), nullptr);
  machine->engine(0, 0).execute(test_support::load_loop(1 << 20, 64, 64));
}

TEST(SpeCollector, ScalarAccessesAreSampledPrefetchesAreNot) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  auto machine = MachineBuilder::small().quiet();
  SpeConfig cfg;
  cfg.period = 1;  // every access
  SpeCollector collector(*machine, cfg);
  sim::AccessEngine& eng = machine->engine(0, 0);
  eng.load(1 << 20, 8);
  eng.store((1 << 20) + 64, 8);
  eng.prefetch((1 << 20) + 128);
  eng.take_scalar_stats();

  const std::vector<Sample> samples = collector.drain();
  ASSERT_EQ(samples.size(), 2u) << "prefetch is not a demand access";
  EXPECT_EQ(samples[0].kind, AccessKind::Load);
  EXPECT_EQ(samples[0].addr, std::uint64_t{1} << 20);
  EXPECT_EQ(samples[0].stride, 0);
  EXPECT_EQ(samples[1].kind, AccessKind::Store);
  EXPECT_EQ(samples[1].addr, (std::uint64_t{1} << 20) + 64);
}

TEST(SpeCollectorDisabled, ReportsZerosWhenCompiledOut) {
  if (kEnabled) GTEST_SKIP() << "covered by the enabled-path tests";
  auto machine = MachineBuilder::small().quiet();
  SpeCollector collector(*machine);
  EXPECT_EQ(collector.num_cores(), 0u);
  machine->engine(0, 0).execute(test_support::load_loop(1 << 20, 64, 1024));
  const SpeCollector::Totals t = collector.totals();
  EXPECT_EQ(t.samples, 0u);
  EXPECT_EQ(t.accesses, 0u);
  EXPECT_TRUE(collector.drain().empty());
}

TEST(SpeComponentTest, AvailabilityTracksCompileOut) {
  components::SpeComponent comp;
  EXPECT_EQ(comp.available(), kEnabled);
  EXPECT_EQ(comp.events().size(), 4u);
  EXPECT_TRUE(comp.knows_event("samples"));
  EXPECT_TRUE(comp.knows_event("period"));
  EXPECT_FALSE(comp.knows_event("nonsense"));
  EXPECT_TRUE(comp.is_instantaneous("period"));
  EXPECT_FALSE(comp.is_instantaneous("samples"));
}

TEST(SpeComponentTest, EventSetReadsMatchCollectorTotals) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  auto machine = MachineBuilder::small().quiet();
  SpeConfig cfg;
  cfg.period = 64;
  SpeCollector collector(*machine, cfg);

  Library lib;
  lib.register_component(std::make_unique<components::SpeComponent>(&collector));
  auto es = lib.create_eventset();
  es->add_event("spe:::samples");
  es->add_event("spe:::drops");
  es->add_event("spe:::accesses");
  es->add_event("spe:::period");
  es->start();

  const sim::LoopStats st =
      machine->engine(0, 0).execute(test_support::load_loop(1 << 20, 64, 65536));
  std::vector<long long> v(4);
  es->read(v);
  const SpeCollector::Totals t = collector.totals();
  EXPECT_EQ(static_cast<std::uint64_t>(v[0]), t.samples);
  EXPECT_EQ(static_cast<std::uint64_t>(v[1]), t.drops);
  EXPECT_EQ(static_cast<std::uint64_t>(v[2]), t.accesses);
  EXPECT_EQ(static_cast<std::uint64_t>(v[2]), st.line_touches);
  EXPECT_EQ(v[3], 64);

  // Counters are deltas since start(): a reset re-zeros the window.
  es->reset();
  es->read(v);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[2], 0);
  EXPECT_EQ(v[3], 64) << "the period gauge is instantaneous, not windowed";

  EXPECT_THROW(es->add_event("spe:::bogus"), Error);
}

TEST(SpeComponentTest, SelfmonCountersMirrorSampleAndDropTotals) {
  if (!kEnabled) GTEST_SKIP() << "spe compiled out";
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  selfmon::reset_for_testing();
  auto machine = MachineBuilder::small().quiet();
  SpeConfig cfg;
  cfg.period = 4;
  cfg.ring_capacity = 32;  // force drops
  SpeCollector collector(*machine, cfg);
  machine->engine(0, 0).execute(test_support::load_loop(1 << 20, 64, 8192));

  const SpeCollector::Totals t = collector.totals();
  const selfmon::Snapshot snap = selfmon::snapshot();
  EXPECT_EQ(snap.counter(selfmon::CounterId::SpeSamples), t.samples);
  EXPECT_EQ(snap.counter(selfmon::CounterId::SpeDrops), t.drops);
  EXPECT_GT(t.drops, 0u) << "the tiny ring was meant to overflow";
}

}  // namespace
}  // namespace papisim::spe
