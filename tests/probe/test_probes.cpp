// Refutation-harness tests (DESIGN.md §3f).
//
// Tier-1 runs the curated sub-grid: every mechanism probe must CONFIRM on
// the reference machines, and deliberately broken policies must REFUTE --
// with the *right* mechanism flagged and a collapsed effect size.  The full
// grid rides behind the `probe-full` ctest label / PAPISIM_PROBE_FULL env
// (see CMakePresets.json `probe-full`).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "probe/report.hpp"

namespace papisim::probe {
namespace {

MechanismReport find(const std::vector<MechanismReport>& reports,
                     const std::string& mechanism) {
  for (const MechanismReport& r : reports) {
    if (r.mechanism == mechanism) return r;
  }
  ADD_FAILURE() << "no mechanism report named " << mechanism;
  return {};
}

// ------------------------------------------------------------ confirmation

class ProbeConfirms : public ::testing::TestWithParam<const char*> {};

TEST_P(ProbeConfirms, CuratedGridConfirmsOnSummit) {
  ProbeOptions opt;  // summit, curated grid
  const auto reports = run_all_probes(opt);
  const MechanismReport r = find(reports, GetParam());
  std::ostringstream detail;
  write_probe_text(detail, reports);
  EXPECT_EQ(r.verdict, Verdict::Confirm) << detail.str();
  EXPECT_GE(r.effect_size, r.min_effect);
  EXPECT_GT(r.line_touches, 0u);
  EXPECT_FALSE(r.points.empty());
}

INSTANTIATE_TEST_SUITE_P(Mechanisms, ProbeConfirms,
                         ::testing::Values("write_allocate_bypass",
                                           "l3_victim_borrow",
                                           "prefetch_amplification",
                                           "capacity_spill", "channel_stripe",
                                           "rw_asymmetry"),
                         [](const auto& info) { return std::string(info.param); });

TEST(ProbeConfirms, TellicoPolicySetConfirmsToo) {
  ProbeOptions opt;
  opt.machine = sim::MachineConfig::tellico();
  EXPECT_TRUE(all_confirmed(run_all_probes(opt)));
}

TEST(ProbeConfirms, Power10PreviewConfirmsThroughTheTimingKnee) {
  // 400 GB/s OMI makes the copy arms touch-time-bound instead of
  // bandwidth-bound; the analytic max() composition must track that.
  ProbeOptions opt;
  opt.machine = sim::MachineConfig::power10_preview();
  EXPECT_TRUE(all_confirmed(run_all_probes(opt)));
}

// -------------------------------------------------------------- refutation
//
// The harness is only useful if it *fails* when a mechanism disappears: the
// probes hardcode the reference claims (e.g. "bypass up to 2 load streams
// per store") rather than reading them back from the config under test, so
// a policy regression cannot silently re-baseline them.

TEST(ProbeRefutes, DisabledStoreBypassIsRefutedWithCollapsedEffect) {
  ProbeOptions opt;
  opt.machine.store_bypass = false;
  const auto reports = run_all_probes(opt);

  const MechanismReport bypass = find(reports, "write_allocate_bypass");
  EXPECT_EQ(bypass.verdict, Verdict::Refute);
  // The allocate-read contrast between sparse and dense mixes vanishes...
  EXPECT_LT(bypass.effect_size, bypass.min_effect);
  // ...which is a *nonzero* gap from the claimed effect.
  EXPECT_GT(bypass.expected_effect - bypass.effect_size, 0.5);

  // The other five mechanisms are untouched by the bypass policy: a refuter
  // that flags everything is as useless as one that flags nothing.
  for (const char* other :
       {"l3_victim_borrow", "prefetch_amplification", "capacity_spill",
        "channel_stripe", "rw_asymmetry"}) {
    EXPECT_EQ(find(reports, other).verdict, Verdict::Confirm) << other;
  }
}

TEST(ProbeRefutes, DisabledLateralCastoutIsRefuted) {
  ProbeOptions opt;
  opt.machine.lateral_castout = false;
  const auto reports = run_all_probes(opt);
  const MechanismReport borrow = find(reports, "l3_victim_borrow");
  EXPECT_EQ(borrow.verdict, Verdict::Refute);
  EXPECT_LT(borrow.effect_size, borrow.min_effect);
  EXPECT_GT(borrow.expected_effect - borrow.effect_size, 0.5);
}

TEST(ProbeRefutes, ZeroRetentionIsRefuted) {
  // Cast-out still happens but every recovery fails: same observable as no
  // cast-out at all, and the probe must not be fooled by the distinction.
  ProbeOptions opt;
  opt.machine.castout_retention = 0.0;
  const auto reports = run_all_probes(opt);
  EXPECT_EQ(find(reports, "l3_victim_borrow").verdict, Verdict::Refute);
}

// ------------------------------------------------------------------ report

TEST(ProbeReport, JsonIsWellFormedAndCoversEveryMechanism) {
  ProbeOptions opt;
  const auto reports = run_all_probes(opt);
  std::ostringstream os;
  write_probe_json(os, reports, opt);
  const std::string json = os.str();

  // Structural sanity without a JSON parser: balanced braces/brackets and
  // one mechanism object per probe.
  std::int64_t braces = 0, brackets = 0;
  std::size_t mechs = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '{') ++braces;
    if (json[i] == '}') --braces;
    if (json[i] == '[') ++brackets;
    if (json[i] == ']') --brackets;
    if (json.compare(i, 14, "\"mechanism\": \"") == 0) ++mechs;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(mechs, reports.size());
  EXPECT_NE(json.find("\"papisim_probe\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"machine\": \"summit\""), std::string::npos);
  EXPECT_NE(json.find("\"grid\": \"curated\""), std::string::npos);
  EXPECT_NE(json.find("\"confirmed\": 6"), std::string::npos);
}

TEST(ProbeReport, TextReportNamesEveryVerdict) {
  ProbeOptions opt;
  const auto reports = run_all_probes(opt);
  std::ostringstream os;
  write_probe_text(os, reports);
  for (const MechanismReport& r : reports) {
    EXPECT_NE(os.str().find(r.mechanism), std::string::npos) << r.mechanism;
  }
  EXPECT_NE(os.str().find("CONFIRM"), std::string::npos);
}

// --------------------------------------------------------------- full grid

TEST(ProbeFullGrid, EveryMechanismConfirmsOverTheFullGrid) {
  if (std::getenv("PAPISIM_PROBE_FULL") == nullptr) {
    GTEST_SKIP() << "set PAPISIM_PROBE_FULL=1 (ctest label probe-full / the "
                    "probe-full preset) to sweep the full grid";
  }
  ProbeOptions opt;
  opt.full_grid = true;
  const auto reports = run_all_probes(opt);
  std::ostringstream detail;
  write_probe_text(detail, reports);
  EXPECT_TRUE(all_confirmed(reports)) << detail.str();
  // The full grid is a strict superset of the curated one.
  ProbeOptions curated;
  const auto small = run_all_probes(curated);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_GE(reports[i].points.size(), small[i].points.size())
        << reports[i].mechanism;
  }
}

TEST(ProbeFullGrid, FullGridRefutesDisabledBypassToo) {
  if (std::getenv("PAPISIM_PROBE_FULL") == nullptr) {
    GTEST_SKIP() << "set PAPISIM_PROBE_FULL=1 to sweep the full grid";
  }
  ProbeOptions opt;
  opt.full_grid = true;
  opt.machine.store_bypass = false;
  EXPECT_EQ(find(run_all_probes(opt), "write_allocate_bypass").verdict,
            Verdict::Refute);
}

}  // namespace
}  // namespace papisim::probe
