// Tests for the concrete components: perf_nest, pcp, nvml, infiniband.
#include <gtest/gtest.h>

#include <memory>

#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/library.hpp"

namespace papisim::components {
namespace {

using sim::Credentials;
using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

// ---------------------------------------------------------------- perf_nest

TEST(PerfNest, DisabledWithoutPrivilegesButStillRegisters) {
  Machine summit(MachineConfig::summit());
  PerfNestComponent comp(summit, summit.user_credentials());
  EXPECT_FALSE(comp.available());
  EXPECT_NE(comp.disabled_reason().find("privileges"), std::string::npos);
  // Adding an event through the library reports ComponentDisabled.
  Library lib;
  lib.register_component(
      std::make_unique<PerfNestComponent>(summit, summit.user_credentials()));
  auto es = lib.create_eventset();
  try {
    es->add_event("perf_nest:::power9_nest_mba0::PM_MBA0_READ_BYTES");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::ComponentDisabled);
  }
}

TEST(PerfNest, CountsSocketTrafficOnPrivilegedMachine) {
  Machine tellico(MachineConfig::tellico());
  tellico.set_noise_enabled(false);
  Library lib;
  lib.register_component(
      std::make_unique<PerfNestComponent>(tellico, tellico.user_credentials()));
  auto es = lib.create_eventset();
  // Sum all 8 channels for reads, as the paper's experiments do.
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    es->add_event("perf_nest:::power9_nest_mba" + std::to_string(ch) +
                  "::PM_MBA" + std::to_string(ch) + "_READ_BYTES:cpu=0");
  }
  es->start();
  for (std::uint64_t line = 0; line < 100; ++line) {
    tellico.memctrl(0).add_line(line, MemDir::Read);
  }
  const auto v = es->read();
  long long total = 0;
  for (const long long x : v) total += x;
  EXPECT_EQ(total, 6400);
  es->stop();
}

TEST(PerfNest, BareNativeNamesResolveWithoutPrefix) {
  Machine tellico(MachineConfig::tellico());
  tellico.set_noise_enabled(false);
  Library lib;
  lib.register_component(
      std::make_unique<PerfNestComponent>(tellico, tellico.user_credentials()));
  auto es = lib.create_eventset();
  // Table I (Tellico) names are bare perf-style names.
  EXPECT_NO_THROW(es->add_event("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"));
}

TEST(PerfNest, EnumeratesAllNestEvents) {
  Machine tellico(MachineConfig::tellico());
  PerfNestComponent comp(tellico, tellico.user_credentials());
  EXPECT_EQ(comp.events().size(), 32u);  // 8 ch x {READ,WRITE} x {BYTES,REQS}
}

// --------------------------------------------------------------------- pcp

struct PcpComponentFixture : ::testing::Test {
  PcpComponentFixture()
      : machine(MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    machine.set_noise_enabled(false);
    lib.register_component(std::make_unique<PcpComponent>(client));
  }
  Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  Library lib;
};

TEST_F(PcpComponentFixture, UnprivilegedUserCountsNestTraffic) {
  ASSERT_FALSE(machine.user_credentials().privileged());
  auto es = lib.create_eventset();
  es->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  es->start();
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(es->read()[0], 128);
  es->stop();
}

TEST_F(PcpComponentFixture, CpuQualifierPicksSocketInstance) {
  auto es0 = lib.create_eventset();
  es0->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87");
  auto es1 = lib.create_eventset();
  es1->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu175");
  es0->start();
  es1->start();
  machine.memctrl(1).add_line(0, MemDir::Write);
  EXPECT_EQ(es0->read()[0], 0);
  EXPECT_EQ(es1->read()[0], 64);
}

TEST_F(PcpComponentFixture, MalformedNamesRejected) {
  auto es = lib.create_eventset();
  const char* bad[] = {
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES",  // no .value
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu999",
      "pcp:::unknown.metric.value",
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpuXY",
  };
  for (const char* name : bad) EXPECT_THROW(es->add_event(name), Error) << name;
}

TEST_F(PcpComponentFixture, OneFetchRoundTripPerDistinctCpu) {
  auto* comp = static_cast<PcpComponent*>(lib.find_component("pcp"));
  auto es = lib.create_eventset();
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    es->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_READ_BYTES.value:cpu87");
  }
  const std::uint64_t before = comp->fetches();
  es->start();
  EXPECT_EQ(comp->fetches(), before + 1);  // all 8 metrics in one pmFetch
  es->read();
  EXPECT_EQ(comp->fetches(), before + 2);
  es->stop();
}

TEST_F(PcpComponentFixture, MixedCpuInstancesFetchOncePerSocket) {
  // One event set watching BOTH sockets: the component groups the pmFetch
  // round trips by distinct cpu instance (2 fetches per read, not 16).
  auto* comp = static_cast<PcpComponent*>(lib.find_component("pcp"));
  auto es = lib.create_eventset();
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    es->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_READ_BYTES.value:cpu87");
    es->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_READ_BYTES.value:cpu175");
  }
  const std::uint64_t before = comp->fetches();
  es->start();
  EXPECT_EQ(comp->fetches(), before + 2);
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(1).add_line(0, MemDir::Read);
  machine.memctrl(1).add_line(0, MemDir::Read);
  const auto v = es->read();
  EXPECT_EQ(comp->fetches(), before + 4);
  EXPECT_EQ(v[0], 64);   // socket 0, channel 0
  EXPECT_EQ(v[1], 128);  // socket 1, channel 0
  es->stop();
}

TEST_F(PcpComponentFixture, ReqsEventsCountTransactions) {
  auto es = lib.create_eventset();
  es->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_REQS.value:cpu87");
  es->start();
  for (int i = 0; i < 5; ++i) machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(es->read()[0], 5);
  es->stop();
}

TEST_F(PcpComponentFixture, EnumerationShowsQualifiedNames) {
  const auto events = lib.component("pcp").events();
  EXPECT_EQ(events.size(), 32u);
  EXPECT_TRUE(events.front().name.starts_with("pcp:::perfevent.hwcounters.nest_mba0"));
  EXPECT_TRUE(events.front().name.ends_with(".value"));
}

// -------------------------------------------------------------------- nvml

struct NvmlFixture : ::testing::Test {
  NvmlFixture() : machine(MachineConfig::summit()) {
    machine.set_noise_enabled(false);
    gpu0 = std::make_unique<gpu::GpuDevice>(gpu::GpuConfig{}, machine, 0, 0);
    gpu1 = std::make_unique<gpu::GpuDevice>(gpu::GpuConfig{}, machine, 1, 1);
    lib.register_component(std::make_unique<NvmlComponent>(
        std::vector<gpu::GpuDevice*>{gpu0.get(), gpu1.get()}));
  }
  Machine machine;
  std::unique_ptr<gpu::GpuDevice> gpu0, gpu1;
  Library lib;
};

TEST_F(NvmlFixture, PowerIsInstantaneousGauge) {
  auto es = lib.create_eventset();
  es->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  EXPECT_TRUE(lib.component("nvml").is_instantaneous(
      "Tesla_V100-SXM2-16GB:device_0:power"));
  es->start();
  const long long idle = es->read()[0];
  EXPECT_NEAR(static_cast<double>(idle), 52000.0, 2000.0);  // ~52 W idle
  gpu0->run_kernel(5e12);  // long kernel: power approaches the busy level
  const long long busy = es->read()[0];
  EXPECT_GT(busy, idle + 100000);  // > 100 W above idle
  es->stop();
}

TEST_F(NvmlFixture, PowerDecaysBackTowardIdle) {
  auto es = lib.create_eventset();
  es->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  es->start();
  gpu0->run_kernel(5e12);
  const long long busy = es->read()[0];
  machine.advance(1e9);  // one idle second >> tau
  const long long later = es->read()[0];
  EXPECT_LT(later, busy);
  EXPECT_NEAR(static_cast<double>(later), 52000.0, 3000.0);
  es->stop();
}

TEST_F(NvmlFixture, DevicesAreIndependent) {
  auto es = lib.create_eventset();
  es->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  es->add_event("nvml:::Tesla_V100-SXM2-16GB:device_1:power");
  es->start();
  gpu1->run_kernel(5e12);
  const auto v = es->read();
  EXPECT_LT(v[0], 60000);
  EXPECT_GT(v[1], 150000);
  es->stop();
}

TEST_F(NvmlFixture, UnknownDeviceRejected) {
  auto es = lib.create_eventset();
  EXPECT_THROW(es->add_event("nvml:::Tesla_V100-SXM2-16GB:device_7:power"), Error);
}

TEST_F(NvmlFixture, DmaCopiesDriveHostMemoryTraffic) {
  const std::uint64_t r0 = machine.memctrl(0).total_bytes(MemDir::Read);
  const std::uint64_t w0 = machine.memctrl(0).total_bytes(MemDir::Write);
  gpu0->memcpy_h2d(1 << 20);
  EXPECT_EQ(machine.memctrl(0).total_bytes(MemDir::Read) - r0, 1u << 20);
  gpu0->memcpy_d2h(1 << 19);
  EXPECT_EQ(machine.memctrl(0).total_bytes(MemDir::Write) - w0, 1u << 19);
}

// -------------------------------------------------------------- infiniband

struct IbFixture : ::testing::Test {
  IbFixture() {
    net::NicConfig c0;
    c0.name = "mlx5_0";
    net::NicConfig c1;
    c1.name = "mlx5_1";
    nic0 = std::make_unique<net::Nic>(c0);
    nic1 = std::make_unique<net::Nic>(c1);
    lib.register_component(std::make_unique<InfinibandComponent>(
        std::vector<net::Nic*>{nic0.get(), nic1.get()}));
  }
  std::unique_ptr<net::Nic> nic0, nic1;
  Library lib;
};

TEST_F(IbFixture, CountsRecvAndXmitSeparately) {
  auto es = lib.create_eventset();
  es->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");
  es->add_event("infiniband:::mlx5_0_1_ext:port_xmit_data");
  es->start();
  nic0->on_recv(4096);
  nic0->on_xmit(1024);
  const auto v = es->read();
  EXPECT_EQ(v[0], 4096);
  EXPECT_EQ(v[1], 1024);
  es->stop();
}

TEST_F(IbFixture, TwoHcasAreIndependent) {
  auto es = lib.create_eventset();
  es->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");
  es->add_event("infiniband:::mlx5_1_1_ext:port_recv_data");
  es->start();
  nic1->on_recv(777);
  const auto v = es->read();
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 777);
  es->stop();
}

TEST_F(IbFixture, MalformedNamesRejected) {
  auto es = lib.create_eventset();
  const char* bad[] = {
      "infiniband:::mlx5_0_1:port_recv_data",      // missing _ext
      "infiniband:::mlx5_0_1_ext:port_recv",       // wrong suffix
      "infiniband:::mlx5_9_1_ext:port_recv_data",  // unknown hca
      "infiniband:::mlx5_0_2_ext:port_recv_data",  // port out of range
      "infiniband:::mlx5_0_0_ext:port_recv_data",  // ports are 1-based
  };
  for (const char* name : bad) EXPECT_THROW(es->add_event(name), Error) << name;
}

TEST_F(IbFixture, EnumerationMatchesTableII) {
  const auto events = lib.component("infiniband").events();
  ASSERT_EQ(events.size(), 4u);  // 2 HCAs x {recv, xmit}
  EXPECT_EQ(events[0].name, "infiniband:::mlx5_0_1_ext:port_recv_data");
}

TEST_F(IbFixture, StartSnapshotsExcludePriorTraffic) {
  nic0->on_recv(5000);
  auto es = lib.create_eventset();
  es->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");
  es->start();
  nic0->on_recv(100);
  EXPECT_EQ(es->read()[0], 100);
  es->stop();
}

}  // namespace
}  // namespace papisim::components
