// Tests for the CPU component (per-core cycles/instructions/flops/L3) and
// for the nest request-count events.
#include <gtest/gtest.h>

#include <memory>

#include "components/cpu_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/library.hpp"

namespace papisim::components {
namespace {

using sim::Machine;
using sim::MachineConfig;

struct CpuFixture : ::testing::Test {
  CpuFixture() : machine(MachineConfig::tellico()) {
    machine.set_noise_enabled(false);
    lib.register_component(std::make_unique<CpuComponent>(machine));
    lib.register_component(std::make_unique<PerfNestComponent>(
        machine, machine.user_credentials()));
  }

  /// A small load-only kernel on (socket, core).
  void run_kernel(std::uint32_t socket, std::uint32_t core,
                  std::uint64_t elems = 1 << 16, double flops_per_iter = 2.0) {
    sim::LoopDesc loop;
    loop.iterations = elems;
    loop.flops_per_iter = flops_per_iter;
    loop.streams = {{machine.address_space().allocate(elems * 8), 8, 8,
                     sim::AccessKind::Load}};
    machine.engine(socket, core).execute(loop);
  }

  Machine machine;
  Library lib;
};

TEST_F(CpuFixture, EnumeratesSixPresets) {
  const auto events = lib.component("cpu").events();
  EXPECT_EQ(events.size(), 6u);
  EXPECT_EQ(events.front().name, "cpu:::PAPI_TOT_CYC");
}

TEST_F(CpuFixture, FlopCountIsExact) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_FP_OPS");
  es->start();
  run_kernel(0, 0, 1 << 14, 2.0);
  EXPECT_EQ(es->read()[0], 2 * (1 << 14));
  es->stop();
}

TEST_F(CpuFixture, L3AccessesSplitIntoHitsAndMisses) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_L3_TCA");
  es->add_event("cpu:::PAPI_L3_TCH");
  es->add_event("cpu:::PAPI_L3_TCM");
  es->start();
  const std::uint64_t elems = 1 << 15;  // 256 KB: fits the slice
  sim::LoopDesc loop;
  loop.iterations = elems;
  loop.streams = {{machine.address_space().allocate(elems * 8), 8, 8,
                   sim::AccessKind::Load}};
  machine.engine(0, 0).execute(loop);  // cold: all misses
  machine.engine(0, 0).execute(loop);  // warm: all hits
  const auto v = es->read();
  const long long lines = elems * 8 / 64;
  EXPECT_EQ(v[0], 2 * lines);  // accesses
  EXPECT_EQ(v[1], lines);      // hits (second pass)
  EXPECT_EQ(v[2], lines);      // misses (first pass)
  EXPECT_EQ(v[0], v[1] + v[2]);
  es->stop();
}

TEST_F(CpuFixture, CyclesTrackBusyTime) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_TOT_CYC");
  es->start();
  EXPECT_EQ(es->read()[0], 0);
  run_kernel(0, 0);
  const long long cyc = es->read()[0];
  EXPECT_GT(cyc, 0);
  // cycles == busy_ns * freq (within integer truncation)
  const double busy = machine.engine(0, 0).counters().busy_ns;
  EXPECT_NEAR(static_cast<double>(cyc),
              busy * 1e-9 * machine.config().core_freq_hz, 2.0);
  es->stop();
}

TEST_F(CpuFixture, QualifiersSelectSocketAndCore) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_FP_OPS:socket=0:core=0");
  es->add_event("cpu:::PAPI_FP_OPS:socket=0:core=3");
  es->add_event("cpu:::PAPI_FP_OPS:socket=1:core=0");
  es->start();
  run_kernel(0, 3);
  const auto v = es->read();
  EXPECT_EQ(v[0], 0);
  EXPECT_GT(v[1], 0);
  EXPECT_EQ(v[2], 0);
  es->stop();
}

TEST_F(CpuFixture, InvalidNamesAndQualifiersRejected) {
  auto es = lib.create_eventset();
  const char* bad[] = {
      "cpu:::PAPI_NOPE",
      "cpu:::PAPI_FP_OPS:core=999",
      "cpu:::PAPI_FP_OPS:socket=9",
      "cpu:::PAPI_FP_OPS:core=x",
  };
  for (const char* name : bad) EXPECT_THROW(es->add_event(name), Error) << name;
}

TEST_F(CpuFixture, InstructionEstimateCombinesFlopsAndTouches) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_TOT_INS");
  es->add_event("cpu:::PAPI_FP_OPS");
  es->add_event("cpu:::PAPI_L3_TCA");
  es->start();
  run_kernel(0, 0);
  const auto v = es->read();
  EXPECT_EQ(v[0], v[1] + 4 * v[2]);
  es->stop();
}

TEST_F(CpuFixture, MixingCpuAndNestEventsInOneSetRejected) {
  auto es = lib.create_eventset();
  es->add_event("cpu:::PAPI_TOT_CYC");
  EXPECT_THROW(es->add_event("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0"), Error);
}

// ----------------------------------------------------- nest request counts

TEST(NestReqs, RequestCountsMatchBytesOver64) {
  Machine m(MachineConfig::tellico());
  m.set_noise_enabled(false);
  Library lib;
  lib.register_component(
      std::make_unique<PerfNestComponent>(m, m.user_credentials()));
  auto es = lib.create_eventset();
  es->add_event("perf_nest:::power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0");
  es->add_event("perf_nest:::power9_nest_mba0::PM_MBA0_READ_REQS:cpu=0");
  es->add_event("perf_nest:::power9_nest_mba0::PM_MBA0_WRITE_REQS:cpu=0");
  es->start();
  for (int i = 0; i < 10; ++i) m.memctrl(0).add_line(0, sim::MemDir::Read);
  m.memctrl(0).add_line(0, sim::MemDir::Write);
  const auto v = es->read();
  EXPECT_EQ(v[0], 640);  // bytes
  EXPECT_EQ(v[1], 10);   // read requests
  EXPECT_EQ(v[2], 1);    // write requests
  EXPECT_EQ(v[0], 64 * v[1]);
  es->stop();
}

TEST(NestReqs, SpreadTrafficCountsCeilOfLineGranules) {
  sim::MemController mc(8, 64, 2);
  mc.add_spread(512, sim::MemDir::Write);  // one 64 B granule per channel
  EXPECT_EQ(mc.total_ops(sim::MemDir::Write), 8u);
  mc.add_spread(4, sim::MemDir::Write);    // sub-line remainder: one request
  EXPECT_EQ(mc.total_bytes(sim::MemDir::Write), 516u);
  EXPECT_EQ(mc.total_ops(sim::MemDir::Write), 9u);
}

}  // namespace
}  // namespace papisim::components
