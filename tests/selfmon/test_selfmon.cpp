// Selfmon registry + component tests: the harness profiling itself through
// the same multi-component API it applies to the simulated hardware.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <thread>

#include "components/cpu_component.hpp"
#include "components/pcp_component.hpp"
#include "components/selfmon_component.hpp"
#include "core/regions.hpp"
#include "core/trace_export.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "selfmon/metrics.hpp"

namespace papisim {
namespace {

TEST(SelfmonRegistry, CounterAddIsVisibleInSnapshot) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  const std::uint64_t before =
      selfmon::snapshot().counter(selfmon::CounterId::PoolBatches);
  selfmon::counter_add(selfmon::CounterId::PoolBatches, 3);
  const std::uint64_t after =
      selfmon::snapshot().counter(selfmon::CounterId::PoolBatches);
  EXPECT_EQ(after - before, 3u);
}

TEST(SelfmonRegistry, GaugeSetAndAdd) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth, 7);
  EXPECT_EQ(selfmon::snapshot().gauge(selfmon::GaugeId::PcpQueueDepth), 7);
  selfmon::gauge_add(selfmon::GaugeId::PcpQueueDepth, -2);
  EXPECT_EQ(selfmon::snapshot().gauge(selfmon::GaugeId::PcpQueueDepth), 5);
  selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth, 0);
}

TEST(SelfmonRegistry, HistogramPercentilesLandInTheRecordedBucket) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  const selfmon::HistSnapshot before =
      selfmon::snapshot().hist(selfmon::HistId::PcpFetchRttNs);
  for (int i = 0; i < 100; ++i) {
    selfmon::hist_record_ns(selfmon::HistId::PcpFetchRttNs, 1000);
  }
  const selfmon::HistSnapshot window =
      selfmon::snapshot().hist(selfmon::HistId::PcpFetchRttNs).since(before);
  EXPECT_EQ(window.count, 100u);
  EXPECT_EQ(window.sum_ns, 100000u);
  // 1000 ns has bit_width 10 -> bucket [512, 1024); every percentile
  // interpolates inside that bucket.
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(window.percentile(q), 512.0);
    EXPECT_LE(window.percentile(q), 1024.0);
  }
  EXPECT_DOUBLE_EQ(window.mean_ns(), 1000.0);
}

TEST(SelfmonRegistry, PercentileOrderingAcrossBuckets) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  const selfmon::HistSnapshot before =
      selfmon::snapshot().hist(selfmon::HistId::PoolDispatchNs);
  // 90 fast samples, 10 slow ones: p50 stays fast, p99 lands slow.
  for (int i = 0; i < 90; ++i) {
    selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, 100);
  }
  for (int i = 0; i < 10; ++i) {
    selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, 1 << 20);
  }
  const selfmon::HistSnapshot w =
      selfmon::snapshot().hist(selfmon::HistId::PoolDispatchNs).since(before);
  EXPECT_EQ(w.count, 100u);
  EXPECT_LT(w.percentile(0.5), 256.0);
  EXPECT_GT(w.percentile(0.99), 512.0 * 1024.0);
  EXPECT_LE(w.percentile(0.5), w.percentile(0.95));
  EXPECT_LE(w.percentile(0.95), w.percentile(0.99));
}

TEST(SelfmonRegistry, CountsFromExitedThreadsAreRetained) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  const std::uint64_t before =
      selfmon::snapshot().counter(selfmon::CounterId::PoolTasks);
  std::thread t([] { selfmon::counter_add(selfmon::CounterId::PoolTasks, 41); });
  t.join();
  const std::uint64_t after =
      selfmon::snapshot().counter(selfmon::CounterId::PoolTasks);
  EXPECT_EQ(after - before, 41u);
}

TEST(SelfmonComponent, EnumeratesEveryMetric) {
  components::SelfmonComponent comp;
  const std::vector<EventInfo> evs = comp.events();
  // counters + gauges + 2 per histogram (base + .sum_ns).
  EXPECT_EQ(evs.size(), selfmon::kNumCounters + selfmon::kNumGauges +
                            2 * selfmon::kNumHists);
  EXPECT_TRUE(comp.knows_event("pool.tasks"));
  EXPECT_TRUE(comp.knows_event("pcp.queue_depth"));
  EXPECT_TRUE(comp.knows_event("pcp.fetch_rtt_ns"));
  EXPECT_TRUE(comp.knows_event("pcp.fetch_rtt_ns.sum_ns"));
  EXPECT_FALSE(comp.knows_event("bogus.metric"));
  EXPECT_EQ(comp.event_kind("pool.tasks"), EventKind::Counter);
  EXPECT_EQ(comp.event_kind("pcp.queue_depth"), EventKind::Gauge);
  EXPECT_EQ(comp.event_kind("pcp.fetch_rtt_ns"), EventKind::Histogram);
  EXPECT_EQ(comp.event_kind("pcp.fetch_rtt_ns.sum_ns"), EventKind::Counter);
  EXPECT_TRUE(comp.is_instantaneous("pcp.queue_depth"));
  EXPECT_FALSE(comp.is_instantaneous("pool.tasks"));
}

TEST(SelfmonComponent, AvailabilityTracksCompileFlag) {
  components::SelfmonComponent comp;
  EXPECT_EQ(comp.available(), selfmon::kEnabled);
}

TEST(SelfmonComponent, CounterAndHistogramWindowsAreSinceStart) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  Library lib;
  lib.register_component(std::make_unique<components::SelfmonComponent>());
  auto es = lib.create_eventset();
  es->add_event("selfmon:::pool.batches");
  es->add_event("selfmon:::pool.dispatch_ns");
  es->add_event("selfmon:::pool.dispatch_ns.sum_ns");

  // Activity before start() must not leak into the measurement window.
  selfmon::counter_add(selfmon::CounterId::PoolBatches, 5);
  selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, 64);

  es->start();
  selfmon::counter_add(selfmon::CounterId::PoolBatches, 2);
  selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, 2000);
  selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, 2000);

  const std::vector<long long> v = es->read();
  EXPECT_EQ(v[0], 2);          // counter delta
  EXPECT_EQ(v[1], 2);          // histogram: samples since start
  EXPECT_EQ(v[2], 4000);       // summed latency since start
  EXPECT_EQ(es->kind(1), EventKind::Histogram);
  const double p50 = es->read_percentile(1, 0.5);
  EXPECT_GE(p50, 1024.0);  // 2000 ns -> bucket [1024, 2048)
  EXPECT_LE(p50, 2048.0);
  // Percentile of a non-histogram event throws.
  EXPECT_THROW((void)es->read_percentile(0, 0.5), Error);
  es->stop();
}

/// The acceptance-criterion scenario: one RegionProfiler run mixing
/// selfmon:: events with pcp:: events, measuring a GEMM replay, and the
/// trace export rendering selfmon histogram percentiles as counter tracks.
TEST(SelfmonIntegration, RegionProfilerMixesSelfmonAndPcpEvents) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::SelfmonComponent>());

  RegionProfiler prof(lib, machine.clock());
  prof.add_events({
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
      "selfmon:::l3.stripe_acquisitions",
      "selfmon:::pcp.requests_served",
      "selfmon:::pcp.fetch_rtt_ns",
  });
  prof.start();
  {
    auto gemm = prof.region("gemm");
    const std::uint64_t n = 128;
    const kernels::GemmBuffers buf =
        kernels::GemmBuffers::allocate(machine.address_space(), n);
    kernels::run_gemm(machine, 0, 0, n, buf);
    machine.flush_socket(0);
  }
  prof.stop();

  const std::vector<RegionStats> report = prof.report();
  ASSERT_EQ(report.size(), 1u);
  const RegionStats& gemm = report[0];
  EXPECT_EQ(gemm.path, "gemm");
  ASSERT_EQ(gemm.inclusive.size(), 4u);
  EXPECT_GT(gemm.inclusive[0], 0.0);  // pcp: memory reads happened
  EXPECT_GT(gemm.inclusive[1], 0.0);  // selfmon: stripe locks taken
  // Region entry/exit reads the pcp event set through the PMCD, so the
  // requests-served counter moves within the region window too.
  EXPECT_GE(gemm.inclusive[2], 0.0);
}

TEST(SelfmonIntegration, TraceExportEmitsPercentileTracksForSelfmonHistograms) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::SelfmonComponent>());

  auto pcp_set = lib.create_eventset();
  pcp_set->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  auto self_set = lib.create_eventset();
  self_set->add_event("selfmon:::pcp.fetch_rtt_ns");

  Sampler sampler(machine.clock());
  sampler.add_eventset(*pcp_set);
  sampler.add_eventset(*self_set);
  ASSERT_EQ(sampler.hist_columns().size(), 1u);
  EXPECT_EQ(sampler.hist_columns()[0], 1u);

  const auto pmid =
      client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
  ASSERT_TRUE(pmid.has_value());

  sampler.start_all();
  sampler.sample();
  machine.advance(1e6);
  (void)client.fetch({*pmid}, 0);  // generate fetch RTT samples
  sampler.sample();
  sampler.stop_all();

  std::ostringstream out;
  write_chrome_trace(out, sampler, {}, "selfmon-test");
  const std::string json = out.str();
  EXPECT_NE(json.find("selfmon:::pcp.fetch_rtt_ns.p50"), std::string::npos);
  EXPECT_NE(json.find("selfmon:::pcp.fetch_rtt_ns.p95"), std::string::npos);
  EXPECT_NE(json.find("selfmon:::pcp.fetch_rtt_ns.p99"), std::string::npos);
}

TEST(SelfmonInstrumentation, PmcdFetchFeedsRttHistogramAndServedCounter) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  const selfmon::Snapshot before = selfmon::snapshot();
  {
    pcp::Pmcd daemon(machine);
    pcp::PcpClient client(daemon, machine, machine.user_credentials());
    const auto pmid =
        client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
    ASSERT_TRUE(pmid.has_value());
    for (int i = 0; i < 5; ++i) (void)client.fetch({*pmid}, 0);
  }
  const selfmon::Snapshot after = selfmon::snapshot();
  EXPECT_GE(after.counter(selfmon::CounterId::PcpRequestsServed) -
                before.counter(selfmon::CounterId::PcpRequestsServed),
            5u);
  const selfmon::HistSnapshot rtt = after.hist(selfmon::HistId::PcpFetchRttNs)
                                        .since(before.hist(selfmon::HistId::PcpFetchRttNs));
  EXPECT_GE(rtt.count, 5u);
  EXPECT_GT(rtt.sum_ns, 0u);
  // Queue fully drained before the daemon stopped.
  EXPECT_EQ(after.gauge(selfmon::GaugeId::PcpQueueDepth), 0);
}

TEST(SelfmonInstrumentation, KernelRunnerCountsSimulatedAndReplayedReps) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  kernels::KernelRunner runner(machine, lib, "pcp", 87);

  const std::uint64_t n = 96;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(machine.address_space(), n);
  const selfmon::Snapshot before = selfmon::snapshot();
  kernels::RunnerOptions opt;
  opt.reps = 4;
  (void)runner.measure(
      [&](std::uint32_t core) { kernels::run_gemm(machine, 0, core, n, buf); },
      opt);
  const selfmon::Snapshot after = selfmon::snapshot();
  EXPECT_EQ(after.counter(selfmon::CounterId::RunnerReps) -
                before.counter(selfmon::CounterId::RunnerReps),
            4u);
  // Rep 0 is fully replayed through the simulator; reps 1-3 are
  // extrapolated from its recorded traffic (Eq. 5 amortization), which
  // selfmon separates out.
  EXPECT_EQ(after.counter(selfmon::CounterId::RunnerRepsReplayed) -
                before.counter(selfmon::CounterId::RunnerRepsReplayed),
            1u);
  EXPECT_EQ(after.counter(selfmon::CounterId::RunnerRepsExtrapolated) -
                before.counter(selfmon::CounterId::RunnerRepsExtrapolated),
            3u);
  const selfmon::HistSnapshot reps =
      after.hist(selfmon::HistId::RunnerRepNs)
          .since(before.hist(selfmon::HistId::RunnerRepNs));
  EXPECT_EQ(reps.count, 4u);
}

// Percentile edge cases on hand-built snapshots (no registry involved, so
// these run with selfmon compiled in or out).
TEST(SelfmonHistogramEdges, EmptyHistogramIsZeroAtEveryQuantile) {
  const selfmon::HistSnapshot empty;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(empty.percentile(q), 0.0) << q;
  }
  EXPECT_DOUBLE_EQ(empty.mean_ns(), 0.0);
}

TEST(SelfmonHistogramEdges, QuantileZeroAndOneStayInsideASingleBucket) {
  selfmon::HistSnapshot h;
  h.count = 10;
  h.sum_ns = 10 * 700;
  h.buckets[10] = 10;  // [512, 1024)
  const double p0 = h.percentile(0.0);
  const double p100 = h.percentile(1.0);
  EXPECT_GE(p0, 512.0);
  EXPECT_LE(p100, 1024.0);
  EXPECT_LE(p0, p100);
  // Out-of-range q clamps to the endpoints rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), p0);
  EXPECT_DOUBLE_EQ(h.percentile(1.5), p100);
}

TEST(SelfmonHistogramEdges, SingleSampleIsTheSameAtEveryQuantile) {
  selfmon::HistSnapshot h;
  h.count = 1;
  h.sum_ns = 700;
  h.buckets[10] = 1;
  const double v = h.percentile(0.5);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), v);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), v);
}

TEST(SelfmonHistogramEdges, BucketZeroIsExactlyZeroAndOverflowSaturates) {
  selfmon::HistSnapshot zeros;
  zeros.count = 5;
  zeros.buckets[0] = 5;  // bucket 0 is exactly {0}
  EXPECT_DOUBLE_EQ(zeros.percentile(0.99), 0.0);

  selfmon::HistSnapshot top;
  top.count = 1;
  top.buckets[selfmon::kHistBuckets - 1] = 1;
  const double cap = static_cast<double>(1ull << (selfmon::kHistBuckets - 1));
  EXPECT_GT(top.percentile(0.5), 0.0);
  EXPECT_LE(top.percentile(1.0), cap);
}

TEST(SelfmonDisabled, ComponentRejectsEventsWhenCompiledOut) {
  if (selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled in";
  Library lib;
  lib.register_component(std::make_unique<components::SelfmonComponent>());
  auto es = lib.create_eventset();
  EXPECT_THROW(es->add_event("selfmon:::pool.tasks"), Error);
  // And the registry reports zeros rather than garbage.
  const selfmon::Snapshot s = selfmon::snapshot();
  EXPECT_EQ(s.counter(selfmon::CounterId::PoolTasks), 0u);
  EXPECT_EQ(s.hist(selfmon::HistId::PoolDispatchNs).count, 0u);
}

}  // namespace
}  // namespace papisim
