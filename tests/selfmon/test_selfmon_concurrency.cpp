// Concurrency stress for the selfmon registry: lock-free writers racing
// merge-on-read snapshots and thread churn (block retire + reuse).  Runs
// under the tsan preset with the rest of the suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "selfmon/metrics.hpp"

namespace papisim {
namespace {

TEST(SelfmonConcurrency, WritersRaceSnapshotsWithoutTearingTotals) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20000;

  const selfmon::Snapshot before = selfmon::snapshot();
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        selfmon::counter_add(selfmon::CounterId::PoolTasks);
        selfmon::hist_record_ns(selfmon::HistId::PoolQueueWaitNs, i & 0xFFF);
        if ((i & 0x3F) == 0) {
          selfmon::gauge_add(selfmon::GaugeId::PcpQueueDepth, 1);
          selfmon::gauge_add(selfmon::GaugeId::PcpQueueDepth, -1);
        }
      }
    });
  }

  // Reader thread: snapshots must stay monotone per counter while writers
  // run (relaxed sums never go backwards for monotonic counters).
  std::thread reader([&stop, &before] {
    std::uint64_t last =
        before.counter(selfmon::CounterId::PoolTasks);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t now =
          selfmon::snapshot().counter(selfmon::CounterId::PoolTasks);
      EXPECT_GE(now, last);
      last = now;
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const selfmon::Snapshot after = selfmon::snapshot();
  EXPECT_EQ(after.counter(selfmon::CounterId::PoolTasks) -
                before.counter(selfmon::CounterId::PoolTasks),
            kWriters * kPerWriter);
  const selfmon::HistSnapshot hist =
      after.hist(selfmon::HistId::PoolQueueWaitNs)
          .since(before.hist(selfmon::HistId::PoolQueueWaitNs));
  EXPECT_EQ(hist.count, kWriters * kPerWriter);
  // Net gauge movement is zero (every +1 paired with a -1).
  EXPECT_EQ(after.gauge(selfmon::GaugeId::PcpQueueDepth),
            before.gauge(selfmon::GaugeId::PcpQueueDepth));
}

TEST(SelfmonConcurrency, ThreadChurnRetiresAndReusesBlocks) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  constexpr int kRounds = 8;
  constexpr int kThreadsPerRound = 6;
  constexpr std::uint64_t kPerThread = 500;

  const std::uint64_t before =
      selfmon::snapshot().counter(selfmon::CounterId::PoolClaims);

  // Short-lived threads force the retire path; later rounds recycle the
  // freed blocks.  A concurrent snapshotter keeps the merge path racing
  // against retirement.
  std::atomic<bool> stop{false};
  std::thread snapshotter([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)selfmon::snapshot();
    }
  });

  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> ts;
    ts.reserve(kThreadsPerRound);
    for (int i = 0; i < kThreadsPerRound; ++i) {
      ts.emplace_back([] {
        for (std::uint64_t n = 0; n < kPerThread; ++n) {
          selfmon::counter_add(selfmon::CounterId::PoolClaims);
          selfmon::hist_record_ns(selfmon::HistId::PoolDispatchNs, n);
        }
      });
    }
    for (auto& t : ts) t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  // Nothing recorded by an exited thread may be lost.
  const std::uint64_t after =
      selfmon::snapshot().counter(selfmon::CounterId::PoolClaims);
  EXPECT_EQ(after - before,
            static_cast<std::uint64_t>(kRounds) * kThreadsPerRound * kPerThread);
}

}  // namespace
}  // namespace papisim
