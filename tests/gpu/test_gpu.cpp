// Tests for the GPU device model: DMA timing/traffic, kernel execution, and
// the exponential power dynamics behind the NVML component.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gpu/gpu_device.hpp"

namespace papisim::gpu {
namespace {

struct GpuFixture : ::testing::Test {
  GpuFixture() : machine(sim::MachineConfig::summit()) {
    machine.set_noise_enabled(false);
    GpuConfig cfg;
    cfg.pcie_bw_bytes_per_sec = 10e9;
    cfg.power_tau_ns = 1e6;
    dev = std::make_unique<GpuDevice>(cfg, machine, 0, 0);
  }
  sim::Machine machine;
  std::unique_ptr<GpuDevice> dev;
};

TEST_F(GpuFixture, StartsAtIdlePower) {
  EXPECT_EQ(dev->power_mw(), 52000u);
  EXPECT_DOUBLE_EQ(dev->busy_seconds(), 0.0);
}

TEST_F(GpuFixture, H2dCopyTimingMatchesPcieBandwidth) {
  const double t0 = machine.clock().now_ns();
  dev->memcpy_h2d(10'000'000'000ull);  // 10 GB at 10 GB/s = 1 s
  EXPECT_NEAR(machine.clock().now_ns() - t0, 1e9, 1.0);
  EXPECT_NEAR(dev->busy_seconds(), 1.0, 1e-9);
}

TEST_F(GpuFixture, DmaDirectionsDriveHostTrafficDirectionally) {
  dev->memcpy_h2d(1 << 20);
  EXPECT_EQ(machine.memctrl(0).total_bytes(sim::MemDir::Read), 1u << 20);
  EXPECT_EQ(machine.memctrl(0).total_bytes(sim::MemDir::Write), 0u);
  dev->memcpy_d2h(1 << 19);
  EXPECT_EQ(machine.memctrl(0).total_bytes(sim::MemDir::Write), 1u << 19);
}

TEST_F(GpuFixture, KernelTouchesNoHostMemory) {
  dev->run_kernel(1e12);
  EXPECT_EQ(machine.memctrl(0).total_bytes(sim::MemDir::Read), 0u);
  EXPECT_EQ(machine.memctrl(0).total_bytes(sim::MemDir::Write), 0u);
  EXPECT_GT(dev->busy_seconds(), 0.0);
}

TEST_F(GpuFixture, PowerApproachesBusyLevelExponentially) {
  // Kernel of duration T: power = busy + (idle - busy) * exp(-T / tau).
  const GpuConfig& cfg = dev->config();
  const double flops = cfg.flops * cfg.kernel_efficiency * 2e-3;  // T = 2 ms
  dev->run_kernel(flops);
  const double expected_w =
      cfg.busy_power_w +
      (cfg.idle_power_w - cfg.busy_power_w) * std::exp(-2e6 / cfg.power_tau_ns);
  EXPECT_NEAR(static_cast<double>(dev->power_mw()), expected_w * 1000.0, 500.0);
}

TEST_F(GpuFixture, PowerDecaysTowardIdleWhenInactive) {
  dev->run_kernel(dev->config().flops);  // long kernel: near busy power
  const std::uint64_t hot = dev->power_mw();
  ASSERT_GT(hot, 200000u);
  machine.advance(1e6);  // one tau of idle time
  const std::uint64_t cooler = dev->power_mw();
  EXPECT_LT(cooler, hot);
  machine.advance(20e6);  // >> tau
  EXPECT_NEAR(static_cast<double>(dev->power_mw()), 52000.0, 1000.0);
}

TEST_F(GpuFixture, PowerReadsAreIdempotentAtFixedTime) {
  dev->run_kernel(1e11);
  const std::uint64_t p1 = dev->power_mw();
  const std::uint64_t p2 = dev->power_mw();
  EXPECT_EQ(p1, p2);  // reading must not itself change the state
}

TEST_F(GpuFixture, BackToBackKernelsHeatMoreThanOne) {
  const double flops = dev->config().flops * dev->config().kernel_efficiency * 5e-4;
  dev->run_kernel(flops);
  const std::uint64_t after_one = dev->power_mw();
  dev->run_kernel(flops);
  dev->run_kernel(flops);
  EXPECT_GT(dev->power_mw(), after_one);
}

TEST_F(GpuFixture, DmaPowerSitsBetweenIdleAndBusy) {
  dev->memcpy_h2d(100'000'000'000ull);  // 10 s: fully settled at DMA level
  const double w = static_cast<double>(dev->power_mw()) / 1000.0;
  EXPECT_GT(w, dev->config().idle_power_w);
  EXPECT_LT(w, dev->config().busy_power_w);
  EXPECT_NEAR(w, dev->config().dma_power_w, 1.0);
}

}  // namespace
}  // namespace papisim::gpu
