// Tests for the synthetic QMCPACK-like workload (Fig. 12 substitute).
#include <gtest/gtest.h>

#include <memory>

#include "qmc/qmc_app.hpp"

namespace papisim::qmc {
namespace {

struct QmcFixture : ::testing::Test {
  void SetUp() override {
    machine = std::make_unique<sim::Machine>(sim::MachineConfig::summit());
    machine->set_noise_enabled(false);
    gpu = std::make_unique<gpu::GpuDevice>(gpu::GpuConfig{}, *machine, 0, 0);
    nic = std::make_unique<net::Nic>(net::NicConfig{});
    comm = std::make_unique<mpi::JobComm>(*machine, *nic);
  }
  QmcConfig small_config() const {
    QmcConfig cfg;
    cfg.walkers = 16;
    cfg.electrons = 12;
    cfg.spline_table_bytes = 1 << 20;
    cfg.vmc_nodrift_steps = 4;
    cfg.vmc_drift_steps = 4;
    cfg.dmc_steps = 6;
    return cfg;
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<gpu::GpuDevice> gpu;
  std::unique_ptr<net::Nic> nic;
  std::unique_ptr<mpi::JobComm> comm;
};

TEST_F(QmcFixture, RunsThreeStagesInOrder) {
  QmcApp app(*machine, small_config(), gpu.get(), comm.get());
  app.run();
  ASSERT_EQ(app.phases().size(), 3u);
  EXPECT_EQ(app.phases()[0].name, "VMC_no_drift");
  EXPECT_EQ(app.phases()[1].name, "VMC_drift");
  EXPECT_EQ(app.phases()[2].name, "DMC");
  EXPECT_LT(app.phases()[0].t1_sec, app.phases()[2].t0_sec + 1e-12);
}

TEST_F(QmcFixture, TickFiresOncePerStep) {
  const QmcConfig cfg = small_config();
  QmcApp app(*machine, cfg, gpu.get(), comm.get());
  int ticks = 0;
  app.run([&] { ++ticks; });
  EXPECT_EQ(ticks, static_cast<int>(cfg.vmc_nodrift_steps + cfg.vmc_drift_steps +
                                    cfg.dmc_steps));
}

TEST_F(QmcFixture, OnlyDmcTouchesTheNetwork) {
  const QmcConfig cfg = small_config();
  QmcApp app(*machine, cfg, gpu.get(), comm.get());
  std::uint64_t net_after_vmc = 0;
  int step = 0;
  const int vmc_steps = static_cast<int>(cfg.vmc_nodrift_steps + cfg.vmc_drift_steps);
  app.run([&] {
    ++step;
    if (step == vmc_steps) net_after_vmc = nic->recv_bytes();
  });
  EXPECT_EQ(net_after_vmc, 0u);
  EXPECT_GT(nic->recv_bytes(), 0u);  // DMC redistributions hit the wire
}

TEST_F(QmcFixture, DriftPhaseMovesMoreMemoryPerStepThanNoDrift) {
  const QmcConfig cfg = small_config();
  QmcApp app(*machine, cfg, /*gpu=*/nullptr, comm.get());
  std::vector<std::uint64_t> reads_at_tick;
  app.run([&] {
    reads_at_tick.push_back(machine->memctrl(0).total_bytes(sim::MemDir::Read));
  });
  // Per-step read deltas: average of drift steps > average of no-drift steps.
  auto avg_delta = [&](std::size_t lo, std::size_t hi) {
    return static_cast<double>(reads_at_tick[hi] - reads_at_tick[lo]) / (hi - lo);
  };
  const std::size_t nd = cfg.vmc_nodrift_steps, dr = cfg.vmc_drift_steps;
  EXPECT_GT(avg_delta(nd - 1, nd + dr - 1), avg_delta(0, nd - 1));
}

TEST_F(QmcFixture, GpuPowerRisesInDriftAndDmcStages) {
  const QmcConfig cfg = small_config();
  QmcApp app(*machine, cfg, gpu.get(), comm.get());
  std::uint64_t peak_vmc_nodrift = 0, peak_dmc = 0;
  int step = 0;
  const int nodrift_end = static_cast<int>(cfg.vmc_nodrift_steps);
  const int dmc_begin = nodrift_end + static_cast<int>(cfg.vmc_drift_steps);
  app.run([&] {
    ++step;
    const std::uint64_t p = gpu->power_mw();
    if (step <= nodrift_end) peak_vmc_nodrift = std::max(peak_vmc_nodrift, p);
    if (step > dmc_begin) peak_dmc = std::max(peak_dmc, p);
  });
  EXPECT_GT(peak_dmc, peak_vmc_nodrift);
}

TEST_F(QmcFixture, RunsWithoutGpuOrComm) {
  QmcApp app(*machine, small_config(), nullptr, nullptr);
  EXPECT_NO_THROW(app.run());
  EXPECT_EQ(app.phases().size(), 3u);
}

}  // namespace
}  // namespace papisim::qmc
