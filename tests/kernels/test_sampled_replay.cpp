// Acceptance suite for the sampled-replay execution strategy (DESIGN.md §3i):
//  * sampled traffic within the 2% error bound of full (literal) replay
//    across the fig2-fig10 kernel sweep, noise off -- with deterministic
//    windows the extrapolation must in fact be exact, so any warmup or
//    clustering bug trips the bound immediately;
//  * bit-identical cluster assignment across host thread counts;
//  * fallback to full replay on signature divergence;
//  * Eq. 5 boundary hardening of repetitions_for / sampled_replay_period.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "fft/resort.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::kernels {
namespace {

struct SummitStack {
  SummitStack()
      : machine(sim::MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    machine.set_noise_enabled(false);
    lib.register_component(std::make_unique<components::PcpComponent>(client));
  }
  sim::Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  Library lib;
};

/// One kernel of the fig sweep: `make` binds buffers to a fresh machine and
/// returns the runner kernel.
struct SweepCase {
  const char* name;
  std::uint32_t reps;
  bool batched;
  bool occupy_socket;
  std::function<std::function<void(std::uint32_t)>(sim::Machine&)> make;
};

std::function<std::function<void(std::uint32_t)>(sim::Machine&)> gemm_case(
    std::uint64_t n) {
  return [n](sim::Machine& m) -> std::function<void(std::uint32_t)> {
    const GemmBuffers buf = GemmBuffers::allocate(m.address_space(), n);
    return [&m, n, buf](std::uint32_t core) { run_gemm(m, 0, core, n, buf); };
  };
}

std::vector<SweepCase> fig_sweep() {
  std::vector<SweepCase> cases;
  // fig2/3-style GEMM points, single-threaded and batched.
  cases.push_back({"gemm48_batched", 24, true, false, gemm_case(48)});
  cases.push_back({"gemm64_batched", 24, true, false, gemm_case(64)});
  cases.push_back({"gemm96_single", 24, false, false, gemm_case(96)});
  // fig5-style capped GEMV, batched.
  cases.push_back(
      {"gemv2048_capped", 24, true, false,
       [](sim::Machine& m) -> std::function<void(std::uint32_t)> {
         const std::uint64_t M = 2048, N = 1280, P = 1280;
         const GemvBuffers buf = GemvBuffers::allocate(m.address_space(), M, N, P);
         return [&m, buf](std::uint32_t core) {
           run_capped_gemv(m, 0, core, 2048, 1280, 1280, buf);
         };
       }});
  // fig6-10-style re-sort loop nests, socket-occupying.
  const auto resort = [](auto replay) {
    return [replay](sim::Machine& m) -> std::function<void(std::uint32_t)> {
      const fft::RankDims dims = fft::RankDims::of(128, mpi::Grid{2, 4});
      const fft::ResortBuffers buf =
          fft::ResortBuffers::allocate(m.address_space(), dims.bytes());
      return [&m, dims, buf, replay](std::uint32_t) { replay(m, dims, buf); };
    };
  };
  cases.push_back({"s1cf_nest1", 24, false, true,
                   resort([](sim::Machine& m, const fft::RankDims& d,
                             const fft::ResortBuffers& b) {
                     fft::s1cf_nest1_replay(m, 0, 0, d, b, false);
                   })});
  cases.push_back({"s1cf_nest2", 24, false, true,
                   resort([](sim::Machine& m, const fft::RankDims& d,
                             const fft::ResortBuffers& b) {
                     fft::s1cf_nest2_replay(m, 0, 0, d, b, false);
                   })});
  cases.push_back({"s1cf_combined", 24, false, true,
                   resort([](sim::Machine& m, const fft::RankDims& d,
                             const fft::ResortBuffers& b) {
                     fft::s1cf_combined_replay(m, 0, 0, d, b, false);
                   })});
  cases.push_back({"s2cf", 24, false, true,
                   resort([](sim::Machine& m, const fft::RankDims& d,
                             const fft::ResortBuffers& b) {
                     const fft::S2Dims s2 = fft::S2Dims::of(d, mpi::Grid{2, 4});
                     fft::s2cf_replay(m, 0, 0, s2, b, false);
                   })});
  return cases;
}

Measurement run_leg(const SweepCase& c, bool sampled) {
  SummitStack s;
  KernelRunner runner(s.machine, s.lib, "pcp", 87);
  const auto kernel = c.make(s.machine);
  RunnerOptions opt;
  opt.reps = c.reps;
  opt.batched = c.batched;
  opt.occupy_socket = c.occupy_socket;
  if (sampled) {
    opt.strategy = ReplayMode::Sampled;
  } else {
    opt.literal_reps = true;  // the ground truth: simulate every repetition
  }
  return runner.measure(kernel, opt);
}

TEST(SampledReplay, TrafficWithinErrorBoundAcrossFigSweep) {
  for (const SweepCase& c : fig_sweep()) {
    SCOPED_TRACE(c.name);
    const Measurement full = run_leg(c, /*sampled=*/false);
    const Measurement sampled = run_leg(c, /*sampled=*/true);
    ASSERT_GT(full.read_bytes, 0.0);
    EXPECT_NEAR(sampled.read_bytes, full.read_bytes, 0.02 * full.read_bytes);
    EXPECT_NEAR(sampled.write_bytes, full.write_bytes,
                0.02 * (full.write_bytes > 0.0 ? full.write_bytes : 1.0));
    // Strategy accounting must cover every repetition exactly once, and
    // sampling must actually have skipped work.
    EXPECT_EQ(sampled.reps_replayed + sampled.reps_extrapolated, c.reps);
    EXPECT_LT(sampled.reps_replayed, c.reps);
    EXPECT_EQ(sampled.resample_fallbacks, 0u);
    EXPECT_EQ(sampled.clusters, 1u);
    EXPECT_EQ(sampled.cluster_of_rep.size(), c.reps);
    EXPECT_EQ(full.reps_replayed, c.reps);
  }
}

TEST(SampledReplay, DefaultPeriodFollowsEq5AsymptoticCount) {
  // reps = repetitions_for(64) = 498 -> period 49 -> representatives at
  // 0, 49, ..., 490: eleven fully replayed windows, the rest extrapolated.
  SweepCase c{"gemm64", repetitions_for(64), true, false, gemm_case(64)};
  ASSERT_EQ(c.reps, 498u);
  const Measurement m = run_leg(c, /*sampled=*/true);
  EXPECT_EQ(m.reps_replayed, 11u);
  EXPECT_EQ(m.reps_extrapolated, 487u);
  EXPECT_EQ(m.clusters, 1u);
}

TEST(SampledReplay, LiteralRepsDegeneratesToFullReplay) {
  SummitStack s;
  KernelRunner runner(s.machine, s.lib, "pcp", 87);
  const GemmBuffers buf = GemmBuffers::allocate(s.machine.address_space(), 64);
  RunnerOptions opt;
  opt.reps = 5;
  opt.strategy = ReplayMode::Sampled;
  opt.literal_reps = true;  // forces a sampling period of 1
  const Measurement m = runner.measure(
      [&](std::uint32_t core) { run_gemm(s.machine, 0, core, 64, buf); }, opt);
  EXPECT_EQ(m.reps_replayed, 5u);
  EXPECT_EQ(m.reps_extrapolated, 0u);
}

TEST(SampledReplay, ClusterAssignmentBitIdenticalAcrossHostThreads) {
  // Literal per-core batch under the sampled strategy: the signature is
  // integer arithmetic over commutative engine counters, so the cluster
  // assignment (and the traffic) must not depend on how many host threads
  // replay the batch.
  const auto run_with = [](std::uint32_t host_threads) {
    sim::MachineConfig cfg = sim::MachineConfig::tellico();
    cfg.cores_per_socket = 4;
    cfg.physical_cores_per_socket = 4;
    sim::Machine machine(cfg);
    machine.set_noise_enabled(false);
    Library lib;
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
    KernelRunner runner(machine, lib, "perf_nest", 0);
    std::vector<GemmBuffers> bufs;
    for (std::uint32_t c = 0; c < 4; ++c) {
      bufs.push_back(GemmBuffers::allocate(machine.address_space(), 96));
    }
    RunnerOptions opt;
    opt.reps = 12;
    opt.literal_cores = true;
    opt.host_threads = host_threads;
    opt.strategy = ReplayMode::Sampled;
    opt.sample_period = 3;
    return runner.measure(
        [&](std::uint32_t core) { run_gemm(machine, 0, core, 96, bufs[core]); },
        opt);
  };
  const Measurement serial = run_with(1);
  EXPECT_EQ(serial.cluster_of_rep.size(), 12u);
  for (const std::uint32_t host : {2u, 4u}) {
    SCOPED_TRACE(host);
    const Measurement parallel = run_with(host);
    EXPECT_EQ(parallel.cluster_of_rep, serial.cluster_of_rep);
    EXPECT_EQ(parallel.reps_replayed, serial.reps_replayed);
    EXPECT_EQ(parallel.resample_fallbacks, serial.resample_fallbacks);
    EXPECT_DOUBLE_EQ(parallel.read_bytes, serial.read_bytes);
    EXPECT_DOUBLE_EQ(parallel.write_bytes, serial.write_bytes);
  }
}

TEST(SampledReplay, FallsBackToFullReplayOnSignatureDivergence) {
  SummitStack s;
  KernelRunner runner(s.machine, s.lib, "pcp", 87);
  const GemmBuffers small = GemmBuffers::allocate(s.machine.address_space(), 64);
  const GemmBuffers large = GemmBuffers::allocate(s.machine.address_space(), 160);
  // The kernel changes its access pattern at its third *simulated*
  // invocation, i.e. at the representative of repetition 6 (period 3): the
  // signature diverges there, which must open a new cluster and drop the
  // runner into safe mode (every repetition simulated) until three
  // consecutive representatives agree.
  std::uint32_t calls = 0;
  const auto kernel = [&](std::uint32_t) {
    if (calls++ < 2) {
      run_gemm(s.machine, 0, 0, 64, small);
    } else {
      run_gemm(s.machine, 0, 0, 160, large);
    }
  };
  RunnerOptions opt;
  opt.reps = 30;
  opt.strategy = ReplayMode::Sampled;
  opt.sample_period = 3;
  const Measurement m = runner.measure(kernel, opt);
  EXPECT_EQ(m.resample_fallbacks, 1u);
  EXPECT_EQ(m.clusters, 2u);
  // Representatives at 0,3,...,27 plus the two safe-mode repetitions 7-8.
  EXPECT_EQ(m.reps_replayed, 12u);
  EXPECT_EQ(m.reps_extrapolated, 18u);
  ASSERT_EQ(m.cluster_of_rep.size(), 30u);
  for (std::uint32_t rep = 0; rep < 30; ++rep) {
    EXPECT_EQ(m.cluster_of_rep[rep], rep < 6 ? 0u : 1u) << "rep " << rep;
  }
}

TEST(RepetitionPolicy, Eq5BoundariesArePinned) {
  EXPECT_EQ(repetitions_for(0), kMaxRepetitions);  // floor(514 - 0) = 514
  EXPECT_EQ(repetitions_for(1), 513u);
  EXPECT_EQ(repetitions_for(64), 498u);
  EXPECT_EQ(repetitions_for(2047), kMinRepetitions);  // floor(10.4) = 10
  EXPECT_EQ(repetitions_for(2048), kMinRepetitions);
  // Huge n must short-circuit before the floating-point path (an exact
  // double conversion does not exist for these).
  EXPECT_EQ(repetitions_for(std::uint64_t{1} << 63), kMinRepetitions);
  EXPECT_EQ(repetitions_for(~std::uint64_t{0}), kMinRepetitions);
}

TEST(RepetitionPolicy, SampledPeriodNeverZero) {
  EXPECT_EQ(sampled_replay_period(0), 1u);
  EXPECT_EQ(sampled_replay_period(1), 1u);
  EXPECT_EQ(sampled_replay_period(kMinRepetitions - 1), 1u);
  EXPECT_EQ(sampled_replay_period(kMinRepetitions), 1u);
  EXPECT_EQ(sampled_replay_period(100), 10u);
  EXPECT_EQ(sampled_replay_period(498), 49u);
  EXPECT_EQ(sampled_replay_period(kMaxRepetitions), 51u);
}

}  // namespace
}  // namespace papisim::kernels
