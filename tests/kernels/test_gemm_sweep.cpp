// Parameterized property sweeps over the GEMM experiment: noiseless
// exactness in the cached regime and the regime boundaries the paper's
// figures hinge on.
#include <gtest/gtest.h>

#include <memory>

#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"

namespace papisim::kernels {
namespace {

struct Traffic {
  double reads = 0, writes = 0;
};

Traffic run(std::uint64_t n, bool batched_contention) {
  sim::Machine m(sim::MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, batched_contention ? m.cores_per_socket() : 1);
  const GemmBuffers buf = GemmBuffers::allocate(m.address_space(), n);
  run_gemm(m, 0, 0, n, buf);
  m.flush_socket(0);
  return {static_cast<double>(m.memctrl(0).total_bytes(sim::MemDir::Read)),
          static_cast<double>(m.memctrl(0).total_bytes(sim::MemDir::Write))};
}

class GemmCachedRegime : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GemmCachedRegime, MatchesThreeNSquaredWithinTwoPercent) {
  const std::uint64_t n = GetParam();
  // Below the Eq. 3 bound even a fully-contended core holds all three
  // matrices: the 3N^2-reads / N^2-writes expectation is exact.
  ASSERT_LT(n, gemm_cache_band(5ull << 20).lower_n);
  const Traffic t = run(n, /*batched_contention=*/true);
  const ExpectedTraffic exp = gemm_expected(n);
  EXPECT_NEAR(t.reads, exp.read_bytes, 0.02 * exp.read_bytes) << "N=" << n;
  EXPECT_NEAR(t.writes, exp.write_bytes, 0.02 * exp.write_bytes) << "N=" << n;
}

INSTANTIATE_TEST_SUITE_P(CachedSizes, GemmCachedRegime,
                         ::testing::Values(64, 96, 128, 160, 224, 288, 352, 416));

TEST(GemmRegimes, ContendedTrafficIsMonotonicallyAmplifiedPastTheBand) {
  // The measured/expected ratio must not decrease with N once the working
  // set crosses the 5 MB share (the batched curve of Figs. 3b/4b).
  double prev_ratio = 0;
  for (const std::uint64_t n : {512ull, 640ull, 768ull, 896ull}) {
    const Traffic t = run(n, true);
    const double ratio = t.reads / gemm_expected(n).read_bytes;
    EXPECT_GE(ratio, prev_ratio * 0.99) << "N=" << n;
    prev_ratio = ratio;
  }
  EXPECT_GT(prev_ratio, 50.0);  // deep in the uncached regime
}

TEST(GemmRegimes, LoneCoreIsAlwaysCheaperThanContended) {
  for (const std::uint64_t n : {512ull, 768ull, 1024ull}) {
    const Traffic lone = run(n, false);
    const Traffic crowded = run(n, true);
    EXPECT_LE(lone.reads, crowded.reads) << "N=" << n;
  }
}

TEST(GemmRegimes, WriteTrafficStaysAtNSquaredInEveryRegime) {
  // The paper's write curves never jump: C is written exactly once per
  // element regardless of the read-side cache behaviour.
  for (const std::uint64_t n : {256ull, 640ull, 1024ull}) {
    const Traffic t = run(n, true);
    const double exp = gemm_expected(n).write_bytes;
    EXPECT_NEAR(t.writes, exp, 0.03 * exp) << "N=" << n;
  }
}

}  // namespace
}  // namespace papisim::kernels
