// Tests for the runner's socket-occupancy semantics: the difference between
// batched scaling (independent kernels per core) and occupy_socket (one
// OpenMP-parallel kernel contending for per-core L3 shares) -- the two
// execution models behind the paper's BLAS and FFT experiments respectively.
#include <gtest/gtest.h>

#include <memory>

#include "components/perf_nest_component.hpp"
#include "fft/resort.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"
#include "kernels/runner.hpp"

namespace papisim::kernels {
namespace {

struct Stack {
  Stack() : machine(sim::MachineConfig::summit()) {
    machine.set_noise_enabled(false);
    // Privileged route for direct, exact readings.
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, sim::Credentials::root()));
  }
  sim::Machine machine;
  Library lib;
};

/// Measure the S1CF strided nest once (the Eq. 7-sensitive workload).
Measurement measure_nest2(Stack& s, std::uint64_t n, bool occupy) {
  KernelRunner runner(s.machine, s.lib, "perf_nest", 0);
  const mpi::Grid grid{2, 4};
  const fft::RankDims dims = fft::RankDims::of(n, grid);
  const fft::ResortBuffers buf =
      fft::ResortBuffers::allocate(s.machine.address_space(), dims.bytes());
  RunnerOptions opt;
  opt.reps = 1;
  opt.occupy_socket = occupy;
  return runner.measure(
      [&](std::uint32_t core) {
        fft::s1cf_nest2_replay(s.machine, 0, core, dims, buf, false);
      },
      opt);
}

TEST(RunnerOccupancy, OccupySocketEnforcesTheContendedShare) {
  // Past the Eq. 7 bound the contended 5 MB share forces ~5 reads/write;
  // a lone core borrowing 100+ MB of idle slices does not.
  const std::uint64_t n = 896;  // > 724
  Stack contended;
  const Measurement with = measure_nest2(contended, n, /*occupy=*/true);
  Stack lone;
  const Measurement without = measure_nest2(lone, n, /*occupy=*/false);
  const double bytes = static_cast<double>(fft::RankDims::of(n, mpi::Grid{2, 4}).bytes());
  EXPECT_GT(with.read_bytes / bytes, 4.0);
  EXPECT_LT(without.read_bytes / bytes, 3.0);
  // Occupancy never scales the traffic (threads stays at 1).
  EXPECT_EQ(with.threads, 1u);
}

TEST(RunnerOccupancy, BatchedAndOccupyAreDistinctModes) {
  // Batched scales a per-core kernel by the core count; occupy_socket does
  // not scale.  For a workload that fits its share, batched traffic is
  // exactly cores x the occupy traffic.
  const std::uint64_t n = 128;
  auto gemm_measure = [&](bool batched) {
    Stack s;
    KernelRunner runner(s.machine, s.lib, "perf_nest", 0);
    const GemmBuffers buf = GemmBuffers::allocate(s.machine.address_space(), n);
    RunnerOptions opt;
    opt.reps = 1;
    opt.batched = batched;
    opt.occupy_socket = !batched;
    return runner.measure(
        [&](std::uint32_t core) { run_gemm(s.machine, 0, core, n, buf); }, opt);
  };
  const Measurement batched = gemm_measure(true);
  const Measurement occupied = gemm_measure(false);
  EXPECT_EQ(batched.threads, 21u);
  EXPECT_EQ(occupied.threads, 1u);
  EXPECT_NEAR(batched.read_bytes, 21.0 * occupied.read_bytes,
              0.01 * batched.read_bytes);
}

TEST(RunnerOccupancy, MeasurementWindowTimeGrowsWithReps) {
  Stack s;
  KernelRunner runner(s.machine, s.lib, "perf_nest", 0);
  const GemmBuffers buf = GemmBuffers::allocate(s.machine.address_space(), 96);
  auto window = [&](std::uint32_t reps) {
    RunnerOptions opt;
    opt.reps = reps;
    return runner
        .measure([&](std::uint32_t core) { run_gemm(s.machine, 0, core, 96, buf); },
                 opt)
        .elapsed_sec;
  };
  const double one = window(1);
  const double ten = window(10);
  EXPECT_NEAR(ten / one, 10.0, 2.0);
}

}  // namespace
}  // namespace papisim::kernels
