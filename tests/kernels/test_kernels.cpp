// Tests for the BLAS experiment layer: expected-traffic formulas, Eq. 5,
// numeric references, and the simulated kernels' traffic behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kernels/blas_numeric.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"

namespace papisim::kernels {
namespace {

// ------------------------------------------------------- analytic formulas

TEST(Expected, GemmFormulaMatchesPaper) {
  const ExpectedTraffic t = gemm_expected(100);
  EXPECT_DOUBLE_EQ(t.read_bytes, 3.0 * 100 * 100 * 8);
  EXPECT_DOUBLE_EQ(t.write_bytes, 100.0 * 100 * 8);
}

TEST(Expected, GemvCappedFormulaMatchesPaper) {
  const ExpectedTraffic t = gemv_capped_expected(1000, 128);
  EXPECT_DOUBLE_EQ(t.read_bytes, (1000.0 * 128 + 1000 + 128) * 8);
  EXPECT_DOUBLE_EQ(t.write_bytes, 1000.0 * 8);
}

TEST(Expected, SquareGemvIsCappedWithMEqualsN) {
  const ExpectedTraffic sq = gemv_square_expected(500);
  const ExpectedTraffic capped = gemv_capped_expected(500, 500);
  EXPECT_DOUBLE_EQ(sq.read_bytes, capped.read_bytes);
  EXPECT_DOUBLE_EQ(sq.write_bytes, capped.write_bytes);
}

TEST(Expected, CacheBandReproducesEquations3And4) {
  // Paper Eq. 3/4 with the 5 MB per-core slice: N ~ 467 and N ~ 809.
  const CacheBand band = gemm_cache_band(5ull << 20);
  EXPECT_EQ(band.lower_n, 467u);
  EXPECT_EQ(band.upper_n, 809u);
}

TEST(Expected, RepetitionsFollowEquation5) {
  EXPECT_EQ(repetitions_for(0), 514u);
  EXPECT_EQ(repetitions_for(100), 489u);   // floor(514 - 24.6)
  EXPECT_EQ(repetitions_for(1000), 268u);  // floor(514 - 246)
  EXPECT_EQ(repetitions_for(2047), 10u);   // floor(514 - 503.562) = 10
  EXPECT_EQ(repetitions_for(2048), 10u);
  EXPECT_EQ(repetitions_for(100000), 10u);
}

TEST(Expected, S1cfCacheBoundReproducesEquation7) {
  // Paper Eq. 7: 5 MB, 8 ranks -> N ~ 724.
  EXPECT_EQ(s1cf_ln2_cache_bound(5ull << 20, 8), 724u);
}

TEST(Expected, BatchScalingMultipliesTraffic) {
  const ExpectedTraffic t = scaled(gemm_expected(64), 21);
  EXPECT_DOUBLE_EQ(t.read_bytes, 21.0 * 3 * 64 * 64 * 8);
}

// ------------------------------------------------------ numeric references

TEST(Numeric, GemmMatchesHandComputedCase) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<double> a{1, 2, 3, 4}, b{5, 6, 7, 8};
  std::vector<double> c(4);
  gemm_reference(a, b, c, 2);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Numeric, GemmIdentityIsANoOp) {
  const std::size_t n = 16;
  std::vector<double> a(n * n), eye(n * n, 0.0), c(n * n);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = static_cast<double>(i % 13) - 6;
  for (std::size_t i = 0; i < n; ++i) eye[i * n + i] = 1.0;
  gemm_reference(a, eye, c, n);
  EXPECT_EQ(a, c);
}

TEST(Numeric, CappedGemvReusesRowsModuloP) {
  // P = 2 rows: [1 0] and [0 1]; x = [3, 7]; y_i alternates 3, 7, 3, 7...
  const std::vector<double> a{1, 0, 0, 1}, x{3, 7};
  std::vector<double> y(5);
  gemv_capped_reference(a, x, y, 5, 2, 2);
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 7);
  EXPECT_DOUBLE_EQ(y[2], 3);
  EXPECT_DOUBLE_EQ(y[3], 7);
  EXPECT_DOUBLE_EQ(y[4], 3);
}

TEST(Numeric, GemvEqualsGemmColumn) {
  const std::size_t n = 8;
  std::vector<double> a(n * n), x(n), y(n), c(n * n), xmat(n * n, 0.0);
  for (std::size_t i = 0; i < n * n; ++i) a[i] = static_cast<double>((i * 7) % 11);
  for (std::size_t i = 0; i < n; ++i) x[i] = static_cast<double>(i + 1);
  for (std::size_t i = 0; i < n; ++i) xmat[i * n] = x[i];  // x as first column
  gemv_reference(a, x, y, n, n);
  gemm_reference(a, xmat, c, n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(y[i], c[i * n]);
}

TEST(Numeric, DotMatchesClosedForm) {
  std::vector<double> x(100, 2.0), y(100, 3.0);
  EXPECT_DOUBLE_EQ(dot_reference(x, y), 600.0);
  EXPECT_THROW(dot_reference(x, std::span<const double>(y.data(), 50)),
               std::invalid_argument);
}

TEST(Numeric, InputValidation) {
  std::vector<double> small(4);
  EXPECT_THROW(gemm_reference(small, small, small, 3), std::invalid_argument);
  EXPECT_THROW(gemv_capped_reference(small, small, small, 2, 2, 0),
               std::invalid_argument);
}

// ------------------------------------------------------- simulated kernels

struct SimFixture : ::testing::Test {
  void SetUp() override {
    machine = std::make_unique<sim::Machine>(sim::MachineConfig::summit());
    machine->set_noise_enabled(false);
    machine->set_active_cores(0, 1);
  }
  std::uint64_t reads() const {
    return machine->memctrl(0).total_bytes(sim::MemDir::Read);
  }
  std::uint64_t writes() const {
    return machine->memctrl(0).total_bytes(sim::MemDir::Write);
  }
  std::unique_ptr<sim::Machine> machine;
};

TEST_F(SimFixture, GemmTrafficApproaches3N2InCachedRegime) {
  const std::uint64_t n = 256;  // well inside the cache band
  const GemmBuffers buf = GemmBuffers::allocate(machine->address_space(), n);
  run_gemm(*machine, 0, 0, n, buf);
  machine->flush_socket(0);  // drain C
  const ExpectedTraffic exp = gemm_expected(n);
  EXPECT_NEAR(static_cast<double>(reads()), exp.read_bytes, 0.06 * exp.read_bytes);
  EXPECT_NEAR(static_cast<double>(writes()), exp.write_bytes, 0.03 * exp.write_bytes);
}

TEST_F(SimFixture, GemmBeyondCacheExceedsExpectation) {
  // With all cores active there is no lateral cast-out capacity; a GEMM
  // whose matrices exceed the 5 MB share must re-read B's columns.
  machine->set_active_cores(0, machine->cores_per_socket());
  const std::uint64_t n = 1024;  // 3 * 8 MB working set >> 5 MB
  const GemmBuffers buf = GemmBuffers::allocate(machine->address_space(), n);
  run_gemm(*machine, 0, 0, n, buf);
  machine->flush_socket(0);
  const ExpectedTraffic exp = gemm_expected(n);
  EXPECT_GT(static_cast<double>(reads()), 2.0 * exp.read_bytes);
}

TEST_F(SimFixture, SingleCoreGemmBorrowsIdleSlicesGracefully) {
  // Same beyond-slice GEMM with 20 idle cores: lateral cast-out keeps the
  // traffic far closer to the expectation (paper Figs. 3a vs 3b).
  const std::uint64_t n = 1024;
  const GemmBuffers buf = GemmBuffers::allocate(machine->address_space(), n);
  machine->set_active_cores(0, 1);
  run_gemm(*machine, 0, 0, n, buf);
  machine->flush_socket(0);
  const std::uint64_t single = reads();

  sim::Machine contended(sim::MachineConfig::summit());
  contended.set_noise_enabled(false);
  contended.set_active_cores(0, contended.cores_per_socket());
  const GemmBuffers buf2 = GemmBuffers::allocate(contended.address_space(), n);
  run_gemm(contended, 0, 0, n, buf2);
  contended.flush_socket(0);
  const std::uint64_t crowded = contended.memctrl(0).total_bytes(sim::MemDir::Read);

  EXPECT_LT(static_cast<double>(single), 0.7 * static_cast<double>(crowded));
}

TEST_F(SimFixture, GemvCappedReadsMatchExpectationWrites1PerElement) {
  // Paper regime: the capped matrix (N = P = 1280, 12.5 MB) exceeds the 5 MB
  // per-core share and every core is busy (batched), so each row re-read
  // misses and the M*N + M + N expectation holds exactly (Fig. 5).
  machine->set_active_cores(0, machine->cores_per_socket());
  const std::uint64_t m = 16384, n = 1280, p = 1280;
  const GemvBuffers buf = GemvBuffers::allocate(machine->address_space(), m, n, p);
  run_capped_gemv(*machine, 0, 0, m, n, p, buf);
  machine->flush_socket(0);
  const ExpectedTraffic exp = gemv_capped_expected(m, n);
  EXPECT_NEAR(static_cast<double>(reads()), exp.read_bytes, 0.02 * exp.read_bytes);
  EXPECT_NEAR(static_cast<double>(writes()), exp.write_bytes, 0.02 * exp.write_bytes);
}

TEST_F(SimFixture, GemvCappedMatrixWithinCacheIsReadOnce) {
  // Counterpart: when the capped matrix fits the cache, A is read once and
  // the traffic is far below the M*N expectation (why the paper needs the
  // cache-busting sizes).
  machine->set_active_cores(0, machine->cores_per_socket());
  const std::uint64_t m = 16384, n = 256, p = 256;  // A = 512 KB
  const GemvBuffers buf = GemvBuffers::allocate(machine->address_space(), m, n, p);
  run_capped_gemv(*machine, 0, 0, m, n, p, buf);
  machine->flush_socket(0);
  const ExpectedTraffic exp = gemv_capped_expected(m, n);
  EXPECT_LT(static_cast<double>(reads()), 0.1 * exp.read_bytes);
}

TEST_F(SimFixture, DotReadsTwoArraysOnce) {
  const std::uint64_t n = 65536;
  const std::uint64_t x = machine->address_space().allocate(n * 8);
  const std::uint64_t y = machine->address_space().allocate(n * 8);
  run_dot(*machine, 0, 0, n, x, y);
  const ExpectedTraffic exp = dot_expected(n);
  EXPECT_DOUBLE_EQ(static_cast<double>(reads()), exp.read_bytes);
  EXPECT_EQ(writes(), 0u);
}

TEST_F(SimFixture, GemmAdvancesVirtualTime) {
  const std::uint64_t n = 64;
  const GemmBuffers buf = GemmBuffers::allocate(machine->address_space(), n);
  const double t0 = machine->clock().now_ns();
  const sim::LoopStats st = run_gemm(*machine, 0, 0, n, buf);
  EXPECT_GT(machine->clock().now_ns(), t0);
  EXPECT_DOUBLE_EQ(st.flops, 2.0 * n * n * n);
}

}  // namespace
}  // namespace papisim::kernels
