// Integration tests for the measured-kernel runner: the full paper pipeline
// (kernel -> simulated nest counters -> PCP or perf_nest component ->
// averaged measurement), including the PCP-vs-direct accuracy comparison.
#include <gtest/gtest.h>

#include <memory>

#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::kernels {
namespace {

/// Summit-style stack: unprivileged user, PCP route.
struct SummitStack {
  SummitStack()
      : machine(sim::MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    lib.register_component(std::make_unique<components::PcpComponent>(client));
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
  }
  sim::Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  Library lib;
};

/// Tellico-style stack: privileged user, direct perf_nest route.
struct TellicoStack {
  TellicoStack() : machine(sim::MachineConfig::tellico()) {
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
  }
  sim::Machine machine;
  Library lib;
};

TEST(KernelRunner, RejectsUnknownRoute) {
  TellicoStack s;
  EXPECT_THROW(KernelRunner(s.machine, s.lib, "bogus", 0), Error);
}

TEST(KernelRunner, EventNamesMatchTableI) {
  SummitStack s;
  KernelRunner runner(s.machine, s.lib, "pcp", 87);
  const auto names = runner.event_names();
  ASSERT_EQ(names.size(), 16u);
  EXPECT_EQ(names[0],
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  EXPECT_EQ(names[15],
            "pcp:::perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES.value:cpu87");

  TellicoStack t;
  KernelRunner direct(t.machine, t.lib, "perf_nest", 0);
  EXPECT_EQ(direct.event_names()[0], "perf_nest:::power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0");
}

TEST(KernelRunner, NoiselessGemvMeasurementMatchesExpectation) {
  SummitStack s;
  s.machine.set_noise_enabled(false);
  KernelRunner runner(s.machine, s.lib, "pcp", 87);
  // Paper regime: batched, capped matrix larger than the 5 MB L3 share.
  const std::uint64_t m = 8192, n = 1280, p = 1280;
  const GemvBuffers buf = GemvBuffers::allocate(s.machine.address_space(), m, n, p);
  RunnerOptions opt;
  opt.reps = 3;
  opt.batched = true;
  const Measurement meas = runner.measure(
      [&](std::uint32_t core) { run_capped_gemv(s.machine, 0, core, m, n, p, buf); },
      opt);
  const ExpectedTraffic exp = scaled(gemv_capped_expected(m, n), meas.threads);
  EXPECT_EQ(meas.threads, 21u);
  EXPECT_NEAR(meas.read_bytes, exp.read_bytes, 0.03 * exp.read_bytes);
  EXPECT_NEAR(meas.write_bytes, exp.write_bytes, 0.03 * exp.write_bytes);
  EXPECT_EQ(meas.reps, 3u);
  EXPECT_GT(meas.elapsed_sec, 0.0);
}

TEST(KernelRunner, PcpAndPerfNestAgreeWithoutNoise) {
  // The paper's core claim: measurements via PCP are as accurate as those
  // taken directly from the hardware counters.
  const std::uint64_t n = 192;
  auto run = [&](auto& stack, const std::string& route, std::uint32_t cpu) {
    stack.machine.set_noise_enabled(false);
    KernelRunner runner(stack.machine, stack.lib, route, cpu);
    const GemmBuffers buf = GemmBuffers::allocate(stack.machine.address_space(), n);
    RunnerOptions opt;
    opt.reps = 2;
    return runner.measure(
        [&](std::uint32_t core) { run_gemm(stack.machine, 0, core, n, buf); }, opt);
  };
  SummitStack summit;
  TellicoStack tellico;
  const Measurement via_pcp = run(summit, "pcp", 87);
  const Measurement direct = run(tellico, "perf_nest", 0);
  EXPECT_NEAR(via_pcp.read_bytes, direct.read_bytes, 1e-6);
  EXPECT_NEAR(via_pcp.write_bytes, direct.write_bytes, 1e-6);
}

TEST(KernelRunner, SymmetricBatchMatchesLiteralMultiCoreRun) {
  // Validation of the symmetric-batch optimization (DESIGN.md §5): scaling
  // one representative core must equal literally running a kernel per core.
  const std::uint64_t n = 96;
  sim::MachineConfig cfg = sim::MachineConfig::tellico();
  cfg.cores_per_socket = 4;
  cfg.physical_cores_per_socket = 4;

  // Literal run: one GEMM per core, disjoint buffers.
  sim::Machine literal(cfg);
  literal.set_noise_enabled(false);
  literal.set_active_cores(0, 4);
  for (std::uint32_t core = 0; core < 4; ++core) {
    const GemmBuffers buf = GemmBuffers::allocate(literal.address_space(), n);
    run_gemm(literal, 0, core, n, buf);
  }
  literal.flush_socket(0);
  const double lit_reads =
      static_cast<double>(literal.memctrl(0).total_bytes(sim::MemDir::Read));
  const double lit_writes =
      static_cast<double>(literal.memctrl(0).total_bytes(sim::MemDir::Write));

  // Runner's batched mode on an identical machine.
  sim::Machine scaled_m(cfg);
  scaled_m.set_noise_enabled(false);
  Library lib;
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      scaled_m, scaled_m.user_credentials()));
  KernelRunner runner(scaled_m, lib, "perf_nest", 0);
  const GemmBuffers buf = GemmBuffers::allocate(scaled_m.address_space(), n);
  RunnerOptions opt;
  opt.batched = true;
  const Measurement meas = runner.measure(
      [&](std::uint32_t core) { run_gemm(scaled_m, 0, core, n, buf); }, opt);

  EXPECT_EQ(meas.threads, 4u);
  EXPECT_NEAR(meas.read_bytes, lit_reads, 0.01 * lit_reads);
  EXPECT_NEAR(meas.write_bytes, lit_writes, 0.01 * lit_writes);
}

TEST(KernelRunner, RepetitionAveragingAmortizesNoise) {
  // With noise enabled, a small kernel measured once is far off the
  // expectation; averaged over many repetitions it converges (Fig. 2 vs 3a).
  const std::uint64_t n = 128;
  auto measure_with_reps = [&](std::uint32_t reps) {
    SummitStack s;  // noise ON
    KernelRunner runner(s.machine, s.lib, "pcp", 87);
    const GemmBuffers buf = GemmBuffers::allocate(s.machine.address_space(), n);
    RunnerOptions opt;
    opt.reps = reps;
    const Measurement m = runner.measure(
        [&](std::uint32_t core) { run_gemm(s.machine, 0, core, n, buf); }, opt);
    const ExpectedTraffic exp = gemm_expected(n);
    return std::abs(m.read_bytes - exp.read_bytes) / exp.read_bytes;
  };
  const double err1 = measure_with_reps(1);
  const double err500 = measure_with_reps(repetitions_for(n));
  EXPECT_LT(err500, err1);
  EXPECT_LT(err500, 0.25);
  EXPECT_GT(err1, 0.5);  // a 128^2 GEMM measured once is noise-dominated
}

TEST(KernelRunner, FastPathRepetitionsMatchLiteralResimulation) {
  // The runner replays the recorded first-repetition traffic for reps 2..R;
  // that must be byte-identical to literally re-simulating every repetition
  // (noise off => both are deterministic).
  const std::uint64_t n = 96;
  auto run = [&](bool literal) {
    TellicoStack t;
    t.machine.set_noise_enabled(false);
    KernelRunner runner(t.machine, t.lib, "perf_nest", 0);
    const GemmBuffers buf = GemmBuffers::allocate(t.machine.address_space(), n);
    RunnerOptions opt;
    opt.reps = 7;
    opt.literal_reps = literal;
    return runner.measure(
        [&](std::uint32_t core) { run_gemm(t.machine, 0, core, n, buf); }, opt);
  };
  const Measurement fast = run(false);
  const Measurement lit = run(true);
  EXPECT_DOUBLE_EQ(fast.read_bytes, lit.read_bytes);
  EXPECT_DOUBLE_EQ(fast.write_bytes, lit.write_bytes);
  EXPECT_NEAR(fast.elapsed_sec, lit.elapsed_sec, 1e-12);
}

TEST(KernelRunner, BatchedRejectsMoreThreadsThanCores) {
  TellicoStack t;
  KernelRunner runner(t.machine, t.lib, "perf_nest", 0);
  RunnerOptions opt;
  opt.batched = true;
  opt.threads = 99;
  EXPECT_THROW(runner.measure([](std::uint32_t) {}, opt), Error);
}

}  // namespace
}  // namespace papisim::kernels
