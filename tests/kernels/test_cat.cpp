// Tests for the Counter Analysis Toolkit validation module.
#include <gtest/gtest.h>

#include <memory>

#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "kernels/cat.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::kernels {
namespace {

TEST(CounterAnalysis, AllChecksPassViaPcp) {
  sim::Machine machine(sim::MachineConfig::summit());
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  const CatReport report = run_counter_analysis(machine, lib, "pcp", 87);
  ASSERT_GE(report.checks.size(), 6u);
  for (const CatCheck& c : report.checks) {
    EXPECT_TRUE(c.passed) << c.name << ": expected " << c.expected
                          << ", measured " << c.measured;
  }
  EXPECT_TRUE(report.all_passed());
}

TEST(CounterAnalysis, AllChecksPassViaPerfNest) {
  sim::Machine machine(sim::MachineConfig::tellico());
  Library lib;
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      machine, machine.user_credentials()));
  const CatReport report = run_counter_analysis(machine, lib, "perf_nest", 0);
  EXPECT_TRUE(report.all_passed());
}

TEST(CounterAnalysis, MeasuresOnSecondSocketToo) {
  // The qualifier cpu=<second socket> must validate against socket 1's
  // counters (the paper measures per-socket with two ranks per node).
  sim::Machine machine(sim::MachineConfig::tellico());
  Library lib;
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      machine, machine.user_credentials()));
  const std::uint32_t cpu_s1 = machine.config().cpus_per_socket();
  ASSERT_EQ(machine.socket_of_cpu(cpu_s1), 1u);
  const CatReport report = run_counter_analysis(machine, lib, "perf_nest", cpu_s1);
  EXPECT_TRUE(report.all_passed());
}

TEST(CounterAnalysis, RestoresNoiseState) {
  sim::Machine machine(sim::MachineConfig::tellico());
  Library lib;
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      machine, machine.user_credentials()));
  ASSERT_TRUE(machine.noise(0).enabled());
  run_counter_analysis(machine, lib, "perf_nest", 0);
  EXPECT_TRUE(machine.noise(0).enabled());
  machine.set_noise_enabled(false);
  run_counter_analysis(machine, lib, "perf_nest", 0);
  EXPECT_FALSE(machine.noise(0).enabled());
}

TEST(CounterAnalysis, DetectsABrokenCounter) {
  // Sanity of the harness itself: if the check compares against a wrong
  // expectation it must FAIL, not silently pass.
  CatCheck c;
  c.expected = 100.0;
  c.measured = 150.0;
  c.tolerance = 0.02;
  c.passed = std::abs(c.measured - c.expected) <= c.tolerance * c.expected;
  EXPECT_FALSE(c.passed);
}

}  // namespace
}  // namespace papisim::kernels
