// Multi-tenant PMCD scale tests: request coalescing, the short-TTL fetch
// cache, fair-share admission with typed Overloaded backpressure, seeded
// retry jitter, generation monotonicity under concurrent crash-restarts,
// and the 64-client shutdown-while-saturated stress (the PcpScaleStress
// suite also runs under the sanitizer CI leg via the pcp-stress label).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <set>
#include <thread>
#include <vector>

#include "components/pcp_component.hpp"
#include "core/library.hpp"
#include "pcp/backoff.hpp"
#include "pcp/client.hpp"
#include "pcp/fault.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::pcp {
namespace {

using namespace std::chrono_literals;

using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

/// Harness-side deadline (same idiom as test_pcp_faults.cpp): fail instead
/// of wedging the suite if the resilience layer regresses into a hang.
void run_with_deadline(const std::function<void()>& fn,
                       std::chrono::seconds deadline = 120s) {
  std::packaged_task<void()> task(fn);
  std::future<void> done = task.get_future();
  std::thread worker(std::move(task));
  if (done.wait_for(deadline) != std::future_status::ready) {
    ADD_FAILURE() << "operation exceeded the harness deadline (hang)";
    worker.detach();
    return;
  }
  worker.join();
  done.get();
}

PmId read_pmid(Pmcd& daemon, int channel) {
  const auto reply = daemon.lookup(
      "perfevent.hwcounters.nest_mba" + std::to_string(channel) +
      "_imc.PM_MBA" + std::to_string(channel) + "_READ_BYTES");
  EXPECT_TRUE(reply.ok);
  return *reply.pmid;
}

// ------------------------------------------------------------------------
// Request coalescing.

TEST(PcpScale, IdenticalQueuedFetchesCoalesceOntoOneRead) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  PmcdOptions opt;
  opt.shards = 1;  // one mailbox, so identical fetches queue behind the leader
  Pmcd daemon(machine, opt);
  RpcOptions rpc;
  rpc.timeout = 10s;
  rpc.max_retries = 0;
  daemon.set_rpc_options(rpc);
  const PmId pmid = read_pmid(daemon, 0);

  // Stall each leader for 50 ms so the burst piles up behind it; the leader
  // then resolves every identical queued fetch from its one counter read.
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_us = 50'000;
  daemon.set_fault_plan(plan);

  machine.memctrl(0).add_line(0, MemDir::Read);
  constexpr int kClients = 8;
  const std::uint64_t served_before = daemon.requests_served();
  std::vector<std::uint64_t> values(kClients, 0);
  std::atomic<int> failures{0};
  run_with_deadline([&] {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        try {
          const FetchReply r = daemon.fetch({pmid}, 0);
          ASSERT_TRUE(r.ok);
          values[static_cast<std::size_t>(t)] = r.values[0];
        } catch (const Error&) {
          ++failures;
        }
      });
    }
    for (auto& th : threads) th.join();
  });

  ASSERT_EQ(failures.load(), 0);
  // All clients landed within the leader's 50 ms stall, so at least one
  // follower must have been coalesced -- and followers count as served.
  EXPECT_GT(daemon.coalesced(), 0u);
  EXPECT_EQ(daemon.requests_served() - served_before,
            static_cast<std::uint64_t>(kClients));
  for (const std::uint64_t v : values) EXPECT_EQ(v, 64u);
}

// ------------------------------------------------------------------------
// Short-TTL fetch cache.

TEST(PcpScale, CacheServesWithinTtlWithoutRereadingPmu) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  PmcdOptions opt;
  opt.fetch_cache_ttl = 10s;  // everything in this test is "within TTL"
  Pmcd daemon(machine, opt);
  const PmId pmid = read_pmid(daemon, 0);

  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(daemon.fetch({pmid}, 0).values[0], 64u);  // miss, populates
  EXPECT_EQ(daemon.cache_misses(), 1u);
  EXPECT_EQ(daemon.fetch({pmid}, 0).values[0], 64u);  // hit
  EXPECT_EQ(daemon.cache_hits(), 1u);

  // Within the TTL a cached reply may be (boundedly) stale: the advance is
  // invisible until the entry expires.  This is the contract the freshness
  // probe (papisim-probe --pcp) enforces from the outside.
  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(daemon.fetch({pmid}, 0).values[0], 64u);
  EXPECT_EQ(daemon.cache_hits(), 2u);
}

TEST(PcpScale, CacheExpiresByTtlAndObservesAdvance) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  PmcdOptions opt;
  opt.fetch_cache_ttl = 1ms;
  Pmcd daemon(machine, opt);
  const PmId pmid = read_pmid(daemon, 0);

  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(daemon.fetch({pmid}, 0).values[0], 64u);
  machine.memctrl(0).add_line(0, MemDir::Read);
  std::this_thread::sleep_for(10ms);  // wait out the TTL
  EXPECT_EQ(daemon.fetch({pmid}, 0).values[0], 128u);
  EXPECT_GE(daemon.cache_misses(), 2u);
}

TEST(PcpScale, CrashRestartInvalidatesCacheAndRebaselines) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  PmcdOptions opt;
  opt.fetch_cache_ttl = 10s;
  Pmcd daemon(machine, opt);
  RpcOptions rpc;
  rpc.timeout = 1s;
  rpc.max_retries = 0;
  daemon.set_rpc_options(rpc);
  const PmId pmid = read_pmid(daemon, 0);

  machine.memctrl(0).add_line(0, MemDir::Read);
  const FetchReply before = daemon.fetch({pmid}, 0);
  EXPECT_EQ(before.values[0], 64u);
  EXPECT_EQ(before.generation, 1u);

  FaultPlan plan;
  plan.crash_rate = 1.0;
  daemon.set_fault_plan(plan);
  run_with_deadline([&] { EXPECT_THROW((void)daemon.fetch({pmid}, 0), Error); });
  daemon.set_fault_plan(FaultPlan{});

  // A 10 s TTL must NOT leak the dead incarnation's 64 into generation 2:
  // restarts clear the shard caches and re-baseline the counters.
  const FetchReply after = daemon.fetch({pmid}, 0);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_EQ(after.values[0], 0u);
}

// ------------------------------------------------------------------------
// Fair-share admission and Overloaded backpressure.

TEST(PcpScale, PersistentSheddingSurfacesOverloadedAfterBoundedRetry) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  const PmId pmid = read_pmid(daemon, 0);
  RpcOptions rpc;
  rpc.max_retries = 2;
  rpc.backoff_base = std::chrono::microseconds(200);
  daemon.set_rpc_options(rpc);
  daemon.set_admission_limits(0, 0);  // shed everything

  run_with_deadline([&] {
    try {
      (void)daemon.fetch({pmid}, 0);
      FAIL() << "fetch succeeded despite zero admission capacity";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Overloaded);
    }
  });
  // One shed per attempt: 1 initial + 2 retries.
  EXPECT_EQ(daemon.shed(), 3u);

  // Backpressure is transient: restoring capacity restores service.
  daemon.set_admission_limits(64, 4096);
  EXPECT_TRUE(daemon.fetch({pmid}, 0).ok);
}

TEST(PcpScale, GreedyTenantIsShedWhileOtherTenantIsServed) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  PmcdOptions opt;
  opt.shards = 1;
  Pmcd daemon(machine, opt);
  RpcOptions rpc;
  rpc.timeout = 30s;
  rpc.max_retries = 0;
  daemon.set_rpc_options(rpc);
  std::vector<PmId> pmids;
  for (int ch = 0; ch < 8; ++ch) pmids.push_back(read_pmid(daemon, ch));

  daemon.set_admission_limits(/*per_tenant=*/2, /*total=*/1000);
  // Keep the single worker busy 50 ms per request so the greedy burst backs
  // up against its per-tenant bound.
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_us = 50'000;
  daemon.set_fault_plan(plan);

  const ClientId greedy = daemon.register_client();
  const ClientId modest = daemon.register_client();
  std::atomic<int> ok{0}, overloaded{0}, other{0};
  run_with_deadline([&] {
    std::vector<std::thread> threads;
    // Distinct pmids -> distinct fetch keys, so coalescing cannot mask the
    // queue depth the greedy tenant builds up.
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        try {
          if (daemon.fetch({pmids[static_cast<std::size_t>(t)]}, 0, greedy).ok) ++ok;
        } catch (const Error& e) {
          (e.status() == Status::Overloaded ? overloaded : other)++;
        }
      });
    }
    // Mid-burst, the modest tenant's first request must be admitted: its
    // own pending count is zero and the total bound is generous.
    std::this_thread::sleep_for(10ms);
    EXPECT_TRUE(daemon.fetch({pmids[0]}, 0, modest).ok);
    for (auto& th : threads) th.join();
  });

  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(ok.load(), 0);
  EXPECT_GT(overloaded.load(), 0) << "greedy tenant was never shed";
  EXPECT_GT(daemon.shed(), 0u);
  EXPECT_EQ(ok.load() + overloaded.load(), 8);
}

// ------------------------------------------------------------------------
// PcpComponent: Overloaded degrades softly and auto-re-enables.

TEST(PcpScale, ComponentDegradesOnOverloadAndReenablesOnRecovery) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  auto& component = static_cast<components::PcpComponent&>(
      lib.register_component(std::make_unique<components::PcpComponent>(client)));

  auto es = lib.create_eventset();
  es->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu0");
  es->start();
  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(es->read()[0], 64);
  ASSERT_TRUE(component.available());

  RpcOptions rpc;
  rpc.max_retries = 1;
  rpc.backoff_base = std::chrono::microseconds(100);
  daemon.set_rpc_options(rpc);
  daemon.set_admission_limits(0, 0);  // saturate: every fetch is shed

  run_with_deadline([&] {
    std::vector<long long> v;
    EXPECT_NO_THROW(v = es->read());  // no throw in the sampling loop
    EXPECT_EQ(v[0], 64);              // values freeze at the last good fetch
  });
  EXPECT_FALSE(component.available());
  EXPECT_NE(component.disabled_reason().find("Overloaded"), std::string::npos)
      << component.disabled_reason();

  // Backpressure lifts -> the next read re-enables the component and the
  // frozen window ends; no manual reset required.
  daemon.set_admission_limits(64, 4096);
  machine.memctrl(0).add_line(0, MemDir::Read);
  run_with_deadline([&] { EXPECT_EQ(es->read()[0], 128); });
  EXPECT_TRUE(component.available());
  EXPECT_TRUE(component.disabled_reason().empty());
}

// ------------------------------------------------------------------------
// Seeded retry jitter.

TEST(PcpScale, JitterIsDeterministicDispersedAndExponential) {
  using std::chrono::microseconds;
  const microseconds base(1000);

  // Deterministic: same (seed, identity, attempt) -> same backoff.
  EXPECT_EQ(jittered_backoff(base, 7, 3, 1), jittered_backoff(base, 7, 3, 1));

  // Dispersed: distinct identities must not retry in lockstep.
  std::set<std::int64_t> distinct;
  for (std::uint64_t id = 0; id < 64; ++id) {
    const microseconds b = jittered_backoff(base, 7, id, 1);
    EXPECT_GE(b.count(), 500);   // 0.5x base
    EXPECT_LT(b.count(), 1500);  // < 1.5x base
    distinct.insert(b.count());
  }
  EXPECT_GT(distinct.size(), 32u) << "jitter barely disperses identities";

  // Exponential: attempt 3 is 4x the attempt-1 base, same jitter band.
  const microseconds late = jittered_backoff(base, 7, 3, 3);
  EXPECT_GE(late.count(), 2000);
  EXPECT_LT(late.count(), 6000);
}

// ------------------------------------------------------------------------
// Generation monotonicity observed by concurrent clients across restarts.

TEST(PcpScale, GenerationIsMonotoneAcrossConcurrentCrashRestarts) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  RpcOptions rpc;
  rpc.timeout = 1s;
  rpc.max_retries = 3;
  rpc.backoff_base = std::chrono::microseconds(200);
  daemon.set_rpc_options(rpc);
  const PmId pmid = read_pmid(daemon, 0);

  FaultPlan plan;
  plan.seed = 7;
  plan.crash_rate = 0.05;
  daemon.set_fault_plan(plan);

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<int> untyped{0};
  std::atomic<int> regressions{0};
  run_with_deadline([&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        std::uint64_t last_gen = 0;
        for (int i = 0; i < kIters; ++i) {
          try {
            const FetchReply r = daemon.fetch({pmid}, 0);
            if (!r.ok || r.generation < last_gen) ++regressions;
            last_gen = r.generation;
          } catch (const Error&) {
            // typed transient failure: fine, keep hammering
          } catch (...) {
            ++untyped;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  }, 300s);

  EXPECT_EQ(untyped.load(), 0);
  EXPECT_EQ(regressions.load(), 0)
      << "a client observed FetchReply::generation go backwards";
  EXPECT_GE(daemon.restarts(), 1u) << "plan never crashed the daemon";

  daemon.set_fault_plan(FaultPlan{});
  EXPECT_TRUE(daemon.fetch({pmid}, 0).ok);  // supervisor left it healthy
}

// ------------------------------------------------------------------------
// The crash-while-saturated acceptance stress: >=64 clients mid-fetch, a
// FaultPlan crash landing mid-burst, shutdown racing the burst -- every
// request must resolve to a value or a typed error.  Also run under tsan
// (pcp-stress ctest label, see tests/stress_labels.cmake).

TEST(PcpScaleStress, ShutdownWhileSaturatedWithCrashMidBurstLeavesNoBrokenPromise) {
  constexpr int kClients = 64;

  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  RpcOptions rpc;
  rpc.timeout = 200ms;
  rpc.max_retries = 1;
  rpc.backoff_base = std::chrono::microseconds(200);
  daemon.set_rpc_options(rpc);
  std::vector<PmId> pmids;
  for (int ch = 0; ch < 8; ++ch) pmids.push_back(read_pmid(daemon, ch));

  std::atomic<std::uint64_t> served{0};
  std::atomic<std::uint64_t> typed{0};
  std::atomic<std::uint64_t> untyped{0};

  run_with_deadline([&] {
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        const ClientId id = daemon.register_client();
        const std::vector<PmId> mine{pmids[static_cast<std::size_t>(t % 8)]};
        for (;;) {
          try {
            if (daemon.fetch(mine, 0, id).ok) ++served;
          } catch (const Error& e) {
            ++typed;
            if (e.status() == Status::Shutdown) return;
            if (e.status() != Status::Timeout &&
                e.status() != Status::Overloaded &&
                e.status() != Status::Internal) {
              ++untyped;  // typed, but outside the documented contract
              return;
            }
          } catch (...) {
            ++untyped;  // std::future_error or worse: the protocol broke
            return;
          }
        }
      });
    }

    // Saturate, then crash the pool mid-burst, then shut down while dozens
    // of clients are mid-fetch.
    while (served.load() < kClients) std::this_thread::yield();
    FaultPlan plan;
    plan.seed = 11;
    plan.crash_rate = 0.02;
    daemon.set_fault_plan(plan);
    std::this_thread::sleep_for(100ms);
    daemon.shutdown();
    for (auto& th : threads) th.join();
  }, 300s);

  EXPECT_EQ(untyped.load(), 0u) << "a request resolved to something untyped";
  EXPECT_GE(served.load(), static_cast<std::uint64_t>(kClients));
  EXPECT_GT(typed.load(), 0u);  // shutdown terminated every client typed
}

}  // namespace
}  // namespace papisim::pcp
