// Fault-injection and resilience tests for the PCP path: the FaultPlan on
// the PMCD, client deadlines/retries, the drain-then-stop shutdown protocol,
// crash-restart counter re-baselining, and PcpComponent's graceful
// degradation.  The harness wraps every potentially-hanging section in its
// own deadline so a resilience regression fails fast instead of wedging the
// suite.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "components/pcp_component.hpp"
#include "core/library.hpp"
#include "core/sampler.hpp"
#include "pcp/client.hpp"
#include "pcp/fault.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::pcp {
namespace {

using namespace std::chrono_literals;

using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

/// Fast-failing round-trip policy for fault tests: short per-attempt
/// deadline, a couple of retries, negligible backoff.
RpcOptions fast_rpc() {
  RpcOptions opt;
  opt.timeout = 50ms;
  opt.max_retries = 2;
  opt.backoff_base = std::chrono::microseconds(200);
  return opt;
}

/// Harness-side deadline: run `fn` on a worker and fail (rather than hang
/// the suite) if it does not finish in time.  The worker is joined on
/// success; on a genuine hang the join would block, so it is only joined
/// when the deadline was met.
void run_with_deadline(const std::function<void()>& fn,
                       std::chrono::seconds deadline = 120s) {
  std::packaged_task<void()> task(fn);
  std::future<void> done = task.get_future();
  std::thread worker(std::move(task));
  if (done.wait_for(deadline) != std::future_status::ready) {
    ADD_FAILURE() << "operation exceeded the harness deadline (hang)";
    worker.detach();  // unreachable unless the resilience layer regressed
    return;
  }
  worker.join();
  done.get();  // propagate assertions/exceptions
}

PmId read_bytes_pmid(Pmcd& daemon) {
  const auto pmid =
      daemon.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
  EXPECT_TRUE(pmid.ok);
  return *pmid.pmid;
}

// ------------------------------------------------------------------------
// Parameterized fault matrix: {drop, delay, error, crash} x {lookup, names,
// fetch}.  Every call must succeed, fail with a typed Status, or degrade --
// never hang, never surface std::future_error.

struct FaultSpec {
  const char* name;
  FaultPlan plan;
};

FaultSpec fault_specs(int i) {
  FaultPlan drop;
  drop.drop_rate = 0.45;
  FaultPlan delay;
  delay.delay_rate = 0.45;
  delay.delay_us = 500;
  FaultPlan error;
  error.error_rate = 0.45;
  FaultPlan crash;
  crash.crash_rate = 0.45;
  const FaultSpec specs[] = {
      {"drop", drop}, {"delay", delay}, {"error", error}, {"crash", crash}};
  return specs[i];
}

enum class Op { Lookup, Names, Fetch };
using MatrixParam = std::tuple<int, Op>;

class PcpFaultMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(PcpFaultMatrix, NeverHangsAlwaysTyped) {
  const FaultSpec spec = fault_specs(std::get<0>(GetParam()));
  const Op op = std::get<1>(GetParam());

  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  daemon.set_rpc_options(fast_rpc());
  const auto pmid = read_bytes_pmid(daemon);
  daemon.set_fault_plan(spec.plan);

  int ok = 0, typed = 0;
  run_with_deadline([&] {
    for (int i = 0; i < 40; ++i) {
      try {
        switch (op) {
          case Op::Lookup:
            (void)daemon.lookup(
                "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
            break;
          case Op::Names:
            (void)daemon.names_under("perfevent");
            break;
          case Op::Fetch: {
            const FetchReply r = daemon.fetch({pmid}, 0);
            EXPECT_TRUE(r.ok);
            break;
          }
        }
        ++ok;
      } catch (const Error& e) {
        ++typed;
        EXPECT_TRUE(e.status() == Status::Timeout ||
                    e.status() == Status::Internal ||
                    e.status() == Status::Shutdown)
            << "unexpected status " << to_string(e.status());
      } catch (const std::exception& e) {
        ADD_FAILURE() << "untyped exception escaped: " << e.what();
      }
    }
  });

  EXPECT_EQ(ok + typed, 40);
  EXPECT_GT(daemon.faults_injected(), 0u) << "plan injected nothing";
  // With per-attempt retries, most calls ride out a 45% fault rate.
  EXPECT_GT(ok, 0);

  // The daemon must still be (or become) healthy once faults stop.
  daemon.set_fault_plan(FaultPlan{});
  const FetchReply healthy = daemon.fetch({pmid}, 0);
  EXPECT_TRUE(healthy.ok);
}

std::string matrix_case_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const char* ops[] = {"lookup", "names", "fetch"};
  return std::string(fault_specs(std::get<0>(info.param)).name) + "_" +
         ops[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllFaultsAllOps, PcpFaultMatrix,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(Op::Lookup, Op::Names, Op::Fetch)),
    matrix_case_name);

// ------------------------------------------------------------------------
// Individual fault semantics.

TEST(PcpFaults, DropEveryRequestSurfacesTimeoutNotBrokenPromise) {
  Machine machine(MachineConfig::summit());
  Pmcd daemon(machine);
  RpcOptions opt = fast_rpc();
  opt.timeout = 20ms;
  opt.max_retries = 1;
  daemon.set_rpc_options(opt);
  FaultPlan plan;
  plan.drop_rate = 1.0;
  daemon.set_fault_plan(plan);

  run_with_deadline([&] {
    try {
      (void)daemon.fetch({0}, 0);
      FAIL() << "fetch succeeded despite 100% drop";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Timeout);
    }
  });
}

TEST(PcpFaults, InjectedErrorsExhaustRetriesAsInternal) {
  Machine machine(MachineConfig::summit());
  Pmcd daemon(machine);
  daemon.set_rpc_options(fast_rpc());
  FaultPlan plan;
  plan.error_rate = 1.0;
  daemon.set_fault_plan(plan);

  run_with_deadline([&] {
    try {
      (void)daemon.names_under("");
      FAIL() << "names_under succeeded despite 100% error injection";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Internal);
    }
  });
  // 1 initial attempt + 2 retries, each faulted.
  EXPECT_EQ(daemon.faults_injected(), 3u);
}

TEST(PcpFaults, DelayedRequestsStillSucceed) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  FaultPlan plan;
  plan.delay_rate = 1.0;
  plan.delay_us = 2000;
  daemon.set_fault_plan(plan);

  machine.memctrl(0).add_line(0, MemDir::Read);
  run_with_deadline([&] {
    const auto pmid = read_bytes_pmid(daemon);
    const FetchReply r = daemon.fetch({pmid}, 0);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.values[0], 64u);
  });
}

TEST(PcpFaults, CrashIsRestartedBySupervisor) {
  Machine machine(MachineConfig::summit());
  Pmcd daemon(machine);
  daemon.set_rpc_options(fast_rpc());
  const auto pmid = read_bytes_pmid(daemon);
  FaultPlan plan;
  plan.crash_rate = 1.0;
  daemon.set_fault_plan(plan);

  run_with_deadline([&] {
    EXPECT_THROW((void)daemon.fetch({pmid}, 0), Error);
  });
  daemon.set_fault_plan(FaultPlan{});

  const FetchReply healthy = daemon.fetch({pmid}, 0);
  EXPECT_TRUE(healthy.ok);
  EXPECT_GE(daemon.restarts(), 1u);
  EXPECT_GE(daemon.generation(), 2u);
}

TEST(PcpFaults, RestartRebaselinesCountersAndStampsGeneration) {
  Machine machine(MachineConfig::summit());
  machine.set_noise_enabled(false);
  Pmcd daemon(machine);
  RpcOptions opt = fast_rpc();
  opt.max_retries = 0;  // a single crash, not one per retry
  daemon.set_rpc_options(opt);
  const auto pmid = read_bytes_pmid(daemon);

  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(0).add_line(0, MemDir::Read);
  FetchReply before = daemon.fetch({pmid}, 0);
  ASSERT_TRUE(before.ok);
  EXPECT_EQ(before.values[0], 128u);
  EXPECT_EQ(before.generation, 1u);

  FaultPlan plan;
  plan.crash_rate = 1.0;
  daemon.set_fault_plan(plan);
  run_with_deadline([&] {
    EXPECT_THROW((void)daemon.fetch({pmid}, 0), Error);
  });
  daemon.set_fault_plan(FaultPlan{});

  // The restarted incarnation reports since-restart values: re-baselined to
  // zero, stamped with the new generation.
  FetchReply after = daemon.fetch({pmid}, 0);
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.values[0], 0u);
  EXPECT_EQ(after.generation, 2u);

  machine.memctrl(0).add_line(0, MemDir::Read);
  FetchReply more = daemon.fetch({pmid}, 0);
  ASSERT_TRUE(more.ok);
  EXPECT_EQ(more.values[0], 64u);
}

// ------------------------------------------------------------------------
// Drain-then-stop shutdown protocol.

TEST(PmcdShutdown, PostAfterShutdownFailsFastWithTypedStatus) {
  Machine machine(MachineConfig::summit());
  Pmcd daemon(machine);
  daemon.shutdown();
  run_with_deadline([&] {
    try {
      (void)daemon.fetch({0}, 0);
      FAIL() << "fetch succeeded after shutdown";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Shutdown);
    }
  });
  EXPECT_NO_THROW(daemon.shutdown());  // idempotent
}

TEST(PmcdShutdown, ParkedDropVictimsAreFailedNotBroken) {
  Machine machine(MachineConfig::summit());
  auto daemon = std::make_unique<Pmcd>(machine);
  RpcOptions opt = fast_rpc();
  opt.timeout = 10ms;
  opt.max_retries = 0;
  daemon->set_rpc_options(opt);
  FaultPlan plan;
  plan.drop_rate = 1.0;
  daemon->set_fault_plan(plan);
  run_with_deadline([&] {
    EXPECT_THROW((void)daemon->fetch({0}, 0), Error);
  });
  // Destruction must fail the parked promise (Status::Shutdown), not break
  // it; a broken promise would abort via std::terminate in the daemon.
  EXPECT_NO_THROW(daemon.reset());
}

// The destruction-vs-post race the drain-then-stop protocol fixes: clients
// hammering the daemon while it shuts down must each see either a served
// reply or Error(Status::Shutdown) -- never std::future_error.
TEST(PmcdShutdown, DestructionVsPostStress) {
  constexpr int kRounds = 20;
  constexpr int kThreads = 4;

  run_with_deadline([&] {
    for (int round = 0; round < kRounds; ++round) {
      Machine machine(MachineConfig::summit());
      machine.set_noise_enabled(false);
      Pmcd daemon(machine);
      std::atomic<int> untyped{0};
      std::atomic<int> served{0};
      std::vector<std::thread> threads;
      threads.reserve(kThreads);
      for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
          for (;;) {
            try {
              const FetchReply r = daemon.fetch({0}, 0);
              if (r.ok) ++served;
            } catch (const Error& e) {
              if (e.status() != Status::Shutdown &&
                  e.status() != Status::Timeout) {
                ++untyped;
              }
              return;  // daemon is going away
            } catch (...) {
              ++untyped;  // future_error or anything else: protocol broken
              return;
            }
          }
        });
      }
      // Let the clients get in flight, then shut down concurrently.
      while (served.load() < kThreads) std::this_thread::yield();
      daemon.shutdown();
      for (auto& th : threads) th.join();
      ASSERT_EQ(untyped.load(), 0) << "round " << round;
    }
  }, 300s);
}

// ------------------------------------------------------------------------
// PcpComponent resilience: EventSet deltas across a daemon restart, and
// graceful degradation (disabled_reason, frozen values) once retries
// exhaust -- the Sampler keeps looping either way.

constexpr const char* kReadEvent =
    "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu0";

struct PcpResilienceFixture : ::testing::Test {
  PcpResilienceFixture()
      : machine(MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    machine.set_noise_enabled(false);
    component = &static_cast<components::PcpComponent&>(
        lib.register_component(std::make_unique<components::PcpComponent>(client)));
  }

  void crash_daemon_once() {
    RpcOptions opt = fast_rpc();
    opt.max_retries = 0;
    daemon.set_rpc_options(opt);
    FaultPlan plan;
    plan.crash_rate = 1.0;
    daemon.set_fault_plan(plan);
    EXPECT_THROW((void)daemon.fetch({0}, 0), Error);
    daemon.set_fault_plan(FaultPlan{});
    daemon.set_rpc_options(RpcOptions{});
  }

  Machine machine;
  Pmcd daemon;
  PcpClient client;
  Library lib;
  components::PcpComponent* component = nullptr;
};

TEST_F(PcpResilienceFixture, EventSetDeltaSurvivesDaemonRestart) {
  // Pre-start traffic makes the start snapshot nonzero, so the restarted
  // daemon's re-baselined (near-zero) values would wrap the unsigned delta
  // without the clamp + generation re-baseline.
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(0).add_line(0, MemDir::Read);  // 128 B before start

  auto es = lib.create_eventset();
  es->add_event(kReadEvent);
  es->start();
  machine.memctrl(0).add_line(0, MemDir::Read);  // +64 B
  EXPECT_EQ(es->read()[0], 64);

  run_with_deadline([&] { crash_daemon_once(); });

  // Across the restart the banked progress is kept and the delta stays
  // sane (the unclamped subtraction would report ~2^64).
  EXPECT_EQ(es->read()[0], 64);
  machine.memctrl(0).add_line(0, MemDir::Read);  // +64 B after restart
  EXPECT_EQ(es->read()[0], 128);
  es->stop();
}

TEST_F(PcpResilienceFixture, ExhaustedRetriesDegradeComponentInsteadOfThrowing) {
  auto es = lib.create_eventset();
  es->add_event(kReadEvent);
  es->start();
  machine.memctrl(0).add_line(0, MemDir::Read);
  EXPECT_EQ(es->read()[0], 64);
  ASSERT_TRUE(component->available());

  // Kill the daemon for good: every subsequent round trip fails fast.
  daemon.shutdown();

  run_with_deadline([&] {
    // The sampling-loop call does NOT throw: values freeze and the
    // component reports itself disabled.
    std::vector<long long> v;
    EXPECT_NO_THROW(v = es->read());
    EXPECT_EQ(v[0], 64);
    EXPECT_NO_THROW(v = es->read());  // stays degraded, still no throw
    EXPECT_EQ(v[0], 64);
  });
  EXPECT_FALSE(component->available());
  EXPECT_NE(component->disabled_reason().find("Shutdown"), std::string::npos)
      << component->disabled_reason();
  // Control-plane operations on a disabled component fail with the typed
  // ComponentDisabled status (PAPI semantics).
  try {
    es->reset();
    FAIL() << "reset succeeded on a disabled component";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::ComponentDisabled);
  }
}

TEST_F(PcpResilienceFixture, SamplerLoopCompletesUnderSeededFaultPlan) {
  // The acceptance scenario: >=10% of requests faulted, a Sampler loop over
  // pcp::: events completes without hanging or crashing, and every column
  // stays monotone (clamped deltas + banked restarts never go backwards).
  RpcOptions opt = fast_rpc();
  opt.timeout = 30ms;
  opt.max_retries = 3;
  daemon.set_rpc_options(opt);

  auto es = lib.create_eventset();
  es->add_event(kReadEvent);
  es->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu0");
  Sampler sampler(machine.clock());
  sampler.add_eventset(*es);
  sampler.start_all();

  FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.05;
  plan.delay_rate = 0.03;
  plan.delay_us = 300;
  plan.error_rate = 0.05;
  plan.crash_rate = 0.02;  // 15% total
  daemon.set_fault_plan(plan);

  run_with_deadline([&] {
    for (int i = 0; i < 50; ++i) {
      machine.memctrl(0).add_line(static_cast<std::uint64_t>(i) * 64,
                                  i % 3 == 0 ? MemDir::Write : MemDir::Read);
      machine.clock().advance(1000.0);
      sampler.sample();
    }
  }, 300s);

  ASSERT_EQ(sampler.rows().size(), 50u);
  EXPECT_GT(daemon.faults_injected(), 0u);
  for (std::size_t col = 0; col < sampler.columns().size(); ++col) {
    long long prev = 0;
    for (const TimelineRow& row : sampler.rows()) {
      EXPECT_GE(row.values[col], prev)
          << "column " << sampler.columns()[col] << " went backwards";
      prev = row.values[col];
    }
  }
}

}  // namespace
}  // namespace papisim::pcp
