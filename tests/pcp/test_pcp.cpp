// Tests for the PMNS, the PMCD daemon protocol, and the PCP client.
#include <gtest/gtest.h>

#include <thread>

#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "pcp/pmns.hpp"

namespace papisim::pcp {
namespace {

using sim::Credentials;
using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

TEST(Pmns, ContainsAllNestMetrics) {
  Pmns pmns(MachineConfig::summit());
  EXPECT_EQ(pmns.size(), 32u);
  EXPECT_TRUE(pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES")
                  .has_value());
  EXPECT_TRUE(pmns.lookup("perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES")
                  .has_value());
  EXPECT_FALSE(pmns.lookup("perfevent.hwcounters.nest_mba8_imc.PM_MBA8_READ_BYTES")
                   .has_value());
  EXPECT_FALSE(pmns.lookup("no.such.metric").has_value());
}

TEST(Pmns, MetricNameMatchesPaperTableI) {
  EXPECT_EQ(Pmns::metric_name(3, nest::NestEventKind::WriteBytes),
            "perfevent.hwcounters.nest_mba3_imc.PM_MBA3_WRITE_BYTES");
}

TEST(Pmns, PrefixTraversal) {
  Pmns pmns(MachineConfig::summit());
  EXPECT_EQ(pmns.names_under("").size(), 32u);
  EXPECT_EQ(pmns.names_under("perfevent.hwcounters").size(), 32u);
  EXPECT_EQ(pmns.names_under("perfevent.hwcounters.nest_mba2_imc").size(), 4u);
  EXPECT_TRUE(pmns.names_under("bogus").empty());
}

TEST(Pmns, DescriptorsRoundTrip) {
  Pmns pmns(MachineConfig::summit());
  for (const std::string& name : pmns.names_under("")) {
    const auto pmid = pmns.lookup(name);
    ASSERT_TRUE(pmid.has_value());
    const MetricDesc* d = pmns.descriptor(*pmid);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->name, name);
    EXPECT_EQ(d->semantics, "counter");
  }
  EXPECT_EQ(pmns.descriptor(999), nullptr);
}

struct PcpFixture : ::testing::Test {
  PcpFixture() : machine(MachineConfig::summit()), daemon(machine) {
    machine.set_noise_enabled(false);
  }
  Machine machine;
  Pmcd daemon;
};

TEST_F(PcpFixture, DaemonHoldsPrivilegeUserDoesNot) {
  // The machine's ordinary user is unprivileged, yet the daemon (root)
  // serves nest values to it: the PCP privilege model.
  ASSERT_FALSE(machine.user_credentials().privileged());
  PcpClient client(daemon, machine, machine.user_credentials());
  const auto pmid =
      client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
  ASSERT_TRUE(pmid.has_value());
  const FetchReply reply = client.fetch({*pmid}, 0);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.values.size(), 1u);
}

TEST_F(PcpFixture, FetchReflectsNestCounters) {
  PcpClient client(daemon, machine, machine.user_credentials());
  const auto rd = client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
  const auto wr = client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES");
  ASSERT_TRUE(rd && wr);
  machine.memctrl(0).add_line(0, MemDir::Read);   // channel 0
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(0).add_line(0, MemDir::Write);
  const FetchReply reply = client.fetch({*rd, *wr}, 0);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.values[0], 128u);
  EXPECT_EQ(reply.values[1], 64u);
}

TEST_F(PcpFixture, CpuInstanceSelectsSocket) {
  PcpClient client(daemon, machine, machine.user_credentials());
  const auto rd = client.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES");
  machine.memctrl(1).add_line(0, MemDir::Read);  // socket 1 only
  // Summit cpu ids: 0..87 socket 0, 88..175 socket 1; the paper's event
  // qualifiers cpu87 and cpu175 are the last threads of each socket.
  const FetchReply s0 = client.fetch({*rd}, 87);
  const FetchReply s1 = client.fetch({*rd}, 175);
  ASSERT_TRUE(s0.ok && s1.ok);
  EXPECT_EQ(s0.values[0], 0u);
  EXPECT_EQ(s1.values[0], 64u);
}

TEST_F(PcpFixture, FetchErrorsOnBadInstanceOrPmid) {
  PcpClient client(daemon, machine, machine.user_credentials());
  const FetchReply bad_cpu = client.fetch({0}, 100000);
  EXPECT_FALSE(bad_cpu.ok);
  const FetchReply bad_pmid = client.fetch({9999}, 0);
  EXPECT_FALSE(bad_pmid.ok);
}

TEST_F(PcpFixture, LookupFailsForUnknownName) {
  PcpClient client(daemon, machine, machine.user_credentials());
  EXPECT_FALSE(client.lookup("not.a.metric").has_value());
}

TEST_F(PcpFixture, NamesUnderTraversesRemoteNamespace) {
  PcpClient client(daemon, machine, machine.user_credentials());
  EXPECT_EQ(client.names_under("perfevent").size(), 32u);
}

TEST_F(PcpFixture, EachRoundTripCostsFetchLatency) {
  PcpClient client(daemon, machine, machine.user_credentials());
  const double t0 = machine.clock().now_ns();
  client.fetch({0}, 0);
  client.fetch({0, 1, 2}, 0);  // one round trip regardless of metric count
  EXPECT_DOUBLE_EQ(machine.clock().now_ns(),
                   t0 + 2 * machine.config().pcp_fetch_latency_ns);
  EXPECT_EQ(client.round_trips(), 2u);
}

TEST_F(PcpFixture, ConcurrentClientsAreServedSafely) {
  // Several client threads hammering the daemon must all complete and get
  // coherent replies (the counters only grow).
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::uint64_t prev = 0;
      for (int i = 0; i < kIters; ++i) {
        const FetchReply r = daemon.fetch({0}, 0);
        if (!r.ok || r.values[0] < prev) ++failures;
        prev = r.values[0];
        machine.memctrl(0).add_line(0, sim::MemDir::Read);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(daemon.requests_served(), static_cast<std::uint64_t>(kThreads * kIters));
}

}  // namespace
}  // namespace papisim::pcp
