// Tests for the pmlogger-style archive recorder.
#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "pcp/pmlogger.hpp"
#include "pcp/pmcd.hpp"

namespace papisim::pcp {
namespace {

using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

struct LoggerFixture : ::testing::Test {
  LoggerFixture()
      : machine(MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()) {
    machine.set_noise_enabled(false);
  }
  Machine machine;
  Pmcd daemon;
  PcpClient client;
};

const std::vector<std::string> kMetrics = {
    "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES",
    "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES",
};

TEST_F(LoggerFixture, RecordsTimestampedSnapshots) {
  PmLogger logger(client, kMetrics, 87);
  logger.poll();
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.advance(1e9);
  logger.poll();
  ASSERT_EQ(logger.records(), 2u);
  const Archive& ar = logger.archive();
  EXPECT_EQ(ar.records[0].values[0], 0u);
  EXPECT_EQ(ar.records[1].values[0], 64u);
  EXPECT_GT(ar.records[1].t_sec, ar.records[0].t_sec);
  EXPECT_EQ(ar.cpu, 87u);
}

TEST_F(LoggerFixture, EachPollPaysOneRoundTrip) {
  PmLogger logger(client, kMetrics, 87);  // ctor: 2 lookups
  const std::uint64_t before = client.round_trips();
  logger.poll();
  logger.poll();
  EXPECT_EQ(client.round_trips(), before + 2);
}

TEST_F(LoggerFixture, UnknownMetricRejectedAtConstruction) {
  EXPECT_THROW(PmLogger(client, {"no.such.metric"}, 0), std::runtime_error);
}

TEST_F(LoggerFixture, ArchiveSaveLoadRoundTrips) {
  PmLogger logger(client, kMetrics, 87);
  logger.poll();
  machine.memctrl(0).add_line(0, MemDir::Read);
  machine.memctrl(0).add_line(0, MemDir::Write);
  machine.advance(5e8);
  logger.poll();

  std::stringstream ss;
  logger.archive().save(ss);
  const Archive loaded = Archive::load(ss);
  EXPECT_EQ(loaded.metrics, logger.archive().metrics);
  EXPECT_EQ(loaded.cpu, 87u);
  ASSERT_EQ(loaded.records.size(), 2u);
  EXPECT_EQ(loaded.records[1].values, logger.archive().records[1].values);
  EXPECT_NEAR(loaded.records[1].t_sec, logger.archive().records[1].t_sec, 1e-12);
}

TEST_F(LoggerFixture, LoadRejectsCorruptArchives) {
  {
    std::stringstream ss("garbage\n");
    EXPECT_THROW(Archive::load(ss), std::runtime_error);
  }
  {
    std::stringstream ss("# papisim-archive v1\nmetric a.b\nrecord 0.5 1 2\n");
    EXPECT_THROW(Archive::load(ss), std::runtime_error);  // width mismatch
  }
  {
    std::stringstream ss("# papisim-archive v1\nbogus line\n");
    EXPECT_THROW(Archive::load(ss), std::runtime_error);
  }
}

TEST_F(LoggerFixture, LoadToleratesCrlfAndTrailingWhitespace) {
  std::stringstream ss(
      "# papisim-archive v1\r\n"
      "cpu 87 \r\n"
      "metric a.b\t\r\n"
      "metric c.d\r\n"
      "record 0.5 1 2   \r\n"
      "record 1.5 3 4\r\n");
  const Archive ar = Archive::load(ss);
  EXPECT_EQ(ar.cpu, 87u);
  ASSERT_EQ(ar.metrics.size(), 2u);
  ASSERT_EQ(ar.records.size(), 2u);
  EXPECT_EQ(ar.records[0].values, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(ar.records[1].values, (std::vector<std::uint64_t>{3, 4}));
}

TEST_F(LoggerFixture, MalformedArchivesThrowTypedInternalErrors) {
  auto expect_internal = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      Archive::load(ss);
      FAIL() << "expected Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Internal) << text;
      EXPECT_NE(std::string(e.what()).find("Archive::load"), std::string::npos);
    }
  };
  expect_internal("");                                           // empty stream
  expect_internal("# papisim-archive v2\n");                     // bad header
  expect_internal("# papisim-archive v1\ncpu x\n");              // bad cpu
  expect_internal("# papisim-archive v1\nmetric\n");             // nameless
  expect_internal("# papisim-archive v1\nmetric a.b\nrecord oops 1\n");
  expect_internal("# papisim-archive v1\nmetric a.b\nrecord 0.5 12junk\n");
  expect_internal("# papisim-archive v1\nmetric a.b\nrecord 0.5 1 2\n");
}

TEST_F(LoggerFixture, LoadRejectsTruncatedRecords) {
  auto expect_internal = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      Archive::load(ss);
      FAIL() << "expected Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Internal) << text;
    }
  };
  const std::string head =
      "# papisim-archive v1\ncpu 0\nmetric a.b\nmetric c.d\nmetric e.f\n";
  // A record cut off mid-values (writer died between columns) must not load
  // as a short row -- the width check has to fire on too FEW values too.
  expect_internal(head + "record 0.5 1 2\n");
  expect_internal(head + "record 0.5 1\n");
  expect_internal(head + "record 0.5\n");
  // Truncated mid-token: the partial value parses, the width check fires.
  expect_internal(head + "record 0.5 1 2 3\nrecord 1.5 4 5");
}

TEST_F(LoggerFixture, LoadRejectsInvalidUtf8MetricNames) {
  auto expect_internal = [](const std::string& text) {
    std::stringstream ss(text);
    try {
      Archive::load(ss);
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Internal);
      EXPECT_NE(std::string(e.what()).find("UTF-8"), std::string::npos);
    }
  };
  const std::string head = "# papisim-archive v1\n";
  expect_internal(head + "metric mem.\xFF\x41.reads\n");   // lone 0xFF lead
  expect_internal(head + "metric mem.\xC3(\n");            // broken 2-byte seq
  expect_internal(head + "metric mem.\xE2\x82\n");         // truncated 3-byte
  expect_internal(head + "metric \xC0\xAF\n");             // overlong slash
  expect_internal(head + "metric \xED\xA0\x80.x\n");       // UTF-16 surrogate

  // Well-formed multibyte names are fine (the check is UTF-8 validity, not
  // an ASCII whitelist).
  std::stringstream ok(head + "metric mem.b\xC3\xA9ta.reads\n");
  EXPECT_EQ(Archive::load(ok).metrics.size(), 1u);
}

TEST_F(LoggerFixture, LoadRejectsEmptyAndCrlfOnlyFiles) {
  for (const std::string text : {std::string(""), std::string("\r\n"),
                                 std::string("\r\n\r\n\r\n")}) {
    std::stringstream ss(text);
    try {
      Archive::load(ss);
      FAIL() << "expected Error for " << text.size() << "-byte file";
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::Internal);
    }
  }
  // A CRLF-terminated but otherwise intact archive still loads (CRLF is a
  // transport artifact, not corruption).
  std::stringstream ok("# papisim-archive v1\r\ncpu 3\r\n");
  EXPECT_EQ(Archive::load(ok).cpu, 3u);
}

TEST_F(LoggerFixture, CountersInArchiveAreMonotonic) {
  PmLogger logger(client, kMetrics, 87);
  for (int i = 0; i < 10; ++i) {
    machine.memctrl(0).add_line(static_cast<std::uint64_t>(i), MemDir::Read);
    logger.poll();
  }
  const Archive& ar = logger.archive();
  for (std::size_t i = 1; i < ar.records.size(); ++i) {
    EXPECT_GE(ar.records[i].values[0], ar.records[i - 1].values[0]);
  }
}

}  // namespace
}  // namespace papisim::pcp
