// End-to-end acceptance for the analysis pipeline on the paper's flagship
// workload (Fig. 11): a GPU-accelerated 3D-FFT rank profiled across PCP
// memory traffic, NVML power, and Infiniband counters.
//
//  - inferred boundaries land within one sample interval of ground truth;
//  - dt-weighted label accuracy >= 90%;
//  - per-phase read/write attribution within 5% of the application's own
//    byte counts;
//  - a pmlogger archive recorded in the same run yields the *identical*
//    segmentation offline (no live Profiler) as the live timeline
//    restricted to the archived columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "analysis/score.hpp"
#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "core/library.hpp"
#include "core/sampler.hpp"
#include "fft/fft3d.hpp"
#include "pcp/pmcd.hpp"
#include "pcp/pmlogger.hpp"
#include "sim/machine.hpp"

namespace papisim::analysis {
namespace {

/// One shared profiled run (the FFT takes a second or two; every test reads
/// from the same recording).
struct Fig11Run {
  sim::Machine machine{sim::MachineConfig::summit()};
  pcp::Pmcd daemon{machine};
  pcp::PcpClient client{daemon, machine, machine.user_credentials()};
  gpu::GpuDevice gpu{gpu::GpuConfig{}, machine, 0, 0};
  net::Nic nic{net::NicConfig{}};
  mpi::JobComm comm{machine, nic};
  Library lib;
  std::unique_ptr<EventSet> es_mem, es_gpu, es_net;
  Sampler sampler{machine.clock()};
  std::vector<fft::PhaseStats> phases;
  pcp::Archive archive;
  Timeline live;
  Segmentation seg;

  Fig11Run() {
    lib.register_component(std::make_unique<components::PcpComponent>(client));
    lib.register_component(std::make_unique<components::NvmlComponent>(
        std::vector<gpu::GpuDevice*>{&gpu}));
    lib.register_component(
        std::make_unique<components::InfinibandComponent>(
            std::vector<net::Nic*>{&nic}));

    const std::string cpu =
        std::to_string(machine.config().cpus_per_socket() - 1);
    es_mem = lib.create_eventset();
    std::vector<std::string> pmns;
    for (std::uint32_t ch = 0; ch < 8; ++ch) {
      const std::string c = std::to_string(ch);
      const std::string base =
          "perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c;
      pmns.push_back(base + "_READ_BYTES");
      pmns.push_back(base + "_WRITE_BYTES");
      es_mem->add_event("pcp:::" + base + "_READ_BYTES.value:cpu" + cpu);
      es_mem->add_event("pcp:::" + base + "_WRITE_BYTES.value:cpu" + cpu);
    }
    es_gpu = lib.create_eventset();
    es_gpu->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
    es_net = lib.create_eventset();
    es_net->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");
    sampler.add_eventset(*es_mem);
    sampler.add_eventset(*es_gpu);
    sampler.add_eventset(*es_net);

    pcp::PmLogger logger(client, pmns,
                         machine.config().cpus_per_socket() - 1);

    // Same shape as the Fig. 11 bench but n=1024: an 8x less data volume
    // keeps the 4-test suite fast while preserving the phase signatures.
    fft::Fft3dConfig cfg;
    cfg.n = 1024;
    cfg.grid = {8, 8};
    cfg.use_gpu = true;
    cfg.ticks_per_phase = 5;
    fft::DistributedFft3d app(machine, cfg, &gpu, &comm);

    sampler.start_all();
    sampler.sample();
    logger.poll();
    app.run_forward([&] {
      sampler.sample();
      logger.poll();
    });
    sampler.stop_all();

    phases = app.phases();
    archive = logger.archive();
    live = timeline_from_sampler(sampler);
    seg = analyze(live);
  }
};

Fig11Run& run() {
  static Fig11Run* r = new Fig11Run();
  return *r;
}

std::vector<TruthSpan> truth_spans() {
  std::vector<TruthSpan> truth;
  for (const fft::PhaseStats& ph : run().phases) {
    truth.push_back({fft_phase_class(ph.name), ph.t0_sec, ph.t1_sec});
  }
  return truth;
}

TEST(PipelineFig11, BoundariesWithinOneSampleIntervalOfTruth) {
  const Fig11Run& r = run();
  const std::vector<TruthSpan> truth = truth_spans();
  ASSERT_GE(truth.size(), 9u);
  const SegmentationScore sc = score_segmentation(
      r.live, r.seg, truth, r.live.median_interval_sec());
  EXPECT_EQ(sc.truth_boundaries, truth.size() - 1);
  EXPECT_EQ(sc.matched_boundaries, sc.truth_boundaries);
  EXPECT_LE(sc.max_boundary_err_sec, r.live.median_interval_sec());
}

TEST(PipelineFig11, LabelAccuracyAtLeastNinetyPercent) {
  const Fig11Run& r = run();
  const SegmentationScore sc = score_segmentation(
      r.live, r.seg, truth_spans(), r.live.median_interval_sec());
  EXPECT_GE(sc.label_accuracy, 0.9);
}

TEST(PipelineFig11, PerPhaseTrafficAttributionWithinFivePercent) {
  const Fig11Run& r = run();
  const std::vector<PhaseAttribution> report = attribute(r.live, r.seg);
  ASSERT_EQ(report.size(), r.seg.num_segments());

  // Map each ground-truth phase to the inferred segment with maximum
  // temporal overlap and compare integrated traffic against the
  // application's own byte counts.
  std::size_t compared = 0;
  for (const fft::PhaseStats& ph : r.phases) {
    const PhaseAttribution* best = nullptr;
    double best_overlap = 0;
    for (const PhaseAttribution& a : report) {
      const double overlap = std::min(a.t1_sec, ph.t1_sec) -
                             std::max(a.t0_sec, ph.t0_sec);
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best = &a;
      }
    }
    ASSERT_NE(best, nullptr) << ph.name;
    const double truth_rd = static_cast<double>(ph.loop.mem_read_bytes);
    const double truth_wr = static_cast<double>(ph.loop.mem_write_bytes);
    if (truth_rd > 0) {
      EXPECT_NEAR(best->read_bytes, truth_rd, 0.05 * truth_rd) << ph.name;
      ++compared;
    }
    if (truth_wr > 0) {
      EXPECT_NEAR(best->write_bytes, truth_wr, 0.05 * truth_wr) << ph.name;
    }
  }
  EXPECT_GE(compared, 4u);  // the four re-sorts at minimum
}

TEST(PipelineFig11, ArchiveRoundTripYieldsIdenticalSegmentationOffline) {
  const Fig11Run& r = run();

  // Serialize and reload: the offline path sees only the archive bytes.
  std::stringstream buffer;
  r.archive.save(buffer);
  const pcp::Archive loaded = pcp::Archive::load(buffer);
  const Timeline offline = timeline_from_archive(loaded);
  ASSERT_EQ(offline.num_rows(), r.live.num_rows());

  // The live timeline restricted to the 16 archived memory columns must
  // segment exactly like the offline one: same boundaries, same labels.
  std::vector<std::size_t> mem_cols(16);
  for (std::size_t i = 0; i < mem_cols.size(); ++i) mem_cols[i] = i;
  const Timeline live_mem = r.live.select_columns(mem_cols);

  const Segmentation seg_off = analyze(offline);
  const Segmentation seg_live = analyze(live_mem);
  EXPECT_EQ(seg_off.boundaries, seg_live.boundaries);
  EXPECT_EQ(seg_off.labels, seg_live.labels);
  EXPECT_GE(seg_off.num_segments(), 9u);
}

}  // namespace
}  // namespace papisim::analysis
