// Unit tests for the change-point detector: step detection, hysteresis over
// ramps, minimum-segment suppression, jitter immunity, and role aggregation
// (per-channel striping must not mask aggregate boundaries).
#include <gtest/gtest.h>

#include "analysis/changepoint.hpp"

namespace papisim::analysis {
namespace {

Timeline make_timeline(const std::vector<std::string>& columns,
                       const std::vector<std::vector<double>>& rows,
                       double dt = 0.1) {
  Timeline tl;
  tl.columns = columns;
  tl.gauge.assign(columns.size(), false);
  for (const std::string& c : columns) tl.roles.push_back(infer_role(c));
  double t = 0;
  for (const std::vector<double>& r : rows) {
    RateRow row;
    row.t0_sec = t;
    t += dt;
    row.t1_sec = t;
    row.values = r;
    tl.rates.push_back(std::move(row));
  }
  return tl;
}

std::vector<std::vector<double>> repeat(std::vector<double> row, std::size_t n) {
  return std::vector<std::vector<double>>(n, std::move(row));
}

TEST(Changepoint, TooFewRowsYieldNothing) {
  Timeline tl = make_timeline({"x"}, {});
  EXPECT_TRUE(merged_change_scores(tl).empty());
  EXPECT_TRUE(detect_boundaries(tl).empty());
  tl = make_timeline({"x"}, {{1.0}});
  EXPECT_TRUE(merged_change_scores(tl).empty());
  EXPECT_TRUE(detect_boundaries(tl).empty());
}

TEST(Changepoint, DetectsASingleStep) {
  std::vector<std::vector<double>> rows = repeat({1.0}, 8);
  const auto high = repeat({5.0}, 8);
  rows.insert(rows.end(), high.begin(), high.end());
  const Timeline tl = make_timeline({"x"}, rows);
  EXPECT_EQ(detect_boundaries(tl), (std::vector<std::size_t>{8}));
}

TEST(Changepoint, ConstantAndJitteredSeriesStayQuiet) {
  EXPECT_TRUE(detect_boundaries(make_timeline({"x"}, repeat({3.0}, 12))).empty());

  // Alternating +-2% jitter around a plateau: the MAD *is* the jitter, so
  // every normalized delta lands near 1/1.4826, far under enter_z.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 16; ++i) rows.push_back({100.0 + (i % 2 == 0 ? 2.0 : -2.0)});
  EXPECT_TRUE(detect_boundaries(make_timeline({"x"}, rows)).empty());
}

TEST(Changepoint, HysteresisCollapsesARampIntoOneBoundary) {
  // 0 ... 0, 25, 50, 75, 100 ... 100: the transition spreads over several
  // rows (a GPU power climb); the trigger fires once and cannot re-arm
  // until the score drops below exit_z after the plateau.
  std::vector<std::vector<double>> rows = repeat({0.0}, 8);
  for (const double v : {25.0, 50.0, 75.0}) rows.push_back({v});
  const auto plateau = repeat({100.0}, 8);
  rows.insert(rows.end(), plateau.begin(), plateau.end());
  const Timeline tl = make_timeline({"x"}, rows);
  EXPECT_EQ(detect_boundaries(tl), (std::vector<std::size_t>{8}));
}

TEST(Changepoint, MinSegmentRowsSuppressesSlivers) {
  // A one-row blip near the start and a step one row before the end: both
  // would create segments shorter than min_segment_rows.
  std::vector<std::vector<double>> rows = repeat({1.0}, 10);
  rows[0] = {50.0};                 // step at edge 0 -> segment of 1 row
  rows.back() = {50.0};             // step at the last edge
  DetectorConfig cfg;
  cfg.min_segment_rows = 2;
  const Timeline tl = make_timeline({"x"}, rows);
  EXPECT_TRUE(detect_boundaries(tl, cfg).empty());
}

TEST(Changepoint, ChannelStripingDoesNotMaskAggregateBoundaries) {
  // Two memory-read channels in antiphase (a planewise re-sort hopping MBA
  // channels row to row): each raw column swings full range on every edge,
  // but the per-role total is flat, so the only boundary is the aggregate
  // drop to zero.  Regression test for the role-aggregation in
  // merged_change_scores.
  const std::vector<std::string> cols = {
      "perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES",
      "perfevent.hwcounters.nest_mba1_imc.PM_MBA1_READ_BYTES"};
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back(i % 2 == 0 ? std::vector<double>{100.0, 0.0}
                              : std::vector<double>{0.0, 100.0});
  }
  const auto quiet = repeat({0.0, 0.0}, 8);
  rows.insert(rows.end(), quiet.begin(), quiet.end());
  const Timeline tl = make_timeline(cols, rows);
  ASSERT_EQ(tl.roles[0], ColumnRole::MemRead);
  EXPECT_EQ(detect_boundaries(tl), (std::vector<std::size_t>{8}));
}

TEST(Changepoint, SelfmonOverheadColumnIsIgnored) {
  // A wildly stepping selfmon ".sum_ns" column must not create boundaries:
  // harness overhead tracks the sampler, not the application.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 12; ++i) rows.push_back({i % 3 == 0 ? 1e9 : 0.0});
  const Timeline tl =
      make_timeline({"selfmon:::sampler.sample_ns.sum_ns"}, rows);
  ASSERT_EQ(tl.roles[0], ColumnRole::SelfOverheadNs);
  EXPECT_TRUE(detect_boundaries(tl).empty());
}

TEST(Changepoint, MergedScoresTakeTheMaxAcrossSeries) {
  // One quiet series and one stepping series: the merged score at the step
  // edge reflects the stepping one.
  std::vector<std::vector<double>> rows = repeat({7.0, 1.0}, 6);
  for (auto& r : repeat({7.0, 9.0}, 6)) rows.push_back(std::move(r));
  const Timeline tl = make_timeline({"a", "b"}, rows);
  const std::vector<double> z = merged_change_scores(tl);
  ASSERT_EQ(z.size(), 11u);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[argmax]) argmax = i;
  }
  EXPECT_EQ(argmax, 5u);  // the edge between rows 5 and 6
  EXPECT_GE(z[5], DetectorConfig{}.enter_z);
}

}  // namespace
}  // namespace papisim::analysis
