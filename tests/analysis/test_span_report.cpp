// papisim-analyze --spans ingestion tests (DESIGN.md §3j): strict-schema
// parsing with typed errors, the self-time critical-path math, orphan
// accounting, reconciliation, and the p99 exemplar linkage.  These build
// dumps by hand (JSON text or SpanDump structs), so they run identically
// with tracing compiled in or out.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/span_report.hpp"
#include "core/error.hpp"

namespace papisim {
namespace {

using analysis::CriticalPath;
using analysis::SpanDump;

trace::Span span(std::uint64_t trace_id, std::uint64_t span_id,
                 std::uint64_t parent, std::uint64_t t0, std::uint64_t t1,
                 trace::Stage stage,
                 trace::SpanStatus status = trace::SpanStatus::Ok) {
  return trace::Span{trace_id, span_id, parent, t0, t1, 0, 0, stage, status};
}

TEST(SpanDumpParse, RoundTripsTheExportSchema) {
  const char* text = R"({
    "schema_version": 1, "kind": "papisim_span_dump", "reason": "crash",
    "dropped": 3, "exemplar_hist": "pcp.fetch_rtt_ns",
    "exemplars": [{"bucket": 10, "trace_id": 7, "ns": 900, "count": 2}],
    "spans": [
      {"trace_id": 7, "span_id": 7, "parent_id": 0, "stage": "rpc",
       "status": "ok", "t0_ns": 0, "t1_ns": 1000, "a": 0, "b": 0}
    ]
  })";
  const SpanDump dump = analysis::parse_span_dump(text);
  EXPECT_EQ(dump.reason, "crash");
  EXPECT_EQ(dump.dropped, 3u);
  ASSERT_EQ(dump.exemplars.size(), 1u);
  EXPECT_EQ(dump.exemplars[0].trace_id, 7u);
  ASSERT_EQ(dump.spans.size(), 1u);
  EXPECT_EQ(dump.spans[0].stage, trace::Stage::Rpc);
  EXPECT_EQ(dump.spans[0].dur_ns(), 1000u);
}

TEST(SpanDumpParse, RejectsMalformedInputWithTypedErrors) {
  const auto expect_invalid = [](const char* text) {
    try {
      (void)analysis::parse_span_dump(text);
      FAIL() << "expected Error for: " << text;
    } catch (const Error& e) {
      EXPECT_EQ(e.status(), Status::InvalidArgument) << e.what();
    }
  };
  expect_invalid("not json at all");
  expect_invalid(R"({"schema_version": 1})");  // missing kind
  expect_invalid(
      R"({"schema_version": 99, "kind": "papisim_span_dump",
          "reason": "x", "dropped": 0, "spans": []})");
  expect_invalid(
      R"({"schema_version": 1, "kind": "wrong_kind",
          "reason": "x", "dropped": 0, "spans": []})");
  expect_invalid(
      R"({"schema_version": 1, "kind": "papisim_span_dump",
          "reason": "x", "dropped": 0, "spans": [
            {"trace_id": 1, "span_id": 1, "parent_id": 0,
             "stage": "no_such_stage", "status": "ok",
             "t0_ns": 0, "t1_ns": 1, "a": 0, "b": 0}]})");
  EXPECT_THROW((void)analysis::load_span_dump("/no/such/file.json"), Error);
}

TEST(SpanCriticalPath, SelfTimeReconcilesExactlyOnACleanTree) {
  SpanDump dump;
  // rpc [0,1000] -> attempt [100,900] -> service [200,800]: self-times are
  // 200 (rpc), 200 (attempt), 600 (service); they sum back to the root.
  dump.spans.push_back(span(1, 1, 0, 0, 1000, trace::Stage::Rpc));
  dump.spans.push_back(span(1, 2, 1, 100, 900, trace::Stage::Attempt));
  dump.spans.push_back(span(1, 3, 2, 200, 800, trace::Stage::Service));
  const CriticalPath cp = analysis::critical_path(dump);
  EXPECT_EQ(cp.rpc_roots, 1u);
  EXPECT_EQ(cp.rpc_e2e_ns, 1000u);
  EXPECT_EQ(cp.rpc_stage_sum_ns, 1000u);
  EXPECT_DOUBLE_EQ(cp.rpc_reconcile_error(), 0.0);
  ASSERT_EQ(cp.rpc_stages.size(), 3u);
  // Rows sorted by self-time, biggest first: service owns the trace.
  EXPECT_EQ(cp.rpc_stages[0].stage, trace::Stage::Service);
  EXPECT_EQ(cp.rpc_stages[0].self_ns, 600u);
  EXPECT_EQ(cp.orphan_spans, 0u);
  EXPECT_EQ(cp.replay_roots, 0u);
}

TEST(SpanCriticalPath, SplitsRpcAndReplaySidesAndCountsOrphans) {
  SpanDump dump;
  dump.spans.push_back(span(1, 1, 0, 0, 400, trace::Stage::Rpc));
  dump.spans.push_back(span(2, 20, 0, 0, 1000, trace::Stage::Measure));
  dump.spans.push_back(span(2, 21, 20, 100, 600, trace::Stage::RepSimulate));
  // Trace 3 has no root span in the dump (its client thread's ring rolled
  // over): every member is an orphan, in neither table.
  dump.spans.push_back(span(3, 31, 99, 0, 50, trace::Stage::QueueWait));
  const CriticalPath cp = analysis::critical_path(dump);
  EXPECT_EQ(cp.rpc_roots, 1u);
  EXPECT_EQ(cp.rpc_e2e_ns, 400u);
  EXPECT_EQ(cp.replay_roots, 1u);
  EXPECT_EQ(cp.replay_e2e_ns, 1000u);
  EXPECT_EQ(cp.replay_stage_sum_ns, 1000u);  // 500 measure self + 500 sim
  EXPECT_EQ(cp.orphan_spans, 1u);
}

TEST(SpanCriticalPath, ReconciliationErrorMeasuresOverhang) {
  SpanDump dump;
  // A child overhanging its parent: rpc [0,1000], service [0,1100].  The
  // child's 1100 of direct duration exceeds the root's own 1000; root self
  // clamps at 0 and the stage sum (1100) overshoots e2e by 10%.
  dump.spans.push_back(span(1, 1, 0, 0, 1000, trace::Stage::Rpc));
  dump.spans.push_back(span(1, 2, 1, 0, 1100, trace::Stage::Service));
  const CriticalPath cp = analysis::critical_path(dump);
  EXPECT_EQ(cp.rpc_stage_sum_ns, 1100u);
  EXPECT_NEAR(cp.rpc_reconcile_error(), 0.10, 1e-9);
}

TEST(SpanCriticalPath, P99PrefersTheExemplarTableCell) {
  SpanDump dump;
  for (std::uint64_t i = 0; i < 10; ++i) {
    // Root durations 100..1000: the p99 rank lands on the 1000 ns root.
    dump.spans.push_back(
        span(i + 1, (i + 1) * 10, 0, 0, (i + 1) * 100, trace::Stage::Rpc));
  }
  CriticalPath no_ex = analysis::critical_path(dump);
  EXPECT_EQ(no_ex.p99_ns, 1000u);
  EXPECT_EQ(no_ex.p99_trace_id, 10u);  // the root at the p99 rank

  // An exemplar cell in the matching latency bucket names the trace to
  // blame instead (fresher than the rank heuristic).
  trace::Exemplar ex;
  ex.ns = 1000;
  ex.bucket = 10;  // bit_width(1000)
  ex.trace_id = 777;
  ex.count = 1;
  dump.exemplars.push_back(ex);
  const CriticalPath with_ex = analysis::critical_path(dump);
  EXPECT_EQ(with_ex.p99_ns, 1000u);
  EXPECT_EQ(with_ex.p99_trace_id, 777u);
}

TEST(SpanCriticalPath, TextReportNamesStagesAndReconciliation) {
  SpanDump dump;
  dump.reason = "unit";
  dump.spans.push_back(span(1, 1, 0, 0, 1000, trace::Stage::Rpc));
  dump.spans.push_back(span(1, 2, 1, 100, 900, trace::Stage::QueueWait));
  const CriticalPath cp = analysis::critical_path(dump);
  std::ostringstream os;
  analysis::write_critical_path_text(os, dump, cp);
  const std::string text = os.str();
  EXPECT_NE(text.find("queue_wait"), std::string::npos) << text;
  EXPECT_NE(text.find("reconciliation error"), std::string::npos) << text;
}

}  // namespace
}  // namespace papisim
