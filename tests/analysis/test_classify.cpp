// Unit tests for role inference, segment feature extraction, and the
// declarative rule tables.
#include <gtest/gtest.h>

#include "analysis/classify.hpp"
#include "analysis/pipeline.hpp"

namespace papisim::analysis {
namespace {

TEST(InferRole, RecognizesComponentAndArchiveNames) {
  // Fully qualified PAPI-style event names.
  EXPECT_EQ(infer_role("pcp:::perfevent.hwcounters.nest_mba3_imc.PM_MBA3_"
                       "READ_BYTES.value:cpu87"),
            ColumnRole::MemRead);
  EXPECT_EQ(infer_role("pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_"
                       "WRITE_BYTES.value:cpu87"),
            ColumnRole::MemWrite);
  EXPECT_EQ(infer_role("nvml:::Tesla_V100-SXM2-16GB:device_0:power"),
            ColumnRole::GpuPower);
  EXPECT_EQ(infer_role("infiniband:::mlx5_0_1_ext:port_recv_data"),
            ColumnRole::NetRecv);
  EXPECT_EQ(infer_role("infiniband:::mlx5_0_1_ext:port_xmit_data"),
            ColumnRole::NetXmit);
  EXPECT_EQ(infer_role("selfmon:::sampler.sample_ns.sum_ns"),
            ColumnRole::SelfOverheadNs);
  // The dotted PMNS names a pmlogger archive stores.
  EXPECT_EQ(infer_role("perfevent.hwcounters.nest_mba7_imc.PM_MBA7_READ_BYTES"),
            ColumnRole::MemRead);
  EXPECT_EQ(infer_role("cpu:::instructions"), ColumnRole::Other);
}

TEST(FftPhaseClass, CanonicalizesGroundTruthNames) {
  EXPECT_EQ(fft_phase_class("resort1_S1CF"), "resort_strided");
  EXPECT_EQ(fft_phase_class("resort3_S1PF"), "resort_strided");
  EXPECT_EQ(fft_phase_class("resort2_S2CF"), "resort_sequential");
  EXPECT_EQ(fft_phase_class("resort4_S2PF"), "resort_sequential");
  EXPECT_EQ(fft_phase_class("fft_z"), "fft");
  EXPECT_EQ(fft_phase_class("fft_x"), "fft");
  EXPECT_EQ(fft_phase_class("all2all_2"), "all2all");
  EXPECT_EQ(fft_phase_class("warmup"), "warmup");
}

/// A 4-column (read / write / power-gauge / net) timeline with four
/// piecewise-constant regimes of 4 rows each, dt = 0.1 s.
Timeline four_phase_timeline() {
  Timeline tl;
  tl.columns = {
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
      "nvml:::Tesla_V100-SXM2-16GB:device_0:power",
      "infiniband:::mlx5_0_1_ext:port_recv_data"};
  tl.gauge = {false, false, true, false};
  for (const std::string& c : tl.columns) tl.roles.push_back(infer_role(c));

  // rd_bps, wr_bps, power_mW, net_bps per regime.
  const double regimes[4][4] = {
      {2e9, 1e9, 52000, 0},    // strided re-sort: 2:1, GPU idle
      {0, 0, 200000, 0},       // GPU FFT: no host traffic, power spike
      {0, 0, 52000, 1.2e10},   // all2all: network burst
      {1e9, 1e9, 52000, 0},    // sequential re-sort: 1:1
  };
  double t = 0;
  for (const auto& regime : regimes) {
    for (int i = 0; i < 4; ++i) {
      RateRow r;
      r.t0_sec = t;
      t += 0.1;
      r.t1_sec = t;
      r.values.assign(regime, regime + 4);
      tl.rates.push_back(std::move(r));
    }
  }
  return tl;
}

TEST(Classify, FftRulesLabelTheFourRegimes) {
  const Timeline tl = four_phase_timeline();
  const std::vector<std::size_t> boundaries = {4, 8, 12};
  const std::vector<SegmentFeatures> feats = segment_features(tl, boundaries);
  ASSERT_EQ(feats.size(), 4u);

  EXPECT_NEAR(feats[0].rw_ratio, 2.0, 1e-9);
  EXPECT_NEAR(feats[0].mem_level, 1.0, 1e-9);   // busiest memory segment
  EXPECT_NEAR(feats[0].gpu_level, 0.0, 1e-9);   // at the idle floor
  EXPECT_NEAR(feats[1].gpu_level, 1.0, 1e-9);   // at the peak
  EXPECT_NEAR(feats[1].gpu_power_w, 200.0, 1e-9);
  EXPECT_NEAR(feats[2].net_level, 1.0, 1e-9);
  EXPECT_NEAR(feats[3].rw_ratio, 1.0, 1e-9);

  const std::vector<Rule>& rules = fft_rules();
  EXPECT_EQ(classify(feats[0], rules), "resort_strided");
  EXPECT_EQ(classify(feats[1], rules), "fft");
  EXPECT_EQ(classify(feats[2], rules), "all2all");
  EXPECT_EQ(classify(feats[3], rules), "resort_sequential");
}

TEST(Classify, EmptyRuleTableFallsBackToUnknown) {
  const Timeline tl = four_phase_timeline();
  const std::vector<SegmentFeatures> feats = segment_features(tl, {4, 8, 12});
  EXPECT_EQ(classify(feats[0], std::span<const Rule>{}), "unknown");
}

TEST(Classify, PipelineDetectsClassifiesAndCoalesces) {
  // End-to-end on the synthetic timeline: analyze() must find the three
  // boundaries itself and reproduce the labels.
  const Timeline tl = four_phase_timeline();
  const Segmentation seg = analyze(tl);
  EXPECT_EQ(seg.boundaries, (std::vector<std::size_t>{4, 8, 12}));
  EXPECT_EQ(seg.labels,
            (std::vector<std::string>{"resort_strided", "fft", "all2all",
                                      "resort_sequential"}));
  ASSERT_EQ(seg.boundary_times_sec.size(), 3u);
  EXPECT_NEAR(seg.boundary_times_sec[0], 0.4, 1e-9);
}

TEST(Classify, CoalescingMergesAdjacentSameLabelSegments) {
  // Two distinct GPU-power plateaus (H2D copy level, compute level) both
  // classify as "fft"; coalescing folds them into one segment.
  Timeline tl;
  tl.columns = {"nvml:::gpu:power",
                "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_"
                "BYTES.value:cpu87",
                "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_"
                "BYTES.value:cpu87"};
  tl.gauge = {true, false, false};
  for (const std::string& c : tl.columns) tl.roles.push_back(infer_role(c));
  const double power[3] = {52000, 150000, 231000};  // idle, copy, compute
  double t = 0;
  for (const double p : power) {
    for (int i = 0; i < 4; ++i) {
      RateRow r;
      r.t0_sec = t;
      t += 0.1;
      r.t1_sec = t;
      const double mem = p > 52000.0 ? 0.0 : 2e9;  // balanced re-sort streams
      r.values = {p, mem, mem};
      tl.rates.push_back(std::move(r));
    }
  }
  AnalysisConfig cfg;
  const Segmentation merged = analyze(tl, cfg);
  ASSERT_EQ(merged.num_segments(), 2u);
  EXPECT_EQ(merged.labels[0], "resort_sequential");
  EXPECT_EQ(merged.labels[1], "fft");
  EXPECT_EQ(merged.boundaries, (std::vector<std::size_t>{4}));

  cfg.coalesce_same_label = false;
  const Segmentation raw = analyze(tl, cfg);
  EXPECT_EQ(raw.num_segments(), 3u);
  EXPECT_EQ(raw.labels[1], "fft");
  EXPECT_EQ(raw.labels[2], "fft");
}

}  // namespace
}  // namespace papisim::analysis
