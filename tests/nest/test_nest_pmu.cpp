// Tests for the privilege-gated nest PMU and its perf-style event names.
#include <gtest/gtest.h>

#include "nest/nest_pmu.hpp"

namespace papisim::nest {
namespace {

using sim::Credentials;
using sim::Machine;
using sim::MachineConfig;
using sim::MemDir;

TEST(NestPmu, UnprivilegedOpenIsDenied) {
  Machine m(MachineConfig::summit());
  EXPECT_THROW(NestPmu(m, Credentials::user()), PermissionError);
}

TEST(NestPmu, PrivilegedOpenSucceedsEvenOnSummit) {
  // The PMCD daemon holds root credentials on Summit; direct users do not.
  Machine m(MachineConfig::summit());
  EXPECT_NO_THROW(NestPmu(m, Credentials::root()));
}

TEST(NestPmu, TellicoUserCanOpenDirectly) {
  Machine m(MachineConfig::tellico());
  EXPECT_NO_THROW(NestPmu(m, m.user_credentials()));
}

TEST(NestPmu, ReadsMatchMemControllerCounters) {
  Machine m(MachineConfig::tellico());
  m.set_noise_enabled(false);
  NestPmu pmu(m, Credentials::root());
  m.memctrl(0).add_line(0, MemDir::Read);   // channel 0
  m.memctrl(0).add_line(2, MemDir::Write);  // channel 1 (interleave 2 lines)
  EXPECT_EQ(pmu.read({0, 0, NestEventKind::ReadBytes}), 64u);
  EXPECT_EQ(pmu.read({0, 1, NestEventKind::WriteBytes}), 64u);
  EXPECT_EQ(pmu.read({0, 1, NestEventKind::ReadBytes}), 0u);
  EXPECT_EQ(pmu.read({1, 0, NestEventKind::ReadBytes}), 0u);  // other socket
}

TEST(NestPmu, EventNameRoundTrips) {
  const MachineConfig cfg = MachineConfig::tellico();
  for (std::uint32_t ch = 0; ch < cfg.mem_channels; ++ch) {
    for (const NestEventKind k : {NestEventKind::ReadBytes, NestEventKind::WriteBytes}) {
      const std::string name = NestPmu::perf_event_name(ch, k);
      const auto id = NestPmu::parse_perf_event(name, cfg);
      ASSERT_TRUE(id.has_value()) << name;
      EXPECT_EQ(id->channel, ch);
      EXPECT_EQ(id->kind, k);
      EXPECT_EQ(id->socket, 0u);
    }
  }
}

TEST(NestPmu, CpuQualifierSelectsSocket) {
  const MachineConfig cfg = MachineConfig::tellico();  // 16 cores * 4 smt = 64 cpus/socket
  auto id = NestPmu::parse_perf_event("power9_nest_mba3::PM_MBA3_READ_BYTES:cpu=0", cfg);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->socket, 0u);
  id = NestPmu::parse_perf_event("power9_nest_mba3::PM_MBA3_READ_BYTES:cpu=64", cfg);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->socket, 1u);
}

TEST(NestPmu, MalformedEventNamesRejected) {
  const MachineConfig cfg = MachineConfig::tellico();
  const char* bad[] = {
      "power9_nest_mba::PM_MBA0_READ_BYTES",       // missing pmu channel
      "power9_nest_mba0::PM_MBA1_READ_BYTES",      // channel mismatch
      "power9_nest_mba0::PM_MBA0_READ",            // wrong suffix
      "power9_nest_mba9::PM_MBA9_READ_BYTES",      // channel out of range
      "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=", // empty qualifier
      "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=9999",  // cpu out of range
      "power9_nest_mba0::PM_MBA0_READ_BYTES:x=1",  // unknown qualifier
      "nest_mba0::PM_MBA0_READ_BYTES",             // wrong pmu prefix
  };
  for (const char* name : bad) {
    EXPECT_FALSE(NestPmu::parse_perf_event(name, cfg).has_value()) << name;
  }
}

TEST(NestPmu, EnumerateListsAllChannelsDirectionsAndKinds) {
  const MachineConfig cfg = MachineConfig::summit();
  const auto names = NestPmu::enumerate(cfg);
  EXPECT_EQ(names.size(), 32u);  // 8 channels x {READ,WRITE} x {BYTES,REQS}
  EXPECT_EQ(names.front(), "power9_nest_mba0::PM_MBA0_READ_BYTES");
  EXPECT_EQ(names.back(), "power9_nest_mba7::PM_MBA7_WRITE_REQS");
  for (const std::string& n : names) {
    EXPECT_TRUE(NestPmu::parse_perf_event(n, cfg).has_value()) << n;
  }
}

TEST(NestPmu, CountersAreMonotonic) {
  Machine m(MachineConfig::tellico());
  m.set_noise_enabled(false);
  NestPmu pmu(m, Credentials::root());
  const NestEventId ev{0, 0, NestEventKind::ReadBytes};
  std::uint64_t prev = pmu.read(ev);
  for (int i = 0; i < 100; ++i) {
    m.memctrl(0).add_line(0, MemDir::Read);
    const std::uint64_t cur = pmu.read(ev);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace papisim::nest
