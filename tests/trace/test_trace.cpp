// Causal span recorder tests (DESIGN.md §3j): ring FIFO + reject-and-count
// overflow, ScopedTrace propagation, drain ordering, the exemplar table,
// the flight recorder's trigger discipline, and the span-dump JSON schema.
// Every recorder-side test skips itself when tracing is compiled out
// (-DPAPISIM_TRACE=OFF), mirroring the selfmon/spe disabled legs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/json_parse.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "trace/span.hpp"

namespace papisim {
namespace {

trace::Span make_span(std::uint64_t trace_id, std::uint64_t span_id,
                      std::uint64_t parent, std::uint64_t t0,
                      std::uint64_t t1) {
  return trace::Span{trace_id, span_id,  parent,
                     t0,       t1,       0,
                     0,        trace::Stage::Service, trace::SpanStatus::Ok};
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
    trace::reset_for_testing();
  }
  void TearDown() override {
    if (trace::kEnabled) trace::reset_for_testing();
  }
};

TEST_F(TraceTest, MintProducesDistinctValidRoots) {
  const trace::TraceContext a = trace::mint();
  const trace::TraceContext b = trace::mint();
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(a.trace_id, a.span_id);  // a root is its own span
  EXPECT_NE(a.trace_id, b.trace_id);
}

TEST_F(TraceTest, DrainReturnsSpansSortedByStartTime) {
  trace::record(make_span(1, 13, 1, 300, 400));
  trace::record(make_span(1, 12, 1, 100, 150));
  trace::record(make_span(1, 14, 1, 200, 250));
  const std::vector<trace::Span> spans = trace::drain();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_LE(spans[0].t0_ns, spans[1].t0_ns);
  EXPECT_LE(spans[1].t0_ns, spans[2].t0_ns);
  EXPECT_EQ(spans[0].span_id, 12u);
  // drain() consumes: a second drain sees nothing.
  EXPECT_TRUE(trace::drain().empty());
}

TEST_F(TraceTest, RingOverflowRejectsAndCountsNeverBlocks) {
  trace::set_ring_capacity_for_testing(8);
  // A fresh thread gets a fresh (8-slot) ring; the ring is retired into the
  // registry backlog when the thread exits, so drain() still sees the spans.
  std::thread t([] {
    for (std::uint64_t i = 0; i < 12; ++i) {
      trace::record(make_span(1, 100 + i, 1, i, i + 1));
    }
  });
  t.join();
  trace::set_ring_capacity_for_testing(0);  // restore default for later rings
  const std::vector<trace::Span> spans = trace::drain();
  ASSERT_EQ(spans.size(), 8u);
  // FIFO: the *first* 8 spans survive, the late ones are the rejects.
  EXPECT_EQ(spans.front().span_id, 100u);
  EXPECT_EQ(spans.back().span_id, 107u);
  EXPECT_EQ(trace::dropped(), 4u);
}

TEST_F(TraceTest, ScopedTraceAdoptsAndRestores) {
  EXPECT_FALSE(trace::current().valid());
  {
    const trace::ScopedTrace outer(trace::ScopedTrace::Mode::Fresh);
    EXPECT_EQ(trace::current().trace_id, outer.context().trace_id);
    {
      // AdoptOrMint joins the active trace rather than minting a new root.
      const trace::ScopedTrace inner;
      EXPECT_EQ(inner.context().trace_id, outer.context().trace_id);
      EXPECT_EQ(inner.context().span_id, outer.context().span_id);
    }
    {
      // Fresh always mints, and restores the outer context on destruction.
      const trace::ScopedTrace fresh(trace::ScopedTrace::Mode::Fresh);
      EXPECT_NE(fresh.context().trace_id, outer.context().trace_id);
    }
    EXPECT_EQ(trace::current().trace_id, outer.context().trace_id);
  }
  EXPECT_FALSE(trace::current().valid());
}

TEST_F(TraceTest, ScopedTraceIsPerThread) {
  const trace::ScopedTrace outer(trace::ScopedTrace::Mode::Fresh);
  trace::TraceContext seen;
  std::thread t([&] { seen = trace::current(); });
  t.join();
  EXPECT_FALSE(seen.valid());  // the child thread starts traceless
}

TEST_F(TraceTest, ExemplarTableKeepsOnePerLatencyBucket) {
  trace::note_rpc_exemplar(41, 900);    // bit_width(900) == 10
  trace::note_rpc_exemplar(42, 1000);   // same bucket: replaces, count += 1
  trace::note_rpc_exemplar(43, 70000);  // bit_width(70000) == 17
  const std::vector<trace::Exemplar> ex = trace::exemplars();
  ASSERT_EQ(ex.size(), 2u);
  EXPECT_EQ(ex[0].bucket, 10u);
  EXPECT_EQ(ex[0].trace_id, 42u);
  EXPECT_EQ(ex[0].count, 2u);
  EXPECT_EQ(ex[1].bucket, 17u);
  EXPECT_EQ(ex[1].trace_id, 43u);
}

TEST_F(TraceTest, FlightRecorderFirstTriggerPerReasonWins) {
  const std::string pattern = ::testing::TempDir() + "papisim_flight_%r.json";
  const std::string crash_path =
      ::testing::TempDir() + "papisim_flight_crash.json";
  std::remove(crash_path.c_str());

  // Flight snapshots only keep spans that finished before the trigger, so
  // stamp the span with the recorder's own clock (hand-picked constants can
  // land after the trigger when this test initialises the clock epoch).
  const std::uint64_t t1 = trace::now_ns();
  trace::record(make_span(7, 70, 7, t1 / 2, t1));
  const std::uint64_t dumps0 = trace::flight_dumps();
  trace::arm_flight_recorder(pattern, /*last_n=*/16);
  trace::flight_dump("crash");
  EXPECT_EQ(trace::flight_dumps(), dumps0 + 1);
  // The same reason again is a no-op until re-armed; a different reason
  // still fires.
  trace::flight_dump("crash");
  EXPECT_EQ(trace::flight_dumps(), dumps0 + 1);
  trace::flight_dump("overloaded");
  EXPECT_EQ(trace::flight_dumps(), dumps0 + 2);
  trace::disarm_flight_recorder();
  trace::flight_dump("deadline");
  EXPECT_EQ(trace::flight_dumps(), dumps0 + 2);

  // The dump is strict JSON with the reason expanded into the path, and the
  // snapshot *peeked* the ring: the span is still there for drain().
  const json::Value dump = json::parse(slurp(crash_path));
  EXPECT_EQ(dump.find("kind")->str, "papisim_span_dump");
  EXPECT_EQ(dump.find("reason")->str, "crash");
  ASSERT_EQ(dump.find("spans")->arr.size(), 1u);
  EXPECT_EQ(dump.find("spans")->arr[0].find("span_id")->u64_or(0), 70u);
  EXPECT_EQ(trace::drain().size(), 1u);
}

TEST_F(TraceTest, FlightSnapshotKeepsOnlyTheLastN) {
  const std::string path = ::testing::TempDir() + "papisim_flight_lastn.json";
  // End times must precede the trigger (see the cutoff note above); spin the
  // recorder clock past the offsets used below before stamping.
  std::uint64_t base = trace::now_ns();
  while (base < 1000) base = trace::now_ns();
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace::record(make_span(3, 30 + i, 3, i * 10, base - 9 + i));
  }
  trace::arm_flight_recorder(path, /*last_n=*/4);
  trace::flight_dump("deadline");
  trace::disarm_flight_recorder();
  const json::Value dump = json::parse(slurp(path));
  const json::Value* spans = dump.find("spans");
  ASSERT_EQ(spans->arr.size(), 4u);
  // The most recent 4 by end time, re-sorted by start time.
  EXPECT_EQ(spans->arr[0].find("span_id")->u64_or(0), 36u);
  EXPECT_EQ(spans->arr[3].find("span_id")->u64_or(0), 39u);
}

TEST_F(TraceTest, FlightSnapshotExcludesSpansEndingAfterTheTrigger) {
  // Under load, other threads keep recording while the snapshot peeks the
  // rings; spans that finish after the trigger must not evict the incident
  // span from the last-N window.  A span stamped in the far future stands in
  // for that post-trigger traffic.
  const std::string path = ::testing::TempDir() + "papisim_flight_cutoff.json";
  const std::uint64_t now = trace::now_ns();
  trace::record(make_span(8, 80, 8, now / 2, now));
  trace::record(make_span(8, 81, 8, now, now + 3'600'000'000'000ull));
  trace::arm_flight_recorder(path, /*last_n=*/16);
  trace::flight_dump("crash");
  trace::disarm_flight_recorder();
  const json::Value dump = json::parse(slurp(path));
  const json::Value* spans = dump.find("spans");
  ASSERT_EQ(spans->arr.size(), 1u);
  EXPECT_EQ(spans->arr[0].find("span_id")->u64_or(0), 80u);
  EXPECT_EQ(trace::drain().size(), 2u);  // peeked, not consumed
}

TEST_F(TraceTest, SpanDumpJsonIsStrictAndComplete) {
  trace::record(make_span(5, 51, 5, 10, 30));
  trace::note_rpc_exemplar(5, 20);
  std::ostringstream out;
  trace::dump_all(out, "unit-test");
  const json::Value dump = json::parse(out.str());
  EXPECT_EQ(dump.find("schema_version")->u64_or(0),
            trace::kSpanDumpSchemaVersion);
  EXPECT_EQ(dump.find("reason")->str, "unit-test");
  EXPECT_EQ(dump.find("dropped")->u64_or(99), 0u);
  ASSERT_EQ(dump.find("exemplars")->arr.size(), 1u);
  const json::Value& s = dump.find("spans")->arr.at(0);
  EXPECT_EQ(s.find("stage")->str, "service");
  EXPECT_EQ(s.find("status")->str, "ok");
  EXPECT_EQ(s.find("t0_ns")->u64_or(0), 10u);
  EXPECT_EQ(s.find("t1_ns")->u64_or(0), 30u);
}

TEST(TraceDisabled, EverythingIsANoOpWhenCompiledOut) {
  if (trace::kEnabled) GTEST_SKIP() << "tracing compiled in";
  EXPECT_EQ(trace::now_ns(), 0u);
  EXPECT_FALSE(trace::mint().valid());
  const trace::ScopedTrace scope(trace::ScopedTrace::Mode::Fresh);
  EXPECT_FALSE(scope.context().valid());
  trace::record(trace::Span{});
  trace::note_rpc_exemplar(1, 1);
  trace::flight_dump("crash");
  EXPECT_TRUE(trace::drain().empty());
  EXPECT_TRUE(trace::exemplars().empty());
  EXPECT_EQ(trace::dropped(), 0u);
  EXPECT_EQ(trace::flight_dumps(), 0u);
}

}  // namespace
}  // namespace papisim
