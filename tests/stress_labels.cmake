# Included by ctest AFTER gtest discovery has registered the stress suite
# (via TEST_INCLUDE_FILES).  gtest_discover_tests cannot forward list-valued
# properties — the semicolon in LABELS "tier1;stress" is eaten when the
# discovery helper joins TEST_PROPERTIES into a single -D argument — so the
# second label is applied here, over the test names discovery recorded in
# test_concurrency_stress_TESTS.
if(test_concurrency_stress_TESTS)
  set_tests_properties(${test_concurrency_stress_TESTS}
    PROPERTIES LABELS "tier1;stress")
endif()
# Same trick for the multi-tenant PMCD scale suite: the sanitizer leg runs
# its saturation/crash tests via `ctest -L pcp-stress`.
if(test_pcp_scale_TESTS)
  set_tests_properties(${test_pcp_scale_TESTS}
    PROPERTIES LABELS "tier1;pcp-stress")
endif()
# And for the sampled-replay acceptance suite: the nightly error-bound leg
# runs exactly these via `ctest -L sampled-replay`.
if(test_sampled_replay_TESTS)
  set_tests_properties(${test_sampled_replay_TESTS}
    PROPERTIES LABELS "tier1;sampled-replay")
endif()
