// Tests for the grid and job-communication model.
#include <gtest/gtest.h>

#include "mpi/grid.hpp"
#include "mpi/job_comm.hpp"

namespace papisim::mpi {
namespace {

TEST(Grid, RankCoordinateRoundTrip) {
  const Grid g{4, 8};
  EXPECT_EQ(g.size(), 32u);
  for (std::uint32_t r = 0; r < g.rows; ++r) {
    for (std::uint32_t c = 0; c < g.cols; ++c) {
      const std::uint32_t rank = g.rank_of(r, c);
      const Grid::Coords coords = g.coords_of(rank);
      EXPECT_EQ(coords.row, r);
      EXPECT_EQ(coords.col, c);
    }
  }
}

TEST(Grid, OutOfRangeRejected) {
  const Grid g{2, 4};
  EXPECT_THROW(g.rank_of(2, 0), std::out_of_range);
  EXPECT_THROW(g.rank_of(0, 4), std::out_of_range);
  EXPECT_THROW(g.coords_of(8), std::out_of_range);
}

struct CommFixture : ::testing::Test {
  CommFixture() : machine(sim::MachineConfig::summit()), nic(net::NicConfig{}),
                  comm(machine, nic) {
    machine.set_noise_enabled(false);
  }
  sim::Machine machine;
  net::Nic nic;
  JobComm comm;
};

TEST_F(CommFixture, AlltoallWireVolumeIsPMinus1OverP) {
  comm.alltoall(8, 8000);
  EXPECT_EQ(nic.xmit_bytes(), 7000u);
  EXPECT_EQ(nic.recv_bytes(), 7000u);
}

TEST_F(CommFixture, AlltoallAdvancesTheClock) {
  const double t0 = machine.clock().now_ns();
  comm.alltoall(4, 1 << 20);
  EXPECT_GT(machine.clock().now_ns(), t0);
}

TEST_F(CommFixture, SingleParticipantAlltoallIsFree) {
  const double t0 = machine.clock().now_ns();
  comm.alltoall(1, 1 << 20);
  EXPECT_EQ(nic.xmit_bytes(), 0u);
  EXPECT_DOUBLE_EQ(machine.clock().now_ns(), t0);
}

TEST_F(CommFixture, SendrecvCountsBothDirections) {
  comm.sendrecv(500);
  EXPECT_EQ(nic.xmit_bytes(), 500u);
  EXPECT_EQ(nic.recv_bytes(), 500u);
}

TEST_F(CommFixture, BarrierCostsLogPLatency) {
  const double t0 = machine.clock().now_ns();
  comm.barrier(2);
  const double one_stage = machine.clock().now_ns() - t0;
  EXPECT_GT(one_stage, 0.0);
  const double t1 = machine.clock().now_ns();
  comm.barrier(32);
  EXPECT_NEAR(machine.clock().now_ns() - t1, 5.0 * one_stage, 1e-9);
  comm.barrier(1);  // no-op
}

TEST_F(CommFixture, LargerMessagesTakeLonger) {
  const double t0 = machine.clock().now_ns();
  comm.alltoall(4, 1 << 18);
  const double small = machine.clock().now_ns() - t0;
  const double t1 = machine.clock().now_ns();
  comm.alltoall(4, 1 << 24);
  EXPECT_GT(machine.clock().now_ns() - t1, small);
}

TEST(Nic, TransferTimeHasLatencyAndBandwidthTerms) {
  net::NicConfig cfg;
  cfg.latency_ns = 1000;
  cfg.link_bw_bytes_per_sec = 1e9;
  net::Nic nic(cfg);
  EXPECT_DOUBLE_EQ(nic.transfer_time_ns(0), 1000.0);
  EXPECT_DOUBLE_EQ(nic.transfer_time_ns(1000000), 1000.0 + 1e6);
}

TEST(Nic, PortValidation) {
  net::Nic nic(net::NicConfig{});
  EXPECT_THROW(nic.recv_bytes(0), std::out_of_range);
  EXPECT_THROW(nic.on_recv(10, 2), std::out_of_range);
}

}  // namespace
}  // namespace papisim::mpi
