// Tests for the high-level Profiler convenience API.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/profiler.hpp"
#include "testing/fake_component.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

struct ProfilerFixture : ::testing::Test {
  ProfilerFixture() : clock(), profiler_lib() {
    mem = &static_cast<FakeComponent&>(profiler_lib.register_component(
        std::make_unique<FakeComponent>(
            "mem", std::vector<std::string>{"reads", "writes"})));
    gpu = &static_cast<FakeComponent&>(profiler_lib.register_component(
        std::make_unique<FakeComponent>("gpu", std::vector<std::string>{"power"})));
    gpu->set_gauge(true);
    net = &static_cast<FakeComponent&>(profiler_lib.register_component(
        std::make_unique<FakeComponent>("net", std::vector<std::string>{"recv"})));
  }
  sim::SimClock clock;
  Library profiler_lib;
  FakeComponent* mem;
  FakeComponent* gpu;
  FakeComponent* net;
};

TEST_F(ProfilerFixture, GroupsMixedEventsIntoPerComponentSets) {
  Profiler prof(profiler_lib, clock);
  // Interleaved components in one flat list -- the whole point of the API.
  prof.add_events({"mem:::reads", "gpu:::power", "mem:::writes", "net:::recv"});
  prof.start();
  // Grouped by component of first appearance: mem, mem, gpu, net.
  ASSERT_EQ(prof.columns().size(), 4u);
  EXPECT_EQ(prof.columns()[0], "mem:::reads");
  EXPECT_EQ(prof.columns()[1], "mem:::writes");
  EXPECT_EQ(prof.columns()[2], "gpu:::power");
  EXPECT_EQ(prof.columns()[3], "net:::recv");
  // Exactly one event set per involved component.
  EXPECT_EQ(mem->starts, 1);
  EXPECT_EQ(gpu->starts, 1);
  EXPECT_EQ(net->starts, 1);
  prof.stop();
}

TEST_F(ProfilerFixture, TimelineAndCsvRoundTrip) {
  Profiler prof(profiler_lib, clock);
  prof.add_events({"mem:::reads", "gpu:::power"});
  prof.start();
  prof.sample();
  clock.advance(5e8);
  mem->bump(0, 4242);
  gpu->bump(0, 90000);
  prof.sample();
  prof.stop();

  ASSERT_EQ(prof.rows().size(), 2u);
  EXPECT_EQ(prof.rows()[1].values[0], 4242);
  EXPECT_EQ(prof.rows()[1].values[1], 90000);  // gauge: raw reading

  std::ostringstream csv;
  prof.write_csv(csv);
  const std::string text = csv.str();
  EXPECT_NE(text.find("t_sec,mem:::reads,gpu:::power"), std::string::npos);
  EXPECT_NE(text.find("0.5,4242,90000"), std::string::npos);
}

TEST_F(ProfilerFixture, DumpRatesCsvEmitsPerIntervalRates) {
  Profiler prof(profiler_lib, clock);
  prof.add_events({"mem:::reads", "gpu:::power"});
  prof.start();
  prof.sample();
  clock.advance(5e8);  // 0.5 s
  mem->bump(0, 4242);
  gpu->bump(0, 90000);
  prof.sample();
  clock.advance(2.5e8);  // 0.25 s
  mem->bump(0, 1000);
  prof.sample();
  prof.stop();

  std::ostringstream csv;
  prof.dump_rates_csv(csv);
  const std::string text = csv.str();
  // N samples -> N-1 intervals; counters as delta/dt, gauges raw.
  EXPECT_NE(text.find("t0_sec,t1_sec,mem:::reads,gpu:::power"), std::string::npos);
  EXPECT_NE(text.find("0,0.5,8484,90000"), std::string::npos);
  EXPECT_NE(text.find("0.5,0.75,4000,90000"), std::string::npos);
  // Exactly header + two interval rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST_F(ProfilerFixture, ReadNowDoesNotRecordARow) {
  Profiler prof(profiler_lib, clock);
  prof.add_events({"mem:::reads"});
  prof.start();
  mem->bump(0, 7);
  EXPECT_EQ(prof.read_now()[0], 7);
  EXPECT_TRUE(prof.rows().empty());
  prof.stop();
}

TEST_F(ProfilerFixture, LifecycleErrors) {
  Profiler prof(profiler_lib, clock);
  EXPECT_THROW(prof.start(), Error);  // no events
  prof.add_events({"mem:::reads"});
  EXPECT_THROW(prof.stop(), Error);  // not running
  EXPECT_THROW(prof.read_now(), Error);
  prof.start();
  EXPECT_THROW(prof.add_events({"net:::recv"}), Error);  // too late
  EXPECT_THROW(prof.start(), Error);                     // already running
  prof.stop();
}

TEST_F(ProfilerFixture, UnknownEventFailsEagerly) {
  Profiler prof(profiler_lib, clock);
  EXPECT_THROW(prof.add_events({"mem:::reads", "mem:::bogus"}), Error);
}

TEST_F(ProfilerFixture, StopAndRestartContinuesTheTimeline) {
  Profiler prof(profiler_lib, clock);
  prof.add_events({"mem:::reads"});
  prof.start();
  prof.sample();
  prof.stop();
  prof.start();  // restart re-snapshots the counters
  mem->bump(0, 3);
  prof.sample();
  prof.stop();
  ASSERT_EQ(prof.rows().size(), 2u);
  EXPECT_EQ(prof.rows()[1].values[0], 3);
}

}  // namespace
}  // namespace papisim
