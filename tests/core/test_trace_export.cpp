// Tests for the Chrome trace-event exporter.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/json_util.hpp"
#include "core/trace_export.hpp"
#include "testing/fake_component.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

// ---------------------------------------------------------------------------
// A deliberately small JSON parser, enough to round-trip the exporter's
// output: the trace must be *parseable*, not merely contain substrings.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;                       // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.value();
    p.skip_ws();
    if (p.pos_ != text.size()) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.members.emplace_back(key.str, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::String;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '/': c = '/'; break;
          default: throw std::runtime_error("unsupported escape");
        }
      }
      v.str += c;
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  JsonValue null() {
    if (text_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad null");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct TraceFixture : ::testing::Test {
  TraceFixture() {
    mem = &static_cast<FakeComponent&>(lib.register_component(
        std::make_unique<FakeComponent>("mem", std::vector<std::string>{"bytes"})));
  }
  sim::SimClock clock;
  Library lib;
  FakeComponent* mem;
};

TEST_F(TraceFixture, EmitsSpansSamplesAndMetadata) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  sampler.start_all();
  sampler.sample();
  clock.advance(1e6);  // 1 ms
  mem->bump(0, 500);
  sampler.sample();
  sampler.stop_all();

  const TraceSpan spans[] = {{"fft_z", 0.0, 0.001, "phases"},
                             {"all2all", 0.001, 0.002, "network"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans, "fft-rank-0");
  const std::string json = out.str();

  EXPECT_NE(json.find("\"name\":\"fft-rank-0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fft_z\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.0"), std::string::npos);  // 1 ms in us
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mem:::bytes\""), std::string::npos);
  // Distinct tracks get distinct tids with thread_name metadata.
  EXPECT_NE(json.find("\"name\":\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"network\""), std::string::npos);
  // Valid JSON shape at the coarse level.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST_F(TraceFixture, EscapesSpecialCharacters) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  const TraceSpan spans[] = {{"with \"quotes\"\nand\\slash", 0.0, 1.0, "t"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans);
  const std::string json = out.str();
  EXPECT_NE(json.find("with \\\"quotes\\\"\\nand\\\\slash"), std::string::npos);
}

TEST_F(TraceFixture, EscapesControlCharacters) {
  // The named control escapes plus the \u00XX fallback for the rest.
  EXPECT_EQ(json_escape("a\bb\fc\rd\te"), "a\\bb\\fc\\rd\\te");
  EXPECT_EQ(json_escape(std::string("\x01\x1f\x7f", 3)), "\\u0001\\u001f\x7f");
  EXPECT_EQ(json_escape("plain"), "plain");

  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  const TraceSpan spans[] = {{std::string("bell\x07tab\there"), 0.0, 1.0, "t"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans);
  const std::string json = out.str();
  EXPECT_NE(json.find("bell\\u0007tab\\there"), std::string::npos);
  EXPECT_EQ(json.find('\x07'), std::string::npos);  // no raw control bytes
}

TEST_F(TraceFixture, ParsedTraceHasExpectedEventsAndMonotoneTimestamps) {
  // One counter column (mem) + one gauge column (gpu), 3 samples, 2 spans.
  FakeComponent& gpu = static_cast<FakeComponent&>(lib.register_component(
      std::make_unique<FakeComponent>("gpu", std::vector<std::string>{"power"})));
  gpu.set_gauge(true);

  auto es_mem = lib.create_eventset();
  es_mem->add_event("mem:::bytes");
  auto es_gpu = lib.create_eventset();
  es_gpu->add_event("gpu:::power");

  Sampler sampler(clock);
  sampler.add_eventset(*es_mem);
  sampler.add_eventset(*es_gpu);
  sampler.start_all();
  gpu.bump(0, 90000);
  sampler.sample();             // t = 0
  clock.advance(1e6);           // +1 ms
  mem->bump(0, 500);
  sampler.sample();             // t = 0.001
  clock.advance(1e6);
  mem->bump(0, 250);
  gpu.bump(0, 10000);           // gauge now reads 100000
  sampler.sample();             // t = 0.002
  sampler.stop_all();

  const TraceSpan spans[] = {{"fft_z", 0.0, 0.001, "phases"},
                             {"all2all", 0.001, 0.002, "network"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans, "parse-me");
  const JsonValue root = JsonParser::parse(out.str());

  ASSERT_EQ(root.type, JsonValue::Type::Object);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->type, JsonValue::Type::Array);

  std::size_t n_spans = 0, n_meta = 0;
  std::map<std::string, std::vector<std::pair<double, double>>> counters;
  for (const JsonValue& ev : events->items) {
    ASSERT_EQ(ev.type, JsonValue::Type::Object);
    const JsonValue* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      ++n_spans;
    } else if (ph->str == "M") {
      ++n_meta;
    } else if (ph->str == "C") {
      const JsonValue* value = ev.find("args")->find("value");
      ASSERT_NE(value, nullptr);
      counters[ev.find("name")->str].emplace_back(ev.find("ts")->number,
                                                  value->number);
    }
  }
  EXPECT_EQ(n_spans, 2u);
  // process_name + one thread_name per distinct span track.
  EXPECT_EQ(n_meta, 3u);

  // 3 samples -> 2 rate intervals per column; no histogram columns here.
  ASSERT_EQ(counters.size(), 2u);
  ASSERT_EQ(counters["mem:::bytes"].size(), 2u);
  ASSERT_EQ(counters["gpu:::power"].size(), 2u);

  // Counter column: per-interval rate (delta / dt).
  EXPECT_DOUBLE_EQ(counters["mem:::bytes"][0].second, 500 / 1e-3);
  EXPECT_DOUBLE_EQ(counters["mem:::bytes"][1].second, 250 / 1e-3);
  // Gauge column: raw end-of-interval reading, no rate conversion.
  EXPECT_DOUBLE_EQ(counters["gpu:::power"][0].second, 90000.0);
  EXPECT_DOUBLE_EQ(counters["gpu:::power"][1].second, 100000.0);

  // Timestamps strictly increase along every counter track.
  for (const auto& [name, points] : counters) {
    for (std::size_t i = 1; i < points.size(); ++i) {
      EXPECT_LT(points[i - 1].first, points[i].first) << name;
    }
    EXPECT_GE(points.front().first, 0.0) << name;
  }
}

TEST_F(TraceFixture, HistogramColumnsRenderPercentileTracks) {
  FakeComponent& lat = static_cast<FakeComponent&>(lib.register_component(
      std::make_unique<FakeComponent>("h", std::vector<std::string>{"lat"})));
  lat.set_histogram(true);

  auto es = lib.create_eventset();
  es->add_event("h:::lat");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  ASSERT_EQ(sampler.hist_columns().size(), 1u);

  sampler.start_all();
  sampler.sample();        // row 0: empty distribution
  clock.advance(1e6);
  for (const long long v : {10, 20, 30, 40, 1000}) lat.record(0, v);
  sampler.sample();        // row 1: 5 samples
  sampler.stop_all();

  std::ostringstream out;
  write_chrome_trace(out, sampler, {});
  const JsonValue root = JsonParser::parse(out.str());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::map<std::string, std::vector<double>> tracks;
  for (const JsonValue& ev : events->items) {
    if (ev.find("ph")->str != "C") continue;
    tracks[ev.find("name")->str].push_back(
        ev.find("args")->find("value")->number);
  }
  // Base column renders as a rate track (samples/sec over 1 interval) plus
  // one percentile track per quantile with one point per row.
  ASSERT_EQ(tracks.size(), 4u);
  ASSERT_EQ(tracks["h:::lat"].size(), 1u);
  EXPECT_DOUBLE_EQ(tracks["h:::lat"][0], 5 / 1e-3);
  for (const char* q : {"h:::lat.p50", "h:::lat.p95", "h:::lat.p99"}) {
    ASSERT_EQ(tracks[q].size(), 2u) << q;
    EXPECT_DOUBLE_EQ(tracks[q][0], 0.0) << q;  // row 0: nothing recorded yet
  }
  // Nearest-rank percentiles of {10,20,30,40,1000} at row 1.
  EXPECT_DOUBLE_EQ(tracks["h:::lat.p50"][1], 30.0);
  EXPECT_DOUBLE_EQ(tracks["h:::lat.p95"][1], 1000.0);
  EXPECT_DOUBLE_EQ(tracks["h:::lat.p99"][1], 1000.0);
}

TEST_F(TraceFixture, EmptySamplerStillProducesValidSkeleton) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  std::ostringstream out;
  write_chrome_trace(out, sampler, {});
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace papisim
