// Tests for the Chrome trace-event exporter.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/trace_export.hpp"
#include "testing/fake_component.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

struct TraceFixture : ::testing::Test {
  TraceFixture() {
    mem = &static_cast<FakeComponent&>(lib.register_component(
        std::make_unique<FakeComponent>("mem", std::vector<std::string>{"bytes"})));
  }
  sim::SimClock clock;
  Library lib;
  FakeComponent* mem;
};

TEST_F(TraceFixture, EmitsSpansSamplesAndMetadata) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  sampler.start_all();
  sampler.sample();
  clock.advance(1e6);  // 1 ms
  mem->bump(0, 500);
  sampler.sample();
  sampler.stop_all();

  const TraceSpan spans[] = {{"fft_z", 0.0, 0.001, "phases"},
                             {"all2all", 0.001, 0.002, "network"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans, "fft-rank-0");
  const std::string json = out.str();

  EXPECT_NE(json.find("\"name\":\"fft-rank-0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fft_z\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1000.0"), std::string::npos);  // 1 ms in us
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"mem:::bytes\""), std::string::npos);
  // Distinct tracks get distinct tids with thread_name metadata.
  EXPECT_NE(json.find("\"name\":\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"network\""), std::string::npos);
  // Valid JSON shape at the coarse level.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
}

TEST_F(TraceFixture, EscapesSpecialCharacters) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  const TraceSpan spans[] = {{"with \"quotes\"\nand\\slash", 0.0, 1.0, "t"}};
  std::ostringstream out;
  write_chrome_trace(out, sampler, spans);
  const std::string json = out.str();
  EXPECT_NE(json.find("with \\\"quotes\\\"\\nand\\\\slash"), std::string::npos);
}

TEST_F(TraceFixture, EmptySamplerStillProducesValidSkeleton) {
  auto es = lib.create_eventset();
  es->add_event("mem:::bytes");
  Sampler sampler(clock);
  sampler.add_eventset(*es);
  std::ostringstream out;
  write_chrome_trace(out, sampler, {});
  EXPECT_NE(out.str().find("traceEvents"), std::string::npos);
}

}  // namespace
}  // namespace papisim
