// Unit tests for Sampler: counter columns become delta/dt rates, gauge
// columns pass through the instantaneous value, and the degenerate cases
// (too few rows, zero dt) stay well defined.
#include <gtest/gtest.h>

#include <memory>

#include "core/sampler.hpp"
#include "sim/clock.hpp"
#include "testing/fake_component.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

class SamplerTest : public ::testing::Test {
 protected:
  FakeComponent& add_fake(const std::string& name, bool gauge) {
    auto comp = std::make_unique<FakeComponent>(
        name, std::vector<std::string>{"x", "y"});
    comp->set_gauge(gauge);
    return static_cast<FakeComponent&>(lib_.register_component(std::move(comp)));
  }

  Library lib_;
  sim::SimClock clock_;
};

TEST_F(SamplerTest, CounterColumnsReportDeltaOverDt) {
  FakeComponent& fake = add_fake("cnt", /*gauge=*/false);
  auto es = lib_.create_eventset();
  es->add_event("cnt:::x");
  es->add_event("cnt:::y");

  Sampler sampler(clock_);
  sampler.add_eventset(*es);
  ASSERT_EQ(sampler.columns().size(), 2u);
  EXPECT_FALSE(sampler.column_is_gauge()[0]);
  EXPECT_FALSE(sampler.column_is_gauge()[1]);

  sampler.start_all();
  sampler.sample();
  fake.bump(0, 1000);
  fake.bump(1, 250);
  clock_.advance(2e9);  // 2 virtual seconds
  sampler.sample();
  sampler.stop_all();

  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].t1_sec - rates[0].t0_sec, 2.0);
  EXPECT_DOUBLE_EQ(rates[0].values[0], 500.0);  // 1000 / 2 s
  EXPECT_DOUBLE_EQ(rates[0].values[1], 125.0);  // 250 / 2 s
}

TEST_F(SamplerTest, GaugeColumnsReportRawValueNotRate) {
  FakeComponent& fake = add_fake("pwr", /*gauge=*/true);
  auto es = lib_.create_eventset();
  es->add_event("pwr:::x");

  Sampler sampler(clock_);
  sampler.add_eventset(*es);
  ASSERT_EQ(sampler.columns().size(), 1u);
  EXPECT_TRUE(sampler.column_is_gauge()[0]);

  sampler.start_all();
  fake.bump(0, 300);  // e.g. 300 W instantaneous
  sampler.sample();
  clock_.advance(5e9);
  fake.bump(0, 20);  // now reads 320
  sampler.sample();

  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  // The interval reports the endpoint's instantaneous value, undivided.
  EXPECT_DOUBLE_EQ(rates[0].values[0], 320.0);
}

TEST_F(SamplerTest, MixedComponentsShareOneTimeAxis) {
  // The paper's multi-component timeline: a counter set and a gauge set
  // sampled together, one row per sample, columns in registration order.
  FakeComponent& cnt = add_fake("cnt", /*gauge=*/false);
  FakeComponent& pwr = add_fake("pwr", /*gauge=*/true);
  auto es_cnt = lib_.create_eventset();
  es_cnt->add_event("cnt:::x");
  auto es_pwr = lib_.create_eventset();
  es_pwr->add_event("pwr:::y");

  Sampler sampler(clock_);
  sampler.add_eventset(*es_cnt);
  sampler.add_eventset(*es_pwr);
  ASSERT_EQ(sampler.columns().size(), 2u);
  EXPECT_FALSE(sampler.column_is_gauge()[0]);
  EXPECT_TRUE(sampler.column_is_gauge()[1]);

  sampler.start_all();
  sampler.sample();
  cnt.bump(0, 64);
  pwr.bump(1, 150);
  clock_.advance(1e9);
  sampler.sample();

  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].values[0], 64.0);   // counter: 64 / 1 s
  EXPECT_DOUBLE_EQ(rates[0].values[1], 150.0);  // gauge: raw
}

TEST_F(SamplerTest, FewerThanTwoRowsYieldNoRates) {
  add_fake("cnt", /*gauge=*/false);
  auto es = lib_.create_eventset();
  es->add_event("cnt:::x");

  Sampler sampler(clock_);
  sampler.add_eventset(*es);
  EXPECT_TRUE(sampler.rates().empty());  // zero rows

  sampler.start_all();
  sampler.sample();
  EXPECT_TRUE(sampler.rates().empty());  // one row
}

TEST_F(SamplerTest, ZeroDtIntervalReportsZeroRateButRawGauge) {
  FakeComponent& cnt = add_fake("cnt", /*gauge=*/false);
  FakeComponent& pwr = add_fake("pwr", /*gauge=*/true);
  auto es_cnt = lib_.create_eventset();
  es_cnt->add_event("cnt:::x");
  auto es_pwr = lib_.create_eventset();
  es_pwr->add_event("pwr:::x");

  Sampler sampler(clock_);
  sampler.add_eventset(*es_cnt);
  sampler.add_eventset(*es_pwr);
  sampler.start_all();
  sampler.sample();
  cnt.bump(0, 999);
  pwr.bump(0, 42);
  sampler.sample();  // no clock advance: dt == 0

  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].values[0], 0.0);   // counter rate undefined -> 0
  EXPECT_DOUBLE_EQ(rates[0].values[1], 42.0);  // gauge unaffected by dt
}

TEST_F(SamplerTest, HistogramColumnWithZeroSamplesStaysWellDefined) {
  FakeComponent& lat = add_fake("lat", /*gauge=*/false);
  lat.set_histogram(true);
  auto es = lib_.create_eventset();
  es->add_event("lat:::x");

  Sampler sampler(clock_);
  sampler.add_eventset(*es);
  ASSERT_EQ(sampler.hist_columns().size(), 1u);

  sampler.start_all();
  sampler.sample();
  clock_.advance(1e9);
  sampler.sample();  // still zero recorded samples

  const std::vector<TimelineRow>& rows = sampler.rows();
  ASSERT_EQ(rows.size(), 2u);
  for (const TimelineRow& row : rows) {
    ASSERT_EQ(row.hist.size(), 1u);
    for (const double p : row.hist[0]) EXPECT_DOUBLE_EQ(p, 0.0);
    EXPECT_EQ(row.values[0], 0);  // sample count
  }
  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0].values[0], 0.0);  // 0 samples / 1 s
}

TEST_F(SamplerTest, HistogramPercentilesOverZeroLengthInterval) {
  FakeComponent& lat = add_fake("lat", /*gauge=*/false);
  lat.set_histogram(true);
  auto es = lib_.create_eventset();
  es->add_event("lat:::x");

  Sampler sampler(clock_);
  sampler.add_eventset(*es);
  sampler.start_all();
  sampler.sample();
  lat.record(0, 70);
  lat.record(0, 30);
  lat.record(0, 10);
  sampler.sample();  // no clock advance: dt == 0

  const std::vector<RateRow> rates = sampler.rates();
  ASSERT_EQ(rates.size(), 1u);
  // Rate over a zero-length interval is undefined -> reported as 0, not inf.
  EXPECT_DOUBLE_EQ(rates[0].values[0], 0.0);
  // The row itself still carries a well-defined percentile triple.
  const TimelineRow& row = sampler.rows().back();
  ASSERT_EQ(row.hist.size(), 1u);
  EXPECT_DOUBLE_EQ(row.hist[0][0], 30.0);  // p50 of {10, 30, 70}
  EXPECT_DOUBLE_EQ(row.hist[0][2], 70.0);  // p99
}

TEST_F(SamplerTest, RejectsEmptyEventSet) {
  Sampler sampler(clock_);
  auto es = lib_.create_eventset();
  EXPECT_THROW(sampler.add_eventset(*es), Error);
}

}  // namespace
}  // namespace papisim
