// Tests for the region-based instrumentation layer.
#include <gtest/gtest.h>

#include <memory>

#include "core/regions.hpp"
#include "testing/fake_component.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

struct RegionFixture : ::testing::Test {
  RegionFixture() {
    mem = &static_cast<FakeComponent&>(lib.register_component(
        std::make_unique<FakeComponent>("mem", std::vector<std::string>{"bytes"})));
  }
  const RegionStats* find(const std::vector<RegionStats>& report,
                          const std::string& path) {
    for (const RegionStats& r : report) {
      if (r.path == path) return &r;
    }
    return nullptr;
  }
  sim::SimClock clock;
  Library lib;
  FakeComponent* mem;
};

TEST_F(RegionFixture, AttributesCountsToTheRegionStack) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  {
    auto app = prof.region("app");
    mem->bump(0, 100);
    clock.advance(1e9);
    {
      auto inner = prof.region("fft");
      mem->bump(0, 40);
      clock.advance(2e9);
    }
    mem->bump(0, 10);
  }
  prof.stop();

  const auto report = prof.report();
  ASSERT_EQ(report.size(), 2u);
  const RegionStats* app = find(report, "app");
  const RegionStats* fft = find(report, "app/fft");
  ASSERT_NE(app, nullptr);
  ASSERT_NE(fft, nullptr);
  EXPECT_DOUBLE_EQ(app->inclusive[0], 150.0);
  EXPECT_DOUBLE_EQ(app->exclusive[0], 110.0);  // 150 minus the child's 40
  EXPECT_DOUBLE_EQ(fft->inclusive[0], 40.0);
  EXPECT_DOUBLE_EQ(fft->exclusive[0], 40.0);
  EXPECT_DOUBLE_EQ(app->inclusive_sec, 3.0);
  EXPECT_DOUBLE_EQ(app->exclusive_sec, 1.0);
  EXPECT_DOUBLE_EQ(fft->inclusive_sec, 2.0);
}

TEST_F(RegionFixture, RecordsIntervalTimelineWithDepths) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  {
    auto app = prof.region("app");
    clock.advance(1e9);
    {
      auto inner = prof.region("fft");
      clock.advance(2e9);
    }
    clock.advance(1e9);
  }
  prof.stop();

  // Intervals appear in close order (innermost first), stamped with entry /
  // exit times and stack depth -- the oracle the analysis scorer consumes.
  const std::vector<RegionInterval>& tl = prof.timeline();
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_EQ(tl[0].path, "app/fft");
  EXPECT_EQ(tl[0].depth, 2u);
  EXPECT_DOUBLE_EQ(tl[0].t0_sec, 1.0);
  EXPECT_DOUBLE_EQ(tl[0].t1_sec, 3.0);
  EXPECT_EQ(tl[1].path, "app");
  EXPECT_EQ(tl[1].depth, 1u);
  EXPECT_DOUBLE_EQ(tl[1].t0_sec, 0.0);
  EXPECT_DOUBLE_EQ(tl[1].t1_sec, 4.0);
}

TEST_F(RegionFixture, RepeatedVisitsAccumulate) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  for (int i = 0; i < 3; ++i) {
    auto r = prof.region("step");
    mem->bump(0, 5);
  }
  prof.stop();
  const auto report = prof.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].visits, 3u);
  EXPECT_DOUBLE_EQ(report[0].inclusive[0], 15.0);
}

TEST_F(RegionFixture, SiblingsSplitTheParentExclusive) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  {
    auto outer = prof.region("outer");
    {
      auto a = prof.region("a");
      mem->bump(0, 30);
    }
    {
      auto b = prof.region("b");
      mem->bump(0, 70);
    }
  }
  prof.stop();
  const auto report = prof.report();
  const RegionStats* outer = find(report, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->inclusive[0], 100.0);
  EXPECT_DOUBLE_EQ(outer->exclusive[0], 0.0);
  EXPECT_DOUBLE_EQ(find(report, "outer/a")->inclusive[0], 30.0);
  EXPECT_DOUBLE_EQ(find(report, "outer/b")->inclusive[0], 70.0);
}

TEST_F(RegionFixture, SamePathFromDifferentVisitsMerges) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  for (int i = 0; i < 2; ++i) {
    auto outer = prof.region("loop");
    auto inner = prof.region("body");
    mem->bump(0, 1);
  }
  prof.stop();
  const auto report = prof.report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(find(report, "loop/body")->visits, 2u);
}

TEST_F(RegionFixture, ErrorsOnMisuse) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  EXPECT_THROW((void)prof.region("early"), Error);  // not running
  prof.start();
  EXPECT_THROW((void)prof.region(""), Error);        // empty name
  EXPECT_THROW((void)prof.region("a/b"), Error);     // separator in name
  {
    auto open = prof.region("open");
    EXPECT_THROW(prof.stop(), Error);  // stop inside a region
  }
  prof.stop();
}

TEST_F(RegionFixture, MoveOnlyScopeClosesOnce) {
  RegionProfiler prof(lib, clock);
  prof.add_events({"mem:::bytes"});
  prof.start();
  {
    auto a = prof.region("moved");
    auto b = std::move(a);
    mem->bump(0, 9);
  }  // only b's destructor pops
  prof.stop();
  const auto report = prof.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].visits, 1u);
  EXPECT_DOUBLE_EQ(report[0].inclusive[0], 9.0);
}

}  // namespace
}  // namespace papisim
