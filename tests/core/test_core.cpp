// Tests for the measurement-library core: event-name parsing, component
// registry, event-set lifecycle, and the timeline sampler.
#include <gtest/gtest.h>

#include <memory>

#include "core/event_name.hpp"
#include "core/library.hpp"
#include "core/sampler.hpp"
#include "testing/fake_component.hpp"
#include "sim/clock.hpp"

namespace papisim {
namespace {

using test_support::FakeComponent;

TEST(EventName, SplitsComponentPrefix) {
  const ParsedEventName p = parse_event_name("pcp:::perfevent.foo.value:cpu87");
  EXPECT_EQ(p.component, "pcp");
  EXPECT_EQ(p.native, "perfevent.foo.value:cpu87");
}

TEST(EventName, BareNativeNameHasEmptyComponent) {
  const ParsedEventName p = parse_event_name("power9_nest_mba0::PM_MBA0_READ_BYTES");
  EXPECT_TRUE(p.component.empty());
  EXPECT_EQ(p.native, "power9_nest_mba0::PM_MBA0_READ_BYTES");
}

TEST(EventName, EmptyAndDegenerateInputs) {
  EXPECT_EQ(parse_event_name("").native, "");
  const ParsedEventName p = parse_event_name(":::x");
  EXPECT_EQ(p.component, "");
  EXPECT_EQ(p.native, "x");
}

TEST(Library, RegisterAndFindComponents) {
  Library lib;
  lib.register_component(std::make_unique<FakeComponent>("alpha", std::vector<std::string>{"e"}));
  lib.register_component(std::make_unique<FakeComponent>("beta", std::vector<std::string>{"e"}));
  EXPECT_NE(lib.find_component("alpha"), nullptr);
  EXPECT_EQ(lib.find_component("gamma"), nullptr);
  EXPECT_EQ(lib.components().size(), 2u);
  EXPECT_THROW(lib.component("gamma"), Error);
}

TEST(Library, DuplicateComponentNameRejected) {
  Library lib;
  lib.register_component(std::make_unique<FakeComponent>("alpha", std::vector<std::string>{"e"}));
  EXPECT_THROW(
      lib.register_component(std::make_unique<FakeComponent>("alpha", std::vector<std::string>{"e"})),
      Error);
  EXPECT_THROW(lib.register_component(nullptr), Error);
}

TEST(Library, RoutesQualifiedAndBareEventNames) {
  Library lib;
  lib.register_component(std::make_unique<FakeComponent>("alpha", std::vector<std::string>{"ev_a"}));
  lib.register_component(std::make_unique<FakeComponent>("beta", std::vector<std::string>{"ev_b"}));
  std::string native;
  EXPECT_EQ(lib.route_event("beta:::ev_b", native).name(), "beta");
  EXPECT_EQ(native, "ev_b");
  EXPECT_EQ(lib.route_event("ev_a", native).name(), "alpha");  // bare probe
  EXPECT_THROW(lib.route_event("alpha:::ev_b", native), Error);
  EXPECT_THROW(lib.route_event("nope:::x", native), Error);
  EXPECT_THROW(lib.route_event("unknown_bare", native), Error);
}

TEST(Library, DisabledComponentRejectsEventsWithReason) {
  Library lib;
  lib.register_component(std::make_unique<FakeComponent>(
      "locked", std::vector<std::string>{"ev"}, "insufficient privileges"));
  std::string native;
  try {
    lib.route_event("locked:::ev", native);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::ComponentDisabled);
    EXPECT_NE(std::string(e.what()).find("insufficient privileges"), std::string::npos);
  }
}

struct EventSetFixture : ::testing::Test {
  EventSetFixture() {
    fake = &static_cast<FakeComponent&>(lib.register_component(
        std::make_unique<FakeComponent>("fake", std::vector<std::string>{"a", "b"})));
    other = &static_cast<FakeComponent&>(lib.register_component(
        std::make_unique<FakeComponent>("other", std::vector<std::string>{"c"})));
  }
  Library lib;
  FakeComponent* fake;
  FakeComponent* other;
};

TEST_F(EventSetFixture, CountsDeltasBetweenStartAndRead) {
  auto es = lib.create_eventset();
  es->add_event("fake:::a");
  es->add_event("fake:::b");
  fake->bump(0, 100);  // before start: not counted
  es->start();
  fake->bump(0, 5);
  fake->bump(1, 7);
  const auto v = es->read();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[1], 7);
  es->stop();
}

TEST_F(EventSetFixture, MixingComponentsInOneSetIsRejected) {
  auto es = lib.create_eventset();
  es->add_event("fake:::a");
  try {
    es->add_event("other:::c");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.status(), Status::InvalidArgument);
  }
}

TEST_F(EventSetFixture, LifecycleErrorsAreDiagnosed) {
  auto es = lib.create_eventset();
  EXPECT_THROW(es->start(), Error);  // no events
  es->add_event("fake:::a");
  EXPECT_THROW(es->read(), Error);  // not running
  es->start();
  EXPECT_THROW(es->start(), Error);  // already running
  EXPECT_THROW(es->add_event("fake:::b"), Error);  // running
  es->stop();
  EXPECT_THROW(es->stop(), Error);  // not running
}

TEST_F(EventSetFixture, ResetRezeroesWhileRunning) {
  auto es = lib.create_eventset();
  es->add_event("fake:::a");
  es->start();
  fake->bump(0, 50);
  EXPECT_EQ(es->read()[0], 50);
  es->reset();
  EXPECT_EQ(es->read()[0], 0);
  fake->bump(0, 3);
  EXPECT_EQ(es->read()[0], 3);
  es->stop();
}

TEST_F(EventSetFixture, ReadIntoSpanValidatesSize) {
  auto es = lib.create_eventset();
  es->add_event("fake:::a");
  es->start();
  long long two[2];
  EXPECT_THROW(es->read(std::span<long long>(two, 2)), Error);
  long long one[1];
  es->read(std::span<long long>(one, 1));
  es->stop();
}

TEST_F(EventSetFixture, SamplerCollectsMultiComponentTimeline) {
  sim::SimClock clock;
  auto es1 = lib.create_eventset();
  es1->add_event("fake:::a");
  auto es2 = lib.create_eventset();
  es2->add_event("other:::c");
  Sampler sampler(clock);
  sampler.add_eventset(*es1);
  sampler.add_eventset(*es2);
  ASSERT_EQ(sampler.columns().size(), 2u);
  sampler.start_all();
  sampler.sample();
  clock.advance(1e9);
  fake->bump(0, 1000);
  other->bump(0, 500);
  sampler.sample();
  clock.advance(1e9);
  fake->bump(0, 2000);
  sampler.sample();
  sampler.stop_all();

  ASSERT_EQ(sampler.rows().size(), 3u);
  EXPECT_EQ(sampler.rows()[1].values[0], 1000);
  EXPECT_EQ(sampler.rows()[1].values[1], 500);
  const auto rates = sampler.rates();
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_NEAR(rates[0].values[0], 1000.0, 1e-9);  // bytes/sec over 1 s
  EXPECT_NEAR(rates[1].values[0], 2000.0, 1e-9);
  EXPECT_NEAR(rates[1].values[1], 0.0, 1e-9);
}

TEST_F(EventSetFixture, SamplerRejectsEmptyEventSet) {
  sim::SimClock clock;
  Sampler sampler(clock);
  auto es = lib.create_eventset();
  EXPECT_THROW(sampler.add_eventset(*es), Error);
}

TEST(StatusStrings, AllValuesNamed) {
  EXPECT_STREQ(to_string(Status::Ok), "Ok");
  EXPECT_STREQ(to_string(Status::NoComponent), "NoComponent");
  EXPECT_STREQ(to_string(Status::NoEvent), "NoEvent");
  EXPECT_STREQ(to_string(Status::ComponentDisabled), "ComponentDisabled");
  EXPECT_STREQ(to_string(Status::AlreadyRunning), "AlreadyRunning");
  EXPECT_STREQ(to_string(Status::NotRunning), "NotRunning");
  EXPECT_STREQ(to_string(Status::InvalidArgument), "InvalidArgument");
  EXPECT_STREQ(to_string(Status::PermissionDenied), "PermissionDenied");
  EXPECT_STREQ(to_string(Status::Internal), "Internal");
}

}  // namespace
}  // namespace papisim
