// Tests for the 3D-FFT: numeric correctness against the naive 3D DFT and
// the simulated distributed pipeline's phase structure.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "fft/cufft_sim.hpp"
#include "fft/fft3d.hpp"
#include "sim/rng.hpp"

namespace papisim::fft {
namespace {

std::vector<cplx> random_volume(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<cplx> v(n * n * n);
  for (cplx& c : v) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  return v;
}

double max_err(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

class Fft3dSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft3dSize, MatchesNaive3dDft) {
  const std::size_t n = GetParam();
  const std::vector<cplx> x = random_volume(n, 99 + n);
  std::vector<cplx> v = x;
  fft3d_local(v, n);
  const std::vector<cplx> expected = dft3_naive(x, n);
  EXPECT_LT(max_err(v, expected), 1e-8 * static_cast<double>(n * n * n));
}

TEST_P(Fft3dSize, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const std::vector<cplx> x = random_volume(n, 5 + n);
  std::vector<cplx> v = x;
  fft3d_local(v, n, false);
  fft3d_local(v, n, true);
  EXPECT_LT(max_err(v, x), 1e-9 * static_cast<double>(n * n * n));
}

// n=6 exercises the Bluestein path; n=8 the radix-2 path.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft3dSize, ::testing::Values(2, 4, 6, 8));

TEST(Fft3dLocal, RejectsWrongBufferSize) {
  std::vector<cplx> v(10);
  EXPECT_THROW(fft3d_local(v, 3), std::invalid_argument);
  EXPECT_THROW(dft3_naive(v, 3), std::invalid_argument);
}

// --------------------------------------------------------------- pipeline

struct PipelineFixture : ::testing::Test {
  void SetUp() override {
    machine = std::make_unique<sim::Machine>(sim::MachineConfig::summit());
    machine->set_noise_enabled(false);
    gpu = std::make_unique<gpu::GpuDevice>(gpu::GpuConfig{}, *machine, 0, 0);
    nic = std::make_unique<net::Nic>(net::NicConfig{});
    comm = std::make_unique<mpi::JobComm>(*machine, *nic);
  }
  std::unique_ptr<sim::Machine> machine;
  std::unique_ptr<gpu::GpuDevice> gpu;
  std::unique_ptr<net::Nic> nic;
  std::unique_ptr<mpi::JobComm> comm;
};

TEST_F(PipelineFixture, RunsAllNinePhasesInOrder) {
  Fft3dConfig cfg;
  cfg.n = 128;
  cfg.grid = {2, 4};
  DistributedFft3d app(*machine, cfg, nullptr, comm.get());
  app.run_forward();
  ASSERT_EQ(app.phases().size(), 9u);
  const char* expected[] = {"resort1_S1CF", "fft_z",        "all2all_1",
                            "resort2_S2CF", "fft_y",        "all2all_2",
                            "resort3_S1PF", "fft_x",        "resort4_S2PF"};
  double prev_t = 0.0;
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(app.phases()[i].name, expected[i]);
    EXPECT_GE(app.phases()[i].t0_sec, prev_t);
    EXPECT_GE(app.phases()[i].t1_sec, app.phases()[i].t0_sec);
    prev_t = app.phases()[i].t1_sec;
  }
}

TEST_F(PipelineFixture, StridedResortsReadTwicePerWrite) {
  Fft3dConfig cfg;
  cfg.n = 256;  // per-rank block 33.5 MB >> the contended 5 MB L3 share
  cfg.grid = {2, 4};
  DistributedFft3d app(*machine, cfg, nullptr, comm.get());
  app.run_forward();
  const double bytes = static_cast<double>(app.dims().bytes());
  const PhaseStats& strided = app.phases()[0];   // resort1_S1CF
  const PhaseStats& seq = app.phases()[3];       // resort2_S2CF
  EXPECT_NEAR(static_cast<double>(strided.loop.mem_read_bytes), 2.0 * bytes,
              0.15 * bytes);
  EXPECT_NEAR(static_cast<double>(seq.loop.mem_read_bytes), bytes, 0.15 * bytes);
  // The sequential re-sort streams its stores past the cache.
  EXPECT_GT(seq.loop.bypassed_store_lines, 0u);
  EXPECT_EQ(strided.loop.bypassed_store_lines, 0u);
}

TEST_F(PipelineFixture, AlltoallAccountsNicTraffic) {
  Fft3dConfig cfg;
  cfg.n = 128;
  cfg.grid = {2, 4};
  DistributedFft3d app(*machine, cfg, nullptr, comm.get());
  app.run_forward();
  // Two All2All phases: one among 4 column partners, one among 2 rows.
  const double bytes = static_cast<double>(app.dims().bytes());
  const double expected = bytes / 4 * 3 + bytes / 2;  // sum of both exchanges
  // Chunked exchanges lose a few bytes to integer division per chunk.
  EXPECT_NEAR(static_cast<double>(nic->recv_bytes()), expected, 1e-3 * expected);
  EXPECT_NEAR(static_cast<double>(nic->xmit_bytes()), expected, 1e-3 * expected);
}

TEST_F(PipelineFixture, GpuOffloadMovesDataOverPcieAndRaisesPower) {
  Fft3dConfig cfg;
  cfg.n = 256;
  cfg.grid = {2, 4};
  cfg.use_gpu = true;
  DistributedFft3d app(*machine, cfg, gpu.get(), comm.get());
  const std::uint64_t reads0 = machine->memctrl(0).total_bytes(sim::MemDir::Read);
  std::uint64_t peak_power = 0;
  app.run_forward([&] { peak_power = std::max(peak_power, gpu->power_mw()); });
  // Three H2D copies of the rank block read host memory.
  EXPECT_GE(machine->memctrl(0).total_bytes(sim::MemDir::Read) - reads0,
            3 * app.dims().bytes());
  // The 1D-FFT kernels push power above idle (full Fig.-11 scale spikes need
  // the bench's larger N; the power model itself is covered in
  // tests/components).
  EXPECT_GT(peak_power, 55000u);
  EXPECT_GT(gpu->busy_seconds(), 0.0);
}

TEST_F(PipelineFixture, GpuConfigRequiresDevice) {
  Fft3dConfig cfg;
  cfg.use_gpu = true;
  EXPECT_THROW(DistributedFft3d(*machine, cfg, nullptr, comm.get()),
               std::invalid_argument);
}

TEST_F(PipelineFixture, TickFiresSeveralTimesPerPhase) {
  Fft3dConfig cfg;
  cfg.n = 64;
  cfg.grid = {2, 4};
  cfg.ticks_per_phase = 4;
  DistributedFft3d app(*machine, cfg, nullptr, comm.get());
  int ticks = 0;
  app.run_forward([&] { ++ticks; });
  EXPECT_GE(ticks, 9 * 3);
}

TEST_F(PipelineFixture, CufftPlanComputesRealTransforms) {
  CufftPlan plan(*gpu, 16, 3);
  EXPECT_GT(plan.flop_count(), 0.0);
  std::vector<cplx> data(48, cplx{});
  data[0] = 1.0;   // delta in row 0
  data[16] = 2.0;  // scaled delta in row 1
  plan.execute(data);
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(data[i].real(), 1.0, 1e-12);
    EXPECT_NEAR(data[16 + i].real(), 2.0, 1e-12);
  }
  EXPECT_GT(gpu->busy_seconds(), 0.0);
}

}  // namespace
}  // namespace papisim::fft
