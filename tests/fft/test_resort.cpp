// Tests for the 3D-FFT re-sorting routines: numeric permutation properties
// and the simulated traffic signatures of paper Figs. 6-9.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "fft/resort.hpp"
#include "kernels/expected.hpp"

namespace papisim::fft {
namespace {

using std::complex;

std::vector<complex<double>> iota_signal(std::uint64_t n) {
  std::vector<complex<double>> v(n);
  for (std::uint64_t i = 0; i < n; ++i) v[i] = {static_cast<double>(i), -0.5};
  return v;
}

bool is_permutation_of_iota(const std::vector<complex<double>>& v) {
  std::vector<double> re(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) re[i] = v[i].real();
  std::sort(re.begin(), re.end());
  for (std::size_t i = 0; i < re.size(); ++i) {
    if (re[i] != static_cast<double>(i)) return false;
  }
  return true;
}

TEST(RankDims, DerivedFromGridDecomposition) {
  const mpi::Grid grid{2, 4};
  const RankDims d = RankDims::of(1024, grid);
  EXPECT_EQ(d.planes, 512u);  // N / r
  EXPECT_EQ(d.rows, 256u);    // N / c
  EXPECT_EQ(d.cols, 1024u);   // N
  EXPECT_EQ(d.elems(), 1024ull * 1024 * 128);
  EXPECT_EQ(d.bytes(), d.elems() * 16);
  EXPECT_THROW(RankDims::of(1000, mpi::Grid{3, 4}), std::invalid_argument);
}

TEST(S2Dims, FactorsTheColsPencil) {
  const mpi::Grid grid{2, 4};
  const S2Dims s = S2Dims::of(RankDims::of(64, grid), grid);
  EXPECT_EQ(s.planes, 32u);
  EXPECT_EQ(s.x, 4u);
  EXPECT_EQ(s.y, 16u);
  EXPECT_EQ(s.rows, 16u);
  EXPECT_EQ(s.elems(), RankDims::of(64, grid).elems());
}

TEST(ResortNumeric, Nest1IsTheIdentityCopy) {
  const RankDims d{3, 4, 5};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> tmp(d.elems());
  s1cf_nest1_numeric(in, tmp, d);
  EXPECT_EQ(in, tmp);
}

TEST(ResortNumeric, TwoNestsEqualCombined) {
  const RankDims d{4, 6, 8};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> tmp(d.elems()), out2(d.elems()), out1(d.elems());
  s1cf_nest1_numeric(in, tmp, d);
  s1cf_nest2_numeric(tmp, out2, d);
  s1cf_combined_numeric(in, out1, d);
  EXPECT_EQ(out1, out2);
}

TEST(ResortNumeric, S1cfIsABijection) {
  const RankDims d{4, 3, 6};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> out(d.elems());
  s1cf_combined_numeric(in, out, d);
  EXPECT_TRUE(is_permutation_of_iota(out));
  // Spot-check the index transform: in[plane][row][col] ->
  // out[col*planes*rows + plane*rows + row].
  const std::uint64_t plane = 2, row = 1, col = 5;
  EXPECT_EQ(out[col * d.planes * d.rows + plane * d.rows + row],
            in[plane * d.rows * d.cols + row * d.cols + col]);
}

TEST(ResortNumeric, S1pfIsABijectionWithPlaneFastest) {
  const RankDims d{3, 5, 4};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> out(d.elems());
  s1pf_combined_numeric(in, out, d);
  EXPECT_TRUE(is_permutation_of_iota(out));
  const std::uint64_t plane = 1, row = 4, col = 2;
  EXPECT_EQ(out[(col * d.rows + row) * d.planes + plane],
            in[plane * d.rows * d.cols + row * d.cols + col]);
}

TEST(ResortNumeric, S2cfIsABijection) {
  const S2Dims d{3, 4, 5, 6};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> out(d.elems());
  s2cf_numeric(in, out, d);
  EXPECT_TRUE(is_permutation_of_iota(out));
  // Innermost dimension (rows) is contiguous on both sides.
  EXPECT_EQ(out[1] - out[0], complex<double>(1.0, 0.0));
}

TEST(ResortNumeric, S2pfIsABijection) {
  const S2Dims d{2, 3, 4, 5};
  const auto in = iota_signal(d.elems());
  std::vector<complex<double>> out(d.elems());
  s2pf_numeric(in, out, d);
  EXPECT_TRUE(is_permutation_of_iota(out));
}

TEST(ResortNumeric, BufferSizesValidated) {
  const RankDims d{4, 4, 4};
  std::vector<complex<double>> small(10), ok(d.elems());
  EXPECT_THROW(s1cf_combined_numeric(small, ok, d), std::invalid_argument);
  EXPECT_THROW(s1cf_nest2_numeric(ok, small, d), std::invalid_argument);
}

// ------------------------------------------------------- traffic signatures

struct ReplayFixture : ::testing::Test {
  void SetUp() override {
    machine = std::make_unique<sim::Machine>(sim::MachineConfig::summit());
    machine->set_noise_enabled(false);
    machine->set_active_cores(0, 1);
  }
  std::uint64_t reads() const {
    return machine->memctrl(0).total_bytes(sim::MemDir::Read);
  }
  std::uint64_t writes() const {
    return machine->memctrl(0).total_bytes(sim::MemDir::Write);
  }
  std::unique_ptr<sim::Machine> machine;
  mpi::Grid grid{2, 4};
};

TEST_F(ReplayFixture, Nest1WithoutPrefetchOneReadOneWrite) {
  // Fig. 6a: sequential copy; stores bypass the cache.
  const RankDims d = RankDims::of(256, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1cf_nest1_replay(*machine, 0, 0, d, buf, /*prefetch=*/false);
  machine->flush_socket(0);
  EXPECT_EQ(reads(), d.bytes());
  EXPECT_EQ(writes(), d.bytes());
}

TEST_F(ReplayFixture, Nest1WithPrefetchTwoReadsOneWrite) {
  // Fig. 6b: dcbtst forces tmp to be read into the cache.
  const RankDims d = RankDims::of(256, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1cf_nest1_replay(*machine, 0, 0, d, buf, /*prefetch=*/true);
  machine->flush_socket(0);
  EXPECT_EQ(reads(), 2 * d.bytes());
  EXPECT_EQ(writes(), d.bytes());
}

TEST_F(ReplayFixture, Nest2SmallProblemTwoReadsOneWrite) {
  // Fig. 7a below the Eq. 7 bound (N ~ 724): tmp's lines are still cached
  // across the column passes, so ~1 read for tmp + 1 read-per-write for out.
  machine->set_active_cores(0, machine->cores_per_socket());
  const RankDims d = RankDims::of(256, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1cf_nest2_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.bytes());
  EXPECT_NEAR(static_cast<double>(reads()), 2.0 * bytes, 0.15 * bytes);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.05 * bytes);
}

TEST_F(ReplayFixture, Nest2LargeProblemUpToFiveReadsPerWrite) {
  // Fig. 7a beyond the Eq. 7 bound: a full line per element of tmp plus the
  // read-per-write for out -> up to 5 reads per write.
  machine->set_active_cores(0, machine->cores_per_socket());
  const std::uint64_t n = 1024;  // > 724
  ASSERT_GT(n, kernels::s1cf_ln2_cache_bound(5ull << 20, grid.size()));
  const RankDims d = RankDims::of(n, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1cf_nest2_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.bytes());
  const double r = static_cast<double>(reads()) / bytes;
  EXPECT_GT(r, 4.0);
  EXPECT_LE(r, 5.1);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.05 * bytes);
}

TEST_F(ReplayFixture, CombinedNestTwoReadsOneWrite) {
  // Fig. 8: in read once; strided stores to out write-allocate.
  machine->set_active_cores(0, machine->cores_per_socket());
  const RankDims d = RankDims::of(256, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1cf_combined_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.bytes());
  EXPECT_NEAR(static_cast<double>(reads()), 2.0 * bytes, 0.1 * bytes);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.1 * bytes);
}

TEST_F(ReplayFixture, S2cfOneReadOneWrite) {
  // Fig. 9a: matching innermost dimensions; stores bypass.
  const S2Dims d = S2Dims::of(RankDims::of(256, grid), grid);
  const ResortBuffers buf =
      ResortBuffers::allocate(machine->address_space(), d.elems() * 16);
  s2cf_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.elems() * 16);
  EXPECT_NEAR(static_cast<double>(reads()), bytes, 0.02 * bytes);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.02 * bytes);
}

TEST_F(ReplayFixture, S1pfPlanewiseMatchesS1cfTrafficSignature) {
  // Paper: "the structure and performance of S1PF ... are similar to those
  // of S1CF" -- two reads, one write per element.
  machine->set_active_cores(0, machine->cores_per_socket());
  const RankDims d = RankDims::of(256, grid);
  const ResortBuffers buf = ResortBuffers::allocate(machine->address_space(), d.bytes());
  s1pf_combined_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.bytes());
  EXPECT_NEAR(static_cast<double>(reads()), 2.0 * bytes, 0.1 * bytes);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.1 * bytes);
}

TEST_F(ReplayFixture, S2pfPlanewiseMatchesS2cfTrafficSignature) {
  const S2Dims d = S2Dims::of(RankDims::of(256, grid), grid);
  const ResortBuffers buf =
      ResortBuffers::allocate(machine->address_space(), d.elems() * 16);
  s2pf_replay(*machine, 0, 0, d, buf, false);
  machine->flush_socket(0);
  const double bytes = static_cast<double>(d.elems() * 16);
  EXPECT_NEAR(static_cast<double>(reads()), bytes, 0.02 * bytes);
  EXPECT_NEAR(static_cast<double>(writes()), bytes, 0.02 * bytes);
}

TEST_F(ReplayFixture, PrefetchImprovesNest2Bandwidth) {
  // Fig. 7b: -fprefetch-loop-arrays improves the strided nest's performance.
  machine->set_active_cores(0, machine->cores_per_socket());
  const RankDims d = RankDims::of(512, grid);
  auto run = [&](bool pf) {
    sim::Machine m(sim::MachineConfig::summit());
    m.set_noise_enabled(false);
    m.set_active_cores(0, m.cores_per_socket());
    const ResortBuffers buf = ResortBuffers::allocate(m.address_space(), d.bytes());
    const sim::LoopStats st = s1cf_nest2_replay(m, 0, 0, d, buf, pf);
    return st.time_ns;
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace papisim::fft
