// Tests for the numeric 1D FFT (radix-2 + Bluestein).
#include <gtest/gtest.h>

#include <cmath>

#include "fft/fft1d.hpp"
#include "sim/rng.hpp"

namespace papisim::fft {
namespace {

std::vector<cplx> random_signal(std::size_t n, std::uint64_t seed) {
  sim::SplitMix64 rng(seed);
  std::vector<cplx> v(n);
  for (cplx& c : v) c = {rng.next_double() - 0.5, rng.next_double() - 0.5};
  return v;
}

double max_err(std::span<const cplx> a, std::span<const cplx> b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

TEST(Fft1d, PowerOfTwoDetection) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(1344));
  EXPECT_FALSE(is_power_of_two(3));
}

TEST(Fft1d, DeltaTransformsToAllOnes) {
  std::vector<cplx> v(8, cplx{});
  v[0] = 1.0;
  fft1d(v);
  for (const cplx& c : v) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, SingleToneLandsInOneBin) {
  const std::size_t n = 64, k = 5;
  std::vector<cplx> v(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double ang = 2.0 * M_PI * static_cast<double>(k * j) / n;
    v[j] = {std::cos(ang), std::sin(ang)};
  }
  fft1d(v);
  for (std::size_t b = 0; b < n; ++b) {
    EXPECT_NEAR(std::abs(v[b]), b == k ? static_cast<double>(n) : 0.0, 1e-9) << b;
  }
}

// Property sweep: FFT matches the naive DFT for power-of-two and awkward
// (Bluestein) lengths, including the paper's N=1344 factor structure.
class FftLength : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftLength, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  const std::vector<cplx> x = random_signal(n, 42 + n);
  const std::vector<cplx> expected = dft_naive(x);
  const std::vector<cplx> actual = fft1d_copy(x);
  EXPECT_LT(max_err(actual, expected), 1e-7 * static_cast<double>(n));
}

TEST_P(FftLength, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const std::vector<cplx> x = random_signal(n, 7 + n);
  std::vector<cplx> v = x;
  fft1d(v, false);
  fft1d(v, true);
  EXPECT_LT(max_err(v, x), 1e-9 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLength,
                         ::testing::Values(1, 2, 4, 8, 32, 256, 3, 5, 6, 7, 12,
                                           21, 84, 100, 336, 63));

TEST(Fft1d, ParsevalHolds) {
  const std::size_t n = 128;
  const std::vector<cplx> x = random_signal(n, 11);
  const std::vector<cplx> X = fft1d_copy(x);
  double ex = 0, eX = 0;
  for (const cplx& c : x) ex += std::norm(c);
  for (const cplx& c : X) eX += std::norm(c);
  EXPECT_NEAR(eX, ex * static_cast<double>(n), 1e-8 * ex * n);
}

TEST(Fft1d, LinearityHolds) {
  const std::size_t n = 48;  // Bluestein path
  const std::vector<cplx> a = random_signal(n, 1), b = random_signal(n, 2);
  std::vector<cplx> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = 2.0 * a[i] + cplx(0, 1) * b[i];
  const auto fa = fft1d_copy(a), fb = fft1d_copy(b), fsum = fft1d_copy(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(fsum[i] - (2.0 * fa[i] + cplx(0, 1) * fb[i])), 1e-9);
  }
}

TEST(Fft1d, BatchTransformsRowsIndependently) {
  const std::size_t n = 16, batch = 4;
  std::vector<cplx> data;
  std::vector<std::vector<cplx>> rows;
  for (std::size_t b = 0; b < batch; ++b) {
    rows.push_back(random_signal(n, 100 + b));
    data.insert(data.end(), rows.back().begin(), rows.back().end());
  }
  fft1d_batch(data, n, batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto expected = fft1d_copy(rows[b]);
    EXPECT_LT(max_err(std::span<const cplx>(data).subspan(b * n, n), expected), 1e-10);
  }
}

TEST(Fft1d, BatchValidatesBufferSize) {
  std::vector<cplx> data(10);
  EXPECT_THROW(fft1d_batch(data, 8, 2), std::invalid_argument);
}

}  // namespace
}  // namespace papisim::fft
