// Property-style tests of the access engine's policies:
//  * the precomputed in-loop stream detection is bit-exact with the
//    StreamDetector model on affine streams,
//  * the bypass decision matrix over stride/density/prefetch combinations,
//  * conservation invariants (every dirtied line drains exactly once;
//    cold reads cover exactly the distinct touched lines).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "sim/machine.hpp"
#include "sim/stream_detect.hpp"
#include "testing/machine_builder.hpp"
#include "testing/traffic_matchers.hpp"

namespace papisim::sim {
namespace {

namespace ts = papisim::test_support;

MachineConfig small_config() { return ts::MachineBuilder::small().config(); }

// --------------------------------------------------------------- detection

/// Reference: feed an affine stream's line-touch sequence to StreamDetector
/// and report whether it ends strided.
bool detector_says_strided(std::int64_t stride, std::uint32_t elem,
                           std::uint64_t iters, std::uint32_t threshold) {
  StreamDetector det(threshold);
  det.begin(1);
  const std::uint64_t base = 1 << 20;
  std::uint64_t last_line = ~0ull;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(base) +
                                   static_cast<std::int64_t>(i) * stride);
    const std::uint64_t line = addr / 64;
    if (line != last_line) {
      det.observe(0, line);
      last_line = line;
    }
    (void)elem;
  }
  return det.any_strided();
}

/// Engine-side: replay the same stream and infer the detection outcome from
/// whether a dense sequential co-running store stream bypasses.
bool engine_says_strided(std::int64_t stride, std::uint32_t elem,
                         std::uint64_t iters) {
  Machine m(small_config());
  m.set_noise_enabled(false);
  LoopDesc loop;
  loop.iterations = iters;
  loop.streams = {{1 << 20, stride, elem, AccessKind::Load},
                  {1 << 28, 8, 8, AccessKind::Store}};
  const LoopStats st = m.engine(0, 0).execute(loop);
  // If the load stream is detected strided, (almost) no stores bypass.
  const std::uint64_t store_lines = iters * 8 / 64;
  return st.bypassed_store_lines < store_lines / 2;
}

class DetectionEquivalence
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::uint32_t>> {};

TEST_P(DetectionEquivalence, EngineMatchesStreamDetector) {
  const auto [stride, elem] = GetParam();
  const std::uint64_t iters = 4096;
  const bool reference = detector_says_strided(stride, elem, iters, 4);
  const bool engine = engine_says_strided(stride, elem, iters);
  EXPECT_EQ(engine, reference) << "stride=" << stride << " elem=" << elem;
}

INSTANTIATE_TEST_SUITE_P(
    Strides, DetectionEquivalence,
    ::testing::Values(std::tuple{8, 8},        // sequential
                      std::tuple{16, 16},      // sequential, complex
                      std::tuple{64, 8},       // 1 line per iter: sequential
                      std::tuple{128, 8},      // 2 lines: strided
                      std::tuple{512, 8},      // 8 lines: strided
                      std::tuple{4096, 8},     // page stride: strided
                      std::tuple{96, 8},       // 1.5 lines: alternating delta
                      std::tuple{24, 8}));     // sub-line irregular

// ------------------------------------------------------------ bypass matrix

struct BypassCase {
  const char* name;
  std::int64_t load_stride;
  std::int64_t store_stride;
  bool prefetch;
  bool bypass_enabled;
  bool expect_bypass;
};

class BypassMatrix : public ::testing::TestWithParam<BypassCase> {};

TEST_P(BypassMatrix, StoreStreamBypassesExactlyWhenPolicyAllows) {
  const BypassCase& c = GetParam();
  MachineConfig cfg = small_config();
  cfg.store_bypass = c.bypass_enabled;
  Machine m(cfg);
  m.set_noise_enabled(false);
  LoopDesc loop;
  loop.iterations = 8192;
  loop.sw_prefetch = c.prefetch;
  loop.streams = {{1 << 20, c.load_stride, 8, AccessKind::Load},
                  {1 << 28, c.store_stride, 8, AccessKind::Store}};
  const LoopStats st = m.engine(0, 0).execute(loop);
  if (c.expect_bypass) {
    EXPECT_GT(st.bypassed_store_lines, loop.iterations * 8 / 64 * 9 / 10) << c.name;
  } else {
    EXPECT_LE(st.bypassed_store_lines, 4u) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BypassMatrix,
    ::testing::Values(
        BypassCase{"seq_copy", 8, 8, false, true, true},
        BypassCase{"strided_load_defeats", 256, 8, false, true, false},
        BypassCase{"strided_store_never_streams", 8, 256, false, true, false},
        BypassCase{"prefetch_disables", 8, 8, true, true, false},
        BypassCase{"config_off", 8, 8, false, false, false},
        // A 64 B-stride load is sequential at line granularity: it must NOT
        // defeat the bypass (it is not a Stride-N stream).
        BypassCase{"line_stride_load_is_sequential", 64, 8, false, true, true}),
    [](const ::testing::TestParamInfo<BypassCase>& info) {
      return info.param.name;
    });

// -------------------------------------------------------------- invariants

TEST(EngineInvariants, ColdReadsCoverExactlyTheDistinctTouchedLines) {
  Machine m(small_config());
  m.set_noise_enabled(false);
  // Irregular strides; compute the touched-line set independently.
  const std::uint64_t base = 1 << 20;
  const std::int64_t stride = 40;
  const std::uint64_t iters = 3000;
  std::set<std::uint64_t> lines;
  for (std::uint64_t i = 0; i < iters; ++i) lines.insert((base + i * stride) / 64);
  const LoopStats st = m.engine(0, 0).execute(ts::load_loop(base, stride, iters));
  EXPECT_EQ(st.mem_read_bytes, lines.size() * 64);
  EXPECT_EQ(st.line_touches, lines.size());
}

TEST(EngineInvariants, EveryAllocatedDirtyLineDrainsExactlyOnce) {
  Machine m(small_config());
  m.set_noise_enabled(false);
  // Strided stores (write-allocate) over a known number of distinct lines,
  // touched twice: writeback volume must equal the distinct line count once.
  const std::uint64_t n = 2048;
  LoopDesc loop;
  loop.iterations = n;
  loop.streams = {{1 << 22, 128, 8, AccessKind::Store}};
  ts::TrafficProbe traffic(m);
  m.engine(0, 0).execute(loop);
  m.engine(0, 0).execute(loop);  // re-dirty the same lines
  m.flush_socket(0);
  EXPECT_TRUE(ts::bytes_near(traffic.write_delta(), n * 64, 0));
}

TEST(EngineInvariants, CountersAreMonotonicAcrossMixedWork) {
  Machine m(small_config());
  m.set_noise_enabled(false);
  AccessEngine& eng = m.engine(0, 0);
  CoreCounters prev = eng.counters();
  for (int round = 0; round < 5; ++round) {
    LoopDesc loop;
    loop.iterations = 512 + 100 * round;
    loop.flops_per_iter = 2.0;
    loop.streams = {{(1ull << 22) + round * (1ull << 21),
                     round % 2 == 0 ? 8 : 200, 8, AccessKind::Load}};
    eng.execute(loop);
    eng.store(1 << 30, 8);
    eng.take_scalar_stats();
    const CoreCounters cur = eng.counters();
    EXPECT_GE(cur.flops, prev.flops);
    EXPECT_GT(cur.line_touches, prev.line_touches);
    EXPECT_GE(cur.busy_ns, prev.busy_ns);
    EXPECT_EQ(cur.line_touches, cur.l3_hits + cur.victim_hits + cur.l3_misses());
    prev = cur;
  }
}

TEST(EngineInvariants, LineNeverInSliceAndVictimSimultaneously) {
  MachineConfig cfg = small_config();
  cfg.cores_per_socket = 4;
  cfg.l3_slice_bytes = 64 * 256;  // tiny: lots of cast-out churn
  Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, 1);
  SplitMix64 rng(2024);
  AccessEngine& eng = m.engine(0, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = (rng.next_u64() % 4096) * 64;
    if (rng.next_double() < 0.3) {
      eng.store(addr, 8);
    } else {
      eng.load(addr, 8);
    }
  }
  eng.take_scalar_stats();
  L3Fabric& l3 = m.l3(0);
  for (std::uint64_t line = 0; line < 4096; ++line) {
    const bool in_slice = l3.slice(0).contains(line);
    const bool in_victim = l3.victim_store().contains(line);
    EXPECT_FALSE(in_slice && in_victim) << "line " << line;
  }
}

TEST(EngineInvariants, ReplayIsDeterministic) {
  auto run = [] {
    Machine m(small_config());
    m.set_noise_enabled(false);
    LoopDesc loop;
    loop.iterations = 50000;
    loop.streams = {{1 << 20, 8, 8, AccessKind::Load},
                    {1 << 26, 72, 8, AccessKind::Load},
                    {1 << 30, 8, 8, AccessKind::Store}};
    const LoopStats st = m.engine(0, 0).execute(loop);
    m.flush_socket(0);
    return std::tuple{st.mem_read_bytes, st.mem_write_bytes, st.line_touches,
                      m.memctrl(0).total_bytes(MemDir::Write)};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace papisim::sim
