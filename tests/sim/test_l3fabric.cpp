// Unit tests for the sliced L3 with lateral cast-out.
#include <gtest/gtest.h>

#include "sim/l3fabric.hpp"

namespace papisim::sim {
namespace {

MachineConfig small_config(double retention = 1.0) {
  MachineConfig cfg;
  cfg.cores_per_socket = 4;
  cfg.l3_slice_bytes = 64 * 64;  // 64 lines per slice
  cfg.l3_associativity = 4;
  cfg.castout_retention = retention;
  return cfg;
}

struct Fixture {
  explicit Fixture(MachineConfig c = small_config())
      : cfg(std::move(c)), mem(cfg.mem_channels, cfg.line_bytes, 2), l3(cfg, mem) {}
  MachineConfig cfg;
  MemController mem;
  L3Fabric l3;
};

TEST(L3Fabric, ColdLoadReadsMemoryWarmLoadHits) {
  Fixture f;
  EXPECT_EQ(f.l3.load_line(0, 100), L3Fabric::Source::Memory);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Read), 64u);
  EXPECT_EQ(f.l3.load_line(0, 100), L3Fabric::Source::L3Hit);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Read), 64u);
}

TEST(L3Fabric, StoreMissIncursWriteAllocateRead) {
  Fixture f;
  EXPECT_EQ(f.l3.store_line(0, 7), L3Fabric::Source::Memory);
  // The "read incurred by the hardware when writing": one line read, no write yet.
  EXPECT_EQ(f.mem.total_bytes(MemDir::Read), 64u);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Write), 0u);
}

TEST(L3Fabric, DirtyLineWrittenBackOnFlush) {
  Fixture f;
  f.l3.store_line(0, 7);
  f.l3.flush_core(0);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Write), 64u);
  // Flushed clean lines produce no writes.
  f.l3.load_line(0, 9);
  const std::uint64_t w = f.mem.total_bytes(MemDir::Write);
  f.l3.flush_core(0);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Write), w);
}

TEST(L3Fabric, CapacityVictimsCastOutLaterallyAndRecoverWithoutMemoryTraffic) {
  Fixture f;  // retention = 1.0: every cast-out is recoverable
  f.l3.set_active_cores(1);  // 3 idle slices of victim capacity
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  // Touch twice the slice capacity; spread across sets (sequential lines).
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  const std::uint64_t reads_cold = f.mem.total_bytes(MemDir::Read);
  EXPECT_EQ(reads_cold, 2 * slice_lines * 64);
  // Second pass: almost everything is either in the slice or the victim
  // store (hashed set indexing can overflow a few victim sets and drop the
  // odd clean line).
  std::uint64_t mem_misses = 0;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) {
    if (f.l3.load_line(0, l) == L3Fabric::Source::Memory) ++mem_misses;
  }
  EXPECT_LE(mem_misses, 2 * slice_lines / 10);
  EXPECT_GT(f.l3.victim_recoveries(), 0u);
}

TEST(L3Fabric, AllCoresActiveMeansNoVictimCapacity) {
  Fixture f;
  f.l3.set_active_cores(4);
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  // Cyclic re-walk of 2x capacity under LRU: the vast majority of accesses
  // miss straight to memory (the hashed set index lets a handful of
  // under-loaded sets retain their lines).
  std::uint64_t mem_misses = 0;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) {
    if (f.l3.load_line(0, l) == L3Fabric::Source::Memory) ++mem_misses;
  }
  EXPECT_GT(mem_misses, 2 * slice_lines * 8 / 10);
  EXPECT_EQ(f.l3.victim_recoveries(), 0u);
}

TEST(L3Fabric, PartialRetentionLosesSomeCastouts) {
  Fixture f(small_config(0.5));
  f.l3.set_active_cores(1);
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  std::uint64_t mem_hits = 0, recovered = 0;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) {
    const L3Fabric::Source src = f.l3.load_line(0, l);
    if (src == L3Fabric::Source::Memory) ++mem_hits;
    if (src == L3Fabric::Source::VictimHit) ++recovered;
  }
  // With retention 0.5 both outcomes must occur.
  EXPECT_GT(mem_hits, 0u);
  EXPECT_GT(recovered, 0u);
}

TEST(L3Fabric, DirtyCastOutPreservedAndWrittenBackEventually) {
  Fixture f;
  f.l3.set_active_cores(1);
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  // Dirty the whole slice, then displace it entirely with loads.
  for (std::uint64_t l = 0; l < slice_lines; ++l) f.l3.store_line(0, l);
  for (std::uint64_t l = slice_lines; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  // Dirty lines now live in the victim store; at most a handful of
  // writebacks (hashed set indexing can overload individual victim sets).
  EXPECT_LE(f.mem.total_bytes(MemDir::Write), 4 * 64u);
  f.l3.flush_all();
  // Every dirty line is written back exactly once overall.
  EXPECT_EQ(f.mem.total_bytes(MemDir::Write), slice_lines * 64);
}

TEST(L3Fabric, CastOutWithoutVictimCapacityWritesBackDirtyLines) {
  Fixture f;
  f.l3.set_active_cores(4);  // no victim capacity
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  for (std::uint64_t l = 0; l < slice_lines; ++l) f.l3.store_line(0, l);
  for (std::uint64_t l = slice_lines; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  // Most dirty lines are displaced straight to memory (hashed sets keep a
  // few resident); the flush drains the rest.
  EXPECT_GE(f.mem.total_bytes(MemDir::Write), slice_lines * 64 * 9 / 10);
  f.l3.flush_core(0);
  EXPECT_EQ(f.mem.total_bytes(MemDir::Write), slice_lines * 64);
}

TEST(L3Fabric, CoresHaveIndependentSlices) {
  Fixture f;
  f.l3.set_active_cores(4);
  f.l3.load_line(0, 55);
  // Same line from another core does not hit core 0's slice.
  EXPECT_EQ(f.l3.load_line(1, 55), L3Fabric::Source::Memory);
  EXPECT_EQ(f.l3.load_line(0, 55), L3Fabric::Source::L3Hit);
}

TEST(L3Fabric, LateralCastoutDisabledByConfig) {
  MachineConfig cfg = small_config();
  cfg.lateral_castout = false;
  Fixture f(cfg);
  f.l3.set_active_cores(1);
  const std::uint64_t slice_lines = f.cfg.l3_slice_bytes / f.cfg.line_bytes;
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  const std::uint64_t reads_cold = f.mem.total_bytes(MemDir::Read);
  for (std::uint64_t l = 0; l < 2 * slice_lines; ++l) f.l3.load_line(0, l);
  // Without cast-out, the 2x working set thrashes exactly like the
  // all-cores-active case.
  EXPECT_EQ(f.mem.total_bytes(MemDir::Read), reads_cold + 2 * slice_lines * 64);
}

TEST(L3Fabric, SetActiveCoresValidatesRange) {
  Fixture f;
  EXPECT_THROW(f.l3.set_active_cores(0), std::invalid_argument);
  EXPECT_THROW(f.l3.set_active_cores(5), std::invalid_argument);
  EXPECT_NO_THROW(f.l3.set_active_cores(4));
}

}  // namespace
}  // namespace papisim::sim
