// Unit tests for the set-associative LRU cache model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "sim/cache.hpp"

namespace papisim::sim {
namespace {

TEST(CacheLevel, GeometryIsDerivedFromSizeAssocLine) {
  CacheLevel c(5ull << 20, 20, 64);
  EXPECT_EQ(c.sets(), 4096u);
  EXPECT_EQ(c.capacity_lines(), 4096u * 20u);
  EXPECT_EQ(c.size_bytes(), 5ull << 20);
}

TEST(CacheLevel, NonPowerOfTwoSetCountWorks) {
  // 3 idle slices' worth of victim capacity -> 12288 sets (non-pow2 path).
  CacheLevel c(3ull * (5ull << 20), 20, 64);
  EXPECT_EQ(c.sets(), 12288u);
  const CacheLevel::Result r = c.access(12288 * 7 + 5, false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(c.access(12288 * 7 + 5, false).hit);
}

TEST(CacheLevel, ZeroCapacityMissesEverythingAndNeverEvicts) {
  CacheLevel c(0, 20, 64);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const CacheLevel::Result r = c.access(i, true);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.evicted);
  }
  EXPECT_FALSE(c.contains(0));
}

TEST(CacheLevel, FirstAccessMissesSecondHits) {
  CacheLevel c(1 << 16, 8, 64);
  EXPECT_FALSE(c.access(42, false).hit);
  EXPECT_TRUE(c.access(42, false).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsedWithinSet) {
  // 2-way, small: lines mapping to the same set are line, line+sets, ...
  CacheLevel c(4 * 64 * 2, 2, 64);  // 4 sets, 2 ways
  const std::uint64_t s = c.sets();
  c.access(0, false);       // way A
  c.access(s, false);       // way B
  c.access(0, false);       // A is now MRU
  const CacheLevel::Result r = c.access(2 * s, false);  // evicts B (LRU)
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, s);
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(s));
}

TEST(CacheLevel, DirtyBitSticksUntilEviction) {
  CacheLevel c(4 * 64 * 2, 2, 64);
  const std::uint64_t s = c.sets();
  c.access(1, true);               // dirty fill
  c.access(1, false);              // clean re-access must not clear dirty
  c.access(1 + s, false);
  const CacheLevel::Result r = c.access(1 + 2 * s, false);  // evict line 1? LRU order
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 1u);
  EXPECT_TRUE(r.victim_dirty);
}

TEST(CacheLevel, EvictionOfCleanLineIsNotDirty) {
  CacheLevel c(64 * 2, 2, 64);  // 1 set, 2 ways
  c.access(0, false);
  c.access(1, false);
  const CacheLevel::Result r = c.access(2, false);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 0u);
  EXPECT_FALSE(r.victim_dirty);
}

TEST(CacheLevel, InvalidateReportsDirtyStateAndFreesSlot) {
  CacheLevel c(64 * 4, 4, 64);
  c.access(7, true);
  CacheLevel::Invalidated inv = c.invalidate(7);
  EXPECT_TRUE(inv.present);
  EXPECT_TRUE(inv.dirty);
  EXPECT_FALSE(c.contains(7));
  inv = c.invalidate(7);
  EXPECT_FALSE(inv.present);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(CacheLevel, InvalidateMiddleKeepsLruOrderConsistent) {
  CacheLevel c(64 * 4, 4, 64);  // 1 set, 4 ways
  for (std::uint64_t l = 0; l < 4; ++l) c.access(l, false);
  // Recency (MRU..LRU): 3 2 1 0.  Remove 2, then fill two lines: evictions
  // must be 0 then 1.
  c.invalidate(2);
  CacheLevel::Result r = c.access(10, false);
  EXPECT_FALSE(r.evicted);  // the freed way absorbs the fill
  r = c.access(11, false);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 0u);
  r = c.access(12, false);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 1u);
}

TEST(CacheLevel, FlushDrainsEveryValidLineExactlyOnce) {
  CacheLevel c(1 << 14, 4, 64);
  std::set<std::uint64_t> inserted;
  for (std::uint64_t l = 100; l < 160; ++l) {
    c.access(l, l % 2 == 0);
    inserted.insert(l);
  }
  std::set<std::uint64_t> flushed;
  std::size_t dirty_count = 0;
  c.flush([&](std::uint64_t line, bool dirty) {
    EXPECT_TRUE(flushed.insert(line).second) << "line flushed twice";
    if (dirty) ++dirty_count;
  });
  EXPECT_EQ(flushed, inserted);
  EXPECT_EQ(dirty_count, 30u);
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_FALSE(c.contains(100));
}

TEST(CacheLevel, WorkingSetWithinCapacityNeverMissesAfterWarmup) {
  CacheLevel c(1 << 16, 8, 64);  // 1024 lines
  for (std::uint64_t l = 0; l < 1024; ++l) c.access(l, false);
  c.reset_stats();
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t l = 0; l < 1024; ++l) c.access(l, false);
  }
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_EQ(c.hits(), 3u * 1024u);
}

TEST(CacheLevel, WorkingSetBeyondCapacityThrashesUnderLru) {
  CacheLevel c(64 * 4, 4, 64);  // 1 set, 4 lines
  // Cyclic access to 5 lines in a 4-way set: classic LRU worst case.
  c.reset_stats();
  for (int pass = 0; pass < 10; ++pass) {
    for (std::uint64_t l = 0; l < 5; ++l) c.access(l, false);
  }
  EXPECT_EQ(c.hits(), 0u);
}

TEST(CacheLevel, InsertBehavesLikeAccessForEvictionAccounting) {
  CacheLevel c(64 * 2, 2, 64);
  c.insert(5, true);
  c.insert(6, false);
  const CacheLevel::Result r = c.insert(7, false);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_line, 5u);
  EXPECT_TRUE(r.victim_dirty);
}

// Property-style sweep: for several geometries, a working set exactly at
// capacity is fully retained when accessed set-uniformly.
class CacheGeometry : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CacheGeometry, CapacityWorkingSetRetained) {
  const auto [size_kb, assoc] = GetParam();
  CacheLevel c(static_cast<std::uint64_t>(size_kb) << 10, assoc, 64);
  const std::uint64_t lines = c.capacity_lines();
  for (std::uint64_t l = 0; l < lines; ++l) c.access(l, false);
  c.reset_stats();
  for (std::uint64_t l = 0; l < lines; ++l) c.access(l, false);
  EXPECT_EQ(c.misses(), 0u) << "size=" << size_kb << "KB assoc=" << assoc;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(std::tuple{32, 8}, std::tuple{256, 8}, std::tuple{512, 16},
                      std::tuple{5120, 20}, std::tuple{96, 4}, std::tuple{60, 20}));

}  // namespace
}  // namespace papisim::sim
