// Property test for the parallel replay engine: a literal multi-core batch
// replayed with 1, 2, or N host threads must produce bit-identical
// per-channel nest counters, per-core CoreCounters, and virtual time in
// deterministic (noise-off) mode.  This is the serial-equivalence contract
// that makes parallel replay safe to use everywhere: per-core L3 stripes
// share no mutable state, channel counters are commutative atomics, and
// per-core time is deferred and max-merged.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "components/perf_nest_component.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/runner.hpp"
#include "probe/probe.hpp"
#include "probe/replay.hpp"

namespace papisim::kernels {
namespace {

constexpr std::uint64_t kN = 64;  // Fig. 3 batched GEMM, scaled down

/// Small socket with slices a 64^2 GEMM overflows (3 x 32 KiB footprint vs
/// 32 KiB slice), so the replay exercises evictions, lateral cast-outs, and
/// victim-partition retention -- not just the miss path.
sim::MachineConfig six_core_config() {
  sim::MachineConfig cfg = sim::MachineConfig::tellico();
  cfg.cores_per_socket = 6;
  cfg.physical_cores_per_socket = 6;
  cfg.l3_slice_bytes = 32 * 1024;
  cfg.l3_associativity = 8;
  return cfg;
}

struct ReplayResult {
  Measurement meas;
  std::vector<std::array<std::uint64_t, 2>> channels;  ///< [ch][read,write]
  std::vector<sim::CoreCounters> cores;
  double clock_ns = 0.0;
};

ReplayResult run_literal_batch(std::uint32_t batch, std::uint32_t host_threads) {
  const sim::MachineConfig cfg = six_core_config();
  sim::Machine m(cfg);
  m.set_noise_enabled(false);
  Library lib;
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      m, m.user_credentials()));
  KernelRunner runner(m, lib, "perf_nest", 0);

  // Disjoint per-core buffers, allocated up front (before the fan-out).
  std::vector<GemmBuffers> bufs;
  bufs.reserve(batch);
  for (std::uint32_t c = 0; c < batch; ++c) {
    bufs.push_back(GemmBuffers::allocate(m.address_space(), kN));
  }

  RunnerOptions opt;
  opt.batched = true;
  opt.literal_cores = true;
  opt.threads = batch;
  opt.host_threads = host_threads;
  opt.reps = 2;  // also covers the recorded-delta fast path

  ReplayResult r;
  r.meas = runner.measure(
      [&](std::uint32_t core) { run_gemm(m, 0, core, kN, bufs[core]); }, opt);
  r.channels = m.memctrl(0).snapshot();
  for (std::uint32_t c = 0; c < cfg.cores_per_socket; ++c) {
    r.cores.push_back(m.engine(0, c).counters());
  }
  r.clock_ns = m.clock().now_ns();
  return r;
}

void expect_identical(const ReplayResult& serial, const ReplayResult& parallel) {
  EXPECT_DOUBLE_EQ(serial.meas.read_bytes, parallel.meas.read_bytes);
  EXPECT_DOUBLE_EQ(serial.meas.write_bytes, parallel.meas.write_bytes);
  EXPECT_DOUBLE_EQ(serial.meas.elapsed_sec, parallel.meas.elapsed_sec);
  EXPECT_DOUBLE_EQ(serial.clock_ns, parallel.clock_ns);

  ASSERT_EQ(serial.channels.size(), parallel.channels.size());
  for (std::size_t ch = 0; ch < serial.channels.size(); ++ch) {
    EXPECT_EQ(serial.channels[ch][0], parallel.channels[ch][0])
        << "read bytes diverge on channel " << ch;
    EXPECT_EQ(serial.channels[ch][1], parallel.channels[ch][1])
        << "write bytes diverge on channel " << ch;
  }

  ASSERT_EQ(serial.cores.size(), parallel.cores.size());
  for (std::size_t c = 0; c < serial.cores.size(); ++c) {
    EXPECT_EQ(serial.cores[c].flops, parallel.cores[c].flops) << "core " << c;
    EXPECT_EQ(serial.cores[c].line_touches, parallel.cores[c].line_touches)
        << "core " << c;
    EXPECT_EQ(serial.cores[c].l3_hits, parallel.cores[c].l3_hits) << "core " << c;
    EXPECT_EQ(serial.cores[c].victim_hits, parallel.cores[c].victim_hits)
        << "core " << c;
    EXPECT_DOUBLE_EQ(serial.cores[c].busy_ns, parallel.cores[c].busy_ns)
        << "core " << c;
  }
}

TEST(ParallelReplay, TwoHostThreadsMatchSerialOnPartialBatch) {
  // Partial batch (2 of 6 cores active): the victim partitions have capacity,
  // so cast-out recovery and the per-stripe retention sequence are in play.
  const ReplayResult serial = run_literal_batch(/*batch=*/2, /*host_threads=*/1);
  const ReplayResult parallel = run_literal_batch(/*batch=*/2, /*host_threads=*/2);
  expect_identical(serial, parallel);
  // The batch really ran on two cores.
  EXPECT_GT(serial.cores[0].line_touches, 0u);
  EXPECT_GT(serial.cores[1].line_touches, 0u);
  EXPECT_EQ(serial.cores[2].line_touches, 0u);
}

TEST(ParallelReplay, FullSocketMatchesSerialForAnyHostThreadCount) {
  const std::uint32_t cores = six_core_config().cores_per_socket;
  const ReplayResult serial = run_literal_batch(cores, /*host_threads=*/1);
  const ReplayResult two = run_literal_batch(cores, /*host_threads=*/2);
  const ReplayResult full = run_literal_batch(cores, /*host_threads=*/cores);
  const ReplayResult one_per_core = run_literal_batch(cores, /*host_threads=*/0);
  expect_identical(serial, two);
  expect_identical(serial, full);
  expect_identical(serial, one_per_core);
  for (std::uint32_t c = 0; c < cores; ++c) {
    EXPECT_GT(serial.cores[c].line_touches, 0u) << "core " << c;
  }
}

TEST(ParallelReplay, SymmetricCoresProduceSymmetricCounters) {
  // All cores run the same kernel on disjoint, identically laid-out buffers:
  // every core's counters must agree with core 0's (the premise behind the
  // symmetric-batch optimization).
  const std::uint32_t cores = six_core_config().cores_per_socket;
  const ReplayResult r = run_literal_batch(cores, /*host_threads=*/cores);
  for (std::uint32_t c = 1; c < cores; ++c) {
    EXPECT_EQ(r.cores[0].flops, r.cores[c].flops) << "core " << c;
    EXPECT_EQ(r.cores[0].line_touches, r.cores[c].line_touches) << "core " << c;
  }
}

// ------------------------------------------------- probe-sweep determinism
//
// The refutation harness leans on the same serial-equivalence contract: a
// probe verdict must not depend on how many host threads drove the sweep,
// or on the machine's noise seed while noise is off.

TEST(ParallelReplay, MulticoreSweepIsBitIdenticalAcrossHostThreadCounts) {
  const sim::MachineConfig cfg =
      probe::probe_machine(sim::MachineConfig::summit());
  const std::uint64_t footprint = 2 * cfg.l3_slice_bytes;
  const auto run = [&](std::uint32_t host_threads) {
    return probe::replay_multicore_sweep(cfg, cfg.cores_per_socket, footprint,
                                         cfg.line_bytes, /*passes=*/2,
                                         host_threads);
  };
  const probe::SweepResult serial = run(1);
  for (const std::uint32_t threads : {2u, 8u, 0u}) {
    const probe::SweepResult par = run(threads);
    EXPECT_EQ(serial.line_touches, par.line_touches) << threads;
    // Per-core, per-pass loop traffic is exact...
    ASSERT_EQ(serial.pass_read_bytes, par.pass_read_bytes) << threads;
    // ...and so is the channel-level controller state after the merge.
    ASSERT_EQ(serial.channels.size(), par.channels.size());
    for (std::size_t ch = 0; ch < serial.channels.size(); ++ch) {
      EXPECT_EQ(serial.channels[ch][0], par.channels[ch][0])
          << "threads=" << threads << " read channel " << ch;
      EXPECT_EQ(serial.channels[ch][1], par.channels[ch][1])
          << "threads=" << threads << " write channel " << ch;
    }
  }
}

TEST(ParallelReplay, ProbeVerdictsAreThreadCountInvariant) {
  probe::ProbeOptions serial_opt;
  serial_opt.host_threads = 1;
  probe::ProbeOptions parallel_opt;
  parallel_opt.host_threads = 8;

  const auto serial = probe::run_all_probes(serial_opt);
  const auto parallel = probe::run_all_probes(parallel_opt);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].verdict, parallel[i].verdict) << serial[i].mechanism;
    EXPECT_EQ(serial[i].effect_size, parallel[i].effect_size)
        << serial[i].mechanism;
    EXPECT_EQ(serial[i].line_touches, parallel[i].line_touches)
        << serial[i].mechanism;
    ASSERT_EQ(serial[i].points.size(), parallel[i].points.size())
        << serial[i].mechanism;
    for (std::size_t j = 0; j < serial[i].points.size(); ++j) {
      EXPECT_EQ(serial[i].points[j].measured, parallel[i].points[j].measured)
          << serial[i].mechanism << " / " << serial[i].points[j].label;
    }
  }
}

TEST(ParallelReplay, NoiseSeedIsInertWhileNoiseIsOff) {
  // Replay determinism must come from the replay itself, not from a lucky
  // seed: with noise disabled, machines differing ONLY in seed replay
  // bit-identically.
  const auto run = [](std::uint64_t seed) {
    sim::MachineConfig cfg = probe::probe_machine(sim::MachineConfig::summit());
    cfg.noise.seed = seed;
    return probe::replay_multicore_sweep(cfg, cfg.cores_per_socket,
                                         2 * cfg.l3_slice_bytes,
                                         cfg.line_bytes, /*passes=*/2,
                                         /*host_threads=*/4);
  };
  const probe::SweepResult a = run(1);
  const probe::SweepResult b = run(0xDEADBEEF);
  EXPECT_EQ(a.pass_read_bytes, b.pass_read_bytes);
  EXPECT_EQ(a.line_touches, b.line_touches);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t ch = 0; ch < a.channels.size(); ++ch) {
    EXPECT_EQ(a.channels[ch][0], b.channels[ch][0]) << "channel " << ch;
    EXPECT_EQ(a.channels[ch][1], b.channels[ch][1]) << "channel " << ch;
  }
}

}  // namespace
}  // namespace papisim::kernels
