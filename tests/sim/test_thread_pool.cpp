// Regression tests for the ThreadPool exception contract: every index is
// attempted, the first exception (completion order) is rethrown, later ones
// are dropped but accounted via selfmon's pool.exceptions_dropped counter.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "selfmon/metrics.hpp"
#include "sim/thread_pool.hpp"

namespace papisim {
namespace {

std::uint64_t dropped_count() {
  return selfmon::snapshot().counter(
      selfmon::CounterId::PoolExceptionsDropped);
}

TEST(ThreadPool, RunsEveryIndexOnceAcrossWorkers) {
  sim::ThreadPool pool(3);
  constexpr std::uint32_t kN = 64;
  std::array<std::atomic<int>, kN> runs{};
  pool.parallel_for(kN, [&](std::uint32_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(runs[i].load(), 1);
}

TEST(ThreadPool, MultiTaskThrowRethrowsOneRunsAllCountsDropped) {
  sim::ThreadPool pool(3);
  constexpr std::uint32_t kN = 32;
  constexpr std::uint32_t kThrowers = 5;  // indices 0..4 throw
  std::array<std::atomic<int>, kN> runs{};
  const std::uint64_t dropped_before = dropped_count();

  auto task = [&](std::uint32_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
    if (i < kThrowers) throw std::runtime_error("task " + std::to_string(i));
  };
  EXPECT_THROW(pool.parallel_for(kN, task), std::runtime_error);

  // The contract: all indices were attempted despite the failures...
  for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(runs[i].load(), 1);
  // ...and the N-1 swallowed exceptions are visible in selfmon.
  if (selfmon::kEnabled) {
    EXPECT_EQ(dropped_count() - dropped_before, kThrowers - 1);
  }
}

TEST(ThreadPool, SerialFallbackMatchesPooledExceptionSemantics) {
  sim::ThreadPool pool(0);  // caller-only: the inline serial path
  constexpr std::uint32_t kN = 10;
  std::array<std::atomic<int>, kN> runs{};
  const std::uint64_t dropped_before = dropped_count();

  auto task = [&](std::uint32_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
    if (i == 2 || i == 5 || i == 7) {
      throw std::runtime_error("task " + std::to_string(i));
    }
  };
  // Serial execution is in index order, so the FIRST exception is index 2's.
  try {
    pool.parallel_for(kN, task);
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 2");
  }
  for (std::uint32_t i = 0; i < kN; ++i) EXPECT_EQ(runs[i].load(), 1);
  if (selfmon::kEnabled) {
    EXPECT_EQ(dropped_count() - dropped_before, 2u);
  }
}

TEST(ThreadPool, PoolIsReusableAfterAThrowingBatch) {
  sim::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](std::uint32_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::uint32_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SelfmonAccountsBatchesClaimsAndTasks) {
  if (!selfmon::kEnabled) GTEST_SKIP() << "selfmon compiled out";
  const selfmon::Snapshot before = selfmon::snapshot();
  {
    sim::ThreadPool pool(2);
    pool.parallel_for(16, [](std::uint32_t) {});
    pool.parallel_for(16, [](std::uint32_t) {});
  }
  const selfmon::Snapshot after = selfmon::snapshot();
  EXPECT_EQ(after.counter(selfmon::CounterId::PoolBatches) -
                before.counter(selfmon::CounterId::PoolBatches),
            2u);
  EXPECT_EQ(after.counter(selfmon::CounterId::PoolClaims) -
                before.counter(selfmon::CounterId::PoolClaims),
            32u);
  EXPECT_EQ(after.counter(selfmon::CounterId::PoolTasks) -
                before.counter(selfmon::CounterId::PoolTasks),
            32u);
  const selfmon::HistSnapshot dispatch =
      after.hist(selfmon::HistId::PoolDispatchNs)
          .since(before.hist(selfmon::HistId::PoolDispatchNs));
  EXPECT_EQ(dispatch.count, 2u);
  EXPECT_GT(dispatch.sum_ns, 0u);
}

}  // namespace
}  // namespace papisim
