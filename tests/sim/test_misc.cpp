// Tests for clock, RNG, config presets, address space, noise model, and the
// stream detector.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/clock.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "sim/noise.hpp"
#include "sim/rng.hpp"
#include "sim/stream_detect.hpp"

namespace papisim::sim {
namespace {

TEST(SimClock, AdvancesMonotonically) {
  SimClock c;
  EXPECT_DOUBLE_EQ(c.now_ns(), 0.0);
  c.advance(100.0);
  c.advance(-50.0);  // ignored
  c.advance(2.5);
  EXPECT_DOUBLE_EQ(c.now_ns(), 102.5);
  EXPECT_DOUBLE_EQ(c.now_sec(), 102.5e-9);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now_ns(), 0.0);
}

TEST(SplitMix64, IsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(SplitMix64, UniformDoublesAreInUnitInterval) {
  SplitMix64 r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, LognormalUnitMeanIsApproximatelyUnbiased) {
  SplitMix64 r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_lognormal_unit_mean(0.35);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Hash64, IsStableAndSpreads) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_NE(hash64(1), hash64(2));
  // Cheap avalanche sanity: consecutive inputs land in different halves often.
  int upper = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) upper += (hash64(i) >> 63) & 1;
  EXPECT_GT(upper, 400);
  EXPECT_LT(upper, 600);
}

TEST(MachineConfig, SummitPreset) {
  const MachineConfig cfg = MachineConfig::summit();
  EXPECT_EQ(cfg.cores_per_socket, 21u);   // one of 22 reserved for the OS
  EXPECT_EQ(cfg.sockets, 2u);
  EXPECT_EQ(cfg.mem_channels, 8u);
  EXPECT_EQ(cfg.l3_slice_bytes, 5ull << 20);
  EXPECT_NE(cfg.user_uid, 0u);  // ordinary users are unprivileged
  // cpu ids span the 22 physical cores: 88 per socket, 176 total, so the
  // paper's cpu87 / cpu175 qualifiers are the last threads of each socket.
  EXPECT_EQ(cfg.usable_cpus(), 176u);
  EXPECT_EQ(cfg.cpus_per_socket(), 88u);
}

TEST(MachineConfig, TellicoPreset) {
  const MachineConfig cfg = MachineConfig::tellico();
  EXPECT_EQ(cfg.cores_per_socket, 16u);
  EXPECT_EQ(cfg.user_uid, 0u);  // elevated privileges on the testbed
}

TEST(Credentials, PrivilegeIsUidZero) {
  EXPECT_TRUE(Credentials::root().privileged());
  EXPECT_FALSE(Credentials::user().privileged());
  Machine summit(MachineConfig::summit());
  EXPECT_FALSE(summit.user_credentials().privileged());
  Machine tellico(MachineConfig::tellico());
  EXPECT_TRUE(tellico.user_credentials().privileged());
}

TEST(AddressSpace, AllocationsAreDisjointAndAligned) {
  AddressSpace as;
  const std::uint64_t a = as.allocate(100);
  const std::uint64_t b = as.allocate(100);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 100);
  const std::uint64_t c = as.allocate(64, 64);
  EXPECT_EQ(c % 64, 0u);
  EXPECT_GE(c, b + 100);
}

TEST(Machine, SocketOfCpuFollowsSummitLayout) {
  Machine m(MachineConfig::summit());
  EXPECT_EQ(m.socket_of_cpu(0), 0u);
  EXPECT_EQ(m.socket_of_cpu(87), 0u);   // 22*4 = 88 cpus on socket 0
  EXPECT_EQ(m.socket_of_cpu(88), 1u);
  EXPECT_EQ(m.socket_of_cpu(175), 1u);
}

TEST(NoiseModel, DisabledModelAddsNothing) {
  MemController mc(8, 64, 2);
  NoiseConfig nc;
  NoiseModel nm(nc, mc, 0);
  nm.set_enabled(false);
  nm.advance(1e9);
  nm.repetition_overhead();
  nm.measurement_overhead();
  EXPECT_EQ(mc.total_bytes(MemDir::Read), 0u);
  EXPECT_EQ(mc.total_bytes(MemDir::Write), 0u);
}

TEST(NoiseModel, BackgroundTrafficScalesWithTime) {
  MemController mc(8, 64, 2);
  NoiseConfig nc;
  nc.background_read_bytes_per_sec = 1e6;
  nc.background_write_bytes_per_sec = 5e5;
  NoiseModel nm(nc, mc, 0);
  nm.advance(1e9);  // one second
  EXPECT_NEAR(static_cast<double>(mc.total_bytes(MemDir::Read)), 1e6, 8.0);
  EXPECT_NEAR(static_cast<double>(mc.total_bytes(MemDir::Write)), 5e5, 8.0);
}

TEST(NoiseModel, RepetitionOverheadIsJitteredAroundConfiguredMean) {
  MemController mc(8, 64, 2);
  NoiseConfig nc;
  nc.rep_read_overhead_bytes = 1e5;
  nc.jitter_sigma = 0.35;
  NoiseModel nm(nc, mc, 0);
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) nm.repetition_overhead();
  const double avg = static_cast<double>(mc.total_bytes(MemDir::Read)) / reps;
  EXPECT_NEAR(avg, 1e5, 2e3);
}

TEST(NoiseModel, DifferentStreamIdsGiveDifferentSequences) {
  MemController a(1, 64, 1), b(1, 64, 1);
  NoiseConfig nc;
  NoiseModel na(nc, a, 0), nb(nc, b, 1);
  na.repetition_overhead();
  nb.repetition_overhead();
  EXPECT_NE(a.total_bytes(MemDir::Read), b.total_bytes(MemDir::Read));
}

TEST(StreamDetector, SequentialStreamIsNotStrided) {
  StreamDetector d(4);
  d.begin(1);
  for (std::uint64_t l = 0; l < 20; ++l) d.observe(0, l);
  EXPECT_FALSE(d.any_strided());
  EXPECT_TRUE(d.is_sequential(0));
}

TEST(StreamDetector, ConstantStrideOfTwoPlusLinesIsDetected) {
  StreamDetector d(4);
  d.begin(1);
  for (std::uint64_t l = 0; l < 40; l += 8) d.observe(0, l);
  EXPECT_TRUE(d.any_strided());
  EXPECT_TRUE(d.is_strided(0));
}

TEST(StreamDetector, DetectionNeedsThresholdRepeats) {
  StreamDetector d(4);
  d.begin(1);
  d.observe(0, 0);
  d.observe(0, 8);
  d.observe(0, 16);
  d.observe(0, 24);
  EXPECT_FALSE(d.any_strided());  // 3 deltas < threshold 4
  d.observe(0, 32);
  EXPECT_TRUE(d.any_strided());
}

TEST(StreamDetector, BrokenStrideResetsDetection) {
  StreamDetector d(4);
  d.begin(1);
  for (std::uint64_t l = 0; l <= 40; l += 8) d.observe(0, l);
  ASSERT_TRUE(d.any_strided());
  d.observe(0, 41);  // irregular jump
  EXPECT_FALSE(d.any_strided());
}

TEST(StreamDetector, MultipleStreamsTrackedIndependently) {
  StreamDetector d(4);
  d.begin(2);
  for (std::uint64_t i = 0; i < 10; ++i) {
    d.observe(0, i);       // sequential
    d.observe(1, i * 16);  // strided
  }
  EXPECT_FALSE(d.is_strided(0));
  EXPECT_TRUE(d.is_strided(1));
  EXPECT_TRUE(d.any_strided());
}

TEST(StreamDetector, BeginResetsState) {
  StreamDetector d(4);
  d.begin(1);
  for (std::uint64_t l = 0; l < 80; l += 8) d.observe(0, l);
  ASSERT_TRUE(d.any_strided());
  d.begin(1);
  EXPECT_FALSE(d.any_strided());
}

TEST(StreamDetector, NegativeStrideAlsoDetected) {
  StreamDetector d(4);
  d.begin(1);
  for (std::int64_t l = 1000; l > 900; l -= 8) d.observe(0, static_cast<std::uint64_t>(l));
  EXPECT_TRUE(d.any_strided());
}

}  // namespace
}  // namespace papisim::sim
