// Unit tests for the loop-replay access engine and its bypass/prefetch
// policies (the mechanisms behind the paper's Figs. 6-9).
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine.hpp"

namespace papisim::sim {
namespace {

MachineConfig test_config() {
  MachineConfig cfg;
  cfg.sockets = 1;
  cfg.cores_per_socket = 4;
  cfg.l3_slice_bytes = 1 << 20;  // 1 MB slice, 16384 lines
  cfg.l3_associativity = 16;
  return cfg;
}

struct EngineFixture : ::testing::Test {
  void SetUp() override {
    machine = std::make_unique<Machine>(test_config());
    machine->set_noise_enabled(false);
    machine->set_active_cores(0, 1);
  }
  AccessEngine& eng() { return machine->engine(0, 0); }
  std::uint64_t reads() const { return machine->memctrl(0).total_bytes(MemDir::Read); }
  std::uint64_t writes() const { return machine->memctrl(0).total_bytes(MemDir::Write); }
  std::uint64_t alloc(std::uint64_t bytes) { return machine->address_space().allocate(bytes, 64); }

  std::unique_ptr<Machine> machine;
};

constexpr std::uint64_t kN = 8192;  // elements per stream in most tests

TEST_F(EngineFixture, SequentialCopyBypassesCacheOneReadOneWrite) {
  const std::uint64_t in = alloc(kN * 8), out = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load}, {out, 8, 8, AccessKind::Store}};
  loop.iterations = kN;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.mem_read_bytes, kN * 8);   // only `in` is read
  EXPECT_EQ(st.mem_write_bytes, kN * 8);  // `out` streamed straight to memory
  EXPECT_EQ(st.bypassed_store_lines, kN * 8 / 64);
  EXPECT_EQ(st.allocated_store_lines, 0u);
  // Nothing dirty left behind: flushing adds no writes.
  machine->flush_socket(0);
  EXPECT_EQ(writes(), kN * 8);
}

TEST_F(EngineFixture, SoftwarePrefetchForcesStoreTargetToBeRead) {
  const std::uint64_t in = alloc(kN * 8), out = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load}, {out, 8, 8, AccessKind::Store}};
  loop.iterations = kN;
  loop.sw_prefetch = true;  // models GCC -fprefetch-loop-arrays (dcbtst)
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.mem_read_bytes, 2 * kN * 8);  // `in` AND `out` are read
  EXPECT_EQ(st.bypassed_store_lines, 0u);
  machine->flush_socket(0);
  EXPECT_EQ(writes(), kN * 8);  // the dirty out-lines drain at flush
}

TEST_F(EngineFixture, StridedLoadStreamDefeatsStoreBypass) {
  // S1CF loop nest 2 shape: strided load (tmp), sequential dense store (out).
  const std::uint64_t stride = 64 * 8;  // 8 lines between touches
  const std::uint64_t n = 2048;
  const std::uint64_t tmp = alloc(n * stride), out = alloc(n * 8);
  LoopDesc loop;
  loop.streams = {{tmp, static_cast<std::int64_t>(stride), 8, AccessKind::Load},
                  {out, 8, 8, AccessKind::Store}};
  loop.iterations = n;
  const LoopStats st = eng().execute(loop);
  // Stores must write-allocate: a read per stored line.
  EXPECT_GT(st.allocated_store_lines, 0u);
  // Only the first few stores (before the detector trips) may bypass.
  EXPECT_LE(st.bypassed_store_lines, 4u);
  EXPECT_GE(st.mem_read_bytes, n * 64 + (n * 8 / 64 - 4) * 64);
}

TEST_F(EngineFixture, StridedStoreStreamAllocates) {
  // Combined S1CF nest shape: sequential load, strided store.
  const std::uint64_t stride = 64 * 4;
  const std::uint64_t n = 2048;
  const std::uint64_t in = alloc(n * 8), out = alloc(n * stride);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load},
                  {out, static_cast<std::int64_t>(stride), 8, AccessKind::Store}};
  loop.iterations = n;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.bypassed_store_lines, 0u);  // non-contiguous: never a candidate
  EXPECT_EQ(st.allocated_store_lines, n);
  // Each strided store allocates a full line: read-per-write.
  EXPECT_EQ(st.mem_read_bytes, n * 8 / 64 * 64 + n * 64);
}

TEST_F(EngineFixture, LowStoreDensityDefeatsBypass) {
  // 3 load streams per store stream > bypass_max_loads_per_store (2).
  const std::uint64_t a = alloc(kN * 8), b = alloc(kN * 8), c = alloc(kN * 8),
                      out = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{a, 8, 8, AccessKind::Load},
                  {b, 8, 8, AccessKind::Load},
                  {c, 8, 8, AccessKind::Load},
                  {out, 8, 8, AccessKind::Store}};
  loop.iterations = kN;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.bypassed_store_lines, 0u);
  EXPECT_EQ(st.mem_read_bytes, 4 * kN * 8);  // 3 loads + write-allocate
}

TEST_F(EngineFixture, BypassDisabledByConfigFallsBackToAllocate) {
  MachineConfig cfg = test_config();
  cfg.store_bypass = false;
  machine = std::make_unique<Machine>(cfg);
  machine->set_noise_enabled(false);
  const std::uint64_t in = alloc(kN * 8), out = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load}, {out, 8, 8, AccessKind::Store}};
  loop.iterations = kN;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.bypassed_store_lines, 0u);
  EXPECT_EQ(st.mem_read_bytes, 2 * kN * 8);
}

TEST_F(EngineFixture, ScalarStoresAlwaysAllocate) {
  const std::uint64_t y = alloc(64);
  eng().store(y, 8);
  const LoopStats st = eng().take_scalar_stats();
  EXPECT_EQ(st.allocated_store_lines, 1u);
  EXPECT_EQ(st.mem_read_bytes, 64u);
}

TEST_F(EngineFixture, ScalarAccessSpanningTwoLinesTouchesBoth) {
  const std::uint64_t base = alloc(256);
  eng().load(base + 60, 8);  // crosses a 64 B boundary
  const LoopStats st = eng().take_scalar_stats();
  EXPECT_EQ(st.line_touches, 2u);
  EXPECT_EQ(st.mem_read_bytes, 128u);
}

TEST_F(EngineFixture, SixteenByteElementsTouchFourPerLine) {
  // double complex stream: 16 B elements, 4 per 64 B line.
  const std::uint64_t n = 4096;
  const std::uint64_t in = alloc(n * 16), out = alloc(n * 16);
  LoopDesc loop;
  loop.streams = {{in, 16, 16, AccessKind::Load}, {out, 16, 16, AccessKind::Store}};
  loop.iterations = n;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.mem_read_bytes, n * 16);
  EXPECT_EQ(st.mem_write_bytes, n * 16);
  EXPECT_EQ(st.line_touches, 2 * n * 16 / 64);
}

TEST_F(EngineFixture, ReplayMatchesElementWiseScalarReplayForLoads) {
  // Property: the bulk loop replay touches exactly the lines an element-wise
  // walk touches, for awkward strides and element sizes.
  struct Case { std::int64_t stride; std::uint32_t elem; std::uint64_t iters; };
  for (const Case c : {Case{8, 8, 1000}, Case{24, 8, 500}, Case{40, 8, 300},
                       Case{16, 16, 700}, Case{72, 8, 200}, Case{128, 8, 111}}) {
    Machine bulk(test_config());
    bulk.set_noise_enabled(false);
    Machine elem(test_config());
    elem.set_noise_enabled(false);
    const std::uint64_t base = 1 << 20;
    LoopDesc loop;
    loop.streams = {{base, c.stride, c.elem, AccessKind::Load}};
    loop.iterations = c.iters;
    const LoopStats st = bulk.engine(0, 0).execute(loop);
    for (std::uint64_t i = 0; i < c.iters; ++i) {
      elem.engine(0, 0).load(base + i * static_cast<std::uint64_t>(c.stride), c.elem);
    }
    EXPECT_EQ(st.mem_read_bytes, elem.memctrl(0).total_bytes(MemDir::Read))
        << "stride=" << c.stride << " elem=" << c.elem;
  }
}

TEST_F(EngineFixture, NegativeStrideStreamsReplayCorrectly) {
  const std::uint64_t n = 1024;
  const std::uint64_t buf = alloc(n * 8);
  LoopDesc loop;
  loop.streams = {{buf + (n - 1) * 8, -8, 8, AccessKind::Load}};
  loop.iterations = n;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.mem_read_bytes, n * 8);
  EXPECT_EQ(st.line_touches, n * 8 / 64);
}

TEST_F(EngineFixture, RepeatedExecutionHitsInCache) {
  const std::uint64_t in = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load}};
  loop.iterations = kN;  // 64 KB working set, fits the 1 MB slice
  eng().execute(loop);
  const LoopStats st2 = eng().execute(loop);
  EXPECT_EQ(st2.mem_read_bytes, 0u);
  EXPECT_EQ(st2.l3_hits, st2.line_touches);
}

TEST_F(EngineFixture, ClockAdvancesWithExecution) {
  const double t0 = machine->clock().now_ns();
  const std::uint64_t in = alloc(kN * 8);
  LoopDesc loop;
  loop.streams = {{in, 8, 8, AccessKind::Load}};
  loop.iterations = kN;
  loop.flops_per_iter = 2.0;
  const LoopStats st = eng().execute(loop);
  EXPECT_GT(st.time_ns, 0.0);
  EXPECT_DOUBLE_EQ(machine->clock().now_ns(), t0 + st.time_ns);
}

TEST_F(EngineFixture, PrefetchImprovesLoopTime) {
  // Same strided traffic with and without software prefetch: the prefetched
  // variant must be faster (higher achieved bandwidth), per paper Fig. 7b.
  const std::uint64_t stride = 64 * 8;
  const std::uint64_t n = 4096;
  auto run = [&](bool pf) {
    Machine m(test_config());
    m.set_noise_enabled(false);
    LoopDesc loop;
    loop.streams = {{1 << 20, static_cast<std::int64_t>(stride), 8, AccessKind::Load},
                    {1 << 26, 8, 8, AccessKind::Store}};
    loop.iterations = n;
    loop.sw_prefetch = pf;
    return m.engine(0, 0).execute(loop).time_ns;
  };
  EXPECT_LT(run(true), run(false));
}

TEST_F(EngineFixture, StatsAccumulateWithPlusEquals) {
  LoopStats a;
  a.line_touches = 5;
  a.mem_read_bytes = 64;
  a.time_ns = 1.5;
  LoopStats b;
  b.line_touches = 3;
  b.mem_write_bytes = 128;
  b.time_ns = 2.5;
  a += b;
  EXPECT_EQ(a.line_touches, 8u);
  EXPECT_EQ(a.mem_read_bytes, 64u);
  EXPECT_EQ(a.mem_write_bytes, 128u);
  EXPECT_DOUBLE_EQ(a.time_ns, 4.0);
}

TEST_F(EngineFixture, EmptyLoopIsANoOp) {
  LoopDesc loop;
  const LoopStats st = eng().execute(loop);
  EXPECT_EQ(st.line_touches, 0u);
  EXPECT_EQ(reads(), 0u);
}

TEST_F(EngineFixture, TooManyStreamsRejected) {
  LoopDesc loop;
  loop.iterations = 1;
  loop.streams.assign(17, StreamDesc{0, 8, 8, AccessKind::Load});
  EXPECT_THROW(eng().execute(loop), std::invalid_argument);
}

}  // namespace
}  // namespace papisim::sim
