// Unit tests for the MBA-channel memory controller.
#include <gtest/gtest.h>

#include "sim/memctrl.hpp"

namespace papisim::sim {
namespace {

TEST(MemController, LineTransactionsLandOnInterleavedChannels) {
  MemController mc(8, 64, 2);  // 128 B interleave granule
  // Lines 0,1 -> ch 0; lines 2,3 -> ch 1; ... lines 16,17 -> ch 0 again.
  mc.add_line(0, MemDir::Read);
  mc.add_line(1, MemDir::Read);
  mc.add_line(2, MemDir::Read);
  mc.add_line(16, MemDir::Read);
  EXPECT_EQ(mc.channel_bytes(0, MemDir::Read), 3u * 64u);
  EXPECT_EQ(mc.channel_bytes(1, MemDir::Read), 64u);
  EXPECT_EQ(mc.channel_bytes(2, MemDir::Read), 0u);
}

TEST(MemController, ChannelOfMatchesAddLine) {
  MemController mc(8, 64, 2);
  for (std::uint64_t line = 0; line < 64; ++line) {
    const std::uint32_t ch = mc.channel_of(line);
    const std::uint64_t before = mc.channel_bytes(ch, MemDir::Write);
    mc.add_line(line, MemDir::Write);
    EXPECT_EQ(mc.channel_bytes(ch, MemDir::Write), before + 64);
  }
}

TEST(MemController, ReadAndWriteCountersAreIndependent) {
  MemController mc(4, 64, 1);
  mc.add_line(0, MemDir::Read);
  mc.add_line(0, MemDir::Write);
  mc.add_line(0, MemDir::Write);
  EXPECT_EQ(mc.channel_bytes(0, MemDir::Read), 64u);
  EXPECT_EQ(mc.channel_bytes(0, MemDir::Write), 128u);
}

TEST(MemController, TotalsSumAllChannels) {
  MemController mc(8, 64, 2);
  for (std::uint64_t line = 0; line < 100; ++line) mc.add_line(line, MemDir::Read);
  EXPECT_EQ(mc.total_bytes(MemDir::Read), 6400u);
  EXPECT_EQ(mc.total_bytes(MemDir::Write), 0u);
}

TEST(MemController, SpreadDistributesExactByteCount) {
  MemController mc(8, 64, 2);
  mc.add_spread(1000, MemDir::Write);
  mc.add_spread(1000, MemDir::Write);
  EXPECT_EQ(mc.total_bytes(MemDir::Write), 2000u);
  // Even split plus a small remainder somewhere.
  std::uint64_t max_ch = 0, min_ch = ~0ull;
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    max_ch = std::max(max_ch, mc.channel_bytes(ch, MemDir::Write));
    min_ch = std::min(min_ch, mc.channel_bytes(ch, MemDir::Write));
  }
  EXPECT_LE(max_ch - min_ch, 2 * (1000u % 8u));
}

TEST(MemController, SnapshotMatchesCounters) {
  MemController mc(8, 64, 2);
  mc.add_line(5, MemDir::Read);
  mc.add_line(9, MemDir::Write);
  const auto snap = mc.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  for (std::uint32_t ch = 0; ch < 8; ++ch) {
    EXPECT_EQ(snap[ch][0], mc.channel_bytes(ch, MemDir::Read));
    EXPECT_EQ(snap[ch][1], mc.channel_bytes(ch, MemDir::Write));
  }
}

TEST(MemController, RejectsZeroChannels) {
  EXPECT_THROW(MemController(0, 64, 2), std::invalid_argument);
}

}  // namespace
}  // namespace papisim::sim
