// Machine-level tests: socket composition, noise accrual, flushing, and the
// interaction of engines across sockets.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace papisim::sim {
namespace {

TEST(Machine, SocketsHaveIndependentCountersAndCaches) {
  Machine m(MachineConfig::summit());
  m.set_noise_enabled(false);
  LoopDesc loop;
  loop.iterations = 4096;
  loop.streams = {{1 << 20, 8, 8, AccessKind::Load}};
  m.engine(0, 0).execute(loop);
  EXPECT_GT(m.memctrl(0).total_bytes(MemDir::Read), 0u);
  EXPECT_EQ(m.memctrl(1).total_bytes(MemDir::Read), 0u);
  // Same addresses from socket 1 miss independently (separate L3s).
  m.engine(1, 0).execute(loop);
  EXPECT_EQ(m.memctrl(1).total_bytes(MemDir::Read),
            m.memctrl(0).total_bytes(MemDir::Read));
}

TEST(Machine, AdvanceAccruesNoiseOnEverySocket) {
  Machine m(MachineConfig::summit());
  m.advance(1e9);
  EXPECT_GT(m.memctrl(0).total_bytes(MemDir::Read), 0u);
  EXPECT_GT(m.memctrl(1).total_bytes(MemDir::Read), 0u);
  EXPECT_DOUBLE_EQ(m.clock().now_ns(), 1e9);
}

TEST(Machine, NoiseSequencesDifferAcrossSockets) {
  Machine m(MachineConfig::summit());
  m.noise(0).repetition_overhead();
  m.noise(1).repetition_overhead();
  EXPECT_NE(m.memctrl(0).total_bytes(MemDir::Read),
            m.memctrl(1).total_bytes(MemDir::Read));
}

TEST(Machine, NoiseSeedsDifferAcrossSystemPresets) {
  EXPECT_NE(MachineConfig::summit().noise.seed, MachineConfig::tellico().noise.seed);
  EXPECT_NE(MachineConfig::summit().noise.seed,
            MachineConfig::power10_preview().noise.seed);
}

TEST(Machine, FlushAllDrainsEverySocket) {
  Machine m(MachineConfig::summit());
  m.set_noise_enabled(false);
  m.engine(0, 0).store(1 << 20, 8);
  m.engine(0, 0).take_scalar_stats();
  m.engine(1, 3).store(1 << 21, 8);
  m.engine(1, 3).take_scalar_stats();
  m.flush_all();
  EXPECT_EQ(m.memctrl(0).total_bytes(MemDir::Write), 64u);
  EXPECT_EQ(m.memctrl(1).total_bytes(MemDir::Write), 64u);
}

TEST(Machine, EnginesAreStablePerCore) {
  Machine m(MachineConfig::tellico());
  EXPECT_EQ(&m.engine(0, 0), &m.engine(0, 0));
  EXPECT_NE(&m.engine(0, 0), &m.engine(0, 1));
  EXPECT_NE(&m.engine(0, 0), &m.engine(1, 0));
  EXPECT_EQ(m.engine(0, 5).core(), 5u);
}

TEST(Machine, Power10PreviewGeometry) {
  Machine m(MachineConfig::power10_preview());
  EXPECT_EQ(m.config().mem_channels, 16u);
  EXPECT_EQ(m.cores_per_socket(), 15u);
  EXPECT_EQ(m.config().cpus_per_socket(), 128u);  // 16 physical x SMT8
  EXPECT_EQ(m.socket_of_cpu(127), 0u);
  EXPECT_EQ(m.socket_of_cpu(128), 1u);
  EXPECT_FALSE(m.user_credentials().privileged());
}

TEST(Machine, SetActiveCoresChangesVictimCapacityImmediately) {
  Machine m(MachineConfig::summit());
  m.set_noise_enabled(false);
  m.set_active_cores(0, 1);
  EXPECT_GT(m.l3(0).victim_store().capacity_lines(), 0u);
  m.set_active_cores(0, m.cores_per_socket());
  EXPECT_EQ(m.l3(0).victim_store().capacity_lines(), 0u);
}

}  // namespace
}  // namespace papisim::sim
