// Concurrency stress test: eight host threads hammer one L3Fabric +
// MemController with a mixed load/store/prefetch pattern, two threads per
// simulated core so the per-stripe mutexes see real same-stripe contention.
// Run under TSan (the `tsan` CMake preset) this is the data-race harness for
// the striped fabric; under any build it checks the conservation laws the
// commutative-atomics design guarantees regardless of interleaving:
//
//   * every access hits exactly one slice lookup,
//   * memory traffic observed by the controller == the sum of the per-thread
//     Traffic out-params (no lost or double-counted lines),
//   * victim recoveries / retention misses never exceed what the miss
//     counts allow, and
//   * flush_all leaves every slice and victim partition empty.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/config.hpp"
#include "sim/l3fabric.hpp"
#include "sim/memctrl.hpp"

namespace papisim::sim {
namespace {

constexpr std::uint32_t kThreads = 8;
constexpr std::uint32_t kCores = 4;
constexpr std::uint64_t kOpsPerThread = 20000;

MachineConfig stress_config() {
  MachineConfig cfg = MachineConfig::tellico();
  cfg.cores_per_socket = kCores;
  cfg.physical_cores_per_socket = kCores;
  cfg.l3_slice_bytes = 64 * 128;  // 128 lines/slice: constant eviction churn
  cfg.l3_associativity = 4;
  return cfg;
}

struct ThreadTally {
  L3Fabric::Traffic traffic;
  std::uint64_t ops = 0;
};

TEST(ConcurrencyStress, EightThreadsConserveTrafficAndLookups) {
  const MachineConfig cfg = stress_config();
  MemController mem(cfg.mem_channels, cfg.line_bytes, cfg.channel_interleave_lines);
  L3Fabric l3(cfg, mem);
  l3.set_active_cores(kCores);

  std::vector<ThreadTally> tallies(kThreads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(kThreads);
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        // Two threads share each core, so each stripe mutex is genuinely
        // contended.  Per-thread line ranges overlap within a core (same
        // base) to also contend on set state, not just the lock.
        const std::uint32_t core = t % kCores;
        const std::uint64_t base = static_cast<std::uint64_t>(core) << 32;
        ThreadTally& tally = tallies[t];
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
          const std::uint64_t line = base + (i * 7 + t) % 4096;
          switch (i % 3) {
            case 0:
              l3.load_line(core, line, &tally.traffic);
              break;
            case 1:
              l3.store_line(core, line, &tally.traffic);
              break;
            default:
              l3.prefetch_line(core, line, &tally.traffic);
              break;
          }
          ++tally.ops;
        }
      });
    }
  }  // jthreads join here

  L3Fabric::Traffic total;
  std::uint64_t total_ops = 0;
  for (const ThreadTally& tally : tallies) {
    total.read_lines += tally.traffic.read_lines;
    total.write_lines += tally.traffic.write_lines;
    total_ops += tally.ops;
  }

  // Every access performed exactly one slice lookup.
  EXPECT_EQ(total_ops, kThreads * kOpsPerThread);
  EXPECT_EQ(l3.total_slice_lookups(), total_ops);

  // The controller saw exactly the lines the threads accounted -- byte for
  // byte, independent of interleaving.
  EXPECT_EQ(mem.total_bytes(MemDir::Read), total.read_lines * cfg.line_bytes);
  EXPECT_EQ(mem.total_bytes(MemDir::Write), total.write_lines * cfg.line_bytes);

  // Channel totals sum back to the direction totals (spread cursor is atomic,
  // so no increment can be lost to a torn update).
  std::uint64_t chan_read = 0;
  std::uint64_t chan_write = 0;
  for (std::uint32_t ch = 0; ch < cfg.mem_channels; ++ch) {
    chan_read += mem.channel_bytes(ch, MemDir::Read);
    chan_write += mem.channel_bytes(ch, MemDir::Write);
  }
  EXPECT_EQ(chan_read, mem.total_bytes(MemDir::Read));
  EXPECT_EQ(chan_write, mem.total_bytes(MemDir::Write));

  // Sanity on the victim path: recoveries can't outnumber memory reads
  // avoided, retention misses can't outnumber lookups.
  EXPECT_LE(l3.victim_recoveries(), total_ops);
  EXPECT_LE(l3.victim_retention_misses(), total_ops);

  l3.flush_all();
  for (std::uint32_t c = 0; c < kCores; ++c) {
    EXPECT_EQ(l3.slice(c).valid_lines(), 0u) << "slice " << c;
  }
}

TEST(ConcurrencyStress, DisjointCoresNeedNoCrossStripeCoordination) {
  // One thread per core over fully disjoint footprints: the serial replay of
  // the same schedule must land on identical per-core hit/miss counters,
  // because stripes share no mutable state.
  const MachineConfig cfg = stress_config();

  auto run = [&](bool parallel) {
    MemController mem(cfg.mem_channels, cfg.line_bytes, cfg.channel_interleave_lines);
    L3Fabric l3(cfg, mem);
    l3.set_active_cores(kCores);
    auto body = [&](std::uint32_t core) {
      const std::uint64_t base = static_cast<std::uint64_t>(core) << 32;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t line = base + (i * 5) % 1024;
        if (i % 2 == 0) {
          l3.load_line(core, line);
        } else {
          l3.store_line(core, line);
        }
      }
    };
    if (parallel) {
      std::vector<std::jthread> workers;
      for (std::uint32_t c = 0; c < kCores; ++c) workers.emplace_back(body, c);
    } else {
      for (std::uint32_t c = 0; c < kCores; ++c) body(c);
    }
    std::vector<std::uint64_t> out;
    for (std::uint32_t c = 0; c < kCores; ++c) {
      out.push_back(l3.slice(c).hits());
      out.push_back(l3.slice(c).misses());
    }
    out.push_back(mem.total_bytes(MemDir::Read));
    out.push_back(mem.total_bytes(MemDir::Write));
    return out;
  };

  EXPECT_EQ(run(/*parallel=*/false), run(/*parallel=*/true));
}

}  // namespace
}  // namespace papisim::sim
