// End-to-end integration tests across the full stack: machine + PMCD +
// components + library + sampler + workloads.
#include <gtest/gtest.h>

#include <memory>

#include "components/cpu_component.hpp"
#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/sampler.hpp"
#include "fft/fft3d.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/expected.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "qmc/qmc_app.hpp"

namespace papisim {
namespace {

/// Full Summit software stack with every component registered.
struct FullStack {
  FullStack()
      : machine(sim::MachineConfig::summit()),
        daemon(machine),
        client(daemon, machine, machine.user_credentials()),
        gpu(gpu::GpuConfig{}, machine, 0, 0),
        nic(net::NicConfig{}),
        comm(machine, nic) {
    lib.register_component(std::make_unique<components::PcpComponent>(client));
    lib.register_component(std::make_unique<components::PerfNestComponent>(
        machine, machine.user_credentials()));
    lib.register_component(std::make_unique<components::NvmlComponent>(
        std::vector<gpu::GpuDevice*>{&gpu}));
    lib.register_component(std::make_unique<components::InfinibandComponent>(
        std::vector<net::Nic*>{&nic}));
    lib.register_component(std::make_unique<components::CpuComponent>(machine));
  }
  sim::Machine machine;
  pcp::Pmcd daemon;
  pcp::PcpClient client;
  gpu::GpuDevice gpu;
  net::Nic nic;
  mpi::JobComm comm;
  Library lib;
};

TEST(Integration, FiveComponentsRegisterWithExpectedAvailability) {
  FullStack s;
  EXPECT_EQ(s.lib.components().size(), 5u);
  EXPECT_TRUE(s.lib.component("pcp").available());
  EXPECT_FALSE(s.lib.component("perf_nest").available());  // unprivileged
  EXPECT_TRUE(s.lib.component("nvml").available());
  EXPECT_TRUE(s.lib.component("infiniband").available());
  EXPECT_TRUE(s.lib.component("cpu").available());
}

TEST(Integration, MeasurementsAreReproducibleAcrossIdenticalStacks) {
  // Two fresh stacks with the same seeds, noise ON: the measured values of
  // an identical experiment must match bit-for-bit (the simulator's
  // determinism guarantee that makes EXPERIMENTS.md reproducible).
  auto run = [] {
    FullStack s;
    kernels::KernelRunner runner(s.machine, s.lib, "pcp", 87);
    const kernels::GemmBuffers buf =
        kernels::GemmBuffers::allocate(s.machine.address_space(), 160);
    kernels::RunnerOptions opt;
    opt.reps = 25;
    const kernels::Measurement m = runner.measure(
        [&](std::uint32_t core) { kernels::run_gemm(s.machine, 0, core, 160, buf); },
        opt);
    return std::pair{m.read_bytes, m.write_bytes};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

TEST(Integration, CpuAndPcpEventSetsObserveTheSameKernelConsistently) {
  FullStack s;
  s.machine.set_noise_enabled(false);
  s.machine.set_active_cores(0, s.machine.cores_per_socket());

  auto mem = s.lib.create_eventset();
  for (int ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    mem->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                   "_READ_BYTES.value:cpu87");
  }
  auto cpu = s.lib.create_eventset();
  cpu->add_event("cpu:::PAPI_FP_OPS:core=0");
  cpu->add_event("cpu:::PAPI_L3_TCM:core=0");

  mem->start();
  cpu->start();
  const std::uint64_t n = 96;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(s.machine.address_space(), n);
  kernels::run_gemm(s.machine, 0, 0, n, buf);
  const auto memv = mem->read();
  const auto cpuv = cpu->read();
  mem->stop();
  cpu->stop();

  long long mem_reads = 0;
  for (const long long v : memv) mem_reads += v;
  EXPECT_EQ(cpuv[0], static_cast<long long>(2 * n * n * n));  // exact flops
  // Every L3 miss of the measured core became a 64-byte nest read.
  EXPECT_EQ(mem_reads, 64 * cpuv[1]);
}

TEST(Integration, QmcProfileSeparatesStagesOnAllThreeAxes) {
  FullStack s;
  auto mem = s.lib.create_eventset();
  mem->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  auto power = s.lib.create_eventset();
  power->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  auto network = s.lib.create_eventset();
  network->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");

  Sampler sampler(s.machine.clock());
  sampler.add_eventset(*mem);
  sampler.add_eventset(*power);
  sampler.add_eventset(*network);

  qmc::QmcConfig cfg;
  cfg.walkers = 32;
  cfg.electrons = 16;
  cfg.spline_table_bytes = 4 << 20;
  qmc::QmcApp app(s.machine, cfg, &s.gpu, &s.comm);

  sampler.start_all();
  sampler.sample();
  app.run([&] { sampler.sample(); });
  sampler.stop_all();

  ASSERT_EQ(app.phases().size(), 3u);
  ASSERT_GE(sampler.rows().size(), 3u);
  // Memory counter grows monotonically; network stays zero until DMC.
  const auto& rows = sampler.rows();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].values[0], rows[i - 1].values[0]);
    EXPECT_GE(rows[i].values[2], rows[i - 1].values[2]);
  }
  const double dmc_start = app.phases()[2].t0_sec;
  for (const TimelineRow& row : rows) {
    if (row.t_sec <= dmc_start) {
      EXPECT_EQ(row.values[2], 0);
    }
  }
  EXPECT_GT(rows.back().values[2], 0);
}

TEST(Integration, FftPipelineUnderSamplerKeepsTimeAndPhasesAligned) {
  FullStack s;
  auto mem = s.lib.create_eventset();
  mem->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87");
  Sampler sampler(s.machine.clock());
  sampler.add_eventset(*mem);

  fft::Fft3dConfig cfg;
  cfg.n = 128;
  cfg.grid = {2, 4};
  cfg.use_gpu = true;
  fft::DistributedFft3d app(s.machine, cfg, &s.gpu, &s.comm);
  sampler.start_all();
  app.run_forward([&] { sampler.sample(); });
  sampler.stop_all();

  // Sample timestamps are monotonic and span the pipeline's phases.
  const auto& rows = sampler.rows();
  ASSERT_GT(rows.size(), 9u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].t_sec, rows[i - 1].t_sec);
  }
  EXPECT_GE(rows.back().t_sec, app.phases().back().t0_sec);
}

TEST(Integration, Power10PreviewStackWorksEndToEnd) {
  sim::Machine machine(sim::MachineConfig::power10_preview());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  // 16 OMI channels x {READ,WRITE} x {BYTES,REQS} metrics.
  EXPECT_EQ(lib.component("pcp").events().size(), 64u);
  auto es = lib.create_eventset();
  es->add_event(
      "pcp:::perfevent.hwcounters.nest_mba15_imc.PM_MBA15_READ_BYTES.value:cpu0");
  es->start();
  machine.memctrl(0).add_line(30, sim::MemDir::Read);  // granule 15 -> ch 15
  EXPECT_EQ(es->read()[0], 64);
  es->stop();
}

}  // namespace
}  // namespace papisim
