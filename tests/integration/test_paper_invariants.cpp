// Integration tests pinning the three memory-traffic mechanisms the paper
// measures with the nest counters (DESIGN.md §3):
//
//  1. Write-allocate: without the streaming-store bypass a copy loop reads
//     every destination line before writing it, so a 1-load/1-store copy
//     costs TWO reads per line of stores ("the read incurred by the hardware
//     when writing", paper §IV).
//  2. The bypass eliminates exactly that allocate read: same loop, bypass on,
//     reads halve and the stores go straight to memory.
//  3. The L3 traffic knee sits at the slice capacity when the whole socket is
//     active (no lateral cast-out headroom), but a lone core spills into the
//     idle cores' slices and keeps re-read traffic low well past its own
//     slice size (paper Figs. 2-4).
#include <gtest/gtest.h>

#include "sim/access_engine.hpp"
#include "sim/machine.hpp"
#include "testing/machine_builder.hpp"
#include "testing/traffic_matchers.hpp"

namespace papisim::sim {
namespace {

namespace ts = papisim::test_support;

constexpr std::uint64_t kIters = 1 << 14;               // 16 Ki elements
constexpr std::uint64_t kBytes = kIters * 8;            // 128 KiB per stream

LoopDesc copy_loop() { return ts::copy_loop(kIters); }

TEST(PaperInvariants, WriteAllocateCostsTwoReadsPerStoredLine) {
  MachineConfig cfg = MachineConfig::summit();
  cfg.store_bypass = false;
  Machine m(cfg);
  m.set_noise_enabled(false);

  const LoopStats st = m.engine(0, 0).execute(copy_loop());

  // One demand read per source line plus one allocate read per destination
  // line: 2x the copied bytes.  Both streams fit the 5 MB slice, so no
  // eviction write-backs happen during the loop.
  EXPECT_EQ(st.mem_read_bytes, 2 * kBytes);
  EXPECT_EQ(st.mem_write_bytes, 0u);
  EXPECT_EQ(st.allocated_store_lines, kBytes / cfg.line_bytes);
  EXPECT_EQ(st.bypassed_store_lines, 0u);

  // The dirty destination lines drain at flush: exactly the copied bytes.
  m.flush_socket(0);
  EXPECT_EQ(m.memctrl(0).total_bytes(MemDir::Write), kBytes);
  EXPECT_EQ(m.memctrl(0).total_bytes(MemDir::Read), 2 * kBytes);
}

TEST(PaperInvariants, StoreBypassEliminatesTheAllocateRead) {
  MachineConfig cfg = MachineConfig::summit();
  cfg.store_bypass = true;
  Machine m(cfg);
  m.set_noise_enabled(false);

  const LoopStats st = m.engine(0, 0).execute(copy_loop());

  // Only the demand reads remain; the dense store stream streams to memory.
  EXPECT_EQ(st.mem_read_bytes, kBytes);
  EXPECT_EQ(st.mem_write_bytes, kBytes);
  EXPECT_EQ(st.bypassed_store_lines, kBytes / cfg.line_bytes);
  EXPECT_EQ(st.allocated_store_lines, 0u);

  // Nothing dirty is cached, so the flush adds no further write traffic.
  m.flush_socket(0);
  EXPECT_EQ(m.memctrl(0).total_bytes(MemDir::Write), kBytes);
  EXPECT_EQ(m.memctrl(0).total_bytes(MemDir::Read), kBytes);
}

/// Re-read traffic of a second sequential sweep over `footprint_bytes` with
/// `active` cores declared busy on the socket.
std::uint64_t second_pass_read_bytes(std::uint32_t active,
                                     std::uint64_t footprint_bytes) {
  const MachineConfig cfg = ts::MachineBuilder::knee().config();
  Machine m(cfg);
  m.set_noise_enabled(false);
  m.set_active_cores(0, active);

  LoopDesc loop;
  loop.iterations = footprint_bytes / cfg.line_bytes;
  loop.streams = {{0, cfg.line_bytes, 8, AccessKind::Load}};  // one line/iter

  m.engine(0, 0).execute(loop);  // warm: populate slice (+ victim overflow)
  return m.engine(0, 0).execute(loop).mem_read_bytes;
}

TEST(PaperInvariants, L3KneeAtSliceCapacityOnlyWhenSocketIsFull) {
  const std::uint64_t slice = 64 * 1024;

  // Below the slice the re-read traffic is (near) zero regardless of
  // contention; the hashed set index lets a handful of sets overflow their
  // associativity early, so allow a few per-mille of conflict misses.
  EXPECT_LE(second_pass_read_bytes(/*active=*/4, slice / 2), slice / 2 / 20);
  EXPECT_LE(second_pass_read_bytes(/*active=*/1, slice / 2), slice / 2 / 20);

  // Past the slice with every core active the victim store has zero
  // capacity: the sequential sweep re-reads essentially the whole footprint
  // (the sharp knee of the fully-batched GEMM, Fig. 4).
  const std::uint64_t contended = second_pass_read_bytes(/*active=*/4, 2 * slice);
  EXPECT_GE(contended, 2 * slice * 9 / 10);

  // A lone core spills into the three idle slices via lateral cast-out and
  // recovers its victims: traffic stays a small fraction of the contended
  // case (the gradual degradation of the single GEMM, Fig. 2).
  const std::uint64_t lone = second_pass_read_bytes(/*active=*/1, 2 * slice);
  EXPECT_LT(lone, contended / 5);
}

}  // namespace
}  // namespace papisim::sim
