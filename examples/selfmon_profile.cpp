// Profiling the profiler: the selfmon component carries the harness's own
// runtime costs (PMCD round-trip latency, replay-pool dispatch, L3 stripe
// contention) through the same multi-component Sampler as the pcp memory
// traffic it is measuring -- the paper's "cost of indirect measurement"
// concern, observed with the paper's own mechanism.
//
// Build & run:  ./build/examples/selfmon_profile
// Then load selfmon_trace.json at chrome://tracing (or ui.perfetto.dev):
// selfmon histogram columns render as .p50/.p95/.p99 counter tracks.
#include <cstdio>
#include <fstream>
#include <memory>

#include "components/pcp_component.hpp"
#include "components/selfmon_component.hpp"
#include "core/regions.hpp"
#include "core/trace_export.hpp"
#include "kernels/blas_sim.hpp"
#include "kernels/runner.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "selfmon/metrics.hpp"

using namespace papisim;

int main() {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::SelfmonComponent>());

  if (!selfmon::kEnabled) {
    std::printf("selfmon was compiled out (-DPAPISIM_SELFMON=OFF); "
                "rebuild with it ON to run this example.\n");
    return 0;
  }

  // One Sampler, two domains: what the machine did (pcp) and what the
  // harness spent doing it (selfmon).
  auto pcp_set = lib.create_eventset();
  pcp_set->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  pcp_set->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87");
  auto self_set = lib.create_eventset();
  self_set->add_event("selfmon:::pcp.fetch_rtt_ns");
  self_set->add_event("selfmon:::runner.reps");
  self_set->add_event("selfmon:::l3.stripe_acquisitions");

  Sampler sampler(machine.clock());
  sampler.add_eventset(*pcp_set);
  sampler.add_eventset(*self_set);
  sampler.start_all();

  // The measured workload: GEMM repetitions through the KernelRunner, which
  // itself is selfmon-instrumented (runner.reps / runner.rep_ns).
  kernels::KernelRunner runner(machine, lib, "pcp", 87);
  const std::uint64_t n = 256;
  const kernels::GemmBuffers buf =
      kernels::GemmBuffers::allocate(machine.address_space(), n);
  sampler.sample();
  for (int step = 0; step < 4; ++step) {
    kernels::RunnerOptions opt;
    opt.reps = 3;
    (void)runner.measure(
        [&](std::uint32_t core) { kernels::run_gemm(machine, 0, core, n, buf); },
        opt);
    sampler.sample();
  }
  sampler.stop_all();

  // RegionProfiler mixing both domains, the acceptance scenario.
  RegionProfiler prof(lib, machine.clock());
  prof.add_events({
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
      "selfmon:::pcp.requests_served",
      "selfmon:::l3.stripe_contention",
  });
  prof.start();
  {
    auto gemm = prof.region("gemm");
    kernels::run_gemm(machine, 0, 0, n, buf);
    machine.flush_socket(0);
  }
  prof.stop();

  std::printf("%-10s %14s %18s %18s\n", "region", "ch0_read_B",
              "pmcd_reqs_served", "l3_contention");
  for (const RegionStats& r : prof.report()) {
    std::printf("%-10s %14.0f %18.0f %18.0f\n", r.path.c_str(), r.inclusive[0],
                r.inclusive[1], r.inclusive[2]);
  }

  // The harness's own cost profile, straight from the registry.
  const selfmon::Snapshot snap = selfmon::snapshot();
  const selfmon::HistSnapshot& rtt = snap.hist(selfmon::HistId::PcpFetchRttNs);
  std::printf("\nPMCD fetches: %llu served, RTT p50=%.0f ns p95=%.0f ns "
              "p99=%.0f ns (host wall-clock)\n",
              static_cast<unsigned long long>(
                  snap.counter(selfmon::CounterId::PcpRequestsServed)),
              rtt.percentile(0.50), rtt.percentile(0.95), rtt.percentile(0.99));
  std::printf("kernel reps: %llu total, %llu fully replayed, %llu "
              "extrapolated from recorded traffic (Eq. 5 amortization)\n",
              static_cast<unsigned long long>(
                  snap.counter(selfmon::CounterId::RunnerReps)),
              static_cast<unsigned long long>(
                  snap.counter(selfmon::CounterId::RunnerRepsReplayed)),
              static_cast<unsigned long long>(
                  snap.counter(selfmon::CounterId::RunnerRepsExtrapolated)));

  std::ofstream trace("selfmon_trace.json");
  write_chrome_trace(trace, sampler, {}, "selfmon-profile");
  std::printf("\nwrote selfmon_trace.json -- selfmon:::pcp.fetch_rtt_ns "
              "renders as .p50/.p95/.p99 counter tracks.\n");
  return 0;
}
