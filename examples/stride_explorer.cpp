// Stride explorer: the micro-architectural behaviours the paper dissects,
// on one screen.  Replays copy-like loops under different access patterns
// and prints the resulting memory traffic per 8-byte element:
//
//   * sequential copy                -> stores bypass the cache: 1 read, 1 write
//   * copy with a strided load       -> the detected Stride-N stream defeats
//     the bypass AND each strided element drags in a full 64 B line:
//     8 (load lines) + 1 (write-allocate) reads
//   * strided stores                 -> write-allocate a full line per
//     element: 9 reads, 8 writes (the cost Listing 8 pays on its out array)
//   * sequential + dcbtst prefetch   -> the store target is read too: 2 reads
//   * sparse stores (3 loads/store)  -> density too low to stream: 4 reads
//
// Build & run:  ./build/examples/stride_explorer
//
// With --spe, each scenario also runs with a per-access sampler attached
// (period 1/64) and prints its top-3 hot address buckets -- the same
// footprint machinery papisim-analyze --footprint uses, minus the phase
// segmentation (one window covering the whole replay).
#include <cstdio>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/footprint.hpp"
#include "sim/machine.hpp"
#include "spe/collector.hpp"

using namespace papisim;

namespace {

struct Scenario {
  std::string name;
  sim::LoopDesc loop;
  std::uint64_t payload_bytes;
};

void print_footprint(const spe::SpeCollector& collector,
                     const std::vector<spe::Sample>& samples) {
  const std::vector<analysis::PhaseWindow> all = {
      {"all", 0.0, std::numeric_limits<double>::max()}};
  analysis::FootprintConfig cfg;
  cfg.period = collector.period();
  cfg.top_k = 3;
  const analysis::FootprintReport fp = analysis::footprint(samples, all, cfg);
  if (fp.phases.empty() || fp.phases[0].buckets.empty()) {
    std::printf("    (no samples)\n");
    return;
  }
  const analysis::PhaseFootprint& ph = fp.phases[0];
  for (const analysis::FootprintBucket& b : ph.buckets) {
    std::printf("    hot 0x%08llx+%lluKiB  %-10s %5.1f%%  (~%llu KiB touched)\n",
                static_cast<unsigned long long>(b.base),
                static_cast<unsigned long long>(cfg.bucket_bytes >> 10),
                spe::to_string(b.dominant_level()),
                100.0 * static_cast<double>(b.samples) /
                    static_cast<double>(ph.samples),
                static_cast<unsigned long long>(b.est_bytes / 1024.0));
  }
}

void run(const Scenario& s, bool with_spe) {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  machine.set_active_cores(0, machine.cores_per_socket());
  std::optional<spe::SpeCollector> collector;
  if (with_spe) {
    spe::SpeConfig spe_cfg;
    spe_cfg.period = 64;
    collector.emplace(machine, spe_cfg);
  }
  machine.engine(0, 0).execute(s.loop);
  machine.flush_socket(0);
  const double reads =
      static_cast<double>(machine.memctrl(0).total_bytes(sim::MemDir::Read));
  const double writes =
      static_cast<double>(machine.memctrl(0).total_bytes(sim::MemDir::Write));
  std::printf("%-34s %12.2f %12.2f\n", s.name.c_str(),
              reads / s.payload_bytes, writes / s.payload_bytes);
  if (collector) print_footprint(*collector, collector->drain());
}

}  // namespace

int main(int argc, char** argv) {
  bool with_spe = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--spe") with_spe = true;
  }
  if (with_spe && !spe::kEnabled) {
    std::printf("note: spe sampling compiled out (PAPISIM_SPE=OFF); "
                "footprints will be empty\n");
  }
  constexpr std::uint64_t kElems = 1 << 21;  // 16 MB payload per stream
  constexpr std::uint64_t kBytes = kElems * 8;
  // Fixed simulated addresses; each scenario uses a fresh machine.
  constexpr std::uint64_t a = 1ull << 24, b = 1ull << 28;

  std::vector<Scenario> scenarios;

  scenarios.push_back({"sequential copy (bypass)",
                       {{{a, 8, 8, sim::AccessKind::Load},
                         {b, 8, 8, sim::AccessKind::Store}},
                        kElems, 0.0, false},
                       kBytes});

  scenarios.push_back({"copy + strided load (no bypass)",
                       {{{a, 512, 8, sim::AccessKind::Load},
                         {b, 8, 8, sim::AccessKind::Store}},
                        kElems, 0.0, false},
                       kBytes});

  scenarios.push_back({"strided stores (write-allocate)",
                       {{{a, 8, 8, sim::AccessKind::Load},
                         {b, 512, 8, sim::AccessKind::Store}},
                        kElems, 0.0, false},
                       kBytes});

  scenarios.push_back({"sequential copy + dcbtst prefetch",
                       {{{a, 8, 8, sim::AccessKind::Load},
                         {b, 8, 8, sim::AccessKind::Store}},
                        kElems, 0.0, true},
                       kBytes});

  {
    // 16 load streams per store stream: density too low to stream.
    sim::LoopDesc loop;
    for (std::uint64_t k = 0; k < 3; ++k) {
      loop.streams.push_back({a + k * (1ull << 30), 8, 8, sim::AccessKind::Load});
    }
    loop.streams.push_back({b, 8, 8, sim::AccessKind::Store});
    loop.iterations = kElems;
    scenarios.push_back({"sparse stores (3 loads per store)", loop, kBytes});
  }

  std::printf("replaying %llu-element loops on a busy POWER9 socket\n\n",
              static_cast<unsigned long long>(kElems));
  std::printf("%-34s %12s %12s\n", "scenario", "reads/elem", "writes/elem");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (const Scenario& s : scenarios) run(s, with_spe);

  std::printf(
      "\nReads/elem > 1 means the store target was read from memory first\n"
      "(write-allocate or software prefetch); exactly 1 means the streaming\n"
      "stores bypassed the cache -- the behaviours behind Figs. 6-9 of the\n"
      "reproduced paper.\n");
  return 0;
}
