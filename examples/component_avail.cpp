// component_avail: papisim's analogue of PAPI's `papi_avail` /
// `papi_native_avail` utilities -- lists every registered component, its
// availability, and all native events it exposes on this (simulated) system.
//
// Build & run:  ./build/examples/component_avail [--summit|--tellico|--power10]
#include <cstdio>
#include <cstring>
#include <memory>

#include "components/cpu_component.hpp"
#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/library.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

using namespace papisim;

int main(int argc, char** argv) {
  sim::MachineConfig cfg = sim::MachineConfig::summit();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tellico") == 0) cfg = sim::MachineConfig::tellico();
    if (std::strcmp(argv[i], "--power10") == 0) {
      cfg = sim::MachineConfig::power10_preview();
    }
  }

  sim::Machine machine(cfg);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  gpu::GpuDevice gpu(gpu::GpuConfig{}, machine, 0, 0);
  net::Nic nic(net::NicConfig{});

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      machine, machine.user_credentials()));
  lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu}));
  lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic}));
  lib.register_component(std::make_unique<components::CpuComponent>(machine));

  std::printf("Available components on '%s' (user uid %u)\n",
              cfg.name.c_str(), cfg.user_uid);
  std::printf("%s\n", std::string(74, '=').c_str());
  for (Component* c : lib.components()) {
    std::printf("\n%s -- %s\n", c->name().c_str(), c->description().c_str());
    if (!c->available()) {
      std::printf("  DISABLED: %s\n", c->disabled_reason().c_str());
      continue;
    }
    const auto events = c->events();
    std::printf("  %zu native events:\n", events.size());
    for (const EventInfo& ev : events) {
      std::printf("    %-72s [%s%s]\n", ev.name.c_str(), ev.units.c_str(),
                  ev.instantaneous ? ", gauge" : "");
    }
  }
  return 0;
}
