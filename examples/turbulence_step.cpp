// Domain example: a pseudo-spectral turbulence timestep (the GESTS/HACC
// class of applications the paper's Section IV motivates as 3D-FFT
// workhorses).  Each step runs a forward distributed 3D-FFT, spectral-space
// work, an inverse transform, and a real-space nonlinear term -- all
// profiled through the multi-component API, with the timeline exported as a
// Chrome trace (open turbulence_trace.json at chrome://tracing).
//
// Build & run:  ./build/examples/turbulence_step
#include <cstdio>
#include <fstream>
#include <memory>

#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "core/sampler.hpp"
#include "core/trace_export.hpp"
#include "fft/fft3d.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

using namespace papisim;

int main() {
  sim::Machine machine(sim::MachineConfig::summit());
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  gpu::GpuDevice gpu(gpu::GpuConfig{}, machine, 0, 0);
  net::Nic nic(net::NicConfig{});
  mpi::JobComm comm(machine, nic);

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu}));
  lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic}));

  auto mem = lib.create_eventset();
  mem->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  mem->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87");
  auto power = lib.create_eventset();
  power->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  auto network = lib.create_eventset();
  network->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");

  Sampler sampler(machine.clock());
  sampler.add_eventset(*mem);
  sampler.add_eventset(*power);
  sampler.add_eventset(*network);

  fft::Fft3dConfig cfg;
  cfg.n = 512;
  cfg.grid = {4, 8};
  cfg.use_gpu = true;
  cfg.ticks_per_phase = 2;
  fft::DistributedFft3d forward(machine, cfg, &gpu, &comm);

  const fft::RankDims dims = forward.dims();
  const std::uint64_t field = machine.address_space().allocate(dims.bytes());
  const std::uint64_t scratch = machine.address_space().allocate(dims.bytes());
  sim::AccessEngine& eng = machine.engine(0, 0);

  std::vector<TraceSpan> spans;
  auto run_phase = [&](const char* name, auto&& body) {
    TraceSpan span;
    span.name = name;
    span.track = "timestep";
    span.t0_sec = machine.clock().now_sec();
    body();
    span.t1_sec = machine.clock().now_sec();
    spans.push_back(std::move(span));
    sampler.sample();
  };

  constexpr int kSteps = 3;
  sampler.start_all();
  sampler.sample();
  for (int step = 0; step < kSteps; ++step) {
    run_phase("forward_fft", [&] { forward.run_forward([&] { sampler.sample(); }); });
    run_phase("spectral_scale", [&] {
      // Dealiasing + integrating factor: one streaming pass in k-space.
      sim::LoopDesc pass;
      pass.iterations = dims.elems();
      pass.flops_per_iter = 6.0;
      pass.streams = {{field, 16, 16, sim::AccessKind::Load},
                      {scratch, 16, 16, sim::AccessKind::Store}};
      eng.execute(pass);
    });
    run_phase("inverse_fft", [&] { forward.run_forward([&] { sampler.sample(); }); });
    run_phase("nonlinear_term", [&] {
      // u . grad(u) in real space: three loads per store.
      sim::LoopDesc pass;
      pass.iterations = dims.elems();
      pass.flops_per_iter = 12.0;
      pass.streams = {{field, 16, 16, sim::AccessKind::Load},
                      {scratch, 16, 16, sim::AccessKind::Load},
                      {field + 8, 16, 16, sim::AccessKind::Load},
                      {scratch + dims.bytes() / 2, 16, 16, sim::AccessKind::Store}};
      eng.execute(pass);
    });
  }
  sampler.stop_all();

  std::ofstream trace("turbulence_trace.json");
  write_chrome_trace(trace, sampler, spans, "turbulence-rank-0");
  std::printf("ran %d pseudo-spectral timesteps (N = %llu, %u x %u grid)\n",
              kSteps, static_cast<unsigned long long>(cfg.n), cfg.grid.rows,
              cfg.grid.cols);
  std::printf("timeline: %zu samples, %zu phase spans\n",
              sampler.rows().size(), spans.size());
  std::printf("wrote turbulence_trace.json (open at chrome://tracing)\n");

  // Per-step summary from the sampler.
  double total_read = 0, total_write = 0;
  if (!sampler.rows().empty()) {
    total_read = static_cast<double>(sampler.rows().back().values[0]);
    total_write = static_cast<double>(sampler.rows().back().values[1]);
  }
  std::printf("channel-0 traffic over the run: %.1f MB read, %.1f MB written\n",
              total_read / 1e6, total_write / 1e6);
  return 0;
}
