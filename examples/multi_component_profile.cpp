// Multi-component profiling of the GPU-accelerated distributed 3D-FFT: host
// memory traffic (pcp), GPU power (nvml), and network traffic (infiniband)
// on one timeline -- a compact version of the paper's Fig. 11 experiment.
//
// Build & run:  ./build/examples/multi_component_profile
#include <cstdio>
#include <memory>

#include "components/infiniband_component.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "core/sampler.hpp"
#include "fft/fft3d.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

using namespace papisim;

int main() {
  sim::Machine machine(sim::MachineConfig::summit());
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  gpu::GpuDevice gpu(gpu::GpuConfig{}, machine, 0, 0);
  net::Nic nic(net::NicConfig{});
  mpi::JobComm comm(machine, nic);

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::NvmlComponent>(
      std::vector<gpu::GpuDevice*>{&gpu}));
  lib.register_component(std::make_unique<components::InfinibandComponent>(
      std::vector<net::Nic*>{&nic}));

  // One event set per component, one sampler for all of them.
  auto mem = lib.create_eventset();
  for (int ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    mem->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                   c + "_READ_BYTES.value:cpu87");
    mem->add_event("pcp:::perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" +
                   c + "_WRITE_BYTES.value:cpu87");
  }
  auto power = lib.create_eventset();
  power->add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power");
  auto network = lib.create_eventset();
  network->add_event("infiniband:::mlx5_0_1_ext:port_recv_data");

  Sampler sampler(machine.clock());
  sampler.add_eventset(*mem);
  sampler.add_eventset(*power);
  sampler.add_eventset(*network);

  fft::Fft3dConfig cfg;
  cfg.n = 512;
  cfg.grid = {8, 8};
  cfg.use_gpu = true;
  cfg.ticks_per_phase = 2;
  fft::DistributedFft3d app(machine, cfg, &gpu, &comm);

  sampler.start_all();
  sampler.sample();
  app.run_forward([&] { sampler.sample(); });
  sampler.stop_all();

  std::printf("%10s %12s %12s %8s %12s\n", "t_ms", "read_GB/s", "write_GB/s",
              "gpu_W", "recv_MB/s");
  for (const RateRow& r : sampler.rates()) {
    double rd = 0, wr = 0;
    for (int ch = 0; ch < 8; ++ch) {
      rd += r.values[2 * ch];
      wr += r.values[2 * ch + 1];
    }
    std::printf("%10.3f %12.2f %12.2f %8.0f %12.2f\n",
                (r.t0_sec + r.t1_sec) * 500.0, rd / 1e9, wr / 1e9,
                r.values[16] / 1000.0, r.values[17] / 1e6);
  }

  std::printf("\nPhases executed:\n");
  for (const fft::PhaseStats& ph : app.phases()) {
    std::printf("  %-14s %8.3f .. %8.3f ms\n", ph.name.c_str(),
                ph.t0_sec * 1e3, ph.t1_sec * 1e3);
  }
  return 0;
}
