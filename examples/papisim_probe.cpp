// papisim-probe: CounterPoint-style refutation report for the simulator's
// six micro-architectural mechanisms.  Sweeps the probe grid, compares the
// replayed traffic against the analytic mechanism model, and prints (or
// writes as JSON) a CONFIRM/REFUTE verdict per mechanism with effect sizes
// and tolerance bands.
//
//   papisim-probe                         curated grid, text report
//   papisim-probe --full                  full grid (the probe-full CI leg)
//   papisim-probe --json report.json      machine-readable mechanism report
//   papisim-probe --json -                JSON to stdout
//   papisim-probe --machine tellico       probe the Tellico policy set
//   papisim-probe --threads 8             drive multi-core arms with 8 workers
//   papisim-probe --break write_bypass    refutation demo: disable a policy
//   papisim-probe --break lateral_castout and watch its mechanism flip to
//                                         REFUTE with a nonzero effect gap
//   papisim-probe --pcp                   append the PMCD service-layer probe
//                                         (fetch-cache freshness contract)
//
// Exit status: 0 when every mechanism is CONFIRMED, 1 otherwise -- so the
// binary doubles as an acceptance gate for perf refactors of the replay
// engine (sampled replay, region memoization).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "pcp/probe_freshness.hpp"
#include "probe/report.hpp"

using namespace papisim;

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  probe::ProbeOptions opt;
  std::string json_path;
  std::string broke;
  bool with_pcp = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--full") {
      opt.full_grid = true;
    } else if (a == "--pcp") {
      with_pcp = true;
    } else if (a == "--json" && i + 1 < args.size()) {
      json_path = args[++i];
    } else if (a == "--machine" && i + 1 < args.size()) {
      const std::string m = args[++i];
      if (m == "summit") {
        opt.machine = sim::MachineConfig::summit();
      } else if (m == "tellico") {
        opt.machine = sim::MachineConfig::tellico();
      } else if (m == "power10") {
        opt.machine = sim::MachineConfig::power10_preview();
      } else {
        std::cerr << "unknown machine '" << m << "' (summit|tellico|power10)\n";
        return 2;
      }
    } else if (a == "--threads" && i + 1 < args.size()) {
      opt.host_threads = static_cast<std::uint32_t>(std::stoul(args[++i]));
    } else if (a == "--break" && i + 1 < args.size()) {
      broke = args[++i];
      if (broke == "write_bypass") {
        opt.machine.store_bypass = false;
      } else if (broke == "lateral_castout") {
        opt.machine.lateral_castout = false;
      } else if (broke == "castout_retention") {
        opt.machine.castout_retention = 0.0;
      } else {
        std::cerr << "unknown policy '" << broke
                  << "' (write_bypass|lateral_castout|castout_retention)\n";
        return 2;
      }
    } else {
      std::cerr << "usage: papisim-probe [--full] [--pcp] [--json PATH|-] "
                   "[--machine summit|tellico|power10] [--threads N] "
                   "[--break POLICY]\n";
      return 2;
    }
  }

  std::vector<probe::MechanismReport> reports = probe::run_all_probes(opt);
  if (with_pcp) reports.push_back(pcp::probe_fetch_cache_freshness());

  if (!json_path.empty()) {
    if (json_path == "-") {
      probe::write_probe_json(std::cout, reports, opt);
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "cannot open '" << json_path << "' for writing\n";
        return 1;
      }
      probe::write_probe_json(out, reports, opt);
      std::cout << "wrote " << json_path << "\n";
    }
  }
  if (json_path != "-") {
    if (!broke.empty()) {
      std::cout << "policy '" << broke << "' deliberately broken -- expecting "
                   "a REFUTE below\n\n";
    }
    probe::write_probe_text(std::cout, reports);
  }
  return probe::all_confirmed(reports) ? 0 : 1;
}
