// papisim-analyze: offline phase segmentation of a recorded pmlogger
// archive -- the post-hoc half of the paper's workflow (record once on the
// machine, analyze anywhere), with no live Profiler in sight.
//
//   papisim-analyze --record fft.archive   record a 3D-FFT rank's memory
//                                          traffic through pmlogger
//   papisim-analyze fft.archive            segment + label + attribute it
//   papisim-analyze fft.archive --json     the same report as JSON
//   papisim-analyze                        self-contained demo: record to a
//                                          buffer, reload, analyze
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "components/nvml_component.hpp"
#include "fft/fft3d.hpp"
#include "pcp/pmcd.hpp"
#include "pcp/pmlogger.hpp"
#include "sim/machine.hpp"

using namespace papisim;

namespace {

/// The per-channel nest memory-traffic metrics of socket 0 (PMNS names, as
/// pmlogger would be configured on Summit).
std::vector<std::string> nest_metrics() {
  std::vector<std::string> out;
  for (int ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    out.push_back("perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_READ_BYTES");
    out.push_back("perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_WRITE_BYTES");
  }
  return out;
}

/// Run one GPU-accelerated 3D-FFT rank while a PmLogger polls the nest
/// counters at every pipeline tick; returns the recorded archive.
pcp::Archive record_fft_archive() {
  sim::Machine machine(sim::MachineConfig::summit());
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  gpu::GpuDevice gpu(gpu::GpuConfig{}, machine, 0, 0);

  const std::uint32_t cpu = machine.config().cpus_per_socket() - 1;
  pcp::PmLogger logger(client, nest_metrics(), cpu);

  fft::Fft3dConfig cfg;
  cfg.n = 2048;
  cfg.grid = {8, 8};
  cfg.use_gpu = true;
  cfg.ticks_per_phase = 5;
  fft::DistributedFft3d app(machine, cfg, &gpu, nullptr);

  logger.poll();
  app.run_forward([&] { logger.poll(); });
  return logger.archive();
}

int analyze(const pcp::Archive& archive, bool json) {
  const analysis::Timeline tl = analysis::timeline_from_archive(archive);
  if (tl.num_rows() == 0) {
    std::cerr << "archive has fewer than 2 records; nothing to analyze\n";
    return 1;
  }
  const analysis::Segmentation seg = analysis::analyze(tl);
  const std::vector<analysis::PhaseAttribution> report =
      analysis::attribute(tl, seg);
  if (json) {
    analysis::write_report_json(std::cout, tl, report);
    return 0;
  }
  std::cout << archive.metrics.size() << " metrics, " << archive.records.size()
            << " records, " << tl.duration_sec() * 1e3 << " ms of timeline\n"
            << "inferred " << seg.num_segments() << " segments ("
            << seg.boundaries.size() << " change points):\n\n";
  analysis::write_report_text(std::cout, report);
  std::cout << "\nLabels are inferred purely from the archived memory-traffic"
               " signature\n(read:write ratio per segment); no application"
               " instrumentation was consulted.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool json = false;
  std::string record_path, archive_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--record") {
      if (i + 1 >= args.size()) {
        std::cerr << "--record needs a path\n";
        return 2;
      }
      record_path = args[++i];
    } else {
      archive_path = args[i];
    }
  }

  try {
    if (!record_path.empty()) {
      const pcp::Archive ar = record_fft_archive();
      std::ofstream out(record_path);
      if (!out) {
        std::cerr << "cannot open '" << record_path << "' for writing\n";
        return 1;
      }
      ar.save(out);
      std::cout << "recorded " << ar.records.size() << " records of "
                << ar.metrics.size() << " metrics to " << record_path << "\n";
      return 0;
    }
    if (!archive_path.empty()) {
      std::ifstream in(archive_path);
      if (!in) {
        std::cerr << "cannot open '" << archive_path << "'\n";
        return 1;
      }
      return analyze(pcp::Archive::load(in), json);
    }
    // Demo: record, serialize, reload, analyze -- proving the offline path
    // needs nothing but the archive bytes.
    std::stringstream buffer;
    record_fft_archive().save(buffer);
    return analyze(pcp::Archive::load(buffer), json);
  } catch (const Error& e) {
    std::cerr << "error (" << to_string(e.status()) << "): " << e.what() << "\n";
    return 1;
  }
}
