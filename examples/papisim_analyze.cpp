// papisim-analyze: offline phase segmentation of a recorded pmlogger
// archive -- the post-hoc half of the paper's workflow (record once on the
// machine, analyze anywhere), with no live Profiler in sight.
//
//   papisim-analyze --record fft.archive   record a 3D-FFT rank's memory
//                                          traffic through pmlogger
//   papisim-analyze fft.archive            segment + label + attribute it
//   papisim-analyze fft.archive --json     the same report as JSON
//   papisim-analyze                        self-contained demo: record to a
//                                          buffer, reload, analyze
//   papisim-analyze --footprint            self-contained SPE demo: replay a
//                                          two-phase workload with per-access
//                                          sampling on, segment the timeline,
//                                          join the sample stream against the
//                                          inferred phases and print the
//                                          hot-footprint map
//     [--period N]                         sampling period (default 1024)
//     [--trace out.json]                   also write a Chrome trace with
//                                          footprint rank tracks
//   papisim-analyze --spans dump.json      ingest a causal span dump (from
//                                          bench_fig3 --spans, bench_pmcd_scale
//                                          --spans, or a flight-recorder
//                                          trigger) and print the per-RPC
//                                          critical-path breakdown
//     [--reconcile-tol PCT]                fail (exit 1) when per-stage
//                                          self-time sums diverge from the
//                                          measured end-to-end latency by
//                                          more than PCT percent
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/footprint.hpp"
#include "analysis/report.hpp"
#include "analysis/span_report.hpp"
#include "components/nvml_component.hpp"
#include "components/pcp_component.hpp"
#include "components/spe_component.hpp"
#include "core/sampler.hpp"
#include "core/trace_export.hpp"
#include "fft/fft3d.hpp"
#include "pcp/pmcd.hpp"
#include "pcp/pmlogger.hpp"
#include "sim/machine.hpp"
#include "spe/collector.hpp"

using namespace papisim;

namespace {

/// The per-channel nest memory-traffic metrics of socket 0 (PMNS names, as
/// pmlogger would be configured on Summit).
std::vector<std::string> nest_metrics() {
  std::vector<std::string> out;
  for (int ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    out.push_back("perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_READ_BYTES");
    out.push_back("perfevent.hwcounters.nest_mba" + c + "_imc.PM_MBA" + c +
                  "_WRITE_BYTES");
  }
  return out;
}

/// Run one GPU-accelerated 3D-FFT rank while a PmLogger polls the nest
/// counters at every pipeline tick; returns the recorded archive.
pcp::Archive record_fft_archive() {
  sim::Machine machine(sim::MachineConfig::summit());
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  gpu::GpuDevice gpu(gpu::GpuConfig{}, machine, 0, 0);

  const std::uint32_t cpu = machine.config().cpus_per_socket() - 1;
  pcp::PmLogger logger(client, nest_metrics(), cpu);

  fft::Fft3dConfig cfg;
  cfg.n = 2048;
  cfg.grid = {8, 8};
  cfg.use_gpu = true;
  cfg.ticks_per_phase = 5;
  fft::DistributedFft3d app(machine, cfg, &gpu, nullptr);

  logger.poll();
  app.run_forward([&] { logger.poll(); });
  return logger.archive();
}

int analyze(const pcp::Archive& archive, bool json) {
  const analysis::Timeline tl = analysis::timeline_from_archive(archive);
  if (tl.num_rows() == 0) {
    std::cerr << "archive has fewer than 2 records; nothing to analyze\n";
    return 1;
  }
  const analysis::Segmentation seg = analysis::analyze(tl);
  const std::vector<analysis::PhaseAttribution> report =
      analysis::attribute(tl, seg);
  if (json) {
    analysis::write_report_json(std::cout, tl, report);
    return 0;
  }
  std::cout << archive.metrics.size() << " metrics, " << archive.records.size()
            << " records, " << tl.duration_sec() * 1e3 << " ms of timeline\n"
            << "inferred " << seg.num_segments() << " segments ("
            << seg.boundaries.size() << " change points):\n\n";
  analysis::write_report_text(std::cout, report);
  std::cout << "\nLabels are inferred purely from the archived memory-traffic"
               " signature\n(read:write ratio per segment); no application"
               " instrumentation was consulted.\n";
  return 0;
}

/// The --footprint demo: a two-phase replay on one core -- a sequential
/// copy (balanced read/write) followed by strided loads that keep returning
/// to one hot 64 KiB array -- profiled through the nest counters while an
/// SpeCollector records 1-in-N accesses.  The phases are inferred from the
/// timeline alone; the sample stream is then joined against those inferred
/// windows, so the hot array shows up in the right phase without any
/// application instrumentation.
int analyze_footprint(bool json, std::uint64_t period,
                      const std::string& trace_path) {
  sim::Machine machine(sim::MachineConfig::summit());
  spe::SpeConfig spe_cfg;
  spe_cfg.period = period;
  spe::SpeCollector collector(machine, spe_cfg);

  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  auto spe_component = std::make_unique<components::SpeComponent>(&collector);
  components::SpeComponent* spe_comp = spe_component.get();
  lib.register_component(std::move(spe_component));

  const std::string cpu = std::to_string(machine.config().cpus_per_socket() - 1);
  auto es_mem = lib.create_eventset();
  for (const std::string& m : nest_metrics()) {
    es_mem->add_event("pcp:::" + m + ".value:cpu" + cpu);
  }
  std::unique_ptr<EventSet> es_spe;
  if (spe_comp->available()) {
    es_spe = lib.create_eventset();
    es_spe->add_event("spe:::samples");
    es_spe->add_event("spe:::drops");
  }
  Sampler sampler(machine.clock());
  sampler.add_eventset(*es_mem);
  if (es_spe) sampler.add_eventset(*es_spe);

  sim::AccessEngine& engine = machine.engine(0, 0);
  constexpr std::uint64_t kCopySrc = 0x10000000ull;
  constexpr std::uint64_t kCopyDst = 0x20000000ull;
  constexpr std::uint64_t kHotBase = 0x40000000ull;   // the planted 64 KiB array
  constexpr std::uint64_t kColdBase = 0x80000000ull;  // 32 MiB strided sweep

  sampler.start_all();
  sampler.sample();
  for (int rep = 0; rep < 24; ++rep) {  // phase 1: sequential copy
    sim::LoopDesc loop;
    loop.streams = {{kCopySrc, 8, 8, sim::AccessKind::Load},
                    {kCopyDst, 8, 8, sim::AccessKind::Store}};
    loop.iterations = 1u << 18;
    engine.execute(loop);
    sampler.sample();
  }
  for (int rep = 0; rep < 24; ++rep) {  // phase 2: strided reads + hot array
    sim::LoopDesc sweep;
    sweep.streams = {{kColdBase, 1024, 8, sim::AccessKind::Load}};
    sweep.iterations = (32u << 20) / 1024;
    engine.execute(sweep);
    for (int pass = 0; pass < 8; ++pass) {
      sim::LoopDesc hot;
      hot.streams = {{kHotBase, 8, 8, sim::AccessKind::Load}};
      hot.iterations = (64u << 10) / 8;
      engine.execute(hot);
    }
    sampler.sample();
  }
  sampler.stop_all();

  const analysis::Timeline tl = analysis::timeline_from_sampler(sampler);
  analysis::AnalysisConfig cfg;
  cfg.coalesce_same_label = false;  // keep both phases even under one label
  const analysis::Segmentation seg = analysis::analyze(tl, cfg);
  const std::vector<analysis::PhaseAttribution> report =
      analysis::attribute(tl, seg);

  analysis::FootprintConfig fp_cfg;
  fp_cfg.period = period;
  fp_cfg.line_bytes = machine.config().line_bytes;
  const std::vector<spe::Sample> samples = collector.drain();
  const analysis::FootprintReport fp =
      analysis::footprint(samples, analysis::phase_windows(seg), fp_cfg);

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::cerr << "cannot open '" << trace_path << "' for writing\n";
      return 1;
    }
    std::vector<TraceSpan> spans = analysis::to_trace_spans(seg);
    const std::vector<TraceSpan> fp_spans = analysis::footprint_trace_spans(fp);
    spans.insert(spans.end(), fp_spans.begin(), fp_spans.end());
    write_chrome_trace(out, sampler, spans);
  }

  if (json) {
    analysis::write_report_json(std::cout, tl, report, &fp);
    return 0;
  }
  std::cout << "inferred " << seg.num_segments() << " segments ("
            << seg.boundaries.size() << " change points):\n\n";
  analysis::write_report_text(std::cout, report);
  std::cout << "\n";
  if (!spe_comp->available()) {
    std::cout << "note: " << spe_comp->disabled_reason()
              << "; the footprint below is empty\n";
  }
  analysis::write_footprint_text(std::cout, fp);
  const spe::SpeCollector::Totals totals = collector.totals();
  std::cout << "\nspe: " << totals.samples << " samples, " << totals.drops
            << " drops over " << totals.accesses << " line touches (period 1/"
            << period << ")\n"
            << "The hot 64 KiB array planted at 0x40000000 should dominate"
               " the strided phase's\nfootprint; the copy phase spreads"
               " evenly over its source and destination.\n";
  return 0;
}

/// The --spans mode: ingest a span dump, print the critical-path breakdown,
/// and (when asked) gate on the reconciliation error -- the CI check that
/// per-stage attribution accounts for the latency clients actually saw.
int analyze_spans(const std::string& path, double reconcile_tol_pct) {
  const analysis::SpanDump dump = analysis::load_span_dump(path);
  const analysis::CriticalPath cp = analysis::critical_path(dump);
  analysis::write_critical_path_text(std::cout, dump, cp);
  if (reconcile_tol_pct >= 0) {
    const double tol = reconcile_tol_pct / 100.0;
    bool ok = true;
    if (cp.rpc_roots != 0 && cp.rpc_reconcile_error() > tol) {
      std::cerr << "FAIL: rpc reconciliation error "
                << cp.rpc_reconcile_error() * 100 << "% exceeds "
                << reconcile_tol_pct << "%\n";
      ok = false;
    }
    if (cp.replay_roots != 0 && cp.replay_reconcile_error() > tol) {
      std::cerr << "FAIL: replay reconciliation error "
                << cp.replay_reconcile_error() * 100 << "% exceeds "
                << reconcile_tol_pct << "%\n";
      ok = false;
    }
    if (cp.rpc_roots == 0 && cp.replay_roots == 0) {
      std::cerr << "FAIL: no complete traces to reconcile\n";
      ok = false;
    }
    if (!ok) return 1;
    std::cout << "reconciliation within " << reconcile_tol_pct << "%\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool json = false;
  bool footprint = false;
  std::uint64_t period = 1024;
  double reconcile_tol_pct = -1;
  std::string record_path, archive_path, trace_path, spans_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json") {
      json = true;
    } else if (args[i] == "--footprint") {
      footprint = true;
    } else if (args[i] == "--period") {
      if (i + 1 >= args.size()) {
        std::cerr << "--period needs a value\n";
        return 2;
      }
      period = std::strtoull(args[++i].c_str(), nullptr, 10);
      if (period == 0) period = 1;
    } else if (args[i] == "--trace") {
      if (i + 1 >= args.size()) {
        std::cerr << "--trace needs a path\n";
        return 2;
      }
      trace_path = args[++i];
    } else if (args[i] == "--record") {
      if (i + 1 >= args.size()) {
        std::cerr << "--record needs a path\n";
        return 2;
      }
      record_path = args[++i];
    } else if (args[i] == "--spans") {
      if (i + 1 >= args.size()) {
        std::cerr << "--spans needs a path\n";
        return 2;
      }
      spans_path = args[++i];
    } else if (args[i] == "--reconcile-tol") {
      if (i + 1 >= args.size()) {
        std::cerr << "--reconcile-tol needs a percentage\n";
        return 2;
      }
      reconcile_tol_pct = std::strtod(args[++i].c_str(), nullptr);
    } else {
      archive_path = args[i];
    }
  }

  try {
    if (!spans_path.empty()) {
      return analyze_spans(spans_path, reconcile_tol_pct);
    }
    if (footprint) {
      return analyze_footprint(json, period, trace_path);
    }
    if (!record_path.empty()) {
      const pcp::Archive ar = record_fft_archive();
      std::ofstream out(record_path);
      if (!out) {
        std::cerr << "cannot open '" << record_path << "' for writing\n";
        return 1;
      }
      ar.save(out);
      std::cout << "recorded " << ar.records.size() << " records of "
                << ar.metrics.size() << " metrics to " << record_path << "\n";
      return 0;
    }
    if (!archive_path.empty()) {
      std::ifstream in(archive_path);
      if (!in) {
        std::cerr << "cannot open '" << archive_path << "'\n";
        return 1;
      }
      return analyze(pcp::Archive::load(in), json);
    }
    // Demo: record, serialize, reload, analyze -- proving the offline path
    // needs nothing but the archive bytes.
    std::stringstream buffer;
    record_fft_archive().save(buffer);
    return analyze(pcp::Archive::load(buffer), json);
  } catch (const Error& e) {
    std::cerr << "error (" << to_string(e.status()) << "): " << e.what() << "\n";
    return 1;
  }
}
