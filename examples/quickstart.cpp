// Quickstart: measure the memory traffic of a simple kernel through the
// papisim multi-component API, exactly the way an unprivileged Summit user
// would -- via the PCP component backed by the privileged PMCD daemon.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "components/pcp_component.hpp"
#include "core/library.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "sim/machine.hpp"

using namespace papisim;

int main() {
  // 1. A Summit-like node: 2 x 21-core POWER9, 8 MBA channels per socket.
  //    Ordinary users (uid != 0) cannot read the nest counters directly.
  sim::Machine machine(sim::MachineConfig::summit());

  // 2. The PMCD daemon runs with root credentials and exports the nest
  //    metrics; our client connects with plain user credentials.
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  // 3. Initialize the measurement library and register the PCP component.
  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));

  // 4. Build an event set covering all 8 MBA read channels + 8 write
  //    channels of socket 0 (qualifier :cpu87 = last thread of socket 0).
  auto events = lib.create_eventset();
  for (int ch = 0; ch < 8; ++ch) {
    const std::string c = std::to_string(ch);
    events->add_event("pcp:::perfevent.hwcounters.nest_mba" + c +
                      "_imc.PM_MBA" + c + "_READ_BYTES.value:cpu87");
    events->add_event("pcp:::perfevent.hwcounters.nest_mba" + c +
                      "_imc.PM_MBA" + c + "_WRITE_BYTES.value:cpu87");
  }

  // 5. The workload: a 64 MB array copy (one load + one store stream).
  const std::uint64_t elems = 8 << 20;
  const std::uint64_t src = machine.address_space().allocate(elems * 8);
  const std::uint64_t dst = machine.address_space().allocate(elems * 8);
  sim::LoopDesc copy;
  copy.iterations = elems;
  copy.streams = {{src, 8, 8, sim::AccessKind::Load},
                  {dst, 8, 8, sim::AccessKind::Store}};

  events->start();
  machine.engine(/*socket=*/0, /*core=*/0).execute(copy);
  machine.flush_socket(0);
  const std::vector<long long> values = events->read();
  events->stop();

  long long reads = 0, writes = 0;
  for (int ch = 0; ch < 8; ++ch) {
    reads += values[2 * ch];
    writes += values[2 * ch + 1];
  }
  std::printf("copied %llu MB\n", static_cast<unsigned long long>(elems * 8 >> 20));
  std::printf("measured reads : %lld bytes (%.2f per element)\n", reads,
              static_cast<double>(reads) / (elems * 8));
  std::printf("measured writes: %lld bytes (%.2f per element)\n", writes,
              static_cast<double>(writes) / (elems * 8));
  std::printf("\nNote the single read per element: the dense sequential "
              "stores bypassed the cache (no read-for-ownership), one of\n"
              "the POWER9 behaviours the reproduced paper dissects.\n");
  return 0;
}
