// Region-based profiling, the instrumentation style of the PAPI-based tools
// the paper cites (TAU, Score-P, Caliper): annotate code regions and get a
// per-region breakdown of nest memory traffic and core activity.
//
// Build & run:  ./build/examples/region_profile
#include <cstdio>
#include <memory>

#include "components/cpu_component.hpp"
#include "components/pcp_component.hpp"
#include "core/regions.hpp"
#include "kernels/blas_sim.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"

using namespace papisim;

int main() {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);
  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::CpuComponent>(machine));

  RegionProfiler prof(lib, machine.clock());
  prof.add_events({
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
      "cpu:::PAPI_FP_OPS:core=0",
      "cpu:::PAPI_L3_TCM:core=0",
  });
  prof.start();
  {
    auto solve = prof.region("solve");
    {
      auto setup = prof.region("gemv");
      const std::uint64_t m = 4096, n = 512;
      const kernels::GemvBuffers buf =
          kernels::GemvBuffers::allocate(machine.address_space(), m, n, n);
      kernels::run_capped_gemv(machine, 0, 0, m, n, n, buf);
    }
    for (int iter = 0; iter < 3; ++iter) {
      auto gemm = prof.region("gemm");
      const std::uint64_t n = 192;
      const kernels::GemmBuffers buf =
          kernels::GemmBuffers::allocate(machine.address_space(), n);
      kernels::run_gemm(machine, 0, 0, n, buf);
      machine.flush_socket(0);
    }
  }
  prof.stop();

  std::printf("%-14s %7s %12s %14s %14s %14s %12s\n", "region", "visits",
              "excl_ms", "ch0_read_B", "ch0_write_B", "flops", "L3_misses");
  for (const RegionStats& r : prof.report()) {
    std::printf("%-14s %7llu %12.3f %14.0f %14.0f %14.0f %12.0f\n",
                r.path.c_str(), static_cast<unsigned long long>(r.visits),
                r.exclusive_sec * 1e3, r.exclusive[0], r.exclusive[1],
                r.exclusive[2], r.exclusive[3]);
  }
  std::printf("\nExclusive columns attribute each count to the innermost "
              "open region, exactly as TAU/Caliper-style tools report\n"
              "PAPI counters per instrumented region.\n");
  return 0;
}
