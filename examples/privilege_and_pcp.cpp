// Demonstrates the privilege model at the heart of the paper: on Summit an
// ordinary user cannot open the nest PMU (the perf_nest component registers
// DISABLED), but the same counters are reachable through the PCP daemon --
// and the two routes agree exactly.
//
// Build & run:  ./build/examples/privilege_and_pcp
#include <cstdio>
#include <memory>

#include "components/pcp_component.hpp"
#include "components/perf_nest_component.hpp"
#include "core/library.hpp"
#include "pcp/client.hpp"
#include "pcp/pmcd.hpp"
#include "sim/machine.hpp"

using namespace papisim;

int main() {
  sim::Machine machine(sim::MachineConfig::summit());
  machine.set_noise_enabled(false);  // byte-exact comparison below

  pcp::Pmcd daemon(machine);
  pcp::PcpClient client(daemon, machine, machine.user_credentials());

  Library lib;
  lib.register_component(std::make_unique<components::PcpComponent>(client));
  lib.register_component(std::make_unique<components::PerfNestComponent>(
      machine, machine.user_credentials()));

  std::printf("user uid = %u (privileged: %s)\n\n",
              machine.user_credentials().uid,
              machine.user_credentials().privileged() ? "yes" : "no");
  for (Component* c : lib.components()) {
    std::printf("component %-10s : %s\n", c->name().c_str(),
                c->available() ? "available"
                               : ("DISABLED -- " + c->disabled_reason()).c_str());
  }

  // Direct access fails for the user...
  auto direct = lib.create_eventset();
  try {
    direct->add_event("perf_nest:::power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0");
    std::printf("\nunexpected: direct nest access succeeded\n");
  } catch (const Error& e) {
    std::printf("\ndirect nest access: %s (%s)\n", e.what(),
                to_string(e.status()));
  }

  // ...but the PCP route works, and (with root access for comparison) the
  // two report identical values.
  auto via_pcp = lib.create_eventset();
  via_pcp->add_event(
      "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87");
  via_pcp->start();

  nest::NestPmu root_pmu(machine, sim::Credentials::root());  // root-only path
  const std::uint64_t raw_before =
      root_pmu.read({0, 0, nest::NestEventKind::ReadBytes});

  // Generate some traffic on socket 0.
  const std::uint64_t buf = machine.address_space().allocate(1 << 20);
  sim::LoopDesc loop;
  loop.iterations = (1 << 20) / 8;
  loop.streams = {{buf, 8, 8, sim::AccessKind::Load}};
  machine.engine(0, 0).execute(loop);

  const long long pcp_delta = via_pcp->read()[0];
  const std::uint64_t raw_delta =
      root_pmu.read({0, 0, nest::NestEventKind::ReadBytes}) - raw_before;
  via_pcp->stop();

  std::printf("channel-0 read bytes:  via PCP = %lld, direct (root) = %llu\n",
              pcp_delta, static_cast<unsigned long long>(raw_delta));
  std::printf("PCP round trips so far: %llu\n",
              static_cast<unsigned long long>(client.round_trips()));
  std::printf("\nThe PCP measurement equals the privileged read -- the "
              "paper's conclusion that PCP is as accurate as direct access.\n");
  return 0;
}
