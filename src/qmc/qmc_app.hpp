// Synthetic QMCPACK-like workload (paper Fig. 12 substitute).
//
// QMCPACK's NiO example runs three stages -- VMC without drift, VMC with
// drift, then DMC -- whose hardware signatures differ enough that the paper
// uses them to demonstrate phase identification via multi-component
// monitoring.  We reproduce those signatures with a synthetic walker-based
// engine (documented substitution, DESIGN.md §1):
//
//  * VMC no-drift: steady host memory traffic (walker moves over the
//    wavefunction tables), light GPU activity, no network.
//  * VMC drift:    heavier memory traffic (gradient evaluations) and GPU
//    bursts per step.
//  * DMC:          GPU-heavy steps plus periodic walker-population
//    redistribution over MPI (network spikes) and branching writes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/gpu_device.hpp"
#include "mpi/job_comm.hpp"
#include "sim/machine.hpp"

namespace papisim::sim {
class ThreadPool;
}

namespace papisim::qmc {

struct QmcConfig {
  std::uint32_t socket = 0;
  std::uint32_t core = 0;
  std::uint64_t walkers = 128;
  std::uint64_t electrons = 48;        ///< NiO-like problem scale
  std::uint64_t spline_table_bytes = 64ull << 20;  ///< B-spline coefficient table
  std::uint32_t vmc_nodrift_steps = 12;
  std::uint32_t vmc_drift_steps = 12;
  std::uint32_t dmc_steps = 20;
  std::uint32_t dmc_branch_interval = 4;  ///< steps between walker exchanges
  std::uint32_t ranks = 16;
  /// Replay the walker loops across this many simulated cores (and as many
  /// host threads), starting at `core`.  1 = the seed's single-engine replay,
  /// bit-exact; >1 deals walker sub-ranges to per-core engines with deferred
  /// time and a max-merge clock advance per step.
  std::uint32_t replay_threads = 1;
};

struct QmcPhase {
  std::string name;
  double t0_sec = 0.0;
  double t1_sec = 0.0;
};

/// The mini-app.  run() drives the three stages against the machine, GPU,
/// and network models; `tick` fires once per Monte-Carlo step so a Sampler
/// can build the Fig. 12 timeline.
class QmcApp {
 public:
  QmcApp(sim::Machine& machine, QmcConfig cfg, gpu::GpuDevice* gpu = nullptr,
         mpi::JobComm* comm = nullptr);
  ~QmcApp();

  void run(const std::function<void()>& tick = {});

  const std::vector<QmcPhase>& phases() const { return phases_; }

 private:
  void vmc_step(bool drift);
  void dmc_step(std::uint32_t step);
  QmcPhase& begin_phase(const std::string& name);

  /// Deal walkers [0, cfg_.walkers) to the replay engines: `body(engine,
  /// w_lo, w_hi)` replays one contiguous walker sub-range.  Serial
  /// (replay_threads = 1) is one body call on the seed's engine, bit-exact;
  /// parallel defers per-core time and max-merges after the join.
  void replay_walkers(const std::function<void(sim::AccessEngine&, std::uint64_t,
                                               std::uint64_t)>& body);

  sim::Machine& machine_;
  QmcConfig cfg_;
  gpu::GpuDevice* gpu_;
  mpi::JobComm* comm_;
  std::uint64_t spline_addr_ = 0;
  std::uint64_t walker_addr_ = 0;
  std::uint64_t walker_cursor_ = 0;
  std::unique_ptr<sim::ThreadPool> replay_pool_;  ///< null when replay_threads = 1
  std::vector<QmcPhase> phases_;
};

}  // namespace papisim::qmc
