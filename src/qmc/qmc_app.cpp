#include "qmc/qmc_app.hpp"

#include <algorithm>

#include "sim/thread_pool.hpp"

namespace papisim::qmc {

QmcApp::QmcApp(sim::Machine& machine, QmcConfig cfg, gpu::GpuDevice* gpu,
               mpi::JobComm* comm)
    : machine_(machine), cfg_(cfg), gpu_(gpu), comm_(comm) {
  spline_addr_ = machine_.address_space().allocate(cfg_.spline_table_bytes);
  // Per-walker state: positions, inverse Slater matrices, buffers.
  const std::uint64_t walker_bytes =
      cfg_.walkers * cfg_.electrons * cfg_.electrons * 8 * 2;
  walker_addr_ = machine_.address_space().allocate(walker_bytes);
  cfg_.replay_threads = std::max<std::uint32_t>(1, cfg_.replay_threads);
  cfg_.replay_threads = std::min(cfg_.replay_threads,
                                 machine_.cores_per_socket() - cfg_.core);
  if (cfg_.replay_threads > 1) {
    replay_pool_ = std::make_unique<sim::ThreadPool>(cfg_.replay_threads - 1);
  }
}

QmcApp::~QmcApp() = default;

void QmcApp::replay_walkers(
    const std::function<void(sim::AccessEngine&, std::uint64_t, std::uint64_t)>&
        body) {
  const std::uint32_t nthreads = cfg_.replay_threads;
  if (nthreads <= 1) {
    body(machine_.engine(cfg_.socket, cfg_.core), 0, cfg_.walkers);
    return;
  }
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    machine_.engine(cfg_.socket, cfg_.core + t).set_deferred_time(true);
  }
  replay_pool_->parallel_for(nthreads, [&](std::uint32_t t) {
    const std::uint64_t lo = cfg_.walkers * t / nthreads;
    const std::uint64_t hi = cfg_.walkers * (t + 1) / nthreads;
    if (hi > lo) body(machine_.engine(cfg_.socket, cfg_.core + t), lo, hi);
  });
  double max_ns = 0.0;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core + t);
    max_ns = std::max(max_ns, eng.take_deferred_time_ns());
    eng.set_deferred_time(false);
  }
  machine_.advance(max_ns);
}

QmcPhase& QmcApp::begin_phase(const std::string& name) {
  QmcPhase ph;
  ph.name = name;
  ph.t0_sec = machine_.clock().now_sec();
  phases_.push_back(ph);
  return phases_.back();
}

void QmcApp::vmc_step(bool drift) {
  // Wavefunction evaluation: gather strided B-spline coefficients for each
  // electron move (random-ish positions -> strided table reads).
  const std::uint64_t moves = cfg_.walkers * cfg_.electrons;
  const std::int64_t spline_stride =
      static_cast<std::int64_t>((cfg_.spline_table_bytes / moves) & ~63ull);
  const std::uint64_t upd_mult = drift ? 4 : 2;
  replay_walkers([&](sim::AccessEngine& eng, std::uint64_t w_lo,
                     std::uint64_t w_hi) {
    const std::uint64_t span = (w_hi - w_lo) * cfg_.electrons;
    sim::LoopDesc spline;
    spline.iterations = span;
    spline.flops_per_iter = drift ? 700.0 : 350.0;  // drift adds gradients
    // Walk the table with a large prime-ish stride to touch distinct lines;
    // each engine continues the stream at its walker sub-range's offset.
    spline.streams = {
        {spline_addr_ + (walker_cursor_ % 4096) * 64 +
             w_lo * cfg_.electrons * static_cast<std::uint64_t>(spline_stride),
         spline_stride, 8, sim::AccessKind::Load},
    };
    eng.execute(spline);

    // Slater-matrix row updates: sequential read+write over walker state.
    sim::LoopDesc update;
    update.iterations = span * upd_mult;
    update.flops_per_iter = 2.0 * cfg_.electrons;
    update.streams = {
        {walker_addr_ + w_lo * cfg_.electrons * upd_mult * 8, 8, 8,
         sim::AccessKind::Load},
        {walker_addr_ + cfg_.walkers * cfg_.electrons * 8 +
             w_lo * cfg_.electrons * upd_mult * 8,
         8, 8, sim::AccessKind::Store},
    };
    eng.execute(update);
  });

  if (drift && gpu_ != nullptr) {
    // Drift VMC offloads the gradient batch to the GPU.
    gpu_->memcpy_h2d(cfg_.walkers * cfg_.electrons * 24);
    gpu_->run_kernel(1.0e9);
    gpu_->memcpy_d2h(cfg_.walkers * cfg_.electrons * 24);
  }
  ++walker_cursor_;
}

void QmcApp::dmc_step(std::uint32_t step) {
  // DMC: GPU-heavy projection step plus branching.
  vmc_step(/*drift=*/true);
  if (gpu_ != nullptr) gpu_->run_kernel(3.0e9);

  // Branching: copy surviving walker states (sequential, store-dense).
  replay_walkers([&](sim::AccessEngine& eng, std::uint64_t w_lo,
                     std::uint64_t w_hi) {
    sim::LoopDesc branch;
    branch.iterations = (w_hi - w_lo) * cfg_.electrons;
    branch.streams = {
        {walker_addr_ + w_lo * cfg_.electrons * 16, 16, 16,
         sim::AccessKind::Load},
        {walker_addr_ + cfg_.walkers * cfg_.electrons * 16 +
             w_lo * cfg_.electrons * 16,
         16, 16, sim::AccessKind::Store},
    };
    eng.execute(branch);
  });

  if (comm_ != nullptr && step % cfg_.dmc_branch_interval == 0) {
    // Walker-population redistribution across ranks: the Fig. 12 network
    // spikes.
    comm_->alltoall(cfg_.ranks, cfg_.walkers * cfg_.electrons * 48);
  }
}

void QmcApp::run(const std::function<void()>& tick) {
  phases_.clear();
  phases_.reserve(3);  // keep begin_phase() references stable

  QmcPhase* ph = &begin_phase("VMC_no_drift");
  for (std::uint32_t s = 0; s < cfg_.vmc_nodrift_steps; ++s) {
    vmc_step(/*drift=*/false);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();

  ph = &begin_phase("VMC_drift");
  for (std::uint32_t s = 0; s < cfg_.vmc_drift_steps; ++s) {
    vmc_step(/*drift=*/true);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();

  ph = &begin_phase("DMC");
  for (std::uint32_t s = 0; s < cfg_.dmc_steps; ++s) {
    dmc_step(s);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();
}

}  // namespace papisim::qmc
