#include "qmc/qmc_app.hpp"

namespace papisim::qmc {

QmcApp::QmcApp(sim::Machine& machine, QmcConfig cfg, gpu::GpuDevice* gpu,
               mpi::JobComm* comm)
    : machine_(machine), cfg_(cfg), gpu_(gpu), comm_(comm) {
  spline_addr_ = machine_.address_space().allocate(cfg_.spline_table_bytes);
  // Per-walker state: positions, inverse Slater matrices, buffers.
  const std::uint64_t walker_bytes =
      cfg_.walkers * cfg_.electrons * cfg_.electrons * 8 * 2;
  walker_addr_ = machine_.address_space().allocate(walker_bytes);
}

QmcPhase& QmcApp::begin_phase(const std::string& name) {
  QmcPhase ph;
  ph.name = name;
  ph.t0_sec = machine_.clock().now_sec();
  phases_.push_back(ph);
  return phases_.back();
}

void QmcApp::vmc_step(bool drift) {
  sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core);
  // Wavefunction evaluation: gather strided B-spline coefficients for each
  // electron move (random-ish positions -> strided table reads).
  const std::uint64_t moves = cfg_.walkers * cfg_.electrons;
  sim::LoopDesc spline;
  spline.iterations = moves;
  spline.flops_per_iter = drift ? 700.0 : 350.0;  // drift adds gradients
  // Walk the table with a large prime-ish stride to touch distinct lines.
  spline.streams = {
      {spline_addr_ + (walker_cursor_ % 4096) * 64,
       static_cast<std::int64_t>((cfg_.spline_table_bytes / moves) & ~63ull), 8,
       sim::AccessKind::Load},
  };
  eng.execute(spline);

  // Slater-matrix row updates: sequential read+write over walker state.
  sim::LoopDesc update;
  update.iterations = cfg_.walkers * cfg_.electrons * (drift ? 4 : 2);
  update.flops_per_iter = 2.0 * cfg_.electrons;
  update.streams = {
      {walker_addr_, 8, 8, sim::AccessKind::Load},
      {walker_addr_ + cfg_.walkers * cfg_.electrons * 8, 8, 8,
       sim::AccessKind::Store},
  };
  eng.execute(update);

  if (drift && gpu_ != nullptr) {
    // Drift VMC offloads the gradient batch to the GPU.
    gpu_->memcpy_h2d(cfg_.walkers * cfg_.electrons * 24);
    gpu_->run_kernel(1.0e9);
    gpu_->memcpy_d2h(cfg_.walkers * cfg_.electrons * 24);
  }
  ++walker_cursor_;
}

void QmcApp::dmc_step(std::uint32_t step) {
  // DMC: GPU-heavy projection step plus branching.
  vmc_step(/*drift=*/true);
  if (gpu_ != nullptr) gpu_->run_kernel(3.0e9);

  sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core);
  // Branching: copy surviving walker states (sequential, store-dense).
  sim::LoopDesc branch;
  branch.iterations = cfg_.walkers * cfg_.electrons;
  branch.streams = {
      {walker_addr_, 16, 16, sim::AccessKind::Load},
      {walker_addr_ + cfg_.walkers * cfg_.electrons * 16, 16, 16,
       sim::AccessKind::Store},
  };
  eng.execute(branch);

  if (comm_ != nullptr && step % cfg_.dmc_branch_interval == 0) {
    // Walker-population redistribution across ranks: the Fig. 12 network
    // spikes.
    comm_->alltoall(cfg_.ranks, cfg_.walkers * cfg_.electrons * 48);
  }
}

void QmcApp::run(const std::function<void()>& tick) {
  phases_.clear();
  phases_.reserve(3);  // keep begin_phase() references stable

  QmcPhase* ph = &begin_phase("VMC_no_drift");
  for (std::uint32_t s = 0; s < cfg_.vmc_nodrift_steps; ++s) {
    vmc_step(/*drift=*/false);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();

  ph = &begin_phase("VMC_drift");
  for (std::uint32_t s = 0; s < cfg_.vmc_drift_steps; ++s) {
    vmc_step(/*drift=*/true);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();

  ph = &begin_phase("DMC");
  for (std::uint32_t s = 0; s < cfg_.dmc_steps; ++s) {
    dmc_step(s);
    if (tick) tick();
  }
  ph->t1_sec = machine_.clock().now_sec();
}

}  // namespace papisim::qmc
