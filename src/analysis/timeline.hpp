// Neutral timeline model for the phase-segmentation engine (DESIGN.md §3e).
//
// Both producers of multi-component timelines -- a live Sampler and a saved
// pcp::Archive -- are lowered into the same Timeline of per-interval rates,
// so the change-point detector, classifier, and attribution report run
// identically online and offline (the paper's post-hoc Vampir analysis,
// without hand labels).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/sampler.hpp"

namespace papisim::pcp {
struct Archive;
}

namespace papisim::analysis {

/// What a column measures, inferred from its event name.  Roles drive the
/// classifier features and the attribution report; columns that match no
/// pattern participate in change-point detection as Other.
enum class ColumnRole {
  MemRead,        ///< host memory-controller read traffic (bytes)
  MemWrite,       ///< host memory-controller write traffic (bytes)
  GpuPower,       ///< GPU board power gauge (milliwatts, NVML semantics)
  NetRecv,        ///< Infiniband port receive traffic (bytes)
  NetXmit,        ///< Infiniband port transmit traffic (bytes)
  SelfOverheadNs, ///< selfmon summed harness latency (ns counter)
  Other,
};

const char* to_string(ColumnRole role);

/// Role inference from event / PMNS metric names ("READ_BYTES", ":power",
/// "port_recv_data", ...), case-insensitive.  Works for fully qualified
/// component names ("pcp:::...PM_MBA3_READ_BYTES.value:cpu87") and for the
/// dotted names stored in archives.
ColumnRole infer_role(const std::string& column);

/// A multi-component timeline reduced to per-interval rates: counters as
/// delta/dt, gauges raw (exactly Sampler::rates() semantics).
struct Timeline {
  std::vector<std::string> columns;
  std::vector<bool> gauge;
  std::vector<ColumnRole> roles;
  std::vector<RateRow> rates;

  std::size_t num_rows() const { return rates.size(); }
  std::size_t num_columns() const { return columns.size(); }
  double dt(std::size_t row) const {
    return rates[row].t1_sec - rates[row].t0_sec;
  }
  double t_begin_sec() const { return rates.empty() ? 0.0 : rates.front().t0_sec; }
  double t_end_sec() const { return rates.empty() ? 0.0 : rates.back().t1_sec; }
  double duration_sec() const { return t_end_sec() - t_begin_sec(); }

  /// Median row interval: the "one sample interval" unit used for boundary
  /// tolerances.  0 for an empty timeline.
  double median_interval_sec() const;
  /// Longest row interval (phases tick at different cadences).
  double max_interval_sec() const;

  /// Column indices carrying `role`, in column order.
  std::vector<std::size_t> columns_with_role(ColumnRole role) const;

  /// A reduced timeline keeping only `keep` (column indices, in the given
  /// order).  Used to run the identical pipeline on the column subset a
  /// saved archive carries (offline/live equivalence).
  Timeline select_columns(const std::vector<std::size_t>& keep) const;
};

/// Lower a live Sampler's recorded rows into a Timeline.
Timeline timeline_from_sampler(const Sampler& sampler);

/// Lower a saved pmlogger archive into a Timeline.  Archive values are raw
/// cumulative counters; consecutive-record deltas become rates (negative
/// deltas -- counter re-baselining across a daemon restart -- clamp to 0).
Timeline timeline_from_archive(const pcp::Archive& archive);

}  // namespace papisim::analysis
