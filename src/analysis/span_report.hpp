// Causal span-dump ingestion and per-RPC critical-path analysis
// (papisim-analyze --spans; DESIGN.md §3j).
//
// A span dump (trace/export.hpp) is a flat list of spans from many traces.
// This module rebuilds the trees and answers the question the selfmon
// histograms cannot: *where* the time of one request went.  Attribution is
// by self-time -- a span's duration minus its direct children's durations,
// clamped at zero -- so summing every stage's self-time over a trace
// reproduces the root's end-to-end duration exactly when the tree nests
// cleanly, and the residual (the reconciliation error) is itself a health
// check: the fig3/bench_pmcd_scale CI legs require it within a few percent.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/recorder.hpp"
#include "trace/span.hpp"

namespace papisim::analysis {

/// A parsed span dump (the strict-JSON schema of trace/export.hpp).
struct SpanDump {
  std::string reason;
  std::uint64_t dropped = 0;
  std::vector<trace::Span> spans;
  std::vector<trace::Exemplar> exemplars;
};

/// Parse a dump from JSON text / load one from a file.
/// @throws Error(Status::InvalidArgument) on malformed JSON, a schema
/// mismatch, or an unreadable file.
SpanDump parse_span_dump(std::string_view text);
SpanDump load_span_dump(const std::string& path);

/// One row of the time-in-stage table: how much self-time a causal stage
/// accounts for across every trace of one side (RPC or replay).
struct StageBreakdown {
  trace::Stage stage = trace::Stage::Rpc;
  std::uint64_t count = 0;    ///< spans of this stage
  std::uint64_t self_ns = 0;  ///< total self-time (duration minus children)
};

/// The critical-path summary of one dump.
struct CriticalPath {
  // RPC side: traces rooted in a client-visible rpc span.
  std::uint64_t rpc_roots = 0;
  std::uint64_t rpc_e2e_ns = 0;        ///< sum of rpc root durations
  std::uint64_t rpc_stage_sum_ns = 0;  ///< sum of StageBreakdown::self_ns
  std::vector<StageBreakdown> rpc_stages;

  // Replay side: traces rooted in a KernelRunner measure span.
  std::uint64_t replay_roots = 0;
  std::uint64_t replay_e2e_ns = 0;
  std::uint64_t replay_stage_sum_ns = 0;
  std::vector<StageBreakdown> replay_stages;

  std::uint64_t orphan_spans = 0;  ///< spans whose trace has no root in the dump

  // Tail exemplar: the p99 of rpc root durations and a concrete trace to
  // blame -- the dump's exemplar table cell for the matching latency bucket
  // when present, else the root at the p99 rank.
  std::uint64_t p99_ns = 0;
  std::uint64_t p99_trace_id = 0;

  /// |stage_sum - e2e| / e2e (0 when there are no roots).
  double rpc_reconcile_error() const;
  double replay_reconcile_error() const;
};

CriticalPath critical_path(const SpanDump& dump);

/// Human-readable report: time-in-stage tables with reconciliation, the p99
/// exemplar, and that exemplar's span tree.
void write_critical_path_text(std::ostream& os, const SpanDump& dump,
                              const CriticalPath& cp);

}  // namespace papisim::analysis
