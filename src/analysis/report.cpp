#include "analysis/report.hpp"

#include <algorithm>
#include <cstdio>

#include "analysis/footprint.hpp"
#include "core/json_util.hpp"

namespace papisim::analysis {

namespace {

double integrate(const Timeline& tl, const std::vector<std::size_t>& cols,
                 std::size_t first, std::size_t end) {
  double acc = 0;
  for (std::size_t i = first; i < end; ++i) {
    double s = 0;
    for (const std::size_t c : cols) s += tl.rates[i].values[c];
    acc += s * tl.dt(i);
  }
  return acc;
}

std::string num(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

}  // namespace

std::vector<PhaseAttribution> attribute(const Timeline& tl,
                                        const Segmentation& seg) {
  const std::vector<std::size_t> rd = tl.columns_with_role(ColumnRole::MemRead);
  const std::vector<std::size_t> wr = tl.columns_with_role(ColumnRole::MemWrite);
  const std::vector<std::size_t> pw = tl.columns_with_role(ColumnRole::GpuPower);
  const std::vector<std::size_t> self =
      tl.columns_with_role(ColumnRole::SelfOverheadNs);
  std::vector<std::size_t> net = tl.columns_with_role(ColumnRole::NetRecv);
  for (const std::size_t c : tl.columns_with_role(ColumnRole::NetXmit)) {
    net.push_back(c);
  }

  std::vector<PhaseAttribution> out;
  out.reserve(seg.num_segments());
  for (std::size_t s = 0; s < seg.num_segments(); ++s) {
    const SegmentFeatures& f = seg.features[s];
    PhaseAttribution a;
    a.label = seg.labels[s];
    a.t0_sec = f.t0_sec;
    a.t1_sec = f.t1_sec;
    a.dur_sec = f.dur_sec;
    a.read_bytes = integrate(tl, rd, f.first_row, f.end_row);
    a.write_bytes = integrate(tl, wr, f.first_row, f.end_row);
    a.rw_ratio = a.write_bytes > 0 ? a.read_bytes / a.write_bytes : 0.0;
    a.net_bytes = integrate(tl, net, f.first_row, f.end_row);
    // Power gauges are milliwatts: mW * s = mJ.
    a.energy_j = integrate(tl, pw, f.first_row, f.end_row) / 1000.0;
    // The ".sum_ns" counter rate is harness-ns per wall-second; its
    // integral over the segment is harness-ns, so share = ns / wall-ns.
    if (!self.empty() && f.dur_sec > 0) {
      a.selfmon_share =
          integrate(tl, self, f.first_row, f.end_row) / (f.dur_sec * 1e9);
    }
    out.push_back(std::move(a));
  }
  return out;
}

void write_report_text(std::ostream& os,
                       std::span<const PhaseAttribution> report) {
  const std::vector<std::string> headers = {
      "segment", "t0_ms",  "t1_ms",      "read_B", "write_B",
      "r/w",     "net_B",  "energy_J",   "selfmon"};
  std::vector<std::vector<std::string>> rows;
  PhaseAttribution total;
  total.label = "TOTAL";
  for (const PhaseAttribution& a : report) {
    rows.push_back({a.label, num(a.t0_sec * 1e3, 2), num(a.t1_sec * 1e3, 2),
                    sci(a.read_bytes), sci(a.write_bytes),
                    a.rw_ratio > 0 ? num(a.rw_ratio, 2) : "-", sci(a.net_bytes),
                    num(a.energy_j, 2), num(a.selfmon_share * 100, 3) + "%"});
    total.read_bytes += a.read_bytes;
    total.write_bytes += a.write_bytes;
    total.net_bytes += a.net_bytes;
    total.energy_j += a.energy_j;
    total.selfmon_share += a.selfmon_share * a.dur_sec;
    total.dur_sec += a.dur_sec;
  }
  if (!report.empty()) {
    total.t0_sec = report.front().t0_sec;
    total.t1_sec = report.back().t1_sec;
    total.rw_ratio =
        total.write_bytes > 0 ? total.read_bytes / total.write_bytes : 0.0;
    if (total.dur_sec > 0) total.selfmon_share /= total.dur_sec;
    rows.push_back({total.label, num(total.t0_sec * 1e3, 2),
                    num(total.t1_sec * 1e3, 2), sci(total.read_bytes),
                    sci(total.write_bytes),
                    total.rw_ratio > 0 ? num(total.rw_ratio, 2) : "-",
                    sci(total.net_bytes), num(total.energy_j, 2),
                    num(total.selfmon_share * 100, 3) + "%"});
  }

  std::vector<std::size_t> width(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) width[c] = headers[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers.size(); ++c) {
      os << "  " << cells[c] << std::string(width[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  line(headers);
  std::size_t tot = 0;
  for (const std::size_t w : width) tot += w + 2;
  os << std::string(tot, '-') << '\n';
  for (const auto& row : rows) line(row);
}

void write_report_json(std::ostream& os, const Timeline& tl,
                       std::span<const PhaseAttribution> report,
                       const FootprintReport* footprint) {
  JsonWriter w(os);
  w.begin_object().kv("schema_version", kReportSchemaVersion).newline();
  w.key("columns").begin_array();
  for (const std::string& col : tl.columns) w.value(col);
  w.end_array().newline();
  w.key("segments").begin_array();
  for (const PhaseAttribution& a : report) {
    w.newline()
        .begin_object()
        .kv("label", a.label)
        .kv("t0_sec", a.t0_sec)
        .kv("t1_sec", a.t1_sec)
        .kv("read_bytes", a.read_bytes)
        .kv("write_bytes", a.write_bytes)
        .kv("rw_ratio", a.rw_ratio)
        .kv("net_bytes", a.net_bytes)
        .kv("energy_j", a.energy_j)
        .kv("selfmon_share", a.selfmon_share)
        .end_object();
  }
  w.newline().end_array();
  if (footprint != nullptr) {
    // The footprint writer predates JsonWriter and emits its object straight
    // to the stream; key() has already placed the separator and colon.
    w.newline().key("footprint");
    write_footprint_json(os, *footprint);
  }
  w.end_object();
  os << '\n';
}

}  // namespace papisim::analysis
