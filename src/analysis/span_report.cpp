#include "analysis/span_report.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "core/error.hpp"
#include "core/json_parse.hpp"
#include "selfmon/metrics.hpp"
#include "trace/export.hpp"

namespace papisim::analysis {

namespace {

[[noreturn]] void schema_fail(const std::string& why) {
  throw Error(Status::InvalidArgument, "span dump: " + why);
}

std::uint64_t require_u64(const json::Value& obj, std::string_view key,
                          const char* where) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    schema_fail(std::string(where) + " is missing numeric '" +
                std::string(key) + "'");
  }
  return v->u64_or(0);
}

std::string_view require_str(const json::Value& obj, std::string_view key,
                             const char* where) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) {
    schema_fail(std::string(where) + " is missing string '" +
                std::string(key) + "'");
  }
  return v->str;
}

/// The same power-of-two latency bucketing as selfmon::hist_record_ns and
/// the recorder's exemplar table.
std::uint64_t bucket_of(std::uint64_t ns) {
  return ns == 0
             ? 0
             : std::min<std::uint64_t>(selfmon::kHistBuckets - 1,
                                       std::bit_width(ns));
}

struct TraceAgg {
  std::size_t root = SIZE_MAX;  ///< index into dump.spans of the parent-0 span
  std::vector<std::size_t> members;
};

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", v * 100.0);
  return buf;
}

std::string ns_str(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void write_stage_table(std::ostream& os, const char* title,
                       const std::vector<StageBreakdown>& stages,
                       std::uint64_t roots, std::uint64_t e2e_ns,
                       std::uint64_t stage_sum_ns, double reconcile_error) {
  os << title << " (" << roots << " roots, end-to-end "
     << ns_str(e2e_ns) << ")\n";
  os << "  stage             spans      self-time   share\n";
  os << "  ------------------------------------------------\n";
  for (const StageBreakdown& row : stages) {
    const double share =
        e2e_ns == 0 ? 0.0
                    : static_cast<double>(row.self_ns) /
                          static_cast<double>(e2e_ns);
    char line[128];
    std::snprintf(line, sizeof(line), "  %-16s %6llu %14s  %s\n",
                  std::string(trace::to_string(row.stage)).c_str(),
                  static_cast<unsigned long long>(row.count),
                  ns_str(row.self_ns).c_str(), pct(share).c_str());
    os << line;
  }
  os << "  stage sum " << ns_str(stage_sum_ns) << " vs end-to-end "
     << ns_str(e2e_ns) << "  (reconciliation error " << pct(reconcile_error)
     << ")\n";
}

}  // namespace

SpanDump parse_span_dump(std::string_view text) {
  const json::Value root = json::parse(text);
  if (!root.is_object()) schema_fail("top level is not an object");
  if (require_str(root, "kind", "dump") != "papisim_span_dump") {
    schema_fail("kind is not papisim_span_dump");
  }
  const std::uint64_t version = require_u64(root, "schema_version", "dump");
  if (version != trace::kSpanDumpSchemaVersion) {
    schema_fail("unsupported schema_version " + std::to_string(version));
  }
  SpanDump out;
  out.reason = require_str(root, "reason", "dump");
  out.dropped = require_u64(root, "dropped", "dump");

  const json::Value* exemplars = root.find("exemplars");
  if (exemplars != nullptr) {
    if (!exemplars->is_array()) schema_fail("'exemplars' is not an array");
    for (const json::Value& e : exemplars->arr) {
      trace::Exemplar ex;
      ex.bucket = require_u64(e, "bucket", "exemplar");
      ex.trace_id = require_u64(e, "trace_id", "exemplar");
      ex.ns = require_u64(e, "ns", "exemplar");
      ex.count = require_u64(e, "count", "exemplar");
      out.exemplars.push_back(ex);
    }
  }

  const json::Value* spans = root.find("spans");
  if (spans == nullptr || !spans->is_array()) {
    schema_fail("'spans' is missing or not an array");
  }
  out.spans.reserve(spans->arr.size());
  for (const json::Value& sv : spans->arr) {
    trace::Span s;
    s.trace_id = require_u64(sv, "trace_id", "span");
    s.span_id = require_u64(sv, "span_id", "span");
    s.parent_id = require_u64(sv, "parent_id", "span");
    s.t0_ns = require_u64(sv, "t0_ns", "span");
    s.t1_ns = require_u64(sv, "t1_ns", "span");
    s.a = require_u64(sv, "a", "span");
    s.b = require_u64(sv, "b", "span");
    const std::string_view stage = require_str(sv, "stage", "span");
    if (!trace::stage_from_name(stage, s.stage)) {
      schema_fail("unknown stage '" + std::string(stage) + "'");
    }
    const std::string_view status = require_str(sv, "status", "span");
    if (!trace::status_from_name(status, s.status)) {
      schema_fail("unknown status '" + std::string(status) + "'");
    }
    out.spans.push_back(s);
  }
  return out;
}

SpanDump load_span_dump(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(Status::InvalidArgument,
                "span dump: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_span_dump(text.str());
}

double CriticalPath::rpc_reconcile_error() const {
  if (rpc_e2e_ns == 0) return 0.0;
  const std::uint64_t diff = rpc_stage_sum_ns > rpc_e2e_ns
                                 ? rpc_stage_sum_ns - rpc_e2e_ns
                                 : rpc_e2e_ns - rpc_stage_sum_ns;
  return static_cast<double>(diff) / static_cast<double>(rpc_e2e_ns);
}

double CriticalPath::replay_reconcile_error() const {
  if (replay_e2e_ns == 0) return 0.0;
  const std::uint64_t diff = replay_stage_sum_ns > replay_e2e_ns
                                 ? replay_stage_sum_ns - replay_e2e_ns
                                 : replay_e2e_ns - replay_stage_sum_ns;
  return static_cast<double>(diff) / static_cast<double>(replay_e2e_ns);
}

CriticalPath critical_path(const SpanDump& dump) {
  CriticalPath cp;

  // Self-time: each span's duration minus its direct children's durations
  // (unclipped children; the difference clamped at zero).  Children link by
  // parent span id; span ids are globally unique so one flat map suffices.
  std::unordered_map<std::uint64_t, std::uint64_t> child_ns;
  child_ns.reserve(dump.spans.size());
  for (const trace::Span& s : dump.spans) {
    if (s.parent_id != 0) child_ns[s.parent_id] += s.dur_ns();
  }
  const auto self_ns = [&](const trace::Span& s) {
    const auto it = child_ns.find(s.span_id);
    const std::uint64_t kids = it == child_ns.end() ? 0 : it->second;
    const std::uint64_t dur = s.dur_ns();
    return dur > kids ? dur - kids : 0;
  };

  // Group spans into traces and find each trace's root.
  std::unordered_map<std::uint64_t, TraceAgg> traces;
  for (std::size_t i = 0; i < dump.spans.size(); ++i) {
    TraceAgg& agg = traces[dump.spans[i].trace_id];
    agg.members.push_back(i);
    if (dump.spans[i].parent_id == 0) agg.root = i;
  }

  StageBreakdown rpc_rows[trace::kNumStages];
  StageBreakdown replay_rows[trace::kNumStages];
  std::vector<std::uint64_t> rpc_durations;
  std::vector<std::uint64_t> rpc_trace_of_duration;

  for (const auto& [trace_id, agg] : traces) {
    if (agg.root == SIZE_MAX) {
      cp.orphan_spans += agg.members.size();
      continue;
    }
    const trace::Span& root = dump.spans[agg.root];
    StageBreakdown* rows = nullptr;
    if (root.stage == trace::Stage::Rpc) {
      rows = rpc_rows;
      ++cp.rpc_roots;
      cp.rpc_e2e_ns += root.dur_ns();
      rpc_durations.push_back(root.dur_ns());
      rpc_trace_of_duration.push_back(trace_id);
    } else if (root.stage == trace::Stage::Measure) {
      rows = replay_rows;
      ++cp.replay_roots;
      cp.replay_e2e_ns += root.dur_ns();
    } else {
      continue;  // orphan-root traces (e.g. rebaseline markers)
    }
    for (const std::size_t i : agg.members) {
      const trace::Span& s = dump.spans[i];
      StageBreakdown& row = rows[static_cast<std::size_t>(s.stage)];
      row.stage = s.stage;
      ++row.count;
      row.self_ns += self_ns(s);
    }
  }

  for (std::size_t st = 0; st < trace::kNumStages; ++st) {
    if (rpc_rows[st].count != 0) {
      cp.rpc_stage_sum_ns += rpc_rows[st].self_ns;
      cp.rpc_stages.push_back(rpc_rows[st]);
    }
    if (replay_rows[st].count != 0) {
      cp.replay_stage_sum_ns += replay_rows[st].self_ns;
      cp.replay_stages.push_back(replay_rows[st]);
    }
  }
  std::stable_sort(cp.rpc_stages.begin(), cp.rpc_stages.end(),
                   [](const auto& a, const auto& b) {
                     return a.self_ns > b.self_ns;
                   });
  std::stable_sort(cp.replay_stages.begin(), cp.replay_stages.end(),
                   [](const auto& a, const auto& b) {
                     return a.self_ns > b.self_ns;
                   });

  // p99 of rpc root durations, exemplar-linked: prefer the dump's exemplar
  // table cell for the p99's latency bucket (the recorder noted a concrete
  // trace there), falling back to the root at the p99 rank.
  if (!rpc_durations.empty()) {
    std::vector<std::size_t> order(rpc_durations.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rpc_durations[a] < rpc_durations[b];
    });
    const std::size_t rank = static_cast<std::size_t>(
        0.99 * static_cast<double>(order.size() - 1) + 0.5);
    cp.p99_ns = rpc_durations[order[rank]];
    cp.p99_trace_id = rpc_trace_of_duration[order[rank]];
    const std::uint64_t want = bucket_of(cp.p99_ns);
    for (const trace::Exemplar& e : dump.exemplars) {
      if (e.bucket == want && e.trace_id != 0) {
        cp.p99_trace_id = e.trace_id;
        break;
      }
    }
  }
  return cp;
}

void write_critical_path_text(std::ostream& os, const SpanDump& dump,
                              const CriticalPath& cp) {
  os << "span dump: reason=" << dump.reason << " spans=" << dump.spans.size()
     << " dropped=" << dump.dropped << " orphans=" << cp.orphan_spans << "\n\n";
  if (cp.rpc_roots != 0) {
    write_stage_table(os, "RPC critical path", cp.rpc_stages, cp.rpc_roots,
                      cp.rpc_e2e_ns, cp.rpc_stage_sum_ns,
                      cp.rpc_reconcile_error());
    os << "  p99 " << ns_str(cp.p99_ns) << ", exemplar trace "
       << cp.p99_trace_id << "\n\n";
  }
  if (cp.replay_roots != 0) {
    write_stage_table(os, "Replay critical path", cp.replay_stages,
                      cp.replay_roots, cp.replay_e2e_ns,
                      cp.replay_stage_sum_ns, cp.replay_reconcile_error());
    os << '\n';
  }
  if (cp.rpc_roots == 0 && cp.replay_roots == 0) {
    os << "no complete traces in the dump\n";
    return;
  }

  // The exemplar trace, as a tree: every span of that trace in start order,
  // indented by parent depth.
  if (cp.p99_trace_id != 0) {
    std::vector<const trace::Span*> members;
    for (const trace::Span& s : dump.spans) {
      if (s.trace_id == cp.p99_trace_id) members.push_back(&s);
    }
    if (!members.empty()) {
      std::sort(members.begin(), members.end(),
                [](const trace::Span* a, const trace::Span* b) {
                  return a->t0_ns != b->t0_ns ? a->t0_ns < b->t0_ns
                                              : a->span_id < b->span_id;
                });
      std::unordered_map<std::uint64_t, int> depth;
      os << "exemplar trace " << cp.p99_trace_id << ":\n";
      for (const trace::Span* s : members) {
        int d = 0;
        const auto it = depth.find(s->parent_id);
        if (it != depth.end()) d = it->second + 1;
        depth[s->span_id] = d;
        os << "  " << std::string(static_cast<std::size_t>(d) * 2, ' ')
           << trace::to_string(s->stage) << " [" << trace::to_string(s->status)
           << "] " << ns_str(s->dur_ns()) << " (t0+" << ns_str(s->t0_ns)
           << ", a=" << s->a << ", b=" << s->b << ")\n";
      }
    }
  }
}

}  // namespace papisim::analysis
