// Signature-based phase classification (DESIGN.md §3e).
//
// Each segment between change points is reduced to a feature vector of the
// component ratios the paper reads off its Fig. 11/12 plots -- read:write
// ratio, GPU-power level, network level -- and labeled by the first matching
// entry of a small declarative rule table.  Levels are normalized within
// the timeline (power against its observed idle..peak range, traffic
// against the busiest segment), so one table covers machines with very
// different absolute rates.
#pragma once

#include <limits>
#include <span>
#include <string>
#include <vector>

#include "analysis/timeline.hpp"

namespace papisim::analysis {

/// dt-weighted per-segment means plus the normalized levels the rules read.
struct SegmentFeatures {
  std::size_t first_row = 0;  ///< rate-row range [first_row, end_row)
  std::size_t end_row = 0;
  double t0_sec = 0, t1_sec = 0, dur_sec = 0;
  double read_bps = 0, write_bps = 0;
  double rw_ratio = 0;      ///< read/write; large when writes are ~absent
  double gpu_power_w = 0;   ///< mean gauge value, watts (0: no power column)
  double net_bps = 0;       ///< recv + xmit
  double mem_level = 0;     ///< (read+write) / busiest segment's (read+write)
  double read_level = 0, write_level = 0;  ///< per-direction analogues
  double gpu_level = 0;     ///< (power - idle) / (peak - idle), 0 w/o column
  double net_level = 0;     ///< net_bps / busiest segment's net_bps
};

/// Closed interval [lo, hi]; default accepts everything, so rules name only
/// the features they constrain.
struct Band {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool contains(double v) const { return v >= lo && v <= hi; }
};

/// One row of the rule table; all bands must accept (conjunction).  Rules
/// are evaluated in order and the first match wins.
struct Rule {
  std::string label;
  Band rw_ratio{};
  Band mem_level{};
  Band gpu_level{};
  Band net_level{};
  Band read_level{};
  Band write_level{};
};

/// Feature extraction for the segments induced by `boundaries` (as returned
/// by detect_boundaries: ascending first-row indices, 0 excluded).
std::vector<SegmentFeatures> segment_features(
    const Timeline& timeline, const std::vector<std::size_t>& boundaries);

/// First-match rule evaluation; "unknown" when no rule accepts.
std::string classify(const SegmentFeatures& f, std::span<const Rule> rules);

/// Rule table for the paper's 3D-FFT pipeline (Fig. 11): all2all by network
/// burst, fft by GPU power (or, on memory-only timelines, by one-sided
/// H2D/D2H copy traffic), the two re-sort flavors by read:write ratio.
const std::vector<Rule>& fft_rules();

/// Rule table for the QMCPACK stages (Fig. 12): DMC by walker-exchange
/// network spikes or peak GPU power, VMC-with-drift by the intermediate
/// power plateau, VMC-without-drift as the remaining memory-bound stage.
const std::vector<Rule>& qmc_rules();

/// Canonical class of a ground-truth FFT phase name ("resort1_S1CF" ->
/// "resort_strided", "fft_z" -> "fft", "all2all_1" -> "all2all"), matching
/// the labels fft_rules() emits -- the oracle side of SegmentationScore.
std::string fft_phase_class(const std::string& phase_name);

}  // namespace papisim::analysis
