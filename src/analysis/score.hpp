// Segmentation quality against a ground-truth oracle (fft::PhaseStats,
// qmc::QmcPhase, or a RegionProfiler timeline): boundary distance and
// dt-weighted label agreement.  Ground truth is demoted to validation --
// the pipeline never sees it; this API measures how close inference got.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/regions.hpp"

namespace papisim::analysis {

/// One oracle interval; `label` should already be in the classifier's
/// vocabulary (e.g. via fft_phase_class for FFT phase names).
struct TruthSpan {
  std::string label;
  double t0_sec = 0;
  double t1_sec = 0;
};

struct SegmentationScore {
  std::size_t truth_boundaries = 0;     ///< interior truth transitions
  std::size_t inferred_boundaries = 0;
  std::size_t matched_boundaries = 0;   ///< truth transitions with an inferred
                                        ///< boundary within tolerance
  double mean_boundary_err_sec = 0;     ///< truth -> nearest inferred distance
  double max_boundary_err_sec = 0;
  double label_accuracy = 0;  ///< dt-weighted fraction of rows whose inferred
                              ///< label equals the truth label at the row mid
  double tolerance_sec = 0;
};

/// Score `seg` against `truth` spans.  `tolerance_sec` is typically one
/// sample interval (Timeline::median_interval_sec()).  Rows whose midpoint
/// no truth span covers are excluded from the accuracy denominator.
SegmentationScore score_segmentation(const Timeline& timeline,
                                     const Segmentation& seg,
                                     std::span<const TruthSpan> truth,
                                     double tolerance_sec);

/// Oracle spans from a RegionProfiler recording, keeping intervals at the
/// given stack depth (1 = top-level regions); the region's leaf name is the
/// label.
std::vector<TruthSpan> truth_from_regions(const std::vector<RegionInterval>& tl,
                                          std::size_t depth = 1);

}  // namespace papisim::analysis
