// Per-phase attribution: integrate each inferred segment's rates back into
// totals (traffic, energy proxy, network bytes, harness-overhead share) and
// emit the labeled profile as a text table or JSON -- the paper's Fig. 11/12
// "per-phase summary", produced from measurements instead of ground truth.
#pragma once

#include <ostream>
#include <span>
#include <vector>

#include "analysis/pipeline.hpp"

namespace papisim::analysis {

struct FootprintReport;

/// Version of the JSON document write_report_json emits.  v2 added the
/// "schema_version" field itself and the optional "footprint" section;
/// v1 documents are exactly v2 minus those two keys.
inline constexpr int kReportSchemaVersion = 2;

struct PhaseAttribution {
  std::string label;
  double t0_sec = 0, t1_sec = 0, dur_sec = 0;
  double read_bytes = 0;   ///< integral of MemRead rates
  double write_bytes = 0;  ///< integral of MemWrite rates
  double rw_ratio = 0;     ///< read_bytes / write_bytes (0 when no writes)
  double net_bytes = 0;    ///< integral of NetRecv + NetXmit rates
  double energy_j = 0;     ///< integral of GPU power (energy proxy, joules)
  /// Fraction of the segment's wall time spent in harness code (from a
  /// selfmon ".sum_ns" column); 0 when the timeline carries none.
  double selfmon_share = 0;
};

std::vector<PhaseAttribution> attribute(const Timeline& timeline,
                                        const Segmentation& seg);

/// Aligned text table, one row per segment plus a totals row.
void write_report_text(std::ostream& os,
                       std::span<const PhaseAttribution> report);

/// JSON document: {"schema_version": 2, "columns": [...], "segments": [...]}
/// with one object per segment (label, interval, traffic, energy, overhead
/// share).  When `footprint` is non-null a "footprint" key carries the
/// hot-footprint section (write_footprint_json's object).  All strings pass
/// through json_escape.
void write_report_json(std::ostream& os, const Timeline& timeline,
                       std::span<const PhaseAttribution> report,
                       const FootprintReport* footprint = nullptr);

}  // namespace papisim::analysis
