// The full segmentation pipeline: detect change points, extract features,
// label each segment from a rule table, coalesce adjacent segments that got
// the same label (a GPU-FFT phase's H2D / compute / D2H sub-regimes fold
// back into one "fft" segment).  Runs identically on a live Sampler
// timeline and on one recovered from a saved pcp::Archive.
#pragma once

#include <string>
#include <vector>

#include "analysis/changepoint.hpp"
#include "analysis/classify.hpp"
#include "core/trace_export.hpp"

namespace papisim::analysis {

struct AnalysisConfig {
  DetectorConfig detector{};
  /// Rule table; defaults to the FFT pipeline table (the paper's flagship
  /// Fig. 11 workload).  Swap in qmc_rules() or a custom table.
  std::vector<Rule> rules = fft_rules();
  /// Merge neighboring segments whose labels agree.
  bool coalesce_same_label = true;
};

/// The inferred, labeled segmentation of one timeline.
struct Segmentation {
  std::vector<std::size_t> boundaries;      ///< ascending, in (0, num_rows)
  std::vector<std::string> labels;          ///< size boundaries.size() + 1
  std::vector<SegmentFeatures> features;    ///< parallel to labels
  std::vector<double> boundary_times_sec;   ///< t0 of each boundary row

  std::size_t num_segments() const { return labels.size(); }
};

Segmentation analyze(const Timeline& timeline, const AnalysisConfig& cfg = {});

/// The inferred segments as trace spans, ready to sit next to the
/// ground-truth "phases" track in write_chrome_trace.
std::vector<TraceSpan> to_trace_spans(const Segmentation& seg,
                                      const std::string& track = "inferred");

}  // namespace papisim::analysis
