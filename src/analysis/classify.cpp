#include "analysis/classify.hpp"

#include <algorithm>
#include <cmath>

namespace papisim::analysis {

namespace {

/// Sum of `cols` values in one rate row.
double row_sum(const RateRow& r, const std::vector<std::size_t>& cols) {
  double s = 0;
  for (const std::size_t c : cols) s += r.values[c];
  return s;
}

}  // namespace

std::vector<SegmentFeatures> segment_features(
    const Timeline& tl, const std::vector<std::size_t>& boundaries) {
  std::vector<SegmentFeatures> out;
  if (tl.num_rows() == 0) return out;

  const std::vector<std::size_t> rd = tl.columns_with_role(ColumnRole::MemRead);
  const std::vector<std::size_t> wr = tl.columns_with_role(ColumnRole::MemWrite);
  const std::vector<std::size_t> pw = tl.columns_with_role(ColumnRole::GpuPower);
  std::vector<std::size_t> net = tl.columns_with_role(ColumnRole::NetRecv);
  for (const std::size_t c : tl.columns_with_role(ColumnRole::NetXmit)) {
    net.push_back(c);
  }

  // Timeline-wide power range: idle..peak over every row (gauges are
  // instantaneous, so rows -- not segment means -- set the extremes).
  double p_lo = 0, p_hi = 0;
  if (!pw.empty()) {
    p_lo = p_hi = row_sum(tl.rates[0], pw);
    for (const RateRow& r : tl.rates) {
      const double p = row_sum(r, pw);
      p_lo = std::min(p_lo, p);
      p_hi = std::max(p_hi, p);
    }
  }

  // Segment boundaries -> [first, end) row ranges.
  std::vector<std::size_t> edges;
  edges.push_back(0);
  for (const std::size_t b : boundaries) edges.push_back(b);
  edges.push_back(tl.num_rows());

  for (std::size_t s = 0; s + 1 < edges.size(); ++s) {
    SegmentFeatures f;
    f.first_row = edges[s];
    f.end_row = edges[s + 1];
    f.t0_sec = tl.rates[f.first_row].t0_sec;
    f.t1_sec = tl.rates[f.end_row - 1].t1_sec;
    double dur = 0, rd_acc = 0, wr_acc = 0, pw_acc = 0, net_acc = 0;
    for (std::size_t i = f.first_row; i < f.end_row; ++i) {
      const RateRow& r = tl.rates[i];
      const double dt = tl.dt(i);
      dur += dt;
      rd_acc += row_sum(r, rd) * dt;
      wr_acc += row_sum(r, wr) * dt;
      pw_acc += row_sum(r, pw) * dt;
      net_acc += row_sum(r, net) * dt;
    }
    f.dur_sec = dur;
    if (dur > 0) {
      f.read_bps = rd_acc / dur;
      f.write_bps = wr_acc / dur;
      f.gpu_power_w = pw_acc / dur / 1000.0;  // NVML gauges are milliwatts
      f.net_bps = net_acc / dur;
    }
    out.push_back(f);
  }

  // Normalized levels against the busiest segment / the power range.
  double mem_hi = 0, read_hi = 0, write_hi = 0, net_hi = 0;
  for (const SegmentFeatures& f : out) {
    mem_hi = std::max(mem_hi, f.read_bps + f.write_bps);
    read_hi = std::max(read_hi, f.read_bps);
    write_hi = std::max(write_hi, f.write_bps);
    net_hi = std::max(net_hi, f.net_bps);
  }
  for (SegmentFeatures& f : out) {
    f.mem_level = mem_hi > 0 ? (f.read_bps + f.write_bps) / mem_hi : 0.0;
    f.read_level = read_hi > 0 ? f.read_bps / read_hi : 0.0;
    f.write_level = write_hi > 0 ? f.write_bps / write_hi : 0.0;
    f.net_level = net_hi > 0 ? f.net_bps / net_hi : 0.0;
    const double p_span = (p_hi - p_lo) / 1000.0;
    f.gpu_level = p_span > 0 ? (f.gpu_power_w - p_lo / 1000.0) / p_span : 0.0;
    // read:write with a scale-relative floor so one-sided copies get a
    // large-but-finite ratio and idle segments a neutral 0.
    const double floor = std::max(mem_hi * 1e-9, 1e-12);
    f.rw_ratio = f.read_bps / std::max(f.write_bps, floor);
  }
  return out;
}

std::string classify(const SegmentFeatures& f, std::span<const Rule> rules) {
  for (const Rule& r : rules) {
    if (r.rw_ratio.contains(f.rw_ratio) && r.mem_level.contains(f.mem_level) &&
        r.gpu_level.contains(f.gpu_level) && r.net_level.contains(f.net_level) &&
        r.read_level.contains(f.read_level) &&
        r.write_level.contains(f.write_level)) {
      return r.label;
    }
  }
  return "unknown";
}

const std::vector<Rule>& fft_rules() {
  static const std::vector<Rule> rules = {
      // Network burst: only the All2All exchanges touch the fabric.
      {.label = "all2all", .net_level = {0.3, 1.0}},
      // GPU active (H2D at the copy plateau, the compute peak, D2H).
      {.label = "fft", .gpu_level = {0.12, 1.0}},
      // Strided re-sort: ~2 reads per write (S1CF), ~1.25 planewise (S1PF).
      {.label = "resort_strided", .rw_ratio = {1.15, 3.6}, .mem_level = {0.05, 1.0}},
      // Sequential re-sort: balanced streams.
      {.label = "resort_sequential", .rw_ratio = {0.45, 1.15}, .mem_level = {0.05, 1.0}},
      // Memory-only timelines (archives): the copies are one-sided.
      {.label = "fft", .rw_ratio = {3.6, std::numeric_limits<double>::infinity()},
       .mem_level = {0.05, 1.0}},
      {.label = "fft", .rw_ratio = {0.0, 0.45}, .mem_level = {0.05, 1.0}},
      // Nothing measurable on any component.
      {.label = "idle", .mem_level = {0.0, 0.05}, .gpu_level = {0.0, 0.12},
       .net_level = {0.0, 0.3}},
  };
  return rules;
}

const std::vector<Rule>& qmc_rules() {
  static const std::vector<Rule> rules = {
      // Walker redistribution over MPI happens only while branching in DMC.
      {.label = "DMC", .net_level = {0.3, 1.0}},
      // DMC runs the GPU at its peak plateau.
      {.label = "DMC", .gpu_level = {0.8, 1.0}},
      // Drift gradients: the intermediate power plateau.
      {.label = "VMC_drift", .gpu_level = {0.15, 0.8}},
      // Walker moves over the spline tables: memory-bound, GPU near idle.
      {.label = "VMC_no_drift", .mem_level = {0.05, 1.0}, .gpu_level = {0.0, 0.15}},
      {.label = "idle", .mem_level = {0.0, 0.05}},
  };
  return rules;
}

std::string fft_phase_class(const std::string& phase_name) {
  if (phase_name.find("all2all") != std::string::npos) return "all2all";
  if (phase_name.rfind("fft", 0) == 0) return "fft";
  if (phase_name.find("S1") != std::string::npos) return "resort_strided";
  if (phase_name.find("S2") != std::string::npos) return "resort_sequential";
  return phase_name;
}

}  // namespace papisim::analysis
