#include "analysis/score.hpp"

#include <algorithm>
#include <cmath>

namespace papisim::analysis {

SegmentationScore score_segmentation(const Timeline& tl, const Segmentation& seg,
                                     std::span<const TruthSpan> truth,
                                     double tolerance_sec) {
  SegmentationScore sc;
  sc.tolerance_sec = tolerance_sec;
  sc.inferred_boundaries = seg.boundaries.size();

  // Boundary distances: every interior truth transition against the nearest
  // inferred boundary time.
  double err_sum = 0;
  for (std::size_t k = 0; k + 1 < truth.size(); ++k) {
    const double t = truth[k + 1].t0_sec;
    ++sc.truth_boundaries;
    double best = tl.duration_sec();  // "infinitely far" within the window
    for (const double b : seg.boundary_times_sec) {
      best = std::min(best, std::abs(b - t));
    }
    err_sum += best;
    sc.max_boundary_err_sec = std::max(sc.max_boundary_err_sec, best);
    if (best <= tolerance_sec) ++sc.matched_boundaries;
  }
  if (sc.truth_boundaries > 0) {
    sc.mean_boundary_err_sec = err_sum / static_cast<double>(sc.truth_boundaries);
  }

  // dt-weighted row label agreement.
  double covered = 0, agreed = 0;
  std::size_t s = 0;
  for (std::size_t i = 0; i < tl.num_rows(); ++i) {
    while (s < seg.boundaries.size() && i >= seg.boundaries[s]) ++s;
    const double mid = 0.5 * (tl.rates[i].t0_sec + tl.rates[i].t1_sec);
    const TruthSpan* span = nullptr;
    for (const TruthSpan& ts : truth) {
      if (mid >= ts.t0_sec && mid <= ts.t1_sec) {
        span = &ts;
        break;
      }
    }
    if (span == nullptr) continue;  // gap in the oracle: not scored
    const double w = tl.dt(i);
    covered += w;
    if (s < seg.labels.size() && seg.labels[s] == span->label) agreed += w;
  }
  sc.label_accuracy = covered > 0 ? agreed / covered : 0.0;
  return sc;
}

std::vector<TruthSpan> truth_from_regions(const std::vector<RegionInterval>& tl,
                                          std::size_t depth) {
  std::vector<TruthSpan> out;
  for (const RegionInterval& r : tl) {
    if (r.depth != depth) continue;
    const std::size_t slash = r.path.rfind('/');
    TruthSpan ts;
    ts.label = slash == std::string::npos ? r.path : r.path.substr(slash + 1);
    ts.t0_sec = r.t0_sec;
    ts.t1_sec = r.t1_sec;
    out.push_back(std::move(ts));
  }
  std::sort(out.begin(), out.end(),
            [](const TruthSpan& a, const TruthSpan& b) { return a.t0_sec < b.t0_sec; });
  return out;
}

}  // namespace papisim::analysis
