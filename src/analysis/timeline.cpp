#include "analysis/timeline.hpp"

#include <algorithm>
#include <cctype>

#include "pcp/pmlogger.hpp"

namespace papisim::analysis {

namespace {

std::string lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

}  // namespace

const char* to_string(ColumnRole role) {
  switch (role) {
    case ColumnRole::MemRead: return "mem_read";
    case ColumnRole::MemWrite: return "mem_write";
    case ColumnRole::GpuPower: return "gpu_power";
    case ColumnRole::NetRecv: return "net_recv";
    case ColumnRole::NetXmit: return "net_xmit";
    case ColumnRole::SelfOverheadNs: return "self_overhead_ns";
    case ColumnRole::Other: return "other";
  }
  return "other";
}

ColumnRole infer_role(const std::string& column) {
  const std::string c = lower(column);
  if (c.find("read_bytes") != std::string::npos) return ColumnRole::MemRead;
  if (c.find("write_bytes") != std::string::npos) return ColumnRole::MemWrite;
  if (c.find("power") != std::string::npos) return ColumnRole::GpuPower;
  if (c.find("port_recv") != std::string::npos || c.find("rcv_data") != std::string::npos) {
    return ColumnRole::NetRecv;
  }
  if (c.find("port_xmit") != std::string::npos || c.find("port_send") != std::string::npos) {
    return ColumnRole::NetXmit;
  }
  if (c.rfind("selfmon", 0) == 0 && c.find(".sum_ns") != std::string::npos) {
    return ColumnRole::SelfOverheadNs;
  }
  return ColumnRole::Other;
}

double Timeline::median_interval_sec() const {
  std::vector<double> dts;
  dts.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) dts.push_back(dt(i));
  return median(std::move(dts));
}

double Timeline::max_interval_sec() const {
  double mx = 0.0;
  for (std::size_t i = 0; i < rates.size(); ++i) mx = std::max(mx, dt(i));
  return mx;
}

std::vector<std::size_t> Timeline::columns_with_role(ColumnRole role) const {
  std::vector<std::size_t> out;
  for (std::size_t c = 0; c < roles.size(); ++c) {
    if (roles[c] == role) out.push_back(c);
  }
  return out;
}

Timeline Timeline::select_columns(const std::vector<std::size_t>& keep) const {
  Timeline out;
  out.columns.reserve(keep.size());
  for (const std::size_t c : keep) {
    out.columns.push_back(columns[c]);
    out.gauge.push_back(gauge[c]);
    out.roles.push_back(roles[c]);
  }
  out.rates.reserve(rates.size());
  for (const RateRow& r : rates) {
    RateRow nr;
    nr.t0_sec = r.t0_sec;
    nr.t1_sec = r.t1_sec;
    nr.values.reserve(keep.size());
    for (const std::size_t c : keep) nr.values.push_back(r.values[c]);
    out.rates.push_back(std::move(nr));
  }
  return out;
}

Timeline timeline_from_sampler(const Sampler& sampler) {
  Timeline tl;
  tl.columns = sampler.columns();
  tl.gauge.assign(sampler.column_is_gauge().begin(),
                  sampler.column_is_gauge().end());
  tl.roles.reserve(tl.columns.size());
  for (const std::string& c : tl.columns) tl.roles.push_back(infer_role(c));
  tl.rates = sampler.rates();
  return tl;
}

Timeline timeline_from_archive(const pcp::Archive& archive) {
  Timeline tl;
  tl.columns = archive.metrics;
  tl.gauge.assign(tl.columns.size(), false);  // archives log raw counters
  tl.roles.reserve(tl.columns.size());
  for (const std::string& c : tl.columns) tl.roles.push_back(infer_role(c));
  if (archive.records.size() < 2) return tl;
  tl.rates.reserve(archive.records.size() - 1);
  for (std::size_t i = 1; i < archive.records.size(); ++i) {
    const pcp::ArchiveRecord& a = archive.records[i - 1];
    const pcp::ArchiveRecord& b = archive.records[i];
    RateRow r;
    r.t0_sec = a.t_sec;
    r.t1_sec = b.t_sec;
    const double dt = b.t_sec - a.t_sec;
    r.values.reserve(tl.columns.size());
    for (std::size_t c = 0; c < tl.columns.size(); ++c) {
      // Signed delta clamped at 0: a restarted daemon re-baselines counters
      // and the logger may catch one record across the seam.
      const auto delta = static_cast<long long>(b.values[c] - a.values[c]);
      r.values.push_back(dt > 0 && delta > 0 ? static_cast<double>(delta) / dt
                                             : 0.0);
    }
    tl.rates.push_back(std::move(r));
  }
  return tl;
}

}  // namespace papisim::analysis
