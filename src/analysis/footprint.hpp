// Hot-footprint attribution (DESIGN.md §3g): join the SPE sample stream
// against phase boundaries and aggregate per phase into an address-bucket
// histogram -- which address ranges a phase actually touched, where those
// touches were satisfied (L3 / victim / memory / bypass), and roughly how
// many bytes each range accounts for.  This is the per-access complement of
// the per-phase traffic integrals in report.hpp: attribute() says a phase
// moved 3 GB; the footprint says 90% of it came from one 64 KiB array.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "analysis/pipeline.hpp"
#include "core/trace_export.hpp"
#include "spe/ring.hpp"

namespace papisim::analysis {

/// One labeled time interval samples are attributed to.  Built from an
/// inferred Segmentation (phase_windows) or handed in directly by tests
/// and tools that know their ground-truth boundaries.
struct PhaseWindow {
  std::string label;
  double t0_sec = 0;
  double t1_sec = 0;  ///< exclusive upper edge (last window: inclusive)
};

/// The inferred segments as attribution windows.
std::vector<PhaseWindow> phase_windows(const Segmentation& seg);

struct FootprintConfig {
  /// Address-bucket granularity; addresses are grouped by addr / bucket_bytes.
  std::uint64_t bucket_bytes = 64 * 1024;
  /// Buckets kept per phase (by sample count, descending); the rest folds
  /// into PhaseFootprint::other_samples.
  std::size_t top_k = 8;
  /// Sampling period the stream was recorded at; scales est_bytes.
  std::uint64_t period = 1024;
  /// Cache-line size of the machine that produced the stream.
  std::uint64_t line_bytes = 64;
};

/// One address bucket's aggregate within one phase.
struct FootprintBucket {
  std::uint64_t base = 0;  ///< first byte address of the bucket
  std::uint64_t samples = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  /// Per-hit-level sample counts, indexed by spe::HitLevel.
  std::uint64_t levels[spe::kNumHitLevels] = {};
  /// samples * period * line_bytes: the line traffic the samples stand for.
  double est_bytes = 0;

  spe::HitLevel dominant_level() const;
};

struct PhaseFootprint {
  std::string label;
  double t0_sec = 0;
  double t1_sec = 0;
  std::uint64_t samples = 0;        ///< all samples attributed to this phase
  std::uint64_t other_samples = 0;  ///< in buckets beyond top_k
  std::vector<FootprintBucket> buckets;  ///< top_k, descending by samples
};

struct FootprintReport {
  FootprintConfig config;
  std::uint64_t total_samples = 0;         ///< size of the input stream
  std::uint64_t unattributed_samples = 0;  ///< outside every window
  std::vector<PhaseFootprint> phases;      ///< window order preserved
};

/// Aggregate a drained sample stream against the windows.  Sample times are
/// virtual nanoseconds (spe::Sample::time_ns); windows are seconds on the
/// same virtual clock.  Deterministic: bucket order is (samples desc, base
/// asc), independent of input order beyond the per-core FIFO the collector
/// guarantees.
FootprintReport footprint(std::span<const spe::Sample> samples,
                          std::span<const PhaseWindow> windows,
                          const FootprintConfig& cfg = {});

/// Aligned text table: one block per phase, one row per top bucket.
void write_footprint_text(std::ostream& os, const FootprintReport& report);

/// The report as one JSON object (the "footprint" section of the v2 report
/// schema; also valid standalone).
void write_footprint_json(std::ostream& os, const FootprintReport& report);

/// Per-phase hot buckets as rank tracks ("footprint#1" .. "footprint#K",
/// K <= max_ranks) for write_chrome_trace: rank r's span over a phase names
/// that phase's r-th hottest bucket, its dominant hit level and its sample
/// share, so the hot addresses read as a timeline next to the counter rows.
std::vector<TraceSpan> footprint_trace_spans(const FootprintReport& report,
                                             std::size_t max_ranks = 3);

}  // namespace papisim::analysis
