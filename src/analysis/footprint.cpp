#include "analysis/footprint.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "core/json_util.hpp"

namespace papisim::analysis {

namespace {

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string size_str(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%lluMiB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%lluKiB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace

spe::HitLevel FootprintBucket::dominant_level() const {
  std::size_t best = 0;
  for (std::size_t l = 1; l < spe::kNumHitLevels; ++l) {
    if (levels[l] > levels[best]) best = l;
  }
  return static_cast<spe::HitLevel>(best);
}

std::vector<PhaseWindow> phase_windows(const Segmentation& seg) {
  std::vector<PhaseWindow> out;
  out.reserve(seg.num_segments());
  for (std::size_t s = 0; s < seg.num_segments(); ++s) {
    out.push_back({seg.labels[s], seg.features[s].t0_sec, seg.features[s].t1_sec});
  }
  return out;
}

FootprintReport footprint(std::span<const spe::Sample> samples,
                          std::span<const PhaseWindow> windows,
                          const FootprintConfig& cfg) {
  FootprintReport report;
  report.config = cfg;
  if (report.config.bucket_bytes == 0) report.config.bucket_bytes = 64 * 1024;
  report.total_samples = samples.size();

  // Bucket maps keyed by bucket index, one per window.  std::map keeps the
  // full aggregation deterministic (iteration in base order) before the
  // top-k cut.
  std::vector<std::map<std::uint64_t, FootprintBucket>> agg(windows.size());
  std::vector<std::uint64_t> window_samples(windows.size(), 0);

  const double bytes_per_sample =
      static_cast<double>(report.config.period) *
      static_cast<double>(report.config.line_bytes);

  for (const spe::Sample& s : samples) {
    const double t_sec = static_cast<double>(s.time_ns) * 1e-9;
    std::size_t w = windows.size();
    for (std::size_t i = 0; i < windows.size(); ++i) {
      const bool last = i + 1 == windows.size();
      if (t_sec >= windows[i].t0_sec &&
          (t_sec < windows[i].t1_sec || (last && t_sec <= windows[i].t1_sec))) {
        w = i;
        break;
      }
    }
    if (w == windows.size()) {
      ++report.unattributed_samples;
      continue;
    }
    ++window_samples[w];
    const std::uint64_t idx = s.addr / report.config.bucket_bytes;
    FootprintBucket& b = agg[w][idx];
    b.base = idx * report.config.bucket_bytes;
    ++b.samples;
    (s.kind == spe::AccessKind::Load ? b.loads : b.stores) += 1;
    ++b.levels[static_cast<std::size_t>(s.level)];
    b.est_bytes += bytes_per_sample;
  }

  report.phases.reserve(windows.size());
  for (std::size_t w = 0; w < windows.size(); ++w) {
    PhaseFootprint pf;
    pf.label = windows[w].label;
    pf.t0_sec = windows[w].t0_sec;
    pf.t1_sec = windows[w].t1_sec;
    pf.samples = window_samples[w];
    std::vector<FootprintBucket> buckets;
    buckets.reserve(agg[w].size());
    for (const auto& [idx, b] : agg[w]) buckets.push_back(b);
    std::stable_sort(buckets.begin(), buckets.end(),
                     [](const FootprintBucket& a, const FootprintBucket& b) {
                       if (a.samples != b.samples) return a.samples > b.samples;
                       return a.base < b.base;
                     });
    const std::size_t keep = std::min(buckets.size(), report.config.top_k);
    for (std::size_t i = keep; i < buckets.size(); ++i) {
      pf.other_samples += buckets[i].samples;
    }
    buckets.resize(keep);
    pf.buckets = std::move(buckets);
    report.phases.push_back(std::move(pf));
  }
  return report;
}

void write_footprint_text(std::ostream& os, const FootprintReport& report) {
  os << "hot footprint: bucket=" << size_str(report.config.bucket_bytes)
     << " period=1/" << report.config.period
     << " samples=" << report.total_samples
     << " unattributed=" << report.unattributed_samples << "\n";
  for (const PhaseFootprint& pf : report.phases) {
    char hdr[160];
    std::snprintf(hdr, sizeof(hdr), "%s [%.2f ms .. %.2f ms] %llu samples",
                  pf.label.c_str(), pf.t0_sec * 1e3, pf.t1_sec * 1e3,
                  static_cast<unsigned long long>(pf.samples));
    os << "\n" << hdr << "\n";
    if (pf.buckets.empty()) {
      os << "  (no samples)\n";
      continue;
    }
    const std::vector<std::string> headers = {"bucket",  "samples", "share",
                                              "loads",   "stores",  "l3_hit",
                                              "victim",  "memory",  "bypass",
                                              "est_MB"};
    std::vector<std::vector<std::string>> rows;
    for (const FootprintBucket& b : pf.buckets) {
      char share[16], mb[24];
      std::snprintf(share, sizeof(share), "%.1f%%",
                    pf.samples > 0
                        ? 100.0 * static_cast<double>(b.samples) /
                              static_cast<double>(pf.samples)
                        : 0.0);
      std::snprintf(mb, sizeof(mb), "%.2f", b.est_bytes / 1e6);
      rows.push_back({hex(b.base), std::to_string(b.samples), share,
                      std::to_string(b.loads), std::to_string(b.stores),
                      std::to_string(b.levels[0]), std::to_string(b.levels[1]),
                      std::to_string(b.levels[2]), std::to_string(b.levels[3]),
                      mb});
    }
    if (pf.other_samples > 0) {
      rows.push_back({"(other)", std::to_string(pf.other_samples), "", "", "",
                      "", "", "", "", ""});
    }
    std::vector<std::size_t> width(headers.size());
    for (std::size_t c = 0; c < headers.size(); ++c) {
      width[c] = headers[c].size();
    }
    for (const auto& row : rows) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers.size(); ++c) {
        os << "  " << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      }
      os << '\n';
    };
    line(headers);
    for (const auto& row : rows) line(row);
  }
}

void write_footprint_json(std::ostream& os, const FootprintReport& report) {
  os << "{\"bucket_bytes\":" << report.config.bucket_bytes
     << ",\"period\":" << report.config.period
     << ",\"line_bytes\":" << report.config.line_bytes
     << ",\"total_samples\":" << report.total_samples
     << ",\"unattributed_samples\":" << report.unattributed_samples
     << ",\"phases\":[";
  for (std::size_t p = 0; p < report.phases.size(); ++p) {
    const PhaseFootprint& pf = report.phases[p];
    if (p) os << ',';
    os << "\n{\"label\":\"" << json_escape(pf.label)
       << "\",\"t0_sec\":" << pf.t0_sec << ",\"t1_sec\":" << pf.t1_sec
       << ",\"samples\":" << pf.samples
       << ",\"other_samples\":" << pf.other_samples << ",\"buckets\":[";
    for (std::size_t i = 0; i < pf.buckets.size(); ++i) {
      const FootprintBucket& b = pf.buckets[i];
      if (i) os << ',';
      os << "\n {\"base\":" << b.base << ",\"base_hex\":\"" << hex(b.base)
         << "\",\"samples\":" << b.samples << ",\"loads\":" << b.loads
         << ",\"stores\":" << b.stores;
      for (std::size_t l = 0; l < spe::kNumHitLevels; ++l) {
        os << ",\"" << spe::to_string(static_cast<spe::HitLevel>(l))
           << "\":" << b.levels[l];
      }
      os << ",\"est_bytes\":" << b.est_bytes << "}";
    }
    os << "]}";
  }
  os << "]}";
}

std::vector<TraceSpan> footprint_trace_spans(const FootprintReport& report,
                                             std::size_t max_ranks) {
  std::vector<TraceSpan> out;
  for (const PhaseFootprint& pf : report.phases) {
    const std::size_t ranks = std::min(pf.buckets.size(), max_ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      const FootprintBucket& b = pf.buckets[r];
      char name[128];
      std::snprintf(name, sizeof(name), "%s+%s %s %.0f%%", hex(b.base).c_str(),
                    size_str(report.config.bucket_bytes).c_str(),
                    spe::to_string(b.dominant_level()),
                    pf.samples > 0 ? 100.0 * static_cast<double>(b.samples) /
                                         static_cast<double>(pf.samples)
                                   : 0.0);
      out.push_back({name, pf.t0_sec, pf.t1_sec,
                     "footprint#" + std::to_string(r + 1)});
    }
  }
  return out;
}

}  // namespace papisim::analysis
