#include "analysis/changepoint.hpp"

#include <algorithm>
#include <cmath>

namespace papisim::analysis {

namespace {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}

}  // namespace

std::vector<double> merged_change_scores(const Timeline& tl,
                                         const DetectorConfig& cfg) {
  const std::size_t n = tl.num_rows();
  if (n < 2) return {};
  std::vector<double> merged(n - 1, 0.0);

  // Fold columns into detection series: one summed series per aggregatable
  // role, plus each unrecognized column by itself.
  std::vector<std::vector<std::size_t>> series;
  for (const ColumnRole role :
       {ColumnRole::MemRead, ColumnRole::MemWrite, ColumnRole::GpuPower,
        ColumnRole::NetRecv, ColumnRole::NetXmit}) {
    std::vector<std::size_t> cols = tl.columns_with_role(role);
    if (!cols.empty()) series.push_back(std::move(cols));
  }
  for (const std::size_t c : tl.columns_with_role(ColumnRole::Other)) {
    series.push_back({c});
  }

  std::vector<double> value(n);
  std::vector<double> deltas(n - 1);
  std::vector<double> abs_dev(n - 1);
  for (const std::vector<std::size_t>& cols : series) {
    double lo = 0, hi = 0;
    for (std::size_t i = 0; i < n; ++i) {
      double s = 0;
      for (const std::size_t c : cols) s += tl.rates[i].values[c];
      value[i] = s;
      lo = i == 0 ? s : std::min(lo, s);
      hi = i == 0 ? s : std::max(hi, s);
    }
    const double range = hi - lo;
    if (range <= 0.0) continue;  // constant series: nothing to detect
    for (std::size_t i = 0; i + 1 < n; ++i) deltas[i] = value[i + 1] - value[i];

    // Robust scale: 1.4826 * MAD ~= sigma for Gaussian jitter, floored so
    // piecewise-constant series do not divide by (almost) zero.
    const double med = median(std::vector<double>(deltas.begin(), deltas.end()));
    for (std::size_t i = 0; i + 1 < n; ++i) abs_dev[i] = std::abs(deltas[i] - med);
    const double mad = median(std::vector<double>(abs_dev.begin(), abs_dev.end()));
    const double sigma = std::max(1.4826 * mad, cfg.sigma_floor_frac * range);

    for (std::size_t i = 0; i + 1 < n; ++i) {
      merged[i] = std::max(merged[i], std::abs(deltas[i]) / sigma);
    }
  }
  return merged;
}

std::vector<std::size_t> detect_boundaries(const Timeline& tl,
                                           const DetectorConfig& cfg) {
  const std::vector<double> z = merged_change_scores(tl, cfg);
  const std::size_t n = tl.num_rows();
  std::vector<std::size_t> out;
  bool armed = true;
  std::size_t last = 0;  // first row of the currently open segment
  for (std::size_t i = 0; i < z.size(); ++i) {
    if (armed && z[i] >= cfg.enter_z) {
      const std::size_t b = i + 1;  // new regime starts at row i+1
      if (b - last >= cfg.min_segment_rows && n - b >= cfg.min_segment_rows) {
        out.push_back(b);
        last = b;
      }
      armed = false;
    } else if (!armed && z[i] < cfg.exit_z) {
      armed = true;
    }
  }
  return out;
}

}  // namespace papisim::analysis
