// Multi-column change-point detection over a rate timeline (DESIGN.md §3e).
//
// Columns are first folded into detection series by role -- all MemRead
// channels sum into one total-read series, MemWrite into total-write,
// GpuPower / NetRecv / NetXmit likewise, unrecognized columns stay
// individual -- because multi-channel controllers interleave: a planewise
// re-sort hops MBA channels row to row, so raw per-channel deltas oscillate
// full-range inside a perfectly steady phase while the totals (the curves
// the paper actually plots) hold still.  Per series, the inter-row rate
// deltas are normalized by a robust scale (median absolute deviation with a
// range-relative floor) so the within-phase jitter injected by
// sim/noise.hpp sets the unit; the normalized scores are merged across
// series by max and walked with a hysteresis trigger plus a
// minimum-segment-length guard.  A phase transition that ramps over several
// samples (GPU power climbing to its compute plateau) produces exactly one
// boundary: the trigger fires on the first large delta and cannot re-arm
// until the merged score falls back below the exit threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/timeline.hpp"

namespace papisim::analysis {

struct DetectorConfig {
  double enter_z = 8.0;  ///< merged score that opens a boundary
  double exit_z = 4.0;   ///< score the signal must drop below to re-arm
  /// Reject boundaries that would create a segment shorter than this many
  /// rate rows (also enforced against the timeline's ends).
  std::size_t min_segment_rows = 2;
  /// Floor on each column's delta scale, as a fraction of the column's
  /// value range: keeps noiseless step-function columns (MAD == 0) from
  /// flagging numerical dust, without muting real steps.
  double sigma_floor_frac = 0.01;
};

/// The merged per-edge change score; entry i scores the edge between rate
/// rows i and i+1 (size == num_rows() - 1, empty for < 2 rows).  Exposed
/// for tests and for tuning against recorded timelines.
std::vector<double> merged_change_scores(const Timeline& timeline,
                                         const DetectorConfig& cfg = {});

/// Detected boundaries: ascending indices b in (0, num_rows()), each the
/// first rate row of a new segment.  Columns with role SelfOverheadNs are
/// excluded (harness overhead tracks the sampler, not the application).
std::vector<std::size_t> detect_boundaries(const Timeline& timeline,
                                           const DetectorConfig& cfg = {});

}  // namespace papisim::analysis
