#include "analysis/pipeline.hpp"

namespace papisim::analysis {

Segmentation analyze(const Timeline& tl, const AnalysisConfig& cfg) {
  Segmentation seg;
  if (tl.num_rows() == 0) return seg;

  seg.boundaries = detect_boundaries(tl, cfg.detector);
  seg.features = segment_features(tl, seg.boundaries);
  seg.labels.reserve(seg.features.size());
  for (const SegmentFeatures& f : seg.features) {
    seg.labels.push_back(classify(f, cfg.rules));
  }

  // Coalesce to a fixpoint: merging can shift a merged segment's features
  // (and thus its label), which may expose another same-label pair.
  while (cfg.coalesce_same_label) {
    std::vector<std::size_t> kept;
    for (std::size_t b = 0; b < seg.boundaries.size(); ++b) {
      if (seg.labels[b] != seg.labels[b + 1]) kept.push_back(seg.boundaries[b]);
    }
    if (kept.size() == seg.boundaries.size()) break;
    seg.boundaries = std::move(kept);
    seg.features = segment_features(tl, seg.boundaries);
    seg.labels.clear();
    for (const SegmentFeatures& f : seg.features) {
      seg.labels.push_back(classify(f, cfg.rules));
    }
  }

  seg.boundary_times_sec.reserve(seg.boundaries.size());
  for (const std::size_t b : seg.boundaries) {
    seg.boundary_times_sec.push_back(tl.rates[b].t0_sec);
  }
  return seg;
}

std::vector<TraceSpan> to_trace_spans(const Segmentation& seg,
                                      const std::string& track) {
  std::vector<TraceSpan> spans;
  spans.reserve(seg.num_segments());
  for (std::size_t s = 0; s < seg.num_segments(); ++s) {
    TraceSpan span;
    span.name = seg.labels[s];
    span.t0_sec = seg.features[s].t0_sec;
    span.t1_sec = seg.features[s].t1_sec;
    span.track = track;
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace papisim::analysis
