#include "trace/export.hpp"

#include <vector>

#include "core/json_util.hpp"

namespace papisim::trace {

void write_span_dump(std::ostream& os, std::span<const Span> spans,
                     std::string_view reason, std::uint64_t dropped,
                     std::span<const Exemplar> exemplars) {
  JsonWriter w(os);
  w.begin_object()
      .kv("schema_version", kSpanDumpSchemaVersion)
      .kv("kind", "papisim_span_dump")
      .kv("reason", reason)
      .kv("dropped", dropped)
      .kv("exemplar_hist", "pcp.fetch_rtt_ns")
      .newline();
  w.key("exemplars").begin_array();
  for (const Exemplar& e : exemplars) {
    w.begin_object()
        .kv("bucket", e.bucket)
        .kv("trace_id", e.trace_id)
        .kv("ns", e.ns)
        .kv("count", e.count)
        .end_object();
  }
  w.end_array().newline();
  w.key("spans").begin_array();
  for (const Span& s : spans) {
    w.newline()
        .begin_object()
        .kv("trace_id", s.trace_id)
        .kv("span_id", s.span_id)
        .kv("parent_id", s.parent_id)
        .kv("stage", to_string(s.stage))
        .kv("status", to_string(s.status))
        .kv("t0_ns", s.t0_ns)
        .kv("t1_ns", s.t1_ns)
        .kv("a", s.a)
        .kv("b", s.b)
        .end_object();
  }
  w.newline().end_array().end_object();
  os << '\n';
}

void dump_all(std::ostream& os, std::string_view reason) {
  const std::vector<Span> spans = drain();
  const std::vector<Exemplar> ex = exemplars();
  write_span_dump(os, spans, reason, dropped(), ex);
}

}  // namespace papisim::trace
