// Causal span tracing: the request-scoped data model (DESIGN.md §3j).
//
// The selfmon histograms say *how slow* the PMCD tail is; they cannot say
// *why* one fetch was slow (queue wait? coalesce-follower wait? cache miss?
// retry storm?).  A span is the unit of that explanation: a timed interval
// attributed to one causal stage of one request, linked to its parent by
// span id, so a trace (all spans sharing one trace_id) is a tree whose root
// covers the client-visible RPC and whose leaves are the daemon-side stages.
//
// Contracts:
//  * Host time only.  Span timestamps come from the host steady clock
//    (trace::now_ns), never the virtual SimClock, and recording never
//    advances virtual time -- so simulated traffic is bit-identical with
//    tracing ON and OFF (the trace-off CI parity leg enforces this).
//  * Plain data.  A Span is a fixed-size POD (no strings) so the per-thread
//    rings hold them inline and recording never allocates.
//  * Compile-out.  -DPAPISIM_TRACE=OFF turns every recording call into an
//    empty inline (kEnabled == false), mirroring selfmon/SPE.
#pragma once

#include <cstdint>
#include <string_view>

#ifndef PAPISIM_TRACE_ENABLED
#define PAPISIM_TRACE_ENABLED 1
#endif

namespace papisim::trace {

inline constexpr bool kEnabled = PAPISIM_TRACE_ENABLED != 0;

/// The causal stage a span measures.  Order must match kStageNames.
enum class Stage : std::uint8_t {
  Rpc,             ///< client-visible round trip (root; all attempts + backoffs)
  Attempt,         ///< one post + reply wait (a = attempt index, b = backoff ns)
  Backoff,         ///< retry backoff sleep (a = attempt index, b = planned ns)
  Admission,       ///< fair-share admission decision (a = shard, b = queue depth)
  QueueWait,       ///< enqueue to dequeue on the shard mailbox (a = shard)
  Service,         ///< dequeue to reply-ready on the worker (a = FaultKind, b = followers)
  CacheLookup,     ///< shard fetch-cache consult (instant; status Hit/Miss)
  CounterRead,     ///< the PMU read itself (a = pmid count)
  CoalesceFollow,  ///< follower adopted by a leader (a = leader service span id)
  Rebaseline,      ///< supervisor restart: counter re-baselining (a = new generation)
  Measure,         ///< one KernelRunner measurement window (a = reps, b = clusters)
  RepSimulate,     ///< fully simulated repetition window (a = rep, b = cluster)
  RepExtrapolate,  ///< extrapolated repetition (a = rep, b = cluster)
  RepFallback,     ///< signature divergence -> safe mode (instant; a = rep, b = new cluster)
  kCount,
};

inline constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kCount);

/// How the spanned stage concluded.  Order must match kStatusNames.
enum class SpanStatus : std::uint8_t {
  Ok,
  Shed,      ///< rejected by fair-share admission (Status::Overloaded)
  Shutdown,  ///< failed by daemon shutdown
  Timeout,   ///< attempt missed the client deadline
  Fault,     ///< failed by an injected transient fault (or typed error)
  Crash,     ///< the daemon crashed serving this request
  Dropped,   ///< swallowed by a Drop fault (client sees silence)
  Hit,       ///< cache lookup hit
  Miss,      ///< cache lookup miss
  kCount,
};

namespace detail {
inline constexpr std::string_view kStageNames[kNumStages] = {
    "rpc",          "attempt",      "backoff",         "admission",
    "queue_wait",   "service",      "cache_lookup",    "counter_read",
    "coalesce_follow", "rebaseline", "measure",        "rep_simulate",
    "rep_extrapolate", "rep_fallback",
};
inline constexpr std::string_view kStatusNames[static_cast<std::size_t>(
    SpanStatus::kCount)] = {
    "ok",    "shed",  "shutdown", "timeout", "fault",
    "crash", "dropped", "hit",    "miss",
};
}  // namespace detail

inline std::string_view to_string(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kNumStages ? detail::kStageNames[i] : "?";
}
inline std::string_view to_string(SpanStatus s) {
  const auto i = static_cast<std::size_t>(s);
  return i < static_cast<std::size_t>(SpanStatus::kCount)
             ? detail::kStatusNames[i]
             : "?";
}

inline bool stage_from_name(std::string_view name, Stage& out) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (detail::kStageNames[i] == name) {
      out = static_cast<Stage>(i);
      return true;
    }
  }
  return false;
}
inline bool status_from_name(std::string_view name, SpanStatus& out) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(SpanStatus::kCount); ++i) {
    if (detail::kStatusNames[i] == name) {
      out = static_cast<SpanStatus>(i);
      return true;
    }
  }
  return false;
}

/// The causal identity carried across layer boundaries: which trace a piece
/// of work belongs to and which span is its parent.  Minted per RPC in
/// PcpClient (and per measurement window in KernelRunner); propagated
/// through the request structs into the shard workers.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = no active trace
  std::uint64_t span_id = 0;   ///< the span new children should link to

  constexpr bool valid() const { return trace_id != 0; }
};

/// One completed span.  64 bytes, no heap: rings hold these inline.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for a trace root
  std::uint64_t t0_ns = 0;      ///< host steady ns since process trace epoch
  std::uint64_t t1_ns = 0;
  std::uint64_t a = 0;          ///< stage-specific detail (see Stage comments)
  std::uint64_t b = 0;
  Stage stage = Stage::Rpc;
  SpanStatus status = SpanStatus::Ok;

  std::uint64_t dur_ns() const { return t1_ns >= t0_ns ? t1_ns - t0_ns : 0; }

  friend bool operator==(const Span&, const Span&) = default;
};

}  // namespace papisim::trace
