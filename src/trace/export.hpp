// Strict-JSON serialization of causal span dumps (DESIGN.md §3j).  One
// schema serves both producers -- explicit drains (`bench --spans`) and
// flight-recorder triggers -- and one consumer, `papisim-analyze --spans`.
#pragma once

#include <ostream>
#include <span>
#include <string_view>

#include "trace/recorder.hpp"
#include "trace/span.hpp"

namespace papisim::trace {

inline constexpr int kSpanDumpSchemaVersion = 1;

/// Serialize a span set.  `reason` records why the dump exists ("drain" for
/// an explicit dump, the trigger reason for a flight dump); `dropped` is
/// the recorder's overflow count at dump time, so a reader can tell a
/// complete dump from a truncated one.
void write_span_dump(std::ostream& os, std::span<const Span> spans,
                     std::string_view reason, std::uint64_t dropped,
                     std::span<const Exemplar> exemplars);

/// Drain every recorded span and serialize it with the current exemplar
/// table.  The convenience path for `bench ... --spans PATH`.
void dump_all(std::ostream& os, std::string_view reason = "drain");

}  // namespace papisim::trace
