#include "trace/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>

#include "selfmon/metrics.hpp"
#include "trace/export.hpp"

namespace papisim::trace {

namespace {

/// Default per-thread ring capacity.  8192 spans * 64 B = 512 KiB per
/// recording thread -- enough for a full bench sweep between drains; a
/// saturated overflow rejects-and-counts rather than growing.
constexpr std::size_t kDefaultRingCapacity = 1u << 13;

/// Bound on the registry-side backlog of spans from exited threads.
constexpr std::size_t kRetiredBacklogCap = 1u << 20;

/// Bounded lock-free SPSC ring of spans, the spe::SampleRing discipline:
/// the owning thread is the only producer; any thread holding the registry
/// mutex may consume (one consumer at a time).  try_push never blocks and
/// never overwrites a slot the consumer has not taken.
struct ThreadRing {
  explicit ThreadRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots.resize(cap);
    mask = cap - 1;
  }

  bool try_push(const Span& s) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots[head & mask] = s;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consume everything (caller holds the registry mutex).
  void pop_all(std::vector<Span>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) out.push_back(slots[tail & mask]);
    tail_.store(tail, std::memory_order_release);
  }

  /// Copy without consuming (flight-recorder snapshot).  Safe against a
  /// concurrent producer: slots in [tail, head) are published and never
  /// overwritten until the consumer advances tail.
  void peek_all(std::vector<Span>& out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = tail; i != head; ++i) out.push_back(slots[i & mask]);
  }

  std::vector<Span> slots;
  std::size_t mask = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> dropped{0};
};

/// Owns every ring ever created (selfmon Registry pattern): rings of exited
/// threads are drained into a bounded backlog and recycled, so spans
/// survive client-thread churn and memory stays bounded by the peak
/// live-thread count.
class Registry {
 public:
  ThreadRing* acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      ThreadRing* ring = free_.back();
      free_.pop_back();
      return ring;
    }
    all_.push_back(std::make_unique<ThreadRing>(ring_capacity_));
    return all_.back().get();
  }

  void retire(ThreadRing* ring) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Span> spans;
    ring->pop_all(spans);
    for (Span& s : spans) {
      if (retired_.size() >= kRetiredBacklogCap) {
        ++retired_dropped_;
        continue;
      }
      retired_.push_back(s);
    }
    retired_dropped_ += ring->dropped.exchange(0, std::memory_order_relaxed);
    free_.push_back(ring);
  }

  std::vector<Span> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Span> out = std::move(retired_);
    retired_.clear();
    for (const auto& ring : all_) ring->pop_all(out);
    std::stable_sort(out.begin(), out.end(),
                     [](const Span& x, const Span& y) { return x.t0_ns < y.t0_ns; });
    return out;
  }

  /// Most recent `last_n` spans without consuming anything.
  /// `cutoff_ns` bounds the window at the trigger instant: spans that finish
  /// after the incident are post-trigger noise, and under load they would
  /// otherwise race into the rings while we peek and evict the incident
  /// span itself from the last-N cut.
  std::vector<Span> snapshot(std::size_t last_n, std::uint64_t cutoff_ns) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Span> out = retired_;
    for (const auto& ring : all_) ring->peek_all(out);
    std::erase_if(out, [cutoff_ns](const Span& s) { return s.t1_ns > cutoff_ns; });
    std::stable_sort(out.begin(), out.end(),
                     [](const Span& x, const Span& y) { return x.t1_ns < y.t1_ns; });
    if (out.size() > last_n) out.erase(out.begin(), out.end() - last_n);
    std::stable_sort(out.begin(), out.end(),
                     [](const Span& x, const Span& y) { return x.t0_ns < y.t0_ns; });
    return out;
  }

  std::uint64_t dropped() {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = retired_dropped_;
    for (const auto& ring : all_) {
      n += ring->dropped.load(std::memory_order_relaxed);
    }
    return n;
  }

  void note_exemplar(std::uint64_t trace_id, std::uint64_t ns) {
    const std::size_t b =
        ns == 0 ? 0
                : std::min<std::size_t>(selfmon::kHistBuckets - 1,
                                        static_cast<std::size_t>(std::bit_width(ns)));
    std::lock_guard<std::mutex> lock(ex_mu_);
    Exemplar& cell = exemplars_[b];
    cell.bucket = b;
    cell.trace_id = trace_id;
    cell.ns = ns;
    ++cell.count;
  }

  std::vector<Exemplar> exemplars() {
    std::lock_guard<std::mutex> lock(ex_mu_);
    std::vector<Exemplar> out;
    for (const Exemplar& e : exemplars_) {
      if (e.count > 0) out.push_back(e);
    }
    return out;
  }

  void arm(std::string path, std::size_t last_n) {
    std::lock_guard<std::mutex> lock(flight_mu_);
    flight_path_ = std::move(path);
    flight_last_n_ = last_n == 0 ? 1 : last_n;
    fired_.clear();
    armed_.store(true, std::memory_order_release);
  }

  void disarm() {
    std::lock_guard<std::mutex> lock(flight_mu_);
    armed_.store(false, std::memory_order_release);
    flight_path_.clear();
    fired_.clear();
  }

  bool armed() const { return armed_.load(std::memory_order_acquire); }

  void flight_dump(std::string_view reason) {
    const std::uint64_t trigger_ns = now_ns();
    std::string path;
    std::size_t last_n = 0;
    {
      std::lock_guard<std::mutex> lock(flight_mu_);
      if (!armed_.load(std::memory_order_relaxed)) return;
      for (const std::string& r : fired_) {
        if (r == reason) return;  // first trigger per reason wins
      }
      fired_.emplace_back(reason);
      path = flight_path_;
      last_n = flight_last_n_;
    }
    const std::size_t pct = path.find("%r");
    if (pct != std::string::npos) path.replace(pct, 2, reason);
    const std::vector<Span> spans = snapshot(last_n, trigger_ns);
    std::ofstream os(path);
    if (!os) return;
    write_span_dump(os, spans, reason, dropped(), exemplars());
    flight_dumps_.fetch_add(1, std::memory_order_relaxed);
    selfmon::counter_add(selfmon::CounterId::TraceFlightDumps);
  }

  std::uint64_t flight_dumps() const {
    return flight_dumps_.load(std::memory_order_relaxed);
  }

  void set_ring_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = capacity < 2 ? 2 : capacity;
  }

  void reset() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired_.clear();
      retired_dropped_ = 0;
      std::vector<Span> sink;
      for (const auto& ring : all_) {
        ring->pop_all(sink);
        ring->dropped.store(0, std::memory_order_relaxed);
      }
      ring_capacity_ = kDefaultRingCapacity;
    }
    {
      std::lock_guard<std::mutex> lock(ex_mu_);
      exemplars_.assign(selfmon::kHistBuckets, Exemplar{});
    }
    disarm();
    flight_dumps_.store(0, std::memory_order_relaxed);
  }

  Registry() { exemplars_.assign(selfmon::kHistBuckets, Exemplar{}); }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<ThreadRing>> all_;
  std::vector<ThreadRing*> free_;
  std::vector<Span> retired_;
  std::uint64_t retired_dropped_ = 0;
  std::size_t ring_capacity_ = kDefaultRingCapacity;

  std::mutex ex_mu_;
  std::vector<Exemplar> exemplars_;

  std::mutex flight_mu_;
  std::atomic<bool> armed_{false};
  std::string flight_path_;
  std::size_t flight_last_n_ = 256;
  std::vector<std::string> fired_;
  std::atomic<std::uint64_t> flight_dumps_{0};
};

/// Deliberately leaked (selfmon registry() rationale): late-exiting threads
/// retire rings after main() returns; a leaked singleton cannot race a
/// destructor.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

/// Retires the thread's ring when the thread exits.
struct RingHandle {
  ThreadRing* ring = nullptr;
  ~RingHandle();
};

thread_local ThreadRing* t_ring = nullptr;
thread_local RingHandle t_ring_handle;

RingHandle::~RingHandle() {
  if (ring != nullptr) {
    registry().retire(ring);
    t_ring = nullptr;
  }
}

ThreadRing& local_ring() {
  if (t_ring == nullptr) {
    t_ring = registry().acquire();
    t_ring_handle.ring = t_ring;
  }
  return *t_ring;
}

std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

namespace detail {

thread_local TraceContext tls_current;

std::uint64_t now_ns_impl() {
  static const auto epoch = std::chrono::steady_clock::now();
  const auto dt = std::chrono::steady_clock::now() - epoch;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
}

std::uint64_t next_id_impl() {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

void record_impl(const Span& s) {
  if (local_ring().try_push(s)) {
    selfmon::counter_add(selfmon::CounterId::TraceSpans);
  } else {
    selfmon::counter_add(selfmon::CounterId::TraceSpansDropped);
  }
}

void note_rpc_exemplar_impl(std::uint64_t trace_id, std::uint64_t ns) {
  registry().note_exemplar(trace_id, ns);
}

}  // namespace detail

std::vector<Span> drain() {
  if constexpr (!kEnabled) return {};
  return registry().drain();
}

std::uint64_t dropped() {
  if constexpr (!kEnabled) return 0;
  return registry().dropped();
}

std::vector<Exemplar> exemplars() {
  if constexpr (!kEnabled) return {};
  return registry().exemplars();
}

void arm_flight_recorder(std::string path, std::size_t last_n) {
  if constexpr (!kEnabled) {
    (void)last_n;
    return;
  }
  registry().arm(std::move(path), last_n);
}

void disarm_flight_recorder() {
  if constexpr (!kEnabled) return;
  registry().disarm();
}

void flight_dump(std::string_view reason) {
  if constexpr (!kEnabled) {
    (void)reason;
    return;
  }
  registry().flight_dump(reason);
}

std::uint64_t flight_dumps() {
  if constexpr (!kEnabled) return 0;
  return registry().flight_dumps();
}

void set_ring_capacity_for_testing(std::size_t capacity) {
  if constexpr (!kEnabled) {
    (void)capacity;
    return;
  }
  registry().set_ring_capacity(capacity);
}

void reset_for_testing() {
  if constexpr (!kEnabled) return;
  registry().reset();
}

}  // namespace papisim::trace
