// Causal span recorder: per-thread bounded lock-free rings, a merge-on-drain
// registry, and the crash flight recorder (DESIGN.md §3j).
//
// Recording discipline mirrors spe::SampleRing and the selfmon slab
// registry: the recording thread is the single producer of its own ring
// (head/tail atomics, power-of-two mask), a full ring rejects-and-counts
// (selfmon trace.spans_dropped) and NEVER blocks, and rings of exited
// threads are retired into a bounded registry-side backlog so spans survive
// client-thread churn.
//
// The flight recorder is the same rings read sideways: when armed, a
// trigger (FaultKind::Crash, final Status::Overloaded, deadline exhaustion)
// snapshots the most recent N spans -- peeking the rings without consuming,
// which is safe because producers never overwrite unconsumed slots -- and
// writes them to a strict-JSON dump.  The first trigger per reason wins
// until re-armed, so the crash postmortem is never overwritten by the
// timeout storm that follows it.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/span.hpp"

namespace papisim::trace {

namespace detail {

extern thread_local TraceContext tls_current;

std::uint64_t now_ns_impl();
std::uint64_t next_id_impl();
void record_impl(const Span& s);
void note_rpc_exemplar_impl(std::uint64_t trace_id, std::uint64_t ns);

}  // namespace detail

/// Host steady-clock nanoseconds since the process's trace epoch (first
/// call).  0 when tracing is compiled out.
inline std::uint64_t now_ns() {
  if constexpr (kEnabled) {
    return detail::now_ns_impl();
  } else {
    return 0;
  }
}

/// A fresh span id (never 0).
inline std::uint64_t next_span_id() {
  if constexpr (kEnabled) {
    return detail::next_id_impl();
  } else {
    return 0;
  }
}

/// Mint a fresh root context: trace_id == span_id == a new id.
inline TraceContext mint() {
  if constexpr (kEnabled) {
    const std::uint64_t id = detail::next_id_impl();
    return TraceContext{id, id};
  } else {
    return {};
  }
}

/// The calling thread's active context ({0,0} when none).
inline TraceContext current() {
  if constexpr (kEnabled) {
    return detail::tls_current;
  } else {
    return {};
  }
}

/// Record a completed span into the calling thread's ring (reject-and-count
/// on overflow; never blocks, never allocates on the hot path).
inline void record(const Span& s) {
  if constexpr (kEnabled) {
    detail::record_impl(s);
  } else {
    (void)s;
  }
}

/// Exemplar linkage (DESIGN.md §3j): on RPC completion the fetch path notes
/// (trace_id, rtt ns); the recorder keeps one exemplar trace id per
/// power-of-two latency bucket -- the same bucketing as the selfmon
/// pcp.fetch_rtt_ns histogram -- so each p99 bucket names a trace that can
/// be pulled out of the next span dump.
inline void note_rpc_exemplar(std::uint64_t trace_id, std::uint64_t ns) {
  if constexpr (kEnabled) {
    detail::note_rpc_exemplar_impl(trace_id, ns);
  } else {
    (void)trace_id;
    (void)ns;
  }
}

/// Scoped current-trace for cross-layer propagation.  AdoptOrMint joins the
/// caller's active trace if one exists (Pmcd::fetch under PcpClient);
/// Fresh always mints a new root (PcpClient per RPC, KernelRunner per
/// measurement window).  Restores the previous context on destruction.
class ScopedTrace {
 public:
  enum class Mode { AdoptOrMint, Fresh };

  explicit ScopedTrace(Mode mode = Mode::AdoptOrMint) {
    if constexpr (kEnabled) {
      saved_ = detail::tls_current;
      if (mode == Mode::Fresh || !saved_.valid()) {
        detail::tls_current = mint();
        owns_ = true;
      }
      ctx_ = detail::tls_current;
    } else {
      (void)mode;
    }
  }
  ~ScopedTrace() {
    if constexpr (kEnabled) {
      if (owns_) detail::tls_current = saved_;
    }
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  TraceContext context() const { return ctx_; }

 private:
  TraceContext ctx_{};
  TraceContext saved_{};
  bool owns_ = false;
};

/// One (bucket -> exemplar) cell of the RPC-latency exemplar table.
struct Exemplar {
  std::uint64_t bucket = 0;    ///< bit_width(ns), selfmon histogram bucketing
  std::uint64_t trace_id = 0;  ///< last trace observed in this bucket
  std::uint64_t ns = 0;        ///< that trace's RTT
  std::uint64_t count = 0;     ///< RPCs that landed in this bucket
};

/// Consume every recorded span (live rings + retired backlog), sorted by
/// start time.  Empty when tracing is compiled out.
std::vector<Span> drain();

/// Spans rejected because a ring (or the retired backlog) was full.
std::uint64_t dropped();

/// Populated cells of the exemplar table, ascending by bucket.
std::vector<Exemplar> exemplars();

/// Arm the flight recorder: on the next trigger per reason, snapshot the
/// most recent `last_n` spans to `path` ("%r" in the path expands to the
/// trigger reason, e.g. "crash"/"overloaded"/"deadline").  Disarmed = every
/// trigger is a cheap atomic-load no-op.
void arm_flight_recorder(std::string path, std::size_t last_n = 256);
void disarm_flight_recorder();

/// Trigger: snapshot and dump if armed and this reason has not fired since
/// arming.  Safe from any thread, including a crashing shard worker.
void flight_dump(std::string_view reason);

/// Flight dumps written since process start.
std::uint64_t flight_dumps();

/// Ring capacity (in spans) for rings created *after* this call.  Test-only.
void set_ring_capacity_for_testing(std::size_t capacity);

/// Drop every recorded span, exemplar, and flight arming.  Test-only:
/// callers must guarantee no concurrent recorder.
void reset_for_testing();

}  // namespace papisim::trace
