// Privilege-gated access to the socket ("nest") memory-traffic counters.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sim/machine.hpp"

namespace papisim::nest {

/// Thrown when a caller without elevated privileges tries to open the nest
/// PMU.  On the real Summit this is the EPERM a user gets from perf_event
/// for uncore PMUs, which is why IBM exports the counters through PCP.
class PermissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Nest MBA event categories.  The paper's experiments use the *_BYTES
/// events (Table I); the request-count events are the modeled counterparts
/// of the PMU's companion counters and support the paper's future-work goal
/// of covering more nest event categories.
enum class NestEventKind : std::uint8_t { ReadBytes, WriteBytes, ReadReqs, WriteReqs };

/// All kinds, in enumeration order.
inline constexpr NestEventKind kAllNestEventKinds[] = {
    NestEventKind::ReadBytes, NestEventKind::WriteBytes, NestEventKind::ReadReqs,
    NestEventKind::WriteReqs};

/// One nest counter: a socket's MBA channel in one direction.
struct NestEventId {
  std::uint32_t socket = 0;
  std::uint32_t channel = 0;
  NestEventKind kind = NestEventKind::ReadBytes;
};

/// Handle to the nest PMU of a machine.  Construction enforces the
/// privilege requirement; reads are then direct counter loads (this is the
/// "perf_uncore" path used on Tellico).
///
/// Thread safety: read() is a single relaxed atomic load, safe concurrently
/// with replay workers incrementing the counters (each 64-bit counter is
/// never torn).  A multi-channel snapshot taken while a replay is in flight
/// is *per counter* exact but not a cross-channel instant -- the same
/// property a real PMU read loop has.  Quiesce the replay (join its workers)
/// before asserting cross-channel invariants.
class NestPmu {
 public:
  /// @throws PermissionError if `creds` is not privileged.
  NestPmu(sim::Machine& machine, sim::Credentials creds);

  std::uint64_t read(const NestEventId& id) const;

  /// Read every channel of `socket` for one event kind (index = channel).
  std::vector<std::uint64_t> read_socket(std::uint32_t socket,
                                         NestEventKind kind) const;

  std::uint32_t channels() const;
  std::uint32_t sockets() const;

  /// perf-style native event name, e.g.
  /// "power9_nest_mba0::PM_MBA0_READ_BYTES" (qualifier ":cpu=N" selects the
  /// socket owning hardware thread N).
  static std::string perf_event_name(std::uint32_t channel, NestEventKind kind);

  /// Parse "power9_nest_mba<ch>::PM_MBA<ch>_<READ|WRITE>_BYTES[:cpu=<n>]".
  /// Returns nullopt on malformed names or channel mismatch.
  static std::optional<NestEventId> parse_perf_event(std::string_view name,
                                                     const sim::MachineConfig& cfg);

  /// All native event names for a machine (one per channel and direction).
  static std::vector<std::string> enumerate(const sim::MachineConfig& cfg);

 private:
  sim::Machine& machine_;
};

inline const char* to_string(NestEventKind k) {
  return (k == NestEventKind::ReadBytes || k == NestEventKind::ReadReqs)
             ? "READ"
             : "WRITE";
}

/// Event-name suffix after "PM_MBA<ch>_", e.g. "READ_BYTES".
inline const char* event_suffix(NestEventKind k) {
  switch (k) {
    case NestEventKind::ReadBytes: return "READ_BYTES";
    case NestEventKind::WriteBytes: return "WRITE_BYTES";
    case NestEventKind::ReadReqs: return "READ_REQS";
    case NestEventKind::WriteReqs: return "WRITE_REQS";
  }
  return "";
}

inline bool is_byte_event(NestEventKind k) {
  return k == NestEventKind::ReadBytes || k == NestEventKind::WriteBytes;
}

}  // namespace papisim::nest
