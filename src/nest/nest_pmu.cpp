#include "nest/nest_pmu.hpp"

#include <charconv>

namespace papisim::nest {

NestPmu::NestPmu(sim::Machine& machine, sim::Credentials creds) : machine_(machine) {
  if (!creds.privileged()) {
    throw PermissionError(
        "nest PMU: opening uncore counters requires elevated privileges "
        "(uid 0); use the PCP component instead");
  }
}

std::uint64_t NestPmu::read(const NestEventId& id) const {
  const sim::MemDir dir = to_string(id.kind)[0] == 'R' ? sim::MemDir::Read
                                                       : sim::MemDir::Write;
  const sim::MemController& mem = machine_.memctrl(id.socket);
  return is_byte_event(id.kind) ? mem.channel_bytes(id.channel, dir)
                                : mem.channel_ops(id.channel, dir);
}

std::vector<std::uint64_t> NestPmu::read_socket(std::uint32_t socket,
                                                NestEventKind kind) const {
  std::vector<std::uint64_t> values;
  values.reserve(machine_.config().mem_channels);
  for (std::uint32_t ch = 0; ch < machine_.config().mem_channels; ++ch) {
    values.push_back(read(NestEventId{socket, ch, kind}));
  }
  return values;
}

std::uint32_t NestPmu::channels() const { return machine_.config().mem_channels; }
std::uint32_t NestPmu::sockets() const { return machine_.config().sockets; }

std::string NestPmu::perf_event_name(std::uint32_t channel, NestEventKind kind) {
  return "power9_nest_mba" + std::to_string(channel) + "::PM_MBA" +
         std::to_string(channel) + "_" + event_suffix(kind);
}

std::optional<NestEventId> NestPmu::parse_perf_event(std::string_view name,
                                                     const sim::MachineConfig& cfg) {
  constexpr std::string_view kPmu = "power9_nest_mba";
  if (!name.starts_with(kPmu)) return std::nullopt;
  name.remove_prefix(kPmu.size());

  std::uint32_t pmu_ch = 0;
  const char* end = name.data() + name.size();
  auto [p, ec] = std::from_chars(name.data(), end, pmu_ch);
  if (ec != std::errc{}) return std::nullopt;
  name.remove_prefix(static_cast<std::size_t>(p - name.data()));

  if (!name.starts_with("::PM_MBA")) return std::nullopt;
  name.remove_prefix(8);

  std::uint32_t ev_ch = 0;
  auto [p2, ec2] = std::from_chars(name.data(), end, ev_ch);
  if (ec2 != std::errc{} || ev_ch != pmu_ch) return std::nullopt;
  name.remove_prefix(static_cast<std::size_t>(p2 - name.data()));

  NestEventId id;
  id.channel = ev_ch;
  if (id.channel >= cfg.mem_channels) return std::nullopt;

  bool matched = false;
  for (const NestEventKind kind : kAllNestEventKinds) {
    const std::string suffix = std::string("_") + event_suffix(kind);
    if (name.starts_with(suffix)) {
      id.kind = kind;
      name.remove_prefix(suffix.size());
      matched = true;
      break;
    }
  }
  if (!matched) return std::nullopt;

  if (name.empty()) {
    id.socket = 0;
    return id;
  }
  if (!name.starts_with(":cpu=")) return std::nullopt;
  name.remove_prefix(5);
  std::uint32_t cpu = 0;
  auto [p3, ec3] = std::from_chars(name.data(), end, cpu);
  if (ec3 != std::errc{} || p3 != end) return std::nullopt;
  if (cpu >= cfg.usable_cpus()) return std::nullopt;
  id.socket = cpu / cfg.cpus_per_socket();
  return id;
}

std::vector<std::string> NestPmu::enumerate(const sim::MachineConfig& cfg) {
  std::vector<std::string> names;
  names.reserve(cfg.mem_channels * 4);
  for (std::uint32_t ch = 0; ch < cfg.mem_channels; ++ch) {
    for (const NestEventKind kind : kAllNestEventKinds) {
      names.push_back(perf_event_name(ch, kind));
    }
  }
  return names;
}

}  // namespace papisim::nest
