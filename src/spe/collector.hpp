// SpeCollector: owns one CoreSampler per simulated core and attaches them
// to a Machine's AccessEngines (RAII -- detached again on destruction).
// The merged view it exposes (totals, drain) is what SpeComponent and the
// hot-footprint analysis consume.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "spe/ring.hpp"

namespace papisim::sim {
class Machine;
}

namespace papisim::spe {

class SpeCollector {
 public:
  /// Attaches a sampler to every core of `machine`.  The collector must
  /// outlive any replay that runs while attached; destruction detaches.
  /// When the instrumentation is compiled out (PAPISIM_SPE=OFF) nothing is
  /// attached and every accessor reports empty/zero.
  explicit SpeCollector(sim::Machine& machine, SpeConfig cfg = {});
  ~SpeCollector();

  SpeCollector(const SpeCollector&) = delete;
  SpeCollector& operator=(const SpeCollector&) = delete;

  const SpeConfig& config() const { return cfg_; }
  std::size_t num_cores() const { return samplers_.size(); }
  CoreSampler& core_sampler(std::size_t i) { return *samplers_[i]; }

  std::uint64_t period() const { return cfg_.period; }

  /// Reconfigure the sampling period on every core (gap sequences restart
  /// deterministically).  Producers must be quiescent.
  void set_period(std::uint64_t period);

  struct Totals {
    std::uint64_t samples = 0;   ///< recorded into the rings
    std::uint64_t drops = 0;     ///< rejected by a full ring (backpressure)
    std::uint64_t accesses = 0;  ///< line touches observed by attached samplers
  };

  /// Merge-on-read over every core (relaxed sums, exact when quiescent).
  Totals totals() const;

  /// Drain every ring, cores in ascending global-core order; within a core
  /// samples keep FIFO order.  Draining at deterministic points yields the
  /// canonical stream the determinism contract is stated over.
  std::vector<Sample> drain();
  void drain_into(std::vector<Sample>& out);

 private:
  sim::Machine* machine_ = nullptr;
  SpeConfig cfg_;
  std::vector<std::unique_ptr<CoreSampler>> samplers_;
};

}  // namespace papisim::spe
