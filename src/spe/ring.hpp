// Precise-event sampling core (SPE-style, DESIGN.md §3g).
//
// Aggregate nest counters say *how much* traffic flowed; they cannot say
// *which addresses* caused it.  This header is the per-access measurement
// modality that closes that gap: every replayed cache-line touch passes
// through a per-core CoreSampler that records 1-in-N accesses -- address,
// R/W, level-of-hit, modeled latency, stride context, virtual timestamp --
// into a bounded lock-free single-producer/single-consumer ring.
//
// Contracts:
//  * Determinism: the sampling decision depends only on (seed, core,
//    sample ordinal) via the same splitmix-style hash the cast-out retention
//    model uses, never on host timing.  One simulated core is driven by one
//    host thread at a time (the AccessEngine contract), so each core's
//    sample sequence -- and therefore the merged per-core-ordered stream --
//    is bit-identical across host thread counts and across serial vs
//    parallel replay.
//  * Backpressure is explicit: a full ring NEVER blocks the replay hot path
//    and never overwrites; the sample is dropped and counted (drops_ and
//    selfmon spe.drops).  With drains at deterministic points (between
//    replay batches), the dropped set is deterministic too.
//  * Single-writer counters reuse the selfmon owner-add discipline
//    (selfmon::detail::owner_add): the owning replay thread is the only
//    writer, readers merge on read with relaxed loads.
//  * Compile-out: -DPAPISIM_SPE=OFF turns every hook into dead code behind
//    `if constexpr (spe::kEnabled)`; the component registers as disabled,
//    mirroring PAPISIM_SELFMON=OFF.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "selfmon/metrics.hpp"
#include "sim/rng.hpp"

#ifndef PAPISIM_SPE_ENABLED
#define PAPISIM_SPE_ENABLED 1
#endif

namespace papisim::spe {

inline constexpr bool kEnabled = PAPISIM_SPE_ENABLED != 0;

enum class AccessKind : std::uint8_t { Load, Store };

/// Where the sampled access was satisfied.  Bypass marks streaming stores
/// that skipped the cache entirely (full-line write straight to memory).
enum class HitLevel : std::uint8_t { L3Hit, VictimHit, Memory, Bypass };

inline constexpr std::size_t kNumHitLevels = 4;

inline const char* to_string(HitLevel level) {
  switch (level) {
    case HitLevel::L3Hit: return "l3_hit";
    case HitLevel::VictimHit: return "victim_hit";
    case HitLevel::Memory: return "memory";
    case HitLevel::Bypass: return "bypass";
  }
  return "?";
}

/// One recorded access.  32 bytes; the stream is the ground truth the
/// hot-footprint report aggregates, so the full byte address is kept.
struct Sample {
  std::uint64_t addr = 0;        ///< byte address of the sampled access
  std::uint64_t time_ns = 0;     ///< virtual time (SimClock + deferred core time)
  std::int64_t stride = 0;       ///< affine stride of the stream (0 for scalar)
  float latency_ns = 0.0f;       ///< modeled completion latency for the hit level
  std::uint16_t core = 0;        ///< global core id (socket * cores_per_socket + core)
  AccessKind kind = AccessKind::Load;
  HitLevel level = HitLevel::Memory;

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Sampling-policy and sizing knobs.
struct SpeConfig {
  /// Mean accesses per sample (the "1-in-N").  Clamped to >= 1.
  std::uint64_t period = 1024;
  /// Seeds the per-core gap sequence; same seed => same sample stream.
  std::uint64_t seed = 0x5be5a3b1ed5c01ceULL;
  /// Jitter each inter-sample gap uniformly over [period/2, 3*period/2)
  /// (deterministically, from the seed) so periodic access patterns cannot
  /// alias with the sampling period.  Off = fixed gap of exactly `period`.
  bool jitter = true;
  /// Per-core ring capacity in samples (rounded up to a power of two).
  std::size_t ring_capacity = 1u << 16;

  // Coarse per-level completion-latency model (observability payload only;
  // the virtual-time model is unchanged).  POWER9-flavoured defaults.
  float l3_hit_latency_ns = 12.0f;
  float victim_hit_latency_ns = 28.0f;
  float memory_latency_ns = 140.0f;
  float bypass_latency_ns = 8.0f;
};

/// Bounded lock-free SPSC ring of samples.  The producer is the one host
/// thread driving the owning core's AccessEngine; the consumer is whoever
/// drains (SpeComponent reads / SpeCollector::drain).  try_push never
/// blocks and never overwrites: a full ring rejects the sample so the
/// caller can count the drop.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer-only.  False (and no write) when the ring is full.
  bool try_push(const Sample& s) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) return false;
    slots_[head & mask_] = s;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-only.  Appends everything currently published, in FIFO order
  /// (wraparound preserved), and frees the slots.  Returns the count.
  std::size_t pop_all(std::vector<Sample>& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    out.reserve(out.size() + n);
    for (; tail != head; ++tail) out.push_back(slots_[tail & mask_]);
    tail_.store(tail, std::memory_order_release);
    return n;
  }

  /// Published-but-unconsumed count (racy snapshot; exact when quiescent).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_relaxed) -
                                    tail_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<Sample> slots_;
  std::size_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
};

/// Per-core sampling state: the countdown, the seeded gap sequence, the
/// ring, and the owner-written totals.  One CoreSampler belongs to exactly
/// one simulated core; the thread driving that core's AccessEngine is the
/// only writer (same single-writer discipline as a selfmon ThreadBlock).
class CoreSampler {
 public:
  CoreSampler(std::uint16_t core, const SpeConfig& cfg)
      : core_(core),
        period_(cfg.period < 1 ? 1 : cfg.period),
        seed_(cfg.seed),
        jitter_(cfg.jitter),
        ring_(cfg.ring_capacity),
        latency_{cfg.l3_hit_latency_ns, cfg.victim_hit_latency_ns,
                 cfg.memory_latency_ns, cfg.bypass_latency_ns} {
    countdown_ = gap_for(0);
  }

  std::uint16_t core() const { return core_; }
  std::uint64_t period() const { return period_; }

  /// Replay hot-path hook: count the access, record it if the countdown
  /// fires.  Cost off the sampling tick: two owner-add movs + a decrement.
  void on_access(std::uint64_t addr, AccessKind kind, HitLevel level,
                 std::int64_t stride, std::uint64_t time_ns) {
    selfmon::detail::owner_add(accesses_, 1);
    if (--countdown_ != 0) return;
    record(addr, kind, level, stride, time_ns);
    countdown_ = gap_for(++ordinal_);
  }

  /// Change the sampling period and deterministically restart the gap
  /// sequence.  Callers must quiesce the producing thread first (same
  /// contract as L3Fabric::set_active_cores).
  void set_period(std::uint64_t period) {
    period_ = period < 1 ? 1 : period;
    ordinal_ = 0;
    countdown_ = gap_for(0);
  }

  /// Consumer-side drain; see SampleRing::pop_all.
  std::size_t drain(std::vector<Sample>& out) { return ring_.pop_all(out); }

  std::uint64_t samples() const { return accesses_rel(samples_); }
  std::uint64_t drops() const { return accesses_rel(drops_); }
  std::uint64_t accesses() const { return accesses_rel(accesses_); }

  SampleRing& ring() { return ring_; }

 private:
  static std::uint64_t accesses_rel(const std::atomic<std::uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  }

  /// Gap before sample `ordinal` (>= 1).  Pure function of (seed, core,
  /// ordinal): uniform in [period - period/2, period + ceil(period/2)) when
  /// jittered, exactly `period` otherwise.
  std::uint64_t gap_for(std::uint64_t ordinal) const {
    if (!jitter_ || period_ <= 1) return period_;
    const std::uint64_t h = sim::hash64(
        seed_ ^ (static_cast<std::uint64_t>(core_) * 0x9e3779b97f4a7c15ULL) ^
        ordinal);
    return period_ - period_ / 2 + h % period_;
  }

  void record(std::uint64_t addr, AccessKind kind, HitLevel level,
              std::int64_t stride, std::uint64_t time_ns) {
    Sample s;
    s.addr = addr;
    s.time_ns = time_ns;
    s.stride = stride;
    s.latency_ns = latency_[static_cast<std::size_t>(level)];
    s.core = core_;
    s.kind = kind;
    s.level = level;
    if (ring_.try_push(s)) {
      selfmon::detail::owner_add(samples_, 1);
      selfmon::counter_add(selfmon::CounterId::SpeSamples);
    } else {
      selfmon::detail::owner_add(drops_, 1);
      selfmon::counter_add(selfmon::CounterId::SpeDrops);
    }
  }

  std::uint16_t core_;
  std::uint64_t period_;
  std::uint64_t seed_;
  bool jitter_;
  std::uint64_t countdown_ = 1;
  std::uint64_t ordinal_ = 0;  ///< samples scheduled so far (gap-sequence index)
  SampleRing ring_;
  float latency_[kNumHitLevels];
  // Owner-written (replay thread), merged on read: same discipline as
  // selfmon's per-thread blocks, but keyed by core instead of thread.
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> accesses_{0};
};

}  // namespace papisim::spe
