#include "spe/collector.hpp"

#include "sim/machine.hpp"

namespace papisim::spe {

SpeCollector::SpeCollector(sim::Machine& machine, SpeConfig cfg)
    : machine_(&machine), cfg_(cfg) {
  if (cfg_.period < 1) cfg_.period = 1;
  if constexpr (!kEnabled) return;
  const std::uint32_t sockets = machine.sockets();
  const std::uint32_t cps = machine.cores_per_socket();
  samplers_.reserve(static_cast<std::size_t>(sockets) * cps);
  for (std::uint32_t s = 0; s < sockets; ++s) {
    for (std::uint32_t c = 0; c < cps; ++c) {
      const auto global = static_cast<std::uint16_t>(s * cps + c);
      samplers_.push_back(std::make_unique<CoreSampler>(global, cfg_));
      machine.engine(s, c).set_spe(samplers_.back().get());
    }
  }
}

SpeCollector::~SpeCollector() {
  if constexpr (!kEnabled) return;
  if (machine_ == nullptr) return;
  for (std::uint32_t s = 0; s < machine_->sockets(); ++s) {
    for (std::uint32_t c = 0; c < machine_->cores_per_socket(); ++c) {
      machine_->engine(s, c).set_spe(nullptr);
    }
  }
}

void SpeCollector::set_period(std::uint64_t period) {
  cfg_.period = period < 1 ? 1 : period;
  for (auto& s : samplers_) s->set_period(cfg_.period);
}

SpeCollector::Totals SpeCollector::totals() const {
  Totals t;
  for (const auto& s : samplers_) {
    t.samples += s->samples();
    t.drops += s->drops();
    t.accesses += s->accesses();
  }
  return t;
}

std::vector<Sample> SpeCollector::drain() {
  std::vector<Sample> out;
  drain_into(out);
  return out;
}

void SpeCollector::drain_into(std::vector<Sample>& out) {
  for (auto& s : samplers_) s->drain(out);
}

}  // namespace papisim::spe
