// Virtual processor grid of the distributed 3D-FFT (r x c ranks).
#pragma once

#include <cstdint>
#include <stdexcept>

namespace papisim::mpi {

/// r-by-c virtual processor grid; rank = row * cols + col (row-major).
struct Grid {
  std::uint32_t rows = 1;
  std::uint32_t cols = 1;

  std::uint32_t size() const { return rows * cols; }

  std::uint32_t rank_of(std::uint32_t row, std::uint32_t col) const {
    if (row >= rows || col >= cols) throw std::out_of_range("Grid: coords out of range");
    return row * cols + col;
  }

  struct Coords {
    std::uint32_t row;
    std::uint32_t col;
  };

  Coords coords_of(std::uint32_t rank) const {
    if (rank >= size()) throw std::out_of_range("Grid: rank out of range");
    return {rank / cols, rank % cols};
  }
};

}  // namespace papisim::mpi
