#include "mpi/job_comm.hpp"

#include <cmath>

namespace papisim::mpi {

void JobComm::alltoall(std::uint32_t participants, std::uint64_t local_bytes) {
  ++alltoall_calls_;
  if (participants <= 1 || local_bytes == 0) return;
  // Each rank keeps 1/P locally and exchanges the rest over the wire.
  const std::uint64_t wire_bytes =
      local_bytes / participants * (participants - 1);
  nic_.on_xmit(wire_bytes, port_);
  nic_.on_recv(wire_bytes, port_);
  // Pairwise-exchange schedule: P-1 steps of local_bytes/P each, with the
  // NIC moving send and receive streams concurrently (full duplex).
  const double t_ns =
      static_cast<double>(participants - 1) *
      nic_.transfer_time_ns(local_bytes / participants);
  machine_.advance(t_ns);
}

void JobComm::sendrecv(std::uint64_t bytes) {
  nic_.on_xmit(bytes, port_);
  nic_.on_recv(bytes, port_);
  machine_.advance(nic_.transfer_time_ns(bytes));
}

void JobComm::barrier(std::uint32_t participants) {
  if (participants <= 1) return;
  const double stages = std::ceil(std::log2(static_cast<double>(participants)));
  machine_.advance(stages * nic_.config().latency_ns);
}

}  // namespace papisim::mpi
