// Communication model for a simulated SPMD job.
//
// The simulator runs ONE representative rank's computation in full (its
// socket, caches, GPU); the other ranks are symmetric by construction
// (pencil-decomposed FFT with equal block sizes).  Collectives are therefore
// modelled by their per-rank traffic volumes and wire time, accounted to the
// representative rank's NIC counters and the shared virtual clock --
// exactly what the paper measures per MPI rank / per socket.
#pragma once

#include <cstdint>

#include "net/nic.hpp"
#include "sim/machine.hpp"

namespace papisim::mpi {

class JobComm {
 public:
  JobComm(sim::Machine& machine, net::Nic& nic, std::uint32_t port = 1)
      : machine_(machine), nic_(nic), port_(port) {}

  /// All-to-all among `participants` ranks where each rank holds
  /// `local_bytes` and redistributes it evenly: every rank sends and
  /// receives local_bytes * (P-1)/P over the wire.
  void alltoall(std::uint32_t participants, std::uint64_t local_bytes);

  /// Point-to-point exchange with one peer (sendrecv of `bytes` each way).
  void sendrecv(std::uint64_t bytes);

  /// Synchronization; costs a latency per log2(P) stage.
  void barrier(std::uint32_t participants);

  std::uint64_t alltoall_calls() const { return alltoall_calls_; }

 private:
  sim::Machine& machine_;
  net::Nic& nic_;
  std::uint32_t port_;
  std::uint64_t alltoall_calls_ = 0;
};

}  // namespace papisim::mpi
