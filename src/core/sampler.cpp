#include "core/sampler.hpp"

#include <algorithm>

#include "selfmon/metrics.hpp"

namespace papisim {

void Sampler::add_eventset(EventSet& es) {
  if (es.component() == nullptr) {
    throw Error(Status::InvalidArgument, "Sampler: event set has no events");
  }
  sets_.push_back(&es);
  for (std::size_t i = 0; i < es.event_names().size(); ++i) {
    const EventKind kind = es.kind(i);
    if (kind == EventKind::Histogram) hist_cols_.push_back(columns_.size());
    columns_.push_back(es.event_names()[i]);
    kinds_.push_back(kind);
    gauge_.push_back(kind == EventKind::Gauge);
    col_src_.push_back({&es, i});
  }
}

void Sampler::start_all() {
  for (EventSet* es : sets_) {
    if (!es->running()) es->start();
  }
}

void Sampler::stop_all() {
  for (EventSet* es : sets_) {
    if (es->running()) es->stop();
  }
}

void Sampler::sample() {
  const selfmon::Stopwatch probe(selfmon::HistId::SamplerSampleNs);
  TimelineRow row;
  row.t_sec = clock_.now_sec();
  row.values.reserve(columns_.size());
  for (EventSet* es : sets_) {
    const std::vector<long long> v = es->read();
    row.values.insert(row.values.end(), v.begin(), v.end());
  }
  row.hist.reserve(hist_cols_.size());
  for (const std::size_t c : hist_cols_) {
    const Column& src = col_src_[c];
    std::array<double, 3> ps{};
    for (std::size_t q = 0; q < kTracePercentiles.size(); ++q) {
      ps[q] = src.set->read_percentile(src.local, kTracePercentiles[q]);
    }
    row.hist.push_back(ps);
  }
  rows_.push_back(std::move(row));
  selfmon::counter_add(selfmon::CounterId::SamplerRows);
}

double Sampler::median_interval_sec() const {
  if (rows_.size() < 2) return 0.0;
  std::vector<double> dts;
  dts.reserve(rows_.size() - 1);
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    dts.push_back(rows_[i].t_sec - rows_[i - 1].t_sec);
  }
  const std::size_t mid = dts.size() / 2;
  std::nth_element(dts.begin(), dts.begin() + static_cast<std::ptrdiff_t>(mid),
                   dts.end());
  return dts[mid];
}

std::vector<RateRow> Sampler::rates() const {
  std::vector<RateRow> out;
  if (rows_.size() < 2) return out;
  out.reserve(rows_.size() - 1);
  for (std::size_t i = 1; i < rows_.size(); ++i) {
    const TimelineRow& a = rows_[i - 1];
    const TimelineRow& b = rows_[i];
    RateRow r;
    r.t0_sec = a.t_sec;
    r.t1_sec = b.t_sec;
    const double dt = b.t_sec - a.t_sec;
    r.values.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (gauge_[c]) {
        r.values.push_back(static_cast<double>(b.values[c]));
      } else if (dt > 0) {
        r.values.push_back(static_cast<double>(b.values[c] - a.values[c]) / dt);
      } else {
        r.values.push_back(0.0);
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace papisim
