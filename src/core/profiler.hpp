// High-level profiling convenience API (PAPI's high-level interface
// analogue): give it a flat list of event names from ANY mix of components
// and it builds the per-component event sets (event sets cannot span
// components), wires them to a Sampler, and manages the lifecycle.
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/library.hpp"
#include "core/sampler.hpp"

namespace papisim {

class Profiler {
 public:
  Profiler(Library& lib, const sim::SimClock& clock)
      : lib_(lib), sampler_(clock) {}

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Add events (fully qualified or bare native names); events are grouped
  /// into one event set per component, preserving no particular column
  /// order guarantee beyond "grouped by component, in insertion order".
  /// @throws Error if any name fails to resolve or the profiler is running.
  void add_events(const std::vector<std::string>& names);
  void add_events(std::initializer_list<std::string> names) {
    add_events(std::vector<std::string>(names));
  }

  /// Column names in sampler order (available after start()).
  const std::vector<std::string>& columns() const { return sampler_.columns(); }

  void start();
  void sample() { sampler_.sample(); }
  void stop();
  bool running() const { return running_; }

  const Sampler& sampler() const { return sampler_; }
  const std::vector<TimelineRow>& rows() const { return sampler_.rows(); }

  /// Read the current value of every column without recording a row.
  std::vector<long long> read_now();

  /// Dump the recorded timeline as CSV ("t_sec,<col>,<col>,...").
  void write_csv(std::ostream& os) const;

  /// Dump per-interval rates ("t0_sec,t1_sec,<col>,...") -- counters as
  /// delta/dt, gauges raw -- which is what the paper's Figs. 11/12 actually
  /// plot (bandwidth over time, not cumulative bytes).
  void dump_rates_csv(std::ostream& os) const;

 private:
  Library& lib_;
  Sampler sampler_;
  // Component name -> pending event names (before start builds the sets).
  std::vector<std::pair<std::string, std::string>> pending_;  ///< (component, full name)
  std::vector<std::unique_ptr<EventSet>> sets_;
  bool running_ = false;
  bool built_ = false;
};

}  // namespace papisim
