// Region-based instrumentation on top of event sets: the annotation style
// of the third-party tools the paper names as PAPI consumers (TAU, Score-P,
// Caliper).  Applications mark code regions with RAII scopes; the profiler
// attributes every column's counts to the region stack, keeping inclusive
// and exclusive totals per unique region path.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/profiler.hpp"

namespace papisim {

/// One closed visit of a region: the timestamped interval a region path
/// occupied, recorded in completion (pop) order.  This is the ground-truth
/// oracle the phase-segmentation engine scores itself against
/// (analysis::truth_from_regions).
struct RegionInterval {
  std::string path;
  double t0_sec = 0;
  double t1_sec = 0;
  std::size_t depth = 0;  ///< stack depth of the visit (1 = top level)
};

/// Aggregated measurements of one region path (e.g. "app/solver/fft").
struct RegionStats {
  std::string path;
  std::uint64_t visits = 0;
  std::vector<double> inclusive;  ///< per column: deltas including children
  std::vector<double> exclusive;  ///< per column: deltas minus children
  double inclusive_sec = 0;
  double exclusive_sec = 0;
};

/// Hierarchical region profiler.
///
///   RegionProfiler prof(lib, clock);
///   prof.add_events({...});
///   prof.start();
///   {
///     auto app = prof.region("app");
///     { auto fft = prof.region("fft");  run_fft(); }
///     { auto a2a = prof.region("all2all"); exchange(); }
///   }
///   prof.stop();
///   for (const RegionStats& r : prof.report()) ...
class RegionProfiler {
 public:
  RegionProfiler(Library& lib, const sim::SimClock& clock)
      : clock_(clock), prof_(lib, clock) {}

  void add_events(const std::vector<std::string>& names) {
    prof_.add_events(names);
  }
  void add_events(std::initializer_list<std::string> names) {
    prof_.add_events(std::vector<std::string>(names));
  }

  void start();
  void stop();
  bool running() const { return prof_.running(); }

  const std::vector<std::string>& columns() const { return prof_.columns(); }

  /// RAII scope: attribution begins at construction, ends at destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept : prof_(other.prof_) { other.prof_ = nullptr; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope& operator=(Scope&&) = delete;
    ~Scope() {
      if (prof_ != nullptr) prof_->pop();
    }

   private:
    friend class RegionProfiler;
    explicit Scope(RegionProfiler* prof) : prof_(prof) {}
    RegionProfiler* prof_;
  };

  /// Enter a (possibly nested) region.  @throws Error if not running.
  [[nodiscard]] Scope region(const std::string& name);

  /// Per-region-path statistics, sorted by path.
  std::vector<RegionStats> report() const;

  /// Every completed region visit as a timestamped interval, in completion
  /// order (children precede their parent).
  const std::vector<RegionInterval>& timeline() const { return timeline_; }

 private:
  struct Frame {
    std::string path;
    std::vector<long long> entry_values;
    double entry_sec = 0;
    std::vector<double> child_values;  ///< accumulated inclusive of children
    double child_sec = 0;
  };

  void pop();
  RegionStats& stats_for(const std::string& path);

  const sim::SimClock& clock_;
  Profiler prof_;
  std::vector<Frame> stack_;
  std::map<std::string, RegionStats> totals_;
  std::vector<RegionInterval> timeline_;
};

}  // namespace papisim
