#include "core/library.hpp"

#include "core/event_name.hpp"

namespace papisim {

const char* to_string(Status s) {
  switch (s) {
    case Status::Ok: return "Ok";
    case Status::NoComponent: return "NoComponent";
    case Status::NoEvent: return "NoEvent";
    case Status::ComponentDisabled: return "ComponentDisabled";
    case Status::AlreadyRunning: return "AlreadyRunning";
    case Status::NotRunning: return "NotRunning";
    case Status::InvalidArgument: return "InvalidArgument";
    case Status::PermissionDenied: return "PermissionDenied";
    case Status::Internal: return "Internal";
    case Status::Timeout: return "Timeout";
    case Status::Shutdown: return "Shutdown";
    case Status::Overloaded: return "Overloaded";
  }
  return "Unknown";
}

Component& Library::register_component(std::unique_ptr<Component> component) {
  if (component == nullptr) {
    throw Error(Status::InvalidArgument, "register_component: null component");
  }
  if (find_component(component->name()) != nullptr) {
    throw Error(Status::InvalidArgument,
                "component '" + component->name() + "' already registered");
  }
  components_.push_back(std::move(component));
  return *components_.back();
}

Component* Library::find_component(std::string_view name) {
  // Intentionally lock-free: the thread-safety contract (see header) freezes
  // the registry before measurement threads exist, so lookups -- including
  // the route_event probe loop below -- only ever read an immutable vector.
  for (auto& c : components_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Component& Library::component(std::string_view name) {
  Component* c = find_component(name);
  if (c == nullptr) {
    throw Error(Status::NoComponent, "no component named '" + std::string(name) + "'");
  }
  return *c;
}

std::vector<Component*> Library::components() {
  std::vector<Component*> out;
  out.reserve(components_.size());
  for (auto& c : components_) out.push_back(c.get());
  return out;
}

Component& Library::route_event(std::string_view full_name, std::string& native_out) {
  const ParsedEventName parsed = parse_event_name(full_name);
  if (!parsed.component.empty()) {
    Component& c = component(parsed.component);
    if (!c.available()) {
      throw Error(Status::ComponentDisabled,
                  "component '" + parsed.component + "' is disabled: " +
                      c.disabled_reason());
    }
    if (!c.knows_event(parsed.native)) {
      throw Error(Status::NoEvent, "component '" + parsed.component +
                                       "' has no event '" + parsed.native + "'");
    }
    native_out = parsed.native;
    return c;
  }
  // Bare native name: probe every available component (PAPI behaviour).
  for (auto& c : components_) {
    if (c->available() && c->knows_event(parsed.native)) {
      native_out = parsed.native;
      return *c;
    }
  }
  throw Error(Status::NoEvent,
              "event '" + std::string(full_name) + "' not found in any component");
}

std::unique_ptr<EventSet> Library::create_eventset() {
  return std::make_unique<EventSet>(*this);
}

void EventSet::add_event(std::string_view full_name) {
  if (running_) {
    throw Error(Status::AlreadyRunning, "cannot add events to a running event set");
  }
  std::string native;
  Component& c = lib_.route_event(full_name, native);
  if (component_ != nullptr && component_ != &c) {
    throw Error(Status::InvalidArgument,
                "event set is bound to component '" + component_->name() +
                    "'; cannot add event from '" + c.name() + "'");
  }
  if (component_ == nullptr) {
    component_ = &c;
    state_ = c.create_state();
  }
  component_->add_event(*state_, native);
  names_.emplace_back(full_name);
  natives_.push_back(std::move(native));
}

EventKind EventSet::kind(std::size_t idx) const {
  if (idx >= natives_.size()) {
    throw Error(Status::InvalidArgument, "kind: event index out of range");
  }
  return component_->event_kind(natives_[idx]);
}

double EventSet::read_percentile(std::size_t idx, double q) {
  require_bound();
  if (!running_) throw Error(Status::NotRunning, "event set not running");
  if (idx >= natives_.size()) {
    throw Error(Status::InvalidArgument, "read_percentile: event index out of range");
  }
  return component_->read_percentile(*state_, natives_[idx], q);
}

void EventSet::require_bound() const {
  if (component_ == nullptr) {
    throw Error(Status::InvalidArgument, "event set has no events");
  }
}

void EventSet::start() {
  require_bound();
  if (running_) throw Error(Status::AlreadyRunning, "event set already running");
  component_->start(*state_);
  running_ = true;
}

void EventSet::stop() {
  require_bound();
  if (!running_) throw Error(Status::NotRunning, "event set not running");
  component_->stop(*state_);
  running_ = false;
}

void EventSet::reset() {
  require_bound();
  component_->reset(*state_);
}

std::vector<long long> EventSet::read() {
  std::vector<long long> out(names_.size());
  read(out);
  return out;
}

void EventSet::read(std::span<long long> out) {
  require_bound();
  if (!running_) throw Error(Status::NotRunning, "event set not running");
  if (out.size() != names_.size()) {
    throw Error(Status::InvalidArgument, "read: output span size mismatch");
  }
  component_->read(*state_, out);
}

}  // namespace papisim
