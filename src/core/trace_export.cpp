#include "core/trace_export.hpp"

#include "core/json_util.hpp"

namespace papisim {

void write_chrome_trace(std::ostream& os, const Sampler& sampler,
                        std::span<const TraceSpan> spans,
                        const std::string& process_name) {
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) os << ",\n";
    first = false;
    os << json;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"" +
       json_escape(process_name) + "\"}}");

  // Spans: pid 1, one tid per distinct track (thread names as metadata).
  std::vector<std::string> tracks;
  auto tid_of = [&](const std::string& track) {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == track) return i + 1;
    }
    tracks.push_back(track);
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tracks.size()) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + json_escape(track) +
         "\"}}");
    return tracks.size();
  };
  for (const TraceSpan& span : spans) {
    const std::size_t tid = tid_of(span.track);
    const double us = span.t0_sec * 1e6;
    const double dur = (span.t1_sec - span.t0_sec) * 1e6;
    emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"name\":\"" + json_escape(span.name) + "\",\"ts\":" +
         std::to_string(us) + ",\"dur\":" + std::to_string(dur) + "}");
  }

  // Counter tracks: rates for counters, raw values for gauges.
  const std::vector<RateRow> rates = sampler.rates();
  for (const RateRow& r : rates) {
    for (std::size_t c = 0; c < sampler.columns().size(); ++c) {
      emit("{\"ph\":\"C\",\"pid\":1,\"name\":\"" +
           json_escape(sampler.columns()[c]) + "\",\"ts\":" +
           std::to_string(r.t0_sec * 1e6) + ",\"args\":{\"value\":" +
           std::to_string(r.values[c]) + "}}");
    }
  }

  // Histogram columns: one percentile track per quantile, raw values (the
  // distribution is already an aggregate; no rate conversion), every row.
  for (const TimelineRow& row : sampler.rows()) {
    for (std::size_t j = 0; j < sampler.hist_columns().size(); ++j) {
      const std::string& col = sampler.columns()[sampler.hist_columns()[j]];
      for (std::size_t q = 0; q < kTracePercentiles.size(); ++q) {
        emit("{\"ph\":\"C\",\"pid\":1,\"name\":\"" + json_escape(col) + "." +
             kTracePercentileNames[q] + "\",\"ts\":" +
             std::to_string(row.t_sec * 1e6) + ",\"args\":{\"value\":" +
             std::to_string(row.hist[j][q]) + "}}");
      }
    }
  }
  os << "\n]}\n";
}

}  // namespace papisim
