#include "core/trace_export.hpp"

#include <cstddef>
#include <vector>

#include "core/json_util.hpp"

namespace papisim {

namespace {

/// Emits one Chrome trace event per call: an object inside the caller's
/// open "traceEvents" array, newline-separated so the file stays diffable.
class EventWriter {
 public:
  explicit EventWriter(JsonWriter& w) : w_(w) {}

  /// "M" metadata event naming a process or thread.
  void name(int pid, int tid, std::string_view what, std::string_view value) {
    w_.newline().begin_object().kv("ph", "M").kv("pid", pid);
    if (tid != 0) w_.kv("tid", tid);
    w_.kv("name", what).key("args").begin_object().kv("name", value)
        .end_object().end_object();
  }

  /// "X" complete event: begin the object; the caller may add args before
  /// close().
  JsonWriter& complete(int pid, int tid, std::string_view name, double ts_us,
                       double dur_us) {
    w_.newline().begin_object().kv("ph", "X").kv("pid", pid).kv("tid", tid)
        .kv("name", name).kv("ts", ts_us).kv("dur", dur_us);
    return w_;
  }

  /// "C" counter event.
  void counter(int pid, std::string_view name, double ts_us, double value) {
    w_.newline().begin_object().kv("ph", "C").kv("pid", pid).kv("name", name)
        .kv("ts", ts_us).key("args").begin_object().kv("value", value)
        .end_object().end_object();
  }

 private:
  JsonWriter& w_;
};

void write_sampler_events(EventWriter& ev, const Sampler& sampler,
                          std::span<const TraceSpan> spans) {
  // Spans: pid 1, one tid per distinct track (thread names as metadata).
  std::vector<std::string> tracks;
  const auto tid_of = [&](const std::string& track) {
    for (std::size_t i = 0; i < tracks.size(); ++i) {
      if (tracks[i] == track) return static_cast<int>(i + 1);
    }
    tracks.push_back(track);
    const int tid = static_cast<int>(tracks.size());
    ev.name(1, tid, "thread_name", track);
    return tid;
  };
  for (const TraceSpan& span : spans) {
    const int tid = tid_of(span.track);
    ev.complete(1, tid, span.name, span.t0_sec * 1e6,
                (span.t1_sec - span.t0_sec) * 1e6)
        .end_object();
  }

  // Counter tracks: rates for counters, raw values for gauges.
  for (const RateRow& r : sampler.rates()) {
    for (std::size_t c = 0; c < sampler.columns().size(); ++c) {
      ev.counter(1, sampler.columns()[c], r.t0_sec * 1e6, r.values[c]);
    }
  }

  // Histogram columns: one percentile track per quantile, raw values (the
  // distribution is already an aggregate; no rate conversion), every row.
  for (const TimelineRow& row : sampler.rows()) {
    for (std::size_t j = 0; j < sampler.hist_columns().size(); ++j) {
      const std::string& col = sampler.columns()[sampler.hist_columns()[j]];
      for (std::size_t q = 0; q < kTracePercentiles.size(); ++q) {
        ev.counter(1, col + "." + std::string(kTracePercentileNames[q]),
                   row.t_sec * 1e6, row.hist[j][q]);
      }
    }
  }
}

void write_causal_events(EventWriter& ev, std::span<const trace::Span> causal) {
  if (causal.empty()) return;
  ev.name(2, 0, "process_name", "causal traces");
  bool stage_named[trace::kNumStages] = {};
  for (const trace::Span& s : causal) {
    const auto stage = static_cast<std::size_t>(s.stage);
    if (stage >= trace::kNumStages) continue;
    const int tid = static_cast<int>(stage) + 1;
    if (!stage_named[stage]) {
      stage_named[stage] = true;
      ev.name(2, tid, "thread_name", trace::to_string(s.stage));
    }
    // Host ns -> trace µs.  Instant spans get a sliver of width so they stay
    // visible (ph "X" with dur 0 renders as nothing in some viewers).
    const double dur_us = static_cast<double>(s.dur_ns()) / 1e3;
    JsonWriter& w =
        ev.complete(2, tid, trace::to_string(s.stage),
                    static_cast<double>(s.t0_ns) / 1e3,
                    dur_us > 0.001 ? dur_us : 0.001);
    w.key("args").begin_object()
        .kv("trace_id", s.trace_id)
        .kv("span_id", s.span_id)
        .kv("parent_id", s.parent_id)
        .kv("status", trace::to_string(s.status))
        .kv("a", s.a)
        .kv("b", s.b)
        .end_object().end_object();
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Sampler& sampler,
                        std::span<const TraceSpan> spans,
                        const std::string& process_name) {
  write_chrome_trace(os, sampler, spans, {}, process_name);
}

void write_chrome_trace(std::ostream& os, const Sampler& sampler,
                        std::span<const TraceSpan> spans,
                        std::span<const trace::Span> causal,
                        const std::string& process_name) {
  JsonWriter w(os);
  w.begin_object().key("traceEvents").begin_array();
  EventWriter ev(w);
  ev.name(1, 0, "process_name", process_name);
  write_sampler_events(ev, sampler, spans);
  write_causal_events(ev, causal);
  w.newline().end_array().end_object();
  os << '\n';
}

}  // namespace papisim
