// Status codes and error type of the papisim measurement library.
#pragma once

#include <stdexcept>
#include <string>

namespace papisim {

/// Result statuses, mirroring the PAPI error-code vocabulary.
enum class Status {
  Ok,
  NoComponent,       ///< no component of that name is registered
  NoEvent,           ///< event name did not resolve in the component
  ComponentDisabled, ///< component registered but unusable (e.g. EPERM)
  AlreadyRunning,    ///< start() on a running event set
  NotRunning,        ///< stop()/read() on a stopped event set
  InvalidArgument,
  PermissionDenied,
  Internal,
  Timeout,           ///< daemon round-trip deadline expired (retries exhausted)
  Shutdown,          ///< request raced or arrived after daemon shutdown
  Overloaded,        ///< daemon shed the request at admission (backpressure);
                     ///< retryable, surfaced after bounded retry
};

const char* to_string(Status s);

/// Exception carrying a Status; thrown by the public API on misuse and by
/// components on resolution/permission failures.
class Error : public std::runtime_error {
 public:
  Error(Status status, const std::string& what)
      : std::runtime_error(what), status_(status) {}

  Status status() const { return status_; }

 private:
  Status status_;
};

}  // namespace papisim
