// Library: component registry and event-set factory (the PAPI_library_init /
// PAPI_create_eventset surface of papisim).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/component.hpp"
#include "core/error.hpp"

namespace papisim {

class EventSet;

/// The measurement library instance.
///
/// Usage mirrors PAPI:
///
///   papisim::Library lib;
///   lib.register_component(std::make_unique<PcpComponent>(client));
///   auto es = lib.create_eventset();
///   es->add_event("pcp:::perfevent.hwcounters.nest_mba0_imc."
///                 "PM_MBA0_READ_BYTES.value:cpu87");
///   es->start();  ... workload ...  es->stop();
///   auto values = es->read();
///
/// Thread-safety contract (mirrors PAPI's): register every component before
/// spawning measurement threads; after that, lookups are read-only and
/// distinct EventSets may be created, started, read, and stopped from
/// different threads concurrently (the underlying counters are atomics and
/// the components' start/stop noise accrual is internally locked).  A single
/// EventSet is NOT internally synchronized -- one thread at a time, exactly
/// like a PAPI event set.
class Library {
 public:
  Library() = default;
  Library(const Library&) = delete;
  Library& operator=(const Library&) = delete;

  /// Registers a component; rejects duplicate names.
  Component& register_component(std::unique_ptr<Component> component);

  /// Lookup by name; nullptr when absent.
  Component* find_component(std::string_view name);

  /// Lookup by name; @throws Error(Status::NoComponent) when absent.
  Component& component(std::string_view name);

  std::vector<Component*> components();

  /// Resolve a fully qualified or bare native event name to its component.
  /// @throws Error(Status::NoComponent / Status::NoEvent).
  Component& route_event(std::string_view full_name, std::string& native_out);

  /// New empty event set (bound to a component by its first add_event).
  std::unique_ptr<EventSet> create_eventset();

 private:
  std::vector<std::unique_ptr<Component>> components_;
};

/// A set of events from ONE component, measured together (PAPI semantics:
/// event sets cannot mix components; multi-component profiling uses several
/// event sets, see Sampler).
class EventSet {
 public:
  explicit EventSet(Library& lib) : lib_(lib) {}

  /// Adds a fully qualified ("comp:::native") or bare native event.
  /// The first event binds the set to its component.
  /// @throws Error on unknown events, mixed components, or while running.
  void add_event(std::string_view full_name);

  const std::vector<std::string>& event_names() const { return names_; }
  std::size_t size() const { return names_.size(); }
  bool running() const { return running_; }

  /// Column semantics of event `idx` (Counter / Gauge / Histogram).
  EventKind kind(std::size_t idx) const;

  /// Component this set is bound to (nullptr before the first add_event).
  Component* component() const { return component_; }

  void start();
  void stop();
  void reset();

  /// Values since start() (gauges read instantaneously).
  std::vector<long long> read();
  void read(std::span<long long> out);

  /// Quantile `q` of Histogram event `idx` over the window since start().
  /// @throws Error for non-histogram events or when not running.
  double read_percentile(std::size_t idx, double q);

 private:
  void require_bound() const;

  Library& lib_;
  Component* component_ = nullptr;
  std::unique_ptr<ControlState> state_;
  std::vector<std::string> names_;
  std::vector<std::string> natives_;  ///< component-local names, same order
  bool running_ = false;
};

}  // namespace papisim
