// Timeline sampler: simultaneous multi-component profiling (Figs. 11-12).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/library.hpp"
#include "sim/clock.hpp"

namespace papisim {

/// Percentiles recorded per histogram column on every row (p50/p95/p99),
/// matching the tracks write_chrome_trace emits.
inline constexpr std::array<double, 3> kTracePercentiles = {0.50, 0.95, 0.99};
inline constexpr std::array<const char*, 3> kTracePercentileNames = {"p50", "p95",
                                                                     "p99"};

/// One timeline row: virtual timestamp plus the cumulative (or gauge) value
/// of every column.  Histogram columns additionally carry their percentile
/// triple, one entry per histogram column in column order.
struct TimelineRow {
  double t_sec = 0.0;
  std::vector<long long> values;
  std::vector<std::array<double, 3>> hist;  ///< kTracePercentiles per hist column
};

/// Per-interval view: rates for counter columns (delta/dt), raw values for
/// gauge columns (e.g. power).  Histogram columns behave like counters here
/// (the value is the recorded-sample count, so the rate is samples/sec).
struct RateRow {
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  std::vector<double> values;
};

/// Samples several event sets -- typically one per component (PCP memory
/// traffic, NVML power, Infiniband port data, selfmon harness metrics) --
/// against the shared virtual clock.  This is the mechanism behind the
/// paper's "complete application profiling": disparate hardware domains on
/// one time axis.
class Sampler {
 public:
  explicit Sampler(const sim::SimClock& clock) : clock_(clock) {}

  /// Register an event set; its events become columns.  The set must stay
  /// alive for the sampler's lifetime.
  void add_eventset(EventSet& es);

  void start_all();
  void stop_all();

  /// Append one row at the current virtual time.
  void sample();

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<EventKind>& column_kinds() const { return kinds_; }
  const std::vector<bool>& column_is_gauge() const { return gauge_; }
  /// Column indices whose kind is Histogram, in column order; entry j of
  /// TimelineRow::hist belongs to column hist_columns()[j].
  const std::vector<std::size_t>& hist_columns() const { return hist_cols_; }
  const std::vector<TimelineRow>& rows() const { return rows_; }

  /// Consecutive-row rates; size() == rows().size() - 1.
  std::vector<RateRow> rates() const;

  /// Median inter-row interval -- the "one sample interval" unit used by
  /// the analysis layer for boundary tolerances.  0 with fewer than 2 rows.
  double median_interval_sec() const;

  void clear_rows() { rows_.clear(); }

 private:
  struct Column {
    EventSet* set = nullptr;
    std::size_t local = 0;  ///< index within the set
  };

  const sim::SimClock& clock_;
  std::vector<EventSet*> sets_;
  std::vector<Column> col_src_;
  std::vector<std::string> columns_;
  std::vector<EventKind> kinds_;
  std::vector<bool> gauge_;
  std::vector<std::size_t> hist_cols_;
  std::vector<TimelineRow> rows_;
};

}  // namespace papisim
