// Timeline sampler: simultaneous multi-component profiling (Figs. 11-12).
#pragma once

#include <string>
#include <vector>

#include "core/library.hpp"
#include "sim/clock.hpp"

namespace papisim {

/// One timeline row: virtual timestamp plus the cumulative (or gauge) value
/// of every column.
struct TimelineRow {
  double t_sec = 0.0;
  std::vector<long long> values;
};

/// Per-interval view: rates for counter columns (delta/dt), raw values for
/// gauge columns (e.g. power).
struct RateRow {
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  std::vector<double> values;
};

/// Samples several event sets -- typically one per component (PCP memory
/// traffic, NVML power, Infiniband port data) -- against the shared virtual
/// clock.  This is the mechanism behind the paper's "complete application
/// profiling": disparate hardware domains on one time axis.
class Sampler {
 public:
  explicit Sampler(const sim::SimClock& clock) : clock_(clock) {}

  /// Register an event set; its events become columns.  The set must stay
  /// alive for the sampler's lifetime.
  void add_eventset(EventSet& es);

  void start_all();
  void stop_all();

  /// Append one row at the current virtual time.
  void sample();

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<bool>& column_is_gauge() const { return gauge_; }
  const std::vector<TimelineRow>& rows() const { return rows_; }

  /// Consecutive-row rates; size() == rows().size() - 1.
  std::vector<RateRow> rates() const;

  void clear_rows() { rows_.clear(); }

 private:
  const sim::SimClock& clock_;
  std::vector<EventSet*> sets_;
  std::vector<std::string> columns_;
  std::vector<bool> gauge_;
  std::vector<TimelineRow> rows_;
};

}  // namespace papisim
