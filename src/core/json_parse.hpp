// Minimal strict JSON parser for runtime ingestion (papisim-analyze --spans,
// span-dump round-trip tests).  Supports the full JSON value grammar --
// null/true/false, numbers, strings with escapes (incl. \uXXXX, decoded to
// UTF-8), arrays, objects -- and rejects everything else with a typed
// Error(Status::InvalidArgument) naming the byte offset.
//
// Numbers are held as double: every integer this tree serializes (span ids,
// relative nanosecond timestamps) is far below 2^53, so the round trip is
// exact.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace papisim::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (kind != Kind::Object) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  double num_or(double fallback) const {
    return kind == Kind::Number ? number : fallback;
  }
  std::uint64_t u64_or(std::uint64_t fallback) const {
    return kind == Kind::Number && number >= 0
               ? static_cast<std::uint64_t>(number)
               : fallback;
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw Error(Status::InvalidArgument,
                "json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = parse_string();
        return v;
      }
      case 't': {
        if (!consume_word("true")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_word("false")) fail("bad literal");
        Value v;
        v.kind = Value::Kind::Bool;
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return Value{};
      }
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control byte in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          const unsigned cp = parse_hex4();
          // BMP-only decode (surrogate pairs would need a second \u escape;
          // nothing in this tree emits them).  Encode as UTF-8.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return cp;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad number exponent");
    }
    Value v;
    v.kind = Value::Kind::Number;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parse a complete JSON document.  @throws Error(Status::InvalidArgument).
inline Value parse(std::string_view text) { return detail::Parser(text).parse(); }

}  // namespace papisim::json
