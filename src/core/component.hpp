// The component interface of the multi-component measurement library.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace papisim {

/// Description of one native event exposed by a component.
struct EventInfo {
  std::string name;         ///< fully qualified, e.g. "pcp:::perfevent...value"
  std::string description;
  std::string units;
  bool instantaneous = false;  ///< gauge (e.g. power) rather than counter
};

/// Per-event-set component state.  Components subclass this to keep resolved
/// event codes and start snapshots; the core never looks inside.
class ControlState {
 public:
  virtual ~ControlState() = default;
};

/// A measurement backend: one hardware domain exposed through the uniform
/// API (PAPI's "component" concept).  Implementations in src/components:
/// perf_nest (direct privileged counters), pcp (via PMCD), nvml (GPU power),
/// infiniband (NIC port traffic), cpu (core activity).
class Component {
 public:
  virtual ~Component() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Empty when usable; otherwise the reason the component is disabled
  /// (e.g. "insufficient privileges"), mirroring PAPI's disabled_reason.
  virtual std::string disabled_reason() const { return {}; }
  bool available() const { return disabled_reason().empty(); }

  /// Enumerate native events (names are component-qualified).
  virtual std::vector<EventInfo> events() const = 0;

  /// True if `native` (without the component prefix) resolves.
  virtual bool knows_event(std::string_view native) const = 0;

  /// True if `native` is a gauge (instantaneous reading, e.g. power in mW)
  /// rather than a monotonically accumulating counter.
  virtual bool is_instantaneous(std::string_view native) const {
    (void)native;
    return false;
  }

  virtual std::unique_ptr<ControlState> create_state() = 0;

  /// Add a native event to the state.  @throws Error(Status::NoEvent).
  virtual void add_event(ControlState& state, std::string_view native) = 0;

  virtual std::size_t num_events(const ControlState& state) const = 0;

  /// Start counting: zero the virtual counters (snapshot semantics).
  virtual void start(ControlState& state) = 0;
  virtual void stop(ControlState& state) = 0;

  /// Read values accumulated since start (or instantaneous values for
  /// gauges).  `out.size()` must equal num_events(state).
  virtual void read(ControlState& state, std::span<long long> out) = 0;

  /// Re-zero the counters without stopping.
  virtual void reset(ControlState& state) = 0;
};

}  // namespace papisim
