// The component interface of the multi-component measurement library.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace papisim {

/// Description of one native event exposed by a component.
struct EventInfo {
  std::string name;         ///< fully qualified, e.g. "pcp:::perfevent...value"
  std::string description;
  std::string units;
  bool instantaneous = false;  ///< gauge (e.g. power) rather than counter
};

/// Value semantics of an event's column.
///
/// Counter: monotonically accumulating; read() returns the delta since
/// start() and timeline consumers plot per-interval rates.
/// Gauge: instantaneous reading (e.g. power in mW); plotted raw.
/// Histogram: a latency/size distribution; read() returns the number of
/// samples recorded since start() and read_percentile() exposes the
/// distribution's quantiles for the same window (selfmon latency tracks).
enum class EventKind : std::uint8_t { Counter, Gauge, Histogram };

/// Per-event-set component state.  Components subclass this to keep resolved
/// event codes and start snapshots; the core never looks inside.
class ControlState {
 public:
  virtual ~ControlState() = default;
};

/// A measurement backend: one hardware domain exposed through the uniform
/// API (PAPI's "component" concept).  Implementations in src/components:
/// perf_nest (direct privileged counters), pcp (via PMCD), nvml (GPU power),
/// infiniband (NIC port traffic), cpu (core activity).
class Component {
 public:
  virtual ~Component() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Empty when usable; otherwise the reason the component is disabled
  /// (e.g. "insufficient privileges"), mirroring PAPI's disabled_reason.
  virtual std::string disabled_reason() const { return {}; }
  bool available() const { return disabled_reason().empty(); }

  /// Enumerate native events (names are component-qualified).
  virtual std::vector<EventInfo> events() const = 0;

  /// True if `native` (without the component prefix) resolves.
  virtual bool knows_event(std::string_view native) const = 0;

  /// True if `native` is a gauge (instantaneous reading, e.g. power in mW)
  /// rather than a monotonically accumulating counter.
  virtual bool is_instantaneous(std::string_view native) const {
    (void)native;
    return false;
  }

  /// Column semantics of `native`.  The default derives Counter/Gauge from
  /// is_instantaneous(); components with distribution-valued events
  /// (selfmon's latency histograms) override this to return Histogram.
  virtual EventKind event_kind(std::string_view native) const {
    return is_instantaneous(native) ? EventKind::Gauge : EventKind::Counter;
  }

  virtual std::unique_ptr<ControlState> create_state() = 0;

  /// Add a native event to the state.  @throws Error(Status::NoEvent).
  virtual void add_event(ControlState& state, std::string_view native) = 0;

  virtual std::size_t num_events(const ControlState& state) const = 0;

  /// Start counting: zero the virtual counters (snapshot semantics).
  virtual void start(ControlState& state) = 0;
  virtual void stop(ControlState& state) = 0;

  /// Read values accumulated since start (or instantaneous values for
  /// gauges).  `out.size()` must equal num_events(state).
  virtual void read(ControlState& state, std::span<long long> out) = 0;

  /// Re-zero the counters without stopping.
  virtual void reset(ControlState& state) = 0;

  /// Quantile `q` in [0, 1] of a Histogram event's distribution, over the
  /// samples recorded since start().  Only meaningful for events whose
  /// event_kind() is Histogram; the default (no histogram events) throws
  /// Error(Status::InvalidArgument).
  virtual double read_percentile(ControlState& state, std::string_view native,
                                 double q) {
    (void)state;
    (void)q;
    throw Error(Status::InvalidArgument,
                "component '" + name() + "' has no histogram event '" +
                    std::string(native) + "'");
  }
};

}  // namespace papisim
