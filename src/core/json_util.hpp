// Minimal JSON string escaping shared by every JSON emitter in the tree
// (Chrome trace export, analysis reports).  Escapes the two structural
// characters, the named control escapes, and any other control byte as
// \u00XX, so arbitrary span/track/column names survive a round trip through
// a strict parser.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace papisim {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace papisim
