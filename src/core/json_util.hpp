// Shared JSON emission utilities used by every JSON writer in the tree
// (Chrome trace export, analysis reports, causal-span dumps).
//
//  * json_escape: escapes the two structural characters, the named control
//    escapes, and any other control byte as \u00XX, so arbitrary
//    span/track/column names survive a round trip through a strict parser.
//  * JsonWriter: a streaming writer with a comma-tracking container stack,
//    so the three emitters (core/trace_export.cpp, analysis/report.cpp,
//    trace/export.cpp) share one strictness contract instead of each
//    hand-rolling separators and quoting.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace papisim {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Streaming strict-JSON writer.  The writer tracks, per open container,
/// whether a separating comma is due, so callers only state structure:
///
///   JsonWriter w(os);
///   w.begin_object().key("spans").begin_array();
///   for (...) w.begin_object().key("id").value(id).end_object();
///   w.end_array().end_object();
///
/// Numbers are emitted with enough precision to round-trip through a strict
/// parser; non-finite doubles (never produced by a correct caller) degrade
/// to 0 rather than emitting invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object() {
    sep();
    os_ << '{';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    first_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    sep();
    os_ << '[';
    first_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    first_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    sep();
    os_ << '"' << json_escape(k) << "\":";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    sep();
    os_ << '"' << json_escape(v) << '"';
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    sep();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    sep();
    if (!std::isfinite(v)) v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os_ << buf;
    // Keep doubles visibly typed: "%.12g" prints 1000.0 as "1000", which
    // downstream tooling (and the trace-export tests) would read as an int.
    if (std::string_view(buf).find_first_of(".eE") == std::string_view::npos) {
      os_ << ".0";
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    sep();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    sep();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }

  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    return key(k).value(std::forward<T>(v));
  }

  /// Cosmetic newline between sibling values (emitted *before* the next
  /// separator is due, so the output stays valid and line-diffable).
  JsonWriter& newline() {
    os_ << '\n';
    return *this;
  }

 private:
  void sep() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!first_.empty()) {
      if (!first_.back()) os_ << ',';
      first_.back() = false;
    }
  }

  std::ostream& os_;
  std::vector<bool> first_;
  bool pending_value_ = false;
};

}  // namespace papisim
