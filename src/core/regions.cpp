#include "core/regions.hpp"

namespace papisim {

void RegionProfiler::start() { prof_.start(); }

void RegionProfiler::stop() {
  if (!stack_.empty()) {
    throw Error(Status::InvalidArgument,
                "RegionProfiler: stop() inside an open region ('" +
                    stack_.back().path + "')");
  }
  prof_.stop();
}

RegionProfiler::Scope RegionProfiler::region(const std::string& name) {
  if (!prof_.running()) {
    throw Error(Status::NotRunning, "RegionProfiler: not running");
  }
  if (name.empty() || name.find('/') != std::string::npos) {
    throw Error(Status::InvalidArgument,
                "RegionProfiler: region names must be non-empty and without '/'");
  }
  Frame frame;
  frame.path = stack_.empty() ? name : stack_.back().path + "/" + name;
  frame.entry_values = prof_.read_now();
  frame.entry_sec = clock_.now_sec();
  frame.child_values.assign(columns().size(), 0.0);
  stack_.push_back(std::move(frame));
  return Scope(this);
}

void RegionProfiler::pop() {
  Frame frame = std::move(stack_.back());
  stack_.pop_back();

  const std::vector<long long> now = prof_.read_now();
  const double now_sec = clock_.now_sec();

  timeline_.push_back(
      {frame.path, frame.entry_sec, now_sec, stack_.size() + 1});

  RegionStats& st = stats_for(frame.path);
  ++st.visits;
  const double dt = now_sec - frame.entry_sec;
  st.inclusive_sec += dt;
  st.exclusive_sec += dt - frame.child_sec;
  for (std::size_t c = 0; c < now.size(); ++c) {
    const double delta =
        static_cast<double>(now[c] - frame.entry_values[c]);
    st.inclusive[c] += delta;
    st.exclusive[c] += delta - frame.child_values[c];
  }

  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    parent.child_sec += dt;
    for (std::size_t c = 0; c < now.size(); ++c) {
      parent.child_values[c] +=
          static_cast<double>(now[c] - frame.entry_values[c]);
    }
  }
}

RegionStats& RegionProfiler::stats_for(const std::string& path) {
  auto it = totals_.find(path);
  if (it == totals_.end()) {
    RegionStats st;
    st.path = path;
    st.inclusive.assign(columns().size(), 0.0);
    st.exclusive.assign(columns().size(), 0.0);
    it = totals_.emplace(path, std::move(st)).first;
  }
  return it->second;
}

std::vector<RegionStats> RegionProfiler::report() const {
  std::vector<RegionStats> out;
  out.reserve(totals_.size());
  for (const auto& [path, st] : totals_) out.push_back(st);
  return out;
}

}  // namespace papisim
