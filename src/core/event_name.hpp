// Parsing of fully qualified event names ("component:::native[:qualifiers]").
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace papisim {

/// A split event name.  "pcp:::perfevent.foo.value:cpu87" splits into
/// component "pcp" and native "perfevent.foo.value:cpu87"; names without a
/// ":::" separator have an empty component and are resolved by probing every
/// registered component (PAPI's behaviour for bare native names such as
/// "power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0").
struct ParsedEventName {
  std::string component;
  std::string native;
};

inline ParsedEventName parse_event_name(std::string_view full) {
  const std::size_t pos = full.find(":::");
  if (pos == std::string_view::npos) {
    return {std::string{}, std::string(full)};
  }
  return {std::string(full.substr(0, pos)), std::string(full.substr(pos + 3))};
}

/// Strips a trailing ":key..." qualifier (used by components with simple
/// suffix qualifiers).  Returns the qualifier without the colon, or nullopt.
inline std::optional<std::string_view> split_suffix_qualifier(
    std::string_view& native, std::string_view key) {
  const std::size_t pos = native.rfind(key);
  if (pos == std::string_view::npos) return std::nullopt;
  std::string_view qual = native.substr(pos + key.size());
  native = native.substr(0, pos);
  return qual;
}

}  // namespace papisim
