#include "core/profiler.hpp"

#include <algorithm>

namespace papisim {

void Profiler::add_events(const std::vector<std::string>& names) {
  if (running_ || built_) {
    throw Error(Status::AlreadyRunning,
                "Profiler: cannot add events after start()");
  }
  for (const std::string& name : names) {
    std::string native;
    Component& comp = lib_.route_event(name, native);  // validates eagerly
    pending_.emplace_back(comp.name(), name);
  }
}

void Profiler::start() {
  if (running_) throw Error(Status::AlreadyRunning, "Profiler already running");
  if (!built_) {
    if (pending_.empty()) {
      throw Error(Status::InvalidArgument, "Profiler: no events added");
    }
    // Group by component, preserving insertion order within each group and
    // the order of first appearance across groups.
    std::vector<std::string> component_order;
    for (const auto& [comp, name] : pending_) {
      if (std::find(component_order.begin(), component_order.end(), comp) ==
          component_order.end()) {
        component_order.push_back(comp);
      }
    }
    for (const std::string& comp : component_order) {
      auto es = lib_.create_eventset();
      for (const auto& [c, name] : pending_) {
        if (c == comp) es->add_event(name);
      }
      sampler_.add_eventset(*es);
      sets_.push_back(std::move(es));
    }
    built_ = true;
  }
  sampler_.start_all();
  running_ = true;
}

void Profiler::stop() {
  if (!running_) throw Error(Status::NotRunning, "Profiler not running");
  sampler_.stop_all();
  running_ = false;
}

std::vector<long long> Profiler::read_now() {
  if (!running_) throw Error(Status::NotRunning, "Profiler not running");
  std::vector<long long> out;
  for (auto& es : sets_) {
    const std::vector<long long> v = es->read();
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

void Profiler::dump_rates_csv(std::ostream& os) const {
  os << "t0_sec,t1_sec";
  for (const std::string& c : sampler_.columns()) os << ',' << c;
  os << '\n';
  for (const RateRow& row : sampler_.rates()) {
    os << row.t0_sec << ',' << row.t1_sec;
    for (const double v : row.values) os << ',' << v;
    os << '\n';
  }
}

void Profiler::write_csv(std::ostream& os) const {
  os << "t_sec";
  for (const std::string& c : sampler_.columns()) os << ',' << c;
  os << '\n';
  for (const TimelineRow& row : sampler_.rows()) {
    os << row.t_sec;
    for (const long long v : row.values) os << ',' << v;
    os << '\n';
  }
}

}  // namespace papisim
