// Timeline export in the Chrome trace-event JSON format (load the file at
// chrome://tracing or in Perfetto) -- the role Vampir plays for the
// PAPI-based toolchain the paper describes: phases as spans, every sampled
// counter as a counter track.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "core/sampler.hpp"
#include "trace/span.hpp"

namespace papisim {

/// A named interval on the timeline (an application phase).
struct TraceSpan {
  std::string name;
  double t0_sec = 0;
  double t1_sec = 0;
  std::string track = "phases";  ///< thread-name the span is drawn on
};

/// Writes a complete trace: one "X" (complete) event per span and one "C"
/// (counter) event per sampler row and column.  Counter columns use the
/// sampler's per-interval rates for counters and raw values for gauges, so
/// the tracks look like the paper's Fig. 11/12 curves.  Histogram columns
/// (selfmon latency distributions) additionally render as one counter track
/// per percentile ("<column>.p50" / ".p95" / ".p99", kTracePercentiles) with
/// the raw percentile value at each row; the base column stays a rate track
/// of recorded samples per second.
void write_chrome_trace(std::ostream& os, const Sampler& sampler,
                        std::span<const TraceSpan> spans,
                        const std::string& process_name = "papisim");

/// Same trace plus the causal span layer: every trace::Span drawn as an "X"
/// event under a second process ("causal traces", pid 2) with one row per
/// stage, carrying trace_id/span_id/parent_id/status in args -- so the
/// client-side RPC, the daemon-side stages, and the replay engine's windows
/// appear on one causally-linked timeline next to the sampled counters.
void write_chrome_trace(std::ostream& os, const Sampler& sampler,
                        std::span<const TraceSpan> spans,
                        std::span<const trace::Span> causal,
                        const std::string& process_name = "papisim");

}  // namespace papisim
