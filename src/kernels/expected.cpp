#include "kernels/expected.hpp"

#include <cmath>

namespace papisim::kernels {

CacheBand gemm_cache_band(std::uint64_t l3_bytes) {
  CacheBand band;
  const double l3 = static_cast<double>(l3_bytes);
  band.lower_n = static_cast<std::uint64_t>(std::sqrt(l3 / (3.0 * kElem)));
  band.upper_n = static_cast<std::uint64_t>(std::sqrt(l3 / kElem));
  return band;
}

std::uint32_t repetitions_for(std::uint64_t n) {
  // The >= 2048 branch must come first: it both implements Eq. 5's floor and
  // keeps huge n (e.g. UINT64_MAX, inexact as a double) out of the
  // floating-point path below.
  if (n >= 2048) return kMinRepetitions;
  const double r = std::floor(514.0 - 0.246 * static_cast<double>(n));
  if (r <= static_cast<double>(kMinRepetitions)) return kMinRepetitions;
  if (r >= static_cast<double>(kMaxRepetitions)) return kMaxRepetitions;
  return static_cast<std::uint32_t>(r);
}

std::uint32_t sampled_replay_period(std::uint32_t reps) {
  const std::uint32_t period = reps / kMinRepetitions;
  return period == 0 ? 1u : period;
}

std::uint64_t s1cf_ln2_cache_bound(std::uint64_t l3_bytes, std::uint32_t ranks) {
  // 4 * 16N^2/ranks + 16N^2/ranks = L3  =>  N = sqrt(L3 * ranks / 80).
  const double n2 = static_cast<double>(l3_bytes) * ranks / 80.0;
  return static_cast<std::uint64_t>(std::sqrt(n2));
}

}  // namespace papisim::kernels
