// Numeric reference implementations of the benchmark kernels (the actual
// math of paper Listings 1-4), used to validate the kernel definitions and
// as the computational payload of examples.
#pragma once

#include <cstddef>
#include <span>

namespace papisim::kernels {

/// C = A * B for square row-major N x N matrices (Listing 3).
void gemm_reference(std::span<const double> a, std::span<const double> b,
                    std::span<double> c, std::size_t n);

/// Capped GEMV (Listing 2, one batch element): y_i = sum_k A[i%P][k] * x[k].
void gemv_capped_reference(std::span<const double> a, std::span<const double> x,
                           std::span<double> y, std::size_t m, std::size_t n,
                           std::size_t p);

/// Plain GEMV y = A x with A of size M x N (Listing 1).
void gemv_reference(std::span<const double> a, std::span<const double> x,
                    std::span<double> y, std::size_t m, std::size_t n);

double dot_reference(std::span<const double> x, std::span<const double> y);

}  // namespace papisim::kernels
