#include "kernels/runner.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>

#include "pcp/pmns.hpp"
#include "selfmon/metrics.hpp"
#include "sim/thread_pool.hpp"

namespace papisim::kernels {

KernelRunner::KernelRunner(sim::Machine& machine, Library& lib,
                           std::string component, std::uint32_t measure_cpu)
    : machine_(machine),
      lib_(lib),
      component_(std::move(component)),
      measure_cpu_(measure_cpu) {
  if (component_ != "pcp" && component_ != "perf_nest") {
    throw Error(Status::InvalidArgument,
                "KernelRunner: unsupported measurement route '" + component_ + "'");
  }
}

std::vector<std::string> KernelRunner::event_names() const {
  std::vector<std::string> names;
  names.reserve(16);
  for (const nest::NestEventKind kind :
       {nest::NestEventKind::ReadBytes, nest::NestEventKind::WriteBytes}) {
    for (std::uint32_t ch = 0; ch < machine_.config().mem_channels; ++ch) {
      if (component_ == "pcp") {
        names.push_back("pcp:::" + pcp::Pmns::metric_name(ch, kind) +
                        ".value:cpu" + std::to_string(measure_cpu_));
      } else {
        names.push_back("perf_nest:::" +
                        nest::NestPmu::perf_event_name(ch, kind) +
                        ":cpu=" + std::to_string(measure_cpu_));
      }
    }
  }
  return names;
}

Measurement KernelRunner::measure(
    const std::function<void(std::uint32_t core)>& kernel,
    const RunnerOptions& opt) {
  const std::uint32_t cores = machine_.cores_per_socket();
  const std::uint32_t threads = (opt.batched || opt.literal_cores)
                                    ? (opt.threads != 0 ? opt.threads : cores)
                                    : 1;
  if (threads > cores) {
    throw Error(Status::InvalidArgument, "KernelRunner: more threads than cores");
  }
  machine_.set_active_cores(opt.socket, opt.occupy_socket ? cores : threads);

  // Literal batches replay one simulated core per pool worker; the pool's
  // caller thread participates, so N host threads = N-1 pool workers.
  std::unique_ptr<sim::ThreadPool> pool;
  if (opt.literal_cores) {
    const std::uint32_t host =
        opt.host_threads == 0 ? threads : std::min(opt.host_threads, threads);
    pool = std::make_unique<sim::ThreadPool>(host - 1);
  }

  auto es = lib_.create_eventset();
  for (const std::string& name : event_names()) es->add_event(name);

  sim::MemController& mem = machine_.memctrl(opt.socket);

  const double t0 = machine_.clock().now_sec();
  es->start();

  // First repetition: replay the kernel through the cache simulator and
  // record its per-channel traffic delta and duration.
  std::vector<std::array<std::uint64_t, 2>> rep_delta;
  double rep_time_ns = 0.0;
  for (std::uint32_t rep = 0; rep < opt.reps; ++rep) {
    const selfmon::Stopwatch rep_probe(selfmon::HistId::RunnerRepNs);
    selfmon::counter_add(selfmon::CounterId::RunnerReps);
    machine_.noise(opt.socket).repetition_overhead();
    if (rep == 0 || opt.literal_reps) {
      const auto snap0 = mem.snapshot();
      const double tk0 = machine_.clock().now_ns();
      if (opt.literal_cores) {
        // Literal per-core replay: every core of the batch runs its own
        // kernel instance on its own engine, in deferred-time mode, then
        // the clock advances once by the slowest core (max-merge).  The
        // per-channel counters are commutative atomics and the L3 stripes
        // are disjoint per core, so the totals are identical no matter how
        // the pool interleaves the cores.
        for (std::uint32_t c = 0; c < threads; ++c) {
          machine_.engine(opt.socket, c).set_deferred_time(true);
        }
        pool->parallel_for(threads, [&](std::uint32_t c) { kernel(c); });
        double max_ns = 0.0;
        for (std::uint32_t c = 0; c < threads; ++c) {
          sim::AccessEngine& eng = machine_.engine(opt.socket, c);
          max_ns = std::max(max_ns, eng.take_deferred_time_ns());
          eng.set_deferred_time(false);
        }
        machine_.advance(max_ns);
      } else {
        kernel(/*core=*/0);
      }
      // Cold caches for the next repetition (the paper uses a fresh matrix
      // per repetition); flushing inside the window keeps the dirty
      // writebacks in the measured traffic where they belong.
      machine_.flush_socket(opt.socket);
      if (threads > 1 && !opt.literal_cores) {
        // Symmetric-batch scaling: the other cores ran identical,
        // independent kernels on disjoint data.
        std::uint64_t dr = 0, dw = 0;
        const auto snap_mid = mem.snapshot();
        for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
          dr += snap_mid[ch][0] - snap0[ch][0];
          dw += snap_mid[ch][1] - snap0[ch][1];
        }
        mem.add_spread(dr * (threads - 1), sim::MemDir::Read);
        mem.add_spread(dw * (threads - 1), sim::MemDir::Write);
      }
      const auto snap1 = mem.snapshot();
      rep_delta.assign(mem.channels(), {0, 0});
      for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
        rep_delta[ch] = {snap1[ch][0] - snap0[ch][0], snap1[ch][1] - snap0[ch][1]};
      }
      rep_time_ns = machine_.clock().now_ns() - tk0;
    } else {
      // Subsequent repetitions are deterministic replicas (fresh data, cold
      // caches, disjoint addresses => identical traffic): replay the
      // recorded per-channel delta instead of re-simulating.  Validated
      // against literal_reps in tests.
      selfmon::counter_add(selfmon::CounterId::RunnerRepsReplayed);
      for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
        mem.add_channel_bytes(ch, sim::MemDir::Read, rep_delta[ch][0]);
        mem.add_channel_bytes(ch, sim::MemDir::Write, rep_delta[ch][1]);
      }
      machine_.advance(rep_time_ns);
    }
  }
  const std::vector<long long> values = es->read();
  es->stop();

  Measurement m;
  m.reps = opt.reps;
  m.threads = threads;
  m.elapsed_sec = machine_.clock().now_sec() - t0;
  const std::uint32_t channels = machine_.config().mem_channels;
  double reads = 0, writes = 0;
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    reads += static_cast<double>(values[ch]);
    writes += static_cast<double>(values[channels + ch]);
  }
  m.read_bytes = reads / opt.reps;
  m.write_bytes = writes / opt.reps;
  return m;
}

}  // namespace papisim::kernels
