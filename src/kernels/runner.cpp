#include "kernels/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "kernels/replay_strategy.hpp"
#include "pcp/pmns.hpp"
#include "sim/thread_pool.hpp"
#include "trace/recorder.hpp"

namespace papisim::kernels {

KernelRunner::KernelRunner(sim::Machine& machine, Library& lib,
                           std::string component, std::uint32_t measure_cpu)
    : machine_(machine),
      lib_(lib),
      component_(std::move(component)),
      measure_cpu_(measure_cpu) {
  if (component_ != "pcp" && component_ != "perf_nest") {
    throw Error(Status::InvalidArgument,
                "KernelRunner: unsupported measurement route '" + component_ + "'");
  }
}

std::vector<std::string> KernelRunner::event_names() const {
  std::vector<std::string> names;
  names.reserve(16);
  for (const nest::NestEventKind kind :
       {nest::NestEventKind::ReadBytes, nest::NestEventKind::WriteBytes}) {
    for (std::uint32_t ch = 0; ch < machine_.config().mem_channels; ++ch) {
      if (component_ == "pcp") {
        names.push_back("pcp:::" + pcp::Pmns::metric_name(ch, kind) +
                        ".value:cpu" + std::to_string(measure_cpu_));
      } else {
        names.push_back("perf_nest:::" +
                        nest::NestPmu::perf_event_name(ch, kind) +
                        ":cpu=" + std::to_string(measure_cpu_));
      }
    }
  }
  return names;
}

Measurement KernelRunner::measure(
    const std::function<void(std::uint32_t core)>& kernel,
    const RunnerOptions& opt) {
  const std::uint32_t cores = machine_.cores_per_socket();
  const std::uint32_t threads = (opt.batched || opt.literal_cores)
                                    ? (opt.threads != 0 ? opt.threads : cores)
                                    : 1;
  if (threads > cores) {
    throw Error(Status::InvalidArgument, "KernelRunner: more threads than cores");
  }
  machine_.set_active_cores(opt.socket, opt.occupy_socket ? cores : threads);

  // Literal batches replay one simulated core per pool worker; the pool's
  // caller thread participates, so N host threads = N-1 pool workers.
  std::unique_ptr<sim::ThreadPool> pool;
  if (opt.literal_cores) {
    const std::uint32_t host =
        opt.host_threads == 0 ? threads : std::min(opt.host_threads, threads);
    pool = std::make_unique<sim::ThreadPool>(host - 1);
  }

  auto es = lib_.create_eventset();
  for (const std::string& name : event_names()) es->add_event(name);

  // Each measurement window is the root of its own causal trace: the
  // strategy's per-repetition spans (and any event-set reads routed through
  // PcpClient, which mint their own RPC traces) happen inside it.
  const trace::ScopedTrace measure_trace(trace::ScopedTrace::Mode::Fresh);
  const std::uint64_t measure_t0 = trace::now_ns();

  const double t0 = machine_.clock().now_sec();
  es->start();

  // The repetition loop itself is a pluggable strategy (DESIGN.md §3i):
  // FullReplay records repetition 0 and extrapolates the rest, SampledReplay
  // clusters windows by access-pattern signature and extrapolates between
  // sampled representatives.
  ReplayContext ctx{machine_,  opt,        kernel,
                    threads,   pool.get(), measure_trace.context()};
  const ReplayOutcome outcome = ReplayStrategy::make(opt)->run(ctx);

  const std::vector<long long> values = es->read();
  es->stop();
  trace::record({measure_trace.context().trace_id,
                 measure_trace.context().span_id, 0, measure_t0,
                 trace::now_ns(), opt.reps, outcome.clusters,
                 trace::Stage::Measure, trace::SpanStatus::Ok});

  Measurement m;
  m.reps = opt.reps;
  m.threads = threads;
  m.reps_replayed = outcome.reps_replayed;
  m.reps_extrapolated = outcome.reps_extrapolated;
  m.clusters = outcome.clusters;
  m.resample_fallbacks = outcome.resample_fallbacks;
  m.cluster_of_rep = outcome.cluster_of_rep;
  m.elapsed_sec = machine_.clock().now_sec() - t0;
  const std::uint32_t channels = machine_.config().mem_channels;
  double reads = 0, writes = 0;
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    reads += static_cast<double>(values[ch]);
    writes += static_cast<double>(values[channels + ch]);
  }
  m.read_bytes = reads / opt.reps;
  m.write_bytes = writes / opt.reps;
  return m;
}

}  // namespace papisim::kernels
