#include "kernels/blas_numeric.hpp"

#include <stdexcept>

namespace papisim::kernels {

void gemm_reference(std::span<const double> a, std::span<const double> b,
                    std::span<double> c, std::size_t n) {
  if (a.size() < n * n || b.size() < n * n || c.size() < n * n) {
    throw std::invalid_argument("gemm_reference: buffer too small");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = sum;
    }
  }
}

void gemv_capped_reference(std::span<const double> a, std::span<const double> x,
                           std::span<double> y, std::size_t m, std::size_t n,
                           std::size_t p) {
  if (p == 0 || a.size() < p * n || x.size() < n || y.size() < m) {
    throw std::invalid_argument("gemv_capped_reference: buffer too small");
  }
  for (std::size_t i = 0; i < m; ++i) {
    double sum = 0.0;
    const double* row = &a[(i % p) * n];
    for (std::size_t k = 0; k < n; ++k) sum += row[k] * x[k];
    y[i] = sum;
  }
}

void gemv_reference(std::span<const double> a, std::span<const double> x,
                    std::span<double> y, std::size_t m, std::size_t n) {
  gemv_capped_reference(a, x, y, m, n, m);
}

double dot_reference(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("dot_reference: size mismatch");
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

}  // namespace papisim::kernels
