#include "kernels/replay_strategy.hpp"

#include <algorithm>
#include <cstddef>

#include "kernels/expected.hpp"
#include "kernels/runner.hpp"
#include "selfmon/metrics.hpp"
#include "sim/thread_pool.hpp"
#include "trace/recorder.hpp"

namespace papisim::kernels {

namespace {

/// Emit one replay-side span under the measurement window's trace.  Host
/// time only; a no-op when the caller passed no trace context.
void rep_span(const ReplayContext& ctx, trace::Stage stage, std::uint64_t t0,
              std::uint64_t rep, std::uint64_t cluster) {
  if (!ctx.trace_ctx.valid()) return;
  trace::record({ctx.trace_ctx.trace_id, trace::next_span_id(),
                 ctx.trace_ctx.span_id, t0, trace::now_ns(), rep, cluster,
                 stage, trace::SpanStatus::Ok});
}

/// Absolute floors for signature comparison: near-zero fields (a kernel with
/// no strided streams, a window with no writes) must not trip divergence on
/// one stray touch or line.
constexpr std::uint64_t kTouchFloor = 64;
constexpr std::uint64_t kByteFloor = 4096;

/// Consecutive consistent representatives required to leave safe mode (every
/// repetition simulated) after a signature divergence.
constexpr std::uint32_t kStableRepsToResample = 3;

bool field_matches(std::uint64_t a, std::uint64_t b, double tol,
                   std::uint64_t floor) {
  const std::uint64_t diff = a > b ? a - b : b - a;
  if (diff <= floor) return true;
  return static_cast<double>(diff) <=
         tol * static_cast<double>(std::max(a, b));
}

/// Sum of the engine counters a window can touch: engines 0..threads-1 for
/// literal batches, the representative engine 0 otherwise.
sim::CoreCounters summed_counters(const ReplayContext& ctx) {
  sim::CoreCounters total;
  const std::uint32_t n = ctx.opt.literal_cores ? ctx.threads : 1;
  for (std::uint32_t c = 0; c < n; ++c) {
    const sim::CoreCounters& cc =
        ctx.machine.engine(ctx.opt.socket, c).counters();
    total.line_touches += cc.line_touches;
    total.l3_hits += cc.l3_hits;
    total.victim_hits += cc.victim_hits;
    total.seq_line_touches += cc.seq_line_touches;
    total.strided_line_touches += cc.strided_line_touches;
  }
  return total;
}

/// The single-repetition simulation path shared by both strategies: replay
/// the kernel through the cache simulator, flush the socket (cold caches for
/// the next repetition, dirty writebacks inside the window), apply
/// symmetric-batch scaling, and record the window's per-channel delta,
/// duration, and access-pattern signature.
RepRecord simulate_rep(ReplayContext& ctx, sim::MemController& mem) {
  selfmon::counter_add(selfmon::CounterId::RunnerRepsReplayed);
  const auto snap0 = mem.snapshot();
  const sim::CoreCounters cc0 = summed_counters(ctx);
  const double tk0 = ctx.machine.clock().now_ns();
  if (ctx.opt.literal_cores) {
    // Literal per-core replay: every core of the batch runs its own kernel
    // instance on its own engine, in deferred-time mode, then the clock
    // advances once by the slowest core (max-merge).  The per-channel
    // counters are commutative atomics and the L3 stripes are disjoint per
    // core, so the totals are identical no matter how the pool interleaves
    // the cores.
    for (std::uint32_t c = 0; c < ctx.threads; ++c) {
      ctx.machine.engine(ctx.opt.socket, c).set_deferred_time(true);
    }
    ctx.pool->parallel_for(ctx.threads,
                           [&](std::uint32_t c) { ctx.kernel(c); });
    double max_ns = 0.0;
    for (std::uint32_t c = 0; c < ctx.threads; ++c) {
      sim::AccessEngine& eng = ctx.machine.engine(ctx.opt.socket, c);
      max_ns = std::max(max_ns, eng.take_deferred_time_ns());
      eng.set_deferred_time(false);
    }
    ctx.machine.advance(max_ns);
  } else {
    ctx.kernel(/*core=*/0);
  }
  // Cold caches for the next repetition (the paper uses a fresh matrix per
  // repetition); flushing inside the window keeps the dirty writebacks in
  // the measured traffic where they belong.
  ctx.machine.flush_socket(ctx.opt.socket);
  if (ctx.threads > 1 && !ctx.opt.literal_cores) {
    // Symmetric-batch scaling: the other cores ran identical, independent
    // kernels on disjoint data.
    std::uint64_t dr = 0, dw = 0;
    const auto snap_mid = mem.snapshot();
    for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
      dr += snap_mid[ch][0] - snap0[ch][0];
      dw += snap_mid[ch][1] - snap0[ch][1];
    }
    mem.add_spread(dr * (ctx.threads - 1), sim::MemDir::Read);
    mem.add_spread(dw * (ctx.threads - 1), sim::MemDir::Write);
  }
  const auto snap1 = mem.snapshot();

  RepRecord rec;
  rec.channel_delta.assign(mem.channels(), {0, 0});
  std::uint64_t reads = 0, writes = 0;
  for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
    rec.channel_delta[ch] = {snap1[ch][0] - snap0[ch][0],
                             snap1[ch][1] - snap0[ch][1]};
    reads += rec.channel_delta[ch][0];
    writes += rec.channel_delta[ch][1];
  }
  rec.time_ns = ctx.machine.clock().now_ns() - tk0;
  const sim::CoreCounters cc1 = summed_counters(ctx);
  rec.sig.line_touches = cc1.line_touches - cc0.line_touches;
  rec.sig.seq_line_touches = cc1.seq_line_touches - cc0.seq_line_touches;
  rec.sig.strided_line_touches =
      cc1.strided_line_touches - cc0.strided_line_touches;
  rec.sig.l3_hits =
      (cc1.l3_hits + cc1.victim_hits) - (cc0.l3_hits + cc0.victim_hits);
  rec.sig.read_bytes = reads;
  rec.sig.write_bytes = writes;
  return rec;
}

/// Replay a recorded (or averaged) per-channel delta instead of
/// re-simulating: add the traffic straight to the channel counters and
/// advance the clock by the recorded window duration.
void extrapolate_rep(sim::Machine& machine, sim::MemController& mem,
                     const std::vector<std::array<std::uint64_t, 2>>& delta,
                     double time_ns) {
  selfmon::counter_add(selfmon::CounterId::RunnerRepsExtrapolated);
  for (std::uint32_t ch = 0; ch < mem.channels(); ++ch) {
    mem.add_channel_bytes(ch, sim::MemDir::Read, delta[ch][0]);
    mem.add_channel_bytes(ch, sim::MemDir::Write, delta[ch][1]);
  }
  machine.advance(time_ns);
}

/// The historical runner behaviour: simulate repetition 0 (or every
/// repetition under literal_reps) and extrapolate the rest from the recorded
/// first-repetition delta.  Validated against literal_reps in tests.
class FullReplay final : public ReplayStrategy {
 public:
  ReplayOutcome run(ReplayContext& ctx) override {
    sim::MemController& mem = ctx.machine.memctrl(ctx.opt.socket);
    ReplayOutcome out;
    RepRecord rec;
    for (std::uint32_t rep = 0; rep < ctx.opt.reps; ++rep) {
      const selfmon::Stopwatch rep_probe(selfmon::HistId::RunnerRepNs);
      selfmon::counter_add(selfmon::CounterId::RunnerReps);
      ctx.machine.noise(ctx.opt.socket).repetition_overhead();
      const std::uint64_t span_t0 = trace::now_ns();
      if (rep == 0 || ctx.opt.literal_reps) {
        rec = simulate_rep(ctx, mem);
        rep_span(ctx, trace::Stage::RepSimulate, span_t0, rep, 0);
        ++out.reps_replayed;
      } else {
        // Subsequent repetitions are deterministic replicas (fresh data,
        // cold caches, disjoint addresses => identical traffic): replay the
        // recorded per-channel delta instead of re-simulating.
        extrapolate_rep(ctx.machine, mem, rec.channel_delta, rec.time_ns);
        rep_span(ctx, trace::Stage::RepExtrapolate, span_t0, rep, 0);
        ++out.reps_extrapolated;
      }
    }
    out.clusters = ctx.opt.reps > 0 ? 1 : 0;
    return out;
  }
};

/// Signature-clustered sampling (DESIGN.md §3i): fully replay one
/// representative per `sample_period` repetitions, extrapolate the rest from
/// the active cluster's running-mean delta, and fall back to full replay
/// (safe mode) when a representative's signature diverges from its cluster.
class SampledReplay final : public ReplayStrategy {
 public:
  ReplayOutcome run(ReplayContext& ctx) override {
    sim::MemController& mem = ctx.machine.memctrl(ctx.opt.socket);
    const RunnerOptions& opt = ctx.opt;
    // literal_reps asks for every repetition to be simulated; honour it by
    // degenerating to a period of 1 rather than silently sampling.
    const std::uint32_t period =
        opt.literal_reps
            ? 1u
            : (opt.sample_period != 0 ? opt.sample_period
                                      : sampled_replay_period(opt.reps));

    // A cluster's reference signature is its FIRST representative's: later
    // members must stay within tolerance of the original pattern, so slow
    // drift cannot ratchet the cluster away from what it first measured.
    struct Cluster {
      WindowSignature ref;
      std::vector<std::array<std::uint64_t, 2>> delta_sum;
      double time_sum = 0.0;
      std::uint64_t members = 0;
    };
    std::vector<Cluster> clusters;
    ReplayOutcome out;
    out.cluster_of_rep.reserve(opt.reps);

    std::uint32_t current = 0;        // active cluster index
    std::uint32_t stable_streak = 0;  // consecutive consistent representatives
    bool safe_mode = false;           // simulate every rep until stable

    const auto fold = [](Cluster& cl, const RepRecord& rec) {
      if (cl.members == 0) {
        cl.ref = rec.sig;
        cl.delta_sum.assign(rec.channel_delta.size(), {0, 0});
      }
      for (std::size_t ch = 0; ch < rec.channel_delta.size(); ++ch) {
        cl.delta_sum[ch][0] += rec.channel_delta[ch][0];
        cl.delta_sum[ch][1] += rec.channel_delta[ch][1];
      }
      cl.time_sum += rec.time_ns;
      ++cl.members;
    };

    for (std::uint32_t rep = 0; rep < opt.reps; ++rep) {
      const selfmon::Stopwatch rep_probe(selfmon::HistId::RunnerRepNs);
      selfmon::counter_add(selfmon::CounterId::RunnerReps);
      ctx.machine.noise(opt.socket).repetition_overhead();

      if (rep % period == 0 || safe_mode || clusters.empty()) {
        const std::uint64_t span_t0 = trace::now_ns();
        const RepRecord rec = simulate_rep(ctx, mem);
        ++out.reps_replayed;
        if (!clusters.empty() &&
            rec.sig.matches(clusters[current].ref, opt.signature_tolerance)) {
          fold(clusters[current], rec);
          ++stable_streak;
          if (safe_mode && stable_streak >= kStableRepsToResample) {
            safe_mode = false;
          }
        } else {
          // First repetition, or divergence: open a new cluster seeded with
          // this window and simulate every repetition until the new pattern
          // proves stable for kStableRepsToResample representatives.
          if (!clusters.empty()) {
            selfmon::counter_add(selfmon::CounterId::RunnerResampleFallbacks);
            ++out.resample_fallbacks;
            safe_mode = true;
            // Instant marker: the divergence itself, pointing at the cluster
            // about to be opened.
            rep_span(ctx, trace::Stage::RepFallback, trace::now_ns(), rep,
                     clusters.size());
          }
          clusters.emplace_back();
          current = static_cast<std::uint32_t>(clusters.size() - 1);
          fold(clusters[current], rec);
          stable_streak = 1;
        }
        rep_span(ctx, trace::Stage::RepSimulate, span_t0, rep, current);
      } else {
        // Extrapolate from the active cluster's running mean (integer
        // rounding keeps byte totals exact when every representative's
        // delta is identical, i.e. in deterministic noise-off mode).
        const std::uint64_t span_t0 = trace::now_ns();
        const Cluster& cl = clusters[current];
        std::vector<std::array<std::uint64_t, 2>> mean(cl.delta_sum.size());
        for (std::size_t ch = 0; ch < cl.delta_sum.size(); ++ch) {
          mean[ch][0] = (cl.delta_sum[ch][0] + cl.members / 2) / cl.members;
          mean[ch][1] = (cl.delta_sum[ch][1] + cl.members / 2) / cl.members;
        }
        extrapolate_rep(ctx.machine, mem, mean,
                        cl.time_sum / static_cast<double>(cl.members));
        rep_span(ctx, trace::Stage::RepExtrapolate, span_t0, rep, current);
        ++out.reps_extrapolated;
      }
      out.cluster_of_rep.push_back(current);
    }
    out.clusters = static_cast<std::uint32_t>(clusters.size());
    return out;
  }
};

}  // namespace

bool WindowSignature::matches(const WindowSignature& other, double tol) const {
  return field_matches(line_touches, other.line_touches, tol, kTouchFloor) &&
         field_matches(seq_line_touches, other.seq_line_touches, tol,
                       kTouchFloor) &&
         field_matches(strided_line_touches, other.strided_line_touches, tol,
                       kTouchFloor) &&
         field_matches(l3_hits, other.l3_hits, tol, kTouchFloor) &&
         field_matches(read_bytes, other.read_bytes, tol, kByteFloor) &&
         field_matches(write_bytes, other.write_bytes, tol, kByteFloor);
}

std::unique_ptr<ReplayStrategy> ReplayStrategy::make(const RunnerOptions& opt) {
  if (opt.strategy == ReplayMode::Sampled) {
    return std::make_unique<SampledReplay>();
  }
  return std::make_unique<FullReplay>();
}

}  // namespace papisim::kernels
