// Analytic expected memory traffic of the BLAS benchmarks (paper Section II)
// and the adaptive repetition policy (paper Eq. 5).
#pragma once

#include <cstdint>

namespace papisim::kernels {

/// Expected bytes moved between the cores and main memory for one kernel
/// execution, under the paper's caching assumptions.
struct ExpectedTraffic {
  double read_bytes = 0;
  double write_bytes = 0;
};

inline constexpr double kElem = 8.0;  ///< double-precision element size

/// Reference GEMM C = A*B with square N x N matrices, all three fitting in
/// cache: 3*N^2 elements read (A once, B once, and a read-per-write for C),
/// N^2 elements written.
inline ExpectedTraffic gemm_expected(std::uint64_t n) {
  const double n2 = static_cast<double>(n) * static_cast<double>(n);
  return {3.0 * n2 * kElem, n2 * kElem};
}

/// Capped GEMV y = A x with A capped to P x N (paper Eq. 1):
/// M*N + M + N elements read (A rows re-read logically but the cap keeps the
/// matrix cache-resident, x once, read-per-write for y), M written.
inline ExpectedTraffic gemv_capped_expected(std::uint64_t m, std::uint64_t n) {
  const double md = static_cast<double>(m), nd = static_cast<double>(n);
  return {(md * nd + md + nd) * kElem, md * kElem};
}

/// Square (uncapped) GEMV, M = N: M^2 + 2M reads, M writes.
inline ExpectedTraffic gemv_square_expected(std::uint64_t m) {
  const double md = static_cast<double>(m);
  return {(md * md + 2.0 * md) * kElem, md * kElem};
}

/// DOT x.y: 2N reads, no writes (scalar result).
inline ExpectedTraffic dot_expected(std::uint64_t n) {
  return {2.0 * static_cast<double>(n) * kElem, 0.0};
}

/// Batched variants scale by the thread count (one independent kernel per
/// physical core, no sharing).
inline ExpectedTraffic scaled(ExpectedTraffic t, std::uint32_t threads) {
  return {t.read_bytes * threads, t.write_bytes * threads};
}

/// The shaded divergence band of the GEMM figures: between the size at which
/// all three matrices fill the per-core L3 share (paper Eq. 3) and the size
/// at which a single matrix does (paper Eq. 4).  For 5 MB: N in [467, 809].
struct CacheBand {
  std::uint64_t lower_n = 0;  ///< 8 * 3N^2 = L3
  std::uint64_t upper_n = 0;  ///< 8 * N^2  = L3
};

CacheBand gemm_cache_band(std::uint64_t l3_bytes);

/// Eq. 5's asymptotic repetition count (N >= 2048): the paper's judgement of
/// how many full kernel executions suffice once the per-repetition traffic is
/// large relative to the measurement noise floor.  SampledReplay reuses it as
/// the default number of fully replayed representatives per measurement.
inline constexpr std::uint32_t kMinRepetitions = 10;
/// Eq. 5 at N = 0: the most repetitions the policy ever requests.
inline constexpr std::uint32_t kMaxRepetitions = 514;

/// Adaptive repetition count, paper Eq. 5:
///   reps(N) = floor(514 - 0.246*N)  for N < 2048, else 10.
/// Hardened against the boundary edges (SampledReplay derives its sampling
/// rate from this): n == 0 yields exactly kMaxRepetitions, any n >= 2048 --
/// including values too large for an exact double conversion -- short-circuits
/// to kMinRepetitions before the floating-point path, and the result is
/// always within [kMinRepetitions, kMaxRepetitions].
std::uint32_t repetitions_for(std::uint64_t n);

/// Default SampledReplay sampling period: full-replay one representative
/// every `period` repetitions so that a measurement of `reps` repetitions
/// replays ~kMinRepetitions representatives -- Eq. 5's asymptotic count,
/// reached whenever per-repetition traffic is stable enough to extrapolate.
/// Never returns 0 (reps <= kMinRepetitions degenerates to full replay).
std::uint32_t sampled_replay_period(std::uint32_t reps);

/// S1CF loop-nest-2 L3-exhaustion bound (paper Eq. 7): the N beyond which a
/// full cache line must be re-read per element of the strided tmp traversal.
/// For 5 MB and 8 ranks: N ~ 724.
std::uint64_t s1cf_ln2_cache_bound(std::uint64_t l3_bytes, std::uint32_t ranks);

}  // namespace papisim::kernels
