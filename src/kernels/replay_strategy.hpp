// Pluggable execution strategies for KernelRunner's repetition loop
// (DESIGN.md §3i).
//
// The runner's measurement window executes `reps` repetitions of one kernel.
// How those repetitions are *executed* -- fully simulated access by access,
// replayed from a recorded per-channel traffic delta, or extrapolated from a
// sampled representative -- is a strategy decision, separated here from the
// measurement plumbing (event sets, symmetric-batch scaling, averaging) that
// stays in KernelRunner::measure().
//
//  * FullReplay: the historical behaviour.  Repetition 0 is simulated and its
//    per-channel delta recorded; later repetitions replay that delta (or are
//    re-simulated under `literal_reps`).
//  * SampledReplay: clusters repetition windows by access-pattern signature
//    (stride mix, footprint, R/W ratio), fully replays one representative per
//    `sample_period` repetitions, and extrapolates the rest from the current
//    cluster's running mean.  A representative whose signature diverges from
//    its cluster opens a new cluster and drops the runner into safe mode
//    (every repetition simulated) until the new pattern proves stable.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/machine.hpp"
#include "trace/span.hpp"

namespace papisim::sim {
class ThreadPool;
}  // namespace papisim::sim

namespace papisim::kernels {

struct RunnerOptions;

/// Access-pattern signature of one fully simulated repetition window.
/// Every field is an exact integer observed by the cache simulator (engine
/// counters and channel deltas), so signature comparison -- and therefore
/// cluster assignment -- is bit-identical across host thread counts.
struct WindowSignature {
  std::uint64_t line_touches = 0;     ///< footprint proxy: L3-level accesses
  std::uint64_t seq_line_touches = 0; ///< stride mix: one-line advances
  std::uint64_t strided_line_touches = 0;  ///< stride mix: Stride-N streams
  std::uint64_t l3_hits = 0;          ///< locality: L3 + victim-cache hits
  std::uint64_t read_bytes = 0;       ///< window read traffic (all channels)
  std::uint64_t write_bytes = 0;      ///< window write traffic (all channels)

  /// Field-wise relative comparison: each field must be within `tol`
  /// (relative to the larger of the pair), with absolute floors so that
  /// near-zero fields (e.g. no strided streams) don't trip on one stray
  /// touch: differences of <= 64 line touches or <= 4096 bytes always match.
  bool matches(const WindowSignature& other, double tol) const;
};

/// What one fully simulated repetition produced: the per-channel traffic
/// delta, the window's virtual duration, and its access-pattern signature.
struct RepRecord {
  std::vector<std::array<std::uint64_t, 2>> channel_delta;  ///< [ch][read,write]
  double time_ns = 0.0;
  WindowSignature sig;
};

/// Everything a strategy needs from KernelRunner::measure().  `pool` is
/// non-null iff `opt.literal_cores` (the pool's caller participates, so it
/// has host_threads - 1 workers).
struct ReplayContext {
  sim::Machine& machine;
  const RunnerOptions& opt;
  const std::function<void(std::uint32_t core)>& kernel;
  std::uint32_t threads = 1;
  sim::ThreadPool* pool = nullptr;
  /// The measurement window's causal trace (minted by KernelRunner); {0,0}
  /// when the caller does not trace.  Strategies emit per-repetition
  /// rep_simulate / rep_extrapolate / rep_fallback spans under it.
  trace::TraceContext trace_ctx{};
};

/// Strategy accounting, surfaced on Measurement and mirrored by the
/// runner.reps_replayed / runner.reps_extrapolated / runner.resample_fallbacks
/// selfmon counters.
struct ReplayOutcome {
  std::uint32_t reps_replayed = 0;
  std::uint32_t reps_extrapolated = 0;
  std::uint32_t clusters = 0;
  std::uint32_t resample_fallbacks = 0;
  std::vector<std::uint32_t> cluster_of_rep;  ///< SampledReplay only
};

class ReplayStrategy {
 public:
  virtual ~ReplayStrategy() = default;

  /// Execute all `ctx.opt.reps` repetitions inside the already-started
  /// measurement window.  Per-repetition noise overhead and the RunnerReps /
  /// RunnerRepNs selfmon probes are the strategy's responsibility (they are
  /// per-repetition costs, identical across strategies).
  virtual ReplayOutcome run(ReplayContext& ctx) = 0;

  /// Strategy factory for RunnerOptions::strategy.
  static std::unique_ptr<ReplayStrategy> make(const RunnerOptions& opt);
};

}  // namespace papisim::kernels
