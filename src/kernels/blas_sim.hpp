// Simulated BLAS kernels: the paper's reference loop nests (Listings 1-4)
// replayed through the access engine.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace papisim::kernels {

/// Simulated working set of one GEMM: three N x N matrices.
struct GemmBuffers {
  std::uint64_t a = 0, b = 0, c = 0;
  static GemmBuffers allocate(sim::AddressSpace& as, std::uint64_t n);
};

/// Simulated working set of one capped GEMV: A (P x N), x (N), y (M).
struct GemvBuffers {
  std::uint64_t a = 0, x = 0, y = 0;
  static GemvBuffers allocate(sim::AddressSpace& as, std::uint64_t m,
                              std::uint64_t n, std::uint64_t p);
};

/// Replays the reference GEMM of Listing 3 on one core:
///   for i: for j: { sum = dot(A[i][*], B[*][j]); C[i][j] = sum; }
/// A's row is a sequential stream, B's column a stride-8N stream (which the
/// hardware detects as a Stride-N stream), C a sparse scalar store that
/// write-allocates -- together producing the 3N^2-reads behaviour.
sim::LoopStats run_gemm(sim::Machine& machine, std::uint32_t socket,
                        std::uint32_t core, std::uint64_t n,
                        const GemmBuffers& buf);

/// Replays the capped GEMV of Listing 2 (one thread of the batch):
///   for i in [0,M): { sum = dot(A[i%P][*], x); y[i] = sum; }
sim::LoopStats run_capped_gemv(sim::Machine& machine, std::uint32_t socket,
                               std::uint32_t core, std::uint64_t m,
                               std::uint64_t n, std::uint64_t p,
                               const GemvBuffers& buf);

/// DOT product x.y (the kernel of the authors' earlier study [9]).
sim::LoopStats run_dot(sim::Machine& machine, std::uint32_t socket,
                       std::uint32_t core, std::uint64_t n, std::uint64_t x_addr,
                       std::uint64_t y_addr);

}  // namespace papisim::kernels
