// Measured-kernel runner: the paper's benchmark methodology.
//
// A kernel is executed `reps` times inside one PAPI measurement window (all
// 8 MBA read channels + all 8 write channels in one event set); the averaged
// aggregate traffic amortizes the per-repetition noise, exactly as in paper
// Section III.  Caches are cold at the start of each repetition (the paper
// uses a fresh matrix per repetition; we flush, which is traffic-equivalent
// and keeps dirty writebacks inside the measurement window).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/library.hpp"
#include "sim/machine.hpp"

namespace papisim::kernels {

/// How the runner executes the repetitions of one measurement window
/// (DESIGN.md §3i).  The replay loop is a pluggable strategy so new execution
/// tiers (e.g. profile-guided region memoization) slot in beside these two.
enum class ReplayMode : std::uint8_t {
  /// Record the first repetition's per-channel traffic and extrapolate the
  /// rest (or literally re-simulate every repetition with `literal_reps`).
  Full,
  /// Cluster repetition windows by access-pattern signature (stride mix,
  /// footprint, R/W ratio), fully replay one representative per
  /// `sample_period` repetitions, and extrapolate the rest from the current
  /// cluster's running mean -- falling back to full replay when a
  /// representative's signature diverges from its cluster.
  Sampled,
};

struct RunnerOptions {
  std::uint32_t socket = 0;
  std::uint32_t reps = 1;
  /// Batched mode: one independent kernel per physical core (paper
  /// Listings 2/4).  The representative core is simulated in full under a
  /// contended 5 MB L3 share and its traffic scaled by the thread count
  /// (symmetric-batch optimization, DESIGN.md §3, validated in tests).
  bool batched = false;
  std::uint32_t threads = 0;  ///< 0 = all usable cores when batched
  /// Declare the whole socket busy without scaling traffic: the kernel is a
  /// single OpenMP-parallel computation (e.g. one 3D-FFT rank) whose total
  /// traffic the replay already produces, but whose threads contend for
  /// their 5 MB L3 shares (paper Eq. 7's assumption).
  bool occupy_socket = false;
  /// Re-simulate every repetition instead of replaying the recorded
  /// first-repetition traffic (slow; used to validate the fast path).
  bool literal_reps = false;
  /// Literal per-core replay: run `kernel(c)` for every core of the batch
  /// instead of simulating one representative and scaling (slow; validates
  /// the symmetric-batch optimization and feeds the parallel engine).  Each
  /// core's engine runs in deferred-time mode and the clock advances once by
  /// the maximum core time (max-merge), so the result is bit-identical for
  /// any host_threads value in deterministic (noise-off) mode.
  bool literal_cores = false;
  /// Host threads replaying the literal batch: 1 = serial (still via the
  /// same deferred/max-merge path), 0 = one thread per simulated core.
  std::uint32_t host_threads = 1;
  /// Execution strategy for the repetition loop (DESIGN.md §3i).
  ReplayMode strategy = ReplayMode::Full;
  /// SampledReplay: fully replay one representative every `sample_period`
  /// repetitions.  0 derives the period from the Eq. 5 adaptive-repetition
  /// count (sampled_replay_period: ~kMinRepetitions representatives per
  /// measurement); `literal_reps` forces a period of 1 (i.e. full replay).
  std::uint32_t sample_period = 0;
  /// SampledReplay: maximum relative per-field difference between a new
  /// representative's window signature and its cluster's reference before
  /// the runner declares divergence and falls back to full replay.
  double signature_tolerance = 0.02;
};

struct Measurement {
  double read_bytes = 0;   ///< average aggregate reads per repetition
  double write_bytes = 0;  ///< average aggregate writes per repetition
  double elapsed_sec = 0;  ///< virtual time of the whole measurement window
  std::uint32_t reps = 1;
  std::uint32_t threads = 1;
  // Execution-strategy accounting (mirrors the runner.* selfmon counters).
  std::uint32_t reps_replayed = 0;      ///< fully replayed through the simulator
  std::uint32_t reps_extrapolated = 0;  ///< extrapolated from recorded traffic
  std::uint32_t clusters = 0;           ///< signature clusters seen (1 for Full)
  std::uint32_t resample_fallbacks = 0; ///< divergences that forced full replay
  /// Per-repetition cluster assignment (SampledReplay only; empty for Full).
  /// Bit-identical across host thread counts in deterministic mode.
  std::vector<std::uint32_t> cluster_of_rep;
};

/// Runs kernels under a chosen measurement route ("pcp" on Summit,
/// "perf_nest" on Tellico) through the real component API.
class KernelRunner {
 public:
  /// `measure_cpu` is the hardware thread named in the event qualifier
  /// (cpu87 for Summit socket 0 in the paper; cpu=0 on Tellico).
  KernelRunner(sim::Machine& machine, Library& lib, std::string component,
               std::uint32_t measure_cpu);

  /// Measure `kernel(core)` (which must run on the given socket's core 0).
  Measurement measure(const std::function<void(std::uint32_t core)>& kernel,
                      const RunnerOptions& opt);

  /// Event names used by the measurement (8 reads then 8 writes), for
  /// printing Table I.
  std::vector<std::string> event_names() const;

 private:
  sim::Machine& machine_;
  Library& lib_;
  std::string component_;
  std::uint32_t measure_cpu_;
};

}  // namespace papisim::kernels
