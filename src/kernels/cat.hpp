// Counter Analysis Toolkit (CAT) style event validation.
//
// The paper leans on PAPI's "thorough validation of the hardware events
// exposed to the user" (its ref [9], the authors' Counter Analysis
// Toolkit): run micro-kernels whose event counts are known in closed form
// and check that each counter reports what its name claims.  This module
// implements that methodology against the simulated nest: each check runs a
// purpose-built access pattern through the chosen measurement route and
// compares the counter reading with the analytic expectation.
#pragma once

#include <string>
#include <vector>

#include "core/library.hpp"
#include "sim/machine.hpp"

namespace papisim::kernels {

struct CatCheck {
  std::string name;         ///< e.g. "READ_BYTES identity (DOT kernel)"
  std::string event;        ///< the event(s) under test
  double expected = 0;
  double measured = 0;
  double tolerance = 0.02;  ///< relative
  bool passed = false;
};

struct CatReport {
  std::vector<CatCheck> checks;
  bool all_passed() const {
    for (const CatCheck& c : checks) {
      if (!c.passed) return false;
    }
    return true;
  }
};

/// Run the validation battery through the given route ("pcp" or
/// "perf_nest") with `measure_cpu` selecting the socket.  Noise is disabled
/// for the duration (event *identity* validation wants exact counts; noise
/// robustness is the repetition study's job).
///
/// Checks performed:
///  1. READ_BYTES identity: a DOT kernel reads exactly 2N*8 bytes.
///  2. WRITE_BYTES identity: a streaming copy writes exactly N*8 bytes.
///  3. read-per-write: strided stores read one line per written line.
///  4. REQS/BYTES consistency: bytes == 64 * requests on every channel.
///  5. Channel interleave: a long sequential stream spreads evenly over all
///     MBA channels (max/min channel byte ratio ~ 1).
///  6. Socket isolation: traffic on the measured socket does not appear on
///     the other socket's counters.
CatReport run_counter_analysis(sim::Machine& machine, Library& lib,
                               const std::string& route,
                               std::uint32_t measure_cpu);

}  // namespace papisim::kernels
