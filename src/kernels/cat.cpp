#include "kernels/cat.hpp"

#include <cmath>

#include "kernels/runner.hpp"
#include "nest/nest_pmu.hpp"
#include "pcp/pmns.hpp"

namespace papisim::kernels {

namespace {

/// Event-name builder matching the runner's grammar for both routes.
std::string event_name(const std::string& route, std::uint32_t channel,
                       nest::NestEventKind kind, std::uint32_t cpu) {
  if (route == "pcp") {
    return "pcp:::" + pcp::Pmns::metric_name(channel, kind) +
           ".value:cpu" + std::to_string(cpu);
  }
  return "perf_nest:::" + nest::NestPmu::perf_event_name(channel, kind) +
         ":cpu=" + std::to_string(cpu);
}

struct Totals {
  double read_bytes = 0, write_bytes = 0, read_reqs = 0, write_reqs = 0;
  std::vector<double> read_bytes_per_channel;
};

/// Measure one kernel closure over every channel and kind.
Totals measure(sim::Machine& machine, Library& lib, const std::string& route,
               std::uint32_t cpu, const std::function<void()>& kernel) {
  auto es = lib.create_eventset();
  const std::uint32_t channels = machine.config().mem_channels;
  for (const nest::NestEventKind kind : nest::kAllNestEventKinds) {
    for (std::uint32_t ch = 0; ch < channels; ++ch) {
      es->add_event(event_name(route, ch, kind, cpu));
    }
  }
  es->start();
  kernel();
  const std::vector<long long> v = es->read();
  es->stop();

  Totals t;
  t.read_bytes_per_channel.resize(channels);
  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    t.read_bytes += static_cast<double>(v[ch]);
    t.read_bytes_per_channel[ch] = static_cast<double>(v[ch]);
    t.write_bytes += static_cast<double>(v[channels + ch]);
    t.read_reqs += static_cast<double>(v[2 * channels + ch]);
    t.write_reqs += static_cast<double>(v[3 * channels + ch]);
  }
  return t;
}

CatCheck make_check(std::string name, std::string event, double expected,
                    double measured, double tolerance = 0.02) {
  CatCheck c;
  c.name = std::move(name);
  c.event = std::move(event);
  c.expected = expected;
  c.measured = measured;
  c.tolerance = tolerance;
  c.passed = expected == 0
                 ? measured == 0
                 : std::abs(measured - expected) <= tolerance * std::abs(expected);
  return c;
}

}  // namespace

CatReport run_counter_analysis(sim::Machine& machine, Library& lib,
                               const std::string& route,
                               std::uint32_t measure_cpu) {
  CatReport report;
  const std::uint32_t socket = machine.socket_of_cpu(measure_cpu);
  const bool noise_was_on = machine.noise(socket).enabled();
  machine.set_noise_enabled(false);
  machine.set_active_cores(socket, machine.cores_per_socket());

  sim::AccessEngine& eng = machine.engine(socket, 0);
  const std::uint64_t n = 1 << 18;  // 2 MB per stream

  // 1. READ_BYTES identity: DOT reads two arrays once.
  {
    const std::uint64_t x = machine.address_space().allocate(n * 8);
    const std::uint64_t y = machine.address_space().allocate(n * 8);
    const Totals t = measure(machine, lib, route, measure_cpu, [&] {
      sim::LoopDesc loop;
      loop.iterations = n;
      loop.streams = {{x, 8, 8, sim::AccessKind::Load},
                      {y, 8, 8, sim::AccessKind::Load}};
      eng.execute(loop);
    });
    report.checks.push_back(make_check("READ_BYTES identity (DOT kernel)",
                                       "PM_MBA*_READ_BYTES",
                                       2.0 * n * 8, t.read_bytes));
    report.checks.push_back(make_check("no writes from a read-only kernel",
                                       "PM_MBA*_WRITE_BYTES", 0.0, t.write_bytes));
  }

  // 2. WRITE_BYTES identity: streaming copy writes each element once.
  {
    const std::uint64_t src = machine.address_space().allocate(n * 8);
    const std::uint64_t dst = machine.address_space().allocate(n * 8);
    const Totals t = measure(machine, lib, route, measure_cpu, [&] {
      sim::LoopDesc loop;
      loop.iterations = n;
      loop.streams = {{src, 8, 8, sim::AccessKind::Load},
                      {dst, 8, 8, sim::AccessKind::Store}};
      eng.execute(loop);
      machine.flush_socket(socket);
    });
    report.checks.push_back(make_check("WRITE_BYTES identity (streaming copy)",
                                       "PM_MBA*_WRITE_BYTES",
                                       static_cast<double>(n) * 8, t.write_bytes));
  }

  // 3. Read-per-write of allocating stores: strided stores read one full
  //    line per written line.
  {
    const std::uint64_t elems = 1 << 15;
    const std::uint64_t dst = machine.address_space().allocate(elems * 128);
    const Totals t = measure(machine, lib, route, measure_cpu, [&] {
      sim::LoopDesc loop;
      loop.iterations = elems;
      loop.streams = {{dst, 128, 8, sim::AccessKind::Store}};
      eng.execute(loop);
      machine.flush_socket(socket);
    });
    report.checks.push_back(make_check(
        "read-per-write of allocating stores", "READ_BYTES vs WRITE_BYTES",
        t.write_bytes, t.read_bytes));
  }

  // 4. REQS/BYTES consistency: every transaction is one 64-byte line.
  {
    const std::uint64_t buf = machine.address_space().allocate(n * 8);
    const Totals t = measure(machine, lib, route, measure_cpu, [&] {
      sim::LoopDesc loop;
      loop.iterations = n;
      loop.streams = {{buf, 8, 8, sim::AccessKind::Load}};
      eng.execute(loop);
    });
    report.checks.push_back(make_check("REQS * 64 == BYTES (reads)",
                                       "PM_MBA*_READ_REQS",
                                       t.read_bytes, 64.0 * t.read_reqs, 1e-9));
  }

  // 5. Channel interleave uniformity over a long sequential stream.
  {
    const std::uint64_t buf = machine.address_space().allocate(n * 8);
    const Totals t = measure(machine, lib, route, measure_cpu, [&] {
      sim::LoopDesc loop;
      loop.iterations = n;
      loop.streams = {{buf, 8, 8, sim::AccessKind::Load}};
      eng.execute(loop);
    });
    double lo = 1e300, hi = 0;
    for (const double b : t.read_bytes_per_channel) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
    }
    report.checks.push_back(make_check("channel interleave uniformity",
                                       "per-channel READ_BYTES", hi, lo, 0.05));
  }

  // 6. Socket isolation: the other socket's counters stay untouched.
  if (machine.sockets() > 1) {
    const std::uint32_t other_socket = 1 - socket;
    const std::uint32_t other_cpu =
        other_socket * machine.config().cpus_per_socket();
    auto es = lib.create_eventset();
    es->add_event(event_name(route, 0, nest::NestEventKind::ReadBytes, other_cpu));
    es->start();
    const std::uint64_t buf = machine.address_space().allocate(n * 8);
    sim::LoopDesc loop;
    loop.iterations = n;
    loop.streams = {{buf, 8, 8, sim::AccessKind::Load}};
    eng.execute(loop);
    const long long leaked = es->read()[0];
    es->stop();
    report.checks.push_back(make_check("socket isolation",
                                       "other socket PM_MBA0_READ_BYTES", 0.0,
                                       static_cast<double>(leaked)));
  }

  machine.set_noise_enabled(noise_was_on);
  return report;
}

}  // namespace papisim::kernels
