#include "kernels/blas_sim.hpp"

namespace papisim::kernels {

GemmBuffers GemmBuffers::allocate(sim::AddressSpace& as, std::uint64_t n) {
  GemmBuffers buf;
  const std::uint64_t bytes = n * n * 8;
  buf.a = as.allocate(bytes);
  buf.b = as.allocate(bytes);
  buf.c = as.allocate(bytes);
  return buf;
}

GemvBuffers GemvBuffers::allocate(sim::AddressSpace& as, std::uint64_t m,
                                  std::uint64_t n, std::uint64_t p) {
  GemvBuffers buf;
  buf.a = as.allocate(p * n * 8);
  buf.x = as.allocate(n * 8);
  buf.y = as.allocate(m * 8);
  return buf;
}

sim::LoopStats run_gemm(sim::Machine& machine, std::uint32_t socket,
                        std::uint32_t core, std::uint64_t n,
                        const GemmBuffers& buf) {
  sim::AccessEngine& eng = machine.engine(socket, core);
  sim::LoopStats total;

  sim::LoopDesc inner;
  inner.iterations = n;
  inner.flops_per_iter = 2.0;  // multiply + add
  inner.streams = {
      {buf.a, 8, 8, sim::AccessKind::Load},                             // A[i][k]
      {buf.b, static_cast<std::int64_t>(8 * n), 8, sim::AccessKind::Load},  // B[k][j]
  };

  for (std::uint64_t i = 0; i < n; ++i) {
    inner.streams[0].base = buf.a + i * n * 8;  // row i of A
    for (std::uint64_t j = 0; j < n; ++j) {
      inner.streams[1].base = buf.b + j * 8;  // column j of B
      total += eng.execute(inner);
      eng.store(buf.c + (i * n + j) * 8, 8);  // C[i][j]: sparse scalar store
    }
  }
  const sim::LoopStats scalar = eng.take_scalar_stats();
  // In deferred mode the engine banked the scalar time itself; the replay
  // driver advances the clock once, after joining all cores.
  if (!eng.deferred_time()) machine.advance(scalar.time_ns);
  total += scalar;
  return total;
}

sim::LoopStats run_capped_gemv(sim::Machine& machine, std::uint32_t socket,
                               std::uint32_t core, std::uint64_t m,
                               std::uint64_t n, std::uint64_t p,
                               const GemvBuffers& buf) {
  sim::AccessEngine& eng = machine.engine(socket, core);
  sim::LoopStats total;

  sim::LoopDesc inner;
  inner.iterations = n;
  inner.flops_per_iter = 2.0;
  inner.streams = {
      {buf.a, 8, 8, sim::AccessKind::Load},  // A[i % P][k]
      {buf.x, 8, 8, sim::AccessKind::Load},  // x[k]
  };

  for (std::uint64_t i = 0; i < m; ++i) {
    inner.streams[0].base = buf.a + (i % p) * n * 8;
    total += eng.execute(inner);
    eng.store(buf.y + i * 8, 8);  // y[i]: sparse scalar store
  }
  const sim::LoopStats scalar = eng.take_scalar_stats();
  if (!eng.deferred_time()) machine.advance(scalar.time_ns);
  total += scalar;
  return total;
}

sim::LoopStats run_dot(sim::Machine& machine, std::uint32_t socket,
                       std::uint32_t core, std::uint64_t n, std::uint64_t x_addr,
                       std::uint64_t y_addr) {
  sim::AccessEngine& eng = machine.engine(socket, core);
  sim::LoopDesc loop;
  loop.iterations = n;
  loop.flops_per_iter = 2.0;
  loop.streams = {
      {x_addr, 8, 8, sim::AccessKind::Load},
      {y_addr, 8, 8, sim::AccessKind::Load},
  };
  return eng.execute(loop);
}

}  // namespace papisim::kernels
