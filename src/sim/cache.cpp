#include "sim/cache.hpp"

#include <stdexcept>

namespace papisim::sim {

CacheLevel::CacheLevel(std::uint64_t size_bytes, std::uint32_t associativity,
                       std::uint32_t line_bytes, bool hashed_sets)
    : size_bytes_(size_bytes),
      assoc_(associativity),
      line_bytes_(line_bytes),
      hashed_sets_(hashed_sets) {
  if (line_bytes == 0 || associativity == 0) {
    throw std::invalid_argument("CacheLevel: line size and associativity must be > 0");
  }
  const std::uint64_t lines = size_bytes / line_bytes;
  sets_ = static_cast<std::uint32_t>(lines / associativity);
  if (sets_ == 0) {
    // Zero-capacity cache: misses everything, never evicts.
    assoc_ = 0;
    return;
  }
  pow2_sets_ = (sets_ & (sets_ - 1)) == 0;
  set_mask_ = sets_ - 1;
  if (!pow2_sets_) fastmod_m_ = ~0ull / sets_ + 1;
  tags_.assign(static_cast<std::size_t>(sets_) * assoc_, kInvalid);
  dirty_.assign(tags_.size(), 0);
}

// LRU is kept as a physical recency order within each set (way 0 = MRU):
// hot lines hit at shallow scan depth, which dominates the simulator's
// hottest path; the shuffle on a hit moves at most `depth` ways.

CacheLevel::Result CacheLevel::access(std::uint64_t line, bool make_dirty) {
  return access_impl(line, make_dirty, false);
}

CacheLevel::Result CacheLevel::access_impl(std::uint64_t line, bool make_dirty,
                                           bool /*is_insert*/) {
  Result res;
  if (sets_ == 0) {
    ++misses_;
    return res;  // zero capacity: nothing is retained
  }
  const std::size_t base = static_cast<std::size_t>(set_index(line)) * assoc_;
  std::uint64_t* tags = tags_.data() + base;
  std::uint8_t* dirty = dirty_.data() + base;

  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (tags[w] == line) {
      // Hit: move to MRU position, merging dirty state.
      const std::uint8_t d = static_cast<std::uint8_t>(dirty[w] | (make_dirty ? 1 : 0));
      for (std::uint32_t j = w; j > 0; --j) {
        tags[j] = tags[j - 1];
        dirty[j] = dirty[j - 1];
      }
      tags[0] = line;
      dirty[0] = d;
      ++hits_;
      res.hit = true;
      return res;
    }
  }

  // Miss: evict the LRU way, insert at MRU.
  ++misses_;
  const std::uint32_t lru = assoc_ - 1;
  if (tags[lru] != kInvalid) {
    res.evicted = true;
    res.victim_line = tags[lru];
    res.victim_dirty = dirty[lru] != 0;
  } else {
    ++valid_count_;
  }
  for (std::uint32_t j = lru; j > 0; --j) {
    tags[j] = tags[j - 1];
    dirty[j] = dirty[j - 1];
  }
  tags[0] = line;
  dirty[0] = make_dirty ? 1 : 0;
  return res;
}

bool CacheLevel::contains(std::uint64_t line) const {
  if (sets_ == 0) return false;
  const std::size_t base = static_cast<std::size_t>(set_index(line)) * assoc_;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (tags_[base + w] == line) return true;
  }
  return false;
}

CacheLevel::Invalidated CacheLevel::invalidate(std::uint64_t line) {
  Invalidated out;
  if (sets_ == 0) return out;
  const std::size_t base = static_cast<std::size_t>(set_index(line)) * assoc_;
  std::uint64_t* tags = tags_.data() + base;
  std::uint8_t* dirty = dirty_.data() + base;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (tags[w] == line) {
      out.present = true;
      out.dirty = dirty[w] != 0;
      // Compact the recency order: shift older entries up one way.
      for (std::uint32_t j = w; j + 1 < assoc_; ++j) {
        tags[j] = tags[j + 1];
        dirty[j] = dirty[j + 1];
      }
      tags[assoc_ - 1] = kInvalid;
      dirty[assoc_ - 1] = 0;
      --valid_count_;
      return out;
    }
  }
  return out;
}

void CacheLevel::flush(const std::function<void(std::uint64_t, bool)>& sink) {
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != kInvalid) {
      sink(tags_[i], dirty_[i] != 0);
      tags_[i] = kInvalid;
      dirty_[i] = 0;
    }
  }
  valid_count_ = 0;
}

}  // namespace papisim::sim
