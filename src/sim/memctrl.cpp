#include "sim/memctrl.hpp"

#include <stdexcept>

namespace papisim::sim {

MemController::MemController(std::uint32_t channels, std::uint32_t line_bytes,
                             std::uint32_t interleave_lines)
    : channels_(channels),
      line_bytes_(line_bytes),
      interleave_lines_(interleave_lines == 0 ? 1 : interleave_lines),
      counters_(static_cast<std::size_t>(channels) * 2),
      op_counters_(static_cast<std::size_t>(channels) * 2) {
  if (channels == 0) throw std::invalid_argument("MemController: need >= 1 channel");
  if ((interleave_lines_ & (interleave_lines_ - 1)) != 0) {
    throw std::invalid_argument("MemController: interleave granularity must be a power of two");
  }
  while ((1u << interleave_shift_) < interleave_lines_) ++interleave_shift_;
  pow2_channels_ = (channels_ & (channels_ - 1)) == 0;
  channel_mask_ = channels_ - 1;
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& c : op_counters_) c.store(0, std::memory_order_relaxed);
}

void MemController::add_spread(std::uint64_t bytes, MemDir dir) {
  // Distribute in line_bytes_ granules round-robin, remainder to one channel.
  const std::uint64_t per_channel = bytes / channels_;
  const std::uint64_t rem = bytes - per_channel * channels_;
  for (std::uint32_t ch = 0; ch < channels_; ++ch) {
    counter(ch, dir).fetch_add(per_channel, std::memory_order_relaxed);
    op_counter(ch, dir).fetch_add((per_channel + line_bytes_ - 1) / line_bytes_,
                                  std::memory_order_relaxed);
  }
  if (rem != 0) {
    const std::uint32_t cur =
        spread_cursor_.fetch_add(1, std::memory_order_relaxed) % channels_;
    counter(cur, dir).fetch_add(rem, std::memory_order_relaxed);
    op_counter(cur, dir).fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint64_t MemController::total_bytes(MemDir dir) const {
  std::uint64_t total = 0;
  for (std::uint32_t ch = 0; ch < channels_; ++ch) total += channel_bytes(ch, dir);
  return total;
}

std::uint64_t MemController::total_ops(MemDir dir) const {
  std::uint64_t total = 0;
  for (std::uint32_t ch = 0; ch < channels_; ++ch) total += channel_ops(ch, dir);
  return total;
}

std::vector<std::array<std::uint64_t, 2>> MemController::snapshot() const {
  std::vector<std::array<std::uint64_t, 2>> snap(channels_);
  for (std::uint32_t ch = 0; ch < channels_; ++ch) {
    snap[ch] = {channel_bytes(ch, MemDir::Read), channel_bytes(ch, MemDir::Write)};
  }
  return snap;
}

}  // namespace papisim::sim
