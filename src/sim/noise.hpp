// Measurement-noise model (background traffic + harness overhead).
#pragma once

#include <cstdint>
#include <mutex>

#include "sim/config.hpp"
#include "sim/memctrl.hpp"
#include "sim/rng.hpp"

namespace papisim::sim {

/// Injects the extraneous memory traffic that real nest counters observe on a
/// shared node: a small rate-based background (OS daemons) plus jittered
/// constant overheads per kernel repetition and per measurement window
/// (harness setup, cache flushes, interrupts around start/stop).
///
/// The per-repetition/-measurement constants are what make *small* kernels
/// noisy (relative error ~ overhead / kernel traffic) and what the paper's
/// adaptive repetition count (Eq. 5) amortizes; the rate term is minor.
/// Disabling the model yields exact, deterministic counters (used by tests).
///
/// Thread safety: the jitter RNG is guarded by a mutex, so concurrent
/// EventSet starts/stops (measurement_overhead) and background accrual are
/// data-race-free.  The draw *order* across threads is of course
/// nondeterministic, which is why deterministic replay modes disable noise
/// and why the parallel replay engine defers per-core time and accrues noise
/// once, on the submitting thread, after the max-merge join (the jitter
/// stream then advances in program order exactly as in a serial replay).
class NoiseModel {
 public:
  NoiseModel(const NoiseConfig& cfg, MemController& mem, std::uint64_t stream_id)
      : cfg_(cfg), mem_(mem), rng_(seed_for(cfg.seed, stream_id)) {}

  /// Deterministic per-stream seed derivation (sockets and, prospectively,
  /// per-core noise sub-streams share one formula).
  static std::uint64_t seed_for(std::uint64_t base_seed, std::uint64_t stream_id) {
    return base_seed ^ (stream_id * 0xd1342543de82ef95ULL);
  }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Background traffic over `dt_ns` of simulated time (no RNG involved:
  /// safe and order-independent under concurrent callers).
  void advance(double dt_ns) {
    if (!enabled_ || dt_ns <= 0) return;
    const double sec = dt_ns * 1e-9;
    add(cfg_.background_read_bytes_per_sec * sec, MemDir::Read);
    add(cfg_.background_write_bytes_per_sec * sec, MemDir::Write);
  }

  /// Overhead of setting up / tearing down one kernel repetition.
  void repetition_overhead() {
    if (!enabled_) return;
    add(cfg_.rep_read_overhead_bytes * jitter(), MemDir::Read);
    add(cfg_.rep_write_overhead_bytes * jitter(), MemDir::Write);
  }

  /// Overhead around one counter start/stop measurement window.
  void measurement_overhead() {
    if (!enabled_) return;
    add(cfg_.measure_read_overhead_bytes * jitter(), MemDir::Read);
    add(cfg_.measure_write_overhead_bytes * jitter(), MemDir::Write);
  }

 private:
  double jitter() {
    std::lock_guard lock(rng_mu_);
    return rng_.next_lognormal_unit_mean(cfg_.jitter_sigma);
  }

  void add(double bytes, MemDir dir) {
    if (bytes > 0) mem_.add_spread(static_cast<std::uint64_t>(bytes), dir);
  }

  NoiseConfig cfg_;
  MemController& mem_;
  std::mutex rng_mu_;
  SplitMix64 rng_;
  bool enabled_ = true;
};

}  // namespace papisim::sim
