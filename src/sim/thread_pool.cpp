#include "sim/thread_pool.hpp"

#include "selfmon/metrics.hpp"

namespace papisim::sim {

ThreadPool::ThreadPool(std::uint32_t workers) {
  threads_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this](std::stop_token st) { worker_loop(st); });
  }
}

ThreadPool::~ThreadPool() {
  for (auto& t : threads_) t.request_stop();
  work_cv_.notify_all();
}

void ThreadPool::worker_loop(const std::stop_token& stop) {
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      const selfmon::TimePoint w0 = selfmon::clock_now();
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop.stop_requested() ||
               (current_ != nullptr && current_->next < current_->n);
      });
      if (stop.stop_requested()) return;
      batch = current_;
      selfmon::hist_record_since(selfmon::HistId::PoolQueueWaitNs, w0);
    }
    drain(batch);
  }
}

void ThreadPool::drain(const std::shared_ptr<Batch>& batch) {
  while (true) {
    std::uint32_t idx;
    {
      std::lock_guard lock(mu_);
      if (batch->next >= batch->n) return;
      idx = batch->next++;
    }
    selfmon::counter_add(selfmon::CounterId::PoolClaims);
    std::exception_ptr error;
    try {
      (*batch->fn)(idx);
      selfmon::counter_add(selfmon::CounterId::PoolTasks);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mu_);
      if (error) {
        if (!batch->error) {
          batch->error = error;
        } else {
          // Only the first exception is rethrown (see header contract);
          // account for the ones the batch swallows.
          selfmon::counter_add(selfmon::CounterId::PoolExceptionsDropped);
        }
      }
      if (++batch->done == batch->n) {
        done_cv_.notify_all();
        return;
      }
    }
  }
}

void ThreadPool::parallel_for(std::uint32_t n,
                              const std::function<void(std::uint32_t)>& fn) {
  if (n == 0) return;
  const selfmon::Stopwatch dispatch(selfmon::HistId::PoolDispatchNs);
  selfmon::counter_add(selfmon::CounterId::PoolBatches);
  if (threads_.empty() || n == 1) {
    // Inline serial path; same exception contract as the pooled path (all
    // indices run, first exception rethrown, later ones counted + dropped).
    std::exception_ptr first;
    for (std::uint32_t i = 0; i < n; ++i) {
      selfmon::counter_add(selfmon::CounterId::PoolClaims);
      try {
        fn(i);
        selfmon::counter_add(selfmon::CounterId::PoolTasks);
      } catch (...) {
        if (!first) {
          first = std::current_exception();
        } else {
          selfmon::counter_add(selfmon::CounterId::PoolExceptionsDropped);
        }
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard lock(mu_);
    current_ = batch;
  }
  work_cv_.notify_all();
  drain(batch);  // the caller participates
  {
    std::unique_lock lock(mu_);
    done_cv_.wait(lock, [&] { return batch->done == batch->n; });
    if (current_ == batch) current_ = nullptr;
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace papisim::sim
