// Top-level simulated machine: sockets, cores, clock, address space.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/access_engine.hpp"
#include "sim/clock.hpp"
#include "sim/config.hpp"
#include "sim/l3fabric.hpp"
#include "sim/memctrl.hpp"
#include "sim/noise.hpp"

namespace papisim::sim {

/// Identity of a caller; the nest PMU requires uid 0 (root), exactly the
/// constraint that forces ordinary Summit users through PCP.
struct Credentials {
  std::uint32_t uid = 1001;
  bool privileged() const { return uid == 0; }

  static Credentials root() { return Credentials{0}; }
  static Credentials user() { return Credentials{1001}; }
};

/// Trivial bump allocator handing out distinct simulated physical ranges.
/// The simulator is trace-driven and stores no data; allocations only carve
/// up the line-number space so that arrays never alias.
///
/// Thread safe: concurrent replay workers may allocate scratch regions; a
/// CAS loop keeps the handed-out ranges disjoint.  (Concurrent allocation
/// *order* is nondeterministic, so deterministic replays allocate up front,
/// before fanning out -- the kernel drivers all do.)
class AddressSpace {
 public:
  explicit AddressSpace(std::uint64_t base = 1ull << 20) : next_(base) {}

  /// Returns a `bytes`-sized region aligned to `align` (default 4 KiB page).
  std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 4096) {
    std::uint64_t cur = next_.load(std::memory_order_relaxed);
    std::uint64_t addr;
    do {
      addr = (cur + align - 1) / align * align;
    } while (!next_.compare_exchange_weak(cur, addr + bytes,
                                          std::memory_order_relaxed));
    return addr;
  }

  std::uint64_t bytes_allocated() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> next_;
};

/// A complete simulated node.
///
/// Each socket owns a MemController ("nest"), an L3Fabric, and a NoiseModel;
/// each core owns an AccessEngine.  The machine-wide SimClock is shared.
class Machine {
 public:
  explicit Machine(MachineConfig cfg);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const MachineConfig& config() const { return cfg_; }
  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  AddressSpace& address_space() { return addr_space_; }

  std::uint32_t sockets() const { return cfg_.sockets; }
  std::uint32_t cores_per_socket() const { return cfg_.cores_per_socket; }

  MemController& memctrl(std::uint32_t socket) { return *sockets_[socket]->mem; }
  const MemController& memctrl(std::uint32_t socket) const { return *sockets_[socket]->mem; }
  L3Fabric& l3(std::uint32_t socket) { return *sockets_[socket]->l3; }
  NoiseModel& noise(std::uint32_t socket) { return *sockets_[socket]->noise; }
  AccessEngine& engine(std::uint32_t socket, std::uint32_t core) {
    return *sockets_[socket]->engines[core];
  }

  /// Socket owning a given hardware-thread id (cpu id), following the
  /// Summit layout: cpus [0, cores*smt) on socket 0, the rest on socket 1.
  std::uint32_t socket_of_cpu(std::uint32_t cpu) const {
    return cpu / cfg_.cpus_per_socket();
  }

  /// Declare the number of busy cores per socket (L3 lateral cast-out model).
  void set_active_cores(std::uint32_t socket, std::uint32_t n) {
    sockets_[socket]->l3->set_active_cores(n);
  }

  /// Advance virtual time; accrues background noise on every socket.
  void advance(double dt_ns) {
    clock_.advance(dt_ns);
    for (auto& s : sockets_) s->noise->advance(dt_ns);
  }

  /// Write back all dirty cache state of a socket (counts as WRITE traffic).
  void flush_socket(std::uint32_t socket) { sockets_[socket]->l3->flush_all(); }
  void flush_all() {
    for (std::uint32_t s = 0; s < cfg_.sockets; ++s) flush_socket(s);
  }

  /// Globally enable/disable measurement noise (tests run without it).
  void set_noise_enabled(bool on) {
    for (auto& s : sockets_) s->noise->set_enabled(on);
  }

  /// Credentials of the ordinary user on this system (root on Tellico,
  /// unprivileged on Summit).
  Credentials user_credentials() const { return Credentials{cfg_.user_uid}; }

 private:
  struct Socket {
    std::unique_ptr<MemController> mem;
    std::unique_ptr<L3Fabric> l3;
    std::unique_ptr<NoiseModel> noise;
    std::vector<std::unique_ptr<AccessEngine>> engines;
  };

  MachineConfig cfg_;
  SimClock clock_;
  AddressSpace addr_space_;
  std::vector<std::unique_ptr<Socket>> sockets_;
};

}  // namespace papisim::sim
