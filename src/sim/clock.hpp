// Virtual time base for the simulator.
#pragma once

#include <cstdint>

namespace papisim::sim {

/// Monotonic virtual clock, in nanoseconds of simulated time.
///
/// All simulated activity (kernel execution, DMA copies, network transfers,
/// PCP round-trips, background noise accrual) advances this clock.  The
/// profiling timeline (Figs. 11-12) and the noise model are driven by it.
class SimClock {
 public:
  double now_ns() const { return now_ns_; }
  double now_sec() const { return now_ns_ * 1e-9; }

  /// Advance time; negative deltas are ignored (clock is monotonic).
  void advance(double delta_ns) {
    if (delta_ns > 0) now_ns_ += delta_ns;
  }

  void reset() { now_ns_ = 0.0; }

 private:
  double now_ns_ = 0.0;
};

}  // namespace papisim::sim
