// Virtual time base for the simulator.
#pragma once

#include <atomic>
#include <cstdint>

namespace papisim::sim {

/// Monotonic virtual clock, in nanoseconds of simulated time.
///
/// All simulated activity (kernel execution, DMA copies, network transfers,
/// PCP round-trips, background noise accrual) advances this clock.  The
/// profiling timeline (Figs. 11-12) and the noise model are driven by it.
///
/// Thread safety: advance() and now_ns() are safe to call concurrently (the
/// parallel replay engine's workers may touch the clock through non-deferred
/// engines).  Note that concurrent advances *sum*; parallel kernel replay
/// wants max-merge semantics instead, which the replay layer implements by
/// deferring per-core time (AccessEngine::set_deferred_time) and advancing
/// once with the maximum after the join.
class SimClock {
 public:
  double now_ns() const { return now_ns_.load(std::memory_order_relaxed); }
  double now_sec() const { return now_ns() * 1e-9; }

  /// Advance time; negative deltas are ignored (clock is monotonic).
  void advance(double delta_ns) {
    if (!(delta_ns > 0)) return;
    double cur = now_ns_.load(std::memory_order_relaxed);
    while (!now_ns_.compare_exchange_weak(cur, cur + delta_ns,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Move the clock forward to `t_ns` if it is behind it (max-merge).
  void advance_to(double t_ns) {
    double cur = now_ns_.load(std::memory_order_relaxed);
    while (cur < t_ns && !now_ns_.compare_exchange_weak(
                             cur, t_ns, std::memory_order_relaxed)) {
    }
  }

  void reset() { now_ns_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> now_ns_{0.0};
};

}  // namespace papisim::sim
