#include "sim/access_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace papisim::sim {

LoopStats& LoopStats::operator+=(const LoopStats& o) {
  line_touches += o.line_touches;
  mem_read_bytes += o.mem_read_bytes;
  mem_write_bytes += o.mem_write_bytes;
  l3_hits += o.l3_hits;
  victim_hits += o.victim_hits;
  bypassed_store_lines += o.bypassed_store_lines;
  allocated_store_lines += o.allocated_store_lines;
  seq_line_touches += o.seq_line_touches;
  strided_line_touches += o.strided_line_touches;
  time_ns += o.time_ns;
  flops += o.flops;
  return *this;
}

AccessEngine::AccessEngine(const MachineConfig& cfg, std::uint32_t core,
                           L3Fabric& l3, MemController& mem, SimClock& clock,
                           NoiseModel& noise)
    : cfg_(cfg),
      core_(core),
      l3_(l3),
      mem_(mem),
      clock_(clock),
      noise_(noise) {}

void AccessEngine::account(LoopStats& s, L3Fabric::Source src) {
  switch (src) {
    case L3Fabric::Source::L3Hit: ++s.l3_hits; break;
    case L3Fabric::Source::VictimHit: ++s.victim_hits; break;
    case L3Fabric::Source::Memory: break;  // traffic accounted by the fabric
  }
}

namespace {

spe::HitLevel spe_level(L3Fabric::Source src) {
  switch (src) {
    case L3Fabric::Source::L3Hit: return spe::HitLevel::L3Hit;
    case L3Fabric::Source::VictimHit: return spe::HitLevel::VictimHit;
    case L3Fabric::Source::Memory: return spe::HitLevel::Memory;
  }
  return spe::HitLevel::Memory;
}

/// First iteration > `cur_iter` at which the affine stream touches a line
/// different from `cur_line`, or UINT64_MAX for stride 0.
std::uint64_t next_line_iter(std::uint64_t base, std::int64_t stride,
                             std::uint64_t cur_iter, std::uint64_t cur_line,
                             std::uint32_t line_bytes) {
  if (stride == 0) return ~0ull;
  // Fast path: a stride of at least one line touches a new line every
  // iteration (the dominant case for strided kernels; avoids a division).
  if (stride >= line_bytes || -stride >= line_bytes) return cur_iter + 1;
  if (stride > 0) {
    // Smallest i with base + i*stride >= (cur_line + 1) * line_bytes.
    const std::uint64_t boundary = (cur_line + 1) * line_bytes;
    const std::uint64_t s = static_cast<std::uint64_t>(stride);
    if (base >= boundary) return cur_iter + 1;  // already past (elem straddle)
    return (boundary - base + s - 1) / s;
  }
  // Negative stride: smallest i with base + i*stride < cur_line * line_bytes.
  const std::uint64_t boundary = cur_line * line_bytes;  // first byte of line
  const std::uint64_t s = static_cast<std::uint64_t>(-stride);
  if (base < boundary) return cur_iter + 1;
  // base - i*s <= boundary - 1  =>  i >= (base - boundary + 1) / s
  return (base - boundary + s) / s;
}

}  // namespace

LoopStats AccessEngine::execute(const LoopDesc& loop) {
  LoopStats stats;
  const std::size_t n = loop.streams.size();
  if (n == 0 || loop.iterations == 0) return stats;
  if (n > 16) throw std::invalid_argument("AccessEngine: too many streams in one loop");

  // Store-density classification: how many load streams feed each store
  // stream per iteration?  Dense, contiguous store streams are candidates
  // for the cache bypass.
  std::size_t load_streams = 0;
  std::size_t store_streams = 0;
  for (const StreamDesc& sd : loop.streams) {
    (sd.kind == AccessKind::Load ? load_streams : store_streams) += 1;
  }
  const std::size_t loads_per_store =
      store_streams == 0 ? ~std::size_t{0} : load_streams / store_streams;

  bool bypass_ok[16];
  enum : std::uint8_t { kEveryIter, kShift, kGeneral };
  std::uint8_t stride_mode[16];
  std::uint8_t stride_shift[16] = {};
  // Stream detection, precomputed: execute() streams are affine, so the
  // per-touch StreamDetector outcome is known in advance -- a stream whose
  // line-delta is a constant of >= 2 lines (stride a multiple of the line
  // size and at least two lines) is flagged "strided" after
  // stream_detect_threshold deltas, i.e. from its (threshold+1)-th touch on.
  // This is bit-exact with StreamDetector (verified by tests) and removes
  // the detector from the hot loop.
  bool strided_capable[16];
  std::uint64_t touch_count[16];
  std::uint64_t stream_touches[16] = {};  // per-stream totals for the stride mix
  std::uint32_t strided_active = 0;
  const std::int64_t line = cfg_.line_bytes;
  for (std::size_t k = 0; k < n; ++k) {
    const StreamDesc& sd = loop.streams[k];
    bypass_ok[k] = cfg_.store_bypass && !loop.sw_prefetch &&
                   sd.kind == AccessKind::Store &&
                   sd.stride == static_cast<std::int64_t>(sd.elem_bytes) &&
                   loads_per_store <= cfg_.bypass_max_loads_per_store;
    const std::int64_t abs_stride = sd.stride < 0 ? -sd.stride : sd.stride;
    strided_capable[k] = abs_stride >= 2 * line && abs_stride % line == 0;
    touch_count[k] = 0;
    // Per-event line advance without a division:
    //  * |stride| >= line: a new line every iteration;
    //  * positive power-of-two stride < line: shift instead of divide;
    //  * anything else: the general next_line_iter() path.
    if (abs_stride >= line) {
      stride_mode[k] = kEveryIter;
    } else if (sd.stride > 0 && (sd.stride & (sd.stride - 1)) == 0) {
      stride_mode[k] = kShift;
      stride_shift[k] = 0;
      while ((std::int64_t{1} << stride_shift[k]) < sd.stride) ++stride_shift[k];
    } else {
      stride_mode[k] = kGeneral;
    }
  }

  // Traffic is counted per access, not by diffing the global counters, so
  // concurrently replaying cores cannot pollute each other's stats.
  L3Fabric::Traffic traffic;

  // Precise-event sampling (DESIGN.md §3g): one timestamp per execute() --
  // samples are joined against phase boundaries, which are orders of
  // magnitude coarser than a loop replay.
  spe::CoreSampler* const spe = spe::kEnabled ? spe_ : nullptr;
  const std::uint64_t spe_t_ns = spe != nullptr ? spe_time_ns() : 0;

  // Per-stream replay cursors: the iteration of the next new-line touch.
  std::uint64_t next_iter[16];
  for (std::size_t k = 0; k < n; ++k) next_iter[k] = 0;

  while (true) {
    // Find the earliest pending line event (ties resolved in stream order,
    // matching the textual order of accesses in the loop body).
    std::size_t k = n;
    std::uint64_t imin = loop.iterations;
    for (std::size_t j = 0; j < n; ++j) {
      if (next_iter[j] < imin) {
        imin = next_iter[j];
        k = j;
      }
    }
    if (k == n) break;

    const StreamDesc& sd = loop.streams[k];
    const std::uint64_t addr =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(sd.base) +
                                   static_cast<std::int64_t>(imin) * sd.stride);
    const std::uint64_t touched_line = addr / cfg_.line_bytes;

    if (strided_capable[k] && ++touch_count[k] == cfg_.stream_detect_threshold + 1) {
      ++strided_active;
    }
    ++stats.line_touches;
    ++stream_touches[k];

    L3Fabric::Source src = L3Fabric::Source::Memory;
    bool bypassed = false;
    if (sd.kind == AccessKind::Load) {
      src = l3_.load_line(core_, touched_line, &traffic);
      account(stats, src);
    } else if (loop.sw_prefetch) {
      // dcbtst: prefetch the target line into L3, then the store hits it.
      // The sample's hit level reports where the prefetch found the line.
      src = l3_.prefetch_line(core_, touched_line, &traffic);
      account(stats, src);
      l3_.store_line(core_, touched_line, &traffic);
      ++stats.allocated_store_lines;
    } else if (bypass_ok[k] && strided_active == 0) {
      // Streaming store: bypass the cache, write the full line to memory.
      mem_.add_line(touched_line, MemDir::Write);
      ++traffic.write_lines;
      ++stats.bypassed_store_lines;
      bypassed = true;
    } else {
      src = l3_.store_line(core_, touched_line, &traffic);
      account(stats, src);
      ++stats.allocated_store_lines;
    }

    if constexpr (spe::kEnabled) {
      if (spe != nullptr) {
        spe->on_access(addr,
                       sd.kind == AccessKind::Load ? spe::AccessKind::Load
                                                   : spe::AccessKind::Store,
                       bypassed ? spe::HitLevel::Bypass : spe_level(src),
                       sd.stride, spe_t_ns);
      }
    }

    switch (stride_mode[k]) {
      case kEveryIter:
        next_iter[k] = imin + 1;
        break;
      case kShift: {
        // Iterations until the next line boundary: ceil(remaining / stride).
        const std::uint64_t remaining =
            (touched_line + 1) * cfg_.line_bytes - addr;
        next_iter[k] =
            imin + ((remaining + (std::uint64_t{1} << stride_shift[k]) - 1) >>
                    stride_shift[k]);
        break;
      }
      default:
        next_iter[k] =
            next_line_iter(sd.base, sd.stride, imin, touched_line, cfg_.line_bytes);
    }
  }

  stats.mem_read_bytes = traffic.read_lines * cfg_.line_bytes;
  stats.mem_write_bytes = traffic.write_lines * cfg_.line_bytes;
  stats.flops = static_cast<double>(loop.iterations) * loop.flops_per_iter;
  // Stride mix (StreamDetector taxonomy): a non-zero stride below two lines
  // advances line-by-line (sequential); strided_capable streams are Stride-N.
  for (std::size_t k = 0; k < n; ++k) {
    if (loop.streams[k].stride == 0) continue;
    (strided_capable[k] ? stats.strided_line_touches : stats.seq_line_touches) +=
        stream_touches[k];
  }

  // Coarse virtual-time model: the loop is limited by the slowest of
  // compute, memory bandwidth, and cache throughput.
  const double util =
      loop.sw_prefetch ? cfg_.mem_bw_utilization_prefetch : cfg_.mem_bw_utilization;
  const double flop_t = stats.flops / cfg_.core_flops;
  const double mem_t = static_cast<double>(stats.mem_read_bytes + stats.mem_write_bytes) /
                       (cfg_.mem_bw_bytes_per_sec * util);
  const double touch_t = static_cast<double>(stats.line_touches) * cfg_.l3_hit_ns * 1e-9;
  stats.time_ns = std::max({flop_t, mem_t, touch_t}) * 1e9;

  if (deferred_time_) {
    pending_ns_ += stats.time_ns;
  } else {
    clock_.advance(stats.time_ns);
    noise_.advance(stats.time_ns);
  }

  counters_.flops += static_cast<std::uint64_t>(stats.flops);
  counters_.line_touches += stats.line_touches;
  counters_.l3_hits += stats.l3_hits;
  counters_.victim_hits += stats.victim_hits;
  counters_.seq_line_touches += stats.seq_line_touches;
  counters_.strided_line_touches += stats.strided_line_touches;
  counters_.busy_ns += stats.time_ns;
  return stats;
}

void AccessEngine::load(std::uint64_t addr, std::uint32_t bytes) {
  const std::uint64_t first = addr / cfg_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / cfg_.line_bytes;
  L3Fabric::Traffic traffic;
  spe::CoreSampler* const spe = spe::kEnabled ? spe_ : nullptr;
  const std::uint64_t spe_t_ns = spe != nullptr ? spe_time_ns() : 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    const L3Fabric::Source src = l3_.load_line(core_, line, &traffic);
    account(scalar_stats_, src);
    ++scalar_stats_.line_touches;
    if constexpr (spe::kEnabled) {
      if (spe != nullptr) {
        spe->on_access(std::max(addr, line * cfg_.line_bytes),
                       spe::AccessKind::Load, spe_level(src), 0, spe_t_ns);
      }
    }
  }
  scalar_stats_.mem_read_bytes += traffic.read_lines * cfg_.line_bytes;
}

void AccessEngine::store(std::uint64_t addr, std::uint32_t bytes) {
  const std::uint64_t first = addr / cfg_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / cfg_.line_bytes;
  L3Fabric::Traffic traffic;
  spe::CoreSampler* const spe = spe::kEnabled ? spe_ : nullptr;
  const std::uint64_t spe_t_ns = spe != nullptr ? spe_time_ns() : 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    const L3Fabric::Source src = l3_.store_line(core_, line, &traffic);
    account(scalar_stats_, src);
    ++scalar_stats_.line_touches;
    ++scalar_stats_.allocated_store_lines;
    if constexpr (spe::kEnabled) {
      if (spe != nullptr) {
        spe->on_access(std::max(addr, line * cfg_.line_bytes),
                       spe::AccessKind::Store, spe_level(src), 0, spe_t_ns);
      }
    }
  }
  scalar_stats_.mem_read_bytes += traffic.read_lines * cfg_.line_bytes;
  scalar_stats_.mem_write_bytes += traffic.write_lines * cfg_.line_bytes;
}

void AccessEngine::prefetch(std::uint64_t addr) {
  account(scalar_stats_, l3_.prefetch_line(core_, addr / cfg_.line_bytes));
  ++scalar_stats_.line_touches;
}

LoopStats AccessEngine::take_scalar_stats() {
  LoopStats out = scalar_stats_;
  const double mem_t =
      static_cast<double>(out.mem_read_bytes + out.mem_write_bytes) /
      (cfg_.mem_bw_bytes_per_sec * cfg_.mem_bw_utilization);
  const double touch_t = static_cast<double>(out.line_touches) * cfg_.l3_hit_ns * 1e-9;
  out.time_ns = std::max(mem_t, touch_t) * 1e9;
  scalar_stats_ = LoopStats{};

  // In normal mode the *caller* spends this time (kernels call
  // Machine::advance with it); when deferred it joins the engine's pending
  // time so the replay driver can max-merge it with the loop time.
  if (deferred_time_) pending_ns_ += out.time_ns;

  counters_.line_touches += out.line_touches;
  counters_.l3_hits += out.l3_hits;
  counters_.victim_hits += out.victim_hits;
  counters_.busy_ns += out.time_ns;
  return out;
}

}  // namespace papisim::sim
