#include "sim/machine.hpp"

namespace papisim::sim {

Machine::Machine(MachineConfig cfg) : cfg_(std::move(cfg)) {
  sockets_.reserve(cfg_.sockets);
  for (std::uint32_t s = 0; s < cfg_.sockets; ++s) {
    auto sock = std::make_unique<Socket>();
    sock->mem = std::make_unique<MemController>(cfg_.mem_channels, cfg_.line_bytes,
                                                cfg_.channel_interleave_lines);
    sock->l3 = std::make_unique<L3Fabric>(cfg_, *sock->mem);
    sock->noise = std::make_unique<NoiseModel>(cfg_.noise, *sock->mem, s);
    sock->engines.reserve(cfg_.cores_per_socket);
    for (std::uint32_t c = 0; c < cfg_.cores_per_socket; ++c) {
      sock->engines.push_back(std::make_unique<AccessEngine>(
          cfg_, c, *sock->l3, *sock->mem, clock_, *sock->noise));
    }
    sockets_.push_back(std::move(sock));
  }
}

}  // namespace papisim::sim
