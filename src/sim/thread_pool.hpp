// Small reusable worker pool for concurrent multi-core kernel replay.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace papisim::sim {

/// A fixed set of std::jthread workers executing index-parallel batches.
///
/// The pool exists so the replay engine can dispatch one simulated core per
/// task without paying thread start-up cost per measurement repetition.
/// parallel_for() blocks until the whole batch completed; the calling thread
/// participates in the work, so a pool with 0 workers degenerates to an
/// inline serial loop (the host_threads == 1 replay path).
///
/// Indices are claimed dynamically, so *which* worker runs which index is
/// nondeterministic -- callers must only submit order-independent work (the
/// serial/parallel bit-identity tests enforce exactly that property for the
/// replay engine).
class ThreadPool {
 public:
  /// `workers` background threads (the caller is an extra participant).
  explicit ThreadPool(std::uint32_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t workers() const { return static_cast<std::uint32_t>(threads_.size()); }

  /// Run fn(i) for every i in [0, n) across the workers plus the calling
  /// thread; returns when all n calls finished.
  ///
  /// Exception contract: every index is attempted even when tasks throw
  /// (workers have already claimed indices, and the serial fallback matches
  /// that behaviour deliberately).  The FIRST exception -- in completion
  /// order, which is nondeterministic for the pooled path -- is rethrown
  /// here; every later exception is swallowed.  Dropped exceptions are not
  /// silent, though: each one increments the selfmon counter
  /// `pool.exceptions_dropped` (selfmon::CounterId::PoolExceptionsDropped),
  /// so a measurement run can detect that a batch lost failures.  Callers
  /// that need all errors must capture them inside `fn`.
  void parallel_for(std::uint32_t n, const std::function<void(std::uint32_t)>& fn);

 private:
  struct Batch {
    std::uint32_t n = 0;
    const std::function<void(std::uint32_t)>* fn = nullptr;
    std::uint32_t next = 0;  ///< next unclaimed index (guarded by pool mutex)
    std::uint32_t done = 0;  ///< completed indices (guarded by pool mutex)
    std::exception_ptr error;
  };

  void worker_loop(const std::stop_token& stop);
  /// Claim-and-run loop shared by workers and the submitting caller.
  void drain(const std::shared_ptr<Batch>& batch);

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a batch
  std::condition_variable done_cv_;   ///< submitter waits for completion
  std::shared_ptr<Batch> current_;
  std::vector<std::jthread> threads_;
};

}  // namespace papisim::sim
