// Sliced L3 with lateral cast-out (POWER9 behaviour).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/memctrl.hpp"

namespace papisim::sim {

/// One socket's L3: a 5 MB slice per core, plus a "victim store" that models
/// lateral cast-out into *idle* cores' slices.
///
/// Mechanism (DESIGN.md §3):
///  * A core's accesses allocate only in its own slice.
///  * Capacity victims of the slice are cast out laterally into the victim
///    store, whose capacity is (idle cores) x slice size, fair-shared across
///    the active cores.  A later miss may recover the line from there
///    (probabilistically, deterministic per-line) without any memory traffic.
///  * When every core is active the victim store has zero capacity, so each
///    core is limited to its hard 5 MB share.
///
/// This is what makes the single-threaded GEMM degrade *gradually* past the
/// 5 MB footprint while the fully-batched GEMM jumps sharply (paper Figs 2-4).
///
/// Threading model (DESIGN.md "Threading model"): all per-core mutable state
/// (the slice, the core's victim-store partition, the retention-event
/// sequence) lives in one *stripe* guarded by one mutex, so concurrent replay
/// workers driving different cores never contend and workers hammering the
/// same core serialize correctly.  An access takes exactly one stripe lock
/// and then hits only MemController atomics -- no function ever holds two
/// stripe locks, so the locking order "stripe mutex -> memctrl atomics" is
/// trivially deadlock-free.  Aggregate victim counters are relaxed atomics.
/// set_active_cores()/flush_*() take the stripe locks one at a time and may
/// run concurrently with accesses, but reconfiguring while a replay is in
/// flight is a modelling error (the capacity change would apply mid-kernel).
/// Every stripe acquisition is accounted by selfmon (l3.stripe_acquisitions,
/// plus l3.stripe_contention estimated from sampled try_lock probes), so
/// replay-pool contention on shared cores is observable through the selfmon
/// component without burdening the per-access fast path (see lock_stripe).
class L3Fabric {
 public:
  L3Fabric(const MachineConfig& cfg, MemController& mem);

  /// Declare how many cores on this socket are running workloads.  Resets
  /// every core's victim-store partition to (idle cores / active cores)
  /// slices of capacity.
  void set_active_cores(std::uint32_t n);
  std::uint32_t active_cores() const { return active_cores_; }

  enum class Source : std::uint8_t { L3Hit, VictimHit, Memory };

  /// Memory transactions one access caused, in whole lines.  Callers that
  /// need per-core traffic totals pass one of these instead of diffing the
  /// MemController's global counters: the global diff would absorb other
  /// cores' concurrent traffic, while this count is exact per access.
  struct Traffic {
    std::uint64_t read_lines = 0;
    std::uint64_t write_lines = 0;
  };

  /// Demand load of `line` by `core`.  Memory reads and any eviction
  /// writebacks are accounted to the MemController (and to `t` if given).
  Source load_line(std::uint32_t core, std::uint64_t line, Traffic* t = nullptr);

  /// Store with write-allocate: a miss reads the line from memory first
  /// (the paper's "read incurred by the hardware when writing").
  Source store_line(std::uint32_t core, std::uint64_t line, Traffic* t = nullptr);

  /// dcbtst-style software prefetch: fetch into the slice (clean), reading
  /// from memory on a miss.  Returns where the line came from.
  Source prefetch_line(std::uint32_t core, std::uint64_t line, Traffic* t = nullptr);

  /// Write back and drop every line held in `core`'s slice (its victim
  /// partition is drained by flush_all()).
  void flush_core(std::uint32_t core);

  /// Write back and drop everything including the victim partitions.
  void flush_all();

  /// Direct slice access for tests/inspection (unsynchronized: do not call
  /// while replay workers are driving this core).
  CacheLevel& slice(std::uint32_t core) { return *stripes_[core]->slice; }
  const CacheLevel& victim_store(std::uint32_t core = 0) const {
    return *stripes_[core]->victim;
  }

  std::uint64_t victim_recoveries() const {
    return victim_recoveries_.load(std::memory_order_relaxed);
  }
  std::uint64_t victim_retention_misses() const {
    return victim_retention_misses_.load(std::memory_order_relaxed);
  }

  /// Total slice-level lookups (hits + misses) across all cores, for the
  /// concurrency-stress conservation check.  Unsynchronized snapshot.
  std::uint64_t total_slice_lookups() const;

 private:
  /// Per-core stripe: everything one core's accesses mutate, under one lock.
  struct Stripe {
    std::mutex mu;
    std::unique_ptr<CacheLevel> slice;
    std::unique_ptr<CacheLevel> victim;  ///< this core's lateral-cast-out share
    std::uint64_t retention_events = 0;  ///< per-core: order-independent across cores
    // Selfmon staging, guarded by mu: acquisitions/contention accumulate in
    // plain fields (the stripe line is already exclusive while locked) and
    // flush to the selfmon registry in batches, keeping the per-access
    // instrumentation cost off the hot path.
    std::uint64_t selfmon_acquisitions = 0;
    std::uint64_t selfmon_contention = 0;
  };

  /// Lock a stripe with selfmon accounting: batched acquisition counts,
  /// plus a try_lock contention probe when `probe` is set (sampled by the
  /// caller); a plain lock when the instrumentation is compiled out.
  static std::unique_lock<std::mutex> lock_stripe(Stripe& stripe,
                                                  bool probe = false);

  /// Cold path of lock_stripe: push the staged counts into the selfmon
  /// registry.  Deliberately out of line so the registry's TLS access never
  /// burdens the per-access fast path.
  static void flush_stripe_selfmon(Stripe& stripe);

  Source access_line(std::uint32_t core, std::uint64_t line, bool make_dirty,
                     Traffic* t);
  void cast_out(Stripe& stripe, std::uint64_t line, bool dirty, Traffic* t);
  bool retained(Stripe& stripe, std::uint64_t line);

  const MachineConfig& cfg_;
  MemController& mem_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::uint32_t active_cores_ = 1;
  std::uint64_t retention_threshold_;  ///< hash cutoff for deterministic retention
  std::atomic<std::uint64_t> victim_recoveries_{0};
  std::atomic<std::uint64_t> victim_retention_misses_{0};
};

}  // namespace papisim::sim
