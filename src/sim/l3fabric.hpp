// Sliced L3 with lateral cast-out (POWER9 behaviour).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/memctrl.hpp"

namespace papisim::sim {

/// One socket's L3: a 5 MB slice per core, plus a "victim store" that models
/// lateral cast-out into *idle* cores' slices.
///
/// Mechanism (DESIGN.md §3):
///  * A core's accesses allocate only in its own slice.
///  * Capacity victims of the slice are cast out laterally into the victim
///    store, whose capacity is (idle cores) x slice size.  A later miss may
///    recover the line from there (probabilistically, deterministic per-line)
///    without any memory traffic.
///  * When every core is active the victim store has zero capacity, so each
///    core is limited to its hard 5 MB share.
///
/// This is what makes the single-threaded GEMM degrade *gradually* past the
/// 5 MB footprint while the fully-batched GEMM jumps sharply (paper Figs 2-4).
class L3Fabric {
 public:
  L3Fabric(const MachineConfig& cfg, MemController& mem);

  /// Declare how many cores on this socket are running workloads.  Resets the
  /// victim store to (cores_per_socket - n) slices of capacity.
  void set_active_cores(std::uint32_t n);
  std::uint32_t active_cores() const { return active_cores_; }

  enum class Source : std::uint8_t { L3Hit, VictimHit, Memory };

  /// Demand load of `line` by `core`.  Memory reads and any eviction
  /// writebacks are accounted to the MemController.
  Source load_line(std::uint32_t core, std::uint64_t line);

  /// Store with write-allocate: a miss reads the line from memory first
  /// (the paper's "read incurred by the hardware when writing").
  Source store_line(std::uint32_t core, std::uint64_t line);

  /// dcbtst-style software prefetch: fetch into the slice (clean), reading
  /// from memory on a miss.  Returns where the line came from.
  Source prefetch_line(std::uint32_t core, std::uint64_t line);

  /// Write back and drop every line held for `core` (its slice; the shared
  /// victim store is flushed by flush_all()).
  void flush_core(std::uint32_t core);

  /// Write back and drop everything including the victim store.
  void flush_all();

  CacheLevel& slice(std::uint32_t core) { return *slices_[core]; }
  const CacheLevel& victim_store() const { return *victim_; }

  std::uint64_t victim_recoveries() const { return victim_recoveries_; }
  std::uint64_t victim_retention_misses() const { return victim_retention_misses_; }

 private:
  Source access_line(std::uint32_t core, std::uint64_t line, bool make_dirty);
  void cast_out(std::uint64_t line, bool dirty);
  bool retained(std::uint64_t line);

  const MachineConfig& cfg_;
  MemController& mem_;
  std::vector<std::unique_ptr<CacheLevel>> slices_;
  std::unique_ptr<CacheLevel> victim_;
  std::uint32_t active_cores_ = 1;
  std::uint64_t retention_threshold_;  ///< hash cutoff for deterministic retention
  std::uint64_t retention_events_ = 0;
  std::uint64_t victim_recoveries_ = 0;
  std::uint64_t victim_retention_misses_ = 0;
};

}  // namespace papisim::sim
