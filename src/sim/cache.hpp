// Set-associative, write-back LRU cache model operating on line numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace papisim::sim {

/// One cache level.  Addresses are pre-divided by the line size: the cache
/// works on *line numbers* only and stores no data (the simulator is
/// trace-driven; numeric kernels live elsewhere).
///
/// Replacement is true LRU within each set, maintained as a recency-ordered
/// array (way 0 = MRU).  Associativities used in papisim are <= 20, so the
/// per-access shuffle is a short memmove.
class CacheLevel {
 public:
  /// Constructs a cache of `size_bytes` capacity with `associativity` ways
  /// of `line_bytes` lines.  A zero-capacity cache is valid and misses
  /// everything (used for an empty victim store).
  ///
  /// `hashed_sets` applies a hash to the set index (as large L3s do) so that
  /// power-of-two strides -- ubiquitous in the replayed kernels -- do not
  /// collapse onto a handful of sets.  Leave false for textbook modulo
  /// indexing (unit tests of LRU mechanics rely on it).
  CacheLevel(std::uint64_t size_bytes, std::uint32_t associativity,
             std::uint32_t line_bytes, bool hashed_sets = false);

  struct Result {
    bool hit = false;
    bool evicted = false;          ///< a valid line was displaced
    std::uint64_t victim_line = 0; ///< displaced line number (if evicted)
    bool victim_dirty = false;     ///< displaced line was dirty
  };

  /// Lookup with fill-on-miss; `make_dirty` marks the (resulting) line dirty.
  Result access(std::uint64_t line, bool make_dirty);

  /// Lookup without fill or replacement-state change.
  bool contains(std::uint64_t line) const;

  /// Fill a line without lookup semantics (used for cast-out insertion).
  /// Equivalent to access() for eviction behaviour.
  Result insert(std::uint64_t line, bool dirty) { return access_impl(line, dirty, true); }

  /// Remove a line if present; returns {was_present, was_dirty}.
  struct Invalidated { bool present = false; bool dirty = false; };
  Invalidated invalidate(std::uint64_t line);

  /// Drain every valid line through `sink(line, dirty)` and empty the cache.
  void flush(const std::function<void(std::uint64_t, bool)>& sink);

  std::uint64_t size_bytes() const { return size_bytes_; }
  std::uint32_t associativity() const { return assoc_; }
  std::uint32_t sets() const { return sets_; }
  std::uint64_t capacity_lines() const { return static_cast<std::uint64_t>(sets_) * assoc_; }
  std::uint64_t valid_lines() const { return valid_count_; }

  // Access statistics (monotonic since construction or reset_stats()).
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_stats() { hits_ = misses_ = 0; }

 private:
  Result access_impl(std::uint64_t line, bool make_dirty, bool is_insert);

  std::uint64_t set_index(std::uint64_t line) const {
    if (hashed_sets_) {
      // Stafford mix (hash64 inlined); deterministic per line.
      line ^= line >> 33;
      line *= 0xff51afd7ed558ccdULL;
      line ^= line >> 33;
    }
    if (pow2_sets_) return line & set_mask_;
    // Lemire fastmod: exact line % sets_ without a hardware divide.
    const std::uint64_t lowbits = fastmod_m_ * line;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(lowbits) * sets_) >> 64);
  }

  static constexpr std::uint64_t kInvalid = ~0ull;

  std::uint64_t size_bytes_;
  std::uint32_t assoc_;
  std::uint32_t line_bytes_;
  std::uint32_t sets_ = 0;
  bool pow2_sets_ = true;
  bool hashed_sets_ = false;
  std::uint64_t set_mask_ = 0;
  std::uint64_t fastmod_m_ = 0;
  std::vector<std::uint64_t> tags_;  ///< sets_ * assoc_
  std::vector<std::uint8_t> dirty_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t valid_count_ = 0;
};

}  // namespace papisim::sim
