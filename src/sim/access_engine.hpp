// Execution-driven replay of kernel access streams at cache-line granularity.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/clock.hpp"
#include "sim/config.hpp"
#include "sim/l3fabric.hpp"
#include "sim/memctrl.hpp"
#include "sim/noise.hpp"
#include "spe/ring.hpp"

namespace papisim::sim {

enum class AccessKind : std::uint8_t { Load, Store };

/// One affine access stream inside an innermost loop:
/// iteration i accesses [base + i*stride, base + i*stride + elem_bytes).
struct StreamDesc {
  std::uint64_t base = 0;
  std::int64_t stride = 0;    ///< bytes between consecutive iterations
  std::uint32_t elem_bytes = 8;
  AccessKind kind = AccessKind::Load;
};

/// An innermost loop: every stream is accessed once per iteration, in the
/// order given.  This is how kernels describe their real loop bodies to the
/// simulator (e.g. GEMV inner loop = {load A-row, load x}, N iterations).
struct LoopDesc {
  std::vector<StreamDesc> streams;
  std::uint64_t iterations = 0;
  double flops_per_iter = 0.0;
  /// Model of GCC -fprefetch-loop-arrays: issue dcbtst-style prefetches for
  /// store streams (forcing their lines into L3) and raise achieved memory
  /// bandwidth for the loop.
  bool sw_prefetch = false;
};

/// Traffic/time accounting for one replay.
struct LoopStats {
  std::uint64_t line_touches = 0;      ///< distinct line events processed
  std::uint64_t mem_read_bytes = 0;    ///< demand + allocate + prefetch reads
  std::uint64_t mem_write_bytes = 0;   ///< bypassed stores + eviction writebacks
  std::uint64_t l3_hits = 0;
  std::uint64_t victim_hits = 0;
  std::uint64_t bypassed_store_lines = 0;
  std::uint64_t allocated_store_lines = 0;
  /// Stride-mix split of line_touches, using the StreamDetector taxonomy
  /// (stream_detect.hpp): touches from streams advancing by exactly one line
  /// are sequential, touches from Stride-N streams (constant delta of >= 2
  /// lines) are strided.  Scalar accesses count as neither.  The split is
  /// the raw material of the sampled-replay window signature (DESIGN.md §3i).
  std::uint64_t seq_line_touches = 0;
  std::uint64_t strided_line_touches = 0;
  double time_ns = 0.0;
  double flops = 0.0;

  LoopStats& operator+=(const LoopStats& o);
};

/// Cumulative per-core activity counters (the CPU component's substrate).
struct CoreCounters {
  std::uint64_t flops = 0;         ///< floating-point operations retired
  std::uint64_t line_touches = 0;  ///< L3-level accesses
  std::uint64_t l3_hits = 0;
  std::uint64_t victim_hits = 0;
  std::uint64_t seq_line_touches = 0;      ///< stride-mix: one-line advances
  std::uint64_t strided_line_touches = 0;  ///< stride-mix: Stride-N streams
  double busy_ns = 0.0;            ///< time this core spent executing

  std::uint64_t l3_misses() const { return line_touches - l3_hits - victim_hits; }
  /// Synthetic instruction estimate: one fused op per flop plus the
  /// load/store/address work of each line touch.
  std::uint64_t instructions() const { return flops + 4 * line_touches; }
};

/// Per-core replay engine.  Applies the micro-architectural policies the
/// paper invokes (DESIGN.md §3):
///
///  * loads/stores walk the sliced L3 (write-back, write-allocate);
///  * a store stream bypasses the cache iff it is contiguous, the loop is
///    store-dense (<= bypass_max_loads_per_store load streams per store
///    stream), bypass is enabled, and no strided stream is detected;
///  * sw_prefetch forces store-stream lines to be *read* into L3 first;
///  * every memory transaction is 64 B and lands on an MBA channel.
///
/// The engine advances the virtual clock (and accrues measurement noise over
/// the elapsed time) after each replay -- unless deferred-time mode is on, in
/// which case elapsed time accumulates locally and the replay driver advances
/// the shared clock once (by the maximum across cores) after joining its
/// workers.  Deferral is what gives parallel replay the serial max-merge
/// timeline instead of summing concurrent cores' time.
///
/// Thread safety: one engine is single-threaded (one simulated core == one
/// driving thread); *different* engines may replay concurrently.  All traffic
/// an engine reports in LoopStats is counted per access (L3Fabric::Traffic),
/// never by diffing the MemController's global counters, so concurrent cores
/// cannot leak into each other's statistics.
class AccessEngine {
 public:
  AccessEngine(const MachineConfig& cfg, std::uint32_t core, L3Fabric& l3,
               MemController& mem, SimClock& clock, NoiseModel& noise);

  /// Replay a full innermost-loop nest execution.
  LoopStats execute(const LoopDesc& loop);

  /// Scalar accesses (used for sparse stores such as y[i]/C[i][j] and by
  /// tests).  Scalar stores never bypass: the hardware cannot prove density.
  void load(std::uint64_t addr, std::uint32_t bytes);
  void store(std::uint64_t addr, std::uint32_t bytes);

  /// dcbtst analogue: prefetch the line holding `addr` into L3.
  void prefetch(std::uint64_t addr);

  /// Accumulated scalar-access traffic/time since the last call; scalar ops
  /// are cheap bookkeeping and do not advance the clock individually.
  LoopStats take_scalar_stats();

  std::uint32_t core() const { return core_; }

  /// Deferred-time mode: replay time accumulates in this engine instead of
  /// advancing the shared clock/noise.  Used by literal per-core replay so
  /// the driver can max-merge core times after the parallel join.
  void set_deferred_time(bool on) { deferred_time_ = on; }
  bool deferred_time() const { return deferred_time_; }

  /// Drain the time accumulated while deferred (ns since the last take).
  double take_deferred_time_ns() {
    const double t = pending_ns_;
    pending_ns_ = 0.0;
    return t;
  }

  /// Monotonic activity totals since construction.
  const CoreCounters& counters() const { return counters_; }

  /// Attach/detach a precise-event sampler (DESIGN.md §3g).  When attached,
  /// every demand line touch (loop replay and scalar accesses; software
  /// prefetches excluded) is offered to the sampler, which records 1-in-N of
  /// them.  Compiled out entirely under PAPISIM_SPE=OFF.  The sampler must
  /// outlive any replay that runs while attached; attach/detach only while
  /// this core is quiescent (same contract as set_deferred_time).
  void set_spe(spe::CoreSampler* sampler) { spe_ = sampler; }
  spe::CoreSampler* spe() const { return spe_; }

 private:
  std::uint64_t line_of(std::uint64_t addr) const { return addr / cfg_.line_bytes; }
  void account(LoopStats& s, L3Fabric::Source src);

  const MachineConfig& cfg_;
  std::uint32_t core_;
  L3Fabric& l3_;
  MemController& mem_;
  SimClock& clock_;
  NoiseModel& noise_;
  /// Virtual timestamp SPE samples carry: shared clock plus this core's
  /// deferred time -- a per-core-deterministic quantity under both serial
  /// and parallel replay (the driver advances the shared clock only at
  /// batch joins).
  std::uint64_t spe_time_ns() const {
    return static_cast<std::uint64_t>(clock_.now_ns() + pending_ns_);
  }

  LoopStats scalar_stats_;
  CoreCounters counters_;
  spe::CoreSampler* spe_ = nullptr;
  bool deferred_time_ = false;
  double pending_ns_ = 0.0;
};

}  // namespace papisim::sim
