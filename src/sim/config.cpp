#include "sim/config.hpp"

namespace papisim::sim {

namespace {
/// Distinct noise sequences per system (FNV-1a over the name).
std::uint64_t seed_for(const char* name) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = name; *p != '\0'; ++p) {
    h = (h ^ static_cast<unsigned char>(*p)) * 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

MachineConfig MachineConfig::summit() {
  MachineConfig cfg;
  cfg.name = "summit";
  cfg.noise.seed = seed_for("summit");
  cfg.sockets = 2;
  cfg.cores_per_socket = 21;  // 22 cores, one reserved for system services
  cfg.physical_cores_per_socket = 22;
  cfg.smt = 4;                // cpu ids 0..87 socket 0, 88..175 socket 1
  cfg.user_uid = 1001;        // ordinary users: no elevated privileges
  return cfg;
}

MachineConfig MachineConfig::tellico() {
  MachineConfig cfg;
  cfg.name = "tellico";
  cfg.noise.seed = seed_for("tellico");
  cfg.sockets = 2;
  cfg.cores_per_socket = 16;
  cfg.physical_cores_per_socket = 16;
  cfg.smt = 4;
  cfg.user_uid = 0;  // elevated privileges: direct perf_uncore access
  return cfg;
}

MachineConfig MachineConfig::power10_preview() {
  MachineConfig cfg;
  cfg.name = "power10-preview";
  cfg.noise.seed = seed_for("power10-preview");
  cfg.sockets = 2;
  cfg.cores_per_socket = 15;
  cfg.physical_cores_per_socket = 16;
  cfg.smt = 8;
  cfg.l3_slice_bytes = 8ull << 20;  // 8 MB L3 share per core
  cfg.mem_channels = 16;            // OMI channels
  cfg.mem_bw_bytes_per_sec = 400e9;
  cfg.core_flops = 30e9;
  cfg.core_freq_hz = 3.9e9;
  cfg.user_uid = 1001;
  return cfg;
}

}  // namespace papisim::sim
