// Per-socket memory controller ("nest") with MBA-channel byte counters.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace papisim::sim {

/// Direction of a memory transaction, mirroring the POWER9 nest events
/// PM_MBA[ch]_READ_BYTES / PM_MBA[ch]_WRITE_BYTES.
enum class MemDir : std::uint8_t { Read = 0, Write = 1 };

/// The socket's memory controller.  Physical lines are interleaved across
/// `channels` MBA channels at a configurable granularity; each channel keeps
/// monotonically increasing READ/WRITE byte counters.
///
/// Counters are atomics because the PCP daemon (PMCD) reads them from its own
/// thread and the parallel replay engine increments them from one worker per
/// simulated core.  All increments are commutative relaxed adds, so per-channel
/// totals are independent of worker interleaving -- the property the
/// serial-vs-parallel replay equivalence test pins down.
class MemController {
 public:
  MemController(std::uint32_t channels, std::uint32_t line_bytes,
                std::uint32_t interleave_lines);

  std::uint32_t channels() const { return channels_; }

  /// Channel owning a given line number.
  std::uint32_t channel_of(std::uint64_t line) const {
    const std::uint64_t granule = line >> interleave_shift_;
    return pow2_channels_
               ? static_cast<std::uint32_t>(granule & channel_mask_)
               : static_cast<std::uint32_t>(granule % channels_);
  }

  /// Account one full-line transaction for `line`.
  void add_line(std::uint64_t line, MemDir dir) {
    const std::uint32_t ch = channel_of(line);
    counter(ch, dir).fetch_add(line_bytes_, std::memory_order_relaxed);
    op_counter(ch, dir).fetch_add(1, std::memory_order_relaxed);
  }

  /// Account `bytes` of traffic spread round-robin over all channels
  /// (used by the noise model and DMA engines without specific addresses).
  void add_spread(std::uint64_t bytes, MemDir dir);

  /// Account `bytes` on a specific channel (used to replay a recorded
  /// per-channel traffic delta, e.g. deterministic kernel repetitions).
  void add_channel_bytes(std::uint32_t channel, MemDir dir, std::uint64_t bytes) {
    counter(channel, dir).fetch_add(bytes, std::memory_order_relaxed);
  }

  std::uint64_t channel_bytes(std::uint32_t channel, MemDir dir) const {
    return counter(channel, dir).load(std::memory_order_relaxed);
  }

  /// Transaction (request) count per channel; spread traffic is accounted
  /// as ceil(bytes / line) requests.
  std::uint64_t channel_ops(std::uint32_t channel, MemDir dir) const {
    return op_counter(channel, dir).load(std::memory_order_relaxed);
  }

  std::uint64_t total_bytes(MemDir dir) const;
  std::uint64_t total_ops(MemDir dir) const;

  /// Snapshot of all channel counters: [channel][read,write].
  std::vector<std::array<std::uint64_t, 2>> snapshot() const;

  std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  std::atomic<std::uint64_t>& counter(std::uint32_t ch, MemDir dir) {
    return counters_[ch * 2 + static_cast<std::uint32_t>(dir)];
  }
  const std::atomic<std::uint64_t>& counter(std::uint32_t ch, MemDir dir) const {
    return counters_[ch * 2 + static_cast<std::uint32_t>(dir)];
  }
  std::atomic<std::uint64_t>& op_counter(std::uint32_t ch, MemDir dir) {
    return op_counters_[ch * 2 + static_cast<std::uint32_t>(dir)];
  }
  const std::atomic<std::uint64_t>& op_counter(std::uint32_t ch, MemDir dir) const {
    return op_counters_[ch * 2 + static_cast<std::uint32_t>(dir)];
  }

  std::uint32_t channels_;
  std::uint32_t line_bytes_;
  std::uint32_t interleave_lines_;
  std::uint32_t interleave_shift_ = 0;
  bool pow2_channels_ = true;
  std::uint32_t channel_mask_ = 0;
  std::atomic<std::uint32_t> spread_cursor_{0};
  std::vector<std::atomic<std::uint64_t>> counters_;
  std::vector<std::atomic<std::uint64_t>> op_counters_;
};

}  // namespace papisim::sim
