#include "sim/l3fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "selfmon/metrics.hpp"
#include "sim/rng.hpp"

namespace papisim::sim {

namespace {

/// Flush the stripe-local selfmon staging counters every this many
/// acquisitions.  Large enough to amortize the (comparatively costly)
/// registry TLS write out of the per-access path, small enough that any
/// profiled region of consequence sees its counts.
constexpr std::uint64_t kSelfmonFlushEvery = 64;

/// One access in this many probes for contention with a try_lock.
/// pthread_mutex_trylock is markedly slower than the uncontended lock fast
/// path on some hosts (measured ~18% of GEMM replay throughput when probing
/// every access), so contention is sampled: each contended probe stands for
/// kSelfmonProbeEvery acquisitions, making l3.stripe_contention an estimate
/// directly comparable to l3.stripe_acquisitions.  The sample is selected
/// by line-address bits (the cheapest signal already in a register on the
/// access path -- even a per-thread counter tick was measurable there);
/// streaming kernels sample uniformly, and the bias for tiny re-walked
/// footprints only affects the contention estimate, never the exact
/// acquisition count.  Power of two: must stay a valid address mask.
constexpr std::uint64_t kSelfmonProbeEvery = 64;

}  // namespace

/// Stripe lock with batched selfmon accounting.  The counts stage in plain
/// fields of the stripe -- its cache line is exclusive while the mutex is
/// held, so the increments are effectively free -- and flush to the selfmon
/// registry every kSelfmonFlushEvery acquisitions.  Contention is detected
/// by sampled try_lock probes (see kSelfmonProbeEvery).  Compiles down to a
/// plain lock when the instrumentation is off.
[[gnu::cold, gnu::noinline]] void L3Fabric::flush_stripe_selfmon(
    Stripe& stripe) {
  selfmon::counter_add(selfmon::CounterId::L3StripeAcquisitions,
                       stripe.selfmon_acquisitions);
  if (stripe.selfmon_contention != 0) {
    selfmon::counter_add(selfmon::CounterId::L3StripeContention,
                         stripe.selfmon_contention);
  }
  stripe.selfmon_acquisitions = 0;
  stripe.selfmon_contention = 0;
}

// Force-inlined into every call site: the per-access replay path runs at a
// few tens of ns per line, where an out-of-line call returning a unique_lock
// by value is itself a measurable fraction of the budget.
__attribute__((always_inline)) inline std::unique_lock<std::mutex>
L3Fabric::lock_stripe(Stripe& stripe, bool probe) {
  if constexpr (selfmon::kEnabled) {
    if (probe) [[unlikely]] {
      std::unique_lock<std::mutex> lock(stripe.mu, std::try_to_lock);
      if (!lock.owns_lock()) {
        lock.lock();
        stripe.selfmon_contention += kSelfmonProbeEvery;
      }
      if (++stripe.selfmon_acquisitions >= kSelfmonFlushEvery) {
        flush_stripe_selfmon(stripe);
      }
      return lock;
    }
    std::unique_lock<std::mutex> lock(stripe.mu);
    if (++stripe.selfmon_acquisitions >= kSelfmonFlushEvery) {
      flush_stripe_selfmon(stripe);
    }
    return lock;
  } else {
    (void)probe;
    return std::unique_lock<std::mutex>(stripe.mu);
  }
}

L3Fabric::L3Fabric(const MachineConfig& cfg, MemController& mem)
    : cfg_(cfg), mem_(mem) {
  stripes_.reserve(cfg.cores_per_socket);
  for (std::uint32_t c = 0; c < cfg.cores_per_socket; ++c) {
    auto stripe = std::make_unique<Stripe>();
    stripe->slice = std::make_unique<CacheLevel>(
        cfg.l3_slice_bytes, cfg.l3_associativity, cfg.line_bytes,
        /*hashed_sets=*/true);
    stripes_.push_back(std::move(stripe));
  }
  // Clamp: retention >= 1.0 must map to "always retained" (the cast of
  // 1.0 * 2^64 to uint64 would otherwise overflow).
  retention_threshold_ =
      cfg.castout_retention >= 1.0
          ? ~0ull
          : static_cast<std::uint64_t>(cfg.castout_retention * 0x1p64);
  set_active_cores(1);
}

void L3Fabric::set_active_cores(std::uint32_t n) {
  if (n == 0 || n > cfg_.cores_per_socket) {
    throw std::invalid_argument("L3Fabric: active cores out of range");
  }
  active_cores_ = n;
  const std::uint32_t idle = cfg_.cores_per_socket - n;
  // The idle cores' aggregate capacity is fair-shared: each active core gets
  // its own victim partition so cores never contend for (or observe) each
  // other's cast-outs.  Partitioning is what keeps a per-core replay
  // deterministic regardless of how worker threads interleave.
  const std::uint64_t capacity =
      cfg_.lateral_castout
          ? static_cast<std::uint64_t>(idle) * cfg_.l3_slice_bytes / n
          : 0;
  for (auto& stripe : stripes_) {
    const auto lock = lock_stripe(*stripe);
    // The victim store aggregates many remote slices; model it with a lower
    // associativity (it is a recovery approximation, not a real cache -- the
    // retention probability already dominates its behaviour) to keep the
    // simulator's hottest miss path cheap.
    stripe->victim = std::make_unique<CacheLevel>(capacity, 8, cfg_.line_bytes,
                                                  /*hashed_sets=*/true);
  }
}

bool L3Fabric::retained(Stripe& stripe, std::uint64_t line) {
  // Per-recovery-event probability (deterministic sequence): a fraction of
  // lateral-cast-out recoveries fail and must re-fetch from memory.  This is
  // what makes the lone-core traffic exceed the expectation *gradually* as
  // the footprint spills past the local slice (paper Figs. 2-4 (a) panels).
  // The event counter is per stripe so each core sees the same sequence it
  // would in a serial replay, independent of the other cores' progress.
  ++stripe.retention_events;
  return hash64(line ^ (stripe.retention_events * 0x9e3779b97f4a7c15ULL)) <=
         retention_threshold_;
}

void L3Fabric::cast_out(Stripe& stripe, std::uint64_t line, bool dirty,
                        Traffic* t) {
  if (stripe.victim->capacity_lines() == 0) {
    if (dirty) {
      mem_.add_line(line, MemDir::Write);
      if (t) ++t->write_lines;
    }
    return;
  }
  const CacheLevel::Result r = stripe.victim->insert(line, dirty);
  if (r.evicted && r.victim_dirty) {
    mem_.add_line(r.victim_line, MemDir::Write);
    if (t) ++t->write_lines;
  }
}

L3Fabric::Source L3Fabric::access_line(std::uint32_t core, std::uint64_t line,
                                       bool make_dirty, Traffic* t) {
  Stripe& stripe = *stripes_[core];
  const auto lock =
      lock_stripe(stripe, (line & (kSelfmonProbeEvery - 1)) == 0);
  const CacheLevel::Result r = stripe.slice->access(line, make_dirty);
  if (r.hit) return Source::L3Hit;

  // Miss: access() already filled the line (with the right dirty bit) and
  // reported the displaced victim; cast that victim out laterally.
  if (r.evicted) cast_out(stripe, r.victim_line, r.victim_dirty, t);

  // Did the line come from a lateral cast-out (victim store) or from memory?
  const CacheLevel::Invalidated inv = stripe.victim->invalidate(line);
  if (inv.present) {
    if (retained(stripe, line)) {
      victim_recoveries_.fetch_add(1, std::memory_order_relaxed);
      return Source::VictimHit;
    }
    victim_retention_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  mem_.add_line(line, MemDir::Read);
  if (t) ++t->read_lines;
  return Source::Memory;
}

L3Fabric::Source L3Fabric::load_line(std::uint32_t core, std::uint64_t line,
                                     Traffic* t) {
  return access_line(core, line, /*make_dirty=*/false, t);
}

L3Fabric::Source L3Fabric::store_line(std::uint32_t core, std::uint64_t line,
                                      Traffic* t) {
  // Write-allocate: a miss reads the line from memory before the partial
  // write (the paper's "read incurred by the hardware when writing").
  return access_line(core, line, /*make_dirty=*/true, t);
}

L3Fabric::Source L3Fabric::prefetch_line(std::uint32_t core, std::uint64_t line,
                                         Traffic* t) {
  return load_line(core, line, t);
}

void L3Fabric::flush_core(std::uint32_t core) {
  Stripe& stripe = *stripes_[core];
  const auto lock = lock_stripe(stripe);
  stripe.slice->flush([this](std::uint64_t line, bool dirty) {
    if (dirty) mem_.add_line(line, MemDir::Write);
  });
}

void L3Fabric::flush_all() {
  for (std::uint32_t c = 0; c < cfg_.cores_per_socket; ++c) flush_core(c);
  for (auto& stripe : stripes_) {
    const auto lock = lock_stripe(*stripe);
    stripe->victim->flush([this](std::uint64_t line, bool dirty) {
      if (dirty) mem_.add_line(line, MemDir::Write);
    });
  }
}

std::uint64_t L3Fabric::total_slice_lookups() const {
  std::uint64_t total = 0;
  for (const auto& stripe : stripes_) {
    total += stripe->slice->hits() + stripe->slice->misses();
  }
  return total;
}

}  // namespace papisim::sim
