#include "sim/l3fabric.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/rng.hpp"

namespace papisim::sim {

L3Fabric::L3Fabric(const MachineConfig& cfg, MemController& mem)
    : cfg_(cfg), mem_(mem) {
  slices_.reserve(cfg.cores_per_socket);
  for (std::uint32_t c = 0; c < cfg.cores_per_socket; ++c) {
    slices_.push_back(std::make_unique<CacheLevel>(
        cfg.l3_slice_bytes, cfg.l3_associativity, cfg.line_bytes,
        /*hashed_sets=*/true));
  }
  // Clamp: retention >= 1.0 must map to "always retained" (the cast of
  // 1.0 * 2^64 to uint64 would otherwise overflow).
  retention_threshold_ =
      cfg.castout_retention >= 1.0
          ? ~0ull
          : static_cast<std::uint64_t>(cfg.castout_retention * 0x1p64);
  set_active_cores(1);
}

void L3Fabric::set_active_cores(std::uint32_t n) {
  if (n == 0 || n > cfg_.cores_per_socket) {
    throw std::invalid_argument("L3Fabric: active cores out of range");
  }
  active_cores_ = n;
  const std::uint32_t idle = cfg_.cores_per_socket - n;
  const std::uint64_t capacity =
      cfg_.lateral_castout ? static_cast<std::uint64_t>(idle) * cfg_.l3_slice_bytes : 0;
  // The victim store aggregates many remote slices; model it with a lower
  // associativity (it is a recovery approximation, not a real cache -- the
  // retention probability already dominates its behaviour) to keep the
  // simulator's hottest miss path cheap.
  victim_ = std::make_unique<CacheLevel>(capacity, 8, cfg_.line_bytes,
                                         /*hashed_sets=*/true);
}

bool L3Fabric::retained(std::uint64_t line) {
  // Per-recovery-event probability (deterministic sequence): a fraction of
  // lateral-cast-out recoveries fail and must re-fetch from memory.  This is
  // what makes the lone-core traffic exceed the expectation *gradually* as
  // the footprint spills past the local slice (paper Figs. 2-4 (a) panels).
  ++retention_events_;
  return hash64(line ^ (retention_events_ * 0x9e3779b97f4a7c15ULL)) <=
         retention_threshold_;
}

void L3Fabric::cast_out(std::uint64_t line, bool dirty) {
  if (victim_->capacity_lines() == 0) {
    if (dirty) mem_.add_line(line, MemDir::Write);
    return;
  }
  const CacheLevel::Result r = victim_->insert(line, dirty);
  if (r.evicted && r.victim_dirty) mem_.add_line(r.victim_line, MemDir::Write);
}

L3Fabric::Source L3Fabric::access_line(std::uint32_t core, std::uint64_t line,
                                       bool make_dirty) {
  CacheLevel& slice = *slices_[core];
  const CacheLevel::Result r = slice.access(line, make_dirty);
  if (r.hit) return Source::L3Hit;

  // Miss: access() already filled the line (with the right dirty bit) and
  // reported the displaced victim; cast that victim out laterally.
  if (r.evicted) cast_out(r.victim_line, r.victim_dirty);

  // Did the line come from a lateral cast-out (victim store) or from memory?
  const CacheLevel::Invalidated inv = victim_->invalidate(line);
  if (inv.present) {
    if (retained(line)) {
      ++victim_recoveries_;
      return Source::VictimHit;
    }
    ++victim_retention_misses_;
  }
  mem_.add_line(line, MemDir::Read);
  return Source::Memory;
}

L3Fabric::Source L3Fabric::load_line(std::uint32_t core, std::uint64_t line) {
  return access_line(core, line, /*make_dirty=*/false);
}

L3Fabric::Source L3Fabric::store_line(std::uint32_t core, std::uint64_t line) {
  // Write-allocate: a miss reads the line from memory before the partial
  // write (the paper's "read incurred by the hardware when writing").
  return access_line(core, line, /*make_dirty=*/true);
}

L3Fabric::Source L3Fabric::prefetch_line(std::uint32_t core, std::uint64_t line) {
  return load_line(core, line);
}

void L3Fabric::flush_core(std::uint32_t core) {
  slices_[core]->flush([this](std::uint64_t line, bool dirty) {
    if (dirty) mem_.add_line(line, MemDir::Write);
  });
}

void L3Fabric::flush_all() {
  for (std::uint32_t c = 0; c < cfg_.cores_per_socket; ++c) flush_core(c);
  victim_->flush([this](std::uint64_t line, bool dirty) {
    if (dirty) mem_.add_line(line, MemDir::Write);
  });
}

}  // namespace papisim::sim
