// Stride-N hardware stream detector (POWER9 prefetch engine model).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <vector>

namespace papisim::sim {

/// Detects data streams from per-stream line-touch sequences.
///
/// POWER ISA 3.0: "hardware may detect Stride-N streams in intervals when
/// they access elements that map to sequential cache blocks".  We classify a
/// stream as *sequential* when consecutive line touches advance by exactly
/// one line, and as *strided* when they advance by a constant of two or more
/// lines for `threshold` consecutive touches.
///
/// Whether any strided stream is currently active gates the streaming-store
/// cache bypass (see AccessEngine): "In the presence of a strided data
/// stream, the writes to variables will not bypass the cache".
class StreamDetector {
 public:
  explicit StreamDetector(std::uint32_t threshold) : threshold_(threshold) {}

  /// Prepare to track `n` streams; clears all detection state.
  void begin(std::size_t n) {
    streams_.assign(n, State{});
    strided_active_ = 0;
  }

  /// Observe that stream `s` touched line `line`.
  void observe(std::size_t s, std::uint64_t line) {
    State& st = streams_[s];
    if (st.has_last) {
      const std::int64_t delta =
          static_cast<std::int64_t>(line) - static_cast<std::int64_t>(st.last_line);
      if (delta == st.last_delta && delta != 0) {
        if (st.run < threshold_) {
          ++st.run;
          if (st.run == threshold_ && std::llabs(delta) >= 2) {
            st.strided = true;
            ++strided_active_;
          }
        }
      } else if (delta != 0) {
        if (st.strided) {
          st.strided = false;
          --strided_active_;
        }
        st.last_delta = delta;
        st.run = 1;
      }
    }
    st.last_line = line;
    st.has_last = true;
  }

  /// True when at least one tracked stream is in the strided state.
  bool any_strided() const { return strided_active_ > 0; }

  bool is_strided(std::size_t s) const { return streams_[s].strided; }
  bool is_sequential(std::size_t s) const {
    const State& st = streams_[s];
    return st.run >= threshold_ && (st.last_delta == 1 || st.last_delta == -1);
  }

 private:
  struct State {
    std::uint64_t last_line = 0;
    std::int64_t last_delta = 0;
    std::uint32_t run = 0;
    bool has_last = false;
    bool strided = false;
  };

  std::uint32_t threshold_;
  std::vector<State> streams_;
  std::uint32_t strided_active_ = 0;
};

}  // namespace papisim::sim
