// Small deterministic PRNG utilities.
//
// The simulator must be exactly reproducible across runs, so all stochastic
// behaviour (noise jitter, cast-out retention) goes through these helpers
// rather than <random> engines whose sequences vary between libstdc++
// versions.
#pragma once

#include <cmath>
#include <cstdint>

namespace papisim::sim {

/// SplitMix64: tiny, high-quality 64-bit generator (public-domain algorithm).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via Box-Muller (uses two uniforms per call).
  double next_normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Lognormal multiplier with mean 1:  exp(sigma*Z - sigma^2/2).
  double next_lognormal_unit_mean(double sigma) {
    return std::exp(sigma * next_normal() - 0.5 * sigma * sigma);
  }

 private:
  std::uint64_t state_;
};

/// Stateless 64-bit mix, used for deterministic per-line decisions
/// (e.g. cast-out retention) that must not depend on access order.
inline std::uint64_t hash64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace papisim::sim
