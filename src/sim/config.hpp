// Machine configuration for the papisim execution-driven memory simulator.
//
// The simulator models the memory-traffic-relevant mechanisms of an IBM
// POWER9 socket as described in the reproduced paper: per-core L3 slices
// with lateral cast-out, a Stride-N stream detector, cache-bypassing
// streaming stores, software prefetch (dcbtst), and an 8-channel memory
// controller ("nest" MBA channels) with per-channel READ/WRITE byte
// counters.
#pragma once

#include <cstdint>
#include <string>

namespace papisim::sim {

/// Geometry of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t associativity = 1;
};

/// Measurement-noise parameters.  See DESIGN.md §3 ("Noise + virtual time").
///
/// The dominant error source for short-running kernels is a per-repetition
/// overhead (harness setup, cache flushing, OS activity around start/stop),
/// which is why the paper amortizes it with repetitions (Eq. 5).  A small
/// rate-based background term models daemon traffic over time.
struct NoiseConfig {
  double rep_read_overhead_bytes = 6e3;     ///< mean extraneous reads per repetition
  double rep_write_overhead_bytes = 1.5e3;  ///< mean extraneous writes per repetition
  double measure_read_overhead_bytes = 2.5e6;  ///< per start/stop measurement window
  double measure_write_overhead_bytes = 4e5;
  double background_read_bytes_per_sec = 2e6;   ///< OS/daemon background traffic
  double background_write_bytes_per_sec = 1e6;
  double jitter_sigma = 0.6;                ///< lognormal sigma of the overhead terms
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

/// Full machine description.  Presets model the two systems of the paper.
struct MachineConfig {
  std::string name = "generic-power9";

  std::uint32_t sockets = 2;
  std::uint32_t cores_per_socket = 21;  ///< usable cores (Summit: 22 minus 1 service core)
  /// Physical cores per socket, including any reserved for system services;
  /// hardware-thread (cpu) ids are numbered over these, so on Summit cpus
  /// 0..87 belong to socket 0 and 88..175 to socket 1 (the paper's cpu87 /
  /// cpu175 qualifiers name the last hardware thread of each socket).
  std::uint32_t physical_cores_per_socket = 22;
  std::uint32_t smt = 4;                ///< hardware threads per core (cpu-id mapping)

  /// Memory transaction granularity.  POWER9 has 128 B cache lines but can
  /// fetch 64 B half-lines from memory; we model a 64 B sectored line, which
  /// is traffic-equivalent (DESIGN.md §5).
  std::uint32_t line_bytes = 64;

  CacheConfig l1{32ull << 10, 8};
  CacheConfig l2{256ull << 10, 8};

  /// Per-core L3 share under full contention (half of a 10 MB core-pair slice).
  std::uint64_t l3_slice_bytes = 5ull << 20;
  std::uint32_t l3_associativity = 20;

  /// Lateral cast-out: capacity victims of an active core spill into idle
  /// cores' slices and may be recovered later (POWER9 L3 victim behaviour).
  bool lateral_castout = true;
  /// Fraction of lateral cast-out recoveries that succeed (per recovery
  /// event).  < 1 produces the paper's *gradual* divergence of
  /// single-threaded kernels whose footprint exceeds the local 5 MB slice
  /// (Figs. 2-4 (a) panels) without the sharp jump of the batched runs.
  double castout_retention = 0.99;

  /// Streaming stores that bypass the cache (no read-for-ownership) when the
  /// store stream is dense and sequential and no strided stream is detected.
  bool store_bypass = true;
  std::uint32_t bypass_max_loads_per_store = 2;

  /// Stride-N stream detector: consecutive constant line-strides (>= 2 lines)
  /// required before a stream is flagged "strided".
  std::uint32_t stream_detect_threshold = 4;

  std::uint32_t mem_channels = 8;  ///< MBA channels per socket
  /// Address-interleave granularity across channels, in lines (2 lines = 128 B).
  std::uint32_t channel_interleave_lines = 2;

  // --- virtual-time model (coarse; absolute performance is out of scope) ---
  double mem_bw_bytes_per_sec = 110e9;  ///< per-socket sustained DRAM bandwidth
  double mem_bw_utilization = 0.55;     ///< achieved fraction without sw prefetch
  double mem_bw_utilization_prefetch = 0.90;  ///< with -fprefetch-loop-arrays
  double core_flops = 15e9;             ///< reference-kernel fp64 rate per core
  double core_freq_hz = 3.45e9;         ///< nominal core clock
  double l3_hit_ns = 0.35;              ///< amortized per-line-touch cost

  double pcp_fetch_latency_ns = 30e3;   ///< PMCD round-trip per fetch

  /// uid of the ordinary user on this system; nest counters require uid 0.
  std::uint32_t user_uid = 1001;

  NoiseConfig noise{};

  /// Total hardware-thread ids on the node (cpu qualifier range).
  std::uint32_t usable_cpus() const {
    return sockets * physical_cores_per_socket * smt;
  }
  /// Hardware threads per socket (for cpu-id -> socket mapping).
  std::uint32_t cpus_per_socket() const { return physical_cores_per_socket * smt; }

  /// Summit compute node: 2 x 22-core POWER9 (21 usable), 110 MB L3/socket,
  /// ordinary users are NOT privileged (must use PCP).
  static MachineConfig summit();

  /// Tellico testbed: 2 x 16-core POWER9, users ARE privileged (uid 0),
  /// nest counters readable directly (perf_uncore).
  static MachineConfig tellico();

  /// Speculative POWER10-class node (the paper's future-work target):
  /// 15 usable SMT8 cores, bigger per-core L3 share, more memory channels
  /// (OMI), higher bandwidth.  Used by the forward-looking ablation bench.
  static MachineConfig power10_preview();
};

}  // namespace papisim::sim
