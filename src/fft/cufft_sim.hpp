// cuFFT-style batched 1D-FFT plans executing on the simulated GPU.
#pragma once

#include <cstddef>
#include <span>

#include "fft/fft1d.hpp"
#include "gpu/gpu_device.hpp"

namespace papisim::fft {

/// A plan for `batch` transforms of length `n` (cufftPlan1d analogue).
/// execute() performs the *real* math on the given host-visible buffer while
/// charging the device's kernel-time/power model, so applications get both
/// correct numerics and a faithful Fig.-11-style power profile.
class CufftPlan {
 public:
  CufftPlan(gpu::GpuDevice& device, std::size_t n, std::size_t batch)
      : device_(device), n_(n), batch_(batch) {}

  std::size_t n() const { return n_; }
  std::size_t batch() const { return batch_; }

  /// ~5 N log2 N flops per transform (standard FFT cost model).
  double flop_count() const;

  /// Numeric batched transform + device-side timing/power accounting.
  void execute(std::span<cplx> data, bool inverse = false);

  /// Device-side accounting only (for trace-driven runs without data).
  void execute_sim_only();

 private:
  gpu::GpuDevice& device_;
  std::size_t n_;
  std::size_t batch_;
};

}  // namespace papisim::fft
