#include "fft/cufft_sim.hpp"

#include <cmath>
#include <stdexcept>

namespace papisim::fft {

double CufftPlan::flop_count() const {
  return 5.0 * static_cast<double>(n_) * std::log2(static_cast<double>(n_)) *
         static_cast<double>(batch_);
}

void CufftPlan::execute(std::span<cplx> data, bool inverse) {
  if (data.size() < n_ * batch_) {
    throw std::invalid_argument("CufftPlan::execute: buffer too small");
  }
  fft1d_batch(data, n_, batch_, inverse);
  device_.run_kernel(flop_count());
}

void CufftPlan::execute_sim_only() { device_.run_kernel(flop_count()); }

}  // namespace papisim::fft
