// The data re-sorting routines of the distributed 3D-FFT (paper Section IV):
// store_1st_colwise_forward (S1CF, Listings 5/7/8), store_2nd_colwise_forward
// (S2CF, Listing 9) and their planewise variants.  Each routine exists in two
// forms: a numeric implementation (validated as a bijective permutation) and
// a simulator replay that reproduces its memory-traffic signature.
#pragma once

#include <complex>
#include <cstdint>
#include <span>

#include "mpi/grid.hpp"
#include "sim/machine.hpp"

namespace papisim::fft {

/// Per-rank block dimensions of the 3D array decomposed over an r x c grid:
/// PLANES x ROWS x COLS = (N/r) x (N/c) x N double-complex elements.
struct RankDims {
  std::uint64_t planes = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;

  std::uint64_t elems() const { return planes * rows * cols; }
  std::uint64_t bytes() const { return elems() * 16; }  // double complex

  static RankDims of(std::uint64_t n, const mpi::Grid& grid);
};

// ---------------------------------------------------------------- numeric

/// S1CF loop nest 1 (Listing 5): tmp[plane][row][col] = in[linear].
/// With row-major tmp this is the identity copy; kept explicit because its
/// *traffic* behaviour (streaming stores that bypass the cache) is the
/// paper's Fig. 6 subject.
void s1cf_nest1_numeric(std::span<const std::complex<double>> in,
                        std::span<std::complex<double>> tmp, const RankDims& d);

/// S1CF loop nest 2 (Listing 7): out[col*P*R + plane*R + row] = tmp[p][r][c].
void s1cf_nest2_numeric(std::span<const std::complex<double>> tmp,
                        std::span<std::complex<double>> out, const RankDims& d);

/// S1CF combined (Listing 8): the two nests fused into one permutation.
void s1cf_combined_numeric(std::span<const std::complex<double>> in,
                           std::span<std::complex<double>> out, const RankDims& d);

/// S1PF: planewise variant (plane becomes the fastest output dimension).
void s1pf_combined_numeric(std::span<const std::complex<double>> in,
                           std::span<std::complex<double>> out, const RankDims& d);

/// S2CF (Listing 9): in is ordered [Y][PLANES][X][ROWS], traversed
/// plane-x-y-row; the innermost dimension matches, amortizing the stride.
struct S2Dims {
  std::uint64_t planes = 0;
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t rows = 0;

  std::uint64_t elems() const { return planes * x * y * rows; }

  /// Post-all-to-all layout for an r x c grid block (x = c partners).
  static S2Dims of(const RankDims& d, const mpi::Grid& grid);
};

void s2cf_numeric(std::span<const std::complex<double>> in,
                  std::span<std::complex<double>> out, const S2Dims& d);

/// S2PF: planewise variant of S2CF.
void s2pf_numeric(std::span<const std::complex<double>> in,
                  std::span<std::complex<double>> out, const S2Dims& d);

// -------------------------------------------------------------- simulated

struct ResortBuffers {
  std::uint64_t in = 0, tmp = 0, out = 0;
  static ResortBuffers allocate(sim::AddressSpace& as, std::uint64_t bytes);
};

/// Replay of Listing 5: sequential copy in -> tmp.  Without prefetch the
/// stores bypass the cache (1 read, 1 write per element); with
/// -fprefetch-loop-arrays (dcbtst) tmp is read too (2 reads, 1 write).
sim::LoopStats s1cf_nest1_replay(sim::Machine& m, std::uint32_t socket,
                                 std::uint32_t core, const RankDims& d,
                                 const ResortBuffers& buf, bool prefetch);

/// Replay of Listing 7: strided loads from tmp, sequential stores to out.
/// The strided stream defeats the store bypass (1 write + up to 5 reads per
/// element beyond the Eq. 7 bound).
sim::LoopStats s1cf_nest2_replay(sim::Machine& m, std::uint32_t socket,
                                 std::uint32_t core, const RankDims& d,
                                 const ResortBuffers& buf, bool prefetch);

/// Replay of Listing 8: sequential loads from in, strided stores to out
/// (2 reads, 1 write per element).
sim::LoopStats s1cf_combined_replay(sim::Machine& m, std::uint32_t socket,
                                    std::uint32_t core, const RankDims& d,
                                    const ResortBuffers& buf, bool prefetch);

/// Replay of Listing 9: both sides sequential in the innermost dimension
/// (1 read, 1 write per element).
sim::LoopStats s2cf_replay(sim::Machine& m, std::uint32_t socket,
                           std::uint32_t core, const S2Dims& d,
                           const ResortBuffers& buf, bool prefetch);

/// Planewise variant of the first re-sort: sequential loads from in,
/// strided stores with plane the fastest output dimension.  Same traffic
/// signature as S1CF (the paper: "the structure and performance of S1PF
/// ... are similar to those of S1CF").
sim::LoopStats s1pf_combined_replay(sim::Machine& m, std::uint32_t socket,
                                    std::uint32_t core, const RankDims& d,
                                    const ResortBuffers& buf, bool prefetch);

/// Planewise variant of the second re-sort: innermost dimensions match on
/// both sides (1 read, 1 write per element, like S2CF).
sim::LoopStats s2pf_replay(sim::Machine& m, std::uint32_t socket,
                           std::uint32_t core, const S2Dims& d,
                           const ResortBuffers& buf, bool prefetch);

}  // namespace papisim::fft
