#include "fft/fft3d.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "sim/thread_pool.hpp"

namespace papisim::fft {

void fft3d_local(std::vector<cplx>& data, std::size_t n, bool inverse) {
  if (data.size() != n * n * n) {
    throw std::invalid_argument("fft3d_local: data must be n^3");
  }
  // Three stages of (batched 1D FFT along the contiguous axis, then the
  // S1CF permutation): [x][y][z] -> [z][x][y] -> [y][z][x] -> [x][y][z].
  std::vector<cplx> scratch(data.size());
  RankDims d{n, n, n};
  for (int stage = 0; stage < 3; ++stage) {
    fft1d_batch(data, n, n * n, inverse);
    s1cf_combined_numeric(data, scratch, d);
    data.swap(scratch);
  }
}

std::vector<cplx> dft3_naive(const std::vector<cplx>& data, std::size_t n,
                             bool inverse) {
  if (data.size() != n * n * n) {
    throw std::invalid_argument("dft3_naive: data must be n^3");
  }
  const double sign = inverse ? 2.0 : -2.0;
  const double norm = inverse ? 1.0 / static_cast<double>(n * n * n) : 1.0;
  std::vector<cplx> out(data.size(), cplx{});
  auto tw = [&](std::size_t a, std::size_t b) {
    const double ang = sign * std::numbers::pi * static_cast<double>(a) *
                       static_cast<double>(b) / static_cast<double>(n);
    return cplx(std::cos(ang), std::sin(ang));
  };
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = 0; v < n; ++v)
      for (std::size_t w = 0; w < n; ++w) {
        cplx sum{};
        for (std::size_t x = 0; x < n; ++x)
          for (std::size_t y = 0; y < n; ++y)
            for (std::size_t z = 0; z < n; ++z) {
              sum += data[(x * n + y) * n + z] * tw(u, x) * tw(v, y) * tw(w, z);
            }
        out[(u * n + v) * n + w] = sum * norm;
      }
  return out;
}

// --------------------------------------------------------------- simulated

DistributedFft3d::DistributedFft3d(sim::Machine& machine, Fft3dConfig cfg,
                                   gpu::GpuDevice* gpu, mpi::JobComm* comm)
    : machine_(machine),
      cfg_(cfg),
      dims_(RankDims::of(cfg.n, cfg.grid)),
      s2dims_(S2Dims::of(dims_, cfg.grid)),
      buf_(ResortBuffers::allocate(machine.address_space(), dims_.bytes())),
      gpu_(gpu),
      comm_(comm) {
  if (cfg_.use_gpu && gpu_ == nullptr) {
    throw std::invalid_argument("DistributedFft3d: GPU offload requested without a device");
  }
  if (cfg_.ticks_per_phase == 0) cfg_.ticks_per_phase = 1;
  // The rank is OpenMP-parallel across the socket in the real mini-app, so
  // every core is busy and each gets its contended 5 MB L3 share (the
  // assumption behind paper Eq. 7).  By default the replay walks the
  // statically partitioned loops on one engine; totals are equivalent
  // because the per-rank block far exceeds any single share.  With
  // replay_threads > 1 the loops are dealt across that many engines and
  // replayed concurrently (replay_planes).
  machine_.set_active_cores(cfg_.socket, machine_.cores_per_socket());
  cfg_.replay_threads = std::max<std::uint32_t>(1, cfg_.replay_threads);
  cfg_.replay_threads = std::min(cfg_.replay_threads,
                                 machine_.cores_per_socket() - cfg_.core);
  if (cfg_.replay_threads > 1) {
    replay_pool_ = std::make_unique<sim::ThreadPool>(cfg_.replay_threads - 1);
  }
}

DistributedFft3d::~DistributedFft3d() = default;

void DistributedFft3d::replay_planes(
    std::uint64_t lo, std::uint64_t hi, const sim::LoopDesc& proto,
    sim::LoopStats& out,
    const std::function<void(sim::AccessEngine&, sim::LoopDesc&, std::uint64_t,
                             sim::LoopStats&)>& plane_body) {
  const std::uint32_t nthreads = cfg_.replay_threads;
  if (nthreads <= 1) {
    sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core);
    sim::LoopDesc local = proto;
    for (std::uint64_t p = lo; p < hi; ++p) plane_body(eng, local, p, out);
    return;
  }
  std::vector<sim::LoopStats> partial(nthreads);
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    machine_.engine(cfg_.socket, cfg_.core + t).set_deferred_time(true);
  }
  replay_pool_->parallel_for(nthreads, [&](std::uint32_t t) {
    sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core + t);
    sim::LoopDesc local = proto;
    for (std::uint64_t p = lo + t; p < hi; p += nthreads) {
      plane_body(eng, local, p, partial[t]);
    }
  });
  double max_ns = 0.0;
  for (std::uint32_t t = 0; t < nthreads; ++t) {
    sim::AccessEngine& eng = machine_.engine(cfg_.socket, cfg_.core + t);
    max_ns = std::max(max_ns, eng.take_deferred_time_ns());
    eng.set_deferred_time(false);
  }
  machine_.advance(max_ns);
  // Deterministic merge order (core 0..N-1), independent of completion order.
  for (const sim::LoopStats& s : partial) out += s;
}

PhaseStats& DistributedFft3d::begin_phase(const std::string& name) {
  PhaseStats ph;
  ph.name = name;
  ph.t0_sec = machine_.clock().now_sec();
  phases_.push_back(std::move(ph));
  return phases_.back();
}

void DistributedFft3d::end_phase(PhaseStats& ph) {
  ph.t1_sec = machine_.clock().now_sec();
}

void DistributedFft3d::phase_resort_strided(const std::string& name,
                                            const std::function<void()>& tick,
                                            bool planewise) {
  PhaseStats& ph = begin_phase(name);
  // Chunk the combined S1CF nest over planes so the sampler sees the phase
  // evolve.
  const std::uint64_t chunks =
      std::min<std::uint64_t>(cfg_.ticks_per_phase, dims_.planes);
  sim::LoopDesc inner;
  inner.iterations = dims_.cols;
  inner.sw_prefetch = cfg_.prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, static_cast<std::int64_t>(dims_.planes * dims_.rows * 16), 16,
       sim::AccessKind::Store},
  };
  std::uint64_t done = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t end = dims_.planes * (c + 1) / chunks;
    replay_planes(done, end, inner, ph.loop,
                  [&](sim::AccessEngine& eng, sim::LoopDesc& local,
                      std::uint64_t plane, sim::LoopStats& out) {
                    for (std::uint64_t row = 0; row < dims_.rows; ++row) {
                      local.streams[0].base =
                          buf_.in + (plane * dims_.rows + row) * dims_.cols * 16;
                      // Colwise (S1CF) and planewise (S1PF) differ only in
                      // which output dimension is fastest; the store stride
                      // magnitude is the same.
                      local.streams[1].base =
                          buf_.out + (planewise ? (row * dims_.planes + plane)
                                                : (plane * dims_.rows + row)) *
                                         16;
                      out += eng.execute(local);
                    }
                  });
    done = end;
    if (tick) tick();
  }
  end_phase(ph);
}

void DistributedFft3d::phase_resort_sequential(const std::string& name,
                                               const std::function<void()>& tick,
                                               bool planewise) {
  PhaseStats& ph = begin_phase(name);
  const std::uint64_t chunks =
      std::min<std::uint64_t>(cfg_.ticks_per_phase, s2dims_.planes);
  sim::LoopDesc inner;
  inner.iterations = s2dims_.rows;
  inner.sw_prefetch = cfg_.prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, 16, 16, sim::AccessKind::Store},
  };
  std::uint64_t done = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::uint64_t end = s2dims_.planes * (c + 1) / chunks;
    replay_planes(
        done, end, inner, ph.loop,
        [&](sim::AccessEngine& eng, sim::LoopDesc& local, std::uint64_t plane,
            sim::LoopStats& out) {
          for (std::uint64_t xx = 0; xx < s2dims_.x; ++xx) {
            for (std::uint64_t yy = 0; yy < s2dims_.y; ++yy) {
              local.streams[0].base =
                  buf_.in + (((yy * s2dims_.planes + plane) * s2dims_.x + xx) *
                             s2dims_.rows) *
                                16;
              // Colwise (S2CF) vs planewise (S2PF) output ordering; both keep
              // the innermost dimension contiguous.
              local.streams[1].base =
                  buf_.out +
                  (planewise
                       ? (((xx * s2dims_.y + yy) * s2dims_.planes + plane) *
                          s2dims_.rows)
                       : (((plane * s2dims_.x + xx) * s2dims_.y + yy) *
                          s2dims_.rows)) *
                      16;
              out += eng.execute(local);
            }
          }
        });
    done = end;
    if (tick) tick();
  }
  end_phase(ph);
}

void DistributedFft3d::phase_fft(const std::string& name,
                                 const std::function<void()>& tick) {
  PhaseStats& ph = begin_phase(name);
  const std::uint64_t bytes = dims_.bytes();
  const double flops = 5.0 * static_cast<double>(dims_.elems()) *
                       std::log2(static_cast<double>(cfg_.n));
  const std::uint32_t chunks = cfg_.ticks_per_phase;
  if (cfg_.use_gpu) {
    // cuFFT offload: copy the pencils to the device, transform, copy back.
    // The H2D copy reads host memory; the D2H copy writes it -- the Fig. 11
    // read-spike / power-spike / write-spike progression.
    for (std::uint32_t c = 0; c < chunks; ++c) {
      gpu_->memcpy_h2d(bytes / chunks);
      if (tick) tick();
    }
    for (std::uint32_t c = 0; c < chunks; ++c) {
      gpu_->run_kernel(flops / chunks);
      if (tick) tick();
    }
    for (std::uint32_t c = 0; c < chunks; ++c) {
      gpu_->memcpy_d2h(bytes / chunks);
      if (tick) tick();
    }
  } else {
    // Host FFT: one streaming pass over the pencils (read + write).  Each
    // chunk is split into one contiguous sub-range per replay engine (the
    // sub-ranges are the "planes" dealt out by replay_planes).
    const std::uint64_t elems = dims_.elems();
    const std::uint32_t nthreads = cfg_.replay_threads;
    sim::LoopDesc pass;
    pass.flops_per_iter = 5.0 * std::log2(static_cast<double>(cfg_.n));
    for (std::uint32_t c = 0; c < chunks; ++c) {
      const std::uint64_t lo = elems * c / chunks, hi = elems * (c + 1) / chunks;
      replay_planes(0, nthreads, pass, ph.loop,
                    [&](sim::AccessEngine& eng, sim::LoopDesc& local,
                        std::uint64_t part, sim::LoopStats& out) {
                      const std::uint64_t plo = lo + (hi - lo) * part / nthreads;
                      const std::uint64_t phi =
                          lo + (hi - lo) * (part + 1) / nthreads;
                      if (phi == plo) return;
                      local.iterations = phi - plo;
                      local.streams = {
                          {buf_.out + plo * 16, 16, 16, sim::AccessKind::Load},
                          {buf_.in + plo * 16, 16, 16, sim::AccessKind::Store},
                      };
                      out += eng.execute(local);
                    });
      if (tick) tick();
    }
  }
  end_phase(ph);
}

void DistributedFft3d::phase_alltoall(const std::string& name,
                                      std::uint32_t participants,
                                      const std::function<void()>& tick) {
  PhaseStats& ph = begin_phase(name);
  if (comm_ != nullptr && participants > 1) {
    const std::uint64_t bytes = dims_.bytes();
    const std::uint32_t chunks = cfg_.ticks_per_phase;
    for (std::uint32_t c = 0; c < chunks; ++c) {
      comm_->alltoall(participants, bytes / chunks);
      if (tick) tick();
    }
    ph.net_bytes = bytes / participants * (participants - 1);
  } else if (tick) {
    tick();
  }
  end_phase(ph);
}

void DistributedFft3d::run_forward(const std::function<void()>& tick) {
  phases_.clear();
  // The paper's pipeline (Fig. 11): four re-sorting phases interleaved with
  // three 1D-FFT batches and two All2All exchanges.  The 1st and 3rd
  // re-sorts are strided (two reads per write); the 2nd and 4th have
  // matching innermost dimensions (one read per write).
  phase_resort_strided("resort1_S1CF", tick);
  phase_fft("fft_z", tick);
  phase_alltoall("all2all_1", cfg_.grid.cols, tick);
  phase_resort_sequential("resort2_S2CF", tick);
  phase_fft("fft_y", tick);
  phase_alltoall("all2all_2", cfg_.grid.rows, tick);
  phase_resort_strided("resort3_S1PF", tick, /*planewise=*/true);
  phase_fft("fft_x", tick);
  phase_resort_sequential("resort4_S2PF", tick, /*planewise=*/true);
}

}  // namespace papisim::fft
