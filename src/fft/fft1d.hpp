// Numeric 1D complex FFT (radix-2 iterative + Bluestein for arbitrary
// lengths).  This is the computational payload of the 3D-FFT mini-app and
// the reference against which the cuFFT-like device API is validated.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace papisim::fft {

using cplx = std::complex<double>;

/// In-place forward (`inverse=false`) or inverse DFT of arbitrary length.
/// The inverse is unscaled-inverse *with* 1/N normalization, i.e.
/// ifft(fft(x)) == x.
void fft1d(std::span<cplx> data, bool inverse = false);

/// Out-of-place convenience wrapper.
std::vector<cplx> fft1d_copy(std::span<const cplx> data, bool inverse = false);

/// O(N^2) reference DFT for validation.
std::vector<cplx> dft_naive(std::span<const cplx> data, bool inverse = false);

/// Batched in-place transform of `batch` contiguous rows of length `n`.
void fft1d_batch(std::span<cplx> data, std::size_t n, std::size_t batch,
                 bool inverse = false);

bool is_power_of_two(std::size_t n);

}  // namespace papisim::fft
