#include "fft/resort.hpp"

#include <stdexcept>

namespace papisim::fft {

RankDims RankDims::of(std::uint64_t n, const mpi::Grid& grid) {
  if (n % grid.rows != 0 || n % grid.cols != 0) {
    throw std::invalid_argument("RankDims: N must be divisible by both grid dims");
  }
  return {n / grid.rows, n / grid.cols, n};
}

S2Dims S2Dims::of(const RankDims& d, const mpi::Grid& grid) {
  // After the first all-to-all among the c row partners, each rank's block
  // is re-sorted from [Y][PLANES][X][ROWS] to [PLANES][X][Y][ROWS] order,
  // with X = c partners and Y*ROWS = the former COLS pencil split.
  if (d.cols % grid.cols != 0) {
    throw std::invalid_argument("S2Dims: cols must be divisible by grid cols");
  }
  S2Dims s;
  s.planes = d.planes;
  s.x = grid.cols;
  s.y = d.rows;
  s.rows = d.cols / grid.cols;
  return s;
}

// ------------------------------------------------------------------ numeric

void s1cf_nest1_numeric(std::span<const std::complex<double>> in,
                        std::span<std::complex<double>> tmp, const RankDims& d) {
  if (in.size() < d.elems() || tmp.size() < d.elems()) {
    throw std::invalid_argument("s1cf_nest1_numeric: buffer too small");
  }
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t row = 0; row < d.rows; ++row) {
      for (std::uint64_t col = 0; col < d.cols; ++col) {
        tmp[(plane * d.rows + row) * d.cols + col] =
            in[plane * d.rows * d.cols + row * d.cols + col];
      }
    }
  }
}

void s1cf_nest2_numeric(std::span<const std::complex<double>> tmp,
                        std::span<std::complex<double>> out, const RankDims& d) {
  if (tmp.size() < d.elems() || out.size() < d.elems()) {
    throw std::invalid_argument("s1cf_nest2_numeric: buffer too small");
  }
  for (std::uint64_t col = 0; col < d.cols; ++col) {
    for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
      for (std::uint64_t row = 0; row < d.rows; ++row) {
        out[col * d.planes * d.rows + plane * d.rows + row] =
            tmp[(plane * d.rows + row) * d.cols + col];
      }
    }
  }
}

void s1cf_combined_numeric(std::span<const std::complex<double>> in,
                           std::span<std::complex<double>> out, const RankDims& d) {
  if (in.size() < d.elems() || out.size() < d.elems()) {
    throw std::invalid_argument("s1cf_combined_numeric: buffer too small");
  }
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t row = 0; row < d.rows; ++row) {
      for (std::uint64_t col = 0; col < d.cols; ++col) {
        out[col * d.planes * d.rows + plane * d.rows + row] =
            in[plane * d.rows * d.cols + row * d.cols + col];
      }
    }
  }
}

void s1pf_combined_numeric(std::span<const std::complex<double>> in,
                           std::span<std::complex<double>> out, const RankDims& d) {
  if (in.size() < d.elems() || out.size() < d.elems()) {
    throw std::invalid_argument("s1pf_combined_numeric: buffer too small");
  }
  // Planewise: plane becomes the fastest-varying output dimension.
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t row = 0; row < d.rows; ++row) {
      for (std::uint64_t col = 0; col < d.cols; ++col) {
        out[(col * d.rows + row) * d.planes + plane] =
            in[plane * d.rows * d.cols + row * d.cols + col];
      }
    }
  }
}

void s2cf_numeric(std::span<const std::complex<double>> in,
                  std::span<std::complex<double>> out, const S2Dims& d) {
  if (in.size() < d.elems() || out.size() < d.elems()) {
    throw std::invalid_argument("s2cf_numeric: buffer too small");
  }
  // in ordered [Y][PLANES][X][ROWS], traversed PLANES, X, Y, ROWS.
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t xx = 0; xx < d.x; ++xx) {
      for (std::uint64_t yy = 0; yy < d.y; ++yy) {
        for (std::uint64_t row = 0; row < d.rows; ++row) {
          out[((plane * d.x + xx) * d.y + yy) * d.rows + row] =
              in[((yy * d.planes + plane) * d.x + xx) * d.rows + row];
        }
      }
    }
  }
}

void s2pf_numeric(std::span<const std::complex<double>> in,
                  std::span<std::complex<double>> out, const S2Dims& d) {
  if (in.size() < d.elems() || out.size() < d.elems()) {
    throw std::invalid_argument("s2pf_numeric: buffer too small");
  }
  // Planewise variant: output ordered [X][Y][PLANES][ROWS].
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t xx = 0; xx < d.x; ++xx) {
      for (std::uint64_t yy = 0; yy < d.y; ++yy) {
        for (std::uint64_t row = 0; row < d.rows; ++row) {
          out[((xx * d.y + yy) * d.planes + plane) * d.rows + row] =
              in[((yy * d.planes + plane) * d.x + xx) * d.rows + row];
        }
      }
    }
  }
}

// ---------------------------------------------------------------- simulated

ResortBuffers ResortBuffers::allocate(sim::AddressSpace& as, std::uint64_t bytes) {
  ResortBuffers buf;
  buf.in = as.allocate(bytes);
  buf.tmp = as.allocate(bytes);
  buf.out = as.allocate(bytes);
  return buf;
}

sim::LoopStats s1cf_nest1_replay(sim::Machine& m, std::uint32_t socket,
                                 std::uint32_t core, const RankDims& d,
                                 const ResortBuffers& buf, bool prefetch) {
  // Listing 5: both sides are one long sequential stream; replay the whole
  // nest as a single flattened inner loop (index algebra is the identity).
  sim::LoopDesc loop;
  loop.iterations = d.elems();
  loop.sw_prefetch = prefetch;
  loop.streams = {
      {buf.in, 16, 16, sim::AccessKind::Load},
      {buf.tmp, 16, 16, sim::AccessKind::Store},
  };
  return m.engine(socket, core).execute(loop);
}

sim::LoopStats s1cf_nest2_replay(sim::Machine& m, std::uint32_t socket,
                                 std::uint32_t core, const RankDims& d,
                                 const ResortBuffers& buf, bool prefetch) {
  // Listing 7: for col / plane { inner loop over row }:
  //   load  tmp[(plane*rows + row)*cols + col]   (stride cols*16, strided)
  //   store out[col*planes*rows + plane*rows + row]  (stride 16, sequential)
  sim::AccessEngine& eng = m.engine(socket, core);
  sim::LoopStats total;
  sim::LoopDesc inner;
  inner.iterations = d.rows;
  inner.sw_prefetch = prefetch;
  inner.streams = {
      {0, static_cast<std::int64_t>(d.cols * 16), 16, sim::AccessKind::Load},
      {0, 16, 16, sim::AccessKind::Store},
  };
  for (std::uint64_t col = 0; col < d.cols; ++col) {
    for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
      inner.streams[0].base = buf.tmp + (plane * d.rows * d.cols + col) * 16;
      inner.streams[1].base =
          buf.out + (col * d.planes * d.rows + plane * d.rows) * 16;
      total += eng.execute(inner);
    }
  }
  return total;
}

sim::LoopStats s1cf_combined_replay(sim::Machine& m, std::uint32_t socket,
                                    std::uint32_t core, const RankDims& d,
                                    const ResortBuffers& buf, bool prefetch) {
  // Listing 8: for plane / row { inner loop over col }:
  //   load  in  (stride 16, sequential)
  //   store out (stride planes*rows*16, strided)
  sim::AccessEngine& eng = m.engine(socket, core);
  sim::LoopStats total;
  sim::LoopDesc inner;
  inner.iterations = d.cols;
  inner.sw_prefetch = prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, static_cast<std::int64_t>(d.planes * d.rows * 16), 16,
       sim::AccessKind::Store},
  };
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t row = 0; row < d.rows; ++row) {
      inner.streams[0].base = buf.in + (plane * d.rows + row) * d.cols * 16;
      inner.streams[1].base = buf.out + (plane * d.rows + row) * 16;
      total += eng.execute(inner);
    }
  }
  return total;
}

sim::LoopStats s2cf_replay(sim::Machine& m, std::uint32_t socket,
                           std::uint32_t core, const S2Dims& d,
                           const ResortBuffers& buf, bool prefetch) {
  // Listing 9: for plane / x / y { inner loop over row }: both streams are
  // sequential within the inner loop (the stride is amortized).
  sim::AccessEngine& eng = m.engine(socket, core);
  sim::LoopStats total;
  sim::LoopDesc inner;
  inner.iterations = d.rows;
  inner.sw_prefetch = prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, 16, 16, sim::AccessKind::Store},
  };
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t xx = 0; xx < d.x; ++xx) {
      for (std::uint64_t yy = 0; yy < d.y; ++yy) {
        inner.streams[0].base =
            buf.in + (((yy * d.planes + plane) * d.x + xx) * d.rows) * 16;
        inner.streams[1].base =
            buf.out + (((plane * d.x + xx) * d.y + yy) * d.rows) * 16;
        total += eng.execute(inner);
      }
    }
  }
  return total;
}

sim::LoopStats s1pf_combined_replay(sim::Machine& m, std::uint32_t socket,
                                    std::uint32_t core, const RankDims& d,
                                    const ResortBuffers& buf, bool prefetch) {
  // for plane / row { inner loop over col }:
  //   load  in[(plane*rows + row)*cols + col]            (stride 16, sequential)
  //   store out[(col*rows + row)*planes + plane]         (stride rows*planes*16)
  sim::AccessEngine& eng = m.engine(socket, core);
  sim::LoopStats total;
  sim::LoopDesc inner;
  inner.iterations = d.cols;
  inner.sw_prefetch = prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, static_cast<std::int64_t>(d.rows * d.planes * 16), 16,
       sim::AccessKind::Store},
  };
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t row = 0; row < d.rows; ++row) {
      inner.streams[0].base = buf.in + (plane * d.rows + row) * d.cols * 16;
      inner.streams[1].base = buf.out + (row * d.planes + plane) * 16;
      total += eng.execute(inner);
    }
  }
  return total;
}

sim::LoopStats s2pf_replay(sim::Machine& m, std::uint32_t socket,
                           std::uint32_t core, const S2Dims& d,
                           const ResortBuffers& buf, bool prefetch) {
  // Output ordered [X][Y][PLANES][ROWS]; inner loop over row is sequential
  // on both sides, amortizing the outer-dimension stride (like S2CF).
  sim::AccessEngine& eng = m.engine(socket, core);
  sim::LoopStats total;
  sim::LoopDesc inner;
  inner.iterations = d.rows;
  inner.sw_prefetch = prefetch;
  inner.streams = {
      {0, 16, 16, sim::AccessKind::Load},
      {0, 16, 16, sim::AccessKind::Store},
  };
  for (std::uint64_t plane = 0; plane < d.planes; ++plane) {
    for (std::uint64_t xx = 0; xx < d.x; ++xx) {
      for (std::uint64_t yy = 0; yy < d.y; ++yy) {
        inner.streams[0].base =
            buf.in + (((yy * d.planes + plane) * d.x + xx) * d.rows) * 16;
        inner.streams[1].base =
            buf.out + (((xx * d.y + yy) * d.planes + plane) * d.rows) * 16;
        total += eng.execute(inner);
      }
    }
  }
  return total;
}

}  // namespace papisim::fft
