// 3D-FFT: numeric local transform (for correctness) and the simulated
// distributed, optionally GPU-accelerated mini-app (paper Section IV).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fft/fft1d.hpp"
#include "fft/resort.hpp"
#include "gpu/gpu_device.hpp"
#include "mpi/job_comm.hpp"

namespace papisim::sim {
class ThreadPool;
}

namespace papisim::fft {

/// In-place 3D DFT of an n x n x n row-major array, built from batched 1D
/// FFTs and the S1CF re-sorting permutation (three stages return the data to
/// its original [x][y][z] layout).  Validated against the naive triple-sum
/// DFT in tests.
void fft3d_local(std::vector<cplx>& data, std::size_t n, bool inverse = false);

/// Naive O(N^6) 3D DFT reference (paper Eq. 6).
std::vector<cplx> dft3_naive(const std::vector<cplx>& data, std::size_t n,
                             bool inverse = false);

/// Configuration of the simulated distributed 3D-FFT rank.
struct Fft3dConfig {
  std::uint64_t n = 256;
  mpi::Grid grid{2, 4};
  std::uint32_t socket = 0;
  std::uint32_t core = 0;
  bool use_gpu = false;      ///< offload the 1D-FFT batches (cuFFT-style)
  bool prefetch = false;     ///< compile the re-sorts with -fprefetch-loop-arrays
  std::uint32_t ticks_per_phase = 6;  ///< sampler granularity
  /// Replay the rank's OpenMP loops across this many simulated cores (and as
  /// many host threads), starting at `core`.  1 = the seed's single-engine
  /// replay, bit-exact.  >1 partitions the plane/element loops per core with
  /// deferred per-core time and a max-merge clock advance per phase chunk;
  /// totals are deterministic for a given value.
  std::uint32_t replay_threads = 1;
};

/// One pipeline phase of the representative rank, with its traffic and the
/// virtual-time interval it occupied.
struct PhaseStats {
  std::string name;
  sim::LoopStats loop;  ///< zero for pure communication phases
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  std::uint64_t net_bytes = 0;
};

/// The distributed 3D-FFT mini-app, simulated for ONE representative rank
/// (pencil decomposition over an r x c grid; all ranks are symmetric).  The
/// pipeline is the paper's: re-sort, 1D-FFT batch (CPU or GPU with H2D/D2H
/// copies), All2All, re-sort, ... -- the sequence whose multi-component
/// profile is Fig. 11.
class DistributedFft3d {
 public:
  DistributedFft3d(sim::Machine& machine, Fft3dConfig cfg,
                   gpu::GpuDevice* gpu = nullptr, mpi::JobComm* comm = nullptr);
  ~DistributedFft3d();

  /// Run one forward transform; `tick` (if given) is invoked several times
  /// per phase so a Sampler can record the timeline.
  void run_forward(const std::function<void()>& tick = {});

  const std::vector<PhaseStats>& phases() const { return phases_; }
  const Fft3dConfig& config() const { return cfg_; }
  RankDims dims() const { return dims_; }

 private:
  void phase_resort_strided(const std::string& name,
                            const std::function<void()>& tick,
                            bool planewise = false);
  void phase_resort_sequential(const std::string& name,
                               const std::function<void()>& tick,
                               bool planewise = false);
  void phase_fft(const std::string& name, const std::function<void()>& tick);
  void phase_alltoall(const std::string& name, std::uint32_t participants,
                      const std::function<void()>& tick);

  PhaseStats& begin_phase(const std::string& name);
  void end_phase(PhaseStats& ph);

  /// Replay planes [lo, hi) through `plane_body(engine, desc, plane, stats)`.
  /// Serial (replay_threads = 1) runs the seed's exact single-engine loop;
  /// parallel deals planes round-robin to the pool's engines in deferred-time
  /// mode, max-merges their times, and sums their stats in core order.
  void replay_planes(
      std::uint64_t lo, std::uint64_t hi, const sim::LoopDesc& proto,
      sim::LoopStats& out,
      const std::function<void(sim::AccessEngine&, sim::LoopDesc&, std::uint64_t,
                               sim::LoopStats&)>& plane_body);

  sim::Machine& machine_;
  Fft3dConfig cfg_;
  RankDims dims_;
  S2Dims s2dims_;
  ResortBuffers buf_;
  gpu::GpuDevice* gpu_;
  mpi::JobComm* comm_;
  std::unique_ptr<sim::ThreadPool> replay_pool_;  ///< null when replay_threads = 1
  std::vector<PhaseStats> phases_;
};

}  // namespace papisim::fft
