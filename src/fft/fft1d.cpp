#include "fft/fft1d.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace papisim::fft {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

/// Iterative radix-2 Cooley-Tukey, n a power of two, no normalization.
void fft_pow2(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = a[i + k];
        const cplx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein's algorithm: DFT of arbitrary length via a pow2 convolution.
void fft_bluestein(std::span<cplx> a, bool inverse) {
  const std::size_t n = a.size();
  // Chirp: w_k = exp(+-i * pi * k^2 / n).
  std::vector<cplx> w(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids precision loss for large k.
    const std::uint64_t k2 = (static_cast<std::uint64_t>(k) * k) % (2 * n);
    const double ang = (inverse ? 1.0 : -1.0) * std::numbers::pi *
                       static_cast<double>(k2) / static_cast<double>(n);
    w[k] = cplx(std::cos(ang), std::sin(ang));
  }
  std::size_t m = 1;
  while (m < 2 * n - 1) m <<= 1;
  std::vector<cplx> x(m, cplx{}), y(m, cplx{});
  for (std::size_t k = 0; k < n; ++k) x[k] = a[k] * w[k];
  y[0] = std::conj(w[0]);
  for (std::size_t k = 1; k < n; ++k) y[k] = y[m - k] = std::conj(w[k]);
  fft_pow2(x, false);
  fft_pow2(y, false);
  for (std::size_t k = 0; k < m; ++k) x[k] *= y[k];
  fft_pow2(x, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) a[k] = x[k] * inv_m * w[k];
}

}  // namespace

void fft1d(std::span<cplx> data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  if (is_power_of_two(n)) {
    fft_pow2(data, inverse);
  } else {
    fft_bluestein(data, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (cplx& v : data) v *= inv_n;
  }
}

std::vector<cplx> fft1d_copy(std::span<const cplx> data, bool inverse) {
  std::vector<cplx> out(data.begin(), data.end());
  fft1d(out, inverse);
  return out;
}

std::vector<cplx> dft_naive(std::span<const cplx> data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cplx> out(n, cplx{});
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      out[k] += data[j] * cplx(std::cos(ang), std::sin(ang));
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (cplx& v : out) v *= inv_n;
  }
  return out;
}

void fft1d_batch(std::span<cplx> data, std::size_t n, std::size_t batch,
                 bool inverse) {
  if (data.size() < n * batch) {
    throw std::invalid_argument("fft1d_batch: buffer too small");
  }
  for (std::size_t b = 0; b < batch; ++b) {
    fft1d(data.subspan(b * n, n), inverse);
  }
}

}  // namespace papisim::fft
