// V100-class GPU device model: DMA copies that drive *host* memory traffic,
// kernel execution, and a continuous power model (NVML substrate).
#pragma once

#include <cstdint>
#include <string>

#include "sim/machine.hpp"

namespace papisim::gpu {

struct GpuConfig {
  std::string model = "Tesla_V100-SXM2-16GB";
  double idle_power_w = 52.0;
  double busy_power_w = 249.0;   ///< sustained kernel power
  double dma_power_w = 95.0;     ///< power level during DMA copies
  double power_tau_ns = 1e6;     ///< exponential rise/decay time constant
  double pcie_bw_bytes_per_sec = 11.5e9;  ///< effective H2D/D2H bandwidth
  double flops = 7.0e12;         ///< fp64 peak
  double kernel_efficiency = 0.35;  ///< achieved fraction for library kernels
  std::uint64_t mem_bytes = 16ull << 30;
};

/// One GPU attached to a socket.  Every host<->device copy reads or writes
/// host DRAM through the socket's nest -- this is exactly the coupling that
/// makes the paper's Fig. 11 legible (host-read spike, power spike,
/// host-write spike per 1D-FFT phase).
class GpuDevice {
 public:
  GpuDevice(GpuConfig cfg, sim::Machine& machine, std::uint32_t socket, int device_id);

  const GpuConfig& config() const { return cfg_; }
  int id() const { return id_; }
  const std::string& model() const { return cfg_.model; }

  /// Host-to-device copy: reads `bytes` of host memory (nest READ traffic),
  /// advances the clock by the PCIe transfer time.
  void memcpy_h2d(std::uint64_t bytes);

  /// Device-to-host copy: writes host memory (nest WRITE traffic).
  void memcpy_d2h(std::uint64_t bytes);

  /// Execute a kernel of `flop_count` floating-point operations on-device.
  /// No host traffic; clock advances; power rises toward the busy level.
  void run_kernel(double flop_count);

  /// Instantaneous board power in milliwatts at the current virtual time
  /// (NVML reports mW).  Decays toward idle when the device is inactive.
  std::uint64_t power_mw() const;

  double busy_seconds() const { return busy_ns_ * 1e-9; }

 private:
  /// Evolve the power state from last_update_ns_ to `now` at `target_w`.
  void settle(double now_ns, double target_w) const;

  GpuConfig cfg_;
  sim::Machine& machine_;
  std::uint32_t socket_;
  int id_;
  mutable double power_w_;
  mutable double last_update_ns_ = 0.0;
  double busy_ns_ = 0.0;
};

}  // namespace papisim::gpu
