#include "gpu/gpu_device.hpp"

#include <cmath>

namespace papisim::gpu {

GpuDevice::GpuDevice(GpuConfig cfg, sim::Machine& machine, std::uint32_t socket,
                     int device_id)
    : cfg_(std::move(cfg)),
      machine_(machine),
      socket_(socket),
      id_(device_id),
      power_w_(cfg_.idle_power_w),
      last_update_ns_(machine.clock().now_ns()) {}

void GpuDevice::settle(double now_ns, double target_w) const {
  const double dt = now_ns - last_update_ns_;
  if (dt > 0) {
    power_w_ = target_w + (power_w_ - target_w) * std::exp(-dt / cfg_.power_tau_ns);
    last_update_ns_ = now_ns;
  }
}

void GpuDevice::memcpy_h2d(std::uint64_t bytes) {
  settle(machine_.clock().now_ns(), cfg_.idle_power_w);
  const double t_ns = static_cast<double>(bytes) / cfg_.pcie_bw_bytes_per_sec * 1e9;
  // The DMA engine reads host DRAM through the nest.
  machine_.memctrl(socket_).add_spread(bytes, sim::MemDir::Read);
  machine_.advance(t_ns);
  busy_ns_ += t_ns;
  settle(machine_.clock().now_ns(), cfg_.dma_power_w);
}

void GpuDevice::memcpy_d2h(std::uint64_t bytes) {
  settle(machine_.clock().now_ns(), cfg_.idle_power_w);
  const double t_ns = static_cast<double>(bytes) / cfg_.pcie_bw_bytes_per_sec * 1e9;
  machine_.memctrl(socket_).add_spread(bytes, sim::MemDir::Write);
  machine_.advance(t_ns);
  busy_ns_ += t_ns;
  settle(machine_.clock().now_ns(), cfg_.dma_power_w);
}

void GpuDevice::run_kernel(double flop_count) {
  settle(machine_.clock().now_ns(), cfg_.idle_power_w);
  const double t_ns =
      flop_count / (cfg_.flops * cfg_.kernel_efficiency) * 1e9;
  machine_.advance(t_ns);
  busy_ns_ += t_ns;
  settle(machine_.clock().now_ns(), cfg_.busy_power_w);
}

std::uint64_t GpuDevice::power_mw() const {
  settle(machine_.clock().now_ns(), cfg_.idle_power_w);
  return static_cast<std::uint64_t>(power_w_ * 1000.0);
}

}  // namespace papisim::gpu
