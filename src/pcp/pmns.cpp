#include "pcp/pmns.hpp"

namespace papisim::pcp {

std::string Pmns::metric_name(std::uint32_t channel, nest::NestEventKind kind) {
  const std::string ch = std::to_string(channel);
  return "perfevent.hwcounters.nest_mba" + ch + "_imc.PM_MBA" + ch + "_" +
         nest::event_suffix(kind);
}

Pmns::Pmns(const sim::MachineConfig& cfg) {
  metrics_.reserve(cfg.mem_channels * 4);
  for (std::uint32_t ch = 0; ch < cfg.mem_channels; ++ch) {
    for (const nest::NestEventKind kind : nest::kAllNestEventKinds) {
      MetricDesc d;
      d.pmid = static_cast<PmId>(metrics_.size());
      d.name = metric_name(ch, kind);
      d.units = nest::is_byte_event(kind) ? "byte" : "count";
      d.event.channel = ch;
      d.event.kind = kind;
      metrics_.push_back(std::move(d));
    }
  }
}

std::optional<PmId> Pmns::lookup(std::string_view name) const {
  for (const MetricDesc& d : metrics_) {
    if (d.name == name) return d.pmid;
  }
  return std::nullopt;
}

std::vector<std::string> Pmns::names_under(std::string_view prefix) const {
  std::vector<std::string> out;
  for (const MetricDesc& d : metrics_) {
    if (prefix.empty() || (d.name.size() >= prefix.size() &&
                           std::string_view(d.name).substr(0, prefix.size()) == prefix)) {
      out.push_back(d.name);
    }
  }
  return out;
}

const MetricDesc* Pmns::descriptor(PmId pmid) const {
  if (pmid >= metrics_.size()) return nullptr;
  return &metrics_[pmid];
}

}  // namespace papisim::pcp
