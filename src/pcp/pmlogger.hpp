// pmlogger analogue: periodic recording of PCP metrics into an archive that
// can be serialized and replayed.  On real systems pmlogger archives are how
// PCP users inspect nest counters after the fact; here the logger polls the
// PMCD through the ordinary client (each poll pays the round trip).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "pcp/client.hpp"

namespace papisim::pcp {

/// One archive record: virtual timestamp plus one value per logged metric.
struct ArchiveRecord {
  double t_sec = 0;
  std::vector<std::uint64_t> values;
};

/// A recorded metric archive (metadata + records).
struct Archive {
  std::vector<std::string> metrics;  ///< dotted PMNS names
  std::uint32_t cpu = 0;             ///< instance the values were fetched for
  std::vector<ArchiveRecord> records;

  /// Plain-text serialization ("# papisim-archive v1" header, one record
  /// per line).  Round-trips through load().
  void save(std::ostream& os) const;

  /// Parse a saved archive.  Tolerates CRLF line endings and trailing
  /// whitespace; @throws Error(Status::Internal) on any malformed record
  /// (unknown tag, non-numeric value, width mismatch) rather than silently
  /// truncating.
  static Archive load(std::istream& is);
};

/// The logger: resolves the metric names once, then poll() appends records.
class PmLogger {
 public:
  /// @throws Error(Status::NoEvent) if any metric fails to resolve.
  PmLogger(PcpClient& client, std::vector<std::string> metrics, std::uint32_t cpu);

  /// Fetch all metrics (one round trip) and append a record stamped with
  /// the current virtual time.
  void poll();

  const Archive& archive() const { return archive_; }
  std::size_t records() const { return archive_.records.size(); }

 private:
  PcpClient& client_;
  std::vector<PmId> pmids_;
  Archive archive_;
};

}  // namespace papisim::pcp
