// Refutation probe for the PMCD fetch cache: "coalescing/caching does not
// stale-serve beyond its contract".
//
// The multi-tenant daemon may serve a fetch from its short-TTL shard cache
// (PmcdOptions::fetch_cache_ttl) instead of re-reading the PMU.  The
// staleness contract is exactly one TTL: a fetch issued *within* the TTL of
// a cached reply may observe a value up to one TTL old, but a fetch issued
// *beyond* the TTL after the counters advanced MUST observe the new value.
// A broken cache (missing generation/TTL invalidation, key aliasing) would
// silently freeze user-visible counters -- the worst failure mode for a
// metrics service -- so the contract is probed CounterPoint-style with a
// must-fire and a must-not-fire arm (see src/probe/probe.hpp):
//
//   within-ttl arm   prime the cache, advance the counter, re-fetch
//                    immediately under a long TTL -> the reply must come
//                    from the cache (stale; freshness indicator 0)
//   beyond-ttl arm   prime, advance, wait out a short TTL, re-fetch -> the
//                    reply must observe the advance (fresh; indicator 1)
//
// Effect size = mean(beyond-ttl freshness) - mean(within-ttl freshness),
// expected 1.0.  "Always stale" and "cache never engaged" both drive the
// contrast to zero and REFUTE.  Run via `papisim-probe --pcp`.
#pragma once

#include "probe/probe.hpp"

namespace papisim::pcp {

/// Self-contained sweep on a summit-config machine (deterministic except for
/// host sleeps, which only need to exceed/undershoot the arms' TTLs).
probe::MechanismReport probe_fetch_cache_freshness();

}  // namespace papisim::pcp
