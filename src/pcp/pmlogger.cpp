#include "pcp/pmlogger.hpp"

#include <sstream>

#include "core/error.hpp"

namespace papisim::pcp {

namespace {

/// Strip a trailing CR (archives written on Windows or shuttled through a
/// CRLF-normalizing transport) and trailing spaces/tabs.
void rstrip(std::string& line) {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw Error(Status::Internal, "Archive::load: " + what);
}

/// Strict UTF-8 well-formedness (RFC 3629): rejects truncated and overlong
/// sequences, surrogates, and anything past U+10FFFF.  Metric names flow
/// into JSON trace exports, so a name that json_escape cannot represent
/// must be rejected at load time, not at export time.
bool valid_utf8(const std::string& s) {
  const auto* p = reinterpret_cast<const unsigned char*>(s.data());
  const std::size_t n = s.size();
  for (std::size_t i = 0; i < n;) {
    const unsigned char b = p[i];
    std::size_t len;
    std::uint32_t cp;
    if (b < 0x80) {
      ++i;
      continue;
    } else if ((b & 0xE0) == 0xC0) {
      len = 2;
      cp = b & 0x1Fu;
    } else if ((b & 0xF0) == 0xE0) {
      len = 3;
      cp = b & 0x0Fu;
    } else if ((b & 0xF8) == 0xF0) {
      len = 4;
      cp = b & 0x07u;
    } else {
      return false;  // continuation byte or 0xF8+ lead
    }
    if (i + len > n) return false;  // truncated sequence
    for (std::size_t j = 1; j < len; ++j) {
      if ((p[i + j] & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (p[i + j] & 0x3Fu);
    }
    if (len == 2 && cp < 0x80) return false;        // overlong
    if (len == 3 && cp < 0x800) return false;       // overlong
    if (len == 4 && cp < 0x10000) return false;     // overlong
    if (cp >= 0xD800 && cp <= 0xDFFF) return false; // surrogate
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

}  // namespace

void Archive::save(std::ostream& os) const {
  os << "# papisim-archive v1\n";
  os << "cpu " << cpu << "\n";
  for (const std::string& m : metrics) os << "metric " << m << "\n";
  for (const ArchiveRecord& r : records) {
    os << "record " << r.t_sec;
    for (const std::uint64_t v : r.values) os << ' ' << v;
    os << "\n";
  }
}

Archive Archive::load(std::istream& is) {
  Archive ar;
  std::string line;
  if (!std::getline(is, line)) malformed("empty stream");
  rstrip(line);
  if (line != "# papisim-archive v1") malformed("missing or unknown header");
  while (std::getline(is, line)) {
    rstrip(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "cpu") {
      if (!(ls >> ar.cpu)) malformed("unparsable cpu line '" + line + "'");
    } else if (tag == "metric") {
      std::string name;
      if (!(ls >> name)) malformed("metric line without a name");
      if (!valid_utf8(name)) {
        malformed("metric name with invalid UTF-8 bytes");
      }
      ar.metrics.push_back(std::move(name));
    } else if (tag == "record") {
      ArchiveRecord r;
      if (!(ls >> r.t_sec)) {
        malformed("record with unparsable timestamp '" + line + "'");
      }
      std::uint64_t v = 0;
      while (ls >> v) r.values.push_back(v);
      // `ls >> v` stops on the first non-numeric token; reaching EOF is the
      // only clean exit -- anything else is a corrupt value, and silently
      // truncating the record would fabricate a short row.
      if (!ls.eof()) malformed("record with non-numeric value '" + line + "'");
      if (r.values.size() != ar.metrics.size()) {
        malformed("record width mismatch (got " +
                  std::to_string(r.values.size()) + " values, expected " +
                  std::to_string(ar.metrics.size()) + ")");
      }
      ar.records.push_back(std::move(r));
    } else {
      malformed("unknown line tag '" + tag + "'");
    }
  }
  return ar;
}

PmLogger::PmLogger(PcpClient& client, std::vector<std::string> metrics,
                   std::uint32_t cpu)
    : client_(client) {
  archive_.metrics = std::move(metrics);
  archive_.cpu = cpu;
  pmids_.reserve(archive_.metrics.size());
  for (const std::string& name : archive_.metrics) {
    const auto pmid = client_.lookup(name);
    if (!pmid) {
      throw Error(Status::NoEvent, "PmLogger: unknown metric '" + name + "'");
    }
    pmids_.push_back(*pmid);
  }
}

void PmLogger::poll() {
  const FetchReply reply = client_.fetch(pmids_, archive_.cpu);
  if (!reply.ok) {
    throw Error(Status::Internal, "PmLogger: pmFetch failed: " + reply.error);
  }
  ArchiveRecord r;
  r.t_sec = client_.machine().clock().now_sec();
  r.values = reply.values;
  archive_.records.push_back(std::move(r));
}

}  // namespace papisim::pcp
