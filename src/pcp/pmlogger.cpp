#include "pcp/pmlogger.hpp"

#include <sstream>

#include "core/error.hpp"

namespace papisim::pcp {

namespace {

/// Strip a trailing CR (archives written on Windows or shuttled through a
/// CRLF-normalizing transport) and trailing spaces/tabs.
void rstrip(std::string& line) {
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
}

[[noreturn]] void malformed(const std::string& what) {
  throw Error(Status::Internal, "Archive::load: " + what);
}

}  // namespace

void Archive::save(std::ostream& os) const {
  os << "# papisim-archive v1\n";
  os << "cpu " << cpu << "\n";
  for (const std::string& m : metrics) os << "metric " << m << "\n";
  for (const ArchiveRecord& r : records) {
    os << "record " << r.t_sec;
    for (const std::uint64_t v : r.values) os << ' ' << v;
    os << "\n";
  }
}

Archive Archive::load(std::istream& is) {
  Archive ar;
  std::string line;
  if (!std::getline(is, line)) malformed("empty stream");
  rstrip(line);
  if (line != "# papisim-archive v1") malformed("missing or unknown header");
  while (std::getline(is, line)) {
    rstrip(line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "cpu") {
      if (!(ls >> ar.cpu)) malformed("unparsable cpu line '" + line + "'");
    } else if (tag == "metric") {
      std::string name;
      if (!(ls >> name)) malformed("metric line without a name");
      ar.metrics.push_back(std::move(name));
    } else if (tag == "record") {
      ArchiveRecord r;
      if (!(ls >> r.t_sec)) {
        malformed("record with unparsable timestamp '" + line + "'");
      }
      std::uint64_t v = 0;
      while (ls >> v) r.values.push_back(v);
      // `ls >> v` stops on the first non-numeric token; reaching EOF is the
      // only clean exit -- anything else is a corrupt value, and silently
      // truncating the record would fabricate a short row.
      if (!ls.eof()) malformed("record with non-numeric value '" + line + "'");
      if (r.values.size() != ar.metrics.size()) {
        malformed("record width mismatch (got " +
                  std::to_string(r.values.size()) + " values, expected " +
                  std::to_string(ar.metrics.size()) + ")");
      }
      ar.records.push_back(std::move(r));
    } else {
      malformed("unknown line tag '" + tag + "'");
    }
  }
  return ar;
}

PmLogger::PmLogger(PcpClient& client, std::vector<std::string> metrics,
                   std::uint32_t cpu)
    : client_(client) {
  archive_.metrics = std::move(metrics);
  archive_.cpu = cpu;
  pmids_.reserve(archive_.metrics.size());
  for (const std::string& name : archive_.metrics) {
    const auto pmid = client_.lookup(name);
    if (!pmid) {
      throw Error(Status::NoEvent, "PmLogger: unknown metric '" + name + "'");
    }
    pmids_.push_back(*pmid);
  }
}

void PmLogger::poll() {
  const FetchReply reply = client_.fetch(pmids_, archive_.cpu);
  if (!reply.ok) {
    throw Error(Status::Internal, "PmLogger: pmFetch failed: " + reply.error);
  }
  ArchiveRecord r;
  r.t_sec = client_.machine().clock().now_sec();
  r.values = reply.values;
  archive_.records.push_back(std::move(r));
}

}  // namespace papisim::pcp
