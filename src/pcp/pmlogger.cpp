#include "pcp/pmlogger.hpp"

#include <sstream>
#include <stdexcept>

namespace papisim::pcp {

void Archive::save(std::ostream& os) const {
  os << "# papisim-archive v1\n";
  os << "cpu " << cpu << "\n";
  for (const std::string& m : metrics) os << "metric " << m << "\n";
  for (const ArchiveRecord& r : records) {
    os << "record " << r.t_sec;
    for (const std::uint64_t v : r.values) os << ' ' << v;
    os << "\n";
  }
}

Archive Archive::load(std::istream& is) {
  Archive ar;
  std::string line;
  if (!std::getline(is, line) || line != "# papisim-archive v1") {
    throw std::runtime_error("Archive::load: missing or unknown header");
  }
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "cpu") {
      ls >> ar.cpu;
    } else if (tag == "metric") {
      std::string name;
      ls >> name;
      ar.metrics.push_back(std::move(name));
    } else if (tag == "record") {
      ArchiveRecord r;
      ls >> r.t_sec;
      std::uint64_t v = 0;
      while (ls >> v) r.values.push_back(v);
      if (r.values.size() != ar.metrics.size()) {
        throw std::runtime_error("Archive::load: record width mismatch");
      }
      ar.records.push_back(std::move(r));
    } else {
      throw std::runtime_error("Archive::load: unknown line tag '" + tag + "'");
    }
  }
  return ar;
}

PmLogger::PmLogger(PcpClient& client, std::vector<std::string> metrics,
                   std::uint32_t cpu)
    : client_(client) {
  archive_.metrics = std::move(metrics);
  archive_.cpu = cpu;
  pmids_.reserve(archive_.metrics.size());
  for (const std::string& name : archive_.metrics) {
    const auto pmid = client_.lookup(name);
    if (!pmid) {
      throw std::runtime_error("PmLogger: unknown metric '" + name + "'");
    }
    pmids_.push_back(*pmid);
  }
}

void PmLogger::poll() {
  const FetchReply reply = client_.fetch(pmids_, archive_.cpu);
  if (!reply.ok) {
    throw std::runtime_error("PmLogger: pmFetch failed: " + reply.error);
  }
  ArchiveRecord r;
  r.t_sec = client_.machine().clock().now_sec();
  r.values = reply.values;
  archive_.records.push_back(std::move(r));
}

}  // namespace papisim::pcp
