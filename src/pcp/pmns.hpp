// Performance Metrics Name Space (PMNS) for the simulated PMCD.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "nest/nest_pmu.hpp"
#include "sim/config.hpp"

namespace papisim::pcp {

using PmId = std::uint32_t;

/// Descriptor of one PCP metric, mirroring pmDesc / pmLookupName results.
struct MetricDesc {
  PmId pmid = 0;
  std::string name;                      ///< dotted PMNS path
  std::string units = "byte";
  std::string semantics = "counter";     ///< monotonically increasing
  bool per_cpu_instances = true;         ///< instance domain = hardware threads
  nest::NestEventId event;               ///< backing nest counter (channel/kind)
};

/// The metric namespace exported by the PMCD for nest memory traffic:
/// perfevent.hwcounters.nest_mba<ch>_imc.PM_MBA<ch>_{READ,WRITE}_BYTES
/// with a per-cpu instance domain (the socket of the chosen cpu determines
/// which nest is read), exactly the metrics IBM exports on Summit.
class Pmns {
 public:
  explicit Pmns(const sim::MachineConfig& cfg);

  /// pmLookupName: dotted name -> pmid.
  std::optional<PmId> lookup(std::string_view name) const;

  /// pmNameAll-ish: all names under a dotted prefix ("" lists everything).
  std::vector<std::string> names_under(std::string_view prefix) const;

  const MetricDesc* descriptor(PmId pmid) const;
  std::size_t size() const { return metrics_.size(); }

  /// PMNS path for a channel/direction.
  static std::string metric_name(std::uint32_t channel, nest::NestEventKind kind);

 private:
  std::vector<MetricDesc> metrics_;  ///< index == pmid
};

}  // namespace papisim::pcp
