// Deterministic fault injection for the PMCD mailbox protocol.
//
// The paper argues that indirect measurement through the PCP daemon is as
// trustworthy as direct privileged reads.  That claim is only testable if
// the indirection layer can be made to misbehave on demand: a FaultPlan
// tells the daemon to drop, delay, error, or crash on a seeded, per-request
// deterministic schedule, so client resilience (deadlines, retries,
// re-baselining after a restart) can be exercised reproducibly.
#pragma once

#include <cstdint>

namespace papisim::pcp {

/// What the daemon does to one request instead of (or before) serving it.
enum class FaultKind : std::uint8_t {
  None,   ///< serve normally
  Drop,   ///< swallow the request; the reply never comes (client must time out)
  Delay,  ///< stall the service thread, then serve normally
  Error,  ///< fail the request with a transient (retryable) error
  Crash,  ///< fail the request, kill the service thread; supervisor restarts
};

/// splitmix64: a full-avalanche 64-bit mix, the deterministic randomness
/// source shared by the fault roll and the client backoff jitter
/// (pcp/backoff.hpp).
inline std::uint64_t splitmix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Uniform [0, 1) from a splitmix64 state.
inline double splitmix64_unit(std::uint64_t z) {
  return static_cast<double>(splitmix64(z) >> 11) * 0x1.0p-53;
}

/// Per-request fault schedule.  Rates are probabilities in [0, 1] drawn
/// deterministically from `seed` and the request's service index, so the
/// same plan against the same request sequence injects the same faults.
/// Service indices are assigned in dequeue order; with a single request in
/// flight at a time (every pre-scale test) this matches arrival order, and
/// under concurrency the roll stays deterministic per index even though the
/// index<->request pairing depends on shard interleaving.
struct FaultPlan {
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  double drop_rate = 0.0;
  double delay_rate = 0.0;
  double error_rate = 0.0;
  double crash_rate = 0.0;
  std::uint64_t delay_us = 200;  ///< host-time stall for Delay faults

  bool any() const {
    return drop_rate > 0 || delay_rate > 0 || error_rate > 0 || crash_rate > 0;
  }

  /// The fault (if any) for the request with service index `index`.
  FaultKind roll(std::uint64_t index) const {
    if (!any()) return FaultKind::None;
    // Full-avalanche mix of seed and index -> uniform [0, 1).
    const double u = splitmix64_unit(seed + index * 0x9E3779B97F4A7C15ull);
    double acc = drop_rate;
    if (u < acc) return FaultKind::Drop;
    if (u < (acc += delay_rate)) return FaultKind::Delay;
    if (u < (acc += error_rate)) return FaultKind::Error;
    if (u < (acc += crash_rate)) return FaultKind::Crash;
    return FaultKind::None;
  }
};

}  // namespace papisim::pcp
