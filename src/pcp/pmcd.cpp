#include "pcp/pmcd.hpp"

#include "selfmon/metrics.hpp"

namespace papisim::pcp {

Pmcd::Pmcd(sim::Machine& machine)
    : machine_(machine),
      pmns_(machine.config()),
      pmu_(machine, sim::Credentials::root()) {
  thread_ = std::thread([this] { serve(); });
}

Pmcd::~Pmcd() {
  post(StopReq{});
  if (thread_.joinable()) thread_.join();
}

void Pmcd::post(Request req) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(req));
    selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                       static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
}

LookupReply Pmcd::lookup(const std::string& name) {
  LookupReq req;
  req.name = name;
  std::future<LookupReply> f = req.reply.get_future();
  post(std::move(req));
  return f.get();
}

NamesReply Pmcd::names_under(const std::string& prefix) {
  NamesReq req;
  req.prefix = prefix;
  std::future<NamesReply> f = req.reply.get_future();
  post(std::move(req));
  return f.get();
}

FetchReply Pmcd::fetch(const std::vector<PmId>& pmids, std::uint32_t cpu) {
  // Client-visible round trip: enqueue to reply, the indirection latency the
  // paper's Section I weighs against direct privileged reads.
  const selfmon::Stopwatch rtt(selfmon::HistId::PcpFetchRttNs);
  FetchReq req;
  req.pmids = pmids;
  req.cpu = cpu;
  std::future<FetchReply> f = req.reply.get_future();
  post(std::move(req));
  return f.get();
}

void Pmcd::serve() {
  for (;;) {
    Request req = [this]() -> Request {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty(); });
      Request r = std::move(queue_.front());
      queue_.pop_front();
      selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                         static_cast<std::int64_t>(queue_.size()));
      return r;
    }();

    if (std::holds_alternative<StopReq>(req)) return;
    ++requests_served_;
    selfmon::counter_add(selfmon::CounterId::PcpRequestsServed);

    if (auto* l = std::get_if<LookupReq>(&req)) {
      LookupReply reply;
      reply.pmid = pmns_.lookup(l->name);
      reply.ok = reply.pmid.has_value();
      l->reply.set_value(std::move(reply));
    } else if (auto* n = std::get_if<NamesReq>(&req)) {
      NamesReply reply;
      reply.names = pmns_.names_under(n->prefix);
      n->reply.set_value(std::move(reply));
    } else if (auto* fr = std::get_if<FetchReq>(&req)) {
      FetchReply reply;
      reply.ok = true;
      reply.values.reserve(fr->pmids.size());
      if (fr->cpu >= machine_.config().usable_cpus()) {
        reply.ok = false;
        reply.error = "instance (cpu) out of range";
      } else {
        const std::uint32_t socket = machine_.socket_of_cpu(fr->cpu);
        for (const PmId pmid : fr->pmids) {
          const MetricDesc* d = pmns_.descriptor(pmid);
          if (d == nullptr) {
            reply.ok = false;
            reply.error = "unknown pmid " + std::to_string(pmid);
            reply.values.clear();
            break;
          }
          nest::NestEventId ev = d->event;
          ev.socket = socket;
          reply.values.push_back(pmu_.read(ev));
        }
      }
      fr->reply.set_value(std::move(reply));
    }
  }
}

}  // namespace papisim::pcp
