#include "pcp/pmcd.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <type_traits>
#include <utility>

#include "pcp/backoff.hpp"
#include "selfmon/metrics.hpp"
#include "trace/recorder.hpp"

namespace papisim::pcp {

namespace {

/// The attempt's trace context, whichever concrete request carries it.
/// (Template so the private Pmcd::Request variant needs no naming here.)
template <typename RequestVariant>
trace::TraceContext ctx_of(const RequestVariant& req) {
  return std::visit([](const auto& r) { return r.ctx; }, req);
}

/// Coalescing/cache key of a fetch: the cpu instance plus the exact pmid
/// sequence.  Two fetches with equal keys read the same counters and may
/// share one PMU read.
std::string fetch_key(const std::vector<PmId>& pmids, std::uint32_t cpu) {
  std::string key = "c" + std::to_string(cpu);
  for (const PmId id : pmids) {
    key += '|';
    key += std::to_string(id);
  }
  return key;
}

}  // namespace

Pmcd::Pmcd(sim::Machine& machine, PmcdOptions options)
    : machine_(machine),
      options_(options),
      pmns_(machine.config()),
      pmu_(machine, sim::Credentials::root()) {
  if (options_.shards == 0) options_.shards = 1;
  per_tenant_queue_limit_ = options_.per_tenant_queue_limit;
  total_queue_limit_ = options_.total_queue_limit;
  base_.assign(static_cast<std::size_t>(pmu_.sockets()) * pmu_.channels() *
                   std::size(nest::kAllNestEventKinds),
               0);
  tenants_.push_back(std::make_unique<std::atomic<std::uint32_t>>(0));
  shards_.reserve(options_.shards);
  for (std::uint32_t s = 0; s < options_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::uint32_t s = 0; s < options_.shards; ++s) {
    shards_[s]->worker = std::thread([this, s] { serve_shard(s); });
  }
}

Pmcd::~Pmcd() { shutdown(); }

ClientId Pmcd::register_client() {
  std::lock_guard<std::mutex> lock(mu_);
  const ClientId id = static_cast<ClientId>(tenants_.size());
  tenants_.push_back(std::make_unique<std::atomic<std::uint32_t>>(0));
  return id;
}

void Pmcd::shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    draining_.store(true, std::memory_order_release);
  }
  // Wake every worker under its shard lock (no lost wakeup: a worker either
  // sees the flag in its predicate or is inside wait when notify fires).
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Drain-then-stop served everything accepted by a live pool; residual
  // queued requests exist only when the pool had crashed (or a post raced a
  // crash sweep).  Fail them typed -- no promise is ever silently broken.
  for (auto& shard : shards_) {
    for (Queued& q : shard->queue) {
      finish_dequeue(q);
      fail_request(q.req, Error(Status::Shutdown,
                                "pmcd: shut down with the request queued"));
    }
    shard->queue.clear();
  }
  {
    std::lock_guard<std::mutex> lock(dropped_mu_);
    for (Request& d : dropped_) {
      fail_request(d, Error(Status::Shutdown,
                            "pmcd: shut down with the reply outstanding"));
    }
    dropped_.clear();
  }
  selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth, 0);
}

void Pmcd::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  plan_ = plan;
}

void Pmcd::set_rpc_options(const RpcOptions& opt) {
  std::lock_guard<std::mutex> lock(plan_mu_);
  rpc_ = opt;
}

void Pmcd::set_admission_limits(std::uint32_t per_tenant, std::uint32_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  per_tenant_queue_limit_ = per_tenant;
  total_queue_limit_ = total;
}

std::size_t Pmcd::counter_slot(std::uint32_t socket, std::uint32_t channel,
                               nest::NestEventKind kind) const {
  return (static_cast<std::size_t>(socket) * pmu_.channels() + channel) *
             std::size(nest::kAllNestEventKinds) +
         static_cast<std::size_t>(kind);
}

void Pmcd::fail_request(Request& req, const Error& err) {
  std::visit(
      [&](auto& r) { r.reply.set_exception(std::make_exception_ptr(err)); },
      req);
}

std::uint32_t Pmcd::shard_of(const Request& req) const {
  const std::size_t h = std::visit(
      [](const auto& r) -> std::size_t {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, LookupReq>) {
          return std::hash<std::string>{}(r.name);
        } else if constexpr (std::is_same_v<T, NamesReq>) {
          return std::hash<std::string>{}(r.prefix);
        } else {
          return std::hash<std::string>{}(r.key);
        }
      },
      req);
  return static_cast<std::uint32_t>(h % shards_.size());
}

std::atomic<std::uint32_t>* Pmcd::tenant_slot_locked(ClientId client) {
  const std::size_t i =
      client < tenants_.size() ? static_cast<std::size_t>(client) : 0;
  return tenants_[i].get();
}

void Pmcd::finish_dequeue(const Queued& q) {
  if (q.tenant != nullptr) q.tenant->fetch_sub(1, std::memory_order_relaxed);
  const std::uint32_t depth =
      total_queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
  selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                     static_cast<std::int64_t>(depth));
}

Pmcd::PostResult Pmcd::post(Request req, ClientId client) {
  const trace::TraceContext ctx = ctx_of(req);
  const std::uint64_t admit_ns = trace::now_ns();
  const auto admission_span = [&](trace::SpanStatus st, std::uint64_t shard,
                                  std::uint64_t depth) {
    trace::record({ctx.trace_id, trace::next_span_id(), ctx.span_id, admit_ns,
                   trace::now_ns(), shard, depth, trace::Stage::Admission, st});
  };
  std::uint32_t shard_index = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) {
      admission_span(trace::SpanStatus::Shutdown, 0, 0);
      return PostResult::ShuttingDown;
    }
    if (crashed_.load(std::memory_order_acquire)) {
      restart_locked();  // supervisor: revive the pool before enqueueing
    }
    std::atomic<std::uint32_t>* tenant = tenant_slot_locked(client);
    if (total_queued_.load(std::memory_order_relaxed) >= total_queue_limit_ ||
        tenant->load(std::memory_order_relaxed) >= per_tenant_queue_limit_) {
      // Fair-share backpressure: shed instead of queueing without bound.
      shed_.fetch_add(1, std::memory_order_relaxed);
      selfmon::counter_add(selfmon::CounterId::PcpOverloadShed);
      admission_span(trace::SpanStatus::Shed, 0,
                     total_queued_.load(std::memory_order_relaxed));
      return PostResult::Overloaded;
    }
    tenant->fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t depth =
        total_queued_.fetch_add(1, std::memory_order_relaxed) + 1;
    selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                       static_cast<std::int64_t>(depth));
    shard_index = shard_of(req);
    admission_span(trace::SpanStatus::Ok, shard_index, depth);
    Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    shard.queue.push_back(Queued{std::move(req), tenant, ctx, trace::now_ns()});
  }
  shards_[shard_index]->cv.notify_one();
  return PostResult::Accepted;
}

void Pmcd::restart_locked() {
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Stragglers that raced the crash sweep (posted after the sweep cleared
  // their shard) are failed typed here; their clients retry against the new
  // incarnation.  No shard lock needed: the pool is joined and posts are
  // serialized by mu_ (held by the caller).
  for (auto& shard : shards_) {
    for (Queued& q : shard->queue) {
      finish_dequeue(q);
      fail_request(q.req, Error(Status::Internal,
                                "pmcd: daemon crashed with the request queued"));
    }
    shard->queue.clear();
    shard->cache.clear();  // cached replies belong to the dead incarnation
  }
  {
    std::lock_guard<std::mutex> lock(dropped_mu_);
    for (Request& d : dropped_) {
      fail_request(d, Error(Status::Internal,
                            "pmcd: daemon crashed with the reply outstanding"));
    }
    dropped_.clear();
  }
  // A restarted collector reports counters relative to its own start (as a
  // real pmcd's perfevent PMDA does): capture the baseline the incarnation
  // will subtract.  No worker runs here, so base_ is write-safe.
  const std::uint64_t rebase_ns = trace::now_ns();
  for (std::uint32_t s = 0; s < pmu_.sockets(); ++s) {
    for (std::uint32_t c = 0; c < pmu_.channels(); ++c) {
      for (const nest::NestEventKind k : nest::kAllNestEventKinds) {
        base_[counter_slot(s, c, k)] = pmu_.read({s, c, k});
      }
    }
  }
  crashed_.store(false, std::memory_order_release);
  const std::uint64_t new_gen =
      generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  // Re-baselining belongs to no request: an orphan root trace marks the
  // restart window and the generation every later reply reports.
  const trace::TraceContext rb = trace::mint();
  trace::record({rb.trace_id, rb.span_id, 0, rebase_ns, trace::now_ns(),
                 new_gen, 0, trace::Stage::Rebaseline, trace::SpanStatus::Ok});
  selfmon::counter_add(selfmon::CounterId::PcpRestarts);
  for (std::uint32_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->worker = std::thread([this, s] { serve_shard(s); });
  }
}

template <typename Reply, typename MakeReq>
Reply Pmcd::round_trip(ClientId client, MakeReq&& make_req) {
  RpcOptions opt;
  {
    std::lock_guard<std::mutex> lock(plan_mu_);
    opt = rpc_;
  }
  // Root span: adopt the caller's context (PcpClient mints one per RPC;
  // fetch() mints for direct daemon calls) so every attempt, backoff and
  // daemon-side stage hangs off a single client-visible rpc root.
  trace::ScopedTrace scope;
  const trace::TraceContext root = scope.context();
  const std::uint64_t rpc_t0 = trace::now_ns();
  const auto finish_rpc = [&](trace::SpanStatus st) {
    trace::record({root.trace_id, root.span_id, 0, rpc_t0, trace::now_ns(), 0,
                   0, trace::Stage::Rpc, st});
  };
  // Per-attempt outcome trail, surfaced on the final error so a failure
  // report shows what every retry saw instead of only the last status.
  std::string trail;
  const auto note = [&trail](int attempt, std::uint64_t backoff_ns,
                             const std::string& what) {
    if (!trail.empty()) trail += "; ";
    trail += "attempt " + std::to_string(attempt + 1) + ": " + what;
    if (backoff_ns != 0) {
      trail += " (backoff " + std::to_string(backoff_ns) + "ns)";
    }
  };
  std::exception_ptr last;
  bool timed_out = false;
  for (int attempt = 0; attempt <= opt.max_retries; ++attempt) {
    std::uint64_t backoff_ns = 0;
    if (attempt > 0) {
      selfmon::counter_add(selfmon::CounterId::PcpRetries);
      // Seeded jitter desynchronizes the retry storm after a shared failure
      // (N clients failed by one crash must not re-arrive in lockstep).
      const auto backoff =
          jittered_backoff(opt.backoff_base, opt.jitter_seed, client, attempt);
      backoff_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(backoff)
              .count());
      const std::uint64_t b0 = trace::now_ns();
      std::this_thread::sleep_for(backoff);
      trace::record({root.trace_id, trace::next_span_id(), root.span_id, b0,
                     trace::now_ns(), static_cast<std::uint64_t>(attempt),
                     backoff_ns, trace::Stage::Backoff,
                     trace::SpanStatus::Ok});
    }
    const trace::TraceContext attempt_ctx{root.trace_id,
                                          trace::next_span_id()};
    const std::uint64_t a_t0 = trace::now_ns();
    const auto attempt_span = [&](trace::SpanStatus st) {
      trace::record({root.trace_id, attempt_ctx.span_id, root.span_id, a_t0,
                     trace::now_ns(), static_cast<std::uint64_t>(attempt),
                     backoff_ns, trace::Stage::Attempt, st});
    };
    auto req = make_req();
    req.ctx = attempt_ctx;
    std::future<Reply> f = req.reply.get_future();
    switch (post(Request{std::move(req)}, client)) {
      case PostResult::ShuttingDown:
        attempt_span(trace::SpanStatus::Shutdown);
        finish_rpc(trace::SpanStatus::Shutdown);
        throw Error(Status::Shutdown, "pmcd: daemon is shutting down");
      case PostResult::Overloaded:
        timed_out = false;
        attempt_span(trace::SpanStatus::Shed);
        note(attempt, backoff_ns, "shed at admission");
        last = std::make_exception_ptr(
            Error(Status::Overloaded,
                  "pmcd: request shed by fair-share admission (overloaded)"));
        continue;
      case PostResult::Accepted:
        break;
    }
    if (f.wait_for(opt.timeout) != std::future_status::ready) {
      // Abandon the reply (a late or dropped one is harmless) and retry.
      selfmon::counter_add(selfmon::CounterId::PcpTimeouts);
      timed_out = true;
      attempt_span(trace::SpanStatus::Timeout);
      note(attempt, backoff_ns, "timeout");
      continue;
    }
    try {
      Reply r = f.get();
      attempt_span(trace::SpanStatus::Ok);
      finish_rpc(trace::SpanStatus::Ok);
      return r;
    } catch (const Error& e) {
      if (e.status() == Status::Shutdown) {
        attempt_span(trace::SpanStatus::Shutdown);
        finish_rpc(trace::SpanStatus::Shutdown);
        throw;
      }
      timed_out = false;
      attempt_span(trace::SpanStatus::Fault);
      note(attempt, backoff_ns, std::string("fault: ") + e.what());
      last = std::current_exception();  // transient: injected error or crash
    } catch (const std::future_error&) {
      // Unreachable under the drain-then-stop protocol (no promise is
      // destroyed unserved); mapped to a typed error as a backstop.
      timed_out = false;
      attempt_span(trace::SpanStatus::Shutdown);
      note(attempt, backoff_ns, "reply promise broken");
      last = std::make_exception_ptr(
          Error(Status::Shutdown, "pmcd: reply promise broken"));
    }
  }
  const std::string suffix = trail.empty() ? std::string() : " [" + trail + "]";
  if (timed_out || last == nullptr) {
    trace::flight_dump("deadline");
    finish_rpc(trace::SpanStatus::Timeout);
    throw Error(Status::Timeout,
                "pmcd: round trip missed its deadline after " +
                    std::to_string(opt.max_retries + 1) + " attempts" +
                    suffix);
  }
  try {
    std::rethrow_exception(last);
  } catch (const Error& e) {
    if (e.status() == Status::Overloaded) trace::flight_dump("overloaded");
    finish_rpc(e.status() == Status::Overloaded ? trace::SpanStatus::Shed
                                                : trace::SpanStatus::Fault);
    throw Error(e.status(), std::string(e.what()) + suffix);
  }
}

LookupReply Pmcd::lookup(const std::string& name, ClientId client) {
  return round_trip<LookupReply>(client, [&] {
    LookupReq req;
    req.name = name;
    return req;
  });
}

NamesReply Pmcd::names_under(const std::string& prefix, ClientId client) {
  return round_trip<NamesReply>(client, [&] {
    NamesReq req;
    req.prefix = prefix;
    return req;
  });
}

FetchReply Pmcd::fetch(const std::vector<PmId>& pmids, std::uint32_t cpu,
                       ClientId client) {
  // Client-visible round trip: enqueue to reply, the indirection latency the
  // paper's Section I weighs against direct privileged reads.
  const selfmon::Stopwatch rtt(selfmon::HistId::PcpFetchRttNs);
  // Adopt the caller's trace (PcpClient mints one per RPC) or mint one for
  // direct daemon calls, so every fetch RTT is exemplar-addressable.  The
  // exemplar is noted only on success; the Stopwatch above stays
  // failure-inclusive.
  trace::ScopedTrace scope;
  const std::uint64_t f0 = trace::now_ns();
  FetchReply reply = round_trip<FetchReply>(client, [&] {
    FetchReq req;
    req.pmids = pmids;
    req.cpu = cpu;
    req.key = fetch_key(pmids, cpu);
    return req;
  });
  trace::note_rpc_exemplar(scope.context().trace_id, trace::now_ns() - f0);
  return reply;
}

void Pmcd::serve_control(Request& req) {
  if (auto* l = std::get_if<LookupReq>(&req)) {
    LookupReply reply;
    reply.pmid = pmns_.lookup(l->name);
    reply.ok = reply.pmid.has_value();
    l->reply.set_value(std::move(reply));
  } else if (auto* n = std::get_if<NamesReq>(&req)) {
    NamesReply reply;
    reply.names = pmns_.names_under(n->prefix);
    n->reply.set_value(std::move(reply));
  }
}

FetchReply Pmcd::compute_fetch(const FetchReq& req,
                               const trace::TraceContext& svc) {
  FetchReply reply;
  reply.ok = true;
  reply.generation = generation_.load(std::memory_order_relaxed);
  reply.values.reserve(req.pmids.size());
  if (req.cpu >= machine_.config().usable_cpus()) {
    reply.ok = false;
    reply.error = "instance (cpu) out of range";
  } else {
    const std::uint64_t r0 = trace::now_ns();
    const std::uint32_t socket = machine_.socket_of_cpu(req.cpu);
    for (const PmId pmid : req.pmids) {
      const MetricDesc* d = pmns_.descriptor(pmid);
      if (d == nullptr) {
        reply.ok = false;
        reply.error = "unknown pmid " + std::to_string(pmid);
        reply.values.clear();
        break;
      }
      nest::NestEventId ev = d->event;
      ev.socket = socket;
      reply.values.push_back(
          pmu_.read(ev) - base_[counter_slot(ev.socket, ev.channel, ev.kind)]);
    }
    trace::record({svc.trace_id, trace::next_span_id(), svc.span_id, r0,
                   trace::now_ns(), req.pmids.size(), 0,
                   trace::Stage::CounterRead,
                   reply.ok ? trace::SpanStatus::Ok
                            : trace::SpanStatus::Fault});
  }
  return reply;
}

FetchReply Pmcd::serve_fetch_cached(Shard& shard, const FetchReq& req,
                                    const trace::TraceContext& svc) {
  const auto ttl = options_.fetch_cache_ttl;
  if (ttl.count() <= 0) return compute_fetch(req, svc);
  const std::uint64_t lookup_ns = trace::now_ns();
  const auto cache_span = [&](trace::SpanStatus st) {
    trace::record({svc.trace_id, trace::next_span_id(), svc.span_id,
                   lookup_ns, trace::now_ns(), 0, 0, trace::Stage::CacheLookup,
                   st});
  };
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  const auto it = shard.cache.find(req.key);
  if (it != shard.cache.end() && it->second.generation == gen &&
      now - it->second.stamped <= ttl) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    selfmon::counter_add(selfmon::CounterId::PcpCacheHits);
    cache_span(trace::SpanStatus::Hit);
    FetchReply reply;
    reply.ok = true;
    reply.generation = gen;
    reply.values = it->second.values;
    return reply;
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  selfmon::counter_add(selfmon::CounterId::PcpCacheMisses);
  cache_span(trace::SpanStatus::Miss);
  FetchReply reply = compute_fetch(req, svc);
  if (reply.ok) {
    if (shard.cache.size() >= options_.fetch_cache_capacity) {
      shard.cache.clear();  // crude but bounded; hot keys re-enter on the next miss
    }
    shard.cache[req.key] =
        Shard::CacheEntry{reply.values, reply.generation, now};
  }
  return reply;
}

std::vector<Pmcd::Queued> Pmcd::extract_coalescable(Shard& shard,
                                                    const std::string& key) {
  std::vector<Queued> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.queue.begin(); it != shard.queue.end();) {
      auto* fr = std::get_if<FetchReq>(&it->req);
      if (fr != nullptr && fr->key == key) {
        out.push_back(std::move(*it));
        it = shard.queue.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const Queued& q : out) finish_dequeue(q);
  return out;
}

void Pmcd::crash_pool() {
  // Order matters: the flag first, so workers racing the sweep exit rather
  // than serve from a dead incarnation.
  crashed_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::deque<Queued> doomed;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      doomed.swap(shard->queue);
    }
    for (Queued& q : doomed) {
      finish_dequeue(q);
      fail_request(q.req, Error(Status::Internal,
                                "pmcd: daemon crashed with the request queued"));
    }
  }
  {
    std::lock_guard<std::mutex> lock(dropped_mu_);
    for (Request& d : dropped_) {
      fail_request(d, Error(Status::Internal,
                            "pmcd: daemon crashed with the reply outstanding"));
    }
    dropped_.clear();
  }
  selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth, 0);
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cv.notify_all();
  }
}

void Pmcd::publish_ratio_gauges() {
  const std::uint64_t resolved =
      fetches_resolved_.load(std::memory_order_relaxed);
  const std::uint64_t co = coalesced_.load(std::memory_order_relaxed);
  selfmon::gauge_set(
      selfmon::GaugeId::PcpCoalesceRatioPpm,
      resolved == 0 ? 0
                    : static_cast<std::int64_t>(co * 1'000'000 / resolved));
  const std::uint64_t hits = cache_hits_.load(std::memory_order_relaxed);
  const std::uint64_t misses = cache_misses_.load(std::memory_order_relaxed);
  selfmon::gauge_set(
      selfmon::GaugeId::PcpCacheHitRatePpm,
      hits + misses == 0
          ? 0
          : static_cast<std::int64_t>(hits * 1'000'000 / (hits + misses)));
}

void Pmcd::serve_shard(std::uint32_t shard_index) {
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Queued q;
    {
      std::unique_lock<std::mutex> lock(shard.mu);
      shard.cv.wait(lock, [&] {
        return !shard.queue.empty() ||
               draining_.load(std::memory_order_acquire) ||
               crashed_.load(std::memory_order_acquire);
      });
      if (crashed_.load(std::memory_order_acquire)) {
        return;  // another shard's worker crashed the pool; it sweeps
      }
      if (shard.queue.empty()) return;  // draining, and drained
      q = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    finish_dequeue(q);
    const std::uint64_t dequeue_ns = trace::now_ns();
    trace::record({q.ctx.trace_id, trace::next_span_id(), q.ctx.span_id,
                   q.enqueue_ns, dequeue_ns, shard_index, 0,
                   trace::Stage::QueueWait, trace::SpanStatus::Ok});
    // The service span must END before any promise is fulfilled, so it nests
    // inside the client's attempt span even when the client races ahead.
    const trace::TraceContext svc{q.ctx.trace_id, trace::next_span_id()};
    const auto svc_span = [&](trace::SpanStatus st, std::uint64_t fault_kind,
                              std::uint64_t followers) {
      trace::record({q.ctx.trace_id, svc.span_id, q.ctx.span_id, dequeue_ns,
                     trace::now_ns(), fault_kind, followers,
                     trace::Stage::Service, st});
    };

    FaultPlan plan;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      plan = plan_;
    }
    const FaultKind fault =
        plan.roll(service_index_.fetch_add(1, std::memory_order_relaxed));
    const auto fault_a = static_cast<std::uint64_t>(fault);
    if (fault != FaultKind::None) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      selfmon::counter_add(selfmon::CounterId::PcpFaultsInjected);
    }
    switch (fault) {
      case FaultKind::Drop: {
        // Swallow the request but keep its promise alive: the client sees
        // silence (and must time out), not a broken promise.
        svc_span(trace::SpanStatus::Dropped, fault_a, 0);
        std::lock_guard<std::mutex> lock(dropped_mu_);
        dropped_.push_back(std::move(q.req));
        continue;
      }
      case FaultKind::Delay:
        std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
        break;  // then serve normally
      case FaultKind::Error:
        svc_span(trace::SpanStatus::Fault, fault_a, 0);
        fail_request(q.req,
                     Error(Status::Internal, "pmcd: injected transient fault"));
        continue;
      case FaultKind::Crash:
        // The daemon dies mid-request: the in-flight request and everything
        // queued behind it -- on every shard -- fail like lost connections,
        // then the pool exits.  The supervisor (post) restarts it on demand.
        // The flight recorder fires first, while this worker's in-flight
        // spans (queue wait + this service span) are still in its ring.
        svc_span(trace::SpanStatus::Crash, fault_a, 0);
        trace::flight_dump("crash");
        fail_request(q.req, Error(Status::Internal,
                                  "pmcd: daemon crashed serving the request"));
        crash_pool();
        return;
      case FaultKind::None:
        break;
    }

    if (auto* fr = std::get_if<FetchReq>(&q.req)) {
      // Coalescing: identical fetches still queued on this shard are
      // resolved from this one counter read.  Followers bypass their own
      // fault roll -- a coalesced batch shares the leader's fate.
      std::vector<Queued> followers = extract_coalescable(shard, fr->key);
      const std::uint64_t adopt_ns = trace::now_ns();
      for (const Queued& fq : followers) {
        // A follower's own trace shows its queue wait ending in adoption,
        // with an instant span naming the leader's service span (a) and
        // trace (b) -- the cross-trace causal link.
        trace::record({fq.ctx.trace_id, trace::next_span_id(), fq.ctx.span_id,
                       fq.enqueue_ns, adopt_ns, shard_index, 0,
                       trace::Stage::QueueWait, trace::SpanStatus::Ok});
        trace::record({fq.ctx.trace_id, trace::next_span_id(), fq.ctx.span_id,
                       adopt_ns, adopt_ns, svc.span_id, q.ctx.trace_id,
                       trace::Stage::CoalesceFollow, trace::SpanStatus::Ok});
      }
      FetchReply reply = serve_fetch_cached(shard, *fr, svc);
      const std::uint64_t n = 1 + followers.size();
      requests_served_.fetch_add(n, std::memory_order_relaxed);
      selfmon::counter_add(selfmon::CounterId::PcpRequestsServed, n);
      fetches_resolved_.fetch_add(n, std::memory_order_relaxed);
      if (!followers.empty()) {
        coalesced_.fetch_add(followers.size(), std::memory_order_relaxed);
        selfmon::counter_add(selfmon::CounterId::PcpFetchesCoalesced,
                             followers.size());
      }
      publish_ratio_gauges();
      svc_span(trace::SpanStatus::Ok, fault_a, followers.size());
      for (Queued& f : followers) {
        std::get<FetchReq>(f.req).reply.set_value(reply);
      }
      fr->reply.set_value(std::move(reply));
    } else {
      requests_served_.fetch_add(1, std::memory_order_relaxed);
      selfmon::counter_add(selfmon::CounterId::PcpRequestsServed);
      svc_span(trace::SpanStatus::Ok, fault_a, 0);
      serve_control(q.req);
    }
  }
}

}  // namespace papisim::pcp
