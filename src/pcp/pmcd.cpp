#include "pcp/pmcd.hpp"

#include <algorithm>
#include <exception>
#include <type_traits>
#include <utility>

#include "selfmon/metrics.hpp"

namespace papisim::pcp {

Pmcd::Pmcd(sim::Machine& machine)
    : machine_(machine),
      pmns_(machine.config()),
      pmu_(machine, sim::Credentials::root()) {
  base_.assign(static_cast<std::size_t>(pmu_.sockets()) * pmu_.channels() *
                   std::size(nest::kAllNestEventKinds),
               0);
  thread_ = std::thread([this] { serve(); });
}

Pmcd::~Pmcd() { shutdown(); }

void Pmcd::shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    if (!stop_posted_) {
      // A crashed incarnation has already drained its mailbox and exited;
      // posting a StopReq would go unserved.
      if (!crashed_) queue_.push_back(StopReq{});
      stop_posted_ = true;
    }
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void Pmcd::set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
}

void Pmcd::set_rpc_options(const RpcOptions& opt) {
  std::lock_guard<std::mutex> lock(mu_);
  rpc_ = opt;
}

std::size_t Pmcd::counter_slot(std::uint32_t socket, std::uint32_t channel,
                               nest::NestEventKind kind) const {
  return (static_cast<std::size_t>(socket) * pmu_.channels() + channel) *
             std::size(nest::kAllNestEventKinds) +
         static_cast<std::size_t>(kind);
}

void Pmcd::fail_request(Request& req, const Error& err) {
  std::visit(
      [&](auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (!std::is_same_v<T, StopReq>) {
          r.reply.set_exception(std::make_exception_ptr(err));
        }
      },
      req);
}

bool Pmcd::post(Request req) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!accepting_) return false;
    if (crashed_) restart_locked();  // supervisor: revive before enqueueing
    queue_.push_back(std::move(req));
    selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                       static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

void Pmcd::restart_locked() {
  if (thread_.joinable()) thread_.join();
  // A restarted collector reports counters relative to its own start (as a
  // real pmcd's perfevent PMDA does): capture the baseline the incarnation
  // will subtract.  No service thread runs here, so base_ is write-safe.
  for (std::uint32_t s = 0; s < pmu_.sockets(); ++s) {
    for (std::uint32_t c = 0; c < pmu_.channels(); ++c) {
      for (const nest::NestEventKind k : nest::kAllNestEventKinds) {
        base_[counter_slot(s, c, k)] = pmu_.read({s, c, k});
      }
    }
  }
  crashed_ = false;
  generation_.fetch_add(1, std::memory_order_relaxed);
  selfmon::counter_add(selfmon::CounterId::PcpRestarts);
  thread_ = std::thread([this] { serve(); });
}

template <typename Reply, typename MakeReq>
Reply Pmcd::round_trip(MakeReq&& make_req) {
  RpcOptions opt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    opt = rpc_;
  }
  std::exception_ptr last;
  bool timed_out = false;
  for (int attempt = 0; attempt <= opt.max_retries; ++attempt) {
    if (attempt > 0) {
      selfmon::counter_add(selfmon::CounterId::PcpRetries);
      std::this_thread::sleep_for(opt.backoff_base *
                                  (1 << std::min(attempt - 1, 20)));
    }
    auto req = make_req();
    std::future<Reply> f = req.reply.get_future();
    if (!post(Request{std::move(req)})) {
      throw Error(Status::Shutdown, "pmcd: daemon is shutting down");
    }
    if (f.wait_for(opt.timeout) != std::future_status::ready) {
      // Abandon the reply (a late or dropped one is harmless) and retry.
      selfmon::counter_add(selfmon::CounterId::PcpTimeouts);
      timed_out = true;
      continue;
    }
    try {
      return f.get();
    } catch (const Error& e) {
      if (e.status() == Status::Shutdown) throw;
      timed_out = false;
      last = std::current_exception();  // transient: injected error or crash
    } catch (const std::future_error&) {
      // Unreachable under the drain-then-stop protocol (no promise is
      // destroyed unserved); mapped to a typed error as a backstop.
      timed_out = false;
      last = std::make_exception_ptr(
          Error(Status::Shutdown, "pmcd: reply promise broken"));
    }
  }
  if (timed_out || last == nullptr) {
    throw Error(Status::Timeout,
                "pmcd: round trip missed its deadline after " +
                    std::to_string(opt.max_retries + 1) + " attempts");
  }
  std::rethrow_exception(last);
}

LookupReply Pmcd::lookup(const std::string& name) {
  return round_trip<LookupReply>([&] {
    LookupReq req;
    req.name = name;
    return req;
  });
}

NamesReply Pmcd::names_under(const std::string& prefix) {
  return round_trip<NamesReply>([&] {
    NamesReq req;
    req.prefix = prefix;
    return req;
  });
}

FetchReply Pmcd::fetch(const std::vector<PmId>& pmids, std::uint32_t cpu) {
  // Client-visible round trip: enqueue to reply, the indirection latency the
  // paper's Section I weighs against direct privileged reads.
  const selfmon::Stopwatch rtt(selfmon::HistId::PcpFetchRttNs);
  return round_trip<FetchReply>([&] {
    FetchReq req;
    req.pmids = pmids;
    req.cpu = cpu;
    return req;
  });
}

void Pmcd::serve_request(Request& req) {
  if (auto* l = std::get_if<LookupReq>(&req)) {
    LookupReply reply;
    reply.pmid = pmns_.lookup(l->name);
    reply.ok = reply.pmid.has_value();
    l->reply.set_value(std::move(reply));
  } else if (auto* n = std::get_if<NamesReq>(&req)) {
    NamesReply reply;
    reply.names = pmns_.names_under(n->prefix);
    n->reply.set_value(std::move(reply));
  } else if (auto* fr = std::get_if<FetchReq>(&req)) {
    FetchReply reply;
    reply.ok = true;
    reply.generation = generation_.load(std::memory_order_relaxed);
    reply.values.reserve(fr->pmids.size());
    if (fr->cpu >= machine_.config().usable_cpus()) {
      reply.ok = false;
      reply.error = "instance (cpu) out of range";
    } else {
      const std::uint32_t socket = machine_.socket_of_cpu(fr->cpu);
      for (const PmId pmid : fr->pmids) {
        const MetricDesc* d = pmns_.descriptor(pmid);
        if (d == nullptr) {
          reply.ok = false;
          reply.error = "unknown pmid " + std::to_string(pmid);
          reply.values.clear();
          break;
        }
        nest::NestEventId ev = d->event;
        ev.socket = socket;
        reply.values.push_back(pmu_.read(ev) -
                               base_[counter_slot(ev.socket, ev.channel, ev.kind)]);
      }
    }
    fr->reply.set_value(std::move(reply));
  }
}

void Pmcd::serve() {
  for (;;) {
    Request req;
    FaultPlan plan;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty(); });
      req = std::move(queue_.front());
      queue_.pop_front();
      selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth,
                         static_cast<std::int64_t>(queue_.size()));
      plan = plan_;
    }

    if (std::holds_alternative<StopReq>(req)) {
      // Drain-then-stop: the mailbox protocol guarantees nothing is queued
      // behind the StopReq (accepting_ flips under the same lock that posts
      // it), so only parked Drop victims remain to be failed.
      std::lock_guard<std::mutex> lock(mu_);
      for (Request& d : dropped_) {
        fail_request(d, Error(Status::Shutdown,
                              "pmcd: shut down with the reply outstanding"));
      }
      dropped_.clear();
      return;
    }

    const FaultKind fault = plan.roll(service_index_++);
    if (fault != FaultKind::None) {
      faults_injected_.fetch_add(1, std::memory_order_relaxed);
      selfmon::counter_add(selfmon::CounterId::PcpFaultsInjected);
    }
    switch (fault) {
      case FaultKind::Drop: {
        // Swallow the request but keep its promise alive: the client sees
        // silence (and must time out), not a broken promise.
        std::lock_guard<std::mutex> lock(mu_);
        dropped_.push_back(std::move(req));
        continue;
      }
      case FaultKind::Delay:
        std::this_thread::sleep_for(std::chrono::microseconds(plan.delay_us));
        break;  // then serve normally
      case FaultKind::Error:
        fail_request(req, Error(Status::Internal,
                                "pmcd: injected transient fault"));
        continue;
      case FaultKind::Crash: {
        // The daemon dies mid-request: the in-flight request and everything
        // queued behind it fail like lost connections, then the service
        // thread exits.  The supervisor (post) restarts it on demand.
        fail_request(req, Error(Status::Internal,
                                "pmcd: daemon crashed serving the request"));
        std::lock_guard<std::mutex> lock(mu_);
        for (Request& q : queue_) {
          fail_request(q, Error(Status::Internal,
                                "pmcd: daemon crashed with the request queued"));
        }
        queue_.clear();
        selfmon::gauge_set(selfmon::GaugeId::PcpQueueDepth, 0);
        for (Request& d : dropped_) {
          fail_request(d, Error(Status::Internal,
                                "pmcd: daemon crashed with the reply outstanding"));
        }
        dropped_.clear();
        crashed_ = true;
        return;
      }
      case FaultKind::None:
        break;
    }

    requests_served_.fetch_add(1, std::memory_order_relaxed);
    selfmon::counter_add(selfmon::CounterId::PcpRequestsServed);
    serve_request(req);
  }
}

}  // namespace papisim::pcp
