// Unprivileged client side of the PCP protocol (libpcp analogue).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pcp/pmcd.hpp"

namespace papisim::pcp {

/// What an ordinary user links against: every operation is a synchronous
/// round-trip to the PMCD.  The client needs *no* privileges -- that is the
/// entire point of the PCP route on Summit -- but each fetch pays the
/// daemon-indirection latency, which is accounted on the virtual clock.
///
/// Resilience contract: every round-trip is deadline-bounded and retried
/// with exponential backoff (Pmcd::RpcOptions; tune via set_rpc_options).
/// Calls never hang and never leak std::future_error: on exhaustion they
/// throw Error(Status::Timeout), on daemon shutdown Error(Status::Shutdown),
/// and on persistent transient faults Error(Status::Internal).  Retries cost
/// host time only; the virtual clock is charged one round-trip per call.
class PcpClient {
 public:
  /// `creds` are the caller's credentials; they are deliberately unused for
  /// authorization (any user may talk to the PMCD).
  PcpClient(Pmcd& daemon, sim::Machine& machine, sim::Credentials creds)
      : daemon_(daemon), machine_(machine), creds_(creds) {}

  /// pmLookupName.
  std::optional<PmId> lookup(const std::string& name) {
    pay_round_trip();
    return daemon_.lookup(name).pmid;
  }

  /// Traverse the namespace under a prefix.
  std::vector<std::string> names_under(const std::string& prefix) {
    pay_round_trip();
    return daemon_.names_under(prefix).names;
  }

  /// pmFetch for instance `cpu`.  One round trip regardless of metric count.
  FetchReply fetch(const std::vector<PmId>& pmids, std::uint32_t cpu) {
    pay_round_trip();
    return daemon_.fetch(pmids, cpu);
  }

  /// Deadline/retry policy for this client's daemon connection.
  void set_rpc_options(const RpcOptions& opt) { daemon_.set_rpc_options(opt); }

  std::uint64_t round_trips() const { return round_trips_; }
  sim::Credentials credentials() const { return creds_; }
  sim::Machine& machine() { return machine_; }
  const sim::Machine& machine() const { return machine_; }

 private:
  void pay_round_trip() {
    ++round_trips_;
    machine_.advance(machine_.config().pcp_fetch_latency_ns);
  }

  Pmcd& daemon_;
  sim::Machine& machine_;
  sim::Credentials creds_;
  std::uint64_t round_trips_ = 0;
};

}  // namespace papisim::pcp
